#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "shapefn/deterministic.h"
#include "shapefn/enumerate.h"
#include "shapefn/shape_function.h"

namespace als {
namespace {

ShapeEntry entryOf(ModuleId id, Coord w, Coord h) {
  ShapeEntry e;
  e.macro = Macro::fromModule(id, w, h);
  e.w = w;
  e.h = h;
  return e;
}

TEST(ShapeFunction, ParetoPruning) {
  ShapeFunction sf;
  sf.insert(entryOf(0, 10, 10));
  sf.insert(entryOf(0, 20, 5));   // kept: wider but lower
  sf.insert(entryOf(0, 15, 12));  // dominated by (10,10)
  sf.insert(entryOf(0, 5, 30));   // kept: narrower
  ASSERT_EQ(sf.size(), 3u);
  EXPECT_EQ(sf.entries()[0].w, 5);
  EXPECT_EQ(sf.entries()[1].w, 10);
  EXPECT_EQ(sf.entries()[2].w, 20);
  // Heights strictly decrease along the frontier.
  EXPECT_GT(sf.entries()[0].h, sf.entries()[1].h);
  EXPECT_GT(sf.entries()[1].h, sf.entries()[2].h);
}

TEST(ShapeFunction, InsertReplacesSameWidthTaller) {
  ShapeFunction sf;
  sf.insert(entryOf(0, 10, 10));
  sf.insert(entryOf(0, 10, 8));
  ASSERT_EQ(sf.size(), 1u);
  EXPECT_EQ(sf.entries()[0].h, 8);
}

TEST(ShapeFunction, NewEntryErasesDominatedSuccessors) {
  ShapeFunction sf;
  sf.insert(entryOf(0, 12, 9));
  sf.insert(entryOf(0, 14, 8));
  sf.insert(entryOf(0, 10, 7));  // dominates both
  ASSERT_EQ(sf.size(), 1u);
  EXPECT_EQ(sf.entries()[0].w, 10);
}

TEST(ShapeFunction, BestAreaPicksMinimum) {
  ShapeFunction sf;
  sf.insert(entryOf(0, 10, 10));  // 100
  sf.insert(entryOf(0, 30, 3));   // 90
  sf.insert(entryOf(0, 4, 40));   // 160
  EXPECT_EQ(sf.bestArea().area(), 90);
}

TEST(ShapeFunction, CapKeepsExtremesAndBest) {
  ShapeFunction sf;
  for (Coord w = 1; w <= 30; ++w) sf.insert(entryOf(0, w, 31 - w));
  Coord bestArea = sf.bestArea().area();
  sf.capTo(8);
  EXPECT_LE(sf.size(), 8u);
  EXPECT_EQ(sf.entries().front().w, 1);
  EXPECT_EQ(sf.entries().back().w, 30);
  EXPECT_EQ(sf.bestArea().area(), bestArea);
}

TEST(Addition, RegularHorizontalAndVertical) {
  ShapeEntry a = entryOf(0, 10, 6);
  ShapeEntry b = entryOf(1, 4, 8);
  ShapeEntry h = addShapes(a, b, AdditionDir::Horizontal, AdditionKind::Regular);
  EXPECT_EQ(h.w, 14);
  EXPECT_EQ(h.h, 8);
  ShapeEntry v = addShapes(a, b, AdditionDir::Vertical, AdditionKind::Regular);
  EXPECT_EQ(v.w, 10);
  EXPECT_EQ(v.h, 14);
  EXPECT_TRUE(Placement(h.macro.rects).isLegal());
  EXPECT_TRUE(Placement(v.macro.rects).isLegal());
}

TEST(Addition, EnhancedNeverWorseThanRegular) {
  // Property over random multi-rect operands (experiment E12).
  Rng rng(33);
  for (int trial = 0; trial < 200; ++trial) {
    auto randomEntry = [&](ModuleId base) {
      Placement p;
      std::vector<ModuleId> owners;
      Coord x = 0;
      std::size_t k = 1 + rng.index(4);
      for (std::size_t i = 0; i < k; ++i) {
        Coord w = 2 * rng.uniformInt(1, 10);
        Coord h = 2 * rng.uniformInt(1, 10);
        p.push({x, 2 * rng.uniformInt(0, 5), w, h});
        owners.push_back(base + i);
        x += w;
      }
      ShapeEntry e;
      e.macro = Macro::fromPlacement(p, owners);
      e.w = e.macro.w;
      e.h = e.macro.h;
      return e;
    };
    ShapeEntry a = randomEntry(0);
    ShapeEntry b = randomEntry(10);
    for (AdditionDir dir : {AdditionDir::Horizontal, AdditionDir::Vertical}) {
      ShapeEntry reg = addShapes(a, b, dir, AdditionKind::Regular);
      ShapeEntry enh = addShapes(a, b, dir, AdditionKind::Enhanced);
      ASSERT_TRUE(Placement(enh.macro.rects).isLegal()) << "trial " << trial;
      ASSERT_LE(enh.w, reg.w) << "trial " << trial;
      ASSERT_LE(enh.h, reg.h) << "trial " << trial;
    }
  }
}

TEST(Addition, EnhancedInterleavesFig7Style) {
  // Left operand: tall tower + low shelf.  Right operand: block living
  // above the shelf height -> slides left over the shelf, w_imp > 0.
  Placement pa;
  pa.push({0, 0, 4, 20});
  pa.push({4, 0, 16, 5});
  ShapeEntry a;
  a.macro = Macro::fromPlacement(pa, std::vector<ModuleId>{0, 1});
  a.w = a.macro.w;
  a.h = a.macro.h;

  // Right operand interlocks: its ground-level block sits at its right
  // edge, its wide elevated block overhangs to the left above the shelf.
  Placement pb;
  pb.push({10, 0, 8, 5});
  pb.push({0, 6, 18, 8});
  ShapeEntry b;
  b.macro = Macro::fromPlacement(pb, std::vector<ModuleId>{2, 3});
  b.w = b.macro.w;
  b.h = b.macro.h;

  ShapeEntry reg = addShapes(a, b, AdditionDir::Horizontal, AdditionKind::Regular);
  ShapeEntry enh = addShapes(a, b, AdditionDir::Horizontal, AdditionKind::Enhanced);
  EXPECT_EQ(reg.w, 38);
  EXPECT_EQ(enh.w, 28);  // w_imp = 10: the overhang slides over the shelf
  EXPECT_TRUE(Placement(enh.macro.rects).isLegal());
}

TEST(Enumerate, PlacementCountsMatchFormula) {
  // Section IV quotes 57,657,600 possible placements for 8 modules.
  EXPECT_EQ(bstarPlacementCount(1), 1u);
  EXPECT_EQ(bstarPlacementCount(2), 4u);
  EXPECT_EQ(bstarPlacementCount(3), 30u);
  EXPECT_EQ(bstarPlacementCount(8), 57657600u);
}

class TreeEnumerationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeEnumerationTest, VisitsExactlyFactorialTimesCatalan) {
  std::size_t k = GetParam();
  std::uint64_t visits = 0;
  forEachBStarTree(k, [&](const BStarTree& t) {
    ++visits;
    ASSERT_TRUE(t.isValid());
  });
  EXPECT_EQ(visits, bstarPlacementCount(k));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeEnumerationTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Enumerate, BasicSetFindsOptimalPacking) {
  // Two 4x2 modules: optimal is an 8x2 row or 4x4 stack, both area 16.
  std::vector<EnumModule> mods{{0, 4, 2, false}, {1, 4, 2, false}};
  ShapeFunction sf = enumerateBasicSet(mods, nullptr, 16);
  EXPECT_EQ(sf.bestArea().area(), 16);
}

TEST(Enumerate, SymmetricSetOnlyKeepsMirrorPlacements) {
  SymmetryGroup g{"dp", {{0, 1}}, {}};
  std::vector<EnumModule> mods{{0, 6, 4, false}, {1, 6, 4, false}};
  ShapeFunction sf = enumerateBasicSet(mods, &g, 16);
  ASSERT_FALSE(sf.empty());
  for (const ShapeEntry& e : sf.entries()) {
    Placement p(2);
    for (std::size_t r = 0; r < e.macro.rects.size(); ++r) {
      p[e.macro.owners[r]] = e.macro.rects[r];
    }
    EXPECT_TRUE(mirrorAxisOf(p, g).has_value());
  }
}

TEST(Enumerate, PairPlusSelfSymmetricSet) {
  SymmetryGroup g{"cm", {{0, 1}}, {2}};
  std::vector<EnumModule> mods{{0, 6, 4, false}, {1, 6, 4, false}, {2, 8, 4, false}};
  ShapeFunction sf = enumerateBasicSet(mods, &g, 16);
  ASSERT_FALSE(sf.empty());
  // The best shape must keep the self-symmetric cell centered.
  const ShapeEntry& best = sf.bestArea();
  Placement p(3);
  for (std::size_t r = 0; r < best.macro.rects.size(); ++r) {
    p[best.macro.owners[r]] = best.macro.rects[r];
  }
  auto axis = mirrorAxisOf(p, g);
  ASSERT_TRUE(axis.has_value());
  EXPECT_TRUE(centeredOnX2(p[2], *axis));
}

TEST(Enumerate, OrientationVariantsExplored) {
  // A single 2x8 rotatable module must offer both orientations.
  std::vector<EnumModule> mods{{0, 2, 8, true}};
  ShapeFunction sf = enumerateBasicSet(mods, nullptr, 16);
  EXPECT_EQ(sf.size(), 2u);
}

// --- Deterministic placer (both kinds) ---

class DeterministicKindTest : public ::testing::TestWithParam<AdditionKind> {};

TEST_P(DeterministicKindTest, MillerOpAmpLegalAndCompact) {
  Circuit c = makeMillerOpAmp();
  DeterministicOptions opt;
  opt.kind = GetParam();
  DeterministicResult r = placeDeterministic(c, opt);
  EXPECT_TRUE(r.placement.isLegal());
  EXPECT_EQ(r.placement.size(), c.moduleCount());
  for (std::size_t m = 0; m < c.moduleCount(); ++m) {
    EXPECT_GT(r.placement[m].w, 0) << "module " << m << " missing";
  }
  EXPECT_GE(r.areaUsage, 1.0);
  EXPECT_LT(r.areaUsage, 2.0);
  EXPECT_GT(r.enumeratedPlacements, 0u);
}

TEST_P(DeterministicKindTest, SymmetricBasicSetsStayMirrored) {
  Circuit c = makeMillerOpAmp();
  DeterministicOptions opt;
  opt.kind = GetParam();
  DeterministicResult r = placeDeterministic(c, opt);
  for (const SymmetryGroup& g : c.symmetryGroups()) {
    EXPECT_TRUE(mirrorAxisOf(r.placement, g).has_value())
        << "group " << g.name << " lost its symmetry";
  }
}

TEST_P(DeterministicKindTest, TableICircuitsPlaceLegally) {
  for (TableICircuit which :
       {TableICircuit::MillerV2, TableICircuit::ComparatorV2,
        TableICircuit::FoldedCascode}) {
    Circuit c = makeTableICircuit(which);
    DeterministicOptions opt;
    opt.kind = GetParam();
    opt.shapeCap = 10;
    DeterministicResult r = placeDeterministic(c, opt);
    EXPECT_TRUE(r.placement.isLegal()) << tableIName(which);
    EXPECT_GE(r.areaUsage, 1.0) << tableIName(which);
    for (const SymmetryGroup& g : c.symmetryGroups()) {
      EXPECT_TRUE(mirrorAxisOf(r.placement, g).has_value())
          << tableIName(which) << " group " << g.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, DeterministicKindTest,
                         ::testing::Values(AdditionKind::Regular,
                                           AdditionKind::Enhanced),
                         [](const auto& info) {
                           return info.param == AdditionKind::Regular ? "RSF" : "ESF";
                         });

TEST(Deterministic, EsfNeverWorseThanRsfOnTableI) {
  // The Table-I headline: enhanced shape functions use area at least as
  // well as regular ones (strictly better on most circuits).
  for (TableICircuit which : {TableICircuit::MillerV2, TableICircuit::FoldedCascode}) {
    Circuit c = makeTableICircuit(which);
    DeterministicOptions rsf{AdditionKind::Regular, 10, 4};
    DeterministicOptions esf{AdditionKind::Enhanced, 10, 4};
    double rsfUsage = placeDeterministic(c, rsf).areaUsage;
    double esfUsage = placeDeterministic(c, esf).areaUsage;
    EXPECT_LE(esfUsage, rsfUsage + 1e-9) << tableIName(which);
  }
}

TEST(Deterministic, Fig2HierarchicalSymmetryComposes) {
  Circuit c = makeFig2Design();
  DeterministicResult r = placeDeterministic(c, {});
  EXPECT_TRUE(r.placement.isLegal());
  EXPECT_TRUE(mirrorAxisOf(r.placement, c.symmetryGroup(0)).has_value());
}

}  // namespace
}  // namespace als
