// Shared placement-invariant checker for the test suites.
//
// Every placer in the library must produce placements that (a) cover every
// module exactly once with its own (possibly 90-degree-rotated) footprint,
// (b) have no overlapping modules, (c) sit inside the non-negative quadrant
// (all packers compact toward the origin) and, when an outline is given,
// inside it, and (d) mirror each symmetry group about a common vertical
// axis within a caller-chosen tolerance (0 = exact, the contract of the
// structural placers; the penalty-based flat B*-tree baseline is checked
// with a finite tolerance or skipped via kNoSymmetryCheck).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string>

#include "geom/placement.h"
#include "netlist/circuit.h"

namespace als {
namespace test_util {

/// Pass as `symTolerance` to skip the symmetry check entirely (for the
/// penalty-based placers whose residual deviation is unbounded).
inline constexpr Coord kNoSymmetryCheck = -1;

struct InvariantOptions {
  /// Mirror tolerance in DBU (0 = exact); kNoSymmetryCheck skips it.
  Coord symTolerance = 0;
  /// Optional outline; 0 = only the non-negative quadrant is enforced.
  Coord outlineW = 0;
  Coord outlineH = 0;
};

/// Largest deviation (doubled DBU) of `group` from perfect mirror symmetry
/// about the axis implied by its first pair / self-symmetric member.
/// Footprint mismatches between partners count as infinite deviation.
inline Coord symmetryDeviation2x(const Placement& p, const SymmetryGroup& g) {
  constexpr Coord kInf = std::numeric_limits<Coord>::max();
  Coord axis2x = 0;  // doubled axis: exact for half-DBU axes
  if (!g.pairs.empty()) {
    axis2x = p[g.pairs[0].a].xlo() + p[g.pairs[0].b].xhi();
  } else if (!g.selfs.empty()) {
    axis2x = 2 * p[g.selfs[0]].xlo() + p[g.selfs[0]].w;
  } else {
    return 0;
  }
  Coord worst = 0;
  for (const SymPair& pair : g.pairs) {
    const Rect& a = p[pair.a];
    const Rect& b = p[pair.b];
    if (a.w != b.w || a.h != b.h) return kInf;
    worst = std::max(worst, std::abs(a.xlo() + b.xhi() - axis2x));
    worst = std::max(worst, std::abs(b.xlo() + a.xhi() - axis2x));
    worst = std::max(worst, 2 * std::abs(a.ylo() - b.ylo()));
  }
  for (ModuleId s : g.selfs) {
    worst = std::max(worst, std::abs(2 * p[s].xlo() + p[s].w - axis2x));
  }
  return worst;
}

/// Asserts the shared placement invariants; `label` prefixes every failure
/// message so parameterized loops stay attributable.
inline void expectPlacementInvariants(const Placement& p, const Circuit& c,
                                      const InvariantOptions& options = {},
                                      const std::string& label = "") {
  ASSERT_EQ(p.size(), c.moduleCount()) << label;

  // Every module keeps its own footprint (rotated only when allowed).
  for (std::size_t m = 0; m < p.size(); ++m) {
    const Module& mod = c.module(m);
    bool upright = p[m].w == mod.w && p[m].h == mod.h;
    bool rotated = p[m].w == mod.h && p[m].h == mod.w;
    EXPECT_TRUE(upright || (rotated && (mod.rotatable || mod.w == mod.h)))
        << label << " module " << mod.name << " placed as " << p[m].w << "x"
        << p[m].h << ", footprint " << mod.w << "x" << mod.h
        << (mod.rotatable ? "" : " (norotate)");
  }

  // No overlaps.
  auto [a, b] = p.firstOverlap();
  EXPECT_EQ(a, Placement::npos)
      << label << " modules " << (a == Placement::npos ? "" : c.module(a).name)
      << " and " << (b == Placement::npos ? "" : c.module(b).name) << " overlap";

  // Inside the outline (or at least the non-negative quadrant).
  for (std::size_t m = 0; m < p.size(); ++m) {
    EXPECT_GE(p[m].xlo(), 0) << label << " module " << c.module(m).name;
    EXPECT_GE(p[m].ylo(), 0) << label << " module " << c.module(m).name;
    if (options.outlineW > 0) {
      EXPECT_LE(p[m].xhi(), options.outlineW)
          << label << " module " << c.module(m).name;
    }
    if (options.outlineH > 0) {
      EXPECT_LE(p[m].yhi(), options.outlineH)
          << label << " module " << c.module(m).name;
    }
  }

  // Symmetry groups mirrored about a common vertical axis.
  if (options.symTolerance != kNoSymmetryCheck) {
    for (const SymmetryGroup& g : c.symmetryGroups()) {
      EXPECT_LE(symmetryDeviation2x(p, g), 2 * options.symTolerance)
          << label << " group " << g.name << " breaks mirror symmetry";
    }
  }
}

}  // namespace test_util
}  // namespace als
