// Serve-layer tests (runtime/serve.h + runtime/result_cache.h +
// io/serve_protocol.h) — the properties the placement service's whole value
// rests on:
//
//   * a cache hit is bit-identical to recomputing (a key IDENTIFIES its
//     result, so serving from the cache is indistinguishable from running);
//   * the cache key canonicalization is exact — default and explicitly
//     spelled options, in any OPT order, hash identically, the two
//     non-identity knobs (threads, time cap) are excluded, and every
//     result-affecting knob IS part of the key;
//   * cancellation mid-round leaves the worker's scratch bank reusable —
//     the next job on that worker is bit-identical to a fresh process;
//   * admission control rejects over-capacity submissions instead of
//     blocking, and the on-disk store survives engine restarts.
#include "runtime/serve.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "io/benchmark_format.h"
#include "io/corpus.h"
#include "io/serve_protocol.h"
#include "runtime/portfolio.h"
#include "runtime/result_cache.h"
#include "util/fault_injection.h"

namespace als {
namespace {

void expectBitIdentical(const EngineResult& a, const EngineResult& b,
                        std::string_view label) {
  EXPECT_EQ(a.cost, b.cost) << label;
  EXPECT_EQ(a.area, b.area) << label;
  EXPECT_EQ(a.hpwl, b.hpwl) << label;
  EXPECT_EQ(a.movesTried, b.movesTried) << label;
  EXPECT_EQ(a.sweeps, b.sweeps) << label;
  EXPECT_EQ(a.restartsRun, b.restartsRun) << label;
  EXPECT_EQ(a.bestRestart, b.bestRestart) << label;
  EXPECT_EQ(a.bestSeed, b.bestSeed) << label;
  ASSERT_EQ(a.placement.size(), b.placement.size()) << label;
  for (std::size_t m = 0; m < a.placement.size(); ++m) {
    EXPECT_EQ(a.placement[m], b.placement[m]) << label << " module " << m;
  }
}

/// Blocking submit helper: runs one job to completion and returns a deep
/// copy of its outcome (JobOutcome::result is only valid during onDone).
struct CompletedJob {
  bool done = false;
  bool cacheHit = false;
  bool cancelled = false;
  bool deadlineExpired = false;
  std::string error;
  EngineResult result;
  CacheKey key;
};

CompletedJob runJob(ServeEngine& engine, std::string_view circuitText,
                    EngineBackend backend, const EngineOptions& options,
                    double deadlineSeconds = 0.0,
                    std::size_t deadlineSweeps = 0) {
  CompletedJob out;
  std::mutex m;
  std::condition_variable cv;
  ServeEngine::Job job;
  job.circuitText = std::string(circuitText);
  job.backend = backend;
  job.options = options;
  job.deadlineSeconds = deadlineSeconds;
  job.deadlineSweeps = deadlineSweeps;
  job.onDone = [&](const ServeEngine::JobOutcome& o) {
    std::lock_guard<std::mutex> lock(m);
    out.cacheHit = o.cacheHit;
    out.cancelled = o.cancelled;
    out.deadlineExpired = o.deadlineExpired;
    out.error = o.error;
    out.key = o.key;
    if (o.result != nullptr) out.result = *o.result;
    out.done = true;
    cv.notify_all();
  };
  ServeEngine::Submission sub = engine.submit(std::move(job));
  EXPECT_TRUE(sub.accepted);
  if (!sub.accepted) return out;
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return out.done; });
  return out;
}

/// The serve layer's recompute oracle: what a fresh process would produce
/// for the same (circuit, backend, options) — PortfolioRunner::run with the
/// serve layer's forced knobs (no time cap, one thread; thread count is
/// result-invariant anyway).
EngineResult oracle(std::string_view circuitText, EngineBackend backend,
                    EngineOptions options) {
  auto parsed = parseBenchmark(circuitText);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  options.timeLimitSec = 0.0;
  options.numThreads = 1;
  return PortfolioRunner().run(parsed.circuit, backend, options);
}

std::string canonical(EngineBackend backend, const EngineOptions& options) {
  std::string out;
  canonicalOptionsKey(backend, options, out);
  return out;
}

CacheKey keyOf(std::string_view text, EngineBackend backend,
               const EngineOptions& options) {
  std::string scratch;
  return makeCacheKey(text, backend, options, scratch);
}

// --------------------------------------------------------- cache key -------

TEST(CacheKeyTest, DefaultAndExplicitSpellingsCanonicalizeIdentically) {
  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions defaulted;
  EngineOptions spelled;
  // Every knob applyJobOption accepts, set to its default value via the
  // wire dialect — the canonical string (and so the key) must not move.
  for (auto [k, v] : std::initializer_list<std::pair<const char*, const char*>>{
           {"wl", "0.25"}, {"sym", "2"}, {"prox", "2"}, {"outline", "4"},
           {"maxw", "0"}, {"maxh", "0"}, {"aspect", "0"}, {"thermal", "0"},
           {"shape", "0"}, {"sweeps", "256"}, {"cool", "0.96"}, {"mpt", "0"},
           {"restarts", "1"}, {"tempering", "0"}, {"exch", "4"},
           {"ladder", "0.9"}, {"cross", "1"}, {"seed", "1"},
           {"threads", "1"}}) {
    EXPECT_EQ(applyJobOption(spelled, k, v), "") << k;
  }
  EXPECT_EQ(canonical(EngineBackend::SeqPair, defaulted),
            canonical(EngineBackend::SeqPair, spelled));
  EXPECT_EQ(keyOf(text, EngineBackend::SeqPair, defaulted),
            keyOf(text, EngineBackend::SeqPair, spelled));
}

TEST(CacheKeyTest, OptApplicationOrderDoesNotMatter) {
  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions forward;
  ASSERT_EQ(applyJobOption(forward, "wl", "0.5"), "");
  ASSERT_EQ(applyJobOption(forward, "sweeps", "128"), "");
  ASSERT_EQ(applyJobOption(forward, "tempering", "1"), "");
  EngineOptions backward;
  ASSERT_EQ(applyJobOption(backward, "tempering", "1"), "");
  ASSERT_EQ(applyJobOption(backward, "sweeps", "128"), "");
  ASSERT_EQ(applyJobOption(backward, "wl", "0.5"), "");
  EXPECT_EQ(keyOf(text, EngineBackend::FlatBStar, forward),
            keyOf(text, EngineBackend::FlatBStar, backward));
}

TEST(CacheKeyTest, NonIdentityKnobsAreExcluded) {
  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions base;
  const CacheKey baseKey = keyOf(text, EngineBackend::SeqPair, base);
  EngineOptions threads = base;
  threads.numThreads = 8;
  EXPECT_EQ(keyOf(text, EngineBackend::SeqPair, threads), baseKey)
      << "numThreads must not be part of the key (results are thread-"
         "invariant)";
  EngineOptions timed = base;
  timed.timeLimitSec = 3.5;
  EXPECT_EQ(keyOf(text, EngineBackend::SeqPair, timed), baseKey)
      << "timeLimitSec must not be part of the key (the serve layer zeroes "
         "it)";
}

TEST(CacheKeyTest, SeedOnlyMovesTheSeedWord) {
  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions base;
  base.seed = 1;
  EngineOptions reseeded = base;
  reseeded.seed = 2;
  const CacheKey a = keyOf(text, EngineBackend::SeqPair, base);
  const CacheKey b = keyOf(text, EngineBackend::SeqPair, reseeded);
  EXPECT_EQ(a.circuit, b.circuit);
  EXPECT_EQ(a.options, b.options);
  EXPECT_NE(a.seed, b.seed);
}

TEST(CacheKeyTest, EveryResultAffectingKnobChangesTheKey) {
  const std::string_view text = corpusText(CorpusCircuit::Apte);
  const EngineOptions base;
  const std::uint64_t baseHash =
      keyOf(text, EngineBackend::SeqPair, base).options;

  // One mutation per result-affecting EngineOptions field (values chosen to
  // differ from the defaults).  If a future knob is added to EngineOptions
  // but forgotten in canonicalOptionsKey, the spelled-vs-default test above
  // cannot catch it; this one documents the full inventory.
  const std::vector<std::pair<const char*, EngineOptions>> mutations = [] {
    std::vector<std::pair<const char*, EngineOptions>> out;
    auto add = [&out](const char* name, auto&& mutate) {
      EngineOptions o;
      mutate(o);
      out.emplace_back(name, o);
    };
    add("wirelengthWeight", [](EngineOptions& o) { o.wirelengthWeight = 0.5; });
    add("symmetryWeight", [](EngineOptions& o) { o.symmetryWeight = 3.0; });
    add("proximityWeight", [](EngineOptions& o) { o.proximityWeight = 1.0; });
    add("outlineWeight", [](EngineOptions& o) { o.outlineWeight = 8.0; });
    add("maxWidth", [](EngineOptions& o) { o.maxWidth = 1000; });
    add("maxHeight", [](EngineOptions& o) { o.maxHeight = 1000; });
    add("targetAspect", [](EngineOptions& o) { o.targetAspect = 1.0; });
    add("thermalWeight", [](EngineOptions& o) { o.thermalWeight = 1.0; });
    add("shapeMoveProb", [](EngineOptions& o) { o.shapeMoveProb = 0.25; });
    add("maxSweeps", [](EngineOptions& o) { o.maxSweeps = 512; });
    add("coolingFactor", [](EngineOptions& o) { o.coolingFactor = 0.9; });
    add("movesPerTemp", [](EngineOptions& o) { o.movesPerTemp = 7; });
    add("numRestarts", [](EngineOptions& o) { o.numRestarts = 4; });
    add("tempering", [](EngineOptions& o) { o.tempering = true; });
    add("exchangeInterval", [](EngineOptions& o) { o.exchangeInterval = 8; });
    add("ladderRatio", [](EngineOptions& o) { o.ladderRatio = 0.8; });
    add("crossSeed", [](EngineOptions& o) { o.crossSeed = false; });
    return out;
  }();
  for (const auto& [name, mutated] : mutations) {
    EXPECT_NE(keyOf(text, EngineBackend::SeqPair, mutated).options, baseHash)
        << name << " must participate in the cache key";
  }
  // And the backend itself is part of the canonical string.
  EXPECT_NE(keyOf(text, EngineBackend::FlatBStar, base).options, baseHash);
}

TEST(CacheKeyTest, HexRoundTripsAndRejectsGarbage) {
  CacheKey key{0x0123456789abcdefull, 0xfedcba9876543210ull, 42};
  CacheKey parsed;
  ASSERT_TRUE(parsed.parseHex(key.hex()));
  EXPECT_EQ(parsed, key);
  EXPECT_EQ(key.hex().size(), 48u);
  EXPECT_FALSE(parsed.parseHex("not-a-key"));
  EXPECT_FALSE(parsed.parseHex(key.hex().substr(1)));
}

TEST(CacheKeyTest, UnknownJobOptionIsAnError) {
  EngineOptions options;
  EXPECT_NE(applyJobOption(options, "frobnicate", "1"), "")
      << "a silently dropped knob would poison the cache key contract";
  EXPECT_NE(applyJobOption(options, "sweeps", "banana"), "");
}

// ------------------------------------------------------- result text -------

TEST(ResultTextTest, RoundTripsBitIdentically) {
  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions options;
  options.maxSweeps = 48;
  options.numRestarts = 2;
  options.seed = 7;
  const EngineResult computed = oracle(text, EngineBackend::SeqPair, options);

  std::string wire;
  writeResultText(EngineBackend::SeqPair, computed, wire);
  EngineBackend backend = EngineBackend::FlatBStar;
  EngineResult parsed;
  ASSERT_EQ(parseResultText(wire, backend, parsed), "");
  EXPECT_EQ(backend, EngineBackend::SeqPair);
  expectBitIdentical(parsed, computed, "ALSRESULT round trip");
  // seconds is deliberately not identity: it round-trips as 0.
  EXPECT_EQ(parsed.seconds, 0.0);

  EngineResult mangled;
  EXPECT_NE(parseResultText("ALSRESULT 1\nBackend seqpair\n", backend,
                            mangled),
            "");
}

// ------------------------------------------------------- serve engine ------

TEST(ServeEngineTest, CacheHitIsBitIdenticalToRecompute) {
  ServeOptions serveOpts;
  serveOpts.workers = 1;
  ServeEngine engine(serveOpts);

  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions options;
  options.maxSweeps = 64;
  options.numRestarts = 2;
  options.seed = 3;

  CompletedJob cold = runJob(engine, text, EngineBackend::SeqPair, options);
  ASSERT_EQ(cold.error, "");
  EXPECT_FALSE(cold.cacheHit);
  // The serve compute path (per-slice sessions advanced in rounds, shared
  // reduction) must agree bit-for-bit with the plain portfolio runner.
  expectBitIdentical(cold.result, oracle(text, EngineBackend::SeqPair, options),
                     "serve compute vs PortfolioRunner");

  CompletedJob warm = runJob(engine, text, EngineBackend::SeqPair, options);
  ASSERT_EQ(warm.error, "");
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.key, cold.key);
  expectBitIdentical(warm.result, cold.result, "cache hit vs recompute");

  ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cacheHits, 1u);
  EXPECT_EQ(stats.cacheMisses, 1u);
}

TEST(ServeEngineTest, TemperingJobsAreDeterministicAndCacheable) {
  ServeOptions serveOpts;
  serveOpts.workers = 1;
  ServeEngine engine(serveOpts);

  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions options;
  options.maxSweeps = 48;
  options.numRestarts = 3;
  options.tempering = true;
  options.exchangeInterval = 2;
  options.seed = 11;

  CompletedJob first = runJob(engine, text, EngineBackend::SeqPair, options);
  ASSERT_EQ(first.error, "");
  EXPECT_FALSE(first.cacheHit);
  engine.cache().clear();
  CompletedJob second = runJob(engine, text, EngineBackend::SeqPair, options);
  ASSERT_EQ(second.error, "");
  EXPECT_FALSE(second.cacheHit) << "clear() must force recomputation";
  expectBitIdentical(second.result, first.result,
                     "tempering recompute on warm scratch");
  CompletedJob hit = runJob(engine, text, EngineBackend::SeqPair, options);
  EXPECT_TRUE(hit.cacheHit);
  expectBitIdentical(hit.result, first.result, "tempering cache hit");
}

TEST(ServeEngineTest, ParseFailureCompletesWithErrorAndIsNotCached) {
  ServeOptions serveOpts;
  serveOpts.workers = 1;
  ServeEngine engine(serveOpts);
  CompletedJob bad =
      runJob(engine, "this is not ALSBENCH\n", EngineBackend::SeqPair, {});
  EXPECT_NE(bad.error, "");
  EXPECT_EQ(engine.cache().size(), 0u);
}

TEST(ServeEngineTest, CancelMidRoundLeavesWorkerBitIdenticallyReusable) {
  ServeOptions serveOpts;
  serveOpts.workers = 1;
  serveOpts.progressInterval = 4;  // small rounds: cancellation lands mid-run
  ServeEngine engine(serveOpts);

  // A job long enough that the first progress round fires well before the
  // budget is spent (ami33 at this budget computes for seconds, not ms).
  EngineOptions longOpts;
  longOpts.maxSweeps = 200000;
  longOpts.numRestarts = 2;
  longOpts.seed = 5;

  std::mutex m;
  std::condition_variable cv;
  bool sawProgress = false;
  bool done = false;
  bool cancelled = false;
  std::string error;

  ServeEngine::Job job;
  job.circuitText = std::string(corpusText(CorpusCircuit::Ami33));
  job.backend = EngineBackend::SeqPair;
  job.options = longOpts;
  job.onProgress = [&](std::size_t, std::size_t, double) {
    std::lock_guard<std::mutex> lock(m);
    sawProgress = true;
    cv.notify_all();
  };
  job.onDone = [&](const ServeEngine::JobOutcome& o) {
    std::lock_guard<std::mutex> lock(m);
    cancelled = o.cancelled;
    error = o.error;
    done = true;
    cv.notify_all();
  };
  ServeEngine::Submission sub = engine.submit(std::move(job));
  ASSERT_TRUE(sub.accepted);
  {
    // Cancel from the controlling thread once the run is provably mid-round,
    // exactly as the daemon's CANCEL line arrives from a connection thread.
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return sawProgress; });
  }
  EXPECT_TRUE(engine.cancel(sub.id));
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return done; });
  }
  EXPECT_EQ(error, "");
  EXPECT_TRUE(cancelled);
  EXPECT_EQ(engine.cache().size(), 0u)
      << "a cancelled (best-so-far, non-deterministic) result must never be "
         "cached";
  EXPECT_FALSE(engine.cancel(sub.id)) << "completed ids are unknown";

  // The same worker — same ThreadPool, same warm TemperingScratch bank —
  // must now run a fresh job bit-identically to an unperturbed process.
  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions freshOpts;
  freshOpts.maxSweeps = 64;
  freshOpts.numRestarts = 2;
  freshOpts.seed = 9;
  CompletedJob fresh = runJob(engine, text, EngineBackend::SeqPair, freshOpts);
  ASSERT_EQ(fresh.error, "");
  EXPECT_FALSE(fresh.cacheHit);
  expectBitIdentical(fresh.result,
                     oracle(text, EngineBackend::SeqPair, freshOpts),
                     "post-cancel worker vs fresh process");
  EXPECT_EQ(engine.stats().cancelled, 1u);
}

TEST(ServeEngineTest, AdmissionControlRejectsWhenSlotsAreFull) {
  ServeOptions serveOpts;
  serveOpts.workers = 1;
  serveOpts.queueCapacity = 1;
  serveOpts.progressInterval = 4;
  ServeEngine engine(serveOpts);

  std::mutex m;
  std::condition_variable cv;
  bool started = false;
  bool done = false;

  ServeEngine::Job slow;
  slow.circuitText = std::string(corpusText(CorpusCircuit::Ami33));
  slow.backend = EngineBackend::SeqPair;
  slow.options.maxSweeps = 200000;
  slow.onProgress = [&](std::size_t, std::size_t, double) {
    std::lock_guard<std::mutex> lock(m);
    started = true;
    cv.notify_all();
  };
  slow.onDone = [&](const ServeEngine::JobOutcome&) {
    std::lock_guard<std::mutex> lock(m);
    done = true;
    cv.notify_all();
  };
  ServeEngine::Submission first = engine.submit(std::move(slow));
  ASSERT_TRUE(first.accepted);
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return started; });
  }

  ServeEngine::Job second;
  second.circuitText = std::string(corpusText(CorpusCircuit::Apte));
  second.backend = EngineBackend::SeqPair;
  ServeEngine::Submission rejected = engine.submit(std::move(second));
  EXPECT_FALSE(rejected.accepted);
  // REJECTED replies still carry the key, so clients can probe the cache.
  EXPECT_NE(rejected.key, CacheKey{});
  EXPECT_EQ(engine.stats().rejected, 1u);

  EXPECT_TRUE(engine.cancel(first.id));
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
}

TEST(ServeEngineTest, DiskStoreSurvivesEngineRestartAndClears) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "als_serve_cache_test")
          .string();
  std::filesystem::remove_all(dir);

  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions options;
  options.maxSweeps = 64;
  options.numRestarts = 2;
  options.seed = 13;

  EngineResult firstLife;
  {
    ServeOptions serveOpts;
    serveOpts.workers = 1;
    serveOpts.cacheDir = dir;
    ServeEngine engine(serveOpts);
    CompletedJob cold = runJob(engine, text, EngineBackend::FlatBStar, options);
    ASSERT_EQ(cold.error, "");
    EXPECT_FALSE(cold.cacheHit);
    firstLife = cold.result;
  }  // engine torn down; only the directory persists

  ServeOptions serveOpts;
  serveOpts.workers = 1;
  serveOpts.cacheDir = dir;
  ServeEngine engine(serveOpts);
  CompletedJob warm = runJob(engine, text, EngineBackend::FlatBStar, options);
  ASSERT_EQ(warm.error, "");
  EXPECT_TRUE(warm.cacheHit)
      << "a restarted daemon must serve its predecessor's results";
  expectBitIdentical(warm.result, firstLife, "disk-promoted hit");

  engine.cache().clear();
  CompletedJob recomputed =
      runJob(engine, text, EngineBackend::FlatBStar, options);
  ASSERT_EQ(recomputed.error, "");
  EXPECT_FALSE(recomputed.cacheHit)
      << "clear() must drop the disk entries too, not just the memory map";
  expectBitIdentical(recomputed.result, firstLife, "recompute after clear");
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, FetchReusesCallerStorageAndMissesLeaveItUntouched) {
  ResultCache cache;
  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions options;
  options.maxSweeps = 32;
  const EngineResult computed = oracle(text, EngineBackend::SeqPair, options);
  const CacheKey key = keyOf(text, EngineBackend::SeqPair, options);

  EngineBackend backend = EngineBackend::HBStar;
  EngineResult result;
  result.cost = 123.0;
  EXPECT_FALSE(cache.fetch(key, backend, result));
  EXPECT_EQ(result.cost, 123.0) << "a miss must leave the outputs untouched";
  EXPECT_EQ(backend, EngineBackend::HBStar);

  cache.store(key, EngineBackend::SeqPair, computed);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.fetch(key, backend, result));
  EXPECT_EQ(backend, EngineBackend::SeqPair);
  expectBitIdentical(result, computed, "memory fetch");
  EXPECT_EQ(result.seconds, 0.0) << "seconds is not part of a result's "
                                    "identity and is not stored";

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.fetch(key, backend, result));
}

// -------------------------------------------- integrity / recovery ---------

/// A structurally valid EngineResult that needs no engine run — the cache
/// stores whatever its caller hands it, so recovery tests can use cheap
/// synthetic entries with distinguishable contents.
EngineResult fakeResult(std::uint64_t tag) {
  EngineResult r;
  r.cost = 100.0 + static_cast<double>(tag) * 0.25;
  r.area = 400 + static_cast<Coord>(tag);
  r.hpwl = 70 + static_cast<Coord>(tag);
  r.movesTried = 10 * static_cast<std::size_t>(tag);
  r.sweeps = 4;
  r.restartsRun = 1;
  r.bestRestart = 0;
  r.bestSeed = tag;
  r.placement = Placement(std::vector<Rect>{
      {0, 0, 4, 5}, {4, 0, 3, static_cast<Coord>(1 + tag)}});
  return r;
}

std::string freshDir(const char* name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string cachePath(const std::string& dir, const CacheKey& key,
                      const char* ext = ".alsresult") {
  return (std::filesystem::path(dir) / (key.hex() + ext)).string();
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void writeWholeFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::size_t countFiles(const std::string& dir, std::string_view ext) {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ext) ++n;
  }
  return n;
}

/// Disarms the global fault injector when a test body exits, pass or fail —
/// a leaked plan would make every later disk write in the process fail.
struct FaultGuard {
  ~FaultGuard() { FaultInjector::global().reset(); }
};

TEST(ResultTextTest, ChecksumTrailerRejectsTruncationFlipsAndTrailingBytes) {
  std::string wire;
  writeResultText(EngineBackend::SeqPair, fakeResult(5), wire);
  EngineBackend backend = EngineBackend::FlatBStar;
  EngineResult parsed;
  ASSERT_EQ(parseResultText(wire, backend, parsed), "");
  expectBitIdentical(parsed, fakeResult(5), "synthetic round trip");

  // Every proper prefix must fail: truncation — the torn-write case — can
  // never be mistaken for a complete result.
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_NE(parseResultText(std::string_view(wire).substr(0, n), backend,
                              parsed),
              "")
        << "prefix of " << n << " bytes parsed cleanly";
  }
  // Single-byte damage anywhere breaks the seal (sampled stride here; the
  // fuzz suite sweeps random positions).
  for (std::size_t pos = 0; pos < wire.size(); pos += 7) {
    std::string flipped = wire;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x04);
    EXPECT_NE(parseResultText(flipped, backend, parsed), "")
        << "flip at byte " << pos;
  }
  // Bytes after the trailer are an error, not ignored padding.
  EXPECT_NE(parseResultText(wire + "x", backend, parsed), "");
}

TEST(ResultCacheTest, ScrubQuarantinesDamageRemovesTmpAndKeepsSurvivors) {
  const std::string dir = freshDir("als_cache_scrub_test");
  const CacheKey k1{1, 1, 1}, k2{2, 2, 2}, k3{3, 3, 3}, k4{4, 4, 4};
  {
    ResultCache cache(dir);
    for (const auto& [k, tag] : std::initializer_list<
             std::pair<CacheKey, std::uint64_t>>{
             {k1, 1}, {k2, 2}, {k3, 3}, {k4, 4}}) {
      cache.store(k, EngineBackend::SeqPair, fakeResult(tag));
    }
  }
  // Damage the store the way crashes and disk rot do: a flipped byte, a
  // truncation, a foreign entry under the wrong key's filename, and an
  // orphaned half-write.  k3 stays intact.
  std::string bytes = readWholeFile(cachePath(dir, k1));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  writeWholeFile(cachePath(dir, k1), bytes);
  const std::string b2 = readWholeFile(cachePath(dir, k2));
  writeWholeFile(cachePath(dir, k2), b2.substr(0, b2.size() * 3 / 5));
  writeWholeFile(cachePath(dir, k4), readWholeFile(cachePath(dir, k3)));
  writeWholeFile(cachePath(dir, k4, ".tmp"), "torn half-write");

  ResultCache second(dir);
  const ResultCache::Stats st = second.stats();
  EXPECT_EQ(st.tmpRemoved, 1u);
  EXPECT_EQ(st.quarantined, 3u)
      << "flipped, truncated and mislabeled entries must all be caught";
  EXPECT_EQ(second.totalEntries(), 1u);
  EngineBackend backend = EngineBackend::SeqPair;
  EngineResult out;
  EXPECT_FALSE(second.fetch(k1, backend, out));
  EXPECT_FALSE(second.fetch(k2, backend, out));
  EXPECT_FALSE(second.fetch(k4, backend, out))
      << "a valid payload under the wrong key must not be served";
  ASSERT_TRUE(second.fetch(k3, backend, out));
  expectBitIdentical(out, fakeResult(3), "intact survivor");
  EXPECT_EQ(countFiles(dir, ".corrupt"), 3u)
      << "quarantined files are kept for forensics";
  EXPECT_EQ(countFiles(dir, ".tmp"), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, FetchQuarantinesCorruptionFoundAfterStartup) {
  const std::string dir = freshDir("als_cache_fetch_quarantine_test");
  const CacheKey key{7, 7, 7};
  ResultCache cache(dir);  // scrub sees an empty directory
  std::string text = "Key " + key.hex() + "\n";
  writeResultText(EngineBackend::SeqPair, fakeResult(7), text);
  writeWholeFile(cachePath(dir, key), text.substr(0, text.size() - 10));

  EngineBackend backend = EngineBackend::SeqPair;
  EngineResult out;
  EXPECT_FALSE(cache.fetch(key, backend, out))
      << "a truncated entry must read as a miss, never a result";
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_FALSE(std::filesystem::exists(cachePath(dir, key)));
  EXPECT_EQ(countFiles(dir, ".corrupt"), 1u);
  // The quarantined name is burned: a subsequent store + fetch works.
  cache.store(key, EngineBackend::SeqPair, fakeResult(7));
  ASSERT_TRUE(cache.fetch(key, backend, out));
  expectBitIdentical(out, fakeResult(7), "store after quarantine");
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, CapEvictsLeastRecentlyUsedAndItsDiskFile) {
  const std::string dir = freshDir("als_cache_lru_test");
  const CacheKey kA{10, 1, 1}, kB{11, 1, 1}, kC{12, 1, 1};
  ResultCache cache(dir, /*maxEntries=*/2);
  cache.store(kA, EngineBackend::SeqPair, fakeResult(1));
  cache.store(kB, EngineBackend::SeqPair, fakeResult(2));
  EngineBackend backend = EngineBackend::SeqPair;
  EngineResult out;
  ASSERT_TRUE(cache.fetch(kA, backend, out));  // promote: kB is now LRU
  cache.store(kC, EngineBackend::SeqPair, fakeResult(3));

  EXPECT_EQ(cache.stats().evicted, 1u);
  EXPECT_EQ(cache.totalEntries(), 2u);
  EXPECT_FALSE(cache.fetch(kB, backend, out))
      << "the promote must have made kB the eviction victim";
  EXPECT_TRUE(cache.fetch(kA, backend, out));
  EXPECT_TRUE(cache.fetch(kC, backend, out));
  EXPECT_EQ(countFiles(dir, ".alsresult"), 2u)
      << "eviction must remove the disk file too";
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, DiskSurvivorsCountAgainstTheCapOnRestart) {
  const std::string dir = freshDir("als_cache_restart_cap_test");
  const CacheKey k1{21, 1, 1}, k2{22, 1, 1}, k3{23, 1, 1}, k4{24, 1, 1};
  {
    ResultCache unbounded(dir);
    for (const auto& [k, tag] : std::initializer_list<
             std::pair<CacheKey, std::uint64_t>>{
             {k1, 1}, {k2, 2}, {k3, 3}, {k4, 4}}) {
      unbounded.store(k, EngineBackend::SeqPair, fakeResult(tag));
    }
  }
  ResultCache capped(dir, /*maxEntries=*/2);
  EXPECT_EQ(capped.stats().evicted, 2u);
  EXPECT_EQ(capped.totalEntries(), 2u);
  EXPECT_EQ(countFiles(dir, ".alsresult"), 2u);
  // Unpromoted survivors have no recency, so the cap drops them in
  // descending key order — deterministically the two largest keys.
  EngineBackend backend = EngineBackend::SeqPair;
  EngineResult out;
  EXPECT_TRUE(capped.fetch(k1, backend, out));
  EXPECT_TRUE(capped.fetch(k2, backend, out));
  EXPECT_FALSE(capped.fetch(k3, backend, out));
  EXPECT_FALSE(capped.fetch(k4, backend, out));
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, UnusableDirectoryDegradesToMemoryOnly) {
  const std::string blocker = freshDir("als_cache_not_a_dir");
  writeWholeFile(blocker, "a regular file where the store dir should be\n");
  ResultCache cache(blocker);
  EXPECT_TRUE(cache.stats().memoryOnly);
  const CacheKey key{31, 1, 1};
  cache.store(key, EngineBackend::SeqPair, fakeResult(1));
  EngineBackend backend = EngineBackend::SeqPair;
  EngineResult out;
  ASSERT_TRUE(cache.fetch(key, backend, out))
      << "degraded mode must still serve from memory";
  expectBitIdentical(out, fakeResult(1), "memory-only fetch");
  std::filesystem::remove(blocker);
}

TEST(ResultCacheTest, RepeatedWriteFailuresDegradeToMemoryOnly) {
  FaultGuard guard;
  ASSERT_EQ(FaultInjector::global().configure("write-fail@1+"), "");
  const std::string dir = freshDir("als_cache_enospc_test");
  ResultCache cache(dir);
  const CacheKey k1{41, 1, 1}, k2{42, 1, 1}, k3{43, 1, 1}, k4{44, 1, 1};
  cache.store(k1, EngineBackend::SeqPair, fakeResult(1));
  cache.store(k2, EngineBackend::SeqPair, fakeResult(2));
  EXPECT_FALSE(cache.stats().memoryOnly) << "two failures are a blip";
  cache.store(k3, EngineBackend::SeqPair, fakeResult(3));
  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.diskFailures, 3u);
  EXPECT_TRUE(st.memoryOnly)
      << "three consecutive failures must trip the degradation latch";
  cache.store(k4, EngineBackend::SeqPair, fakeResult(4));
  EXPECT_EQ(cache.stats().diskFailures, 3u)
      << "degraded mode must stop attempting disk writes";
  EXPECT_EQ(countFiles(dir, ".alsresult"), 0u);
  EngineBackend backend = EngineBackend::SeqPair;
  EngineResult out;
  ASSERT_TRUE(cache.fetch(k1, backend, out));
  expectBitIdentical(out, fakeResult(1), "fetch through a dead disk");
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, TruncatedWriteIsCaughtByTheNextLifeScrub) {
  FaultGuard guard;
  const std::string dir = freshDir("als_cache_trunc_test");
  const CacheKey key{51, 1, 1};
  {
    ASSERT_EQ(FaultInjector::global().configure("write-trunc@1:40"), "");
    ResultCache cache(dir);
    cache.store(key, EngineBackend::SeqPair, fakeResult(1));
    EXPECT_EQ(countFiles(dir, ".alsresult"), 1u)
        << "a torn write still renames into place — that is the hazard";
  }
  FaultInjector::global().reset();
  ResultCache second(dir);
  EXPECT_EQ(second.stats().quarantined, 1u);
  EXPECT_EQ(second.totalEntries(), 0u);
  EngineBackend backend = EngineBackend::SeqPair;
  EngineResult out;
  EXPECT_FALSE(second.fetch(key, backend, out));
  std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, TornRenameLeavesTmpThatTheNextLifeScrubs) {
  FaultGuard guard;
  const std::string dir = freshDir("als_cache_torn_rename_test");
  const CacheKey key{52, 1, 1};
  {
    ASSERT_EQ(FaultInjector::global().configure("rename-torn@1"), "");
    ResultCache cache(dir);
    cache.store(key, EngineBackend::SeqPair, fakeResult(1));
    EXPECT_EQ(countFiles(dir, ".alsresult"), 0u);
    EXPECT_EQ(countFiles(dir, ".tmp"), 1u);
  }
  FaultInjector::global().reset();
  ResultCache second(dir);
  EXPECT_EQ(second.stats().tmpRemoved, 1u);
  EXPECT_EQ(second.totalEntries(), 0u);
  EXPECT_EQ(countFiles(dir, ".tmp"), 0u);
  std::filesystem::remove_all(dir);
}

TEST(FaultInjectorTest, ConfigureParsesValidSpecsAndRejectsGarbage) {
  FaultGuard guard;
  FaultInjector& fi = FaultInjector::global();
  EXPECT_EQ(fi.configure("write-fail@2"), "");
  EXPECT_EQ(fi.configure("write-fail@3+,write-trunc@1:10,rename-torn@2"), "");
  EXPECT_EQ(fi.configure("crash@store-after-write:1"), "");
  EXPECT_TRUE(fi.active());
  EXPECT_NE(fi.configure("write-fail@0"), "") << "counts are 1-based";
  EXPECT_FALSE(fi.active()) << "a configure error must fail closed";
  EXPECT_NE(fi.configure("write-fail@x"), "");
  EXPECT_NE(fi.configure("write-trunc@1"), "") << "trunc needs a byte count";
  EXPECT_NE(fi.configure("frobnicate@1"), "")
      << "an unknown directive silently dropped would make chaos tests pass "
         "vacuously";
  fi.reset();
  EXPECT_FALSE(fi.active());
}

// ------------------------------------------------ deadlines / health -------

TEST(ServeEngineTest, RecoversFromDamagedStoreByQuarantineAndRecompute) {
  const std::string dir = freshDir("als_serve_recovery_test");
  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions optA;
  optA.maxSweeps = 64;
  optA.numRestarts = 2;
  optA.seed = 41;
  EngineOptions optB = optA;
  optB.seed = 42;

  EngineResult resultA, resultB;
  CacheKey keyA, keyB;
  {
    ServeOptions serveOpts;
    serveOpts.workers = 1;
    serveOpts.cacheDir = dir;
    ServeEngine engine(serveOpts);
    CompletedJob a = runJob(engine, text, EngineBackend::SeqPair, optA);
    CompletedJob b = runJob(engine, text, EngineBackend::SeqPair, optB);
    ASSERT_EQ(a.error, "");
    ASSERT_EQ(b.error, "");
    resultA = a.result;
    resultB = b.result;
    keyA = a.key;
    keyB = b.key;
  }
  // Flip one byte of keyA's entry and plant a torn half-write next to it.
  std::string bytes = readWholeFile(cachePath(dir, keyA));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  writeWholeFile(cachePath(dir, keyA), bytes);
  writeWholeFile(cachePath(dir, keyA, ".tmp"), "torn half-write");

  ServeOptions serveOpts;
  serveOpts.workers = 1;
  serveOpts.cacheDir = dir;
  ServeEngine engine(serveOpts);
  const ServeStats boot = engine.stats();
  EXPECT_EQ(boot.quarantined, 1u);
  EXPECT_FALSE(boot.memoryOnly);

  CompletedJob a = runJob(engine, text, EngineBackend::SeqPair, optA);
  ASSERT_EQ(a.error, "");
  EXPECT_FALSE(a.cacheHit) << "a quarantined entry must never be served";
  expectBitIdentical(a.result, resultA, "recompute after corruption");
  CompletedJob b = runJob(engine, text, EngineBackend::SeqPair, optB);
  ASSERT_EQ(b.error, "");
  EXPECT_TRUE(b.cacheHit) << "corruption of one entry must not poison others";
  expectBitIdentical(b.result, resultB, "intact neighbor still served");
  std::filesystem::remove_all(dir);
}

TEST(ServeEngineTest, WallDeadlineDeliversBestSoFarAndNeverCaches) {
  ServeOptions serveOpts;
  serveOpts.workers = 1;
  serveOpts.progressInterval = 4;
  ServeEngine engine(serveOpts);

  const std::string_view text = corpusText(CorpusCircuit::Ami33);
  EngineOptions longOpts;
  longOpts.maxSweeps = 200000;
  longOpts.numRestarts = 2;
  longOpts.seed = 5;

  CompletedJob out = runJob(engine, text, EngineBackend::SeqPair, longOpts,
                            /*deadlineSeconds=*/0.3);
  ASSERT_EQ(out.error, "");
  EXPECT_TRUE(out.deadlineExpired);
  EXPECT_FALSE(out.cancelled) << "deadline and cancel are distinct outcomes";
  EXPECT_FALSE(out.cacheHit);
  EXPECT_FALSE(out.result.placement.empty()) << "the snapshot is a usable "
                                                "best-so-far placement";
  EXPECT_EQ(engine.cache().size(), 0u)
      << "a cut-short result is not a pure function of the key and must "
         "never be cached";
  // The deadline knobs are not part of the cache key, so if the cut-short
  // result HAD been stored this resubmission would hit and serve it.
  CompletedJob again = runJob(engine, text, EngineBackend::SeqPair, longOpts,
                              /*deadlineSeconds=*/0.3);
  ASSERT_EQ(again.error, "");
  EXPECT_FALSE(again.cacheHit);
  EXPECT_TRUE(again.deadlineExpired);
  EXPECT_EQ(engine.stats().deadlineExpired, 2u);
}

TEST(ServeEngineTest, SweepDeadlineIsDeterministicAndBeatenByCacheHits) {
  ServeOptions serveOpts;
  serveOpts.workers = 1;
  serveOpts.progressInterval = 32;
  ServeEngine engine(serveOpts);

  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions options;
  options.maxSweeps = 200000;
  options.numRestarts = 2;
  options.seed = 21;

  CompletedJob first = runJob(engine, text, EngineBackend::SeqPair, options,
                              0.0, /*deadlineSweeps=*/64);
  ASSERT_EQ(first.error, "");
  EXPECT_TRUE(first.deadlineExpired);
  EXPECT_EQ(engine.cache().size(), 0u);
  CompletedJob second = runJob(engine, text, EngineBackend::SeqPair, options,
                               0.0, /*deadlineSweeps=*/64);
  ASSERT_EQ(second.error, "");
  EXPECT_TRUE(second.deadlineExpired);
  EXPECT_FALSE(second.cacheHit);
  // Sweep deadlines fire at round boundaries, a sweep-counted (not timed)
  // event — the best-so-far snapshot is as deterministic as a full run.
  expectBitIdentical(second.result, first.result,
                     "sweep-deadlined snapshot determinism");

  // A cache hit beats a deadline: serving a known-complete answer costs one
  // copy, so even an absurdly tight budget reports `hit`, not `deadline`.
  EngineOptions small;
  small.maxSweeps = 64;
  small.numRestarts = 2;
  small.seed = 22;
  CompletedJob cold = runJob(engine, text, EngineBackend::SeqPair, small);
  ASSERT_EQ(cold.error, "");
  EXPECT_FALSE(cold.cacheHit);
  CompletedJob hit = runJob(engine, text, EngineBackend::SeqPair, small, 0.0,
                            /*deadlineSweeps=*/1);
  ASSERT_EQ(hit.error, "");
  EXPECT_TRUE(hit.cacheHit);
  EXPECT_FALSE(hit.deadlineExpired);
  expectBitIdentical(hit.result, cold.result, "hit beats deadline");
}

TEST(ServeEngineTest, StatsSurfaceCacheHealthCounters) {
  const std::string dir = freshDir("als_serve_capped_test");
  ServeOptions serveOpts;
  serveOpts.workers = 1;
  serveOpts.cacheDir = dir;
  serveOpts.cacheCapacity = 1;
  ServeEngine engine(serveOpts);

  const std::string_view text = corpusText(CorpusCircuit::Apte);
  EngineOptions options;
  options.maxSweeps = 48;
  options.seed = 31;
  CompletedJob first = runJob(engine, text, EngineBackend::SeqPair, options);
  ASSERT_EQ(first.error, "");
  options.seed = 32;
  CompletedJob second = runJob(engine, text, EngineBackend::SeqPair, options);
  ASSERT_EQ(second.error, "");

  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.evicted, 1u)
      << "engine stats must surface the store's eviction count";
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_FALSE(stats.memoryOnly);
  EXPECT_EQ(countFiles(dir, ".alsresult"), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace als
