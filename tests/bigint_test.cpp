#include "util/bigint.h"

#include <gtest/gtest.h>

namespace als {
namespace {

TEST(BigUint, ZeroAndSmallValues) {
  EXPECT_EQ(BigUint().toString(), "0");
  EXPECT_TRUE(BigUint().isZero());
  EXPECT_EQ(BigUint(1).toString(), "1");
  EXPECT_EQ(BigUint(4294967296ull).toString(), "4294967296");
  EXPECT_EQ(BigUint(18446744073709551615ull).toString(), "18446744073709551615");
}

TEST(BigUint, MultiplyBySmall) {
  BigUint v(1);
  for (std::uint64_t i = 1; i <= 20; ++i) v *= i;
  EXPECT_EQ(v.toString(), "2432902008176640000");  // 20!
  EXPECT_EQ(v.toU64(), 2432902008176640000ull);
}

TEST(BigUint, MultiplyByZeroClears) {
  BigUint v(123456);
  v *= 0;
  EXPECT_TRUE(v.isZero());
}

TEST(BigUint, Factorial25CrossesU64) {
  // 25! = 15511210043330985984000000 (known value).
  EXPECT_EQ(BigUint::factorial(25).toString(), "15511210043330985984000000");
}

TEST(BigUint, Factorial0And1) {
  EXPECT_EQ(BigUint::factorial(0).toString(), "1");
  EXPECT_EQ(BigUint::factorial(1).toString(), "1");
}

TEST(BigUint, BigTimesBig) {
  BigUint a = BigUint::factorial(30);
  BigUint b = BigUint::factorial(30);
  BigUint c = a * b;
  // (30!)^2 = 30! * 30!; verify via string of known 30! squared.
  // 30! = 265252859812191058636308480000000
  EXPECT_EQ(BigUint::factorial(30).toString(), "265252859812191058636308480000000");
  // Cross-check c / 30! == 30! via comparison of strings using double ratio.
  EXPECT_NEAR(c.toDouble() / a.toDouble(), b.toDouble(), b.toDouble() * 1e-9);
}

TEST(BigUint, DivExact) {
  BigUint v = BigUint::factorial(20);
  v.divExact(20);
  EXPECT_EQ(v.toString(), BigUint::factorial(19).toString());
}

TEST(BigUint, Comparison) {
  EXPECT_TRUE(BigUint(5) < BigUint(7));
  EXPECT_FALSE(BigUint(7) < BigUint(5));
  EXPECT_TRUE(BigUint::factorial(10) < BigUint::factorial(11));
  EXPECT_TRUE(BigUint(0) < BigUint(1));
  EXPECT_EQ(BigUint(42), BigUint(42));
}

TEST(BigUint, ToDoubleMatchesSmall) {
  EXPECT_DOUBLE_EQ(BigUint(1000000007ull).toDouble(), 1000000007.0);
}

TEST(BigUint, PaperExampleNumbers) {
  // Section II: n = 7 cells -> (7!)^2 = 25,401,600 total sequence-pairs and
  // (7!)^2 / 6! = 35,280 symmetric-feasible ones.
  BigUint total = BigUint::factorial(7) * BigUint::factorial(7);
  EXPECT_EQ(total.toString(), "25401600");
  BigUint sf = total;
  sf.divExact(720);  // 6!
  EXPECT_EQ(sf.toString(), "35280");
}

}  // namespace
}  // namespace als
