// Experiment E2 validation: the Lemma's count of symmetric-feasible
// sequence-pairs is verified against exhaustive enumeration for small n,
// and the paper's in-text numbers are checked exactly.
#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "seqpair/enumerate.h"
#include "seqpair/symmetry.h"

namespace als {
namespace {

TEST(SfCount, PaperExampleNumbersExact) {
  // n = 7, one group with p = 2 pairs and s = 2 self-symmetric cells:
  // (7!)^2 / 6! = 35,280 of (7!)^2 = 25,401,600 codes -> 99.86 % reduction.
  Circuit c = makeFig1Example();
  auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
  EXPECT_EQ(sfSequencePairCount(7, groups).toString(), "35280");
  EXPECT_EQ(totalSequencePairCount(7).toString(), "25401600");
  EXPECT_NEAR(searchSpaceReduction(7, groups), 0.9986, 0.0001);
}

TEST(SfCount, NoGroupsMeansNoReduction) {
  EXPECT_EQ(sfSequencePairCount(5, {}).toString(),
            totalSequencePairCount(5).toString());
  EXPECT_DOUBLE_EQ(searchSpaceReduction(5, {}), 0.0);
}

TEST(SfCount, TotalCountIsFactorialSquared) {
  EXPECT_EQ(totalSequencePairCount(3).toString(), "36");
  EXPECT_EQ(totalSequencePairCount(4).toString(), "576");
  // (110!)^2 has 2 * 178 = 357 digits; just sanity-check it is huge.
  EXPECT_GT(totalSequencePairCount(110).toString().size(), 300u);
}

struct CountCase {
  std::string name;
  std::size_t n;
  std::vector<SymmetryGroup> groups;
};

class SfEnumerationTest : public ::testing::TestWithParam<CountCase> {};

TEST_P(SfEnumerationTest, FormulaMatchesPerGroupEnumeration) {
  // The Lemma's formula counts exactly the codes satisfying property (1)
  // per group: alpha free, each group's beta order determined.
  const CountCase& tc = GetParam();
  std::uint64_t enumerated =
      countSymmetricFeasible(tc.n, tc.groups, SfReading::PerGroup);
  BigUint formula = sfSequencePairCount(tc.n, tc.groups);
  ASSERT_TRUE(formula.fitsU64());
  EXPECT_EQ(enumerated, formula.toU64());
}

TEST_P(SfEnumerationTest, FormulaIsUpperBoundOfUnionReading) {
  // The buildable (union) reading is bounded by the Lemma's count, with
  // equality when there is a single symmetry group — which is why the paper
  // states the Lemma as an upper bound.
  const CountCase& tc = GetParam();
  std::uint64_t unionCount =
      countSymmetricFeasible(tc.n, tc.groups, SfReading::Union);
  BigUint formula = sfSequencePairCount(tc.n, tc.groups);
  ASSERT_TRUE(formula.fitsU64());
  EXPECT_LE(unionCount, formula.toU64());
  if (tc.groups.size() == 1) {
    EXPECT_EQ(unionCount, formula.toU64());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallConfigs, SfEnumerationTest,
    ::testing::Values(
        // One pair among 3 cells: (3!)^2 / 2! = 18.
        CountCase{"pair3", 3, {{"g", {{0, 1}}, {}}}},
        // One self-symmetric cell only: s = 1 -> no reduction ((n!)^2 / 1!).
        CountCase{"self3", 3, {{"g", {}, {0}}}},
        // Two selfs: (4!)^2 / 2!.
        CountCase{"selfs4", 4, {{"g", {}, {0, 1}}}},
        // Pair + self in one group of 4 cells: (4!)^2 / 3!.
        CountCase{"pairSelf4", 4, {{"g", {{0, 1}}, {2}}}},
        // Two pairs, one group: (4!)^2 / 4! = 24.
        CountCase{"twoPairs4", 4, {{"g", {{0, 1}, {2, 3}}, {}}}},
        // Two disjoint groups: (5!)^2 / (2! * 2!).
        CountCase{"twoGroups5", 5, {{"g1", {{0, 1}}, {}}, {"g2", {{2, 3}}, {}}}},
        // Full group of 5: pair + pair + self: (5!)^2 / 5!.
        CountCase{"full5", 5, {{"g", {{0, 1}, {2, 3}}, {4}}}},
        // Mixed free cells: 2 pairs + 2 free among 6: (6!)^2 / 4!.
        CountCase{"mixed6", 6, {{"g", {{0, 1}, {2, 3}}, {}}}}),
    [](const auto& info) { return info.param.name; });

TEST(SfEnumeration, EveryEnumeratedCodeIsDistinct) {
  std::size_t visits = 0;
  forEachSequencePair(3, [&](const SequencePair& sp) {
    EXPECT_TRUE(sp.isValid());
    ++visits;
  });
  EXPECT_EQ(visits, 36u);
}

}  // namespace
}  // namespace als
