#include <gtest/gtest.h>

#include "layoutaware/extract.h"
#include "layoutaware/mosfet.h"
#include "layoutaware/ota.h"
#include "layoutaware/sizing.h"
#include "layoutaware/template_gen.h"

namespace als {
namespace {

const Technology kTech = Technology::c035();

TEST(Mosfet, SquareLawBasics) {
  MosSpec spec{MosType::N, 20e-6, 0.7e-6, 1};
  MosSmallSignal ss = mosSmallSignal(kTech, spec, 100e-6);
  EXPECT_GT(ss.gm, 0);
  EXPECT_GT(ss.vov, 0);
  // gm = 2 Id / vov must hold exactly in the square-law model.
  EXPECT_NEAR(ss.gm, 2.0 * 100e-6 / ss.vov, 1e-12);
  // Wider device, same current: lower overdrive, higher gm.
  MosSpec wide = spec;
  wide.w = 80e-6;
  MosSmallSignal ssWide = mosSmallSignal(kTech, wide, 100e-6);
  EXPECT_LT(ssWide.vov, ss.vov);
  EXPECT_GT(ssWide.gm, ss.gm);
}

TEST(Mosfet, LongerChannelLowersGds) {
  MosSpec shortL{MosType::N, 20e-6, 0.35e-6, 1};
  MosSpec longL{MosType::N, 20e-6, 1.4e-6, 1};
  EXPECT_GT(mosSmallSignal(kTech, shortL, 100e-6).gds,
            mosSmallSignal(kTech, longL, 100e-6).gds);
}

TEST(Mosfet, FoldingShrinksDrainJunction) {
  // The Section V argument: "different foldings change the junction
  // capacitances of a MOS transistor".
  MosSpec flat{MosType::N, 40e-6, 0.7e-6, 1};
  MosSpec folded{MosType::N, 40e-6, 0.7e-6, 4};
  MosCaps cFlat = mosCaps(kTech, flat);
  MosCaps cFolded = mosCaps(kTech, folded);
  EXPECT_LT(cFolded.cdb, cFlat.cdb);
  // Gate capacitance is unchanged by folding (same W*L).
  EXPECT_NEAR(cFolded.cgs, cFlat.cgs, 1e-18);
}

TEST(Mosfet, FoldingSquaresUpTheCell) {
  MosSpec flat{MosType::N, 80e-6, 0.7e-6, 1};
  MosSpec folded{MosType::N, 80e-6, 0.7e-6, 8};
  double flatAr = mosCellHeight(kTech, flat) / mosCellWidth(kTech, flat);
  double foldedAr = mosCellHeight(kTech, folded) / mosCellWidth(kTech, folded);
  EXPECT_GT(flatAr, 10.0);           // one 80 um stripe: extremely tall
  EXPECT_LT(foldedAr, flatAr / 10);  // folding flattens it dramatically
}

TEST(Mosfet, DiffusionAreasConserveStripes) {
  MosSpec spec{MosType::N, 36e-6, 0.7e-6, 3};
  DiffusionGeometry g = diffusionGeometry(kTech, spec);
  // 3 folds -> 4 stripes of 12 um fingers.
  double stripeArea = 12e-6 * kTech.diffExt;
  EXPECT_NEAR(g.drainArea + g.sourceArea, 4 * stripeArea, 1e-18);
  EXPECT_GT(g.sourceArea, 0);
  EXPECT_GT(g.drainArea, 0);
}

TEST(Ota, DefaultDesignIsReasonable) {
  Parasitics none;
  OtaPerformance perf = evalFoldedCascode(kTech, FoldedCascodeDesign{}, none);
  EXPECT_GT(perf.gainDb, 40.0);
  EXPECT_LT(perf.gainDb, 120.0);
  EXPECT_GT(perf.gbwHz, 1e6);
  EXPECT_GT(perf.pmDeg, 0.0);
  EXPECT_LT(perf.pmDeg, 90.0);
  EXPECT_GT(perf.powerW, 0.0);
}

TEST(Ota, ParasiticsDegradeBandwidthAndMargin) {
  FoldedCascodeDesign d;
  Parasitics none;
  Parasitics heavy{1e-12, 0.8e-12};
  OtaPerformance clean = evalFoldedCascode(kTech, d, none);
  OtaPerformance loaded = evalFoldedCascode(kTech, d, heavy);
  EXPECT_LT(loaded.gbwHz, clean.gbwHz);
  EXPECT_LT(loaded.pmDeg, clean.pmDeg);
  EXPECT_LT(loaded.srVps, clean.srVps);
  // DC gain is parasitic-capacitance independent.
  EXPECT_NEAR(loaded.gainDb, clean.gainDb, 1e-9);
}

TEST(Ota, SpecViolationZeroWhenMet) {
  OtaPerformance perf;
  perf.gainDb = 80;
  perf.gbwHz = 50e6;
  perf.pmDeg = 70;
  perf.srVps = 40e6;
  perf.powerW = 3e-3;
  perf.saturated = true;
  OtaSpecs specs;
  EXPECT_DOUBLE_EQ(specViolation(perf, specs), 0.0);
  perf.gainDb = 60;  // below the 72 dB floor
  EXPECT_GT(specViolation(perf, specs), 0.0);
}

TEST(Template, GeneratesLegalLayout) {
  TemplateLayout layout = generateFoldedCascodeLayout(kTech, FoldedCascodeDesign{});
  EXPECT_TRUE(layout.cells.isLegal());
  EXPECT_EQ(layout.cells.size(), layout.names.size());
  EXPECT_EQ(layout.cells.size(), 13u);  // 5 rows x 2 + tail + 2 caps
  EXPECT_GT(layout.width, 0);
  EXPECT_GT(layout.height, 0);
  EXPECT_GT(layout.outNetLen, 0.0);
  EXPECT_GT(layout.foldNetLen, 0.0);
}

TEST(Template, FoldingChangesOutline) {
  FoldedCascodeDesign flat;
  flat.m1 = flat.mp = flat.mn = 1;
  FoldedCascodeDesign folded;
  folded.m1 = folded.mp = folded.mn = 6;
  TemplateLayout a = generateFoldedCascodeLayout(kTech, flat);
  TemplateLayout b = generateFoldedCascodeLayout(kTech, folded);
  // Folding trades row height for row width.
  EXPECT_GT(a.height, b.height);
  EXPECT_LT(a.width, b.width);
}

TEST(Extract, ParasiticsArePositiveAndGeometryDriven) {
  FoldedCascodeDesign d;
  d.mp = d.mn = 1;  // unfolded: full-width drain stripes
  TemplateLayout layout = generateFoldedCascodeLayout(kTech, d);
  Parasitics par = extractParasitics(kTech, d, layout);
  EXPECT_GT(par.cOut, 0.0);
  EXPECT_GT(par.cFold, 0.0);
  // Folding shares drain stripes between fingers -> smaller junction load
  // at the output (the effect saturates beyond a few folds as sidewall and
  // wire length grow back, which is why folds are worth *optimizing*).
  FoldedCascodeDesign folded = d;
  folded.mp = folded.mn = 4;
  Parasitics parFolded =
      extractParasitics(kTech, folded, generateFoldedCascodeLayout(kTech, folded));
  EXPECT_LT(parFolded.cOut, par.cOut);
}

TEST(Sizing, LayoutAwareFlowMeetsSpecsPostLayout) {
  OtaSpecs specs;
  SizingOptions opt;
  opt.layoutAware = true;
  opt.seed = 7;
  SizingResult r = runSizing(kTech, specs, opt);
  EXPECT_GT(r.evaluations, 100u);
  EXPECT_TRUE(r.meetsSpecsExtracted)
      << "residual violation " << r.violationExtracted;
  // What the loop saw IS the post-layout truth in the aware flow.
  EXPECT_NEAR(r.violationSizing, r.violationExtracted, 1e-9);
  EXPECT_GT(r.extractShare, 0.0);
  EXPECT_LT(r.extractShare, 0.9);
}

TEST(Sizing, ElectricalOnlyFlowDegradesPostLayout) {
  OtaSpecs specs;
  SizingOptions opt;
  opt.layoutAware = false;
  opt.seed = 7;
  SizingResult r = runSizing(kTech, specs, opt);
  // The loop's own view is (near-)feasible...
  EXPECT_LT(r.violationSizing, 0.05);
  // ...but the extracted reality is strictly worse.
  EXPECT_GT(r.violationExtracted, r.violationSizing);
  EXPECT_LT(r.perfExtracted.pmDeg, r.perfSizing.pmDeg);
  EXPECT_LT(r.perfExtracted.gbwHz, r.perfSizing.gbwHz);
}

TEST(Sizing, DeterministicForSeed) {
  OtaSpecs specs;
  SizingOptions opt;
  opt.layoutAware = true;
  opt.seed = 11;
  SizingResult a = runSizing(kTech, specs, opt);
  SizingResult b = runSizing(kTech, specs, opt);
  EXPECT_DOUBLE_EQ(a.design.ib, b.design.ib);
  EXPECT_DOUBLE_EQ(a.design.w1, b.design.w1);
}

}  // namespace
}  // namespace als
