#include <gtest/gtest.h>

#include "bstar/bstar_tree.h"
#include "bstar/contour.h"
#include "bstar/flat_placer.h"
#include "bstar/pack.h"
#include "io/corpus.h"
#include "netlist/generators.h"
#include "test_util.h"

namespace als {
namespace {

TEST(BStarTree, BalancedConstruction) {
  BStarTree t(7);
  EXPECT_TRUE(t.isValid());
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.left(0), 1u);
  EXPECT_EQ(t.right(0), 2u);
  EXPECT_EQ(t.preorder().size(), 7u);
}

TEST(BStarTree, EmptyAndSingle) {
  BStarTree empty(0);
  EXPECT_TRUE(empty.isValid());
  EXPECT_TRUE(empty.preorder().empty());
  BStarTree one(1);
  EXPECT_TRUE(one.isValid());
  EXPECT_EQ(one.preorder(), std::vector<std::size_t>{0});
}

TEST(BStarTree, RandomTreesAreValid) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    BStarTree t = BStarTree::random(1 + rng.index(20), rng);
    EXPECT_TRUE(t.isValid());
  }
}

TEST(BStarTree, PerturbationsPreserveValidity) {
  Rng rng(7);
  BStarTree t = BStarTree::random(12, rng);
  for (int step = 0; step < 2000; ++step) {
    t.perturb(rng);
    ASSERT_TRUE(t.isValid()) << "step " << step;
  }
}

TEST(BStarTree, MoveNodeSplicesDisplacedChild) {
  BStarTree t(3);  // 0 root, 1 = left, 2 = right
  // Move leaf 1 to be the left child of 2.
  t.moveNode(1, 2, true);
  EXPECT_TRUE(t.isValid());
  EXPECT_EQ(t.left(2), 1u);
  EXPECT_EQ(t.left(0), BStarTree::npos);
}

TEST(Contour, RaiseAndQuery) {
  Contour c;
  EXPECT_EQ(c.maxOver(0, 100), 0);
  c.raise(0, 10, 5);
  EXPECT_EQ(c.maxOver(0, 10), 5);
  EXPECT_EQ(c.maxOver(10, 20), 0);
  c.raise(5, 15, 3);
  EXPECT_EQ(c.heightAt(0), 5);
  EXPECT_EQ(c.heightAt(5), 3);  // overwrite semantics
  EXPECT_EQ(c.heightAt(12), 3);
  EXPECT_EQ(c.maxOver(0, 20), 5);
}

TEST(Contour, FitMacroSteppedBottom) {
  Contour c;
  c.raise(0, 10, 8);
  c.raise(10, 30, 2);
  // Macro with a notch: tall part must clear height 8 only if it overlaps
  // [0,10); bottom rises to 6 over [0,4), flat 0 elsewhere.
  std::vector<ProfileStep> bottom{{0, 4, 6}, {4, 12, 0}};
  // Anchored at x=0: max(8-6, 8-0 over [4,10), 2-0 over [10,12)) = 8.
  EXPECT_EQ(c.fitMacro(0, bottom), 8);
  // Anchored at x=10: only the flat region meets height 2 -> y = 2... but
  // the notched part [10,14) also sits over height 2: max(2-6, 2-0) = 2.
  EXPECT_EQ(c.fitMacro(10, bottom), 2);
}

std::pair<std::vector<Coord>, std::vector<Coord>> dimsOf(const Circuit& c) {
  std::vector<Coord> w, h;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
  }
  return {w, h};
}

TEST(BStarPack, TwoModuleSemantics) {
  std::vector<Coord> w{10, 6}, h{4, 8};
  {  // 1 as left child of 0: to the right.
    BStarTree t(2);
    t.moveNode(1, 0, true);
    Placement p = packBStar(t, w, h);
    EXPECT_EQ(p[0], (Rect{0, 0, 10, 4}));
    EXPECT_EQ(p[1], (Rect{10, 0, 6, 8}));
  }
  {  // 1 as right child of 0: stacked above.
    BStarTree t(2);
    t.moveNode(1, 0, false);
    Placement p = packBStar(t, w, h);
    EXPECT_EQ(p[1], (Rect{0, 4, 6, 8}));
  }
}

TEST(BStarPack, AlwaysLegalAndCompact) {
  Circuit c = makeTableICircuit(TableICircuit::FoldedCascode);
  auto [w, h] = dimsOf(c);
  Rng rng(11);
  for (int trial = 0; trial < 60; ++trial) {
    BStarTree t = BStarTree::random(c.moduleCount(), rng);
    Placement p = packBStar(t, w, h);
    // Raw B*-tree packing ignores symmetry groups; the shared invariants
    // otherwise apply (footprints, overlap-freedom, non-negative quadrant).
    test_util::expectPlacementInvariants(
        p, c, {.symTolerance = test_util::kNoSymmetryCheck},
        "trial " + std::to_string(trial));
    // Lower-left compaction: bounding box anchored at the origin.
    EXPECT_EQ(p.boundingBox().x, 0);
    EXPECT_EQ(p.boundingBox().y, 0);
    EXPECT_GE(p.boundingBox().area(), c.totalModuleArea());
  }
}

TEST(BStarPack, PerturbedTreesStayLegal) {
  Circuit c = makeTableICircuit(TableICircuit::MillerV2);
  auto [w, h] = dimsOf(c);
  Rng rng(13);
  BStarTree t = BStarTree::random(c.moduleCount(), rng);
  for (int step = 0; step < 300; ++step) {
    t.perturb(rng);
    Placement p = packBStar(t, w, h);
    test_util::expectPlacementInvariants(
        p, c, {.symTolerance = test_util::kNoSymmetryCheck},
        "step " + std::to_string(step));
  }
}

TEST(BStarPack, MacroWithNotchInterleaves) {
  // Macro 0: an L-shape (tall tower + low shelf).  Module 1 placed as its
  // left child must slide into the shelf's airspace... it packs at the bbox
  // edge in x but its y can drop onto the shelf.
  Placement lshape;
  lshape.push({0, 0, 4, 20});
  lshape.push({4, 0, 16, 5});
  Macro l = Macro::fromPlacement(lshape, std::vector<ModuleId>{0, 1});
  Macro m = Macro::fromModule(2, 10, 10);

  BStarTree t(2);
  t.moveNode(1, 0, true);  // item 1 (module macro) right of item 0
  PackedMacros packed = packMacros(t, std::vector<Macro>{l, m}, 3);
  EXPECT_TRUE(packed.placement.isLegal());
  // Module 2 sits at x = 20 (bbox width), y = 0 (ground, right of shelf).
  EXPECT_EQ(packed.placement[2], (Rect{20, 0, 10, 10}));

  // As right child (stacked): the macro's top profile lets module 2 rest on
  // the shelf at height 5 instead of the tower top 20 — the contour-node
  // advantage over bounding boxes.
  BStarTree t2(2);
  t2.moveNode(1, 0, false);
  PackedMacros stacked = packMacros(t2, std::vector<Macro>{l, m}, 3);
  EXPECT_TRUE(stacked.placement.isLegal());
  EXPECT_EQ(stacked.placement[2].y, 20);  // anchored at x=0 over the tower
}

TEST(BStarPack, MacroAnchorsReported) {
  Macro a = Macro::fromModule(0, 10, 10);
  Macro b = Macro::fromModule(1, 5, 5);
  BStarTree t(2);
  t.moveNode(1, 0, true);
  PackedMacros packed = packMacros(t, std::vector<Macro>{a, b}, 2);
  EXPECT_EQ(packed.anchor[0], (Point{0, 0}));
  EXPECT_EQ(packed.anchor[1], (Point{10, 0}));
  EXPECT_EQ(packed.width, 15);
  EXPECT_EQ(packed.height, 10);
}

TEST(Macro, FromPlacementComputesProfiles) {
  Placement p;
  p.push({0, 0, 10, 20});
  p.push({10, 0, 10, 5});
  Macro m = Macro::fromPlacement(p, std::vector<ModuleId>{0, 1});
  EXPECT_EQ(m.w, 20);
  EXPECT_EQ(m.h, 20);
  ASSERT_EQ(m.top.size(), 2u);
  EXPECT_EQ(m.top[0].v, 20);
  EXPECT_EQ(m.top[1].v, 5);
  ASSERT_EQ(m.bottom.size(), 1u);  // flat bottom merges into one step
  EXPECT_EQ(m.bottom[0].v, 0);
}

/// Drives partial-repack and full-pack decodes through an SA-shaped random
/// move sequence (perturb, sometimes revert, sometimes re-orient an item)
/// and demands bit-identical placements after every single move.
void runPartialVsFull(std::vector<Coord> w, std::vector<Coord> h,
                      std::uint64_t seed, int moves) {
  const std::size_t n = w.size();
  Rng rng(seed);
  BStarTree tree = BStarTree::random(n, rng);
  BStarPackScratch partialScratch, fullScratch;
  Placement partial, full;
  std::size_t prevFirst = 0;
  for (int step = 0; step < moves; ++step) {
    BStarTree saved = tree;
    std::vector<Coord> savedW = w, savedH = h;
    if (rng.uniform() < 0.2) {  // orientation move: dims change, tree doesn't
      std::size_t m = rng.index(n);
      std::swap(w[m], h[m]);
    } else {
      tree.perturb(rng);
    }
    std::size_t first = packBStarPartialInto(tree, w, h, partialScratch, partial);
    ASSERT_LE(first, n);
    packBStarInto(tree, w, h, fullScratch, full);
    for (std::size_t m = 0; m < n; ++m) {
      ASSERT_TRUE(partial[m] == full[m])
          << "step " << step << " module " << m << " (suffix from " << first
          << ", previous " << prevFirst << ")";
    }
    prevFirst = first;
    if (rng.coin()) {  // reject: the next decode sees the reverted encoding
      tree = std::move(saved);
      w = std::move(savedW);
      h = std::move(savedH);
      first = packBStarPartialInto(tree, w, h, partialScratch, partial);
      packBStarInto(tree, w, h, fullScratch, full);
      for (std::size_t m = 0; m < n; ++m) {
        ASSERT_TRUE(partial[m] == full[m]) << "revert at step " << step;
      }
    }
  }
}

TEST(BStarPartialRepack, MatchesFullPackOverRandomMoves) {
  Rng rng(2024);
  for (std::size_t n : {2u, 3u, 9u, 17u, 33u, 64u}) {
    std::vector<Coord> w(n), h(n);
    for (std::size_t m = 0; m < n; ++m) {
      w[m] = 1 + rng.uniformInt(0, 30);
      h[m] = 1 + rng.uniformInt(0, 30);
    }
    runPartialVsFull(std::move(w), std::move(h), 7 * n + 1, 200);
  }
}

TEST(BStarPartialRepack, MatchesFullPackAtCorpusScale) {
  for (CorpusCircuit which :
       {CorpusCircuit::Ami33, CorpusCircuit::Ami49, CorpusCircuit::N100,
        CorpusCircuit::N300}) {
    Circuit c = loadCorpusCircuit(which);
    std::vector<Coord> w(c.moduleCount()), h(c.moduleCount());
    for (std::size_t m = 0; m < c.moduleCount(); ++m) {
      w[m] = c.module(m).w;
      h[m] = c.module(m).h;
    }
    int moves = c.moduleCount() > 100 ? 40 : 120;
    runPartialVsFull(std::move(w), std::move(h), 31, moves);
  }
}

TEST(BStarPartialRepack, FullPackInvalidatesTheRecord) {
  // Mixing entry points on one scratch must stay sound: a full pack orphans
  // the partial record, so the next partial call re-packs from scratch.
  Rng rng(55);
  std::vector<Coord> w{4, 7, 3, 9, 5}, h{6, 2, 8, 4, 7};
  BStarTree tree = BStarTree::random(5, rng);
  BStarPackScratch scratch, fresh;
  Placement viaMixed, viaFresh;
  packBStarPartialInto(tree, w, h, scratch, viaMixed);
  tree.perturb(rng);
  packBStarInto(tree, w, h, scratch, viaMixed);  // invalidates scratch.repack
  EXPECT_FALSE(scratch.repack.valid);
  tree.perturb(rng);
  std::size_t first = packBStarPartialInto(tree, w, h, scratch, viaMixed);
  EXPECT_EQ(first, 0u) << "orphaned record must force a cold pack";
  packBStarInto(tree, w, h, fresh, viaFresh);
  for (std::size_t m = 0; m < 5; ++m) ASSERT_TRUE(viaMixed[m] == viaFresh[m]);
}

TEST(FlatBStarPlacer, PartialDecodeMatchesFullDecodeTrajectory) {
  // Same seed, partial decode on vs off: the SA trajectories must be
  // bit-identical (partial repack and the hinted cost propose may change
  // *how* the cost is computed, never its value).
  for (CorpusCircuit which : {CorpusCircuit::Apte, CorpusCircuit::Ami33,
                              CorpusCircuit::N100}) {
    Circuit c = loadCorpusCircuit(which);
    FlatBStarOptions on, off;
    on.maxSweeps = off.maxSweeps = which == CorpusCircuit::N100 ? 6 : 24;
    on.seed = off.seed = 77;
    on.partialDecode = true;
    off.partialDecode = false;
    FlatBStarResult a = placeFlatBStarSA(c, on);
    FlatBStarResult b = placeFlatBStarSA(c, off);
    ASSERT_EQ(a.movesTried, b.movesTried);
    ASSERT_EQ(a.cost, b.cost) << corpusName(which);
    ASSERT_EQ(a.area, b.area);
    ASSERT_EQ(a.hpwl, b.hpwl);
    ASSERT_EQ(a.placement.size(), b.placement.size());
    for (std::size_t m = 0; m < a.placement.size(); ++m) {
      ASSERT_TRUE(a.placement[m] == b.placement[m]) << corpusName(which);
    }
  }
}

TEST(Macro, MirrorPreservesFootprintMultiset) {
  Placement p;
  p.push({0, 0, 4, 8});
  p.push({4, 2, 6, 3});
  Macro m = Macro::fromPlacement(p, std::vector<ModuleId>{0, 1});
  Macro mm = m.mirroredX();
  EXPECT_EQ(mm.w, m.w);
  EXPECT_EQ(mm.h, m.h);
  // Rect 0 lands on the right side after mirroring.
  EXPECT_EQ(mm.rects[0].xlo(), 6);
}

}  // namespace
}  // namespace als
