#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "seqpair/sa_placer.h"
#include "seqpair/absolute_placer.h"
#include "seqpair/sym_placer.h"
#include "seqpair/symmetry.h"

namespace als {
namespace {

std::pair<std::vector<Coord>, std::vector<Coord>> dimsOf(const Circuit& c) {
  std::vector<Coord> w, h;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
  }
  return {w, h};
}

TEST(SymPlacer, PaperFig1PairBuildsLegalSymmetricPlacement) {
  Circuit c = makeFig1Example();
  auto [w, h] = dimsOf(c);
  // (EBAFCDG, EBCDFAG) with E=0 B=1 A=2 F=3 C=4 D=5 G=6.
  SequencePair sp({0, 1, 2, 3, 4, 5, 6}, {0, 1, 4, 5, 3, 2, 6});
  auto result = buildSymmetricPlacement(sp, w, h, c.symmetryGroups());
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->placement.isLegal());
  EXPECT_TRUE(verifySymmetry(result->placement, c.symmetryGroups(), result->axis2x));
  // C left of D as in Fig. 1.
  EXPECT_LT(result->placement[4].x, result->placement[5].x);
  // B left of G.
  EXPECT_LT(result->placement[1].x, result->placement[6].x);
}

TEST(SymPlacer, NoGroupsReducesToPlainPacking) {
  Circuit c = makeTableICircuit(TableICircuit::ComparatorV2);
  auto [w, h] = dimsOf(c);
  Rng rng(3);
  SequencePair sp = SequencePair::random(c.moduleCount(), rng);
  auto result = buildSymmetricPlacement(sp, w, h, {});
  ASSERT_TRUE(result.has_value());
  Placement ref = packSequencePair(sp, w, h);
  for (std::size_t m = 0; m < c.moduleCount(); ++m) {
    EXPECT_EQ(result->placement[m], ref[m]);
  }
}

/// Property sweep: random S-F codes on several circuits must always build
/// legal, exactly symmetric placements that respect the SP relations.
class SymPlacerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymPlacerPropertyTest, RandomSfCodesAlwaysBuild) {
  Circuit c = makeSynthetic({.name = "prop",
                             .moduleCount = 24,
                             .seed = GetParam(),
                             .symmetricFraction = 0.7});
  auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
  ASSERT_FALSE(groups.empty());
  auto [w, h] = dimsOf(c);
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    SequencePair sp = SequencePair::random(c.moduleCount(), rng);
    makeSymmetricFeasible(sp, groups);
    auto result = buildSymmetricPlacement(sp, w, h, groups);
    ASSERT_TRUE(result.has_value()) << "trial " << trial;
    ASSERT_TRUE(result->placement.isLegal()) << "trial " << trial;
    ASSERT_TRUE(verifySymmetry(result->placement, groups, result->axis2x));
    // The island relaxation should never need the stacked fallback on
    // S-F codes.
    EXPECT_EQ(result->fallbacks, 0) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymPlacerPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SymPlacer, AreaBoundedBelowByModuleArea) {
  Circuit c = makeMillerOpAmp();
  auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
  auto [w, h] = dimsOf(c);
  Rng rng(19);
  for (int trial = 0; trial < 60; ++trial) {
    SequencePair sp = SequencePair::random(c.moduleCount(), rng);
    makeSymmetricFeasible(sp, groups);
    auto sym = buildSymmetricPlacement(sp, w, h, groups);
    ASSERT_TRUE(sym.has_value());
    EXPECT_GE(sym->placement.boundingBox().area(), c.totalModuleArea());
  }
}

TEST(SymPlacer, GroupsFormContiguousIslands) {
  // The symmetry-island formulation places each group as one connected
  // block: its members' bounding box contains no foreign module.
  Circuit c = makeSynthetic({.name = "isl",
                             .moduleCount = 20,
                             .seed = 77,
                             .symmetricFraction = 0.6});
  auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
  ASSERT_FALSE(groups.empty());
  auto [w, h] = dimsOf(c);
  Rng rng(78);
  for (int trial = 0; trial < 20; ++trial) {
    SequencePair sp = SequencePair::random(c.moduleCount(), rng);
    makeSymmetricFeasible(sp, groups);
    auto result = buildSymmetricPlacement(sp, w, h, groups);
    ASSERT_TRUE(result.has_value());
    for (const SymmetryGroup& g : c.symmetryGroups()) {
      Placement members;
      for (ModuleId m : g.members()) members.push(result->placement[m]);
      Rect box = members.boundingBox();
      for (std::size_t m = 0; m < c.moduleCount(); ++m) {
        if (g.contains(m)) continue;
        EXPECT_FALSE(result->placement[m].overlaps(box))
            << "module " << m << " intrudes island of " << g.name;
      }
    }
  }
}

TEST(SaPlacer, MillerOpAmpPlacesSymmetrically) {
  Circuit c = makeMillerOpAmp();
  SeqPairPlacerOptions opt;
  opt.maxSweeps = 250;
  opt.seed = 5;
  SeqPairPlacerResult r = placeSeqPairSA(c, opt);
  ASSERT_EQ(r.placement.size(), c.moduleCount());
  EXPECT_TRUE(r.placement.isLegal());
  EXPECT_TRUE(verifySymmetry(r.placement, c.symmetryGroups(), r.axis2x));
  EXPECT_TRUE(isSymmetricFeasible(r.code, c.symmetryGroups()));
  // The annealer should not be worse than 3x dead space.
  EXPECT_LT(r.area, 4 * c.totalModuleArea());
}

TEST(SaPlacer, AspectObjectiveShapesTheOutline) {
  Circuit c = makeSynthetic({.name = "ar", .moduleCount = 20, .seed = 44});
  // Fixed sweep budget + fixed seed: this test was flaky when SA sweeps were
  // wall-clock-bounded (ASan/UBSan or a loaded CI box starved the annealer).
  SeqPairPlacerOptions wide;
  wide.maxSweeps = 250;
  wide.seed = 4;
  wide.targetAspect = 4.0;
  SeqPairPlacerResult w = placeSeqPairSA(c, wide);

  SeqPairPlacerOptions tall = wide;
  tall.targetAspect = 0.25;
  SeqPairPlacerResult t = placeSeqPairSA(c, tall);

  double arWide = static_cast<double>(w.placement.boundingBox().w) /
                  static_cast<double>(w.placement.boundingBox().h);
  double arTall = static_cast<double>(t.placement.boundingBox().w) /
                  static_cast<double>(t.placement.boundingBox().h);
  EXPECT_GT(arWide, 1.5);
  EXPECT_LT(arTall, 0.67);
  EXPECT_TRUE(w.placement.isLegal());
  EXPECT_TRUE(t.placement.isLegal());
}

TEST(SaPlacer, MaxWidthRestrictionSteersTheOutline) {
  Circuit c = makeSynthetic({.name = "mw", .moduleCount = 16, .seed = 45});
  // Unconstrained run first, then cap the width at 90% of it.  The cap is a
  // (strong) penalty, not a hard constraint — the widest symmetry island
  // bounds what is feasible — so the contract is: the capped run fits the
  // requested outline when a mild shrink is requested.
  SeqPairPlacerOptions free;
  free.maxSweeps = 250;
  free.seed = 6;
  Coord freeWidth = placeSeqPairSA(c, free).placement.boundingBox().w;

  SeqPairPlacerOptions capped = free;
  capped.maxSweeps = 450;
  capped.maxWidth = freeWidth * 9 / 10;
  SeqPairPlacerResult r = placeSeqPairSA(c, capped);
  EXPECT_LE(r.placement.boundingBox().w, capped.maxWidth);
  EXPECT_TRUE(r.placement.isLegal());
  EXPECT_TRUE(verifySymmetry(r.placement, c.symmetryGroups(), r.axis2x));
}

TEST(SaPlacer, DeterministicForFixedSeed) {
  Circuit c = makeFig1Example();
  SeqPairPlacerOptions opt;
  opt.maxSweeps = 120;
  opt.seed = 9;
  SeqPairPlacerResult a = placeSeqPairSA(c, opt);
  SeqPairPlacerResult b = placeSeqPairSA(c, opt);
  EXPECT_EQ(a.area, b.area);
  EXPECT_EQ(a.hpwl, b.hpwl);
  EXPECT_EQ(a.movesTried, b.movesTried);
  EXPECT_EQ(a.sweeps, b.sweeps);
}

TEST(AbsolutePlacer, ProducesFiniteResult) {
  Circuit c = makeFig1Example();
  AbsolutePlacerOptions opt;
  opt.maxSweeps = 150;
  AbsolutePlacerResult r = placeAbsoluteSA(c, opt);
  EXPECT_EQ(r.placement.size(), c.moduleCount());
  EXPECT_GT(r.area, 0);
  // The baseline explores unfeasible space; it reports violations honestly.
  EXPECT_GE(r.overlapArea, 0);
  EXPECT_GE(r.symViolation, 0);
}

}  // namespace
}  // namespace als
