#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "util/epoch_marks.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace als {
namespace {

TEST(EpochMarks, MarksOncePerRound) {
  EpochMarks marks;
  marks.beginRound(4);
  EXPECT_TRUE(marks.mark(2));
  EXPECT_FALSE(marks.mark(2));
  EXPECT_TRUE(marks.mark(0));
  EXPECT_TRUE(marks.marked(2));
  EXPECT_FALSE(marks.marked(1));
}

TEST(EpochMarks, BeginRoundClearsInO1AndGrows) {
  EpochMarks marks;
  marks.beginRound(2);
  EXPECT_TRUE(marks.mark(1));
  marks.beginRound(8);  // grow + fresh round
  EXPECT_FALSE(marks.marked(1));
  EXPECT_TRUE(marks.mark(7));
  marks.beginRound(8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FALSE(marks.marked(i));
}

TEST(Table, RendersHeaderSeparatorAndRows) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"beta", "22"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("|-"), std::string::npos);
  // Four lines: header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.addRow({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("x"), std::string::npos);
}

TEST(Table, ColumnsSizeToWidestCell) {
  Table t({"h"});
  t.addRow({"wide-cell-content"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  std::size_t header = s.find('\n');
  std::size_t row = s.rfind('\n', s.size() - 2);
  // Header line and row line have equal width (row spans row+1 .. size-2).
  EXPECT_EQ(header, s.size() - row - 2);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmtPercent(0.9986), "99.86%");
  EXPECT_EQ(Table::fmtPercent(0.5, 0), "50%");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.uniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo = sawLo || v == -3;
    sawHi = sawHi || v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(13), 13u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.index(1), 0u);
  }
}

TEST(Rng, UniformRealInHalfOpenRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += rng.uniform(2.0, 4.0);
  EXPECT_NEAR(sum / 10000.0, 3.0, 0.05);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Stopwatch, MonotoneAndResettable) {
  Stopwatch sw;
  double t0 = sw.seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double t1 = sw.seconds();
  EXPECT_GE(t1, t0);
  EXPECT_GT(t1, 0.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), t1);
  EXPECT_NEAR(sw.millis(), sw.seconds() * 1e3, 1.0);
}

}  // namespace
}  // namespace als
