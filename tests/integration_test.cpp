// Cross-subsystem integration tests: the four placement engines and the
// deterministic placer run end-to-end on shared circuits, and their
// contracts are verified against each other.
#include <gtest/gtest.h>

#include "bstar/flat_placer.h"
#include "bstar/hbstar.h"
#include "netlist/generators.h"
#include "seqpair/absolute_placer.h"
#include "seqpair/sa_placer.h"
#include "seqpair/sym_placer.h"
#include "shapefn/deterministic.h"
#include "shapefn/enumerate.h"
#include "slicing/slicing_placer.h"
#include "thermal/thermal.h"

namespace als {
namespace {

class EnginesOnCircuit : public ::testing::TestWithParam<TableICircuit> {};

TEST_P(EnginesOnCircuit, AllEnginesProduceLegalPlacements) {
  Circuit c = makeTableICircuit(GetParam());
  const std::size_t budget = 250;  // SA sweeps: one full schedule + restart

  SeqPairPlacerOptions spOpt;
  spOpt.maxSweeps = budget;
  SeqPairPlacerResult sp = placeSeqPairSA(c, spOpt);
  EXPECT_TRUE(sp.placement.isLegal());
  EXPECT_TRUE(verifySymmetry(sp.placement, c.symmetryGroups(), sp.axis2x));

  HBPlacerOptions hbOpt;
  hbOpt.maxSweeps = budget;
  HBPlacerResult hb = placeHBStarSA(c, hbOpt);
  EXPECT_TRUE(hb.placement.isLegal());
  EXPECT_TRUE(verifySymmetry(hb.placement, c.symmetryGroups(), hb.axis2x));

  FlatBStarOptions fbOpt;
  fbOpt.maxSweeps = budget;
  FlatBStarResult fb = placeFlatBStarSA(c, fbOpt);
  EXPECT_TRUE(fb.placement.isLegal());

  SlicingPlacerOptions slOpt;
  slOpt.maxSweeps = budget;
  SlicingPlacerResult sl = placeSlicingSA(c, slOpt);
  EXPECT_TRUE(sl.placement.isLegal());

  DeterministicResult det = placeDeterministic(c, {});
  EXPECT_TRUE(det.placement.isLegal());
  for (const SymmetryGroup& g : c.symmetryGroups()) {
    EXPECT_TRUE(mirrorAxisOf(det.placement, g).has_value()) << g.name;
  }

  // Sanity: every engine beats 3x dead space on these circuits.
  Coord modArea = c.totalModuleArea();
  for (Coord area : {sp.area, hb.area, fb.area, sl.area, det.area}) {
    EXPECT_GE(area, modArea);
    EXPECT_LT(area, 3 * modArea);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallTableI, EnginesOnCircuit,
                         ::testing::Values(TableICircuit::MillerV2,
                                           TableICircuit::ComparatorV2,
                                           TableICircuit::FoldedCascode),
                         [](const auto& info) {
                           std::string n = tableIName(info.param);
                           for (char& ch : n) {
                             if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return n;
                         });

TEST(Integration, DeterministicVsAnnealedAreasComparable) {
  // The deterministic placer must land in the same area class as SA —
  // neither an order of magnitude better (impossible) nor worse (broken).
  Circuit c = makeTableICircuit(TableICircuit::FoldedCascode);
  DeterministicResult det = placeDeterministic(c, {});
  SeqPairPlacerOptions opt;
  opt.maxSweeps = 400;
  SeqPairPlacerResult sa = placeSeqPairSA(c, opt);
  double ratio =
      static_cast<double>(det.area) / static_cast<double>(sa.area);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Integration, SymmetricPlacementFeedsThermalAnalysis) {
  // Placement -> thermal pipeline: the symmetric placement of a synthetic
  // circuit yields zero mismatch for pairs whose radiator sits on their own
  // group axis (here: self-symmetric member of the same group).
  Circuit c = makeSynthetic({.name = "pipe",
                             .moduleCount = 15,
                             .seed = 5,
                             .symmetricFraction = 0.8});
  SeqPairPlacerOptions opt;
  opt.maxSweeps = 150;
  SeqPairPlacerResult r = placeSeqPairSA(c, opt);
  ASSERT_TRUE(r.placement.isLegal());
  for (const SymmetryGroup& g : c.symmetryGroups()) {
    if (g.selfs.empty() || g.pairs.empty()) continue;
    std::vector<double> power(c.moduleCount(), 0.0);
    power[g.selfs.front()] = 0.3;  // radiator on this group's axis
    ThermalField field(sourcesFromPlacement(r.placement, power));
    for (double m : pairTemperatureMismatch(r.placement, g, field)) {
      EXPECT_NEAR(m, 0.0, 1e-9) << "group " << g.name;
    }
  }
}

TEST(Integration, HierarchyAndGroupsStayConsistentAcrossEngines) {
  // The same circuit object drives SP (groups), HB (hierarchy+groups) and
  // deterministic (hierarchy) placers without mutation.
  Circuit c = makeMillerOpAmp();
  std::size_t groupsBefore = c.symmetryGroups().size();
  std::size_t nodesBefore = c.hierarchy().nodeCount();
  SeqPairPlacerOptions spOpt;
  spOpt.maxSweeps = 60;
  placeSeqPairSA(c, spOpt);
  HBPlacerOptions hbOpt;
  hbOpt.maxSweeps = 60;
  placeHBStarSA(c, hbOpt);
  placeDeterministic(c, {});
  EXPECT_EQ(c.symmetryGroups().size(), groupsBefore);
  EXPECT_EQ(c.hierarchy().nodeCount(), nodesBefore);
}

TEST(Integration, AbsoluteBaselineConvergesOnTrivialInstance) {
  // Two equal cells, no constraints: the absolute placer should find a
  // legal abutment (its weakness only shows at scale).
  Circuit c("two");
  c.addModule("a", 10 * kUm, 10 * kUm);
  c.addModule("b", 10 * kUm, 10 * kUm);
  AbsolutePlacerOptions opt;
  opt.maxSweeps = 300;
  AbsolutePlacerResult r = placeAbsoluteSA(c, opt);
  EXPECT_EQ(r.overlapArea, 0);
  EXPECT_LE(r.area, 2 * c.totalModuleArea());
}

}  // namespace
}  // namespace als
