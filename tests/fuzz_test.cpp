// Randomized differential tests ("fuzz") for the geometric substrates the
// placers build on: contour, profiles, slides, macro packing — plus the
// benchmark parser, which must turn arbitrarily corrupted text into a clean
// error (never a crash, assert or leak; ci.sh runs this suite under
// ASan/UBSan).  The geometric suites check the optimized structure against
// a brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "bstar/contour.h"
#include "bstar/pack.h"
#include "geom/profile.h"
#include "io/benchmark_format.h"
#include "io/corpus.h"
#include "io/serve_protocol.h"
#include "util/rng.h"

namespace als {
namespace {

TEST(ContourFuzz, MatchesArrayOracle) {
  // Oracle: plain array over [0, W) holding the height of every column.
  constexpr Coord kWidth = 200;
  Rng rng(101);
  for (int round = 0; round < 50; ++round) {
    Contour contour;
    std::vector<Coord> oracle(kWidth, 0);
    for (int step = 0; step < 60; ++step) {
      Coord x1 = rng.uniformInt(0, kWidth - 2);
      Coord x2 = rng.uniformInt(x1 + 1, kWidth - 1);
      if (rng.coin()) {
        Coord h = rng.uniformInt(0, 50);
        contour.raise(x1, x2, h);
        for (Coord x = x1; x < x2; ++x) oracle[static_cast<std::size_t>(x)] = h;
      } else {
        Coord expect = 0;
        for (Coord x = x1; x < x2; ++x) {
          expect = std::max(expect, oracle[static_cast<std::size_t>(x)]);
        }
        ASSERT_EQ(contour.maxOver(x1, x2), expect)
            << "round " << round << " step " << step;
      }
    }
  }
}

TEST(ProfileFuzz, TopProfileMatchesPointwiseOracle) {
  Rng rng(103);
  for (int round = 0; round < 100; ++round) {
    std::vector<Rect> rects;
    std::size_t n = 1 + rng.index(8);
    for (std::size_t i = 0; i < n; ++i) {
      rects.push_back({rng.uniformInt(0, 40), rng.uniformInt(0, 40),
                       rng.uniformInt(1, 20), rng.uniformInt(1, 20)});
    }
    auto top = topProfile(rects);
    // Pointwise check at segment midpoints and random x.
    auto oracleAt = [&](Coord x) {
      Coord best = INT64_MIN;
      for (const Rect& r : rects) {
        if (r.xlo() <= x && x < r.xhi()) best = std::max(best, r.yhi());
      }
      return best;
    };
    for (const ProfileStep& s : top) {
      ASSERT_LT(s.lo, s.hi);
      ASSERT_EQ(oracleAt(s.lo), s.v);
      ASSERT_EQ(oracleAt(s.hi - 1), s.v);
    }
    for (int probe = 0; probe < 20; ++probe) {
      Coord x = rng.uniformInt(0, 60);
      Coord oracle = oracleAt(x);
      Coord got = INT64_MIN;
      for (const ProfileStep& s : top) {
        if (s.lo <= x && x < s.hi) got = s.v;
      }
      ASSERT_EQ(got, oracle) << "x=" << x;
    }
  }
}

TEST(SlideFuzz, ContactIsMinimalLegalOffset) {
  Rng rng(107);
  for (int round = 0; round < 200; ++round) {
    auto randomRects = [&](std::size_t maxN) {
      std::vector<Rect> v;
      std::size_t n = 1 + rng.index(maxN);
      for (std::size_t i = 0; i < n; ++i) {
        v.push_back({rng.uniformInt(0, 30), rng.uniformInt(0, 30),
                     rng.uniformInt(1, 12), rng.uniformInt(1, 12)});
      }
      return v;
    };
    std::vector<Rect> a = randomRects(5);
    std::vector<Rect> b = randomRects(5);
    Coord dx = slideContactX(a, b);
    if (dx == noContact) {
      // No pair shares a y-range: any offset is overlap-free.
      for (const Rect& ra : a) {
        for (const Rect& rb : b) {
          ASSERT_FALSE(ra.ylo() < rb.yhi() && rb.ylo() < ra.yhi());
        }
      }
      continue;
    }
    auto overlapsAt = [&](Coord offset) {
      for (const Rect& ra : a) {
        for (const Rect& rb : b) {
          if (ra.overlaps(rb.translated(offset, 0))) return true;
        }
      }
      return false;
    };
    ASSERT_FALSE(overlapsAt(dx)) << "contact offset must be legal";
    ASSERT_TRUE(overlapsAt(dx - 1)) << "one step left must collide";
  }
}

TEST(SlideFuzz, VerticalMirrorsHorizontal) {
  // slideContactY on transposed rect sets equals slideContactX.
  Rng rng(109);
  auto transpose = [](std::vector<Rect> v) {
    for (Rect& r : v) r = {r.y, r.x, r.h, r.w};
    return v;
  };
  for (int round = 0; round < 100; ++round) {
    std::vector<Rect> a, b;
    for (std::size_t i = 0; i < 3; ++i) {
      a.push_back({rng.uniformInt(0, 20), rng.uniformInt(0, 20),
                   rng.uniformInt(1, 8), rng.uniformInt(1, 8)});
      b.push_back({rng.uniformInt(0, 20), rng.uniformInt(0, 20),
                   rng.uniformInt(1, 8), rng.uniformInt(1, 8)});
    }
    ASSERT_EQ(slideContactX(a, b), slideContactY(transpose(a), transpose(b)));
  }
}

TEST(MacroPackFuzz, RandomMacroTreesStayLegal) {
  Rng rng(113);
  for (int round = 0; round < 60; ++round) {
    // Build 3-6 macros, each a small packed placement.
    std::size_t macroCount = 3 + rng.index(4);
    std::vector<Macro> macros;
    std::size_t moduleId = 0;
    for (std::size_t m = 0; m < macroCount; ++m) {
      Placement p;
      std::vector<ModuleId> owners;
      Coord x = 0;
      std::size_t rectCount = 1 + rng.index(3);
      for (std::size_t r = 0; r < rectCount; ++r) {
        Coord w = rng.uniformInt(2, 10), h = rng.uniformInt(2, 10);
        p.push({x, rng.uniformInt(0, 6), w, h});
        owners.push_back(moduleId++);
        x += w;
      }
      macros.push_back(Macro::fromPlacement(p, owners));
    }
    BStarTree tree = BStarTree::random(macroCount, rng);
    PackedMacros packed = packMacros(tree, macros, moduleId);
    ASSERT_TRUE(packed.placement.isLegal()) << "round " << round;
    Rect bb = packed.placement.boundingBox();
    ASSERT_LE(bb.xhi(), packed.width);
    ASSERT_LE(bb.yhi(), packed.height);
  }
}

TEST(MacroPackFuzz, PerturbedMacroTreesStayLegal) {
  Rng rng(127);
  std::vector<Macro> macros;
  std::size_t moduleId = 0;
  for (std::size_t m = 0; m < 5; ++m) {
    Placement p;
    std::vector<ModuleId> owners;
    p.push({0, 0, rng.uniformInt(3, 12), rng.uniformInt(3, 12)});
    owners.push_back(moduleId++);
    p.push({p[0].w, 0, rng.uniformInt(3, 12), rng.uniformInt(2, 6)});
    owners.push_back(moduleId++);
    macros.push_back(Macro::fromPlacement(p, owners));
  }
  BStarTree tree(5);
  for (int step = 0; step < 400; ++step) {
    tree.perturb(rng);
    PackedMacros packed = packMacros(tree, macros, moduleId);
    ASSERT_TRUE(packed.placement.isLegal()) << "step " << step;
  }
}

// --- benchmark parser ----------------------------------------------------

/// A parse attempt is "clean" when it either fails with a message or
/// succeeds with a circuit that passes validation and carries a hierarchy —
/// the downstream placers' entry contract.
void expectCleanParse(std::string_view text, const char* what) {
  ParseResult r = parseBenchmark(text);
  if (r.ok()) {
    std::string why;
    EXPECT_TRUE(r.circuit.validate(&why)) << what << ": " << why;
    EXPECT_FALSE(r.circuit.hierarchy().empty()) << what;
    EXPECT_GT(r.circuit.moduleCount(), 0u) << what;
  } else {
    EXPECT_FALSE(r.error.empty()) << what;
  }
}

TEST(ParserFuzz, EveryTruncationFailsCleanly) {
  // Apte carries a Power section and Ami33 both Power and Shape, so every
  // prefix of the optional annotation sections is exercised as well.
  for (CorpusCircuit which :
       {CorpusCircuit::Apte, CorpusCircuit::Xerox, CorpusCircuit::Ami33}) {
    std::string_view text = corpusText(which);
    for (std::size_t len = 0; len < text.size(); ++len) {
      expectCleanParse(text.substr(0, len),
                       (std::string(corpusName(which)) + " truncated to " +
                        std::to_string(len))
                           .c_str());
    }
  }
}

TEST(ParserFuzz, ByteCorruptionsFailCleanly) {
  // Hp carries Power and Shape annotations — flips land in those lines too.
  std::string_view base = corpusText(CorpusCircuit::Hp);
  Rng rng(211);
  for (int round = 0; round < 400; ++round) {
    std::string text(base);
    std::size_t flips = 1 + rng.index(4);
    for (std::size_t f = 0; f < flips; ++f) {
      std::size_t at = rng.index(text.size());
      text[at] = static_cast<char>(rng.uniformInt(0, 255));
    }
    expectCleanParse(text, ("corruption round " + std::to_string(round)).c_str());
  }
}

TEST(ParserFuzz, LineShufflesFailCleanly) {
  std::string_view base = corpusText(CorpusCircuit::Ami49);
  std::vector<std::string> lines;
  std::string current;
  for (char c : base) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  Rng rng(223);
  for (int round = 0; round < 120; ++round) {
    std::vector<std::string> shuffled = lines;
    // A few random transpositions keep most structure intact — the nastiest
    // inputs are *almost* valid files.
    for (int swaps = 0; swaps < 6; ++swaps) {
      std::swap(shuffled[rng.index(shuffled.size())],
                shuffled[rng.index(shuffled.size())]);
    }
    std::string text;
    for (const std::string& line : shuffled) text += line + "\n";
    expectCleanParse(text, ("shuffle round " + std::to_string(round)).c_str());
  }
}

TEST(ParserFuzz, HostileCountsAndTokensFailCleanly) {
  const char* hostile[] = {
      "ALSBENCH 1\nCircuit c\nNumBlocks 99999999999999999999\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1000001\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 999999999999 5\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a -4 5\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nSoftBlock s 1e308 0.5 2\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nSoftBlock s nan 0.5 2\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nSoftBlock s 100 inf 2\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumNets 1\n"
      "Net n 4294967295 a\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumHierNodes 7\n"
      "Leaf a a\nGroup g none - 1 0\nGroup h none - 1 1\nGroup i none - 1 2\n"
      "Group j none - 1 3\nGroup k none - 1 4\nGroup l none - 1 5\nRoot 99\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumHierNodes 2\n"
      "Leaf a a\nGroup g none - 2 0 0\nRoot 1\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumHierNodes 2\n"
      "Leaf x a\nLeaf y a\nRoot 0\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\n"
      "NumPower 99999999999999999999\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumPower 2\n"
      "Power a 0.5\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumPower 1\n"
      "Power a 1e309\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\n"
      "NumShapes 99999999999999999999\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumShapes 1\n"
      "Shape a 4294967295 1 1\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumShapes 1\n"
      "Shape a 2 1 1\n",
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumShapes 1\n"
      "Shape a 1 999999999999 1\n",
  };
  for (const char* text : hostile) {
    ParseResult r = parseBenchmark(text);
    EXPECT_FALSE(r.ok()) << text;
    EXPECT_FALSE(r.error.empty()) << text;
  }
}

TEST(ParserFuzz, RandomTokenSoupFailsCleanly) {
  const char* words[] = {"ALSBENCH", "Circuit",  "NumBlocks", "Block",
                         "SoftBlock", "NumNets",  "Net",       "NumSymGroups",
                         "SymGroup",  "SymPair",  "SymSelf",   "NumHierNodes",
                         "Leaf",      "Group",    "Root",      "1",
                         "0",         "-3",       "4e9",       "a",
                         "b",         "norotate", "none",      "symmetry",
                         "#",         "common-centroid",       "NumPower",
                         "Power",     "NumShapes", "Shape",    "0.5"};
  Rng rng(227);
  for (int round = 0; round < 300; ++round) {
    std::string text;
    std::size_t tokens = rng.index(120);
    for (std::size_t t = 0; t < tokens; ++t) {
      text += words[rng.index(std::size(words))];
      text += rng.uniform() < 0.25 ? '\n' : ' ';
    }
    expectCleanParse(text, ("soup round " + std::to_string(round)).c_str());
  }
}

// --- ALSRESULT / serve wire ----------------------------------------------
//
// The serve stack's integrity claim is that a damaged ALSRESULT payload —
// truncated, bit-flipped, hostile-counted or outright soup — fails
// parseResultText with a message, never crashes, never over-allocates and
// never parses into a silently wrong result.  The checksum trailer makes
// the first two properties total: ANY change to the sealed bytes must be
// rejected.

/// A random but structurally valid result to serialize.
EngineResult randomResult(Rng& rng) {
  EngineResult r;
  r.cost = rng.uniform() * 1e6;
  r.area = rng.uniformInt(1, 1 << 20);
  r.hpwl = rng.uniformInt(0, 1 << 20);
  r.movesTried = rng.index(100000);
  r.sweeps = rng.index(4096);
  r.restartsRun = 1 + rng.index(8);
  r.bestRestart = rng.index(r.restartsRun);
  r.bestSeed = rng.index(1u << 30);
  const std::size_t n = 1 + rng.index(40);
  Placement p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = {rng.uniformInt(0, 500), rng.uniformInt(0, 500),
            rng.uniformInt(1, 60), rng.uniformInt(1, 60)};
  }
  r.placement = p;
  return r;
}

TEST(ResultTextFuzz, EveryTruncationFailsCleanly) {
  Rng rng(307);
  for (int round = 0; round < 6; ++round) {
    std::string wire;
    writeResultText(round % 2 == 0 ? EngineBackend::SeqPair
                                   : EngineBackend::HBStar,
                    randomResult(rng), wire);
    EngineBackend backend = EngineBackend::FlatBStar;
    EngineResult parsed;
    ASSERT_EQ(parseResultText(wire, backend, parsed), "");
    for (std::size_t len = 0; len < wire.size(); ++len) {
      EXPECT_NE(parseResultText(std::string_view(wire).substr(0, len),
                                backend, parsed),
                "")
          << "round " << round << " truncated to " << len;
    }
  }
}

TEST(ResultTextFuzz, ByteCorruptionsAlwaysFail) {
  // Unlike the benchmark parser (where a flip can land in a comment), the
  // checksum seal covers every byte: any actual change must be rejected.
  Rng rng(311);
  std::string base;
  writeResultText(EngineBackend::SeqPair, randomResult(rng), base);
  for (int round = 0; round < 500; ++round) {
    std::string text = base;
    const std::size_t flips = 1 + rng.index(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng.index(text.size());
      text[at] = static_cast<char>(text[at] ^ (1 + rng.index(255)));
    }
    EngineBackend backend = EngineBackend::FlatBStar;
    EngineResult parsed;
    EXPECT_NE(parseResultText(text, backend, parsed), "")
        << "corruption round " << round;
  }
}

TEST(ResultTextFuzz, HostileCountsAndHeadersFailCleanly) {
  const char* hostile[] = {
      "",
      "ALSRESULT 2\n",
      "ALSRESULT 1\nBackend seqpair\n",
      // Astronomically large NumRects must be rejected before any
      // allocation is sized from it.
      "ALSRESULT 1\nBackend seqpair\nCost 1\nArea 1\nHpwl 1\nMoves 1\n"
      "Sweeps 1\nRestarts 1\nBestRestart 0\nBestSeed 1\n"
      "NumRects 99999999999999999999\n",
      "ALSRESULT 1\nBackend seqpair\nCost 1\nArea 1\nHpwl 1\nMoves 1\n"
      "Sweeps 1\nRestarts 1\nBestRestart 0\nBestSeed 1\nNumRects 1000000\n",
      "ALSRESULT 1\nBackend seqpair\nCost nan\nArea 1\nHpwl 1\nMoves 1\n"
      "Sweeps 1\nRestarts 1\nBestRestart 0\nBestSeed 1\nNumRects 0\nEND\n",
      // Structurally complete but unsealed / badly sealed payloads.
      "ALSRESULT 1\nBackend seqpair\nCost 1\nArea 1\nHpwl 1\nMoves 1\n"
      "Sweeps 1\nRestarts 1\nBestRestart 0\nBestSeed 1\nNumRects 0\nEND\n",
      "ALSRESULT 1\nBackend seqpair\nCost 1\nArea 1\nHpwl 1\nMoves 1\n"
      "Sweeps 1\nRestarts 1\nBestRestart 0\nBestSeed 1\nNumRects 0\nEND\n"
      "Checksum zzzzzzzzzzzzzzzz\n",
      "ALSRESULT 1\nBackend seqpair\nCost 1\nArea 1\nHpwl 1\nMoves 1\n"
      "Sweeps 1\nRestarts 1\nBestRestart 0\nBestSeed 1\nNumRects 0\nEND\n"
      "Checksum 0123456789abcdef\n",
      "ALSRESULT 1\nBackend seqpair\nCost 1\nArea 1\nHpwl 1\nMoves 1\n"
      "Sweeps 1\nRestarts 1\nBestRestart 0\nBestSeed 1\nNumRects 1\n"
      "Rect 0 0 -5 -5\nEND\nChecksum 0123456789abcdef\n",
  };
  for (const char* text : hostile) {
    EngineBackend backend = EngineBackend::SeqPair;
    EngineResult parsed;
    EXPECT_NE(parseResultText(text, backend, parsed), "") << text;
  }
}

TEST(ResultTextFuzz, RandomTokenSoupFailsCleanly) {
  // Soup cannot carry a matching checksum, so every round must fail — with
  // a message, not a crash or runaway allocation.
  const char* words[] = {"ALSRESULT", "Backend", "seqpair",  "flat-bstar",
                         "Cost",      "Area",    "Hpwl",     "Moves",
                         "Sweeps",    "Restarts", "BestRestart", "BestSeed",
                         "NumRects",  "Rect",    "END",      "Checksum",
                         "1",         "0",       "-7",       "1e300",
                         "0123456789abcdef",     "deadbeef", "nan"};
  Rng rng(313);
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const std::size_t tokens = rng.index(80);
    for (std::size_t t = 0; t < tokens; ++t) {
      text += words[rng.index(std::size(words))];
      text += rng.uniform() < 0.3 ? '\n' : ' ';
    }
    EngineBackend backend = EngineBackend::SeqPair;
    EngineResult parsed;
    EXPECT_NE(parseResultText(text, backend, parsed), "")
        << "soup round " << round;
  }
}

TEST(ServeWireFuzz, JobOptionSoupFailsWithMessagesAndKeysStayDeterministic) {
  const char* keys[] = {"wl",     "sym",    "prox",   "outline", "maxw",
                        "maxh",   "aspect", "thermal", "shape",  "sweeps",
                        "cool",   "mpt",    "restarts", "tempering", "exch",
                        "ladder", "cross",  "seed",   "threads", "bogus",
                        "",       "deadline-ms"};
  const char* values[] = {"1",   "0",    "-3",  "0.5", "4e9", "nan",
                          "inf", "banana", "",  "1e-300", "99999999999999999999"};
  Rng rng(317);
  const std::string_view circuit = corpusText(CorpusCircuit::Apte);
  for (int round = 0; round < 400; ++round) {
    EngineOptions options;
    for (std::size_t i = 0, n = rng.index(12); i < n; ++i) {
      // Each pair either applies or is rejected with a message; the point
      // here is that no combination crashes or corrupts the options struct.
      // (The daemon-layer deadline keys are NOT engine options and must be
      // rejected here — the daemon intercepts them before this call.)
      applyJobOption(options, keys[rng.index(std::size(keys))],
                     values[rng.index(std::size(values))]);
    }
    // Whatever survived must canonicalize deterministically.
    std::string scratch;
    const CacheKey a =
        makeCacheKey(circuit, EngineBackend::SeqPair, options, scratch);
    const CacheKey b =
        makeCacheKey(circuit, EngineBackend::SeqPair, options, scratch);
    EXPECT_EQ(a, b) << "round " << round;
  }
}

TEST(ServeWireFuzz, CacheKeyHexRoundTripsAndRejectsGarbage) {
  Rng rng(331);
  for (int round = 0; round < 200; ++round) {
    const CacheKey key{rng.index(~0ull), rng.index(~0ull), rng.index(~0ull)};
    CacheKey parsed;
    ASSERT_TRUE(parsed.parseHex(key.hex())) << round;
    EXPECT_EQ(parsed, key);
  }
  const char alphabet[] = "0123456789abcdefABCDEFxyz!- \n";
  for (int round = 0; round < 400; ++round) {
    const std::size_t len = rng.index(64);
    std::string text;
    for (std::size_t i = 0; i < len; ++i) {
      text += alphabet[rng.index(std::size(alphabet) - 1)];
    }
    CacheKey parsed;
    if (parsed.parseHex(text)) {
      // Anything accepted must be a genuine spelling: re-serializing it
      // must reproduce the input exactly (48 lowercase hex chars).
      EXPECT_EQ(parsed.hex(), text) << "round " << round;
    }
  }
}

TEST(ServeWireFuzz, BackendNamesRoundTripAndSoupIsRejected) {
  for (EngineBackend b : {EngineBackend::FlatBStar, EngineBackend::SeqPair,
                          EngineBackend::Slicing, EngineBackend::HBStar}) {
    EngineBackend parsed;
    ASSERT_TRUE(parseBackendName(backendName(b), parsed));
    EXPECT_EQ(parsed, b);
  }
  EngineBackend parsed = EngineBackend::SeqPair;
  for (const char* bad : {"", "seqpair ", " seqpair", "SEQPAIR", "b*",
                          "flatbstar", "hbstar\n", "0"}) {
    EXPECT_FALSE(parseBackendName(bad, parsed)) << '"' << bad << '"';
  }
}

}  // namespace
}  // namespace als
