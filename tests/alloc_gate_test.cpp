// Steady-state heap-allocation gate for the decode hot path.
//
// PR 5's contract: once a run's buffers are warm, the SA move loop of every
// backend — move, decode (packing), incremental cost evaluation, accept /
// reject bookkeeping — performs ZERO heap allocations per move.
//
// Measurement: this binary replaces the global operator new/delete with a
// counting pass-through (test-only hook; affects only this test binary).
// For each backend we warm a shared PlaceScratch with a full-length run,
// then measure two runs of different sweep counts from the same seed.  The
// shorter run's trajectory is a prefix of the longer one's, so every
// per-run (cold) allocation — cost model construction, initial state,
// result copies — is identical in both, and any difference in allocation
// counts is exactly (allocations per move) x (extra moves).  The gate
// asserts that difference is zero.
//
// The gate only runs under NDEBUG: debug asserts deliberately re-validate
// whole encodings (allocating), which is fine — CI builds are Release /
// RelWithDebInfo.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bstar/from_placement.h"
#include "engine/place_scratch.h"
#include "engine/placement_engine.h"
#include "io/corpus.h"
#include "io/serve_protocol.h"
#include "runtime/result_cache.h"
#include "runtime/tempering.h"
#include "seqpair/from_placement.h"
#include "seqpair/sa_placer.h"
#include "util/rng.h"

namespace {

std::atomic<unsigned long long> gAllocCount{0};

void* countedAlloc(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* countedAlignedAlloc(std::size_t size, std::align_val_t align) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return countedAlignedAlloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return countedAlignedAlloc(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace als {
namespace {

class AllocGate : public ::testing::TestWithParam<EngineBackend> {};

/// Shared gate body: warm a scratch with a full-length run, then compare
/// the allocation counts of a short and a long run from the same seed.
/// The difference is exactly (allocations per move) x (extra moves) and
/// the contract is zero — for whatever objective/move mix `opt` enables.
void expectZeroAllocsPerMove(EngineBackend backend, EngineOptions opt) {
  const Circuit circuit = loadCorpusCircuit(CorpusCircuit::Ami33);
  const std::unique_ptr<PlacementEngine> engine = makeEngine(backend);

  PlaceScratch scratch;
  opt.seed = 1;
  opt.scratch = &scratch;

  const std::size_t shortSweeps = 8;
  const std::size_t longSweeps = 16;

  // Warm-up: the full-length run grows every buffer to its steady-state
  // capacity (the short run's trajectory is a prefix of the long one's).
  opt.maxSweeps = longSweeps;
  EngineResult warm = engine->place(circuit, opt);

  opt.maxSweeps = shortSweeps;
  unsigned long long before = gAllocCount.load(std::memory_order_relaxed);
  EngineResult shortRun = engine->place(circuit, opt);
  unsigned long long shortAllocs =
      gAllocCount.load(std::memory_order_relaxed) - before;

  opt.maxSweeps = longSweeps;
  before = gAllocCount.load(std::memory_order_relaxed);
  EngineResult longRun = engine->place(circuit, opt);
  unsigned long long longAllocs =
      gAllocCount.load(std::memory_order_relaxed) - before;

  ASSERT_GT(longRun.movesTried, shortRun.movesTried);
  // Identical trajectory to the warm-up run — determinism sanity.
  EXPECT_EQ(longRun.cost, warm.cost);

  const std::size_t extraMoves = longRun.movesTried - shortRun.movesTried;
  // Cold per-run allocations cancel in the difference; what remains is
  // per-move.  The contract is zero.
  EXPECT_EQ(longAllocs, shortAllocs)
      << "backend " << backendName(backend) << " allocates "
      << (static_cast<double>(longAllocs) - static_cast<double>(shortAllocs)) /
             static_cast<double>(extraMoves)
      << " times per move in steady state (" << extraMoves << " extra moves)";
}

TEST_P(AllocGate, SteadyStateMoveLoopDoesNotAllocate) {
#ifndef NDEBUG
  GTEST_SKIP() << "debug asserts re-validate encodings (allocating); the "
                  "gate targets Release builds";
#endif
  expectZeroAllocsPerMove(GetParam(), EngineOptions{});
}

TEST_P(AllocGate, ThermalAndShapeWorkloadsDoNotAllocate) {
#ifndef NDEBUG
  GTEST_SKIP() << "debug asserts re-validate encodings (allocating); the "
                  "gate targets Release builds";
#endif
  // Ami33's corpus text carries Power and Shape annotations, so both the
  // incremental thermal-mismatch term and shape-selection moves are live.
  EngineOptions opt;
  opt.thermalWeight = 1.0;
  opt.shapeMoveProb = 0.25;
  expectZeroAllocsPerMove(GetParam(), opt);
}

/// Strategy-forced variant of the gate, below the engine layer: the Naive /
/// Fenwick / Veb LCS structures (and the journaled incremental sweeps that
/// reuse them) must each hold the zero-allocations-per-move contract, not
/// just whatever Auto resolves to for the gate circuit.
class AllocGateLcs : public ::testing::TestWithParam<PackStrategy> {};

TEST_P(AllocGateLcs, SeqPairStrategyDoesNotAllocatePerMove) {
#ifndef NDEBUG
  GTEST_SKIP() << "debug asserts re-validate encodings (allocating); the "
                  "gate targets Release builds";
#endif
  // n100 puts Veb in its intended regime (Auto resolves to it at n >= 128
  // only; forcing the strategy pins the structure under test).
  const Circuit circuit = loadCorpusCircuit(CorpusCircuit::N100);
  SeqPairScratch scratch;
  SeqPairPlacerOptions opt;
  opt.scratch = &scratch;
  opt.seed = 3;
  opt.packing = GetParam();

  opt.maxSweeps = 12;
  SeqPairPlacerResult warm = placeSeqPairSA(circuit, opt);

  opt.maxSweeps = 6;
  unsigned long long before = gAllocCount.load(std::memory_order_relaxed);
  SeqPairPlacerResult shortRun = placeSeqPairSA(circuit, opt);
  unsigned long long shortAllocs =
      gAllocCount.load(std::memory_order_relaxed) - before;

  opt.maxSweeps = 12;
  before = gAllocCount.load(std::memory_order_relaxed);
  SeqPairPlacerResult longRun = placeSeqPairSA(circuit, opt);
  unsigned long long longAllocs =
      gAllocCount.load(std::memory_order_relaxed) - before;

  ASSERT_GT(longRun.movesTried, shortRun.movesTried);
  EXPECT_EQ(longRun.cost, warm.cost);
  const std::size_t extraMoves = longRun.movesTried - shortRun.movesTried;
  EXPECT_EQ(longAllocs, shortAllocs)
      << "strategy allocates "
      << (static_cast<double>(longAllocs) - static_cast<double>(shortAllocs)) /
             static_cast<double>(extraMoves)
      << " times per move in steady state (" << extraMoves << " extra moves)";
}

/// PR 8 extension of the gate, one layer up: the tempering round loop.
/// Once the replica sessions' buffers are warm, a round — step every
/// replica by `exchangeInterval` sweeps, plan exchanges, swap states,
/// reanchor — must not allocate.  Same methodology as the move gate: a
/// persistent TemperingScratch bank is warmed by a full-length run, then a
/// short and a long run from the same seed share every cold allocation
/// (the short trajectory is a prefix of the long one, and the bank already
/// holds each replica's high-water capacities), so the count difference is
/// exactly (allocations per round) x (extra rounds).
class AllocGateTempering : public ::testing::TestWithParam<EngineBackend> {};

TEST_P(AllocGateTempering, SteadyStateRoundLoopDoesNotAllocate) {
#ifndef NDEBUG
  GTEST_SKIP() << "debug asserts re-validate encodings (allocating); the "
                  "gate targets Release builds";
#endif
  const Circuit circuit = loadCorpusCircuit(CorpusCircuit::N100);
  EngineOptions opt;
  opt.seed = 5;
  opt.numRestarts = 2;
  opt.numThreads = 1;
  opt.tempering = true;
  opt.exchangeInterval = 1;
  // A flat ladder swaps every considered pair (P = 1), so both runs take
  // the exchange + reanchor path every other round — the paths the gate is
  // after sit in the measured difference many times over.
  opt.ladderRatio = 1.0;
  TemperingRunner runner;
  TemperingScratch bank;

  const std::size_t shortSweeps = 8;
  const std::size_t longSweeps = 16;

  // Warm-up: grows every replica's bank entry to the high-water capacity
  // of the full-length trajectory (which the measured runs replay).
  opt.maxSweeps = longSweeps;
  TemperingOutcome warm = runner.run(circuit, GetParam(), opt, &bank);
  ASSERT_GT(warm.exchangesAccepted, 0u);

  opt.maxSweeps = shortSweeps;
  unsigned long long before = gAllocCount.load(std::memory_order_relaxed);
  TemperingOutcome shortRun = runner.run(circuit, GetParam(), opt, &bank);
  unsigned long long shortAllocs =
      gAllocCount.load(std::memory_order_relaxed) - before;
  ASSERT_GT(shortRun.exchangesAccepted, 0u);

  opt.maxSweeps = longSweeps;
  before = gAllocCount.load(std::memory_order_relaxed);
  TemperingOutcome longRun = runner.run(circuit, GetParam(), opt, &bank);
  unsigned long long longAllocs =
      gAllocCount.load(std::memory_order_relaxed) - before;

  ASSERT_GT(longRun.rounds, shortRun.rounds);
  // Identical trajectory to the warm-up run — the scratch-reuse contract
  // (contents never influence results) held across all three runs.
  EXPECT_EQ(longRun.result.cost, warm.result.cost);

  const std::size_t extraRounds = longRun.rounds - shortRun.rounds;
  EXPECT_EQ(longAllocs, shortAllocs)
      << "backend " << backendName(GetParam()) << " allocates "
      << (static_cast<double>(longAllocs) - static_cast<double>(shortAllocs)) /
             static_cast<double>(extraRounds)
      << " times per tempering round in steady state (" << extraRounds
      << " extra rounds)";
}

// The cross-backend seed converters sit inside the round loop (a reseed
// runs at a round barrier), so they share its contract: with warm scratch
// and reused outputs, a conversion performs zero allocations.
TEST(AllocGateConvert, WarmConvertersDoNotAllocate) {
#ifndef NDEBUG
  GTEST_SKIP() << "debug asserts re-validate encodings (allocating); the "
                  "gate targets Release builds";
#endif
  const Circuit circuit = loadCorpusCircuit(CorpusCircuit::N100);
  const std::size_t n = circuit.moduleCount();
  std::vector<Coord> w(n), h(n);
  for (std::size_t m = 0; m < n; ++m) {
    w[m] = circuit.module(m).w;
    h[m] = circuit.module(m).h;
  }
  Rng rng(9);
  const Placement source =
      packSequencePair(SequencePair::random(n, rng), w, h);

  SeqPairFromPlacementScratch spScratch;
  SequencePair sp;
  sequencePairFromPlacement(source, spScratch, sp);  // cold: buffers grow
  unsigned long long before = gAllocCount.load(std::memory_order_relaxed);
  sequencePairFromPlacement(source, spScratch, sp);
  EXPECT_EQ(gAllocCount.load(std::memory_order_relaxed) - before, 0u)
      << "warm sequence-pair conversion allocates";

  BStarFromPlacementScratch bsScratch;
  BStarTree tree;
  bstarFromPlacement(source, bsScratch, tree);  // cold: buffers grow
  before = gAllocCount.load(std::memory_order_relaxed);
  bstarFromPlacement(source, bsScratch, tree);
  EXPECT_EQ(gAllocCount.load(std::memory_order_relaxed) - before, 0u)
      << "warm B*-tree conversion allocates";
}

// The serve layer's steady-state loop (runtime/serve.h): a warm cache hit
// is `makeCacheKey` into a reused scratch string plus `ResultCache::fetch`
// into a reused EngineResult — the path a loaded daemon takes for every
// duplicate resubmission.  Once the scratch string holds the canonical
// options capacity and the result holds the placement capacity, the whole
// exchange must allocate nothing, no matter how many hits are served.
TEST(AllocGateServe, WarmCacheHitPathDoesNotAllocate) {
#ifndef NDEBUG
  GTEST_SKIP() << "debug asserts re-validate encodings (allocating); the "
                  "gate targets Release builds";
#endif
  const std::string_view text = corpusText(CorpusCircuit::Ami49);
  EngineOptions opt;
  opt.maxSweeps = 16;
  opt.seed = 4;

  std::string keyScratch;
  const CacheKey key =
      makeCacheKey(text, EngineBackend::SeqPair, opt, keyScratch);
  ResultCache cache;  // memory-only: the hot path a warm daemon serves from
  {
    const Circuit circuit = loadCorpusCircuit(CorpusCircuit::Ami49);
    cache.store(key, EngineBackend::SeqPair,
                makeEngine(EngineBackend::SeqPair)->place(circuit, opt));
  }

  EngineBackend backend = EngineBackend::FlatBStar;
  EngineResult result;
  ASSERT_TRUE(cache.fetch(key, backend, result));  // cold: storage grows

  unsigned long long before = gAllocCount.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    keyScratch.clear();
    CacheKey k = makeCacheKey(text, EngineBackend::SeqPair, opt, keyScratch);
    ASSERT_EQ(k, key);
    ASSERT_TRUE(cache.fetch(k, backend, result));
  }
  EXPECT_EQ(gAllocCount.load(std::memory_order_relaxed) - before, 0u)
      << "the warm serve hit path allocates";
  EXPECT_EQ(backend, EngineBackend::SeqPair);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AllocGateTempering,
                         ::testing::ValuesIn(allBackends().begin(),
                                             allBackends().end()),
                         [](const ::testing::TestParamInfo<EngineBackend>& i) {
                           std::string name{backendName(i.param)};
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

INSTANTIATE_TEST_SUITE_P(Strategies, AllocGateLcs,
                         ::testing::Values(PackStrategy::Naive,
                                           PackStrategy::Fenwick,
                                           PackStrategy::Veb,
                                           PackStrategy::Auto),
                         [](const ::testing::TestParamInfo<PackStrategy>& i) {
                           switch (i.param) {
                             case PackStrategy::Naive: return "Naive";
                             case PackStrategy::Fenwick: return "Fenwick";
                             case PackStrategy::Veb: return "Veb";
                             case PackStrategy::Auto: return "Auto";
                           }
                           return "unknown";
                         });

INSTANTIATE_TEST_SUITE_P(AllBackends, AllocGate,
                         ::testing::ValuesIn(allBackends().begin(),
                                             allBackends().end()),
                         [](const ::testing::TestParamInfo<EngineBackend>& i) {
                           std::string name{backendName(i.param)};
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace als
