#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "slicing/polish.h"
#include "slicing/slicing_placer.h"
#include "test_util.h"

namespace als {
namespace {

TEST(PolishExpr, InitialIsValid) {
  for (std::size_t n : {1u, 2u, 3u, 7u, 20u}) {
    PolishExpr e = PolishExpr::initial(n);
    EXPECT_TRUE(e.isValid()) << "n=" << n;
    EXPECT_EQ(e.elements().size(), 2 * n - 1);
  }
}

TEST(PolishExpr, ValidityRejectsBadExpressions) {
  PolishExpr good = PolishExpr::initial(3);
  EXPECT_TRUE(good.isValid());
  // Craft invalid sequences through the string round-trip is not exposed;
  // instead check the validator on hand-built expressions via initial +
  // tampering is not possible from outside — rely on the property that
  // perturb never leaves the valid set (below).
  PolishExpr empty;
  EXPECT_TRUE(empty.isValid());
}

TEST(PolishExpr, PerturbationsStayValid) {
  Rng rng(5);
  PolishExpr e = PolishExpr::initial(12);
  for (int step = 0; step < 5000; ++step) {
    e.perturb(rng);
    ASSERT_TRUE(e.isValid()) << "step " << step << ": " << e.toString();
  }
}

TEST(PolishExpr, ToStringRendering) {
  PolishExpr e = PolishExpr::initial(3);
  EXPECT_EQ(e.toString(), "0 1 V 2 H");
}

TEST(EvaluatePolish, TwoModuleCompositions) {
  std::vector<Coord> w{10, 6}, h{4, 8};
  std::vector<bool> rot{false, false};
  {
    PolishExpr e = PolishExpr::initial(2);  // "0 1 V": side by side
    SlicedResult r = evaluatePolish(e, w, h, rot);
    EXPECT_EQ(r.width, 16);
    EXPECT_EQ(r.height, 8);
    EXPECT_TRUE(r.placement.isLegal());
  }
}

TEST(EvaluatePolish, RotationImprovesArea) {
  // Two 10x2 strips: unrotated V-composition is 20x2 = 40; with rotation
  // the pareto also offers 4x10 = 40... stacking H gives 10x4.  All equal
  // area here, so use distinct dims: 10x2 and 2x10 side by side.
  std::vector<Coord> w{10, 2}, h{2, 10};
  std::vector<bool> noRot{false, false};
  std::vector<bool> rot{true, true};
  PolishExpr e = PolishExpr::initial(2);
  SlicedResult fixed = evaluatePolish(e, w, h, noRot);
  SlicedResult free = evaluatePolish(e, w, h, rot);
  EXPECT_LE(free.area(), fixed.area());
  EXPECT_EQ(free.area(), 2 * 10 * 2);  // both horizontal, stacked row
}

TEST(EvaluatePolish, PlacementLegalAndBoxed) {
  Circuit c = makeTableICircuit(TableICircuit::FoldedCascode);
  std::vector<Coord> w, h;
  std::vector<bool> rot;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
    rot.push_back(m.rotatable);
  }
  Rng rng(7);
  PolishExpr e = PolishExpr::initial(c.moduleCount());
  for (int step = 0; step < 200; ++step) {
    e.perturb(rng);
    SlicedResult r = evaluatePolish(e, w, h, rot);
    // Slicing ignores symmetry groups (ILAC baseline); the evaluator's own
    // width/height bound the outline for the shared checker.
    test_util::expectPlacementInvariants(
        r.placement, c,
        {.symTolerance = test_util::kNoSymmetryCheck,
         .outlineW = r.width,
         .outlineH = r.height},
        "step " + std::to_string(step));
    ASSERT_GE(r.area(), c.totalModuleArea());
  }
}

TEST(EvaluatePolish, ShapeCurveOptimalForThreeModules) {
  // 3 equal squares: best slicing area is 1x3 row = 3s^2... a 2x2 arrangement
  // with one empty slot gives 4s^2; the row (or column) is optimal -> the
  // evaluator must find exactly 3 s^2 * s.
  std::vector<Coord> w{4, 4, 4}, h{4, 4, 4};
  std::vector<bool> rot{false, false, false};
  PolishExpr e = PolishExpr::initial(3);
  // Try all expressions reachable by a few perturbations and track the best.
  Rng rng(9);
  Coord best = evaluatePolish(e, w, h, rot).area();
  for (int step = 0; step < 500; ++step) {
    e.perturb(rng);
    best = std::min(best, evaluatePolish(e, w, h, rot).area());
  }
  EXPECT_EQ(best, 48);  // 12 x 4 row
}

TEST(SlicingPlacer, AnnealsLegally) {
  Circuit c = makeTableICircuit(TableICircuit::MillerV2);
  SlicingPlacerOptions opt;
  opt.maxSweeps = 250;
  SlicingPlacerResult r = placeSlicingSA(c, opt);
  test_util::expectPlacementInvariants(
      r.placement, c, {.symTolerance = test_util::kNoSymmetryCheck});
  EXPECT_GE(r.area, c.totalModuleArea());
  EXPECT_LT(r.area, 3 * c.totalModuleArea());
}

TEST(SlicingPlacer, DeterministicForSeed) {
  Circuit c = makeFig1Example();
  SlicingPlacerOptions opt;
  opt.maxSweeps = 120;
  opt.seed = 21;
  SlicingPlacerResult a = placeSlicingSA(c, opt);
  SlicingPlacerResult b = placeSlicingSA(c, opt);
  EXPECT_EQ(a.area, b.area);
  EXPECT_EQ(a.movesTried, b.movesTried);
}

}  // namespace
}  // namespace als
