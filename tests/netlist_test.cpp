#include <gtest/gtest.h>

#include "netlist/generators.h"

namespace als {
namespace {

TEST(Fig1Example, MatchesPaperStructure) {
  Circuit c = makeFig1Example();
  EXPECT_EQ(c.moduleCount(), 7u);
  ASSERT_EQ(c.symmetryGroups().size(), 1u);
  const SymmetryGroup& g = c.symmetryGroup(0);
  EXPECT_EQ(g.pairs.size(), 2u);  // (C,D) and (B,G)
  EXPECT_EQ(g.selfs.size(), 2u);  // A and F
  EXPECT_EQ(g.memberCount(), 6u);
  std::string err;
  EXPECT_TRUE(c.validate(&err)) << err;
}

TEST(Fig1Example, SymOfIsAnInvolution) {
  Circuit c = makeFig1Example();
  const SymmetryGroup& g = c.symmetryGroup(0);
  for (ModuleId m : g.members()) {
    ModuleId s = g.symOf(m);
    ASSERT_NE(s, SymmetryGroup::npos);
    EXPECT_EQ(g.symOf(s), m);
  }
  // E is not a member.
  EXPECT_FALSE(g.contains(0));
  EXPECT_EQ(g.symOf(0), SymmetryGroup::npos);
}

TEST(MillerOpAmp, HierarchyMatchesFig6) {
  Circuit c = makeMillerOpAmp();
  EXPECT_EQ(c.moduleCount(), 9u);
  EXPECT_EQ(c.symmetryGroups().size(), 3u);  // DP, CM1, CM2
  const HierTree& h = c.hierarchy();
  EXPECT_FALSE(h.empty());
  // Root OPAMP has CORE + C + N8.
  EXPECT_EQ(h.node(h.root()).children.size(), 3u);
  EXPECT_EQ(h.leavesUnder(h.root()).size(), 9u);
  // Three basic module sets: DP, CM1, CM2.
  EXPECT_EQ(h.basicSetCount(), 3u);
  EXPECT_EQ(h.depth(), 3u);
  std::string err;
  EXPECT_TRUE(c.validate(&err)) << err;
}

TEST(Fig2Design, CarriesAllThreeConstraintKinds) {
  Circuit c = makeFig2Design();
  const HierTree& h = c.hierarchy();
  int symmetry = 0, centroid = 0, proximity = 0;
  for (HierNodeId i = 0; i < h.nodeCount(); ++i) {
    switch (h.node(i).constraint) {
      case GroupConstraint::Symmetry: ++symmetry; break;
      case GroupConstraint::CommonCentroid: ++centroid; break;
      case GroupConstraint::Proximity: ++proximity; break;
      default: break;
    }
  }
  EXPECT_EQ(symmetry, 1);
  EXPECT_EQ(centroid, 2);
  EXPECT_EQ(proximity, 1);
  std::string err;
  EXPECT_TRUE(c.validate(&err)) << err;
}

class TableICircuitTest : public ::testing::TestWithParam<TableICircuit> {};

TEST_P(TableICircuitTest, ModuleCountMatchesTableI) {
  Circuit c = makeTableICircuit(GetParam());
  EXPECT_EQ(c.moduleCount(), tableIModuleCount(GetParam()));
  std::string err;
  EXPECT_TRUE(c.validate(&err)) << err;
}

TEST_P(TableICircuitTest, HierarchyCoversAllModulesExactlyOnce) {
  Circuit c = makeTableICircuit(GetParam());
  const HierTree& h = c.hierarchy();
  std::vector<ModuleId> leaves = h.leavesUnder(h.root());
  EXPECT_EQ(leaves.size(), c.moduleCount());
  std::sort(leaves.begin(), leaves.end());
  for (std::size_t i = 0; i < leaves.size(); ++i) EXPECT_EQ(leaves[i], i);
}

TEST_P(TableICircuitTest, BasicSetsAreSmall) {
  Circuit c = makeTableICircuit(GetParam());
  const HierTree& h = c.hierarchy();
  for (HierNodeId i = 0; i < h.nodeCount(); ++i) {
    if (h.isBasicSet(i)) {
      EXPECT_GE(h.node(i).children.size(), 2u);
      EXPECT_LE(h.node(i).children.size(), 5u);
    }
  }
}

TEST_P(TableICircuitTest, EvenDimensionsOnMicrometerGrid) {
  Circuit c = makeTableICircuit(GetParam());
  for (const Module& m : c.modules()) {
    EXPECT_EQ(m.w % 2, 0);
    EXPECT_EQ(m.h % 2, 0);
    EXPECT_GE(m.w, kUm);
    EXPECT_GE(m.h, kUm);
  }
}

TEST_P(TableICircuitTest, DeterministicForFixedSeed) {
  Circuit a = makeTableICircuit(GetParam());
  Circuit b = makeTableICircuit(GetParam());
  ASSERT_EQ(a.moduleCount(), b.moduleCount());
  for (std::size_t i = 0; i < a.moduleCount(); ++i) {
    EXPECT_EQ(a.module(i).w, b.module(i).w);
    EXPECT_EQ(a.module(i).h, b.module(i).h);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, TableICircuitTest,
                         ::testing::ValuesIn(allTableICircuits()),
                         [](const auto& info) {
                           std::string n = tableIName(info.param);
                           for (char& ch : n) {
                             if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return n;
                         });

TEST(Synthetic, SizesVaryStronglyAcrossModules) {
  Circuit c = makeTableICircuit(TableICircuit::Lnamixbias);
  Coord minArea = c.module(0).w * c.module(0).h, maxArea = minArea;
  for (const Module& m : c.modules()) {
    minArea = std::min(minArea, m.w * m.h);
    maxArea = std::max(maxArea, m.w * m.h);
  }
  // Analog circuits mix tiny transistors with huge capacitors; the paper
  // notes cells "very different in size" as the analog-typical case.
  EXPECT_GE(maxArea / minArea, 20);
}

TEST(Synthetic, SymmetricGroupsHaveMatchedFootprints) {
  Circuit c = makeSynthetic({.name = "t", .moduleCount = 40, .seed = 9});
  for (const SymmetryGroup& g : c.symmetryGroups()) {
    for (const SymPair& p : g.pairs) {
      EXPECT_EQ(c.module(p.a).w, c.module(p.b).w);
      EXPECT_EQ(c.module(p.a).h, c.module(p.b).h);
    }
  }
}

TEST(Synthetic, ValidateCatchesDuplicateGroupMembership) {
  Circuit c("bad");
  ModuleId a = c.addModule("a", 2, 2);
  ModuleId b = c.addModule("b", 2, 2);
  c.addSymmetryGroup({"g1", {{a, b}}, {}});
  c.addSymmetryGroup({"g2", {}, {a}});
  std::string err;
  EXPECT_FALSE(c.validate(&err));
  EXPECT_NE(err.find("two symmetry groups"), std::string::npos);
}

TEST(Synthetic, ValidateCatchesMismatchedPair) {
  Circuit c("bad");
  ModuleId a = c.addModule("a", 2, 2);
  ModuleId b = c.addModule("b", 4, 2);
  c.addSymmetryGroup({"g", {{a, b}}, {}});
  EXPECT_FALSE(c.validate());
}

TEST(HierTree, DepthAndBasicSets) {
  HierTree h;
  auto l0 = h.addLeaf("m0", 0);
  auto l1 = h.addLeaf("m1", 1);
  auto l2 = h.addLeaf("m2", 2);
  auto set = h.addGroup("set", {l0, l1});
  auto root = h.addGroup("root", {set, l2});
  h.setRoot(root);
  EXPECT_TRUE(h.isBasicSet(set));
  EXPECT_FALSE(h.isBasicSet(root));  // mixed leaf + group children
  EXPECT_EQ(h.basicSetCount(), 1u);
  EXPECT_EQ(h.depth(), 2u);
  EXPECT_EQ(h.leavesUnder(root), (std::vector<ModuleId>{0, 1, 2}));
}

}  // namespace
}  // namespace als
