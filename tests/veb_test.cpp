#include "util/veb.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace als {
namespace {

TEST(VebTree, EmptyTree) {
  VebTree t(16);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.min().has_value());
  EXPECT_FALSE(t.max().has_value());
  EXPECT_FALSE(t.successor(0).has_value());
  EXPECT_FALSE(t.predecessor(15).has_value());
  EXPECT_FALSE(t.contains(3));
}

TEST(VebTree, SingleElement) {
  VebTree t(16);
  t.insert(5);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.contains(5));
  EXPECT_EQ(t.min().value(), 5u);
  EXPECT_EQ(t.max().value(), 5u);
  EXPECT_EQ(t.successor(4).value(), 5u);
  EXPECT_FALSE(t.successor(5).has_value());
  EXPECT_EQ(t.predecessor(6).value(), 5u);
  EXPECT_FALSE(t.predecessor(5).has_value());
}

TEST(VebTree, InsertEraseReinsert) {
  VebTree t(64);
  t.insert(10);
  t.insert(20);
  t.insert(30);
  t.erase(20);
  EXPECT_FALSE(t.contains(20));
  EXPECT_EQ(t.successor(10).value(), 30u);
  t.insert(20);
  EXPECT_EQ(t.successor(10).value(), 20u);
  EXPECT_EQ(t.size(), 3u);
}

TEST(VebTree, DuplicateInsertIsIdempotent) {
  VebTree t(8);
  t.insert(3);
  t.insert(3);
  EXPECT_EQ(t.size(), 1u);
  t.erase(3);
  EXPECT_TRUE(t.empty());
}

TEST(VebTree, UniverseRoundsUpToPow2) {
  VebTree t(100);
  EXPECT_EQ(t.universe(), 128u);
  t.insert(99);
  EXPECT_TRUE(t.contains(99));
}

TEST(VebTree, TinyUniverse) {
  VebTree t(2);
  t.insert(0);
  t.insert(1);
  EXPECT_EQ(t.min().value(), 0u);
  EXPECT_EQ(t.max().value(), 1u);
  EXPECT_EQ(t.successor(0).value(), 1u);
  t.erase(0);
  EXPECT_EQ(t.min().value(), 1u);
  t.erase(1);
  EXPECT_TRUE(t.empty());
}

/// Randomized differential test against std::set across several universe
/// sizes — the property suite for the vEB substrate.
class VebDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VebDifferentialTest, MatchesStdSet) {
  const std::uint64_t universe = GetParam();
  VebTree t(universe);
  std::set<std::uint64_t> ref;
  Rng rng(universe * 7919 + 13);

  for (int step = 0; step < 4000; ++step) {
    std::uint64_t x = static_cast<std::uint64_t>(rng.index(universe));
    double r = rng.uniform();
    if (r < 0.45) {
      t.insert(x);
      ref.insert(x);
    } else if (r < 0.75) {
      t.erase(x);
      ref.erase(x);
    } else if (r < 0.85) {
      ASSERT_EQ(t.contains(x), ref.count(x) > 0) << "x=" << x;
    } else if (r < 0.95) {
      auto it = ref.upper_bound(x);
      auto got = t.successor(x);
      if (it == ref.end()) {
        ASSERT_FALSE(got.has_value()) << "successor(" << x << ")";
      } else {
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(*got, *it) << "successor(" << x << ")";
      }
    } else {
      auto it = ref.lower_bound(x);
      auto got = t.predecessor(x);
      if (it == ref.begin()) {
        ASSERT_FALSE(got.has_value()) << "predecessor(" << x << ")";
      } else {
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(*got, *std::prev(it)) << "predecessor(" << x << ")";
      }
    }
    ASSERT_EQ(t.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(t.min().value(), *ref.begin());
      ASSERT_EQ(t.max().value(), *ref.rbegin());
    } else {
      ASSERT_TRUE(t.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Universes, VebDifferentialTest,
                         ::testing::Values(2, 4, 16, 64, 256, 1024, 65536));

}  // namespace
}  // namespace als
