#include "util/veb.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace als {
namespace {

TEST(VebTree, EmptyTree) {
  VebTree t(16);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.min().has_value());
  EXPECT_FALSE(t.max().has_value());
  EXPECT_FALSE(t.successor(0).has_value());
  EXPECT_FALSE(t.predecessor(15).has_value());
  EXPECT_FALSE(t.contains(3));
}

TEST(VebTree, SingleElement) {
  VebTree t(16);
  t.insert(5);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.contains(5));
  EXPECT_EQ(t.min().value(), 5u);
  EXPECT_EQ(t.max().value(), 5u);
  EXPECT_EQ(t.successor(4).value(), 5u);
  EXPECT_FALSE(t.successor(5).has_value());
  EXPECT_EQ(t.predecessor(6).value(), 5u);
  EXPECT_FALSE(t.predecessor(5).has_value());
}

TEST(VebTree, InsertEraseReinsert) {
  VebTree t(64);
  t.insert(10);
  t.insert(20);
  t.insert(30);
  t.erase(20);
  EXPECT_FALSE(t.contains(20));
  EXPECT_EQ(t.successor(10).value(), 30u);
  t.insert(20);
  EXPECT_EQ(t.successor(10).value(), 20u);
  EXPECT_EQ(t.size(), 3u);
}

TEST(VebTree, DuplicateInsertIsIdempotent) {
  VebTree t(8);
  t.insert(3);
  t.insert(3);
  EXPECT_EQ(t.size(), 1u);
  t.erase(3);
  EXPECT_TRUE(t.empty());
}

TEST(VebTree, UniverseRoundsUpToPow2) {
  VebTree t(100);
  EXPECT_EQ(t.universe(), 128u);
  t.insert(99);
  EXPECT_TRUE(t.contains(99));
}

TEST(VebTree, TinyUniverse) {
  VebTree t(2);
  t.insert(0);
  t.insert(1);
  EXPECT_EQ(t.min().value(), 0u);
  EXPECT_EQ(t.max().value(), 1u);
  EXPECT_EQ(t.successor(0).value(), 1u);
  t.erase(0);
  EXPECT_EQ(t.min().value(), 1u);
  t.erase(1);
  EXPECT_TRUE(t.empty());
}

/// Randomized differential test against std::set across several universe
/// sizes — the property suite for the vEB substrate.
class VebDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VebDifferentialTest, MatchesStdSet) {
  const std::uint64_t universe = GetParam();
  VebTree t(universe);
  std::set<std::uint64_t> ref;
  Rng rng(universe * 7919 + 13);

  for (int step = 0; step < 4000; ++step) {
    std::uint64_t x = static_cast<std::uint64_t>(rng.index(universe));
    double r = rng.uniform();
    if (r < 0.45) {
      t.insert(x);
      ref.insert(x);
    } else if (r < 0.75) {
      t.erase(x);
      ref.erase(x);
    } else if (r < 0.85) {
      ASSERT_EQ(t.contains(x), ref.count(x) > 0) << "x=" << x;
    } else if (r < 0.95) {
      auto it = ref.upper_bound(x);
      auto got = t.successor(x);
      if (it == ref.end()) {
        ASSERT_FALSE(got.has_value()) << "successor(" << x << ")";
      } else {
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(*got, *it) << "successor(" << x << ")";
      }
    } else {
      auto it = ref.lower_bound(x);
      auto got = t.predecessor(x);
      if (it == ref.begin()) {
        ASSERT_FALSE(got.has_value()) << "predecessor(" << x << ")";
      } else {
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(*got, *std::prev(it)) << "predecessor(" << x << ")";
      }
    }
    ASSERT_EQ(t.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(t.min().value(), *ref.begin());
      ASSERT_EQ(t.max().value(), *ref.rbegin());
    } else {
      ASSERT_TRUE(t.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Universes, VebDifferentialTest,
                         ::testing::Values(2, 4, 16, 64, 256, 1024, 65536));

TEST(VebTree, ClearEmptiesWithoutLosingTheUniverse) {
  VebTree t(200);
  for (std::uint64_t x : {0u, 3u, 99u, 127u, 199u}) t.insert(x);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.universe(), 256u);
  for (std::uint64_t x : {0u, 3u, 99u, 127u, 199u}) EXPECT_FALSE(t.contains(x));
  // A cleared tree behaves like a fresh one.
  t.insert(42);
  EXPECT_EQ(t.min().value(), 42u);
  EXPECT_EQ(t.max().value(), 42u);
  EXPECT_FALSE(t.successor(42).has_value());
}

TEST(VebTree, ClearThenRefillMatchesFreshTree) {
  Rng rng(71);
  VebTree reused(512);
  for (int round = 0; round < 25; ++round) {
    reused.clear();
    VebTree fresh(512);
    std::set<std::uint64_t> ref;
    for (int op = 0; op < 60; ++op) {
      std::uint64_t x = rng.index(512);
      if (rng.uniform() < 0.7) {
        reused.insert(x);
        fresh.insert(x);
        ref.insert(x);
      } else {
        reused.erase(x);
        fresh.erase(x);
        ref.erase(x);
      }
    }
    ASSERT_EQ(reused.size(), ref.size());
    for (std::uint64_t x = 0; x < 512; ++x) {
      ASSERT_EQ(reused.contains(x), fresh.contains(x)) << "x=" << x;
      ASSERT_EQ(reused.successor(x).has_value(), fresh.successor(x).has_value());
      if (reused.successor(x).has_value()) {
        ASSERT_EQ(*reused.successor(x), *fresh.successor(x));
      }
    }
  }
}

TEST(VebTree, ResetUniverseGrowsAndReuses) {
  VebTree t;  // default: universe 2
  EXPECT_EQ(t.universe(), 2u);
  t.resetUniverse(100);
  EXPECT_EQ(t.universe(), 128u);
  EXPECT_TRUE(t.empty());
  t.insert(99);
  EXPECT_TRUE(t.contains(99));
  t.resetUniverse(100);  // same rounded universe: O(occupied) clear
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.contains(99));
  t.insert(7);
  t.resetUniverse(1000);  // growth: rebuild
  EXPECT_EQ(t.universe(), 1024u);
  EXPECT_TRUE(t.empty());
  t.insert(900);
  EXPECT_EQ(t.predecessor(1000).value(), 900u);
}

TEST(VebTree, PrewarmedTreeStaysCorrect) {
  VebTree t(300);
  t.prewarm();
  std::set<std::uint64_t> ref;
  Rng rng(77);
  for (int op = 0; op < 500; ++op) {
    std::uint64_t x = rng.index(300);
    if (rng.coin()) {
      t.insert(x);
      ref.insert(x);
    } else {
      t.erase(x);
      ref.erase(x);
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  for (std::uint64_t x = 0; x < 300; ++x) ASSERT_EQ(t.contains(x), ref.count(x) > 0);
}

}  // namespace
}  // namespace als
