// PlacementEngine facade tests, including the determinism regression that
// guards the sweep-budget contract: a fixed (seed, maxSweeps) pair must give
// bit-identical placements on every run, on any machine, under sanitizers.
#include "engine/placement_engine.h"

#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "seqpair/sa_placer.h"

namespace als {
namespace {

TEST(PlacementEngine, FactoryCoversAllBackends) {
  ASSERT_FALSE(allBackends().empty());
  for (EngineBackend backend : allBackends()) {
    auto engine = makeEngine(backend);
    ASSERT_NE(engine, nullptr) << backendName(backend);
    EXPECT_EQ(engine->backend(), backend);
    EXPECT_EQ(engine->name(), backendName(backend));
    EXPECT_FALSE(engine->name().empty());
  }
}

TEST(PlacementEngine, AllBackendsProduceLegalPlacements) {
  Circuit c = makeTableICircuit(TableICircuit::ComparatorV2);
  EngineOptions opt;
  opt.maxSweeps = 120;
  opt.seed = 3;
  for (EngineBackend backend : allBackends()) {
    auto engine = makeEngine(backend);
    EngineResult r = engine->place(c, opt);
    ASSERT_EQ(r.placement.size(), c.moduleCount()) << engine->name();
    EXPECT_TRUE(r.placement.isLegal()) << engine->name();
    EXPECT_GE(r.area, c.totalModuleArea()) << engine->name();
    EXPECT_GT(r.movesTried, 0u) << engine->name();
    EXPECT_GT(r.sweeps, 0u) << engine->name();
  }
}

TEST(PlacementEngine, SameSeedGivesBitIdenticalPlacements) {
  // 250 sweeps crosses the ~226-sweep freeze point of the default schedule,
  // so the restart path is part of the guarded contract too.
  Circuit c = makeTableICircuit(TableICircuit::ComparatorV2);
  EngineOptions opt;
  opt.maxSweeps = 250;
  opt.seed = 17;
  for (EngineBackend backend : allBackends()) {
    auto engine = makeEngine(backend);
    EngineResult a = engine->place(c, opt);
    EngineResult b = engine->place(c, opt);
    EXPECT_EQ(a.area, b.area) << engine->name();
    EXPECT_EQ(a.hpwl, b.hpwl) << engine->name();
    EXPECT_EQ(a.movesTried, b.movesTried) << engine->name();
    EXPECT_EQ(a.sweeps, b.sweeps) << engine->name();
    ASSERT_EQ(a.placement.size(), b.placement.size()) << engine->name();
    for (std::size_t m = 0; m < a.placement.size(); ++m) {
      EXPECT_EQ(a.placement[m], b.placement[m])
          << engine->name() << " module " << m;
    }
  }
}

TEST(PlacementEngine, FacadeMatchesDirectBackendCall) {
  // The facade only maps options; it must not change what the backend
  // computes.
  Circuit c = makeFig1Example();
  EngineOptions opt;
  opt.maxSweeps = 120;
  opt.seed = 9;

  SeqPairPlacerOptions direct;
  direct.maxSweeps = opt.maxSweeps;
  direct.seed = opt.seed;
  direct.wirelengthWeight = opt.wirelengthWeight;
  direct.coolingFactor = opt.coolingFactor;
  direct.movesPerTemp = opt.movesPerTemp;

  EngineResult viaEngine = makeEngine(EngineBackend::SeqPair)->place(c, opt);
  SeqPairPlacerResult viaBackend = placeSeqPairSA(c, direct);
  EXPECT_EQ(viaEngine.area, viaBackend.area);
  EXPECT_EQ(viaEngine.hpwl, viaBackend.hpwl);
  EXPECT_EQ(viaEngine.movesTried, viaBackend.movesTried);
  ASSERT_EQ(viaEngine.placement.size(), viaBackend.placement.size());
  for (std::size_t m = 0; m < viaEngine.placement.size(); ++m) {
    EXPECT_EQ(viaEngine.placement[m], viaBackend.placement[m]);
  }
}

TEST(PlacementEngine, SweepBudgetIsHonoredExactly) {
  // Miller: a circuit every backend supports (the HB*-tree placer needs a
  // hierarchy with even symmetry-pair structure, which Fig. 1 lacks).
  Circuit c = makeTableICircuit(TableICircuit::MillerV2);
  EngineOptions opt;
  opt.maxSweeps = 90;
  opt.seed = 2;
  for (EngineBackend backend : allBackends()) {
    auto engine = makeEngine(backend);
    EngineResult r = engine->place(c, opt);
    EXPECT_EQ(r.sweeps, 90u) << engine->name();
  }
}

}  // namespace
}  // namespace als
