// Experiment E11: constraint handling of the Section III machinery —
// ASF symmetry islands, common-centroid patterns, proximity connectivity,
// and the HB*-tree hierarchical placer on the Fig. 2 design.
#include <gtest/gtest.h>

#include "bstar/asf.h"
#include "bstar/common_centroid.h"
#include "bstar/flat_placer.h"
#include "bstar/hbstar.h"
#include "netlist/generators.h"
#include "seqpair/sym_placer.h"

namespace als {
namespace {

TEST(AsfIsland, PairOnlyIslandIsMirrored) {
  std::vector<AsfItem> items{AsfItem::pairModules(0, 1, 10, 6),
                             AsfItem::pairModules(2, 3, 4, 8)};
  AsfIsland island(items);
  AsfPacked packed = island.pack();
  Placement p(4);
  for (std::size_t r = 0; r < packed.macro.rects.size(); ++r) {
    p[packed.macro.owners[r]] = packed.macro.rects[r];
  }
  EXPECT_TRUE(p.isLegal());
  EXPECT_TRUE(mirroredAboutX2(p[0], p[1], packed.axis2x));
  EXPECT_TRUE(mirroredAboutX2(p[2], p[3], packed.axis2x));
}

TEST(AsfIsland, SelfSymmetricCellsStraddleAxis) {
  std::vector<AsfItem> items{AsfItem::selfModule(0, 12, 4),
                             AsfItem::selfModule(1, 8, 6),
                             AsfItem::pairModules(2, 3, 5, 5)};
  AsfIsland island(items);
  AsfPacked packed = island.pack();
  Placement p(4);
  for (std::size_t r = 0; r < packed.macro.rects.size(); ++r) {
    p[packed.macro.owners[r]] = packed.macro.rects[r];
  }
  EXPECT_TRUE(p.isLegal());
  EXPECT_TRUE(centeredOnX2(p[0], packed.axis2x));
  EXPECT_TRUE(centeredOnX2(p[1], packed.axis2x));
  EXPECT_TRUE(mirroredAboutX2(p[2], p[3], packed.axis2x));
}

TEST(AsfIsland, PerturbationsKeepSymmetry) {
  std::vector<AsfItem> items{
      AsfItem::pairModules(0, 1, 10, 4), AsfItem::pairModules(2, 3, 6, 8),
      AsfItem::selfModule(4, 8, 4), AsfItem::pairModules(5, 6, 4, 4)};
  AsfIsland island(items);
  Rng rng(3);
  for (int step = 0; step < 500; ++step) {
    island.perturb(rng);
    AsfPacked packed = island.pack();
    Placement p(7);
    for (std::size_t r = 0; r < packed.macro.rects.size(); ++r) {
      p[packed.macro.owners[r]] = packed.macro.rects[r];
    }
    ASSERT_TRUE(p.isLegal()) << "step " << step;
    ASSERT_TRUE(mirroredAboutX2(p[0], p[1], packed.axis2x)) << "step " << step;
    ASSERT_TRUE(mirroredAboutX2(p[2], p[3], packed.axis2x)) << "step " << step;
    ASSERT_TRUE(mirroredAboutX2(p[5], p[6], packed.axis2x)) << "step " << step;
    ASSERT_TRUE(centeredOnX2(p[4], packed.axis2x)) << "step " << step;
  }
}

TEST(AsfIsland, MacroPairsMirrorWholeSubcircuits) {
  // Hierarchical symmetry: a 2-module sub-circuit and its mirrored partner.
  Placement sub;
  sub.push({0, 0, 4, 4});
  sub.push({4, 0, 6, 2});
  Macro right = Macro::fromPlacement(sub, std::vector<ModuleId>{0, 1});
  std::vector<AsfItem> items{AsfItem::pairMacros(right, {2, 3}),
                             AsfItem::pairModules(4, 5, 4, 4)};
  AsfIsland island(items);
  AsfPacked packed = island.pack();
  Placement p(6);
  for (std::size_t r = 0; r < packed.macro.rects.size(); ++r) {
    p[packed.macro.owners[r]] = packed.macro.rects[r];
  }
  EXPECT_TRUE(p.isLegal());
  // Each module of the right sub-circuit mirrors onto its partner.
  EXPECT_TRUE(mirroredAboutX2(p[0], p[2], packed.axis2x));
  EXPECT_TRUE(mirroredAboutX2(p[1], p[3], packed.axis2x));
  EXPECT_TRUE(mirroredAboutX2(p[4], p[5], packed.axis2x));
}

class CentroidPatternTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(CentroidPatternTest, CentroidsCoincideExactly) {
  auto [unitsA, unitsB] = GetParam();
  CentroidPattern pattern = commonCentroidPattern(unitsA, unitsB);
  EXPECT_EQ(pattern.rows * pattern.cols, unitsA + unitsB);
  EXPECT_EQ(pattern.rows % 2, 0u);
  Placement p = placeCentroidPattern(pattern, 4000, 3000);
  ASSERT_EQ(p.size(), unitsA + unitsB);
  EXPECT_TRUE(p.isLegal());
  std::vector<Rect> a(p.rects().begin(),
                      p.rects().begin() + static_cast<std::ptrdiff_t>(unitsA));
  std::vector<Rect> b(p.rects().begin() + static_cast<std::ptrdiff_t>(unitsA),
                      p.rects().end());
  EXPECT_TRUE(centroidsCoincide(a, b));
}

INSTANTIATE_TEST_SUITE_P(UnitCounts, CentroidPatternTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                                           std::pair<std::size_t, std::size_t>{4, 4},
                                           std::pair<std::size_t, std::size_t>{6, 6},
                                           std::pair<std::size_t, std::size_t>{8, 8},
                                           std::pair<std::size_t, std::size_t>{16, 16}));

TEST(CentroidGrid, SingleArrayIsConnectedAndGridded) {
  std::vector<ModuleId> units{0, 1, 2, 3};
  Macro m = commonCentroidGrid(units, 4000, 4000);
  EXPECT_EQ(m.rects.size(), 4u);
  EXPECT_TRUE(isConnectedRegion(m.rects));
  EXPECT_EQ(m.w, 8000);
  EXPECT_EQ(m.h, 8000);
}

TEST(ConnectedRegion, DetectsDisconnection) {
  std::vector<Rect> connected{{0, 0, 4, 4}, {4, 0, 4, 4}, {0, 4, 4, 4}};
  EXPECT_TRUE(isConnectedRegion(connected));
  std::vector<Rect> cornerOnly{{0, 0, 4, 4}, {4, 4, 4, 4}};
  EXPECT_FALSE(isConnectedRegion(cornerOnly));
  std::vector<Rect> apart{{0, 0, 4, 4}, {10, 0, 4, 4}};
  EXPECT_FALSE(isConnectedRegion(apart));
}

TEST(HBStar, Fig2DesignPacksWithAllConstraints) {
  Circuit c = makeFig2Design();
  HBState state(c);
  HBState::Packed packed = state.pack();
  EXPECT_TRUE(packed.placement.isLegal());
  // Symmetry group (D,E) exactly mirrored about the reported axis.
  const SymmetryGroup& g = c.symmetryGroup(0);
  Coord axis = packed.axis2x[0];
  EXPECT_TRUE(mirroredAboutX2(packed.placement[g.pairs[0].a],
                              packed.placement[g.pairs[0].b], axis));
  // Proximity group J/K/F connected.
  const HierTree& h = c.hierarchy();
  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    if (h.node(id).constraint == GroupConstraint::Proximity) {
      std::vector<Rect> rects;
      for (ModuleId m : h.leavesUnder(id)) rects.push_back(packed.placement[m]);
      EXPECT_TRUE(isConnectedRegion(rects));
    }
  }
}

TEST(HBStar, Fig2PerturbationsPreserveConstraints) {
  Circuit c = makeFig2Design();
  HBState state(c);
  Rng rng(17);
  const SymmetryGroup& g = c.symmetryGroup(0);
  for (int step = 0; step < 300; ++step) {
    state.perturb(rng);
    HBState::Packed packed = state.pack();
    ASSERT_TRUE(packed.placement.isLegal()) << "step " << step;
    ASSERT_TRUE(mirroredAboutX2(packed.placement[g.pairs[0].a],
                                packed.placement[g.pairs[0].b],
                                packed.axis2x[0]))
        << "step " << step;
  }
}

TEST(HBStar, MillerOpAmpAnnealsSymmetrically) {
  Circuit c = makeMillerOpAmp();
  HBPlacerOptions opt;
  opt.maxSweeps = 250;
  opt.seed = 23;
  HBPlacerResult r = placeHBStarSA(c, opt);
  EXPECT_TRUE(r.placement.isLegal());
  EXPECT_TRUE(verifySymmetry(r.placement, c.symmetryGroups(), r.axis2x));
  EXPECT_LT(r.area, 4 * c.totalModuleArea());
}

TEST(HBStar, SyntheticHierarchicalCircuitPlaces) {
  Circuit c = makeSynthetic({.name = "hb", .moduleCount = 30, .seed = 4});
  HBPlacerOptions opt;
  opt.maxSweeps = 250;
  HBPlacerResult r = placeHBStarSA(c, opt);
  EXPECT_TRUE(r.placement.isLegal());
  EXPECT_TRUE(verifySymmetry(r.placement, c.symmetryGroups(), r.axis2x));
}

TEST(HBStar, ScratchReuseAcrossCircuitsNeverChangesResults) {
  // The scratch-reuse contract (engine/place_scratch.h): a scratch handed
  // from one circuit's run to another's must not influence results — in
  // particular the cached common-centroid macros must re-bind on content,
  // not on circuit identity.
  HBPlacerOptions opt;
  opt.maxSweeps = 40;
  opt.seed = 5;
  Circuit a = makeFig2Design();
  Circuit b = makeMillerOpAmp();
  HBPlacerResult freshA = placeHBStarSA(a, opt);
  HBPlacerResult freshB = placeHBStarSA(b, opt);

  HBStarScratch scratch;
  HBPlacerOptions withScratch = opt;
  withScratch.scratch = &scratch;
  HBPlacerResult a1 = placeHBStarSA(a, withScratch);
  HBPlacerResult b1 = placeHBStarSA(b, withScratch);  // scratch warm from a
  HBPlacerResult a2 = placeHBStarSA(a, withScratch);  // scratch warm from b
  EXPECT_EQ(freshA.placement.rects(), a1.placement.rects());
  EXPECT_EQ(freshA.placement.rects(), a2.placement.rects());
  EXPECT_EQ(freshB.placement.rects(), b1.placement.rects());
  EXPECT_EQ(freshA.cost, a2.cost);
  EXPECT_EQ(freshB.cost, b1.cost);
}

TEST(FlatBStar, ReportsResidualViolationsHonestly) {
  Circuit c = makeFig2Design();
  FlatBStarOptions opt;
  opt.maxSweeps = 150;
  FlatBStarResult r = placeFlatBStarSA(c, opt);
  EXPECT_TRUE(r.placement.isLegal());  // B*-trees are always overlap-free
  EXPECT_GE(r.symDeviation, 0);
  EXPECT_GE(r.proximityViolations, 0);
}

}  // namespace
}  // namespace als
