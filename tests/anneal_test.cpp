#include "anneal/annealer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace als {
namespace {

TEST(Annealer, MinimizesQuadratic) {
  AnnealOptions opt;
  opt.seed = 1;
  opt.timeLimitSec = 1.0;
  opt.sizeHint = 4;
  auto result = anneal(
      10.0, [](double x) { return (x - 3.0) * (x - 3.0); },
      [](double x, Rng& rng) { return x + rng.normal(0.0, 0.5); }, opt);
  EXPECT_NEAR(result.best, 3.0, 0.2);
  EXPECT_GT(result.movesTried, 100u);
  EXPECT_GT(result.movesAccepted, 0u);
}

TEST(Annealer, EscapesLocalMinimum) {
  // Double well: local minimum at x = -1 (value 0.5), global at x = 2 (0).
  auto cost = [](double x) {
    double a = (x + 1.0) * (x + 1.0) + 0.5;
    double b = (x - 2.0) * (x - 2.0);
    return std::min(a, b);
  };
  AnnealOptions opt;
  opt.seed = 2;
  opt.timeLimitSec = 1.0;
  auto result = anneal(
      -1.0, cost, [](double x, Rng& rng) { return x + rng.normal(0.0, 0.7); }, opt);
  EXPECT_NEAR(result.best, 2.0, 0.3);
}

TEST(Annealer, DeterministicForSeed) {
  auto cost = [](double x) { return std::abs(x); };
  auto move = [](double x, Rng& rng) { return x + rng.uniform(-1.0, 1.0); };
  AnnealOptions opt;
  opt.seed = 3;
  opt.timeLimitSec = 0.2;
  auto a = anneal(5.0, cost, move, opt);
  auto b = anneal(5.0, cost, move, opt);
  EXPECT_DOUBLE_EQ(a.best, b.best);
  EXPECT_EQ(a.movesTried, b.movesTried);
}

TEST(Annealer, BestNeverWorseThanInitial) {
  auto cost = [](int x) { return static_cast<double>(x * x); };
  auto move = [](int x, Rng& rng) {
    return x + static_cast<int>(rng.uniformInt(-2, 2));
  };
  AnnealOptions opt;
  opt.seed = 4;
  opt.timeLimitSec = 0.1;
  auto result = anneal(7, cost, move, opt);
  EXPECT_LE(result.bestCost, 49.0);
}

TEST(Annealer, RespectsTimeLimit) {
  auto cost = [](double x) { return x; };
  auto move = [](double x, Rng& rng) { return x + rng.uniform() - 0.5; };
  AnnealOptions opt;
  opt.seed = 5;
  opt.timeLimitSec = 0.2;
  opt.freezeRatio = 0.0;  // would run forever without the time limit
  Stopwatch clock;
  anneal(0.0, cost, move, opt);
  EXPECT_LT(clock.seconds(), 2.0);
}

}  // namespace
}  // namespace als
