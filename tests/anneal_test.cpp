#include "anneal/annealer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

namespace als {
namespace {

/// Minimal incremental-protocol model (the shape cost/cost_model.h
/// implements for placements): tracks a committed cost and counts protocol
/// calls so the test can audit the annealer's driving pattern.
struct ToyModel {
  double committed = 0.0;
  double pending = 0.0;
  int commits = 0;
  int rollbacks = 0;
  int resets = 0;

  static double costOf(double x) { return (x - 3.0) * (x - 3.0); }
  double infeasibleCost() const { return 1e30; }
  double reset(double x) {
    ++resets;
    committed = costOf(x);
    return committed;
  }
  double propose(double x) {
    pending = costOf(x);
    return pending;
  }
  void commit() {
    ++commits;
    committed = pending;
  }
  void rollback() { ++rollbacks; }
  void invalidate() {}
};

TEST(Annealer, MinimizesQuadratic) {
  AnnealOptions opt;
  opt.seed = 1;
  opt.maxSweeps = 200;
  opt.sizeHint = 4;
  auto result = anneal(
      10.0, [](double x) { return (x - 3.0) * (x - 3.0); },
      [](double x, Rng& rng) { return x + rng.normal(0.0, 0.5); }, opt);
  EXPECT_NEAR(result.best, 3.0, 0.2);
  EXPECT_GT(result.movesTried, 100u);
  EXPECT_GT(result.movesAccepted, 0u);
}

TEST(Annealer, EscapesLocalMinimum) {
  // Double well: local minimum at x = -1 (value 0.5), global at x = 2 (0).
  auto cost = [](double x) {
    double a = (x + 1.0) * (x + 1.0) + 0.5;
    double b = (x - 2.0) * (x - 2.0);
    return std::min(a, b);
  };
  AnnealOptions opt;
  opt.seed = 2;
  opt.maxSweeps = 200;
  auto result = anneal(
      -1.0, cost, [](double x, Rng& rng) { return x + rng.normal(0.0, 0.7); }, opt);
  EXPECT_NEAR(result.best, 2.0, 0.3);
}

TEST(Annealer, DeterministicForSeed) {
  auto cost = [](double x) { return std::abs(x); };
  auto move = [](double x, Rng& rng) { return x + rng.uniform(-1.0, 1.0); };
  AnnealOptions opt;
  opt.seed = 3;
  opt.maxSweeps = 100;
  auto a = anneal(5.0, cost, move, opt);
  auto b = anneal(5.0, cost, move, opt);
  EXPECT_DOUBLE_EQ(a.best, b.best);
  EXPECT_EQ(a.movesTried, b.movesTried);
  EXPECT_EQ(a.sweeps, b.sweeps);
}

TEST(Annealer, BestNeverWorseThanInitial) {
  auto cost = [](int x) { return static_cast<double>(x * x); };
  auto move = [](int x, Rng& rng) {
    return x + static_cast<int>(rng.uniformInt(-2, 2));
  };
  AnnealOptions opt;
  opt.seed = 4;
  opt.maxSweeps = 50;
  auto result = anneal(7, cost, move, opt);
  EXPECT_LE(result.bestCost, 49.0);
}

TEST(Annealer, SweepBudgetIsThePrimaryStoppingRule) {
  // With freezing disabled the sweep budget is the only active rule; the
  // run must execute exactly `maxSweeps` temperature steps.
  auto cost = [](double x) { return x; };
  auto move = [](double x, Rng& rng) { return x + rng.uniform() - 0.5; };
  AnnealOptions opt;
  opt.seed = 5;
  opt.maxSweeps = 77;
  opt.freezeRatio = 0.0;
  opt.movesPerTemp = 4;
  auto result = anneal(0.0, cost, move, opt);
  EXPECT_EQ(result.sweeps, 77u);
  EXPECT_EQ(result.movesTried, 77u * 4u);
}

TEST(Annealer, RespectsSecondaryTimeLimit) {
  auto cost = [](double x) { return x; };
  auto move = [](double x, Rng& rng) { return x + rng.uniform() - 0.5; };
  AnnealOptions opt;
  opt.seed = 5;
  opt.maxSweeps = 0;      // no sweep cap ...
  opt.timeLimitSec = 0.2; // ... so the wall-clock cap must stop the run
  opt.freezeRatio = 0.0;  // would run forever without the time limit
  Stopwatch clock;
  anneal(0.0, cost, move, opt);
  EXPECT_LT(clock.seconds(), 2.0);
}

TEST(Annealer, RestartsConsumeTheTotalSweepBudgetExactly) {
  auto cost = [](double x) { return std::abs(x); };
  auto move = [](double x, Rng& rng) { return x + rng.uniform(-1.0, 1.0); };
  AnnealOptions opt;
  opt.seed = 6;
  opt.maxSweeps = 500;  // a single schedule freezes after ~226 sweeps
  auto result = annealWithRestarts(5.0, cost, move, opt);
  EXPECT_EQ(result.sweeps, 500u);
}

TEST(Annealer, RestartsAreDeterministicAndDoNotMutateOptions) {
  auto cost = [](double x) { return std::abs(x); };
  auto move = [](double x, Rng& rng) { return x + rng.uniform(-1.0, 1.0); };
  const AnnealOptions opt{.maxSweeps = 300, .seed = 7};
  auto a = annealWithRestarts(5.0, cost, move, opt);
  auto b = annealWithRestarts(5.0, cost, move, opt);
  EXPECT_DOUBLE_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.bestCost, b.bestCost);
  EXPECT_EQ(a.movesTried, b.movesTried);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(opt.maxSweeps, 300u);
  EXPECT_EQ(opt.seed, 7u);
}

TEST(Annealer, IncrementalOverloadRetracesTheScratchTrajectory) {
  // The incremental-protocol overload must be a pure evaluation-strategy
  // swap: same RNG stream, same costs, same acceptances — bit-identical
  // results to the scratch overload.
  auto move = [](double x, Rng& rng) { return x + rng.normal(0.0, 0.5); };
  auto decode = [](double x) { return std::optional<double>(x); };
  AnnealOptions opt;
  opt.seed = 21;
  opt.maxSweeps = 120;
  opt.sizeHint = 4;

  auto scratch = anneal(10.0, &ToyModel::costOf, move, opt);
  ToyModel model;
  auto incremental = anneal(10.0, model, decode, move, opt);

  EXPECT_EQ(scratch.best, incremental.best);
  EXPECT_EQ(scratch.bestCost, incremental.bestCost);
  EXPECT_EQ(scratch.movesTried, incremental.movesTried);
  EXPECT_EQ(scratch.movesAccepted, incremental.movesAccepted);
  EXPECT_EQ(scratch.sweeps, incremental.sweeps);

  // Protocol audit: the 50-move calibration walk commits every probe, the
  // Metropolis loop commits exactly the accepted moves and rolls back the
  // rest; the model is seeded once at the start and re-based once after
  // calibration.
  EXPECT_EQ(model.commits,
            50 + static_cast<int>(incremental.movesAccepted));
  EXPECT_EQ(model.rollbacks, static_cast<int>(incremental.movesTried -
                                              incremental.movesAccepted));
  EXPECT_EQ(model.resets, 2);
}

TEST(Annealer, IncrementalRestartsMatchScratchRestarts) {
  auto move = [](double x, Rng& rng) { return x + rng.uniform(-1.0, 1.0); };
  auto decode = [](double x) { return std::optional<double>(x); };
  AnnealOptions opt;
  opt.seed = 23;
  opt.maxSweeps = 400;  // enough for several freeze-terminated restarts
  auto scratch = annealWithRestarts(5.0, &ToyModel::costOf, move, opt);
  ToyModel model;
  auto incremental = annealWithRestarts(5.0, model, decode, move, opt);
  EXPECT_EQ(scratch.best, incremental.best);
  EXPECT_EQ(scratch.bestCost, incremental.bestCost);
  EXPECT_EQ(scratch.movesTried, incremental.movesTried);
  EXPECT_EQ(scratch.sweeps, incremental.sweeps);
}

TEST(Annealer, RestartBeatsOrMatchesSingleRunWithSameTotalBudget) {
  // The restart driver returns the best of its rounds, so it can never be
  // worse than its own first round (which is a plain `anneal` call with the
  // full budget capped by freezing).
  auto cost = [](double x) {
    return std::abs(x - 4.0) + 2.0 * std::sin(3.0 * x);
  };
  auto move = [](double x, Rng& rng) { return x + rng.normal(0.0, 0.4); };
  AnnealOptions opt;
  opt.seed = 8;
  opt.maxSweeps = 600;
  auto single = anneal(0.0, cost, move, opt);
  auto restarted = annealWithRestarts(0.0, cost, move, opt);
  EXPECT_LE(restarted.bestCost, single.bestCost + 1e-12);
}

}  // namespace
}  // namespace als
