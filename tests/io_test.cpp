// Benchmark I/O tests: parsing, soft-block resolution, error reporting,
// canonical hierarchy synthesis, the embedded corpus, and the write ->
// parse round trip — which must reconstruct circuits *structurally
// identically* (including hierarchy node ids) and therefore place
// bit-identically on every backend.
#include "io/benchmark_format.h"

#include <gtest/gtest.h>

#include "engine/placement_engine.h"
#include "io/corpus.h"
#include "netlist/generators.h"
#include "test_util.h"

namespace als {
namespace {

constexpr std::string_view kTiny = R"(
# a tiny well-formed file
ALSBENCH 1
Circuit tiny example
NumBlocks 3
Block a 10 20
Block b 10 20 norotate
SoftBlock s 400 0.5 2.0
NumNets 2
Net n1 2 a b
Net n2 3 a b s 2.5
NumSymGroups 1
SymGroup g 1 1
SymPair a b
SymSelf s
NumPower 1
Power a 0.5
NumShapes 1
Shape b 2 20 10 5 40
)";

TEST(BenchmarkParse, WellFormedFile) {
  ParseResult r = parseBenchmark(kTiny);
  ASSERT_TRUE(r.ok()) << r.error;
  const Circuit& c = r.circuit;
  EXPECT_EQ(c.name(), "tiny example");
  ASSERT_EQ(c.moduleCount(), 3u);
  EXPECT_EQ(c.module(0).name, "a");
  EXPECT_EQ(c.module(0).w, 10);
  EXPECT_EQ(c.module(0).h, 20);
  EXPECT_TRUE(c.module(0).rotatable);
  EXPECT_FALSE(c.module(1).rotatable);
  // Soft block: aspect range [0.5, 2] contains 1, so the resolution is the
  // 20x20 square covering area 400.
  EXPECT_EQ(c.module(2).w, 20);
  EXPECT_EQ(c.module(2).h, 20);
  ASSERT_EQ(c.nets().size(), 2u);
  EXPECT_EQ(c.nets()[0].pins, (std::vector<ModuleId>{0, 1}));
  EXPECT_DOUBLE_EQ(c.nets()[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(c.nets()[1].weight, 2.5);
  ASSERT_EQ(c.symmetryGroups().size(), 1u);
  EXPECT_EQ(c.symmetryGroup(0).pairs.size(), 1u);
  EXPECT_EQ(c.symmetryGroup(0).selfs, (std::vector<ModuleId>{2}));
  // Power and Shape sections: `a` radiates, `b` carries two alternatives
  // behind its declared footprint (shapes[0] is ALWAYS the footprint).
  EXPECT_DOUBLE_EQ(c.module(0).powerW, 0.5);
  EXPECT_DOUBLE_EQ(c.module(1).powerW, 0.0);
  ASSERT_EQ(c.module(1).shapes.size(), 3u);
  EXPECT_EQ(c.module(1).shapes[0], (ModuleShape{10, 20}));
  EXPECT_EQ(c.module(1).shapes[1], (ModuleShape{20, 10}));
  EXPECT_EQ(c.module(1).shapes[2], (ModuleShape{5, 40}));
  // The soft block had no explicit Shape line, so the parser derived a
  // discretized curve from its aspect range, anchored at the footprint.
  ASSERT_GE(c.module(2).shapes.size(), 2u);
  EXPECT_EQ(c.module(2).shapes[0], (ModuleShape{20, 20}));
  // The parser synthesized a canonical hierarchy.
  EXPECT_FALSE(c.hierarchy().empty());
}

TEST(BenchmarkParse, ExplicitShapeWinsOverSoftAutoCurve) {
  ParseResult r = parseBenchmark(
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nSoftBlock s 400 0.5 2.0\n"
      "NumShapes 1\nShape s 1 10 40\n");
  ASSERT_TRUE(r.ok()) << r.error;
  // The explicit curve replaces the auto-derived one entirely.
  ASSERT_EQ(r.circuit.module(0).shapes.size(), 2u);
  EXPECT_EQ(r.circuit.module(0).shapes[0], (ModuleShape{20, 20}));
  EXPECT_EQ(r.circuit.module(0).shapes[1], (ModuleShape{10, 40}));
}

TEST(BenchmarkParse, AbsentSectionsLeaveCanonicalDefaults) {
  ParseResult r = parseBenchmark(
      "ALSBENCH 1\nCircuit c\nNumBlocks 2\nBlock a 3 4\nBlock b 5 6\n");
  ASSERT_TRUE(r.ok()) << r.error;
  for (ModuleId m = 0; m < 2; ++m) {
    EXPECT_DOUBLE_EQ(r.circuit.module(m).powerW, 0.0);
    EXPECT_TRUE(r.circuit.module(m).shapes.empty());
  }
}

TEST(BenchmarkParse, SoftBlockAspectClamping) {
  // Aspect range excludes 1: the closest in-range aspect (1.5) wins.
  // w = round(sqrt(2e9 * 1.5)) = 54772, h = ceil(2e9 / 54772) = 36516.
  ParseResult r = parseBenchmark(
      "ALSBENCH 1\nCircuit c\nNumBlocks 1\nSoftBlock s 2000000000 1.5 3.0\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.circuit.module(0).w, 54772);
  EXPECT_EQ(r.circuit.module(0).h, 36516);
  EXPECT_GE(r.circuit.module(0).w * r.circuit.module(0).h, 2000000000);
}

TEST(BenchmarkParse, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"", "unexpected end"},
      {"YALBENCH 1\n", "expected 'ALSBENCH'"},
      {"ALSBENCH 2\nCircuit c\nNumBlocks 1\nBlock a 1 1\n", "version"},
      {"ALSBENCH 1\nCircuit\nNumBlocks 1\nBlock a 1 1\n", "circuit name"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 0\n", "at least 1"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 2\nBlock a 1 1\n", "unexpected end"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 0 5\n", "bad dimension"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 5 x\n", "bad dimension"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 2\nBlock a 1 1\nBlock a 2 2\n",
       "duplicate block"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumNets 1\n"
       "Net n 2 a zz\n", "unknown block"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumNets 1\n"
       "Net n 3 a a\n", "pin list"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumSymGroups 1\n"
       "SymGroup g 1 0\nSymPair a a\n", "with itself"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\njunk here\n",
       "trailing content"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nSoftBlock s 100 3.0 1.5\n",
       "aspect range"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 2\nBlock a 1 1\nBlock b 2 2\n"
       "NumSymGroups 1\nSymGroup g 1 0\nSymPair a b\n", "validation"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumPower 1\n"
       "Power zz 0.5\n", "unknown block"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumPower 1\n"
       "Power a 0\n", "power must be positive"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumPower 1\n"
       "Power a nan\n", "bad number"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumPower 2\n"
       "Power a 0.5\nPower a 0.25\n", "duplicate Power"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumPower 1\n"
       "Power a 0.5 extra\n", "Power needs"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumShapes 1\n"
       "Shape zz 1 2 2\n", "unknown block"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumShapes 1\n"
       "Shape a 1 0 5\n", "bad dimension"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumShapes 1\n"
       "Shape a 2 2 2\n", "declared count"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumShapes 1\n"
       "Shape a 0\n", "bad shape count"},
      {"ALSBENCH 1\nCircuit c\nNumBlocks 1\nBlock a 1 1\nNumShapes 2\n"
       "Shape a 1 2 2\nShape a 1 3 3\n", "duplicate Shape"},
  };
  for (const Case& test : cases) {
    ParseResult r = parseBenchmark(test.text);
    EXPECT_FALSE(r.ok()) << test.text;
    EXPECT_NE(r.error.find(test.needle), std::string::npos)
        << "error '" << r.error << "' should mention '" << test.needle << "'";
  }
}

TEST(BenchmarkParse, HierarchyInvariantsAreValidated) {
  // A symmetry node whose leaf children are not the group members must be
  // rejected at parse time (the HB*-tree placer asserts on it otherwise).
  const char* text =
      "ALSBENCH 1\nCircuit c\nNumBlocks 3\n"
      "Block a 1 1\nBlock b 1 1\nBlock x 2 2\n"
      "NumSymGroups 1\nSymGroup g 1 0\nSymPair a b\n"
      "NumHierNodes 5\nLeaf a a\nLeaf b b\nLeaf x x\n"
      "Group s symmetry g 3 0 1 2\n"  // x is not a member of g
      "Group top none - 1 3\nRoot 4\n";
  ParseResult r = parseBenchmark(text);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("members of group"), std::string::npos) << r.error;

  const char* orphan =
      "ALSBENCH 1\nCircuit c\nNumBlocks 2\nBlock a 1 1\nBlock b 1 1\n"
      "NumHierNodes 3\nLeaf a a\nLeaf b b\nGroup top none - 1 0\nRoot 2\n";
  r = parseBenchmark(orphan);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("not reachable"), std::string::npos) << r.error;
}

TEST(CanonicalHierarchy, ClustersFreeBlocksAndWrapsSymGroups) {
  Circuit c = loadCorpusCircuit(CorpusCircuit::Apte);
  const HierTree& h = c.hierarchy();
  // 9 leaves + 1 symmetry node (4 members) + 1 cluster of 4 free blocks
  // (the 9th free block stays a direct root child) + the root.
  ASSERT_EQ(h.nodeCount(), 12u);
  for (HierNodeId id = 0; id < 9; ++id) {
    ASSERT_TRUE(h.node(id).isLeaf());
    EXPECT_EQ(*h.node(id).module, id);
  }
  const HierNode& sym = h.node(9);
  EXPECT_EQ(sym.constraint, GroupConstraint::Symmetry);
  EXPECT_EQ(sym.symGroup, std::optional<std::size_t>{0});
  EXPECT_EQ(sym.children, (std::vector<HierNodeId>{0, 1, 2, 3}));
  const HierNode& cluster = h.node(10);
  EXPECT_EQ(cluster.constraint, GroupConstraint::None);
  EXPECT_EQ(cluster.children, (std::vector<HierNodeId>{4, 5, 6, 7}));
  EXPECT_EQ(h.root(), 11u);
  EXPECT_EQ(h.node(11).children, (std::vector<HierNodeId>{9, 10, 8}));
  // Every basic set stays small enough for exhaustive enumeration.
  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    if (!h.node(id).isLeaf() && h.isBasicSet(id)) {
      EXPECT_LE(h.node(id).children.size(), 6u);
    }
  }
}

TEST(Corpus, AllCircuitsParseAndValidate) {
  const std::size_t expectedBlocks[] = {9, 10, 11, 33, 49};
  std::size_t i = 0;
  for (CorpusCircuit which : allCorpusCircuits()) {
    Circuit c = loadCorpusCircuit(which);
    EXPECT_EQ(c.name(), corpusName(which));
    EXPECT_EQ(c.moduleCount(), expectedBlocks[i++]);
    EXPECT_FALSE(c.nets().empty());
    EXPECT_FALSE(c.hierarchy().empty());
    std::string why;
    EXPECT_TRUE(c.validate(&why)) << corpusName(which) << ": " << why;
  }
}

TEST(Corpus, GsrcCircuitsParseValidateAndScale) {
  const std::size_t expectedBlocks[] = {100, 200, 300};
  std::size_t i = 0;
  for (CorpusCircuit which : largeCorpusCircuits()) {
    SCOPED_TRACE(corpusName(which));
    Circuit c = loadCorpusCircuit(which);
    EXPECT_EQ(c.name(), corpusName(which));
    EXPECT_EQ(c.moduleCount(), expectedBlocks[i++]);
    std::string why;
    EXPECT_TRUE(c.validate(&why)) << why;
    EXPECT_FALSE(c.hierarchy().empty());
    // The GSRC-scale class carries the annotations the scaling benches
    // exercise: soft blocks with shape curves, symmetry groups, and about
    // one net per block.
    std::size_t soft = 0;
    for (ModuleId m = 0; m < c.moduleCount(); ++m) {
      if (!c.module(m).shapes.empty()) ++soft;
      // Every footprint sits on the micrometre grid (even DBU — the
      // symmetric constructors center pairs at half-sums).
      EXPECT_EQ(c.module(m).w % 2, 0) << m;
      EXPECT_EQ(c.module(m).h % 2, 0) << m;
    }
    EXPECT_GE(soft, c.moduleCount() / 20);
    EXPECT_GE(c.symmetryGroups().size(), 2u);
    EXPECT_GE(c.nets().size(), c.moduleCount() / 2);
    // The embedded text is a stable singleton: repeated lookups alias the
    // same generated buffer.
    EXPECT_EQ(corpusText(which).data(), corpusText(which).data());
    // Name lookup covers the large list too.
    CorpusCircuit back;
    ASSERT_TRUE(corpusByName(corpusName(which), &back));
    EXPECT_EQ(back, which);
  }
}

TEST(Corpus, GsrcGeneratorIsDeterministic) {
  Circuit a = makeGsrcLikeCircuit(100, 42);
  Circuit b = makeGsrcLikeCircuit(100, 42);
  WriteResult wa = writeBenchmark(a), wb = writeBenchmark(b);
  ASSERT_TRUE(wa.ok() && wb.ok());
  EXPECT_EQ(wa.text, wb.text);
  // A different seed must actually change the instance.
  Circuit other = makeGsrcLikeCircuit(100, 43);
  WriteResult wo = writeBenchmark(other);
  ASSERT_TRUE(wo.ok());
  EXPECT_NE(wa.text, wo.text);
}

// --- round trip ----------------------------------------------------------

void expectStructurallyIdentical(const Circuit& a, const Circuit& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.moduleCount(), b.moduleCount());
  for (ModuleId m = 0; m < a.moduleCount(); ++m) {
    EXPECT_EQ(a.module(m).name, b.module(m).name) << m;
    EXPECT_EQ(a.module(m).w, b.module(m).w) << m;
    EXPECT_EQ(a.module(m).h, b.module(m).h) << m;
    EXPECT_EQ(a.module(m).rotatable, b.module(m).rotatable) << m;
    EXPECT_EQ(a.module(m).powerW, b.module(m).powerW) << m;
    EXPECT_EQ(a.module(m).shapes, b.module(m).shapes) << m;
  }
  ASSERT_EQ(a.nets().size(), b.nets().size());
  for (std::size_t n = 0; n < a.nets().size(); ++n) {
    EXPECT_EQ(a.nets()[n].name, b.nets()[n].name) << n;
    EXPECT_EQ(a.nets()[n].pins, b.nets()[n].pins) << n;
    EXPECT_EQ(a.nets()[n].weight, b.nets()[n].weight) << n;
  }
  ASSERT_EQ(a.symmetryGroups().size(), b.symmetryGroups().size());
  for (std::size_t g = 0; g < a.symmetryGroups().size(); ++g) {
    const SymmetryGroup& ga = a.symmetryGroup(g);
    const SymmetryGroup& gb = b.symmetryGroup(g);
    EXPECT_EQ(ga.name, gb.name);
    ASSERT_EQ(ga.pairs.size(), gb.pairs.size());
    for (std::size_t p = 0; p < ga.pairs.size(); ++p) {
      EXPECT_EQ(ga.pairs[p].a, gb.pairs[p].a);
      EXPECT_EQ(ga.pairs[p].b, gb.pairs[p].b);
    }
    EXPECT_EQ(ga.selfs, gb.selfs);
  }
  ASSERT_EQ(a.hierarchy().nodeCount(), b.hierarchy().nodeCount());
  for (HierNodeId id = 0; id < a.hierarchy().nodeCount(); ++id) {
    const HierNode& na = a.hierarchy().node(id);
    const HierNode& nb = b.hierarchy().node(id);
    EXPECT_EQ(na.name, nb.name) << "node " << id;
    EXPECT_EQ(na.constraint, nb.constraint) << "node " << id;
    EXPECT_EQ(na.children, nb.children) << "node " << id;
    EXPECT_EQ(na.module, nb.module) << "node " << id;
    EXPECT_EQ(na.symGroup, nb.symGroup) << "node " << id;
  }
  EXPECT_EQ(a.hierarchy().root(), b.hierarchy().root());
}

/// Write -> parse -> structural identity -> bit-identical placement on
/// every backend (the determinism check of engine_test, applied across the
/// I/O boundary).
void expectRoundTrip(const Circuit& original) {
  WriteResult written = writeBenchmark(original);
  ASSERT_TRUE(written.ok()) << written.error;
  ParseResult parsed = parseBenchmark(written.text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  expectStructurallyIdentical(original, parsed.circuit);

  // Serialization is idempotent: writing the parsed circuit reproduces the
  // byte-identical file.
  WriteResult again = writeBenchmark(parsed.circuit);
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_EQ(written.text, again.text);

  EngineOptions opt;
  opt.maxSweeps = 100;
  opt.seed = 5;
  // Scenario knobs on: circuits without annotations behave identically (no
  // radiators -> zero term, no curves -> no shape RNG draws), annotated
  // ones must reproduce their annotations exactly to stay bit-identical.
  opt.thermalWeight = 1.0;
  opt.shapeMoveProb = 0.15;
  for (EngineBackend backend : allBackends()) {
    auto engine = makeEngine(backend);
    EngineResult a = engine->place(original, opt);
    EngineResult b = engine->place(parsed.circuit, opt);
    EXPECT_EQ(a.cost, b.cost) << engine->name();
    EXPECT_EQ(a.area, b.area) << engine->name();
    EXPECT_EQ(a.hpwl, b.hpwl) << engine->name();
    EXPECT_EQ(a.movesTried, b.movesTried) << engine->name();
    ASSERT_EQ(a.placement.size(), b.placement.size()) << engine->name();
    for (std::size_t m = 0; m < a.placement.size(); ++m) {
      EXPECT_EQ(a.placement[m], b.placement[m])
          << engine->name() << " module " << m;
    }
  }
}

TEST(BenchmarkRoundTrip, MillerOpAmp) { expectRoundTrip(makeMillerOpAmp()); }

TEST(BenchmarkRoundTrip, Fig2Design) { expectRoundTrip(makeFig2Design()); }

TEST(BenchmarkRoundTrip, TableIComparator) {
  expectRoundTrip(makeTableICircuit(TableICircuit::ComparatorV2));
}

TEST(BenchmarkRoundTrip, SyntheticCircuits) {
  for (std::uint64_t seed : {7u, 19u, 83u}) {
    SyntheticSpec spec;
    spec.name = "rt" + std::to_string(seed);
    spec.moduleCount = 18;
    spec.seed = seed;
    spec.symmetricFraction = 0.6;
    expectRoundTrip(makeSynthetic(spec));
  }
}

// Power and shape annotations survive the full round trip — including the
// bit-identical placement leg, which now runs with the thermal objective
// and shape moves enabled so the annotations are load-bearing.
TEST(BenchmarkRoundTrip, PowerAndShapeAnnotations) {
  Circuit c = makeMillerOpAmp();
  c.module(3).powerW = 0.7;
  c.module(7).powerW = 0.25;
  Module& soft = c.module(8);
  soft.shapes = {{soft.w, soft.h},
                 {soft.w / 2, soft.h * 2},
                 {soft.w * 2, (soft.h + 1) / 2}};
  std::string why;
  ASSERT_TRUE(c.validate(&why)) << why;
  expectRoundTrip(c);

  WriteResult written = writeBenchmark(c);
  ASSERT_TRUE(written.ok()) << written.error;
  EXPECT_NE(written.text.find("NumPower 2"), std::string::npos);
  EXPECT_NE(written.text.find("NumShapes 1"), std::string::npos);
}

// Tampered annotations must not serialize: a shapes[0] that disagrees with
// the declared footprint would silently change on reparse.
TEST(BenchmarkWrite, RejectsFootprintShapeMismatch) {
  Circuit c("c");
  c.addModule("a", 10, 20);
  c.module(0).shapes = {{11, 20}, {20, 10}};
  EXPECT_FALSE(writeBenchmark(c).ok());

  Circuit neg("c2");
  neg.addModule("a", 10, 20);
  neg.module(0).powerW = -1.0;
  EXPECT_FALSE(writeBenchmark(neg).ok());
}

TEST(BenchmarkRoundTrip, CorpusCircuits) {
  for (CorpusCircuit which : allCorpusCircuits()) {
    SCOPED_TRACE(corpusName(which));
    Circuit c = loadCorpusCircuit(which);
    WriteResult written = writeBenchmark(c);
    ASSERT_TRUE(written.ok()) << written.error;
    ParseResult parsed = parseBenchmark(written.text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    expectStructurallyIdentical(c, parsed.circuit);
  }
}

TEST(BenchmarkRoundTrip, GsrcCircuits) {
  for (CorpusCircuit which : largeCorpusCircuits()) {
    SCOPED_TRACE(corpusName(which));
    Circuit c = loadCorpusCircuit(which);
    WriteResult written = writeBenchmark(c);
    ASSERT_TRUE(written.ok()) << written.error;
    ParseResult parsed = parseBenchmark(written.text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    expectStructurallyIdentical(c, parsed.circuit);
    // The corpus text IS the serialization of the generated circuit, so a
    // second write reproduces it byte-for-byte.
    EXPECT_EQ(written.text, corpusText(which));
  }
}

TEST(BenchmarkRoundTrip, FileHelpers) {
  Circuit c = loadCorpusCircuit(CorpusCircuit::Apte);
  std::string path = ::testing::TempDir() + "als_io_test_apte.alsbench";
  std::string error;
  ASSERT_TRUE(writeBenchmarkFile(path, c, &error)) << error;
  ParseResult parsed = parseBenchmarkFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  expectStructurallyIdentical(c, parsed.circuit);
  EXPECT_FALSE(parseBenchmarkFile(path + ".does-not-exist").ok());
  std::remove(path.c_str());
}

TEST(BenchmarkWrite, RejectsUnserializableCircuits) {
  Circuit spaces("c");
  spaces.addModule("has space", 1, 1);
  EXPECT_FALSE(writeBenchmark(spaces).ok());

  Circuit dup("c");
  dup.addModule("a", 1, 1);
  dup.addModule("a", 2, 2);
  EXPECT_FALSE(writeBenchmark(dup).ok());

  EXPECT_FALSE(writeBenchmark(Circuit("empty")).ok());

  // Circuit names the parser would trim (or reject) must not serialize:
  // the round-trip guarantee would silently break.
  Circuit padded("padded ");
  padded.addModule("a", 1, 1);
  EXPECT_FALSE(writeBenchmark(padded).ok());
  Circuit blank("  ");
  blank.addModule("a", 1, 1);
  EXPECT_FALSE(writeBenchmark(blank).ok());
}

// The corpus symmetry circuits place with exact mirror symmetry on the
// structural backends — the invariant checker in its strictest setting.
TEST(CorpusPlacement, StructuralBackendsKeepSymmetryExactly) {
  Circuit c = loadCorpusCircuit(CorpusCircuit::Apte);
  EngineOptions opt;
  opt.maxSweeps = 80;
  opt.seed = 3;
  for (EngineBackend backend : {EngineBackend::SeqPair, EngineBackend::HBStar}) {
    auto engine = makeEngine(backend);
    EngineResult r = engine->place(c, opt);
    test_util::expectPlacementInvariants(r.placement, c, {.symTolerance = 0},
                                         std::string(engine->name()));
  }
  for (EngineBackend backend :
       {EngineBackend::FlatBStar, EngineBackend::Slicing}) {
    auto engine = makeEngine(backend);
    EngineResult r = engine->place(c, opt);
    test_util::expectPlacementInvariants(
        r.placement, c, {.symTolerance = test_util::kNoSymmetryCheck},
        std::string(engine->name()));
  }
}

}  // namespace
}  // namespace als
