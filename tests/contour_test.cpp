// FlatContour ≡ Contour: the flat skyline must be bit-for-bit equivalent to
// the std::map reference over every operation the packers drive, including
// non-flat macro profiles, plus the reuse properties the decode hot path
// leans on (O(1) reset, free-list recycling, steady-state capacity).
#include <gtest/gtest.h>

#include <vector>

#include "bstar/contour.h"
#include "geom/profile.h"
#include "util/rng.h"

namespace als {
namespace {

/// Compares the two skylines pointwise on [0, limit] plus a maxOver sweep.
void expectEquivalent(const Contour& ref, const FlatContour& flat, Coord limit) {
  for (Coord x = 0; x <= limit; ++x) {
    ASSERT_EQ(ref.heightAt(x), flat.heightAt(x)) << "at x = " << x;
  }
  for (Coord x1 = 0; x1 < limit; x1 += 3) {
    for (Coord x2 = x1 + 1; x2 <= limit; x2 += 5) {
      ASSERT_EQ(ref.maxOver(x1, x2), flat.maxOver(x1, x2))
          << "over [" << x1 << ", " << x2 << ")";
    }
  }
}

/// A random rectilinear profile over [0, w): 1-3 steps, values in [0, vMax].
std::vector<ProfileStep> randomProfile(Rng& rng, Coord w, Coord vMax) {
  std::vector<ProfileStep> steps;
  Coord lo = 0;
  std::size_t n = 1 + rng.index(3);
  for (std::size_t i = 0; i < n && lo < w; ++i) {
    Coord hi = i + 1 == n ? w : std::min<Coord>(w, lo + 1 + rng.index(
                                     static_cast<std::size_t>(w - lo)));
    steps.push_back({lo, hi, rng.uniformInt(0, vMax)});
    lo = hi;
  }
  steps.back().hi = w;
  return steps;
}

TEST(FlatContour, MatchesMapReferenceOnRandomRaises) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    Contour ref;
    FlatContour flat;
    for (int op = 0; op < 60; ++op) {
      Coord x1 = rng.uniformInt(0, 40);
      Coord x2 = x1 + 1 + rng.uniformInt(0, 20);
      Coord h = rng.uniformInt(0, 50);
      ASSERT_EQ(ref.maxOver(x1, x2), flat.maxOver(x1, x2));
      ref.raise(x1, x2, h);
      flat.raise(x1, x2, h);
    }
    expectEquivalent(ref, flat, 70);
  }
}

TEST(FlatContour, MatchesMapReferenceOnMacroSequences) {
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    Contour ref;
    FlatContour flat;
    for (int op = 0; op < 40; ++op) {
      Coord x = rng.uniformInt(0, 30);
      Coord w = 1 + rng.uniformInt(0, 12);
      std::vector<ProfileStep> bottom = randomProfile(rng, w, 6);
      std::vector<ProfileStep> top = randomProfile(rng, w, 10);
      // A macro's top must clear its own bottom; lift the top profile.
      for (ProfileStep& s : top) s.v += 8;
      Coord yRef = ref.fitMacro(x, bottom);
      Coord yFlat = flat.fitMacro(x, bottom);
      ASSERT_EQ(yRef, yFlat);
      ref.placeMacro(x, yRef, top);
      flat.placeMacro(x, yFlat, top);
    }
    expectEquivalent(ref, flat, 50);
  }
}

TEST(FlatContour, InterleavedFitRaiseAndPointQueries) {
  Rng rng(23);
  Contour ref;
  FlatContour flat;
  for (int op = 0; op < 500; ++op) {
    switch (rng.index(3)) {
      case 0: {
        Coord x1 = rng.uniformInt(0, 100);
        Coord x2 = x1 + 1 + rng.uniformInt(0, 30);
        Coord h = rng.uniformInt(0, 200);
        ref.raise(x1, x2, h);
        flat.raise(x1, x2, h);
        break;
      }
      case 1: {
        Coord x1 = rng.uniformInt(0, 120);
        Coord x2 = x1 + 1 + rng.uniformInt(0, 40);
        ASSERT_EQ(ref.maxOver(x1, x2), flat.maxOver(x1, x2));
        break;
      }
      default: {
        Coord x = rng.uniformInt(0, 140);
        ASSERT_EQ(ref.heightAt(x), flat.heightAt(x));
        break;
      }
    }
  }
  expectEquivalent(ref, flat, 140);
}

TEST(FlatContour, ResetRestoresTheEmptySkyline) {
  FlatContour flat;
  Rng rng(3);
  for (int op = 0; op < 50; ++op) {
    Coord x1 = rng.uniformInt(0, 40);
    flat.raise(x1, x1 + 1 + rng.uniformInt(0, 10), rng.uniformInt(1, 30));
  }
  ASSERT_GT(flat.segmentCount(), 1u);
  flat.reset();
  EXPECT_EQ(flat.segmentCount(), 1u);
  for (Coord x = 0; x <= 60; ++x) EXPECT_EQ(flat.heightAt(x), 0);
  // A reset instance behaves exactly like a fresh reference again.
  Contour ref;
  for (int op = 0; op < 50; ++op) {
    Coord x1 = rng.uniformInt(0, 40);
    Coord x2 = x1 + 1 + rng.uniformInt(0, 10);
    Coord h = rng.uniformInt(0, 30);
    ref.raise(x1, x2, h);
    flat.raise(x1, x2, h);
  }
  expectEquivalent(ref, flat, 60);
}

TEST(FlatContour, FreeListRecyclesRemovedSegments) {
  FlatContour flat;
  // Build a comb of alternating heights, then flatten it: every interior
  // breakpoint must land on the free list, not leak.
  for (Coord i = 0; i < 50; ++i) flat.raise(2 * i, 2 * i + 1, 5 + (i % 3));
  std::size_t peak = flat.segmentCount();
  ASSERT_GT(peak, 50u);
  flat.raise(0, 200, 9);
  EXPECT_LE(flat.segmentCount(), 3u);
  EXPECT_GE(flat.freeCount(), peak - 3);
  // Rebuilding the comb must reuse recycled segments (count returns ~peak).
  for (Coord i = 0; i < 50; ++i) flat.raise(2 * i, 2 * i + 1, 5 + (i % 3));
  EXPECT_GE(flat.segmentCount(), 50u);
}

TEST(FlatContour, JournaledRaiseUndoRestoresEveryIntermediateState) {
  // Partial repack leans on raiseLogged/undoRaise being exact inverses:
  // after undoing the top k raises (strict LIFO), the skyline must equal —
  // function AND canonical segment structure — the state before them.
  Rng rng(97);
  for (int round = 0; round < 20; ++round) {
    FlatContour flat;
    Contour ref;
    // A random warm base laid with plain raise().
    for (int op = 0; op < 10; ++op) {
      Coord x = rng.uniformInt(0, 30);
      Coord w = 1 + rng.uniformInt(0, 10);
      Coord h = 1 + rng.uniformInt(0, 9);
      Coord y = ref.maxOver(x, x + w);
      ref.raise(x, x + w, y + h);
      flat.raise(x, x + w, y + h);
    }
    // A stack of journaled raises, snapshotting the reference before each.
    struct Entry {
      std::vector<ContourPiece> journal;
      Coord x2;
      Contour before;
      std::size_t segments;
    };
    std::vector<Entry> stack;
    for (int op = 0; op < 12; ++op) {
      Coord x = rng.uniformInt(0, 30);
      Coord w = 1 + rng.uniformInt(0, 10);
      Coord h = 1 + rng.uniformInt(0, 9);
      Coord y = ref.maxOver(x, x + w);
      Entry e;
      e.x2 = x + w;
      e.before = ref;
      e.segments = flat.segmentCount();
      flat.raiseLogged(x, x + w, y + h, e.journal);
      ref.raise(x, x + w, y + h);
      stack.push_back(std::move(e));
      expectEquivalent(ref, flat, 45);
    }
    // Unwind; every intermediate state must be restored bit-for-bit.
    while (!stack.empty()) {
      const Entry& e = stack.back();
      flat.undoRaise(e.journal, e.x2);
      expectEquivalent(e.before, flat, 45);
      ASSERT_EQ(flat.segmentCount(), e.segments)
          << "undo must restore the canonical merged structure";
      stack.pop_back();
    }
  }
}

TEST(FlatContour, JournaledRaiseMatchesPlainRaise) {
  // raiseLogged must produce the identical skyline to raise() — the journal
  // is a side channel, never a behavioural switch.
  Rng rng(131);
  FlatContour plain, logged;
  std::vector<ContourPiece> journal;
  for (int op = 0; op < 200; ++op) {
    Coord x = rng.uniformInt(0, 40);
    Coord w = 1 + rng.uniformInt(0, 12);
    Coord h = plain.maxOver(x, x + w) + 1 + rng.uniformInt(0, 7);
    plain.raise(x, x + w, h);
    journal.clear();
    logged.raiseLogged(x, x + w, h, journal);
    ASSERT_EQ(plain.segmentCount(), logged.segmentCount());
    for (Coord q = 0; q <= 55; ++q) ASSERT_EQ(plain.heightAt(q), logged.heightAt(q));
  }
}

TEST(FlatContour, ReuseAcrossResetsMatchesReferenceEveryRound) {
  Rng rng(41);
  FlatContour flat;  // ONE instance across all rounds — the anneal pattern
  for (int round = 0; round < 30; ++round) {
    flat.reset();
    Contour ref;
    for (int op = 0; op < 30; ++op) {
      Coord x = rng.uniformInt(0, 25);
      Coord w = 1 + rng.uniformInt(0, 8);
      Coord h = 1 + rng.uniformInt(0, 12);
      Coord y = ref.maxOver(x, x + w);
      ASSERT_EQ(y, flat.maxOver(x, x + w));
      ref.raise(x, x + w, y + h);
      flat.raise(x, x + w, y + h);
    }
    expectEquivalent(ref, flat, 40);
  }
}

}  // namespace
}  // namespace als
