// Section V on the paper's Fig. 6 circuit: the two-stage Miller op amp
// model, template, extraction and sizing flows.
#include <gtest/gtest.h>

#include "layoutaware/miller.h"

namespace als {
namespace {

const Technology kTech = Technology::c035();

TEST(Miller, DefaultDesignIsReasonable) {
  OtaPerformance perf = evalMiller(kTech, MillerDesign{}, {});
  EXPECT_GT(perf.gainDb, 50.0);
  EXPECT_LT(perf.gainDb, 120.0);
  EXPECT_GT(perf.gbwHz, 1e6);
  EXPECT_GT(perf.pmDeg, 0.0);
  EXPECT_LT(perf.pmDeg, 90.0);
}

TEST(Miller, GbwSetByMillerCap) {
  MillerDesign d;
  OtaPerformance a = evalMiller(kTech, d, {});
  d.cc *= 2.0;
  OtaPerformance b = evalMiller(kTech, d, {});
  EXPECT_NEAR(b.gbwHz, a.gbwHz / 2.0, a.gbwHz * 0.01);
}

TEST(Miller, BiggerDriverImprovesPhaseMargin) {
  // The output pole gm8/Cout moves out with driver transconductance.
  MillerDesign d;
  OtaPerformance small = evalMiller(kTech, d, {});
  d.w8 *= 3.0;
  d.i2 *= 2.0;
  OtaPerformance big = evalMiller(kTech, d, {});
  EXPECT_GT(big.pmDeg, small.pmDeg);
}

TEST(Miller, ParasiticsDegradeMargin) {
  MillerDesign d;
  OtaPerformance clean = evalMiller(kTech, d, {});
  MillerParasitics heavy{0.6e-12, 2e-12};
  OtaPerformance loaded = evalMiller(kTech, d, heavy);
  EXPECT_LT(loaded.pmDeg, clean.pmDeg);
  EXPECT_LT(loaded.srVps, clean.srVps);
  EXPECT_NEAR(loaded.gainDb, clean.gainDb, 1e-9);
  // GBW is Cc-set, parasitic-insensitive to first order.
  EXPECT_NEAR(loaded.gbwHz, clean.gbwHz, 1e-9);
}

TEST(Miller, TemplateLegalWithFig6Devices) {
  TemplateLayout layout = generateMillerLayout(kTech, MillerDesign{});
  EXPECT_TRUE(layout.cells.isLegal());
  // P1 P2 N3 N4 P5 P6 P7 N8 CC CL = 10 cells.
  EXPECT_EQ(layout.cells.size(), 10u);
  EXPECT_GT(layout.outNetLen, 0.0);
  EXPECT_GT(layout.foldNetLen, 0.0);
}

TEST(Miller, ExtractionGeometrySensitivity) {
  MillerDesign d;
  d.m8 = 1;
  MillerParasitics flat =
      extractMillerParasitics(kTech, d, generateMillerLayout(kTech, d));
  d.m8 = 4;
  MillerParasitics folded =
      extractMillerParasitics(kTech, d, generateMillerLayout(kTech, d));
  EXPECT_LT(folded.cOut, flat.cOut);  // folded driver: smaller drain junction
}

TEST(Miller, LayoutAwareFlowMeetsSpecs) {
  OtaSpecs specs;
  specs.minGainDb = 70.0;
  specs.minGbwHz = 15e6;
  specs.minPmDeg = 55.0;
  specs.minSrVps = 10e6;
  SizingOptions opt;
  opt.layoutAware = true;
  opt.seed = 5;
  MillerSizingResult r = runMillerSizing(kTech, specs, opt);
  EXPECT_TRUE(r.meetsSpecsExtracted) << "residual " << r.violationExtracted;
  EXPECT_GT(r.evaluations, 100u);
}

TEST(Miller, BlindFlowDegradesPostLayout) {
  OtaSpecs specs;
  specs.minGainDb = 70.0;
  specs.minGbwHz = 15e6;
  specs.minPmDeg = 55.0;
  specs.minSrVps = 10e6;
  SizingOptions opt;
  opt.layoutAware = false;
  opt.seed = 5;
  MillerSizingResult r = runMillerSizing(kTech, specs, opt);
  EXPECT_GE(r.violationExtracted, r.violationSizing);
  EXPECT_LE(r.perfExtracted.pmDeg, r.perfSizing.pmDeg + 1e-9);
}

}  // namespace
}  // namespace als
