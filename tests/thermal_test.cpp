#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "seqpair/sa_placer.h"
#include "thermal/thermal.h"

namespace als {
namespace {

TEST(ThermalField, DecaysMonotonicallyWithDistance) {
  ThermalField field({{0.0, 0.0, 0.1}});
  double prev = field.temperatureAt(1.0, 0.0);
  EXPECT_GT(prev, 0.0);
  for (double r = 5.0; r <= 500.0; r *= 2.0) {
    double t = field.temperatureAt(r, 0.0);
    EXPECT_LT(t, prev) << "r=" << r;
    prev = t;
  }
}

TEST(ThermalField, SuperpositionIsLinearInPower) {
  ThermalField one({{0.0, 0.0, 0.1}});
  ThermalField two({{0.0, 0.0, 0.2}});
  EXPECT_NEAR(two.temperatureAt(20.0, 5.0), 2.0 * one.temperatureAt(20.0, 5.0),
              1e-12);
  ThermalField pairSrc({{0.0, 0.0, 0.1}, {10.0, 0.0, 0.1}});
  EXPECT_NEAR(pairSrc.temperatureAt(30.0, 0.0),
              one.temperatureAt(30.0, 0.0) + one.temperatureAt(20.0, 0.0), 1e-12);
}

TEST(ThermalField, ClampsBeyondDieRadius) {
  ThermalModel model;
  model.dieRadiusUm = 100.0;
  ThermalField field({{0.0, 0.0, 1.0}}, model);
  EXPECT_DOUBLE_EQ(field.temperatureAt(500.0, 0.0), 0.0);
}

TEST(ThermalField, EquidistantPointsSeeEqualTemperature) {
  // The geometric core of the Section II argument.
  ThermalField field({{50.0, 80.0, 0.25}});
  double left = field.temperatureAt(50.0 - 17.0, 42.0);
  double right = field.temperatureAt(50.0 + 17.0, 42.0);
  EXPECT_DOUBLE_EQ(left, right);
}

TEST(ThermalMismatch, SymmetricPlacementWithAxisRadiatorIsExactlyBalanced) {
  // Place the Fig. 1 circuit symmetrically; let the self-symmetric cell A
  // (on the axis) radiate.  Every mirror pair then sees identical
  // temperature: mismatch is exactly zero.
  Circuit c = makeFig1Example();
  SeqPairPlacerOptions opt;
  opt.maxSweeps = 150;
  opt.seed = 3;
  SeqPairPlacerResult r = placeSeqPairSA(c, opt);
  ASSERT_TRUE(r.placement.isLegal());

  std::vector<double> power(c.moduleCount(), 0.0);
  power[2] = 0.2;  // A, self-symmetric -> centered on the axis
  ThermalField field(sourcesFromPlacement(r.placement, power));
  for (const SymmetryGroup& g : c.symmetryGroups()) {
    for (double m : pairTemperatureMismatch(r.placement, g, field)) {
      EXPECT_NEAR(m, 0.0, 1e-9);
    }
  }
}

TEST(ThermalMismatch, OffAxisRadiatorUnbalancesPairs) {
  Circuit c = makeFig1Example();
  SeqPairPlacerOptions opt;
  opt.maxSweeps = 150;
  opt.seed = 3;
  SeqPairPlacerResult r = placeSeqPairSA(c, opt);

  std::vector<double> power(c.moduleCount(), 0.0);
  power[0] = 0.2;  // E is outside the symmetry group: generally off-axis
  ThermalField field(sourcesFromPlacement(r.placement, power));
  // E's center must not be exactly on the group axis for this check.
  Point e2 = r.placement[0].center2x();
  if (e2.x != r.axis2x[0]) {
    EXPECT_GT(worstPairMismatch(r.placement, c.symmetryGroups(), field), 0.0);
  }
}

TEST(ThermalMismatch, RandomPlacementWorseThanSymmetric) {
  Circuit c = makeFig1Example();
  std::vector<double> power(c.moduleCount(), 0.0);
  power[2] = 0.2;

  SeqPairPlacerOptions opt;
  opt.maxSweeps = 150;
  opt.seed = 3;
  SeqPairPlacerResult sym = placeSeqPairSA(c, opt);
  ThermalField symField(sourcesFromPlacement(sym.placement, power));
  double symWorst = worstPairMismatch(sym.placement, c.symmetryGroups(), symField);

  // Random legal (non-symmetric) placements via plain sequence-pair packing.
  Rng rng(17);
  double randomWorstSum = 0.0;
  int trials = 20;
  std::vector<Coord> w, h;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
  }
  for (int t = 0; t < trials; ++t) {
    SequencePair sp = SequencePair::random(c.moduleCount(), rng);
    Placement p = packSequencePair(sp, w, h);
    ThermalField field(sourcesFromPlacement(p, power));
    randomWorstSum += worstPairMismatch(p, c.symmetryGroups(), field);
  }
  EXPECT_LT(symWorst, randomWorstSum / trials);
  EXPECT_NEAR(symWorst, 0.0, 1e-9);
}

}  // namespace
}  // namespace als
