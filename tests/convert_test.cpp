// Property tests for the placement -> encoding converters behind the
// cross-backend seeding seam (seqpair/from_placement.h,
// bstar/from_placement.h): determinism, validity of the produced
// encodings, and the relative-order guarantees their headers state —
// diagonal dominance survives the sequence-pair round trip, and the
// B*-tree reconstruction keeps every parent lexicographically before its
// children in source (x, y, id) order.
#include "bstar/from_placement.h"
#include "seqpair/from_placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "bstar/pack.h"
#include "io/corpus.h"
#include "netlist/generators.h"
#include "seqpair/packer.h"
#include "seqpair/symmetry.h"
#include "util/rng.h"

namespace als {
namespace {

/// Random module footprints in [1, 40] DBU.
void randomDims(std::size_t n, Rng& rng, std::vector<Coord>& w,
                std::vector<Coord>& h) {
  w.resize(n);
  h.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    w[m] = 1 + static_cast<Coord>(rng.index(40));
    h[m] = 1 + static_cast<Coord>(rng.index(40));
  }
}

/// Compacted legal placement: packs a random sequence pair of the dims.
Placement randomPackedPlacement(std::size_t n, Rng& rng,
                                const std::vector<Coord>& w,
                                const std::vector<Coord>& h) {
  SequencePair sp = SequencePair::random(n, rng);
  return packSequencePair(sp, w, h);
}

/// Gappy legal placement: one module per 50x50 grid cell with a random
/// offset (dims are <= 40, so modules never touch).  Exercises the
/// converters' handling of placements no compacted encoding represents
/// verbatim — in particular the B* reconstruction's free-slot fallback.
Placement randomGappyPlacement(std::size_t n, Rng& rng,
                               const std::vector<Coord>& w,
                               const std::vector<Coord>& h) {
  const std::size_t cols = 1 + static_cast<std::size_t>(rng.index(n));
  Placement p(n);
  for (std::size_t m = 0; m < n; ++m) {
    const Coord cellX = static_cast<Coord>(m % cols) * 50;
    const Coord cellY = static_cast<Coord>(m / cols) * 50;
    p[m] = {cellX + static_cast<Coord>(rng.index(static_cast<std::size_t>(
                        50 - w[m]))),
            cellY + static_cast<Coord>(rng.index(static_cast<std::size_t>(
                        50 - h[m]))),
            w[m], h[m]};
  }
  return p;
}

/// Checks the documented dominance guarantee of the sequence-pair
/// converter on every module pair of `source`: center-diagonal dominance
/// in the source survives as a left-of / below relation in the pair, hence
/// as a coordinate separation in the decoded packing.
void expectDiagonalDominance(const Placement& source, const SequencePair& sp,
                             const Placement& decoded) {
  const std::size_t n = source.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Point ci = source[i].center2x();
      const Point cj = source[j].center2x();
      const Coord dx = cj.x - ci.x;
      const Coord dy = cj.y - ci.y;
      if (dx > std::abs(dy)) {
        EXPECT_TRUE(sp.leftOf(i, j)) << i << " vs " << j;
        EXPECT_LE(decoded[i].xhi(), decoded[j].x) << i << " vs " << j;
      } else if (dy > std::abs(dx)) {
        EXPECT_TRUE(sp.below(i, j)) << i << " vs " << j;
        EXPECT_LE(decoded[i].yhi(), decoded[j].y) << i << " vs " << j;
      }
    }
  }
}

/// Checks every structural invariant the B* reconstruction documents:
/// valid tree, items a permutation, and each parent lexicographically
/// before its children in source (x, y, id) order.
void expectBStarInvariants(const Placement& source, const BStarTree& tree) {
  const std::size_t n = source.size();
  ASSERT_EQ(tree.size(), n);
  EXPECT_TRUE(tree.isValid());
  std::vector<std::size_t> items(n);
  for (std::size_t v = 0; v < n; ++v) items[v] = tree.item(v);
  std::sort(items.begin(), items.end());
  for (std::size_t m = 0; m < n; ++m) {
    EXPECT_EQ(items[m], m) << "items are not a permutation";
  }
  auto key = [&](std::size_t v) {
    const Rect& r = source[tree.item(v)];
    return std::tuple<Coord, Coord, std::size_t>(r.x, r.y, tree.item(v));
  };
  for (std::size_t v = 0; v < n; ++v) {
    if (v == tree.root()) {
      EXPECT_EQ(tree.parent(v), BStarTree::npos);
      continue;
    }
    EXPECT_LT(key(tree.parent(v)), key(v)) << "node " << v;
  }
}

void expectSameTree(const BStarTree& a, const BStarTree& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.root(), b.root());
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a.item(v), b.item(v)) << "node " << v;
    EXPECT_EQ(a.left(v), b.left(v)) << "node " << v;
    EXPECT_EQ(a.right(v), b.right(v)) << "node " << v;
  }
}

TEST(Convert, SequencePairPreservesDiagonalDominance) {
  Rng rng(7);
  SeqPairFromPlacementScratch scratch;  // shared across all conversions:
  SequencePair sp, again;               // warm reuse must not change results
  std::vector<Coord> w, h;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.index(63);  // 2..64
    randomDims(n, rng, w, h);
    const bool gappy = trial % 2 == 1;
    const Placement source = gappy ? randomGappyPlacement(n, rng, w, h)
                                   : randomPackedPlacement(n, rng, w, h);
    ASSERT_TRUE(source.isLegal());

    sequencePairFromPlacement(source, scratch, sp);
    ASSERT_TRUE(sp.isValid()) << "trial " << trial;

    // Deterministic: a second conversion (warm scratch) and the allocating
    // overload both reproduce the pair exactly.
    sequencePairFromPlacement(source, scratch, again);
    EXPECT_EQ(sp, again) << "trial " << trial;
    EXPECT_EQ(sp, sequencePairFromPlacement(source)) << "trial " << trial;

    const Placement decoded = packSequencePair(sp, w, h);
    EXPECT_TRUE(decoded.isLegal()) << "trial " << trial;
    expectDiagonalDominance(source, sp, decoded);
  }
}

TEST(Convert, SequencePairAtCorpusScale) {
  Rng rng(11);
  SeqPairFromPlacementScratch scratch;
  SequencePair sp, again;
  for (CorpusCircuit which : {CorpusCircuit::Ami33, CorpusCircuit::N100}) {
    const Circuit c = loadCorpusCircuit(which);
    const std::size_t n = c.moduleCount();
    std::vector<Coord> w(n), h(n);
    for (std::size_t m = 0; m < n; ++m) {
      w[m] = c.module(m).w;
      h[m] = c.module(m).h;
    }
    const Placement source = randomPackedPlacement(n, rng, w, h);
    sequencePairFromPlacement(source, scratch, sp);
    ASSERT_TRUE(sp.isValid()) << corpusName(which);
    sequencePairFromPlacement(source, scratch, again);
    EXPECT_EQ(sp, again) << corpusName(which);
    const Placement decoded = packSequencePair(sp, w, h);
    EXPECT_TRUE(decoded.isLegal()) << corpusName(which);
    expectDiagonalDominance(source, sp, decoded);
  }
}

// A converted seed must be adoptable by the symmetry-constrained seqpair
// annealer: the repair pass restores the symmetric-feasible invariant on
// the converted pair (it permutes only group members, so the seed's global
// structure survives).
TEST(Convert, ConvertedSeedAdmitsSymmetricRepair) {
  const Circuit c = makeTableICircuit(TableICircuit::ComparatorV2);
  ASSERT_FALSE(c.symmetryGroups().empty());
  const std::size_t n = c.moduleCount();
  std::vector<Coord> w(n), h(n);
  for (std::size_t m = 0; m < n; ++m) {
    w[m] = c.module(m).w;
    h[m] = c.module(m).h;
  }
  Rng rng(3);
  const SymmetryGroup merged = mergedGroup(c.symmetryGroups());
  SeqPairFromPlacementScratch scratch;
  SymFeasibleScratch symScratch;
  SequencePair sp;
  for (int trial = 0; trial < 8; ++trial) {
    const Placement source = randomPackedPlacement(n, rng, w, h);
    sequencePairFromPlacement(source, scratch, sp);
    makeSymmetricFeasibleInPlace(sp, merged, symScratch);
    EXPECT_TRUE(sp.isValid()) << "trial " << trial;
    EXPECT_TRUE(isSymmetricFeasible(sp, merged)) << "trial " << trial;
    EXPECT_TRUE(packSequencePair(sp, w, h).isLegal()) << "trial " << trial;
  }
}

TEST(Convert, BStarTopologyFollowsSourceOrder) {
  Rng rng(13);
  BStarFromPlacementScratch scratch;
  BStarTree tree, again;
  std::vector<Coord> w, h;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.index(63);  // 2..64
    randomDims(n, rng, w, h);
    const bool gappy = trial % 2 == 1;
    const Placement source = gappy ? randomGappyPlacement(n, rng, w, h)
                                   : randomPackedPlacement(n, rng, w, h);
    ASSERT_TRUE(source.isLegal());

    bstarFromPlacement(source, scratch, tree);
    expectBStarInvariants(source, tree);

    bstarFromPlacement(source, scratch, again);
    expectSameTree(tree, again);
    expectSameTree(tree, bstarFromPlacement(source));

    // The converted tree is a legal seed: it decodes to a legal compacted
    // placement with every module keeping its footprint.
    const Placement decoded = packBStar(tree, w, h);
    ASSERT_EQ(decoded.size(), n);
    EXPECT_TRUE(decoded.isLegal()) << "trial " << trial;
    for (std::size_t m = 0; m < n; ++m) {
      EXPECT_EQ(decoded[m].w, w[m]) << "trial " << trial;
      EXPECT_EQ(decoded[m].h, h[m]) << "trial " << trial;
    }
  }
}

TEST(Convert, BStarAtCorpusScale) {
  Rng rng(17);
  BStarFromPlacementScratch scratch;
  BStarTree tree, again;
  for (CorpusCircuit which : {CorpusCircuit::Ami33, CorpusCircuit::N100}) {
    const Circuit c = loadCorpusCircuit(which);
    const std::size_t n = c.moduleCount();
    std::vector<Coord> w(n), h(n);
    for (std::size_t m = 0; m < n; ++m) {
      w[m] = c.module(m).w;
      h[m] = c.module(m).h;
    }
    const Placement source = randomPackedPlacement(n, rng, w, h);
    bstarFromPlacement(source, scratch, tree);
    expectBStarInvariants(source, tree);
    bstarFromPlacement(source, scratch, again);
    expectSameTree(tree, again);
    EXPECT_TRUE(packBStar(tree, w, h).isLegal()) << corpusName(which);
  }
}

}  // namespace
}  // namespace als
