// Runtime-layer tests: the deterministic ThreadPool and the restart
// portfolio's concurrency contract — for a fixed (seed, budget, restarts)
// configuration, `numThreads = 1` and `numThreads = 8` must produce
// bit-identical EngineResults on every backend.  ci.sh runs this suite
// under ASan/UBSan (twice) and TSan, so the pool's synchronization and the
// backends' statelessness are both exercised under instrumentation.
#include "runtime/portfolio.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "anneal/annealer.h"
#include "io/corpus.h"
#include "netlist/generators.h"
#include "runtime/tempering.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace als {
namespace {

void expectBitIdentical(const EngineResult& a, const EngineResult& b,
                        std::string_view label) {
  EXPECT_EQ(a.cost, b.cost) << label;
  EXPECT_EQ(a.area, b.area) << label;
  EXPECT_EQ(a.hpwl, b.hpwl) << label;
  EXPECT_EQ(a.movesTried, b.movesTried) << label;
  EXPECT_EQ(a.sweeps, b.sweeps) << label;
  EXPECT_EQ(a.restartsRun, b.restartsRun) << label;
  EXPECT_EQ(a.bestRestart, b.bestRestart) << label;
  EXPECT_EQ(a.bestSeed, b.bestSeed) << label;
  ASSERT_EQ(a.placement.size(), b.placement.size()) << label;
  for (std::size_t m = 0; m < a.placement.size(); ++m) {
    EXPECT_EQ(a.placement[m], b.placement[m]) << label << " module " << m;
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::vector<std::atomic<int>> hits(512);
  pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // The pool is reusable: a second fork-join sees fresh state.
  pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 2) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1u);
  std::size_t sum = 0;  // no synchronization: everything runs on this thread
  pool.parallelFor(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ZeroCountIsANoop) {
  ThreadPool pool(3);
  pool.parallelFor(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, PropagatesTheSmallestFailingIndex) {
  ThreadPool pool(4);
  auto fail = [](std::size_t i) {
    if (i == 97 || i == 11 || i == 200) {
      throw std::runtime_error(std::to_string(i));
    }
  };
  try {
    pool.parallelFor(256, fail);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "11");
  }
  // The pool survives a failed job.
  std::atomic<int> count{0};
  pool.parallelFor(32, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(RestartPlan, SplitsSeedsAndBudgetsDeterministically) {
  EngineOptions opt;
  opt.seed = 5;
  opt.maxSweeps = 10;
  opt.numRestarts = 4;
  std::vector<RestartSlice> plan = makeRestartPlan(opt);
  ASSERT_EQ(plan.size(), 4u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].index, i);
    EXPECT_EQ(plan[i].seed, portfolioSeedAt(5, i));
    total += plan[i].maxSweeps;
    // Remainder-first split: slices differ by at most one sweep.
    EXPECT_GE(plan[i].maxSweeps, 10u / 4u);
    EXPECT_LE(plan[i].maxSweeps, 10u / 4u + 1u);
  }
  EXPECT_EQ(total, 10u);
  // Slice 0 anneals from the base seed itself; later slices are mixed and
  // their seeds (and LCG successor streams) must not collide.
  EXPECT_EQ(plan[0].seed, 5u);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_NE(plan[i].seed, plan[i - 1].seed);
    EXPECT_NE(plan[i].seed, nextRestartSeed(plan[i - 1].seed));
  }
  // numRestarts == 0 degrades to a single full-budget restart.
  opt.numRestarts = 0;
  plan = makeRestartPlan(opt);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].seed, 5u);
  EXPECT_EQ(plan[0].maxSweeps, 10u);
}

TEST(RestartPlan, CapsSliceCountAtTheSweepBudget) {
  // A zero slice budget would mean "uncapped", so more restarts than sweeps
  // must degrade to one-sweep slices, never to freeze-terminated runs.
  EngineOptions opt;
  opt.seed = 3;
  opt.maxSweeps = 4;
  opt.numRestarts = 8;
  std::vector<RestartSlice> plan = makeRestartPlan(opt);
  ASSERT_EQ(plan.size(), 4u);
  for (const RestartSlice& slice : plan) EXPECT_EQ(slice.maxSweeps, 1u);
  // An uncapped portfolio keeps all its restarts (each freeze-terminated).
  opt.maxSweeps = 0;
  plan = makeRestartPlan(opt);
  ASSERT_EQ(plan.size(), 8u);
  for (const RestartSlice& slice : plan) EXPECT_EQ(slice.maxSweeps, 0u);
}

TEST(Portfolio, OversizedRestartCountStillHonorsTheBudgetExactly) {
  Circuit c = makeFig1Example();
  EngineOptions opt;
  opt.maxSweeps = 4;
  opt.numRestarts = 8;
  opt.seed = 13;
  opt.numThreads = 2;
  PortfolioRunner runner;
  EngineResult r = runner.run(c, EngineBackend::SeqPair, opt);
  EXPECT_EQ(r.sweeps, 4u);
  EXPECT_EQ(r.restartsRun, 4u);
}

TEST(Portfolio, RaceRejectsAnEmptyBackendSpan) {
  Circuit c = makeFig1Example();
  PortfolioRunner runner;
  EXPECT_THROW(runner.race(c, {}, EngineOptions{}), std::invalid_argument);
}

// The tentpole contract: every backend's portfolio is bit-identical between
// a 1-thread and an 8-thread run of the same plan.
TEST(Portfolio, ThreadCountDoesNotChangeAnyBackendsResult) {
  Circuit c = makeTableICircuit(TableICircuit::ComparatorV2);
  EngineOptions opt;
  opt.maxSweeps = 120;
  opt.numRestarts = 4;
  opt.seed = 17;
  PortfolioRunner runner;
  for (EngineBackend backend : allBackends()) {
    opt.numThreads = 1;
    EngineResult serial = runner.run(c, backend, opt);
    opt.numThreads = 8;
    EngineResult parallel = runner.run(c, backend, opt);
    expectBitIdentical(serial, parallel, backendName(backend));
    EXPECT_EQ(serial.restartsRun, 4u) << backendName(backend);
    // Slice budgets are exhausted exactly, so aggregates hit the total.
    EXPECT_EQ(serial.sweeps, 120u) << backendName(backend);
    EXPECT_LT(serial.bestRestart, 4u) << backendName(backend);
    EXPECT_EQ(serial.bestSeed, portfolioSeedAt(17, serial.bestRestart))
        << backendName(backend);
  }
}

TEST(Portfolio, SingleRestartMatchesAPlainEngineCall) {
  Circuit c = makeTableICircuit(TableICircuit::MillerV2);
  EngineOptions opt;
  opt.maxSweeps = 90;
  opt.seed = 2;
  opt.numRestarts = 1;
  opt.numThreads = 4;
  PortfolioRunner runner;
  for (EngineBackend backend : allBackends()) {
    EngineResult direct = makeEngine(backend)->place(c, opt);
    EngineResult portfolio = runner.run(c, backend, opt);
    // seconds is wall clock and may differ; everything else is identical.
    expectBitIdentical(direct, portfolio, backendName(backend));
  }
}

TEST(Portfolio, RaceIsThreadCountInvariantAndOrderedByCostSeedBackend) {
  Circuit c = makeTableICircuit(TableICircuit::ComparatorV2);
  EngineOptions opt;
  opt.maxSweeps = 120;
  opt.numRestarts = 2;
  opt.seed = 23;
  PortfolioRunner runner;
  opt.numThreads = 1;
  PortfolioRunner::RaceOutcome serial = runner.race(c, allBackends(), opt);
  opt.numThreads = 8;
  PortfolioRunner::RaceOutcome parallel = runner.race(c, allBackends(), opt);
  EXPECT_EQ(serial.backend, parallel.backend);
  expectBitIdentical(serial.result, parallel.result, "race");
  // The winner is the (cost, seed, backend) minimum of the per-backend runs.
  EngineResult winner = runner.run(c, serial.backend, opt);
  EXPECT_EQ(winner.cost, serial.result.cost);
  for (EngineBackend backend : allBackends()) {
    EXPECT_LE(serial.result.cost, runner.run(c, backend, opt).cost)
        << backendName(backend);
  }
}

TEST(Portfolio, SharedPoolModeMatchesPoolPerRun) {
  Circuit c = makeTableICircuit(TableICircuit::MillerV2);
  EngineOptions opt;
  opt.maxSweeps = 80;
  opt.numRestarts = 3;
  opt.seed = 7;
  opt.numThreads = 5;
  ThreadPool pool(3);  // deliberately a different size than numThreads
  PortfolioRunner shared(&pool);
  PortfolioRunner perRun;
  EngineResult a = shared.run(c, EngineBackend::SeqPair, opt);
  EngineResult b = perRun.run(c, EngineBackend::SeqPair, opt);
  expectBitIdentical(a, b, "shared pool");
}

TEST(BatchPlacer, MatchesPerCircuitPortfolios) {
  std::vector<Circuit> circuits;
  circuits.push_back(makeTableICircuit(TableICircuit::ComparatorV2));
  circuits.push_back(makeTableICircuit(TableICircuit::MillerV2));
  circuits.push_back(makeFig1Example());
  EngineOptions opt;
  opt.maxSweeps = 60;
  opt.numRestarts = 2;
  opt.seed = 41;
  opt.numThreads = 8;
  BatchPlacer batch;
  std::vector<EngineResult> results =
      batch.placeAll(circuits, EngineBackend::SeqPair, opt);
  ASSERT_EQ(results.size(), circuits.size());
  PortfolioRunner runner;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    EngineResult expected = runner.run(circuits[i], EngineBackend::SeqPair, opt);
    expectBitIdentical(expected, results[i],
                       "batch circuit " + std::to_string(i));
  }
}

void expectSameReplicas(const TemperingOutcome& a, const TemperingOutcome& b,
                        std::string_view label) {
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.exchangesAccepted, b.exchangesAccepted) << label;
  EXPECT_EQ(a.reseeds, b.reseeds) << label;
  ASSERT_EQ(a.replicas.size(), b.replicas.size()) << label;
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    const TemperingReplica& ra = a.replicas[i];
    const TemperingReplica& rb = b.replicas[i];
    EXPECT_EQ(ra.seed, rb.seed) << label << " replica " << i;
    EXPECT_EQ(ra.tempScale, rb.tempScale) << label << " replica " << i;
    EXPECT_EQ(ra.cost, rb.cost) << label << " replica " << i;
    EXPECT_EQ(ra.sweeps, rb.sweeps) << label << " replica " << i;
    EXPECT_EQ(ra.movesTried, rb.movesTried) << label << " replica " << i;
    EXPECT_EQ(ra.exchanges, rb.exchanges) << label << " replica " << i;
    EXPECT_EQ(ra.reseeds, rb.reseeds) << label << " replica " << i;
  }
}

// The tempering tentpole contract: K coupled replicas exchanging every
// `exchangeInterval` sweeps produce bit-identical results — down to every
// per-replica trajectory — at any thread count, on every backend.
TEST(Tempering, ThreadCountDoesNotChangeAnyBackendsResult) {
  Circuit c = makeTableICircuit(TableICircuit::ComparatorV2);
  EngineOptions opt;
  opt.maxSweeps = 120;
  opt.numRestarts = 4;
  opt.seed = 17;
  opt.tempering = true;
  opt.exchangeInterval = 2;
  opt.ladderRatio = 1.5;
  TemperingRunner runner;
  std::size_t totalExchanges = 0;
  for (EngineBackend backend : allBackends()) {
    opt.numThreads = 1;
    TemperingOutcome serial = runner.run(c, backend, opt);
    opt.numThreads = 2;
    TemperingOutcome two = runner.run(c, backend, opt);
    opt.numThreads = 8;
    TemperingOutcome eight = runner.run(c, backend, opt);
    expectBitIdentical(serial.result, two.result, backendName(backend));
    expectBitIdentical(serial.result, eight.result, backendName(backend));
    expectSameReplicas(serial, two, backendName(backend));
    expectSameReplicas(serial, eight, backendName(backend));
    EXPECT_EQ(serial.result.restartsRun, 4u) << backendName(backend);
    EXPECT_EQ(serial.result.sweeps, 120u) << backendName(backend);
    EXPECT_GT(serial.rounds, 0u) << backendName(backend);
    totalExchanges += serial.exchangesAccepted;
  }
  // The ladder actually couples: across four backends and ~15 rounds each,
  // at least one swap must have been accepted.
  EXPECT_GT(totalExchanges, 0u);
}

// With one replica there is no ladder and nothing to exchange, so a
// tempering run chopped into rounds must equal the plain one-shot engine
// call bit for bit — this pins the run/pause resumability seam itself.
TEST(Tempering, SingleReplicaMatchesAPlainEngineCall) {
  Circuit c = makeTableICircuit(TableICircuit::MillerV2);
  EngineOptions opt;
  opt.maxSweeps = 90;
  opt.seed = 2;
  opt.numRestarts = 1;
  opt.numThreads = 2;
  opt.tempering = true;
  opt.exchangeInterval = 4;  // pauses every 4 sweeps; must not matter
  opt.ladderRatio = 2.0;     // rung 0 always scales by 1.0
  TemperingRunner runner;
  EngineOptions plain = opt;
  plain.tempering = false;
  for (EngineBackend backend : allBackends()) {
    EngineResult direct = makeEngine(backend)->place(c, plain);
    TemperingOutcome tempered = runner.run(c, backend, opt);
    expectBitIdentical(direct, tempered.result, backendName(backend));
  }
}

// The differential degeneration contract: exchanges disabled and a flat
// ladder reproduce the independent-restart portfolio exactly, bit for bit.
// Both knobs must be neutral — a flat ladder with exchanges on still swaps
// (P = 1 when the temperatures are equal).
TEST(Tempering, DisabledExchangeDegeneratesToIndependentRestarts) {
  EngineOptions opt;
  opt.maxSweeps = 48;
  opt.numRestarts = 3;
  opt.seed = 11;
  opt.numThreads = 4;
  opt.tempering = true;
  opt.exchangeInterval = 0;
  opt.ladderRatio = 1.0;
  EngineOptions plain = opt;
  plain.tempering = false;
  TemperingRunner tempering;
  PortfolioRunner portfolio;
  for (CorpusCircuit which : {CorpusCircuit::Apte, CorpusCircuit::Ami33}) {
    Circuit c = loadCorpusCircuit(which);
    for (EngineBackend backend : allBackends()) {
      TemperingOutcome t = tempering.run(c, backend, opt);
      EngineResult p = portfolio.run(c, backend, plain);
      expectBitIdentical(t.result, p,
                         std::string(corpusName(which)) + "/" +
                             std::string(backendName(backend)));
      EXPECT_EQ(t.exchangesAccepted, 0u);
      EXPECT_EQ(t.reseeds, 0u);
      // options.tempering routes PortfolioRunner through the same path.
      EngineResult routed = portfolio.run(c, backend, opt);
      expectBitIdentical(t.result, routed,
                         std::string(corpusName(which)) + " routed");
    }
  }
  // GSRC scale, cheap budget: the degeneration must hold where the
  // incremental decode machinery (partial repack, journaled LCS) is active.
  Circuit n100 = loadCorpusCircuit(CorpusCircuit::N100);
  opt.maxSweeps = 12;
  plain.maxSweeps = 12;
  for (EngineBackend backend :
       {EngineBackend::FlatBStar, EngineBackend::SeqPair}) {
    TemperingOutcome t = tempering.run(n100, backend, opt);
    EngineResult p = portfolio.run(n100, backend, plain);
    expectBitIdentical(t.result, p,
                       "n100/" + std::string(backendName(backend)));
  }
}

// The exchange schedule is a pure function of (round, salt, seeds, costs,
// temps, active): identical inputs replay identical plans, and the
// structural rules (parity pairing, flat-ladder P = 1, finished replicas
// never swap) hold on random inputs.
TEST(Tempering, ExchangePlanIsAPureFunctionOfItsInputs) {
  Rng rng(99);
  for (int trial = 0; trial < 16; ++trial) {
    const std::size_t k = 2 + rng.index(6);
    std::vector<std::uint64_t> seeds(k);
    std::vector<double> costs(k), temps(k);
    std::vector<std::uint8_t> active(k);
    for (std::size_t i = 0; i < k; ++i) {
      seeds[i] = rng.index(1u << 20);
      costs[i] = rng.uniform() * 100.0;
      temps[i] = 0.5 + rng.uniform() * 10.0;
      active[i] = rng.coin() ? 1 : 0;
    }
    const std::uint64_t round = rng.index(64);
    const std::uint64_t salt = rng.index(4);
    std::vector<std::size_t> planA, planB;
    planExchanges(round, salt, seeds, costs, temps, active, planA);
    planExchanges(round, salt, seeds, costs, temps, active, planB);
    EXPECT_EQ(planA, planB) << "trial " << trial;
    for (std::size_t lo : planA) {
      EXPECT_EQ(lo % 2, round % 2) << "parity, trial " << trial;
      EXPECT_LT(lo + 1, k);
      EXPECT_NE(active[lo], 0) << "trial " << trial;
      EXPECT_NE(active[lo + 1], 0) << "trial " << trial;
    }
    // A flat ladder accepts every considered live pair (P = 1): this is
    // exactly why degeneration needs exchanges off, not just ratio 1.0.
    std::fill(temps.begin(), temps.end(), 3.0);
    std::vector<std::size_t> flat;
    planExchanges(round, salt, seeds, costs, temps, active, flat);
    for (std::size_t i = round % 2; i + 1 < k; i += 2) {
      const bool live = active[i] != 0 && active[i + 1] != 0;
      const bool planned =
          std::find(flat.begin(), flat.end(), i) != flat.end();
      EXPECT_EQ(planned, live) << "flat ladder, trial " << trial;
    }
    // All-finished rounds plan nothing.
    std::fill(active.begin(), active.end(), std::uint8_t{0});
    std::vector<std::size_t> none;
    planExchanges(round, salt, seeds, costs, temps, active, none);
    EXPECT_TRUE(none.empty());
  }
  // The schedule seed is order-sensitive in the seeds and varies by round.
  const std::vector<std::uint64_t> ab = {1, 2};
  const std::vector<std::uint64_t> ba = {2, 1};
  EXPECT_NE(exchangeScheduleSeed(0, ab), exchangeScheduleSeed(0, ba));
  EXPECT_NE(exchangeScheduleSeed(0, ab), exchangeScheduleSeed(1, ab));
}

// Cross-backend tempering race: thread-count invariant (including the
// cross-seeding decisions) and consistent with the PortfolioRunner routing.
TEST(Tempering, RaceWithCrossSeedingIsThreadCountInvariant) {
  Circuit c = makeTableICircuit(TableICircuit::ComparatorV2);
  EngineOptions opt;
  opt.maxSweeps = 120;
  opt.numRestarts = 2;
  opt.seed = 23;
  opt.tempering = true;
  opt.exchangeInterval = 2;
  opt.ladderRatio = 1.5;
  opt.crossSeed = true;
  TemperingRunner runner;
  opt.numThreads = 1;
  TemperingOutcome serial = runner.race(c, allBackends(), opt);
  opt.numThreads = 8;
  TemperingOutcome parallel = runner.race(c, allBackends(), opt);
  EXPECT_EQ(serial.backend, parallel.backend);
  expectBitIdentical(serial.result, parallel.result, "tempering race");
  expectSameReplicas(serial, parallel, "tempering race");
  // The coupling is real on this configuration: ladders swap and lagging
  // backends adopt the leader's placement through the converters.
  EXPECT_GT(serial.exchangesAccepted, 0u);
  EXPECT_GT(serial.reseeds, 0u);
  PortfolioRunner routed;
  PortfolioRunner::RaceOutcome viaPortfolio = routed.race(c, allBackends(), opt);
  EXPECT_EQ(viaPortfolio.backend, serial.backend);
  expectBitIdentical(viaPortfolio.result, serial.result, "routed race");
}

// Stress for the sanitizer configs (ASan/UBSan catch lifetime bugs, TSan the
// synchronization): many short fork-joins plus a full multi-backend race on
// an oversubscribed pool.
TEST(Runtime, StressUnderSanitizers) {
  ThreadPool pool(8);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallelFor(64, [&](std::size_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), 50u * 2016u);

  Circuit c = makeSynthetic(
      {.name = "stress", .moduleCount = 12, .seed = 3, .symmetricFraction = 0.5});
  EngineOptions opt;
  opt.maxSweeps = 48;
  opt.numRestarts = 8;
  opt.seed = 29;
  PortfolioRunner runner(&pool);
  PortfolioRunner::RaceOutcome a = runner.race(c, allBackends(), opt);
  PortfolioRunner::RaceOutcome b = runner.race(c, allBackends(), opt);
  EXPECT_EQ(a.backend, b.backend);
  expectBitIdentical(a.result, b.result, "stress race");
}

}  // namespace
}  // namespace als
