// Runtime-layer tests: the deterministic ThreadPool and the restart
// portfolio's concurrency contract — for a fixed (seed, budget, restarts)
// configuration, `numThreads = 1` and `numThreads = 8` must produce
// bit-identical EngineResults on every backend.  ci.sh runs this suite
// under ASan/UBSan (twice) and TSan, so the pool's synchronization and the
// backends' statelessness are both exercised under instrumentation.
#include "runtime/portfolio.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "anneal/annealer.h"
#include "netlist/generators.h"
#include "runtime/thread_pool.h"

namespace als {
namespace {

void expectBitIdentical(const EngineResult& a, const EngineResult& b,
                        std::string_view label) {
  EXPECT_EQ(a.cost, b.cost) << label;
  EXPECT_EQ(a.area, b.area) << label;
  EXPECT_EQ(a.hpwl, b.hpwl) << label;
  EXPECT_EQ(a.movesTried, b.movesTried) << label;
  EXPECT_EQ(a.sweeps, b.sweeps) << label;
  EXPECT_EQ(a.restartsRun, b.restartsRun) << label;
  EXPECT_EQ(a.bestRestart, b.bestRestart) << label;
  EXPECT_EQ(a.bestSeed, b.bestSeed) << label;
  ASSERT_EQ(a.placement.size(), b.placement.size()) << label;
  for (std::size_t m = 0; m < a.placement.size(); ++m) {
    EXPECT_EQ(a.placement[m], b.placement[m]) << label << " module " << m;
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::vector<std::atomic<int>> hits(512);
  pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // The pool is reusable: a second fork-join sees fresh state.
  pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 2) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1u);
  std::size_t sum = 0;  // no synchronization: everything runs on this thread
  pool.parallelFor(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ZeroCountIsANoop) {
  ThreadPool pool(3);
  pool.parallelFor(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, PropagatesTheSmallestFailingIndex) {
  ThreadPool pool(4);
  auto fail = [](std::size_t i) {
    if (i == 97 || i == 11 || i == 200) {
      throw std::runtime_error(std::to_string(i));
    }
  };
  try {
    pool.parallelFor(256, fail);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "11");
  }
  // The pool survives a failed job.
  std::atomic<int> count{0};
  pool.parallelFor(32, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(RestartPlan, SplitsSeedsAndBudgetsDeterministically) {
  EngineOptions opt;
  opt.seed = 5;
  opt.maxSweeps = 10;
  opt.numRestarts = 4;
  std::vector<RestartSlice> plan = makeRestartPlan(opt);
  ASSERT_EQ(plan.size(), 4u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].index, i);
    EXPECT_EQ(plan[i].seed, portfolioSeedAt(5, i));
    total += plan[i].maxSweeps;
    // Remainder-first split: slices differ by at most one sweep.
    EXPECT_GE(plan[i].maxSweeps, 10u / 4u);
    EXPECT_LE(plan[i].maxSweeps, 10u / 4u + 1u);
  }
  EXPECT_EQ(total, 10u);
  // Slice 0 anneals from the base seed itself; later slices are mixed and
  // their seeds (and LCG successor streams) must not collide.
  EXPECT_EQ(plan[0].seed, 5u);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_NE(plan[i].seed, plan[i - 1].seed);
    EXPECT_NE(plan[i].seed, nextRestartSeed(plan[i - 1].seed));
  }
  // numRestarts == 0 degrades to a single full-budget restart.
  opt.numRestarts = 0;
  plan = makeRestartPlan(opt);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].seed, 5u);
  EXPECT_EQ(plan[0].maxSweeps, 10u);
}

TEST(RestartPlan, CapsSliceCountAtTheSweepBudget) {
  // A zero slice budget would mean "uncapped", so more restarts than sweeps
  // must degrade to one-sweep slices, never to freeze-terminated runs.
  EngineOptions opt;
  opt.seed = 3;
  opt.maxSweeps = 4;
  opt.numRestarts = 8;
  std::vector<RestartSlice> plan = makeRestartPlan(opt);
  ASSERT_EQ(plan.size(), 4u);
  for (const RestartSlice& slice : plan) EXPECT_EQ(slice.maxSweeps, 1u);
  // An uncapped portfolio keeps all its restarts (each freeze-terminated).
  opt.maxSweeps = 0;
  plan = makeRestartPlan(opt);
  ASSERT_EQ(plan.size(), 8u);
  for (const RestartSlice& slice : plan) EXPECT_EQ(slice.maxSweeps, 0u);
}

TEST(Portfolio, OversizedRestartCountStillHonorsTheBudgetExactly) {
  Circuit c = makeFig1Example();
  EngineOptions opt;
  opt.maxSweeps = 4;
  opt.numRestarts = 8;
  opt.seed = 13;
  opt.numThreads = 2;
  PortfolioRunner runner;
  EngineResult r = runner.run(c, EngineBackend::SeqPair, opt);
  EXPECT_EQ(r.sweeps, 4u);
  EXPECT_EQ(r.restartsRun, 4u);
}

TEST(Portfolio, RaceRejectsAnEmptyBackendSpan) {
  Circuit c = makeFig1Example();
  PortfolioRunner runner;
  EXPECT_THROW(runner.race(c, {}, EngineOptions{}), std::invalid_argument);
}

// The tentpole contract: every backend's portfolio is bit-identical between
// a 1-thread and an 8-thread run of the same plan.
TEST(Portfolio, ThreadCountDoesNotChangeAnyBackendsResult) {
  Circuit c = makeTableICircuit(TableICircuit::ComparatorV2);
  EngineOptions opt;
  opt.maxSweeps = 120;
  opt.numRestarts = 4;
  opt.seed = 17;
  PortfolioRunner runner;
  for (EngineBackend backend : allBackends()) {
    opt.numThreads = 1;
    EngineResult serial = runner.run(c, backend, opt);
    opt.numThreads = 8;
    EngineResult parallel = runner.run(c, backend, opt);
    expectBitIdentical(serial, parallel, backendName(backend));
    EXPECT_EQ(serial.restartsRun, 4u) << backendName(backend);
    // Slice budgets are exhausted exactly, so aggregates hit the total.
    EXPECT_EQ(serial.sweeps, 120u) << backendName(backend);
    EXPECT_LT(serial.bestRestart, 4u) << backendName(backend);
    EXPECT_EQ(serial.bestSeed, portfolioSeedAt(17, serial.bestRestart))
        << backendName(backend);
  }
}

TEST(Portfolio, SingleRestartMatchesAPlainEngineCall) {
  Circuit c = makeTableICircuit(TableICircuit::MillerV2);
  EngineOptions opt;
  opt.maxSweeps = 90;
  opt.seed = 2;
  opt.numRestarts = 1;
  opt.numThreads = 4;
  PortfolioRunner runner;
  for (EngineBackend backend : allBackends()) {
    EngineResult direct = makeEngine(backend)->place(c, opt);
    EngineResult portfolio = runner.run(c, backend, opt);
    // seconds is wall clock and may differ; everything else is identical.
    expectBitIdentical(direct, portfolio, backendName(backend));
  }
}

TEST(Portfolio, RaceIsThreadCountInvariantAndOrderedByCostSeedBackend) {
  Circuit c = makeTableICircuit(TableICircuit::ComparatorV2);
  EngineOptions opt;
  opt.maxSweeps = 120;
  opt.numRestarts = 2;
  opt.seed = 23;
  PortfolioRunner runner;
  opt.numThreads = 1;
  PortfolioRunner::RaceOutcome serial = runner.race(c, allBackends(), opt);
  opt.numThreads = 8;
  PortfolioRunner::RaceOutcome parallel = runner.race(c, allBackends(), opt);
  EXPECT_EQ(serial.backend, parallel.backend);
  expectBitIdentical(serial.result, parallel.result, "race");
  // The winner is the (cost, seed, backend) minimum of the per-backend runs.
  EngineResult winner = runner.run(c, serial.backend, opt);
  EXPECT_EQ(winner.cost, serial.result.cost);
  for (EngineBackend backend : allBackends()) {
    EXPECT_LE(serial.result.cost, runner.run(c, backend, opt).cost)
        << backendName(backend);
  }
}

TEST(Portfolio, SharedPoolModeMatchesPoolPerRun) {
  Circuit c = makeTableICircuit(TableICircuit::MillerV2);
  EngineOptions opt;
  opt.maxSweeps = 80;
  opt.numRestarts = 3;
  opt.seed = 7;
  opt.numThreads = 5;
  ThreadPool pool(3);  // deliberately a different size than numThreads
  PortfolioRunner shared(&pool);
  PortfolioRunner perRun;
  EngineResult a = shared.run(c, EngineBackend::SeqPair, opt);
  EngineResult b = perRun.run(c, EngineBackend::SeqPair, opt);
  expectBitIdentical(a, b, "shared pool");
}

TEST(BatchPlacer, MatchesPerCircuitPortfolios) {
  std::vector<Circuit> circuits;
  circuits.push_back(makeTableICircuit(TableICircuit::ComparatorV2));
  circuits.push_back(makeTableICircuit(TableICircuit::MillerV2));
  circuits.push_back(makeFig1Example());
  EngineOptions opt;
  opt.maxSweeps = 60;
  opt.numRestarts = 2;
  opt.seed = 41;
  opt.numThreads = 8;
  BatchPlacer batch;
  std::vector<EngineResult> results =
      batch.placeAll(circuits, EngineBackend::SeqPair, opt);
  ASSERT_EQ(results.size(), circuits.size());
  PortfolioRunner runner;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    EngineResult expected = runner.run(circuits[i], EngineBackend::SeqPair, opt);
    expectBitIdentical(expected, results[i],
                       "batch circuit " + std::to_string(i));
  }
}

// Stress for the sanitizer configs (ASan/UBSan catch lifetime bugs, TSan the
// synchronization): many short fork-joins plus a full multi-backend race on
// an oversubscribed pool.
TEST(Runtime, StressUnderSanitizers) {
  ThreadPool pool(8);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallelFor(64, [&](std::size_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), 50u * 2016u);

  Circuit c = makeSynthetic(
      {.name = "stress", .moduleCount = 12, .seed = 3, .symmetricFraction = 0.5});
  EngineOptions opt;
  opt.maxSweeps = 48;
  opt.numRestarts = 8;
  opt.seed = 29;
  PortfolioRunner runner(&pool);
  PortfolioRunner::RaceOutcome a = runner.race(c, allBackends(), opt);
  PortfolioRunner::RaceOutcome b = runner.race(c, allBackends(), opt);
  EXPECT_EQ(a.backend, b.backend);
  expectBitIdentical(a.result, b.result, "stress race");
}

}  // namespace
}  // namespace als
