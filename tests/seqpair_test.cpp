#include <gtest/gtest.h>

#include <algorithm>

#include "io/corpus.h"
#include "netlist/generators.h"
#include "seqpair/moves.h"
#include "seqpair/packer.h"
#include "seqpair/sa_placer.h"
#include "seqpair/sequence_pair.h"
#include "seqpair/sym_placer.h"
#include "seqpair/symmetry.h"
#include "test_util.h"

namespace als {
namespace {

// Module order in makeFig1Example: E=0 B=1 A=2 F=3 C=4 D=5 G=6.
SequencePair paperFig1Pair() {
  // (EBAFCDG, EBCDFAG)
  return SequencePair({0, 1, 2, 3, 4, 5, 6}, {0, 1, 4, 5, 3, 2, 6});
}

TEST(SequencePair, IdentityAndInverses) {
  SequencePair sp(4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sp.alphaPos(i), i);
    EXPECT_EQ(sp.betaPos(i), i);
  }
  EXPECT_TRUE(sp.isValid());
}

TEST(SequencePair, SwapsKeepInversesInSync) {
  SequencePair sp(5);
  sp.swapAlphaModules(1, 3);
  EXPECT_EQ(sp.alphaPos(1), 3u);
  EXPECT_EQ(sp.alphaPos(3), 1u);
  sp.swapBetaAt(0, 4);
  EXPECT_EQ(sp.betaPos(4), 0u);
  EXPECT_EQ(sp.betaPos(0), 4u);
  EXPECT_TRUE(sp.isValid());
}

TEST(SequencePair, RelationsPartitionEveryPair) {
  Rng rng(3);
  SequencePair sp = SequencePair::random(8, rng);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if (i == j) continue;
      int rel = sp.leftOf(i, j) + sp.leftOf(j, i) + sp.below(i, j) + sp.below(j, i);
      EXPECT_EQ(rel, 1) << i << "," << j;
    }
  }
}

TEST(SequencePair, ToStringUsesNames) {
  Circuit c = makeFig1Example();
  EXPECT_EQ(paperFig1Pair().toString(c.moduleNames()),
            "(E B A F C D G, E B C D F A G)");
}

TEST(Symmetry, PaperPairIsSymmetricFeasible) {
  Circuit c = makeFig1Example();
  EXPECT_TRUE(isSymmetricFeasible(paperFig1Pair(), c.symmetryGroup(0)));
}

TEST(Symmetry, BrokenOrderIsNotFeasible) {
  Circuit c = makeFig1Example();
  // Swap C and D in beta only: pair order now identical in both sequences'
  // mirror sense is broken.
  SequencePair sp({0, 1, 2, 3, 4, 5, 6}, {0, 1, 5, 4, 3, 2, 6});
  EXPECT_FALSE(isSymmetricFeasible(sp, c.symmetryGroup(0)));
}

TEST(Symmetry, MakeSymmetricFeasibleRepairsAnyPair) {
  Circuit c = makeFig1Example();
  auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    SequencePair sp = SequencePair::random(7, rng);
    makeSymmetricFeasible(sp, groups);
    EXPECT_TRUE(isSymmetricFeasible(sp, groups));
    EXPECT_TRUE(sp.isValid());
  }
}

TEST(Symmetry, MakeSymmetricFeasibleReproducesPaperBeta) {
  // With alpha = EBAFCDG and beta slots of the group members as in the
  // paper's beta, the constructive rule yields exactly EBCDFAG.
  Circuit c = makeFig1Example();
  SequencePair sp({0, 1, 2, 3, 4, 5, 6}, {0, 1, 2, 3, 4, 5, 6});
  // beta = EBAFCDG initially; group slots {1,2,3,4,5,6}.
  makeSymmetricFeasible(sp, c.symmetryGroups());
  EXPECT_TRUE(isSymmetricFeasible(sp, c.symmetryGroup(0)));
  EXPECT_EQ(sp.toString(c.moduleNames()), "(E B A F C D G, E B C D F A G)");
}

TEST(Symmetry, SelfSymmetricCellsMustBeVerticallyRelated) {
  Circuit c = makeFig1Example();
  const SymmetryGroup& g = c.symmetryGroup(0);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    SequencePair sp = SequencePair::random(7, rng);
    makeSymmetricFeasible(sp, c.symmetryGroups());
    // A (2) and F (3) are self-symmetric: exactly one of below(a,f)/below(f,a).
    EXPECT_TRUE(sp.below(2, 3) || sp.below(3, 2));
    // Mirror partners are horizontally related.
    for (const SymPair& p : g.pairs) {
      EXPECT_TRUE(sp.leftOf(p.a, p.b) || sp.leftOf(p.b, p.a));
    }
  }
}

// --- Packing ---

std::pair<std::vector<Coord>, std::vector<Coord>> dimsOf(const Circuit& c) {
  std::vector<Coord> w, h;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
  }
  return {w, h};
}

TEST(Packer, SingleModuleAtOrigin) {
  SequencePair sp(1);
  std::vector<Coord> w{10}, h{20};
  Placement p = packSequencePair(sp, w, h);
  EXPECT_EQ(p[0], (Rect{0, 0, 10, 20}));
}

TEST(Packer, TwoModulesHorizontalAndVertical) {
  std::vector<Coord> w{10, 6}, h{4, 8};
  {  // alpha = beta: 0 left of 1
    SequencePair sp(2);
    Placement p = packSequencePair(sp, w, h);
    EXPECT_EQ(p[1].x, 10);
    EXPECT_EQ(p[1].y, 0);
  }
  {  // reversed alpha: 0 after 1 in alpha, before in beta -> 0 below 1
    SequencePair sp({1, 0}, {0, 1});
    Placement p = packSequencePair(sp, w, h);
    EXPECT_EQ(p[0].y, 0);
    EXPECT_EQ(p[1].y, 4);
    EXPECT_EQ(p[1].x, 0);
  }
}

TEST(Packer, PlacementRespectsAllPairRelations) {
  Circuit c = makeTableICircuit(TableICircuit::FoldedCascode);
  auto [w, h] = dimsOf(c);
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    SequencePair sp = SequencePair::random(c.moduleCount(), rng);
    Placement p = packSequencePair(sp, w, h);
    // Random pairs ignore symmetry; the other shared invariants hold.
    test_util::expectPlacementInvariants(
        p, c, {.symTolerance = test_util::kNoSymmetryCheck},
        "trial " + std::to_string(trial));
    for (std::size_t i = 0; i < sp.size(); ++i) {
      for (std::size_t j = 0; j < sp.size(); ++j) {
        if (sp.leftOf(i, j)) {
          ASSERT_LE(p[i].xhi(), p[j].xlo());
        }
        if (sp.below(i, j)) {
          ASSERT_LE(p[i].yhi(), p[j].ylo());
        }
      }
    }
  }
}

class PackerStrategyTest : public ::testing::TestWithParam<PackStrategy> {};

TEST_P(PackerStrategyTest, MatchesNaiveReference) {
  Circuit c = makeTableICircuit(TableICircuit::Buffer);
  auto [w, h] = dimsOf(c);
  Rng rng(23);
  for (int trial = 0; trial < 25; ++trial) {
    SequencePair sp = SequencePair::random(c.moduleCount(), rng);
    Placement ref = packSequencePair(sp, w, h, PackStrategy::Naive);
    Placement got = packSequencePair(sp, w, h, GetParam());
    for (std::size_t m = 0; m < sp.size(); ++m) {
      ASSERT_EQ(got[m], ref[m]) << "module " << m << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, PackerStrategyTest,
                         ::testing::Values(PackStrategy::Fenwick, PackStrategy::Veb),
                         [](const auto& info) {
                           return info.param == PackStrategy::Fenwick ? "Fenwick"
                                                                      : "Veb";
                         });

TEST(Packer, PackingIsLowerLeftCompacted) {
  // Every module either touches x = 0 or abuts some module on its left.
  Circuit c = makeTableICircuit(TableICircuit::MillerV2);
  auto [w, h] = dimsOf(c);
  Rng rng(31);
  SequencePair sp = SequencePair::random(c.moduleCount(), rng);
  Placement p = packSequencePair(sp, w, h);
  for (std::size_t m = 0; m < sp.size(); ++m) {
    if (p[m].x == 0) continue;
    bool supported = false;
    for (std::size_t i = 0; i < sp.size() && !supported; ++i) {
      supported = sp.leftOf(i, m) && p[i].xhi() == p[m].xlo();
    }
    EXPECT_TRUE(supported) << "module " << m << " floats in x";
  }
}

// --- Moves ---

TEST(SaPlacer, ResultSatisfiesAllInvariantsWithExactSymmetry) {
  // End-to-end: the symmetric-feasible annealer's result passes the shared
  // invariant checker in its strictest setting (exact mirror symmetry).
  Circuit c = makeMillerOpAmp();
  SeqPairPlacerOptions opt;
  opt.maxSweeps = 120;
  opt.seed = 19;
  SeqPairPlacerResult r = placeSeqPairSA(c, opt);
  test_util::expectPlacementInvariants(r.placement, c, {.symTolerance = 0});
}

TEST(Moves, PreserveSymmetricFeasibilityOverLongWalks) {
  Circuit c = makeMillerOpAmp();
  auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
  std::vector<bool> rotatable;
  for (const Module& m : c.modules()) rotatable.push_back(m.rotatable);
  SymmetricMoveSet moves(groups, rotatable);

  SeqPairState s{SequencePair(c.moduleCount()),
                 std::vector<bool>(c.moduleCount(), false)};
  makeSymmetricFeasible(s.sp, groups);
  Rng rng(41);
  for (int step = 0; step < 5000; ++step) {
    moves.apply(s, rng);
    ASSERT_TRUE(s.sp.isValid());
    ASSERT_TRUE(isSymmetricFeasible(s.sp, groups)) << "step " << step;
  }
}

TEST(Moves, RotationsKeepPairsMatched) {
  Circuit c = makeMillerOpAmp();
  auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
  std::vector<bool> rotatable(c.moduleCount(), true);
  SymmetricMoveSet moves(groups, rotatable);
  SeqPairState s{SequencePair(c.moduleCount()),
                 std::vector<bool>(c.moduleCount(), false)};
  makeSymmetricFeasible(s.sp, groups);
  Rng rng(43);
  for (int step = 0; step < 2000; ++step) {
    moves.apply(s, rng);
    for (const SymmetryGroup& g : c.symmetryGroups()) {
      for (const SymPair& p : g.pairs) {
        ASSERT_EQ(s.rotated[p.a], s.rotated[p.b]);
      }
    }
  }
}

// --- Incremental packing ---

/// Random SA-shaped walk: mutate the pair (sequence swap or rotation),
/// decode incrementally on a warm scratch, and demand the result equals a
/// cold full pack bit-for-bit; modules whose rect changed must be covered
/// by the reported moved list.
void runIncrementalVsFull(PackStrategy strategy, std::size_t n,
                          std::uint64_t seed, int steps) {
  Rng rng(seed);
  SequencePair sp = SequencePair::random(n, rng);
  std::vector<Coord> w(n), h(n);
  for (std::size_t m = 0; m < n; ++m) {
    w[m] = 1 + rng.uniformInt(0, 40);
    h[m] = 1 + rng.uniformInt(0, 40);
  }
  SeqPairPackScratch inc;
  Placement out, prev, full;
  std::vector<std::size_t> moved;
  for (int step = 0; step < steps; ++step) {
    if (step > 0) {
      if (rng.uniform() < 0.25) {  // rotation: dims change, sequences don't
        std::size_t m = rng.index(n);
        std::swap(w[m], h[m]);
      } else {
        std::vector<std::size_t> a = sp.alpha(), b = sp.beta();
        auto& seq = rng.coin() ? a : b;
        std::size_t i = rng.index(n), j = rng.index(n);
        std::swap(seq[i], seq[j]);
        sp.assignSequences(a, b);
      }
    }
    prev = out;
    moved.clear();
    packSequencePairIncrementalInto(sp, w, h, strategy, inc, out, moved);
    full = packSequencePair(sp, w, h, PackStrategy::Naive);
    for (std::size_t m = 0; m < n; ++m) {
      ASSERT_TRUE(out[m] == full[m]) << "step " << step << " module " << m;
      if (step > 0 && !(out[m] == prev[m])) {
        ASSERT_TRUE(std::find(moved.begin(), moved.end(), m) != moved.end())
            << "module " << m << " moved but was not reported, step " << step;
      }
    }
  }
}

TEST(PackerIncremental, NaiveMatchesFullPack) {
  runIncrementalVsFull(PackStrategy::Naive, 6, 3, 120);
  runIncrementalVsFull(PackStrategy::Naive, 29, 5, 120);
}

TEST(PackerIncremental, FenwickMatchesFullPack) {
  runIncrementalVsFull(PackStrategy::Fenwick, 6, 7, 120);
  runIncrementalVsFull(PackStrategy::Fenwick, 61, 9, 120);
}

TEST(PackerIncremental, VebMatchesFullPack) {
  runIncrementalVsFull(PackStrategy::Veb, 6, 11, 120);
  runIncrementalVsFull(PackStrategy::Veb, 140, 13, 60);
}

TEST(PackerIncremental, AutoMatchesFullPackAcrossThresholds) {
  // Auto resolves per size class; cover one n in each band.
  runIncrementalVsFull(PackStrategy::Auto, 9, 15, 80);
  runIncrementalVsFull(PackStrategy::Auto, 90, 17, 80);
  runIncrementalVsFull(PackStrategy::Auto, 150, 19, 60);
}

TEST(PackerIncremental, SurvivesStrategySwitchOnOneScratch) {
  // Changing the strategy between calls must fall back to a cold pack, not
  // resume another strategy's journal.
  Rng rng(23);
  const std::size_t n = 40;
  SequencePair sp = SequencePair::random(n, rng);
  std::vector<Coord> w(n), h(n);
  for (std::size_t m = 0; m < n; ++m) {
    w[m] = 1 + rng.uniformInt(0, 20);
    h[m] = 1 + rng.uniformInt(0, 20);
  }
  SeqPairPackScratch scratch;
  Placement out;
  std::vector<std::size_t> moved;
  for (PackStrategy s : {PackStrategy::Fenwick, PackStrategy::Veb,
                         PackStrategy::Naive, PackStrategy::Fenwick}) {
    std::vector<std::size_t> a = sp.alpha(), b = sp.beta();
    std::swap(a[rng.index(n)], a[rng.index(n)]);
    sp.assignSequences(a, b);
    moved.clear();
    packSequencePairIncrementalInto(sp, w, h, s, scratch, out, moved);
    Placement full = packSequencePair(sp, w, h, PackStrategy::Naive);
    for (std::size_t m = 0; m < n; ++m) ASSERT_TRUE(out[m] == full[m]);
  }
}

TEST(SymPlacerIncremental, MatchesLegacyPathOverSymmetricWalks) {
  // The hot construction path (island signature cache + incremental LCS)
  // must reproduce the legacy full-build placement and axes bit-for-bit at
  // every step of a feasibility-preserving walk.
  for (CorpusCircuit which : {CorpusCircuit::Ami33, CorpusCircuit::N100}) {
    Circuit c = loadCorpusCircuit(which);
    auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
    std::vector<bool> rotatable;
    for (const Module& m : c.modules()) rotatable.push_back(m.rotatable);
    SymmetricMoveSet moves(groups, rotatable);
    SeqPairState s{SequencePair(c.moduleCount()),
                   std::vector<bool>(c.moduleCount(), false)};
    makeSymmetricFeasible(s.sp, groups);

    SymPlaceScratch hotScratch, coldScratch;
    SymPlacementResult hot, cold;
    std::vector<std::size_t> moved;
    SymBuildOptions opt;
    opt.incremental = true;
    opt.verify = false;
    opt.packing = PackStrategy::Auto;
    opt.moved = &moved;

    Rng rng(61);
    std::vector<Coord> w(c.moduleCount()), h(c.moduleCount());
    Placement prev;
    for (int step = 0; step < 60; ++step) {
      if (step > 0) moves.apply(s, rng);
      for (std::size_t m = 0; m < c.moduleCount(); ++m) {
        w[m] = s.rotated[m] ? c.module(m).h : c.module(m).w;
        h[m] = s.rotated[m] ? c.module(m).w : c.module(m).h;
      }
      moved.clear();
      ASSERT_TRUE(buildSymmetricPlacementInto(s.sp, w, h, groups, opt,
                                              hotScratch, hot));
      ASSERT_TRUE(buildSymmetricPlacementInto(s.sp, w, h, groups, 200,
                                              coldScratch, cold));
      ASSERT_EQ(hot.axis2x, cold.axis2x) << corpusName(which);
      for (std::size_t m = 0; m < c.moduleCount(); ++m) {
        ASSERT_TRUE(hot.placement[m] == cold.placement[m])
            << corpusName(which) << " step " << step << " module " << m;
        if (step > 0 && !(hot.placement[m] == prev[m])) {
          ASSERT_TRUE(std::find(moved.begin(), moved.end(), m) != moved.end())
              << "module " << m << " moved but unreported, step " << step;
        }
      }
      prev = hot.placement;
    }
  }
}

TEST(SaPlacer, IncrementalDecodeMatchesFullDecodeTrajectory) {
  // Same seed, incremental decode on vs off: bit-identical SA trajectories
  // (the hinted propose and the journaled LCS change cost *computation*,
  // never cost *values*).
  for (CorpusCircuit which : {CorpusCircuit::Apte, CorpusCircuit::Ami33,
                              CorpusCircuit::N100}) {
    Circuit c = loadCorpusCircuit(which);
    SeqPairPlacerOptions on, off;
    on.maxSweeps = off.maxSweeps = which == CorpusCircuit::N100 ? 6 : 24;
    on.seed = off.seed = 83;
    on.incrementalDecode = true;
    off.incrementalDecode = false;
    SeqPairPlacerResult a = placeSeqPairSA(c, on);
    SeqPairPlacerResult b = placeSeqPairSA(c, off);
    ASSERT_EQ(a.movesTried, b.movesTried) << corpusName(which);
    ASSERT_EQ(a.cost, b.cost) << corpusName(which);
    ASSERT_EQ(a.area, b.area);
    ASSERT_EQ(a.hpwl, b.hpwl);
    for (std::size_t m = 0; m < a.placement.size(); ++m) {
      ASSERT_TRUE(a.placement[m] == b.placement[m]) << corpusName(which);
    }
  }
}

TEST(SaPlacer, PackStrategiesShareOneTrajectory) {
  // Naive / Fenwick / Veb / Auto are interchangeable mid-anneal: identical
  // cost values mean identical accept decisions, so the whole run matches.
  Circuit c = loadCorpusCircuit(CorpusCircuit::Ami33);
  SeqPairPlacerResult ref;
  bool first = true;
  for (PackStrategy s : {PackStrategy::Naive, PackStrategy::Fenwick,
                         PackStrategy::Veb, PackStrategy::Auto}) {
    SeqPairPlacerOptions opt;
    opt.maxSweeps = 20;
    opt.seed = 29;
    opt.packing = s;
    SeqPairPlacerResult r = placeSeqPairSA(c, opt);
    if (first) {
      ref = std::move(r);
      first = false;
      continue;
    }
    ASSERT_EQ(r.cost, ref.cost);
    ASSERT_EQ(r.area, ref.area);
    ASSERT_EQ(r.hpwl, ref.hpwl);
    for (std::size_t m = 0; m < r.placement.size(); ++m) {
      ASSERT_TRUE(r.placement[m] == ref.placement[m]);
    }
  }
}

}  // namespace
}  // namespace als
