// Property suite of the unified cost layer (cost/objective.h,
// cost/cost_model.h): the incremental propose/commit/rollback protocol must
// produce costs EXACTLY equal — bit for bit, not approximately — to a
// from-scratch evaluation, across every backend's move set, and the
// annealer driving it must retrace the scratch trajectory move for move.
#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "anneal/annealer.h"
#include "bstar/bstar_tree.h"
#include "bstar/hbstar.h"
#include "bstar/pack.h"
#include "cost/cost_model.h"
#include "engine/placement_engine.h"
#include "netlist/generators.h"
#include "seqpair/moves.h"
#include "seqpair/sym_placer.h"
#include "seqpair/symmetry.h"
#include "slicing/polish.h"
#include "thermal/thermal.h"
#include "util/rng.h"

namespace als {
namespace {

std::vector<Circuit> testCircuits() {
  std::vector<Circuit> out;
  out.push_back(makeMillerOpAmp());
  out.push_back(makeFig2Design());
  out.push_back(makeSynthetic(
      {.name = "syn40", .moduleCount = 40, .seed = 17, .symmetricFraction = 0.6}));
  return out;
}

void moduleDims(const Circuit& c, const std::vector<bool>& rotated,
                std::vector<Coord>* w, std::vector<Coord>* h) {
  const std::size_t n = c.moduleCount();
  w->resize(n);
  h->resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    const Module& mod = c.module(m);
    (*w)[m] = rotated[m] ? mod.h : mod.w;
    (*h)[m] = rotated[m] ? mod.w : mod.h;
  }
}

/// Runs `steps` random propose/commit/rollback rounds of `move` on `state`,
/// asserting after every propose that the incremental cost equals the
/// scratch cost of the decoded placement exactly, and after every commit
/// that the committed aggregates equal a fresh scratch evaluation.
template <class State, class DecodeF, class MoveF>
void exerciseProtocol(CostModel& model, State state, DecodeF&& decode,
                      MoveF&& move, std::size_t steps, std::uint64_t seed) {
  Rng rng(seed);
  std::optional<Placement> placed = decode(state);
  ASSERT_TRUE(placed.has_value());
  model.reset(*placed);
  EXPECT_EQ(model.committedCost(), model.evaluate(*placed));

  for (std::size_t i = 0; i < steps; ++i) {
    State next = move(state, rng);
    std::optional<Placement> p = decode(next);
    ASSERT_TRUE(p.has_value());
    double incremental = model.propose(*p);
    EXPECT_EQ(incremental, model.evaluate(*p)) << "step " << i;
    if (rng.uniform() < 0.5) {
      model.commit();
      state = std::move(next);
      EXPECT_EQ(model.committedCost(), model.evaluate(*p)) << "step " << i;
    } else {
      model.rollback();
    }
    if (i % 97 == 0) {
      // The committed aggregates must still match scratch exactly.
      std::optional<Placement> cur = decode(state);
      ASSERT_TRUE(cur.has_value());
      CostBreakdown fresh = model.evaluateBreakdown(*cur);
      EXPECT_EQ(model.committed().hpwl, fresh.hpwl);
      EXPECT_EQ(model.committed().area, fresh.area);
      EXPECT_EQ(model.committed().thermalMismatch, fresh.thermalMismatch);
      EXPECT_EQ(model.committedCost(), fresh.cost);
    }
  }
}

TEST(CostModel, FlatBStarMovesIncrementalEqualsScratch) {
  for (const Circuit& c : testCircuits()) {
    const std::size_t n = c.moduleCount();
    CostModel model(c, makeObjective(c, {.wirelength = 0.25,
                                         .symmetry = 2.0,
                                         .proximity = 2.0}));
    struct FlatState {
      BStarTree tree;
      std::vector<bool> rotated;
    };
    auto decode = [&](const FlatState& s) -> std::optional<Placement> {
      std::vector<Coord> w, h;
      moduleDims(c, s.rotated, &w, &h);
      return packBStar(s.tree, w, h);
    };
    auto move = [&](const FlatState& s, Rng& rng) {
      FlatState next = s;
      if (rng.uniform() < 0.15) {
        std::size_t m = rng.index(n);
        if (c.module(m).rotatable) next.rotated[m] = !next.rotated[m];
      } else {
        next.tree.perturb(rng);
      }
      return next;
    };
    exerciseProtocol(model, FlatState{BStarTree(n), std::vector<bool>(n, false)},
                     decode, move, 1500, 3);
  }
}

TEST(CostModel, SeqPairMovesIncrementalEqualsScratch) {
  for (const Circuit& c : testCircuits()) {
    const std::size_t n = c.moduleCount();
    const auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
    CostModel model(c, makeObjective(c, {.wirelength = 0.25,
                                         .outline = 4.0,
                                         .maxWidth = 120 * kUm,
                                         .targetAspect = 1.0}));
    std::vector<bool> rotatable(n);
    for (std::size_t m = 0; m < n; ++m) rotatable[m] = c.module(m).rotatable;
    SymmetricMoveSet moves(groups, rotatable, true);
    SeqPairState init{SequencePair(n), std::vector<bool>(n, false)};
    makeSymmetricFeasible(init.sp, groups);
    auto decode = [&](const SeqPairState& s) -> std::optional<Placement> {
      std::vector<Coord> w, h;
      moduleDims(c, s.rotated, &w, &h);
      auto built = buildSymmetricPlacement(s.sp, w, h, groups);
      if (!built) return std::nullopt;
      return std::move(built->placement);
    };
    auto move = [&](const SeqPairState& s, Rng& rng) {
      SeqPairState next = s;
      moves.apply(next, rng);
      return next;
    };
    exerciseProtocol(model, init, decode, move, 1000, 5);
  }
}

TEST(CostModel, SlicingMovesIncrementalEqualsScratch) {
  for (const Circuit& c : testCircuits()) {
    const std::size_t n = c.moduleCount();
    CostModel model(c, makeObjective(c, {.wirelength = 0.25}));
    std::vector<Coord> w, h;
    moduleDims(c, std::vector<bool>(n, false), &w, &h);
    std::vector<bool> rotatable(n);
    for (std::size_t m = 0; m < n; ++m) rotatable[m] = c.module(m).rotatable;
    auto decode = [&](const PolishExpr& e) -> std::optional<Placement> {
      return std::move(evaluatePolish(e, w, h, rotatable, 32).placement);
    };
    auto move = [](const PolishExpr& e, Rng& rng) {
      PolishExpr next = e;
      next.perturb(rng);
      return next;
    };
    exerciseProtocol(model, PolishExpr::initial(n), decode, move, 1500, 7);
  }
}

TEST(CostModel, HBStarMovesIncrementalEqualsScratch) {
  for (const Circuit& c : testCircuits()) {
    CostModel model(c, makeObjective(c, {.wirelength = 0.25}));
    auto decode = [](const HBState& s) -> std::optional<Placement> {
      return std::move(s.pack().placement);
    };
    auto move = [](const HBState& s, Rng& rng) {
      HBState next = s;
      next.perturb(rng);
      return next;
    };
    exerciseProtocol(model, HBState(c), decode, move, 800, 9);
  }
}

// ------------------------------------------------------------ thermal ----

/// Test circuits with radiators: every third module dissipates, so the
/// thermal term is live on all of them.
std::vector<Circuit> thermalCircuits() {
  std::vector<Circuit> out = testCircuits();
  for (Circuit& c : out) {
    for (std::size_t m = 0; m < c.moduleCount(); m += 3) {
      c.module(m).powerW = 0.15 + 0.05 * static_cast<double>(m % 5);
    }
  }
  return out;
}

/// The scratch thermal oracle straight from thermal/thermal.h — an
/// independent reimplementation of the objective term: build a ThermalField
/// from the circuit's Power annotations and sum the quantized pair
/// mismatches.  The CostModel's committed aggregate must EXPECT_EQ this.
Coord fieldThermalMismatch(const Circuit& c, const Placement& p) {
  std::vector<double> power;
  for (const Module& m : c.modules()) power.push_back(m.powerW);
  ThermalField field(sourcesFromPlacement(p, power));
  Coord total = 0;
  for (const SymmetryGroup& g : c.symmetryGroups()) {
    for (const SymPair& pr : g.pairs) {
      Point a2 = p[pr.a].center2x();
      Point b2 = p[pr.b].center2x();
      std::int64_t ta = field.quantizedAt(static_cast<double>(a2.x) / 2000.0,
                                          static_cast<double>(a2.y) / 2000.0);
      std::int64_t tb = field.quantizedAt(static_cast<double>(b2.x) / 2000.0,
                                          static_cast<double>(b2.y) / 2000.0);
      total += std::abs(ta - tb);
    }
  }
  return total;
}

TEST(CostModelThermal, MismatchMatchesThermalFieldOracle) {
  for (const Circuit& c : thermalCircuits()) {
    const std::size_t n = c.moduleCount();
    CostModel model(c, makeObjective(c, {.wirelength = 0.25, .thermal = 2.0}));
    std::vector<Coord> w, h;
    moduleDims(c, std::vector<bool>(n, false), &w, &h);
    Rng rng(61);
    for (int t = 0; t < 20; ++t) {
      Placement p = packBStar(BStarTree::random(n, rng), w, h);
      EXPECT_EQ(model.thermalMismatch(p), fieldThermalMismatch(c, p));
    }
  }
}

TEST(CostModelThermal, IncrementalEqualsScratchUnderFlatMoves) {
  for (const Circuit& c : thermalCircuits()) {
    const std::size_t n = c.moduleCount();
    CostModel model(c, makeObjective(c, {.wirelength = 0.25,
                                         .symmetry = 2.0,
                                         .proximity = 2.0,
                                         .thermal = 2.0}));
    struct FlatState {
      BStarTree tree;
      std::vector<bool> rotated;
    };
    auto decode = [&](const FlatState& s) -> std::optional<Placement> {
      std::vector<Coord> w, h;
      moduleDims(c, s.rotated, &w, &h);
      return packBStar(s.tree, w, h);
    };
    auto move = [&](const FlatState& s, Rng& rng) {
      FlatState next = s;
      if (rng.uniform() < 0.15) {
        std::size_t m = rng.index(n);
        if (c.module(m).rotatable) next.rotated[m] = !next.rotated[m];
      } else {
        next.tree.perturb(rng);
      }
      return next;
    };
    exerciseProtocol(model, FlatState{BStarTree(n), std::vector<bool>(n, false)},
                     decode, move, 1200, 13);
  }
}

TEST(CostModelThermal, IncrementalEqualsScratchUnderSeqPairMoves) {
  for (const Circuit& c : thermalCircuits()) {
    const std::size_t n = c.moduleCount();
    const auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
    CostModel model(c, makeObjective(c, {.wirelength = 0.25,
                                         .outline = 4.0,
                                         .thermal = 1.5,
                                         .maxWidth = 120 * kUm}));
    std::vector<bool> rotatable(n);
    for (std::size_t m = 0; m < n; ++m) rotatable[m] = c.module(m).rotatable;
    SymmetricMoveSet moves(groups, rotatable, true);
    SeqPairState init{SequencePair(n), std::vector<bool>(n, false)};
    makeSymmetricFeasible(init.sp, groups);
    auto decode = [&](const SeqPairState& s) -> std::optional<Placement> {
      std::vector<Coord> w, h;
      moduleDims(c, s.rotated, &w, &h);
      auto built = buildSymmetricPlacement(s.sp, w, h, groups);
      if (!built) return std::nullopt;
      return std::move(built->placement);
    };
    auto move = [&](const SeqPairState& s, Rng& rng) {
      SeqPairState next = s;
      moves.apply(next, rng);
      return next;
    };
    exerciseProtocol(model, init, decode, move, 800, 15);
  }
}

// Shape-selection moves change a module's realized footprint between
// proposes — the cost model only ever sees the decoded placement, so the
// incremental thermal/hpwl/area aggregates must stay exact through
// footprint swaps too (this is the alloc-free move seam the backends use).
TEST(CostModelThermal, IncrementalEqualsScratchUnderShapeMoves) {
  for (Circuit& c : thermalCircuits()) {
    const std::size_t n = c.moduleCount();
    for (std::size_t m = 0; m < n; m += 4) {
      Module& mod = c.module(m);
      mod.shapes = {{mod.w, mod.h},
                    {mod.w + (mod.w + 1) / 2, (2 * mod.h + 2) / 3},
                    {(2 * mod.w + 2) / 3, mod.h + (mod.h + 1) / 2}};
    }
    CostModel model(c, makeObjective(c, {.wirelength = 0.25,
                                         .symmetry = 2.0,
                                         .thermal = 2.0}));
    struct ShapeState {
      BStarTree tree;
      std::vector<std::uint8_t> shapeIdx;
    };
    auto decode = [&](const ShapeState& s) -> std::optional<Placement> {
      std::vector<Coord> w(n), h(n);
      for (std::size_t m = 0; m < n; ++m) {
        const Module& mod = c.module(m);
        const ModuleShape& shape =
            mod.shapes.empty() ? ModuleShape{mod.w, mod.h}
                               : mod.shapes[s.shapeIdx[m]];
        w[m] = shape.w;
        h[m] = shape.h;
      }
      return packBStar(s.tree, w, h);
    };
    auto move = [&](const ShapeState& s, Rng& rng) {
      ShapeState next = s;
      if (rng.uniform() < 0.3) {
        std::size_t m = rng.index(n);
        if (!c.module(m).shapes.empty()) {
          next.shapeIdx[m] = static_cast<std::uint8_t>(
              rng.index(c.module(m).shapes.size()));
        }
      } else {
        next.tree.perturb(rng);
      }
      return next;
    };
    exerciseProtocol(model,
                     ShapeState{BStarTree(n), std::vector<std::uint8_t>(n, 0)},
                     decode, move, 1200, 17);
  }
}

// The paper's mirror argument, pinned exactly: pairs mirrored about an axis
// with every radiator centered ON the axis see bit-identical quantized
// temperatures, so the mismatch term is exactly zero.  Coordinates are
// multiples of 1000 DBU (integer um), so the DBU->um conversion is exact in
// double and mirrored distances match bit for bit; an off-axis radiator on
// the same geometry must break the tie.
TEST(CostModelThermal, MirroredGeometryHasExactlyZeroMismatch) {
  Circuit c("mirror");
  ModuleId a = c.addModule("A", 10 * kUm, 8 * kUm);
  ModuleId b = c.addModule("B", 10 * kUm, 8 * kUm);
  ModuleId r = c.addModule("R", 6 * kUm, 6 * kUm);
  ModuleId s = c.addModule("S", 4 * kUm, 4 * kUm);
  SymmetryGroup g;
  g.name = "G";
  g.pairs = {{a, b}};
  c.addSymmetryGroup(std::move(g));
  c.module(r).powerW = 0.5;
  c.module(s).powerW = 0.25;

  Placement p(c.moduleCount());
  p[a] = {0, 0, 10 * kUm, 8 * kUm};          // centers at x = 5, 35 um:
  p[b] = {30 * kUm, 0, 10 * kUm, 8 * kUm};   // mirror axis x = 20 um
  p[r] = {17 * kUm, 10 * kUm, 6 * kUm, 6 * kUm};   // center x = 20 um: ON axis
  p[s] = {18 * kUm, 20 * kUm, 4 * kUm, 4 * kUm};   // center x = 20 um: ON axis

  CostModel model(c, makeObjective(c, {.wirelength = 0.25, .thermal = 1.0}));
  EXPECT_EQ(model.thermalMismatch(p), 0);
  EXPECT_EQ(fieldThermalMismatch(c, p), 0);
  CostBreakdown bd = model.evaluateBreakdown(p);
  EXPECT_EQ(bd.thermalMismatch, 0);

  // Nudge one radiator off the axis: the pair must see a nonzero mismatch.
  p[s] = {10 * kUm, 20 * kUm, 4 * kUm, 4 * kUm};
  EXPECT_GT(model.thermalMismatch(p), 0);
  EXPECT_EQ(model.thermalMismatch(p), fieldThermalMismatch(c, p));
}

// The hinted propose (moved-module list + attain-count bounding box) must
// agree with scratch over long random single/multi-module displacement
// sequences — including the shrink case where a boundary module moves
// inward and forces a rescan.
TEST(CostModel, HintedProposeEqualsScratchUnderDisplacements) {
  Circuit c = makeSynthetic(
      {.name = "hint", .moduleCount = 60, .seed = 31, .symmetricFraction = 0.5});
  CostModel model(c, makeObjective(c, {.wirelength = 0.25,
                                       .symmetry = 2.0,
                                       .proximity = 2.0}));
  const std::size_t n = c.moduleCount();
  std::vector<Coord> w, h;
  moduleDims(c, std::vector<bool>(n, false), &w, &h);
  Rng rng(37);
  Placement p = packBStar(BStarTree::random(n, rng), w, h);
  model.reset(p);

  for (std::size_t i = 0; i < 4000; ++i) {
    std::vector<std::size_t> moved;
    std::size_t k = 1 + rng.index(3);
    for (std::size_t j = 0; j < k; ++j) {
      std::size_t m = rng.index(n);
      moved.push_back(m);
      // Large displacements guarantee boundary modules regularly move
      // inward/outward, exercising both bbox update paths.
      Coord dx = (static_cast<Coord>(rng.index(21)) - 10) * kUm;
      Coord dy = (static_cast<Coord>(rng.index(21)) - 10) * kUm;
      p[m] = p[m].translated(dx, dy);
    }
    if (rng.uniform() < 0.3) moved.push_back(moved.front());  // duplicate hint
    double incremental = model.propose(p, moved);
    EXPECT_EQ(incremental, model.evaluate(p)) << "step " << i;
    model.commit();
    CostBreakdown fresh = model.evaluateBreakdown(p);
    ASSERT_EQ(model.committed().boundingBox, fresh.boundingBox) << "step " << i;
    ASSERT_EQ(model.committed().hpwl, fresh.hpwl) << "step " << i;
  }
}

TEST(CostModel, RollbackRestoresTheCommittedState) {
  Circuit c = makeMillerOpAmp();
  CostModel model(c, makeObjective(c, {.wirelength = 0.25, .symmetry = 2.0}));
  const std::size_t n = c.moduleCount();
  std::vector<Coord> w, h;
  moduleDims(c, std::vector<bool>(n, false), &w, &h);
  Rng rng(41);
  Placement p = packBStar(BStarTree::random(n, rng), w, h);
  double committed = model.reset(p);

  Placement q = p;
  q[0] = q[0].translated(5 * kUm, 3 * kUm);
  double proposed = model.propose(q);
  EXPECT_NE(proposed, committed);
  model.rollback();
  EXPECT_EQ(model.committedCost(), committed);
  // A re-propose of the identical placement must see zero moved modules and
  // reproduce the committed cost exactly.
  EXPECT_EQ(model.propose(p), committed);
  model.rollback();
}

TEST(CostModel, InvalidateFallsBackToScratchAndReseeds) {
  Circuit c = makeMillerOpAmp();
  CostModel model(c, makeObjective(c, {.wirelength = 0.25, .symmetry = 2.0}));
  const std::size_t n = c.moduleCount();
  std::vector<Coord> w, h;
  moduleDims(c, std::vector<bool>(n, false), &w, &h);
  Rng rng(43);
  Placement p = packBStar(BStarTree::random(n, rng), w, h);
  model.reset(p);

  // Simulate the annealer accepting an infeasible (undecodable) state.
  model.invalidate();
  EXPECT_FALSE(model.seeded());
  Placement q = packBStar(BStarTree::random(n, rng), w, h);
  EXPECT_EQ(model.propose(q), model.evaluate(q));
  model.commit();
  EXPECT_TRUE(model.seeded());
  EXPECT_EQ(model.committedCost(), model.evaluate(q));
}

// The incremental annealer overload must retrace the scratch overload's
// trajectory bit for bit: same costs, same RNG draws, same acceptances,
// same best state.  This is the refactor's engine-level identity argument
// in miniature (tests/io_golden_test.cpp pins the full-engine numbers).
TEST(CostModel, AnnealTrajectoryMatchesScratchBitForBit) {
  Circuit c = makeSynthetic(
      {.name = "traj", .moduleCount = 24, .seed = 47, .symmetricFraction = 0.5});
  const std::size_t n = c.moduleCount();
  Objective obj =
      makeObjective(c, {.wirelength = 0.25, .symmetry = 2.0, .proximity = 2.0});

  auto decode = [&](const BStarTree& t) -> std::optional<Placement> {
    std::vector<Coord> w, h;
    moduleDims(c, std::vector<bool>(n, false), &w, &h);
    return packBStar(t, w, h);
  };
  auto move = [](const BStarTree& t, Rng& rng) {
    BStarTree next = t;
    next.perturb(rng);
    return next;
  };
  AnnealOptions opt;
  opt.maxSweeps = 60;
  opt.seed = 11;
  opt.sizeHint = n;

  CostModel scratchModel(c, obj);
  auto cost = [&](const BStarTree& t) { return scratchModel.evaluate(*decode(t)); };
  auto scratch = annealWithRestarts(BStarTree(n), cost, move, opt);

  CostModel model(c, obj);
  auto incremental = annealWithRestarts(BStarTree(n), model, decode, move, opt);

  EXPECT_EQ(scratch.bestCost, incremental.bestCost);
  EXPECT_EQ(scratch.movesTried, incremental.movesTried);
  EXPECT_EQ(scratch.movesAccepted, incremental.movesAccepted);
  EXPECT_EQ(scratch.sweeps, incremental.sweeps);
  Placement a = *decode(scratch.best);
  Placement b = *decode(incremental.best);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) EXPECT_EQ(a[m], b[m]);
}

// Engine-level determinism of the newly plumbed objective weights: a
// non-default weight set still produces bit-identical repeat runs on every
// backend, and the weights demonstrably steer the flat penalty backend.
TEST(CostModel, EngineWeightPlumbingIsDeterministic) {
  Circuit c = makeMillerOpAmp();
  EngineOptions opt;
  opt.maxSweeps = 40;
  opt.seed = 3;
  opt.wirelengthWeight = 0.5;
  opt.symmetryWeight = 1.25;
  opt.proximityWeight = 3.0;
  for (EngineBackend backend : allBackends()) {
    auto engine = makeEngine(backend);
    EngineResult a = engine->place(c, opt);
    EngineResult b = engine->place(c, opt);
    EXPECT_EQ(a.cost, b.cost) << engine->name();
    ASSERT_EQ(a.placement.size(), b.placement.size()) << engine->name();
    for (std::size_t m = 0; m < a.placement.size(); ++m) {
      EXPECT_EQ(a.placement[m], b.placement[m]) << engine->name();
    }
  }
}

// Concurrency contract (run under TSan by ci.sh): concurrent models over
// one shared const circuit are independent — same per-thread results as a
// sequential run, no data races.
TEST(CostModel, ConcurrentModelsOverSharedCircuitAreIndependent) {
  Circuit c = makeSynthetic(
      {.name = "mt", .moduleCount = 30, .seed = 53, .symmetricFraction = 0.5});
  const std::size_t n = c.moduleCount();
  Objective obj =
      makeObjective(c, {.wirelength = 0.25, .symmetry = 2.0, .proximity = 2.0});

  auto runOne = [&](std::uint64_t seed) {
    CostModel model(c, obj);
    std::vector<Coord> w, h;
    moduleDims(c, std::vector<bool>(n, false), &w, &h);
    Rng rng(seed);
    Placement p = packBStar(BStarTree::random(n, rng), w, h);
    model.reset(p);
    for (std::size_t i = 0; i < 300; ++i) {
      std::size_t m = rng.index(n);
      p[m] = p[m].translated((static_cast<Coord>(rng.index(5)) - 2) * kUm,
                             (static_cast<Coord>(rng.index(5)) - 2) * kUm);
      std::size_t moved[1] = {m};
      model.propose(p, moved);
      model.commit();
    }
    return model.committedCost();
  };

  double sequential[4];
  for (std::uint64_t t = 0; t < 4; ++t) sequential[t] = runOne(100 + t);

  double parallel[4];
  std::vector<std::thread> threads;
  for (std::uint64_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] { parallel[t] = runOne(100 + t); });
  }
  for (std::thread& th : threads) th.join();
  for (std::uint64_t t = 0; t < 4; ++t) EXPECT_EQ(sequential[t], parallel[t]);
}

}  // namespace
}  // namespace als
