// Golden regression for the embedded corpus: the deterministic annealing
// contract says a fixed (seed, maxSweeps) run is bit-identical on any
// machine, so the exact (cost, hpwl, area) of each backend on two corpus
// circuits can be pinned.  A future refactor that silently changes any
// placer's arithmetic, move mix, RNG consumption order or packing shifts
// these numbers and fails here — on purpose.  If a change is *intended* to
// alter results (a new move class, a different cooling default), re-pin the
// goldens in the same commit and say so in the commit message.
//
// The pins are tied to libstdc++'s distribution algorithms (the library's
// documented determinism envelope: the toolchain is pinned, results are
// machine-independent but not stdlib-implementation-independent).
#include <gtest/gtest.h>

#include "engine/placement_engine.h"
#include "io/corpus.h"
#include "test_util.h"

namespace als {
namespace {

struct Golden {
  EngineBackend backend;
  double cost;
  Coord hpwl;
  Coord area;
};

void expectGolden(CorpusCircuit which, const EngineOptions& opt,
                  std::span<const Golden> goldens) {
  Circuit c = loadCorpusCircuit(which);
  for (const Golden& g : goldens) {
    auto engine = makeEngine(g.backend);
    EngineResult r = engine->place(c, opt);
    std::string label =
        std::string(corpusName(which)) + "/" + std::string(engine->name());
    EXPECT_EQ(r.cost, g.cost) << label;
    EXPECT_EQ(r.hpwl, g.hpwl) << label;
    EXPECT_EQ(r.area, g.area) << label;
    // The pinned placements also satisfy the shared invariants; the
    // penalty/ILAC baselines (flat-bstar, slicing) do not guarantee
    // symmetry, the structural placers keep it exactly.
    bool structural = g.backend == EngineBackend::SeqPair ||
                      g.backend == EngineBackend::HBStar;
    test_util::expectPlacementInvariants(
        r.placement, c,
        {.symTolerance = structural ? 0 : test_util::kNoSymmetryCheck}, label);
  }
}

// Budget/seed of the pins: small enough to stay fast under TSan, past the
// first cooling plateaus so all move classes participate.
EngineOptions goldenOptions() {
  EngineOptions opt;
  opt.maxSweeps = 64;
  opt.seed = 1;
  return opt;
}

TEST(IoGolden, ApteAllBackends) {
  const Golden goldens[] = {
      {EngineBackend::FlatBStar, 304247020766.79346, 2490000, 117952000000},
      {EngineBackend::SeqPair, 239077145691.72638, 1698500, 112000000000},
      {EngineBackend::Slicing, 245265026059.52325, 1680000, 119572000000},
      {EngineBackend::HBStar, 243499189136.43295, 1851500, 104975000000},
  };
  expectGolden(CorpusCircuit::Apte, goldenOptions(), goldens);
}

TEST(IoGolden, Ami33AllBackends) {
  const Golden goldens[] = {
      {EngineBackend::FlatBStar, 312696920599.0874, 4592500, 69125000000},
      {EngineBackend::SeqPair, 204340758655.71295, 3286500, 54280000000},
      {EngineBackend::Slicing, 221105313164.31833, 3664000, 53808000000},
      {EngineBackend::HBStar, 182182163592.08167, 2674000, 60088000000},
  };
  expectGolden(CorpusCircuit::Ami33, goldenOptions(), goldens);
}

// GSRC-scale pin: exercises the partial-repack (flat-bstar) and incremental
// LCS (seqpair) hot paths at the size class they were built for, on a small
// sweep budget so the suite stays fast.  These two backends re-decode only
// what a move disturbed; the pins prove the asymptotic machinery does not
// drift the arithmetic by even one DBU.
TEST(IoGolden, N100HotPathBackends) {
  EngineOptions opt;
  opt.maxSweeps = 12;
  opt.seed = 1;
  const Golden goldens[] = {
      {EngineBackend::FlatBStar, 10699245148267.648, 73960500, 919020000000},
      {EngineBackend::SeqPair, 7388909403629.7334, 56907500, 742248000000},
  };
  expectGolden(CorpusCircuit::N100, opt, goldens);
}

// The golden configuration must itself be reproducible: a second run of the
// pinned configuration is bit-identical (placements included), so a golden
// failure can never be flakiness.
TEST(IoGolden, PinnedConfigurationIsBitStable) {
  Circuit c = loadCorpusCircuit(CorpusCircuit::Apte);
  EngineOptions opt = goldenOptions();
  for (EngineBackend backend : allBackends()) {
    auto engine = makeEngine(backend);
    EngineResult a = engine->place(c, opt);
    EngineResult b = engine->place(c, opt);
    EXPECT_EQ(a.cost, b.cost) << engine->name();
    ASSERT_EQ(a.placement.size(), b.placement.size()) << engine->name();
    for (std::size_t m = 0; m < a.placement.size(); ++m) {
      EXPECT_EQ(a.placement[m], b.placement[m]) << engine->name();
    }
  }
}

}  // namespace
}  // namespace als
