#include <gtest/gtest.h>

#include "geom/placement.h"
#include "geom/profile.h"
#include "geom/rect.h"

namespace als {
namespace {

TEST(Rect, BasicQueries) {
  Rect r{10, 20, 30, 40};
  EXPECT_EQ(r.xhi(), 40);
  EXPECT_EQ(r.yhi(), 60);
  EXPECT_EQ(r.area(), 1200);
  EXPECT_EQ(r.center2x().x, 50);
  EXPECT_EQ(r.center2x().y, 80);
}

TEST(Rect, OverlapIsStrictInterior) {
  Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.overlaps({5, 5, 10, 10}));
  EXPECT_FALSE(a.overlaps({10, 0, 5, 5}));  // edge-sharing is legal abutment
  EXPECT_FALSE(a.overlaps({0, 10, 5, 5}));
  EXPECT_FALSE(a.overlaps({20, 20, 1, 1}));
}

TEST(Rect, MirrorRoundTrips) {
  Rect a{3, 7, 11, 5};
  EXPECT_EQ(a.mirroredX(50).mirroredX(50), a);
  EXPECT_EQ(a.mirroredY(-4).mirroredY(-4), a);
  Rect m = a.mirroredX(20);
  EXPECT_EQ(m.x, 2 * 20 - 3 - 11);
  EXPECT_EQ(m.y, a.y);
}

TEST(Rect, UnionCoversBoth) {
  Rect u = Rect{0, 0, 4, 4}.unionWith({10, -2, 2, 3});
  EXPECT_EQ(u.xlo(), 0);
  EXPECT_EQ(u.ylo(), -2);
  EXPECT_EQ(u.xhi(), 12);
  EXPECT_EQ(u.yhi(), 4);
}

TEST(Placement, BoundingBoxAndDeadSpace) {
  Placement p;
  p.push({0, 0, 10, 10});
  p.push({10, 0, 10, 5});
  EXPECT_EQ(p.boundingBox(), (Rect{0, 0, 20, 10}));
  EXPECT_EQ(p.moduleArea(), 150);
  EXPECT_EQ(p.deadSpace(), 50);
}

TEST(Placement, LegalityDetectsOverlap) {
  Placement p;
  p.push({0, 0, 10, 10});
  p.push({9, 9, 5, 5});
  EXPECT_FALSE(p.isLegal());
  auto [i, j] = p.firstOverlap();
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(j, 1u);
}

TEST(Placement, NormalizeAnchorsAtOrigin) {
  Placement p;
  p.push({5, 7, 2, 2});
  p.push({9, 10, 3, 3});
  p.normalize();
  EXPECT_EQ(p.boundingBox().x, 0);
  EXPECT_EQ(p.boundingBox().y, 0);
}

TEST(Placement, HpwlCenterBased) {
  Placement p;
  p.push({0, 0, 2, 2});   // center (1,1)
  p.push({10, 0, 2, 2});  // center (11,1)
  p.push({0, 10, 2, 2});  // center (1,11)
  EXPECT_EQ(hpwl(p, {0, 1}), 10);
  EXPECT_EQ(hpwl(p, {0, 1, 2}), 20);
  EXPECT_EQ(hpwl(p, {0}), 0);
  EXPECT_EQ(totalHpwl(p, {{0, 1}, {0, 2}}), 20);
}

TEST(Placement, MirrorChecks) {
  // a at [0,10], b at [20,30]: mirror about x=15, axis2x = 30.
  Rect a{0, 0, 10, 4};
  Rect b{20, 0, 10, 4};
  EXPECT_TRUE(mirroredAboutX2(a, b, 30));
  EXPECT_TRUE(mirroredAboutX2(b, a, 30));  // relation is symmetric
  EXPECT_FALSE(mirroredAboutX2(a, b, 32));
  EXPECT_FALSE(mirroredAboutX2(a, Rect{20, 1, 10, 4}, 30));  // y mismatch
  EXPECT_TRUE(centeredOnX2(Rect{10, 0, 10, 4}, 30));
  EXPECT_FALSE(centeredOnX2(Rect{11, 0, 10, 4}, 30));
}

TEST(Profile, TopProfileMergesAndSteps) {
  // Two towers with a valley between them.
  std::vector<Rect> rects{{0, 0, 10, 20}, {10, 0, 10, 5}, {20, 0, 10, 20}};
  auto top = topProfile(rects);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], (ProfileStep{0, 10, 20}));
  EXPECT_EQ(top[1], (ProfileStep{10, 20, 5}));
  EXPECT_EQ(top[2], (ProfileStep{20, 30, 20}));
}

TEST(Profile, BottomProfileOfStackedRects) {
  std::vector<Rect> rects{{0, 5, 10, 5}, {0, 0, 4, 5}};
  auto bottom = bottomProfile(rects);
  ASSERT_EQ(bottom.size(), 2u);
  EXPECT_EQ(bottom[0], (ProfileStep{0, 4, 0}));
  EXPECT_EQ(bottom[1], (ProfileStep{4, 10, 5}));
}

TEST(Profile, GapsAreAbsent) {
  std::vector<Rect> rects{{0, 0, 5, 5}, {10, 0, 5, 5}};
  auto top = topProfile(rects);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].hi, 5);
  EXPECT_EQ(top[1].lo, 10);
}

TEST(Profile, SlideContactBasicAbutment) {
  std::vector<Rect> a{{0, 0, 10, 10}};
  std::vector<Rect> b{{0, 0, 5, 5}};
  // b (anchored at origin) must move 10 right to clear a.
  EXPECT_EQ(slideContactX(a, b), 10);
  EXPECT_EQ(slideContactY(a, b), 10);
}

TEST(Profile, SlideInterleavesIntoConcavity) {
  // a: tall left tower + low right shelf.  b: a block living above y=5
  // slides past the shelf until it hits the tower -> interleaving.
  std::vector<Rect> a{{0, 0, 4, 20}, {4, 0, 16, 5}};
  std::vector<Rect> b{{0, 6, 8, 8}};
  EXPECT_EQ(slideContactX(a, b), 4);  // clears the shelf, abuts the tower
}

TEST(Profile, SlideNoContact) {
  std::vector<Rect> a{{0, 0, 10, 5}};
  std::vector<Rect> b{{0, 10, 10, 5}};  // disjoint y-ranges: never collide
  EXPECT_EQ(slideContactX(a, b), noContact);
}

TEST(Profile, SlideYStacksOnTallestOverlap) {
  std::vector<Rect> lower{{0, 0, 10, 8}, {10, 0, 10, 3}};
  std::vector<Rect> upper{{5, 0, 10, 4}};
  // Upper spans x 5..15: must clear height 8 of the left block.
  EXPECT_EQ(slideContactY(lower, upper), 8);
}

TEST(AsciiArt, RendersNonEmpty) {
  Placement p;
  p.push({0, 0, 10, 10});
  p.push({10, 0, 10, 10});
  std::string art = asciiArt(p, {"A", "B"});
  EXPECT_NE(art.find('A'), std::string::npos);
  EXPECT_NE(art.find('B'), std::string::npos);
}

}  // namespace
}  // namespace als
