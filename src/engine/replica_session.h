// Backend-erased resumable annealing runs — the engine-level seam the
// parallel-tempering runner (runtime/tempering.h) drives.
//
// Each backend exposes a concrete session type (FlatBStarSession,
// SeqPairSession, SlicingSession, HBStarSession) that is its one-shot
// place function cut at sweep granularity.  `ReplicaSession` erases the
// backend so a runner can hold a heterogeneous fleet; `makeReplicaSession`
// maps `EngineOptions` to the native options exactly as the engine facade
// does (engine/backend_map.h), so a session run to completion in one go
// returns the same EngineResult `makeEngine(b)->place(...)` would —
// bit for bit.
//
// Threading contract: a session may move between threads across calls but
// is never called concurrently; the tempering runner advances replicas in
// fork-join rounds, which satisfies this by construction.
#pragma once

#include <memory>

#include "engine/placement_engine.h"

namespace als {

class ReplicaSession {
 public:
  virtual ~ReplicaSession() = default;

  virtual EngineBackend backend() const = 0;

  /// Advances up to `maxSweeps` temperature steps; returns the number
  /// executed (fewer only when the whole budget finished).
  virtual std::size_t runSweeps(std::size_t maxSweeps) = 0;
  /// Runs the remaining budget to completion.
  virtual void run() = 0;
  virtual bool finished() const = 0;

  virtual double currentCost() const = 0;
  virtual double bestCost() const = 0;
  virtual double temperature() const = 0;

  /// Swaps current states with `other` (replica exchange; no RNG consumed).
  /// Throws std::invalid_argument if the backends differ — exchange is only
  /// defined within one ladder; cross-backend transfer goes through
  /// `bestPlacement` + `reseedFromPlacement`.
  virtual void exchangeWith(ReplicaSession& other) = 0;

  /// Decodes the best state so far into the session scratch.  The reference
  /// stays valid until the session advances or decodes again.
  virtual const Placement& bestPlacement() = 0;

  /// Replaces the current state with a backend-native reconstruction of
  /// `placement` (the from_placement converters) and re-anchors.  Returns
  /// false — leaving the session untouched — for backends whose encoding
  /// cannot adopt a foreign placement (slicing, hbstar).
  virtual bool reseedFromPlacement(const Placement& placement) = 0;

  /// Finalizes (running any leftover budget first) and assembles the result
  /// exactly as the engine facade does for this backend; `bestSeed` is the
  /// session's constructing seed, `restartsRun`/`bestRestart` report one
  /// restart (the runner overwrites the aggregate fields).
  virtual EngineResult finish() = 0;
};

/// One resumable replica of `backend` on `circuit`.  `tempScale` multiplies
/// the calibrated t0 of every internal restart (1.0 = the sequential
/// schedule, exactly) — the temperature-ladder hook.
std::unique_ptr<ReplicaSession> makeReplicaSession(EngineBackend backend,
                                                   const Circuit& circuit,
                                                   const EngineOptions& options,
                                                   double tempScale = 1.0);

}  // namespace als
