#include "engine/placement_engine.h"

#include <array>

#include "bstar/flat_placer.h"
#include "bstar/hbstar.h"
#include "engine/backend_map.h"
#include "engine/place_scratch.h"
#include "seqpair/sa_placer.h"
#include "slicing/slicing_placer.h"

namespace als {

namespace {

// All backend option structs share the SA-knob field names (mapped by
// engine/backend_map.h) and all backend result structs share the output
// field names, so one wrapper maps both.
template <class BackendOptions, class BackendResult>
class BackendEngine final : public PlacementEngine {
 public:
  using PlaceFn = BackendResult (*)(const Circuit&, const BackendOptions&);

  BackendEngine(EngineBackend backend, PlaceFn place)
      : backend_(backend), place_(place) {}

  EngineBackend backend() const override { return backend_; }
  std::string_view name() const override { return backendName(backend_); }

  EngineResult place(const Circuit& circuit,
                     const EngineOptions& options) const override {
    BackendOptions opt = mapEngineOptions<BackendOptions>(options);
    BackendResult r = place_(circuit, opt);
    EngineResult result;
    result.placement = std::move(r.placement);
    result.area = r.area;
    result.hpwl = r.hpwl;
    result.cost = r.cost;
    result.movesTried = r.movesTried;
    result.sweeps = r.sweeps;
    result.seconds = r.seconds;
    result.restartsRun = 1;
    result.bestRestart = 0;
    result.bestSeed = options.seed;
    return result;
  }

 private:
  EngineBackend backend_;
  PlaceFn place_;
};

constexpr std::array<EngineBackend, 4> kBackends = {
    EngineBackend::FlatBStar,
    EngineBackend::SeqPair,
    EngineBackend::Slicing,
    EngineBackend::HBStar,
};

}  // namespace

std::span<const EngineBackend> allBackends() { return kBackends; }

std::string_view backendName(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::FlatBStar: return "flat-bstar";
    case EngineBackend::SeqPair: return "seqpair";
    case EngineBackend::Slicing: return "slicing";
    case EngineBackend::HBStar: return "hbstar";
  }
  return "unknown";
}

std::unique_ptr<PlacementEngine> makeEngine(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::FlatBStar:
      return std::make_unique<BackendEngine<FlatBStarOptions, FlatBStarResult>>(
          backend, &placeFlatBStarSA);
    case EngineBackend::SeqPair:
      return std::make_unique<
          BackendEngine<SeqPairPlacerOptions, SeqPairPlacerResult>>(
          backend, &placeSeqPairSA);
    case EngineBackend::Slicing:
      return std::make_unique<
          BackendEngine<SlicingPlacerOptions, SlicingPlacerResult>>(
          backend, &placeSlicingSA);
    case EngineBackend::HBStar:
      return std::make_unique<BackendEngine<HBPlacerOptions, HBPlacerResult>>(
          backend, &placeHBStarSA);
  }
  return nullptr;
}

}  // namespace als
