#include "engine/placement_engine.h"

#include <array>

#include "bstar/flat_placer.h"
#include "bstar/hbstar.h"
#include "engine/place_scratch.h"
#include "seqpair/sa_placer.h"
#include "slicing/slicing_placer.h"

namespace als {

namespace {

// All backend option structs share the SA-knob field names and all backend
// result structs share the output field names, so one wrapper maps both;
// adding a shared knob to EngineOptions is a single edit here.  Objective
// knobs that only some backends carry (a backend whose representation
// guarantees the constraint has no weight field for it) map through the
// `requires`-gated assignments below.
template <class BackendOptions, class BackendResult>
class BackendEngine final : public PlacementEngine {
 public:
  using PlaceFn = BackendResult (*)(const Circuit&, const BackendOptions&);

  BackendEngine(EngineBackend backend, PlaceFn place)
      : backend_(backend), place_(place) {}

  EngineBackend backend() const override { return backend_; }
  std::string_view name() const override { return backendName(backend_); }

  EngineResult place(const Circuit& circuit,
                     const EngineOptions& options) const override {
    BackendOptions opt;
    opt.wirelengthWeight = options.wirelengthWeight;
    opt.maxSweeps = options.maxSweeps;
    opt.timeLimitSec = options.timeLimitSec;
    opt.seed = options.seed;
    opt.coolingFactor = options.coolingFactor;
    opt.movesPerTemp = options.movesPerTemp;
    if constexpr (requires { opt.symmetryWeight; }) {
      opt.symmetryWeight = options.symmetryWeight;
    }
    if constexpr (requires { opt.proximityWeight; }) {
      opt.proximityWeight = options.proximityWeight;
    }
    if constexpr (requires { opt.outlineWeight; }) {
      opt.outlineWeight = options.outlineWeight;
    }
    if constexpr (requires { opt.maxWidth; }) {
      opt.maxWidth = options.maxWidth;
    }
    if constexpr (requires { opt.maxHeight; }) {
      opt.maxHeight = options.maxHeight;
    }
    if constexpr (requires { opt.targetAspect; }) {
      opt.targetAspect = options.targetAspect;
    }
    if constexpr (requires { opt.thermalWeight; }) {
      opt.thermalWeight = options.thermalWeight;
    }
    if constexpr (requires { opt.shapeMoveProb; }) {
      opt.shapeMoveProb = options.shapeMoveProb;
    }
    if (options.scratch != nullptr) {
      opt.scratch = subScratch(*options.scratch, opt.scratch);
    }
    BackendResult r = place_(circuit, opt);
    EngineResult result;
    result.placement = std::move(r.placement);
    result.area = r.area;
    result.hpwl = r.hpwl;
    result.cost = r.cost;
    result.movesTried = r.movesTried;
    result.sweeps = r.sweeps;
    result.seconds = r.seconds;
    result.restartsRun = 1;
    result.bestRestart = 0;
    result.bestSeed = options.seed;
    return result;
  }

 private:
  EngineBackend backend_;
  PlaceFn place_;
};

constexpr std::array<EngineBackend, 4> kBackends = {
    EngineBackend::FlatBStar,
    EngineBackend::SeqPair,
    EngineBackend::Slicing,
    EngineBackend::HBStar,
};

}  // namespace

std::span<const EngineBackend> allBackends() { return kBackends; }

std::string_view backendName(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::FlatBStar: return "flat-bstar";
    case EngineBackend::SeqPair: return "seqpair";
    case EngineBackend::Slicing: return "slicing";
    case EngineBackend::HBStar: return "hbstar";
  }
  return "unknown";
}

std::unique_ptr<PlacementEngine> makeEngine(EngineBackend backend) {
  switch (backend) {
    case EngineBackend::FlatBStar:
      return std::make_unique<BackendEngine<FlatBStarOptions, FlatBStarResult>>(
          backend, &placeFlatBStarSA);
    case EngineBackend::SeqPair:
      return std::make_unique<
          BackendEngine<SeqPairPlacerOptions, SeqPairPlacerResult>>(
          backend, &placeSeqPairSA);
    case EngineBackend::Slicing:
      return std::make_unique<
          BackendEngine<SlicingPlacerOptions, SlicingPlacerResult>>(
          backend, &placeSlicingSA);
    case EngineBackend::HBStar:
      return std::make_unique<BackendEngine<HBPlacerOptions, HBPlacerResult>>(
          backend, &placeHBStarSA);
  }
  return nullptr;
}

}  // namespace als
