// EngineOptions -> native backend-options mapping, shared by the engine
// facade (engine/placement_engine.cpp) and the resumable replica sessions
// (engine/replica_session.cpp) so the two construction paths cannot drift.
//
// All backend option structs share the SA-knob field names; objective knobs
// that only some backends carry (a backend whose representation guarantees
// the constraint has no weight field for it) map through the
// `requires`-gated assignments.  Adding a shared knob to EngineOptions is a
// single edit here.
#pragma once

#include "engine/place_scratch.h"
#include "engine/placement_engine.h"

namespace als {

template <class BackendOptions>
BackendOptions mapEngineOptions(const EngineOptions& options) {
  BackendOptions opt;
  opt.wirelengthWeight = options.wirelengthWeight;
  opt.maxSweeps = options.maxSweeps;
  opt.timeLimitSec = options.timeLimitSec;
  opt.seed = options.seed;
  opt.coolingFactor = options.coolingFactor;
  opt.movesPerTemp = options.movesPerTemp;
  if constexpr (requires { opt.symmetryWeight; }) {
    opt.symmetryWeight = options.symmetryWeight;
  }
  if constexpr (requires { opt.proximityWeight; }) {
    opt.proximityWeight = options.proximityWeight;
  }
  if constexpr (requires { opt.outlineWeight; }) {
    opt.outlineWeight = options.outlineWeight;
  }
  if constexpr (requires { opt.maxWidth; }) {
    opt.maxWidth = options.maxWidth;
  }
  if constexpr (requires { opt.maxHeight; }) {
    opt.maxHeight = options.maxHeight;
  }
  if constexpr (requires { opt.targetAspect; }) {
    opt.targetAspect = options.targetAspect;
  }
  if constexpr (requires { opt.thermalWeight; }) {
    opt.thermalWeight = options.thermalWeight;
  }
  if constexpr (requires { opt.shapeMoveProb; }) {
    opt.shapeMoveProb = options.shapeMoveProb;
  }
  if constexpr (requires { opt.cancel; }) {
    opt.cancel = options.cancel;
  }
  if (options.scratch != nullptr) {
    opt.scratch = subScratch(*options.scratch, opt.scratch);
  }
  return opt;
}

}  // namespace als
