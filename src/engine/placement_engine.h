// Unified facade over the library's annealing-based placement backends.
//
// The repo grows several independently developed placers — the flat B*-tree
// baseline (Section III's straw man), the symmetric-feasible sequence-pair
// placer (Section II), the slicing/Polish-expression baseline (ILAC-style)
// and the hierarchical HB*-tree placer (Section III proper).  Each has its
// own options/result structs for backend-specific knobs, but callers that
// just want "a placement of this circuit" — benches, batch drivers, future
// parallel-restart and sharding layers — need one seam.  `PlacementEngine`
// is that seam: one options struct carrying the shared SA knobs (sweep
// budget, seed, cooling, wirelength weight), one result struct carrying the
// shared outputs, and a factory keyed by `EngineBackend`.
//
// All engines honor the deterministic annealing contract of
// anneal/annealer.h: `maxSweeps` is the primary budget — for a fixed seed
// the result is bit-identical across machines and runs — and `timeLimitSec`
// is only a secondary wall-clock cap.
//
// Thread-safety contract (load-bearing for runtime/portfolio.h): every
// registered engine's `place()` is stateless and re-entrant.  It may touch
// only (a) its own stack, (b) the `const Circuit&` read-only, and (c) an RNG
// constructed inside the call from `options.seed`.  No backend may keep
// mutable statics, lazily cache into the circuit, or share an RNG across
// calls.  Concurrent `place()` calls on one engine instance — or on many
// engines over the same circuit — are therefore race-free, provided the
// caller does not mutate the circuit while placements run.  New backends
// must uphold this contract before registration in `makeEngine`.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "geom/placement.h"
#include "netlist/circuit.h"
#include "util/cancel_token.h"

namespace als {

struct PlaceScratch;  // engine/place_scratch.h

enum class EngineBackend {
  FlatBStar,  ///< flat B*-tree, constraints as penalties (bstar/flat_placer.h)
  SeqPair,    ///< symmetric-feasible sequence pair (seqpair/sa_placer.h)
  Slicing,    ///< normalized Polish expressions (slicing/slicing_placer.h)
  HBStar,     ///< hierarchical HB*-tree (bstar/hbstar.h)
};

/// Shared SA knobs; backend-specific options keep their native structs.
///
/// The objective weights follow the unified cost recipe of cost/objective.h
/// (one normalization for all backends).  A weight only participates where
/// the backend's representation does not satisfy the constraint by
/// construction: `symmetryWeight`/`proximityWeight` drive the flat penalty
/// placer, the outline/aspect knobs the sequence-pair placer; backends
/// without the matching term ignore the knob.
struct EngineOptions {
  double wirelengthWeight = 0.25;  ///< lambda, scaled by sqrt(module area)
  double symmetryWeight = 2.0;     ///< mirror-deviation penalty (penalty backends)
  double proximityWeight = 2.0;    ///< disconnected-group penalty (penalty backends)
  double outlineWeight = 4.0;      ///< outline-excess penalty (outline backends)
  Coord maxWidth = 0;              ///< 0 = unconstrained [DBU]
  Coord maxHeight = 0;             ///< 0 = unconstrained [DBU]
  double targetAspect = 0.0;       ///< 0 = no aspect objective (w/h target)

  /// Thermal pair-mismatch weight (cost/objective.h; 0 = term off, the
  /// default — backends are bit-identical to pre-thermal builds then).
  /// Needs Power annotations on the circuit to have any effect.
  double thermalWeight = 0.0;
  /// Probability that an SA move re-selects a soft module's realization
  /// from its Module::shapes curve instead of perturbing the topology
  /// (0 = shape moves off, the default; backends without shape support or
  /// circuits without curves ignore the knob and draw no RNG for it).
  double shapeMoveProb = 0.0;
  std::size_t maxSweeps = 256;     ///< primary budget: total SA sweeps
  double timeLimitSec = 0.0;       ///< secondary wall-clock cap (0 = uncapped)
  std::uint64_t seed = 1;
  double coolingFactor = 0.96;
  std::size_t movesPerTemp = 0;    ///< 0 = auto (10x module count)

  // Multi-start knobs, honored by the runtime layer (runtime/portfolio.h):
  // `maxSweeps` stays the *total* budget and is split across `numRestarts`
  // seed-scheduled slices fanned over `numThreads` threads.  A plain
  // `place()` call is always one restart on the calling thread and ignores
  // both fields.
  std::size_t numRestarts = 1;  ///< independent SA restarts (seed-split)
  std::size_t numThreads = 1;   ///< worker threads (0 = all hardware cores)

  // Parallel-tempering knobs (runtime/tempering.h): when `tempering` is on,
  // the runtime layer runs the `numRestarts` budget slices as coupled
  // replicas on a geometric temperature ladder instead of independent
  // restarts.  Results stay bit-identical at any thread count; with
  // `exchangeInterval = 0` AND `ladderRatio = 1.0` they degenerate to the
  // independent-restart portfolio exactly (see runtime/tempering.h for why
  // both are needed).  A plain `place()` call ignores all four fields.
  bool tempering = false;
  std::size_t exchangeInterval = 4;  ///< sweeps per round (0 = never exchange)
  /// t0 multiplier between rungs (> 0).  Ratios below 1 are legal and make
  /// the extra rungs COLDER (quench-leaning) — the configuration that wins
  /// the equal-budget comparison at bench budgets (bench_portfolio Part 3).
  double ladderRatio = 0.9;
  /// Cross-backend seeding during a tempering race: lagging ladders re-seed
  /// their worst replica from the global leader's placement at exchange
  /// points (via the from_placement converters; backends that cannot adopt
  /// a foreign placement keep their state).
  bool crossSeed = true;

  /// Optional warm decode buffers (engine/place_scratch.h): the engine maps
  /// the backend's sub-scratch into the native options.  Contents never
  /// influence results; at most one place() call may use it at a time.  The
  /// portfolio runner manages its own per-worker scratches and ignores a
  /// caller-provided one.
  PlaceScratch* scratch = nullptr;

  /// Cooperative cancellation (util/cancel_token.h), honored by every
  /// backend at sweep granularity and by the runtime layer at restart/round
  /// granularity — see anneal/annealer.h for the full contract.  A
  /// cancelled run returns best-so-far; such results are not deterministic
  /// and must not be cached.  Not owned; may be null.
  const CancelToken* cancel = nullptr;
};

struct EngineResult {
  Placement placement;
  Coord area = 0;
  Coord hpwl = 0;
  double cost = 0.0;
  std::size_t movesTried = 0;  ///< aggregate over all restarts
  std::size_t sweeps = 0;      ///< SA temperature steps executed (aggregate)
  double seconds = 0.0;        ///< wall clock of the whole run

  // Per-restart accounting, filled by the runtime layer; a plain `place()`
  // call reports itself as one restart.
  std::size_t restartsRun = 1;   ///< restarts actually executed
  std::size_t bestRestart = 0;   ///< schedule index of the winning restart
  std::uint64_t bestSeed = 0;    ///< seed the winning restart annealed with
};

class PlacementEngine {
 public:
  virtual ~PlacementEngine() = default;
  virtual EngineBackend backend() const = 0;
  virtual std::string_view name() const = 0;
  virtual EngineResult place(const Circuit& circuit,
                             const EngineOptions& options) const = 0;
};

/// All registered backends, in a stable order (useful for sweeps/benches).
std::span<const EngineBackend> allBackends();

std::string_view backendName(EngineBackend backend);

std::unique_ptr<PlacementEngine> makeEngine(EngineBackend backend);

}  // namespace als
