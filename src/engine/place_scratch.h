// The per-worker decode scratch bundle of the engine facade.
//
// Every backend's hot loop decodes its encoding into caller-owned buffers
// (bstar/flat_placer.h, seqpair/sa_placer.h, slicing/slicing_placer.h,
// bstar/hbstar.h each define their native scratch).  `PlaceScratch` bundles
// one of each so a driver that races backends — or runs many restart slices
// on one worker thread — can hand the SAME warm buffers to every run it
// hosts, no matter which backend a slice uses.
//
// Ownership & thread-safety contract (the "scratch-reuse contract"):
//   * a scratch is an inert bag of buffers — its contents NEVER influence
//     placement results, only whether the decode loop allocates;
//   * at most one `place()` call may use a given scratch at a time; reuse
//     across sequential runs, circuits and backends is encouraged (that is
//     the point), concurrent sharing is a race;
//   * the runtime layer (runtime/portfolio.h) creates one PlaceScratch per
//     pool worker per run/race/batch call and stamps the right sub-scratch
//     into each slice's options — slices on one worker run sequentially,
//     so the contract holds by construction (the scratches are per-call,
//     not per-runner: PortfolioRunner stays const and stateless, which is
//     what allows concurrent callers).
#pragma once

#include "bstar/flat_placer.h"
#include "bstar/hbstar.h"
#include "seqpair/sa_placer.h"
#include "slicing/slicing_placer.h"

namespace als {

struct PlaceScratch {
  FlatBStarScratch flatBStar;
  SeqPairScratch seqPair;
  SlicingScratch slicing;
  HBStarScratch hbStar;
};

/// Overload set mapping the aggregate to a backend's native sub-scratch
/// (selected by the pointer type of the backend's options field).
inline FlatBStarScratch* subScratch(PlaceScratch& s, FlatBStarScratch*) {
  return &s.flatBStar;
}
inline SeqPairScratch* subScratch(PlaceScratch& s, SeqPairScratch*) {
  return &s.seqPair;
}
inline SlicingScratch* subScratch(PlaceScratch& s, SlicingScratch*) {
  return &s.slicing;
}
inline HBStarScratch* subScratch(PlaceScratch& s, HBStarScratch*) {
  return &s.hbStar;
}

}  // namespace als
