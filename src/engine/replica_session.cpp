#include "engine/replica_session.h"

#include <stdexcept>
#include <utility>

#include "bstar/flat_placer.h"
#include "bstar/hbstar.h"
#include "engine/backend_map.h"
#include "seqpair/sa_placer.h"
#include "slicing/slicing_placer.h"

namespace als {

namespace {

template <class Session, class NativeOptions, class NativeResult>
class TypedReplica final : public ReplicaSession {
 public:
  TypedReplica(EngineBackend backend, const Circuit& circuit,
               const EngineOptions& options, double tempScale)
      : backend_(backend),
        seed_(options.seed),
        session_(circuit, mapEngineOptions<NativeOptions>(options),
                 tempScale) {}

  EngineBackend backend() const override { return backend_; }

  std::size_t runSweeps(std::size_t maxSweeps) override {
    return session_.runSweeps(maxSweeps);
  }
  void run() override { session_.run(); }
  bool finished() const override { return session_.finished(); }

  double currentCost() const override { return session_.currentCost(); }
  double bestCost() const override { return session_.bestCost(); }
  double temperature() const override { return session_.temperature(); }

  void exchangeWith(ReplicaSession& other) override {
    auto* peer = dynamic_cast<TypedReplica*>(&other);
    if (peer == nullptr) {
      throw std::invalid_argument(
          "replica exchange requires two sessions of the same backend");
    }
    session_.exchangeWith(peer->session_);
  }

  const Placement& bestPlacement() override {
    return session_.bestPlacement();
  }

  bool reseedFromPlacement(const Placement& placement) override {
    return session_.reseedFromPlacement(placement);
  }

  EngineResult finish() override {
    NativeResult r = session_.finish();
    EngineResult result;
    result.placement = std::move(r.placement);
    result.area = r.area;
    result.hpwl = r.hpwl;
    result.cost = r.cost;
    result.movesTried = r.movesTried;
    result.sweeps = r.sweeps;
    result.seconds = r.seconds;
    result.restartsRun = 1;
    result.bestRestart = 0;
    result.bestSeed = seed_;
    return result;
  }

 private:
  EngineBackend backend_;
  std::uint64_t seed_;
  Session session_;
};

}  // namespace

std::unique_ptr<ReplicaSession> makeReplicaSession(EngineBackend backend,
                                                   const Circuit& circuit,
                                                   const EngineOptions& options,
                                                   double tempScale) {
  switch (backend) {
    case EngineBackend::FlatBStar:
      return std::make_unique<
          TypedReplica<FlatBStarSession, FlatBStarOptions, FlatBStarResult>>(
          backend, circuit, options, tempScale);
    case EngineBackend::SeqPair:
      return std::make_unique<TypedReplica<SeqPairSession, SeqPairPlacerOptions,
                                           SeqPairPlacerResult>>(
          backend, circuit, options, tempScale);
    case EngineBackend::Slicing:
      return std::make_unique<TypedReplica<SlicingSession, SlicingPlacerOptions,
                                           SlicingPlacerResult>>(
          backend, circuit, options, tempScale);
    case EngineBackend::HBStar:
      return std::make_unique<
          TypedReplica<HBStarSession, HBPlacerOptions, HBPlacerResult>>(
          backend, circuit, options, tempScale);
  }
  return nullptr;
}

}  // namespace als
