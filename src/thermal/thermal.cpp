#include "thermal/thermal.h"

#include <algorithm>
#include <cmath>

namespace als {

ThermalField::ThermalField(std::vector<HeatSource> sources, const ThermalModel& model)
    : sources_(std::move(sources)), model_(model) {}

double ThermalField::temperatureAt(double xUm, double yUm) const {
  double t = 0.0;
  for (const HeatSource& s : sources_) {
    double dx = xUm - s.xUm;
    double dy = yUm - s.yUm;
    double r = std::sqrt(dx * dx + dy * dy);
    double contribution = model_.spreadCoeff * s.powerW *
                          std::log(model_.dieRadiusUm / (r + model_.sourceSizeUm));
    t += std::max(0.0, contribution);
  }
  return t;
}

std::int64_t quantizedContribution(const HeatSource& s, double xUm, double yUm,
                                   const ThermalModel& model) {
  double dx = xUm - s.xUm;
  double dy = yUm - s.yUm;
  double r = std::sqrt(dx * dx + dy * dy);
  double contribution = model.spreadCoeff * s.powerW *
                        std::log(model.dieRadiusUm / (r + model.sourceSizeUm));
  return std::llround(std::max(0.0, contribution) * kThermalQuantumPerK);
}

std::int64_t ThermalField::quantizedAt(double xUm, double yUm) const {
  std::int64_t t = 0;
  for (const HeatSource& s : sources_) {
    t += quantizedContribution(s, xUm, yUm, model_);
  }
  return t;
}

std::vector<HeatSource> sourcesFromPlacement(const Placement& p,
                                             std::span<const double> powerW) {
  std::vector<HeatSource> sources;
  for (std::size_t m = 0; m < p.size() && m < powerW.size(); ++m) {
    if (powerW[m] <= 0.0) continue;
    Point c2 = p[m].center2x();
    sources.push_back({static_cast<double>(c2.x) / 2000.0,
                       static_cast<double>(c2.y) / 2000.0, powerW[m]});
  }
  return sources;
}

std::vector<double> pairTemperatureMismatch(const Placement& p,
                                            const SymmetryGroup& group,
                                            const ThermalField& field) {
  std::vector<double> mismatch;
  mismatch.reserve(group.pairs.size());
  for (const SymPair& pr : group.pairs) {
    Point a2 = p[pr.a].center2x();
    Point b2 = p[pr.b].center2x();
    double ta = field.temperatureAt(static_cast<double>(a2.x) / 2000.0,
                                    static_cast<double>(a2.y) / 2000.0);
    double tb = field.temperatureAt(static_cast<double>(b2.x) / 2000.0,
                                    static_cast<double>(b2.y) / 2000.0);
    mismatch.push_back(std::abs(ta - tb));
  }
  return mismatch;
}

double worstPairMismatch(const Placement& p,
                         std::span<const SymmetryGroup> groups,
                         const ThermalField& field) {
  double worst = 0.0;
  for (const SymmetryGroup& g : groups) {
    for (double m : pairTemperatureMismatch(p, g, field)) {
      worst = std::max(worst, m);
    }
  }
  return worst;
}

}  // namespace als
