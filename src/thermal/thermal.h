// Steady-state on-chip thermal field and symmetry-driven mismatch analysis.
//
// Section II motivates placement symmetry thermally: bipolar (and to a
// lesser degree MOS) devices are strongly temperature sensitive, so
// "thermally-sensitive device couples should be placed symmetrically
// relative to the thermally-radiating devices.  Since the symmetrically
// placed sensitive components are equidistant from the radiating
// component(s), they see roughly identical ambient temperatures and no
// temperature induced mismatch results."
//
// The field model is the standard 2D steady-state point-source
// superposition: each radiator contributes DT(r) = P * k * ln(R / (r + r0))
// (clamped at 0 beyond the die radius R), with k the substrate spreading
// coefficient and r0 a source-size regularization.  Distances are evaluated
// between device centers in micrometres.  This reproduces the qualitative
// facts the argument needs — monotone decay with distance and linear
// superposition — so exact mirror geometry yields exactly zero mismatch
// when the radiators sit on the symmetry axis (tests assert this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/placement.h"
#include "netlist/module.h"

namespace als {

struct HeatSource {
  double xUm = 0.0;  ///< center coordinates in micrometres
  double yUm = 0.0;
  double powerW = 0.0;
};

struct ThermalModel {
  double spreadCoeff = 18.0;  ///< K per W per ln-unit (substrate spreading)
  double dieRadiusUm = 2000.0;
  double sourceSizeUm = 3.0;  ///< regularization radius r0
};

/// Fixed-point temperature quantum of the thermal objective: temperatures
/// are quantized to int64 micro-kelvin so the incremental cost layer can sum
/// them exactly (int64 addition is order-independent; the incremental total
/// equals a from-scratch total bit for bit — the cost/cost_model.h exactness
/// contract).
inline constexpr double kThermalQuantumPerK = 1e6;

/// One radiator's temperature contribution at a point, quantized [µK].
/// The double arithmetic mirrors ThermalField::temperatureAt exactly for a
/// single source; the int64 rounding happens per (source, point) pair, which
/// is what makes multi-source sums order-independent.
std::int64_t quantizedContribution(const HeatSource& s, double xUm, double yUm,
                                   const ThermalModel& model);

class ThermalField {
 public:
  ThermalField(std::vector<HeatSource> sources, const ThermalModel& model = {});

  /// Temperature rise above ambient at a point [K].
  double temperatureAt(double xUm, double yUm) const;

  /// Fixed-point temperature at a point [µK]: the sum of every source's
  /// quantizedContribution.  This is the scratch oracle of the incremental
  /// thermal objective — cost/cost_model.h computes the same per-source
  /// int64 terms, so its committed aggregates EXPECT_EQ this value.
  std::int64_t quantizedAt(double xUm, double yUm) const;

  const std::vector<HeatSource>& sources() const { return sources_; }

 private:
  std::vector<HeatSource> sources_;
  ThermalModel model_;
};

/// Heat sources from a placement: every module with a positive entry in
/// `powerW` radiates from its center.
std::vector<HeatSource> sourcesFromPlacement(const Placement& p,
                                             std::span<const double> powerW);

/// Temperature difference seen by each symmetric pair of a group [K];
/// entry i corresponds to group.pairs[i].
std::vector<double> pairTemperatureMismatch(const Placement& p,
                                            const SymmetryGroup& group,
                                            const ThermalField& field);

/// Worst pair mismatch over all groups [K].
double worstPairMismatch(const Placement& p,
                         std::span<const SymmetryGroup> groups,
                         const ThermalField& field);

}  // namespace als
