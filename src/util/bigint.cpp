#include "util/bigint.h"

#include <cassert>
#include <cmath>

namespace als {

BigUint::BigUint(std::uint64_t v) {
  if (v != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(v & 0xffffffffu));
    if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
  }
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::factorial(std::uint64_t n) {
  BigUint r(1);
  for (std::uint64_t i = 2; i <= n; ++i) r *= i;
  return r;
}

BigUint& BigUint::operator*=(std::uint64_t m) {
  if (m == 0 || isZero()) {
    limbs_.clear();
    return *this;
  }
  // Multiply by the two 32-bit halves to keep the carry within 64 bits.
  std::uint32_t lo = static_cast<std::uint32_t>(m & 0xffffffffu);
  std::uint32_t hi = static_cast<std::uint32_t>(m >> 32);
  if (hi == 0) {
    std::uint64_t carry = 0;
    for (auto& limb : limbs_) {
      std::uint64_t cur = static_cast<std::uint64_t>(limb) * lo + carry;
      limb = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    if (carry) limbs_.push_back(static_cast<std::uint32_t>(carry));
    return *this;
  }
  BigUint rhs(m);
  return *this *= rhs;
}

BigUint& BigUint::operator*=(const BigUint& rhs) {
  if (isZero() || rhs.isZero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint32_t> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(limbs_[i]) * rhs.limbs_[j] +
                          out[i + j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  limbs_ = std::move(out);
  trim();
  return *this;
}

BigUint& BigUint::divExact(std::uint64_t d) {
  assert(d != 0);
  if (d == 1 || isZero()) return *this;
  assert(d <= 0xffffffffull && "divExact supports 32-bit divisors");
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    std::uint64_t cur = (rem << 32) | limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(cur / d);
    rem = cur % d;
  }
  assert(rem == 0 && "divExact: not divisible");
  trim();
  return *this;
}

bool BigUint::operator<(const BigUint& rhs) const {
  if (limbs_.size() != rhs.limbs_.size()) return limbs_.size() < rhs.limbs_.size();
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] < rhs.limbs_[i];
  }
  return false;
}

std::string BigUint::toString() const {
  if (isZero()) return "0";
  std::vector<std::uint32_t> work = limbs_;
  std::string digits;
  while (!work.empty()) {
    // Divide the limb vector by 10^9 and emit the remainder as 9 digits.
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  return std::string(digits.rbegin(), digits.rend());
}

double BigUint::toDouble() const {
  double r = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    r = r * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return r;
}

std::uint64_t BigUint::toU64() const {
  std::uint64_t v = 0;
  if (limbs_.size() > 1) v = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

}  // namespace als
