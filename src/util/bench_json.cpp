#include "util/bench_json.h"

#include <cinttypes>
#include <cstdio>
#include <string_view>

namespace als {

namespace {

void appendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

BenchIo::BenchIo(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke_ = true;
    } else if (arg == "--json" && i + 1 < argc) {
      jsonPath_ = argv[++i];
    }
  }
}

BenchIo::~BenchIo() { finish(); }

void BenchIo::add(BenchRecord record) { records_.push_back(std::move(record)); }

void BenchIo::add(std::string backend, std::string circuit,
                  const EngineResult& r, std::size_t threads,
                  const EngineOptions* opt) {
  BenchRecord record;
  record.backend = std::move(backend);
  record.circuit = std::move(circuit);
  record.sweeps = r.sweeps;
  record.restarts = r.restartsRun;
  record.threads = threads;
  record.cost = r.cost;
  record.hpwl = static_cast<double>(r.hpwl);
  record.area = static_cast<double>(r.area);
  record.seconds = r.seconds;
  if (opt != nullptr) {
    record.wlWeight = opt->wirelengthWeight;
    record.symWeight = opt->symmetryWeight;
    record.proxWeight = opt->proximityWeight;
  }
  records_.push_back(std::move(record));
}

bool BenchIo::finish() {
  if (finished_ || jsonPath_.empty()) {
    finished_ = true;
    return true;
  }
  finished_ = true;

  std::string out = "[\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    out += "  {\"backend\": \"";
    appendEscaped(out, r.backend);
    out += "\", \"circuit\": \"";
    appendEscaped(out, r.circuit);
    out += "\", \"sweeps\": " + std::to_string(r.sweeps);
    out += ", \"restarts\": " + std::to_string(r.restarts);
    out += ", \"threads\": " + std::to_string(r.threads);
    out += ", \"cost\": ";
    appendNumber(out, r.cost);
    out += ", \"hpwl\": ";
    appendNumber(out, r.hpwl);
    out += ", \"area\": ";
    appendNumber(out, r.area);
    out += ", \"seconds\": ";
    appendNumber(out, r.seconds);
    out += ", \"wl_weight\": ";
    appendNumber(out, r.wlWeight);
    out += ", \"sym_weight\": ";
    appendNumber(out, r.symWeight);
    out += ", \"prox_weight\": ";
    appendNumber(out, r.proxWeight);
    out += i + 1 < records_.size() ? "},\n" : "}\n";
  }
  out += "]\n";

  std::FILE* f = std::fopen(jsonPath_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open '%s' for writing\n",
                 jsonPath_.c_str());
    return false;
  }
  bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::fprintf(stderr, "bench_json: short write to '%s'\n", jsonPath_.c_str());
  } else {
    std::fprintf(stderr, "bench_json: wrote %zu record(s) to %s\n",
                 records_.size(), jsonPath_.c_str());
  }
  return ok;
}

}  // namespace als
