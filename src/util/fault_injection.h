// Deterministic fault injection for the serve stack's disk path — the seam
// that makes crash/corruption recovery TESTABLE instead of theoretical.
//
// A `FaultInjector` is a process-global plan of failures, armed from a
// compact spec string (tools expose it as `--faults <spec>`, tests call
// `configure` directly).  The disk code it instruments —
// runtime/result_cache.h's store path — consults it at three labeled
// points: once per entry write (`onDiskWrite`), once per atomic rename
// (`onRename`), and at named crash points (`onCrashPoint`).  When the
// injector is idle (the default, and the only state production code ever
// runs in) every hook is a single relaxed atomic load — no locks, no
// branches beyond one predictable test.
//
// Faults fire on deterministic OPERATION COUNTS, not timers or randomness:
// "the 3rd write fails" reproduces identically on every machine and under
// every sanitizer, which is what lets ci.sh assert exact recovery behavior
// (quarantine counts, degradation flags, bit-identical recomputes).
//
// ## Spec grammar
//
// Comma-separated directives; counts are 1-based occurrence indices:
//
//   write-fail@N        Nth entry write fails outright (simulated ENOSPC —
//                       nothing lands on disk, the cache counts a disk
//                       failure)
//   write-fail@N+       Nth and every later write fails (a full disk stays
//                       full — drives the memory-only degradation path)
//   write-trunc@N:K     Nth entry write silently stops after K bytes and is
//                       then renamed into place — the torn-file case a
//                       crash mid-flush leaves behind (detected later by
//                       the checksum trailer, never served)
//   rename-torn@N       Nth rename is skipped: the `.tmp` file stays, no
//                       entry appears — the crash-between-write-and-rename
//                       window (startup scrub removes the orphan)
//   crash@LABEL:N       Nth arrival at crash point LABEL calls _Exit —
//                       the kill-and-restart cases.  Labels in the tree:
//                       `store-after-write` (temp file written, not yet
//                       renamed), `store-after-rename` (entry durable,
//                       process dies before replying) and
//                       `serve-after-result` (tools/als_serve: RESULT
//                       delivered, daemon dies immediately after)
//
// Unknown directives are configuration errors (a silently dropped fault
// would make a chaos test pass vacuously).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace als {

/// What `onDiskWrite` tells the store path to do for this write.
struct DiskWriteFault {
  bool fail = false;            ///< abort the write (simulated ENOSPC)
  std::int64_t truncateAt = -1; ///< >= 0: write only this many bytes
};

class FaultInjector {
 public:
  /// The process-global injector every instrumented path consults.
  static FaultInjector& global();

  /// Parses and arms `spec` (see grammar above), REPLACING any previous
  /// plan and resetting all counters.  Returns empty on success, else an
  /// error message; on error the previous plan is cleared (fail closed).
  std::string configure(std::string_view spec);

  /// Disarms everything and resets counters (tests call this in teardown).
  void reset();

  /// True when any directive is armed — the fast path's only check.
  bool active() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Called once per cache entry write, BEFORE any bytes are written.
  DiskWriteFault onDiskWrite();

  /// Called once per atomic rename; true = skip the rename and leave the
  /// temp file behind (the torn-rename crash window).
  bool onRename();

  /// Called at labeled crash points; calls `_Exit` when the plan says this
  /// arrival should crash.  A no-op when idle.
  void onCrashPoint(std::string_view label);

 private:
  struct Directive {
    enum class Kind { WriteFail, WriteTrunc, RenameTorn, Crash };
    Kind kind = Kind::WriteFail;
    std::uint64_t nth = 0;      ///< 1-based occurrence index
    bool sticky = false;        ///< "@N+": fire on every occurrence >= nth
    std::int64_t arg = -1;      ///< truncate byte count (WriteTrunc)
    std::string label;          ///< crash point name (Crash)
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::vector<Directive> plan_;
  std::uint64_t writeOps_ = 0;
  std::uint64_t renameOps_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> crashCounts_;
};

}  // namespace als
