#include "util/flat_records.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace als {

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  void skipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool expect(char c) {
    skipWs();
    if (pos >= text.size() || text[pos] != c) {
      error = "expected '" + std::string(1, c) + "' at offset " +
              std::to_string(pos);
      return false;
    }
    ++pos;
    return true;
  }
  bool peek(char c) {
    skipWs();
    return pos < text.size() && text[pos] == c;
  }
  bool parseString(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        // bench_json only escapes ", \, \n, \t and control bytes; \uXXXX is
        // passed through verbatim (keys never contain it).
        char e = text[pos++];
        switch (e) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: out->push_back(e);
        }
      } else {
        out->push_back(c);
      }
    }
    return expect('"');
  }
  bool parseNumber(double* out) {
    skipWs();
    const char* start = text.data() + pos;
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(start, &end);
    if (end == start || errno == ERANGE) {
      error = "bad number at offset " + std::to_string(pos);
      return false;
    }
    pos += static_cast<std::size_t>(end - start);
    *out = v;
    return true;
  }
  bool parseRecord(FlatRecord* out) {
    if (!expect('{')) return false;
    if (peek('}')) return expect('}');
    while (true) {
      std::string key;
      if (!parseString(&key) || !expect(':')) return false;
      skipWs();
      if (peek('"')) {
        std::string v;
        if (!parseString(&v)) return false;
        out->strings[key] = std::move(v);
      } else {
        double v = 0.0;
        if (!parseNumber(&v)) return false;
        out->numbers[key] = v;
      }
      if (peek(',')) {
        if (!expect(',')) return false;
        continue;
      }
      return expect('}');
    }
  }
  bool parseArray(std::vector<FlatRecord>* out) {
    if (!expect('[')) return false;
    if (peek(']')) return expect(']');
    while (true) {
      FlatRecord r;
      if (!parseRecord(&r)) return false;
      out->push_back(std::move(r));
      if (peek(',')) {
        if (!expect(',')) return false;
        continue;
      }
      return expect(']');
    }
  }
};

}  // namespace

bool parseFlatRecords(std::string_view text, std::vector<FlatRecord>& out,
                      std::string& error) {
  Parser p{text, 0, {}};
  if (!p.parseArray(&out)) {
    error = std::move(p.error);
    return false;
  }
  return true;
}

bool loadFlatRecords(const std::string& path, std::vector<FlatRecord>& out,
                     std::string& error, std::string* raw) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    error = "cannot open '" + path + "'";
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  if (!parseFlatRecords(text, out, error)) {
    error = path + ": " + error;
    return false;
  }
  if (raw != nullptr) *raw = std::move(text);
  return true;
}

}  // namespace als
