#include "util/fault_injection.h"

#include <charconv>
#include <cstdlib>

namespace als {

namespace {

bool parseCount(std::string_view token, std::uint64_t& out) {
  if (token.empty()) return false;
  const char* first = token.data();
  auto [ptr, ec] = std::from_chars(first, first + token.size(), out);
  return ec == std::errc() && ptr == first + token.size() && out > 0;
}

}  // namespace

FaultInjector& FaultInjector::global() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_.clear();
  crashCounts_.clear();
  writeOps_ = 0;
  renameOps_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

std::string FaultInjector::configure(std::string_view spec) {
  reset();
  std::vector<Directive> plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    std::string_view item = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;

    auto bad = [&](const char* why) {
      return "bad fault directive '" + std::string(item) + "': " + why;
    };
    std::size_t at = item.find('@');
    if (at == std::string_view::npos) return bad("missing '@<count>'");
    std::string_view kind = item.substr(0, at);
    std::string_view rest = item.substr(at + 1);

    Directive d;
    if (kind == "write-fail") {
      d.kind = Directive::Kind::WriteFail;
      if (!rest.empty() && rest.back() == '+') {
        d.sticky = true;
        rest.remove_suffix(1);
      }
      if (!parseCount(rest, d.nth)) return bad("count must be a positive int");
    } else if (kind == "write-trunc") {
      d.kind = Directive::Kind::WriteTrunc;
      std::size_t colon = rest.find(':');
      if (colon == std::string_view::npos) return bad("needs '@N:bytes'");
      std::uint64_t bytes = 0;
      if (!parseCount(rest.substr(0, colon), d.nth) ||
          !parseCount(rest.substr(colon + 1), bytes)) {
        return bad("counts must be positive ints");
      }
      d.arg = static_cast<std::int64_t>(bytes);
    } else if (kind == "rename-torn") {
      d.kind = Directive::Kind::RenameTorn;
      if (!parseCount(rest, d.nth)) return bad("count must be a positive int");
    } else if (kind == "crash") {
      d.kind = Directive::Kind::Crash;
      std::size_t colon = rest.find(':');
      if (colon == std::string_view::npos) return bad("needs '@label:N'");
      d.label = std::string(rest.substr(0, colon));
      if (d.label.empty() || !parseCount(rest.substr(colon + 1), d.nth)) {
        return bad("needs a label and a positive count");
      }
    } else {
      return bad("unknown fault kind");
    }
    plan.push_back(std::move(d));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = std::move(plan);
  armed_.store(!plan_.empty(), std::memory_order_relaxed);
  return {};
}

DiskWriteFault FaultInjector::onDiskWrite() {
  DiskWriteFault fault;
  if (!active()) return fault;
  std::lock_guard<std::mutex> lock(mutex_);
  ++writeOps_;
  for (const Directive& d : plan_) {
    if (d.kind == Directive::Kind::WriteFail &&
        (writeOps_ == d.nth || (d.sticky && writeOps_ >= d.nth))) {
      fault.fail = true;
    } else if (d.kind == Directive::Kind::WriteTrunc && writeOps_ == d.nth) {
      fault.truncateAt = d.arg;
    }
  }
  return fault;
}

bool FaultInjector::onRename() {
  if (!active()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  ++renameOps_;
  for (const Directive& d : plan_) {
    if (d.kind == Directive::Kind::RenameTorn && renameOps_ == d.nth) {
      return true;
    }
  }
  return false;
}

void FaultInjector::onCrashPoint(std::string_view label) {
  if (!active()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t* count = nullptr;
  for (auto& [name, n] : crashCounts_) {
    if (name == label) count = &n;
  }
  if (count == nullptr) {
    crashCounts_.emplace_back(std::string(label), 0);
    count = &crashCounts_.back().second;
  }
  ++*count;
  for (const Directive& d : plan_) {
    if (d.kind == Directive::Kind::Crash && d.label == label &&
        *count == d.nth) {
      // The whole point: die NOW, mid-operation, without unwinding — the
      // closest a test can get to `kill -9` at a chosen instruction.
      std::_Exit(66);
    }
  }
}

}  // namespace als
