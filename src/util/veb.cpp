#include "util/veb.h"

#include <cassert>

namespace als {

namespace {
constexpr std::uint64_t kNoElem = ~0ull;

std::uint64_t ceilPow2(std::uint64_t v) {
  std::uint64_t p = 2;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

struct VebTree::Node {
  std::uint64_t universe;     // power of two, >= 2
  std::uint64_t minVal = kNoElem;
  std::uint64_t maxVal = kNoElem;
  std::uint64_t lowBits = 0;  // number of low bits (universe = 2^(low+high))
  std::vector<std::unique_ptr<Node>> clusters;  // lazily allocated
  std::unique_ptr<Node> summary;                // lazily allocated

  explicit Node(std::uint64_t u) : universe(u) {
    if (u > 2) {
      // Split the k bits into ceil(k/2) high and floor(k/2) low bits.
      std::uint64_t k = 0;
      while ((1ull << k) < u) ++k;
      lowBits = k / 2;
      clusters.resize(1ull << (k - lowBits));
    }
  }

  std::uint64_t high(std::uint64_t x) const { return x >> lowBits; }
  std::uint64_t low(std::uint64_t x) const { return x & ((1ull << lowBits) - 1); }
  std::uint64_t index(std::uint64_t h, std::uint64_t l) const {
    return (h << lowBits) | l;
  }
  bool isEmpty() const { return minVal == kNoElem; }

  void insert(std::uint64_t x) {
    if (isEmpty()) {
      minVal = maxVal = x;
      return;
    }
    if (x == minVal || x == maxVal) return;
    if (x < minVal) std::swap(x, minVal);
    if (x > maxVal) maxVal = x;
    if (universe == 2) return;  // min/max fully describe a 2-universe
    std::uint64_t h = high(x), l = low(x);
    auto& cluster = clusters[h];
    if (!cluster) cluster = std::make_unique<Node>(1ull << lowBits);
    if (cluster->isEmpty()) {
      if (!summary) summary = std::make_unique<Node>(clusters.size());
      summary->insert(h);
      cluster->minVal = cluster->maxVal = l;
    } else {
      cluster->insert(l);
    }
  }

  bool contains(std::uint64_t x) const {
    if (isEmpty()) return false;
    if (x == minVal || x == maxVal) return true;
    if (universe == 2) return false;
    const auto& cluster = clusters[high(x)];
    return cluster && cluster->contains(low(x));
  }

  void erase(std::uint64_t x) {
    if (minVal == maxVal) {
      if (x == minVal) minVal = maxVal = kNoElem;
      return;
    }
    if (universe == 2) {
      // Two distinct elements 0 and 1; removing one leaves the other.
      minVal = maxVal = (x == 0) ? 1 : 0;
      return;
    }
    if (x == minVal) {
      // Pull the new minimum out of the first non-empty cluster.
      std::uint64_t h = summary->minVal;
      x = index(h, clusters[h]->minVal);
      minVal = x;
    }
    std::uint64_t h = high(x), l = low(x);
    auto& cluster = clusters[h];
    if (cluster && cluster->contains(l)) {
      cluster->erase(l);
      if (cluster->isEmpty()) summary->erase(h);
    }
    if (x == maxVal) {
      if (!summary || summary->isEmpty()) {
        maxVal = minVal;
      } else {
        std::uint64_t hm = summary->maxVal;
        maxVal = index(hm, clusters[hm]->maxVal);
      }
    }
  }

  std::optional<std::uint64_t> successor(std::uint64_t x) const {
    if (isEmpty() || x >= maxVal) return std::nullopt;
    if (x < minVal) return minVal;
    if (universe == 2) return 1;  // x == 0 < maxVal == 1 here
    std::uint64_t h = high(x), l = low(x);
    const auto& cluster = clusters[h];
    if (cluster && !cluster->isEmpty() && l < cluster->maxVal) {
      return index(h, *cluster->successor(l));
    }
    auto nextH = summary ? summary->successor(h) : std::nullopt;
    if (!nextH) return std::nullopt;
    return index(*nextH, clusters[*nextH]->minVal);
  }

  /// Empties the subtree, visiting only non-empty clusters (they are
  /// exactly the summary's elements).  Allocations are kept.
  void clearNode() {
    if (universe > 2 && summary && !summary->isEmpty()) {
      std::uint64_t h = summary->minVal;
      for (;;) {
        clusters[h]->clearNode();
        auto next = summary->successor(h);
        if (!next) break;
        h = *next;
      }
      summary->clearNode();
    }
    minVal = maxVal = kNoElem;
  }

  /// Allocates every cluster and summary recursively so no later insert
  /// path ever hits a cold unique_ptr.
  void materialize() {
    if (universe == 2) return;
    for (auto& c : clusters) {
      if (!c) c = std::make_unique<Node>(1ull << lowBits);
      c->materialize();
    }
    if (!summary) summary = std::make_unique<Node>(clusters.size());
    summary->materialize();
  }

  std::optional<std::uint64_t> predecessor(std::uint64_t x) const {
    if (isEmpty() || x <= minVal) return std::nullopt;
    if (x > maxVal) return maxVal;
    if (universe == 2) return 0;  // x == 1 > minVal == 0 here
    std::uint64_t h = high(x), l = low(x);
    const auto& cluster = clusters[h];
    if (cluster && !cluster->isEmpty() && l > cluster->minVal) {
      return index(h, *cluster->predecessor(l));
    }
    auto prevH = summary ? summary->predecessor(h) : std::nullopt;
    if (!prevH) return x > minVal ? std::optional(minVal) : std::nullopt;
    return index(*prevH, clusters[*prevH]->maxVal);
  }
};

VebTree::VebTree() : VebTree(2) {}

VebTree::VebTree(std::uint64_t universeSize)
    : root_(std::make_unique<Node>(ceilPow2(universeSize < 2 ? 2 : universeSize))) {}

void VebTree::clear() {
  if (size_ != 0) root_->clearNode();
  size_ = 0;
}

void VebTree::prewarm() {
  root_->materialize();
  materialized_ = true;
}

void VebTree::resetUniverse(std::uint64_t universeSize) {
  std::uint64_t u = ceilPow2(universeSize < 2 ? 2 : universeSize);
  if (u != root_->universe) {
    root_ = std::make_unique<Node>(u);
    size_ = 0;
    materialized_ = false;
  } else {
    clear();
  }
  if (!materialized_) prewarm();
}

VebTree::~VebTree() = default;
VebTree::VebTree(VebTree&&) noexcept = default;
VebTree& VebTree::operator=(VebTree&&) noexcept = default;

void VebTree::insert(std::uint64_t x) {
  assert(x < root_->universe);
  if (!root_->contains(x)) {
    root_->insert(x);
    ++size_;
  }
}

void VebTree::erase(std::uint64_t x) {
  if (root_->contains(x)) {
    root_->erase(x);
    --size_;
  }
}

bool VebTree::contains(std::uint64_t x) const {
  return x < root_->universe && root_->contains(x);
}

std::optional<std::uint64_t> VebTree::min() const {
  if (root_->isEmpty()) return std::nullopt;
  return root_->minVal;
}

std::optional<std::uint64_t> VebTree::max() const {
  if (root_->isEmpty()) return std::nullopt;
  return root_->maxVal;
}

std::optional<std::uint64_t> VebTree::successor(std::uint64_t x) const {
  return root_->successor(x);
}

std::optional<std::uint64_t> VebTree::predecessor(std::uint64_t x) const {
  return root_->predecessor(x);
}

std::uint64_t VebTree::universe() const { return root_->universe; }

}  // namespace als
