// van Emde Boas tree over the universe [0, 2^k).
//
// Section II cites an "efficient model of priority queue [26]" giving the
// symmetric-feasible sequence-pair packer a complexity of O(G * n log log n)
// per code evaluation.  That bound comes from replacing the balanced-BST
// priority structure of the longest-common-subsequence packer with an integer
// priority queue supporting insert / erase / predecessor / successor in
// O(log log U).  This file provides that substrate.
//
// The classic recursive vEB layout is used: a tree over universe U = 2^k has
// sqrt(U) clusters over the low half-bits plus a summary over the high
// half-bits.  min/max are stored unpacked (min is *not* stored recursively),
// which yields the textbook O(log log U) bounds.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace als {

class VebTree {
 public:
  /// Smallest tree (universe [0, 2)); grow it with resetUniverse().  The
  /// default lets hot-path scratch structs own a warm tree by value.
  VebTree();

  /// Creates a tree over universe [0, universeSize); universeSize is rounded
  /// up to the next power of two (minimum 2).
  explicit VebTree(std::uint64_t universeSize);
  ~VebTree();
  VebTree(VebTree&&) noexcept;
  VebTree& operator=(VebTree&&) noexcept;
  VebTree(const VebTree&) = delete;
  VebTree& operator=(const VebTree&) = delete;

  void insert(std::uint64_t x);
  void erase(std::uint64_t x);
  bool contains(std::uint64_t x) const;

  std::optional<std::uint64_t> min() const;
  std::optional<std::uint64_t> max() const;
  /// Smallest element strictly greater than x.
  std::optional<std::uint64_t> successor(std::uint64_t x) const;
  /// Largest element strictly smaller than x.
  std::optional<std::uint64_t> predecessor(std::uint64_t x) const;

  /// Empties the tree in O(occupied · log log U), walking only the
  /// clusters that hold elements; every allocation is kept, so a warm tree
  /// can be cleared and refilled without touching the heap.
  void clear();

  /// Materializes every cluster and summary recursively (O(U) nodes once),
  /// after which insert/erase never allocate — the steady-state guarantee
  /// the per-move decode loops rely on.
  void prewarm();

  /// Re-targets the tree at a (rounded-up) universe: an equal universe is
  /// an O(occupied) clear(); a different one rebuilds and prewarms.  Either
  /// way the tree ends empty, materialized, and allocation-free to use.
  void resetUniverse(std::uint64_t universeSize);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::uint64_t universe() const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  bool materialized_ = false;  ///< prewarm() done; never reverts (no node is freed)
};

}  // namespace als
