// Arbitrary-precision unsigned integer, sized for exact combinatorial counts.
//
// The Lemma of Section II bounds the number of symmetric-feasible sequence-pairs
// by (n!)^2 / prod_k (2*p_k + s_k)!.  Already for the paper's 7-cell example the
// total sequence-pair count is 25,401,600^... (n!)^2 grows far past 64 bits for
// every Table-I circuit, so the counting API below works on exact big integers.
//
// Only the operations the counting code needs are provided: construction from
// u64, multiply by u64, big*big multiply, divmod by small divisor (used for
// decimal printing), comparison, and conversion to string / double.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace als {

class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t v);

  /// Exact n! computed by repeated multiplication.
  static BigUint factorial(std::uint64_t n);

  BigUint& operator*=(std::uint64_t m);
  BigUint& operator*=(const BigUint& rhs);
  friend BigUint operator*(BigUint lhs, const BigUint& rhs) { return lhs *= rhs; }

  /// Exact division; requires that *this is divisible by d (asserted).
  BigUint& divExact(std::uint64_t d);

  bool isZero() const { return limbs_.empty(); }
  bool operator==(const BigUint& rhs) const { return limbs_ == rhs.limbs_; }
  bool operator<(const BigUint& rhs) const;

  /// Decimal representation (no leading zeros; "0" for zero).
  std::string toString() const;

  /// Best-effort double conversion (may overflow to +inf for huge values).
  double toDouble() const;

  /// Fits in u64?  If so, value() returns it.
  bool fitsU64() const { return limbs_.size() <= 2; }
  std::uint64_t toU64() const;

 private:
  // Base 2^32 little-endian limbs; empty vector encodes zero.
  std::vector<std::uint32_t> limbs_;
  void trim();
};

}  // namespace als
