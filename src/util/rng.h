// Deterministic random source shared by all stochastic components.
//
// Every annealer / generator in the library takes an explicit seed so that
// each experiment binary is reproducible run-to-run; this thin wrapper keeps
// the distribution helpers in one place.
#pragma once

#include <cstdint>
#include <random>

namespace als {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n); n must be > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_));
  }

  /// Uniform real in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal with given mean / stddev.
  double normal(double mean, double sigma) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  bool coin() { return uniform() < 0.5; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace als
