// Machine-readable bench harness shared by the plain bench binaries.
//
// Every bench accepts:
//   --json <path>  append each experiment's headline numbers as one record
//                  and write the whole run as a JSON array to <path> (the
//                  format of the repo's BENCH_*.json trajectory files);
//   --smoke        short deterministic configuration: wall-clock budgets
//                  are replaced by small fixed sweep budgets so a CI smoke
//                  run finishes in seconds and is bit-reproducible.
//
// Records carry the canonical keys {backend, circuit, sweeps, restarts,
// threads, cost, hpwl, area, seconds} plus the unified objective weights
// {wl_weight, sym_weight, prox_weight} (cost/objective.h); quantities a
// bench does not have (e.g. sweeps of a non-SA experiment) stay zero.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "engine/placement_engine.h"

namespace als {

struct BenchRecord {
  std::string backend;     ///< engine / placer / configuration name
  std::string circuit;     ///< which input the record measures
  std::size_t sweeps = 0;
  std::size_t restarts = 0;
  std::size_t threads = 0;
  double cost = 0.0;
  double hpwl = 0.0;       ///< DBU
  double area = 0.0;       ///< DBU^2
  double seconds = 0.0;
  // Unified objective weight knobs the run was *configured* with (0 = not
  // recorded); see cost/objective.h for the shared normalization recipe.
  // A backend whose representation satisfies a constraint by construction
  // ignores that knob (e.g. sym_weight on seqpair/hbstar is inert).
  double wlWeight = 0.0;
  double symWeight = 0.0;
  double proxWeight = 0.0;
};

class BenchIo {
 public:
  BenchIo(int argc, char** argv);
  ~BenchIo();  // flushes --json output if finish() was not called

  BenchIo(const BenchIo&) = delete;
  BenchIo& operator=(const BenchIo&) = delete;

  bool smoke() const { return smoke_; }

  /// Applies the bench budget to any SA options struct (they share the
  /// field names): the paper-style wall-clock budget normally, a fixed
  /// deterministic sweep budget in --smoke mode.
  template <class Options>
  void applyBudget(Options& opt, double seconds,
                   std::size_t smokeSweeps = 60) const {
    if (smoke_) {
      opt.timeLimitSec = 0.0;
      opt.maxSweeps = smokeSweeps;
    } else {
      opt.timeLimitSec = seconds;
      opt.maxSweeps = 0;
    }
  }

  void add(BenchRecord record);

  /// Convenience: record an engine-facade result.  When `opt` is given, the
  /// record also carries the objective weights the run placed with.
  void add(std::string backend, std::string circuit, const EngineResult& r,
           std::size_t threads = 1, const EngineOptions* opt = nullptr);

  /// Writes the JSON file now (no-op without --json); returns false and
  /// prints to stderr on I/O failure.  Called by the destructor otherwise.
  bool finish();

 private:
  std::string jsonPath_;
  std::vector<BenchRecord> records_;
  bool smoke_ = false;
  bool finished_ = false;
};

}  // namespace als
