#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace als {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? " | " : "| ") << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c ? "-|-" : "|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::fmtPercent(double v, int precision) {
  return fmt(v * 100.0, precision) + "%";
}

}  // namespace als
