// Epoch-stamped mark set: the allocation-free replacement for the
// clear-a-vector<bool>-per-call membership-marking idiom.
//
// A mark set over n slots supports "start a fresh round" in O(1): instead of
// zeroing (or reallocating) a flag vector, each slot stores the epoch in
// which it was last marked and a slot counts as marked exactly when its
// stamp equals the current epoch.  The backing vector only grows, so warm
// instances never touch the heap — which is what lets per-move hot paths
// (dirty-net marking, Polish-expression validation, index deduplication)
// run allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace als {

class EpochMarks {
 public:
  /// Starts a fresh round over `n` slots; previously marked slots become
  /// unmarked in O(1).
  void beginRound(std::size_t n) {
    if (stamp_.size() < n) stamp_.resize(n, 0);
    if (++epoch_ == 0) {
      // 64-bit wrap is unreachable in practice; handle it anyway so the
      // class is correct unconditionally.
      std::fill(stamp_.begin(), stamp_.end(), std::uint64_t{0});
      epoch_ = 1;
    }
  }

  /// Marks slot i; returns true when i was NOT yet marked this round.
  bool mark(std::size_t i) {
    if (stamp_[i] == epoch_) return false;
    stamp_[i] = epoch_;
    return true;
  }

  bool marked(std::size_t i) const { return stamp_[i] == epoch_; }

 private:
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
};

}  // namespace als
