// Cooperative cancellation token — the one stopping rule that is not a
// budget.
//
// A `CancelToken` is an atomic flag shared between a controller (a serve
// worker's client handler, a signal handler, a test) and a running
// computation.  The annealing layer checks it at SWEEP boundaries only
// (anneal/annealer.h): cancellation never interrupts a move mid-protocol,
// so every invariant the hot loop maintains — committed cost-model state,
// scratch contents, journals — is intact when the run returns.  That is
// what makes a cancelled run's scratch immediately reusable: the next run
// on the same buffers is bit-identical to one in a fresh process (the
// scratch-reuse contract of engine/place_scratch.h already guarantees
// contents never influence results; cancellation preserves it).
//
// A cancelled run returns its best-so-far result with `sweeps` reporting
// what actually executed.  Such a result depends on WHEN the flag was seen
// and is therefore not deterministic — callers that cache or compare
// results (runtime/serve.h) must treat cancelled runs as non-results and
// never store them.
//
// Memory order: relaxed on both sides.  The flag carries no data besides
// itself, the consumer re-checks every sweep, and a one-sweep delay in
// observing cancellation is within the acknowledgment contract (one
// round).  `reset()` may only be called while no run is consuming the
// token (e.g. a serve worker recycling the token between jobs).
#pragma once

#include <atomic>

namespace als {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Null-safe check, the form every sweep loop uses.
inline bool cancelRequested(const CancelToken* token) noexcept {
  return token != nullptr && token->cancelled();
}

}  // namespace als
