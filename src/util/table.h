// Fixed-width ASCII table printer used by the benchmark harnesses to emit
// paper-style result tables (Table I, the Lemma table, Fig. 10 spec tables).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace als {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; the row is padded / truncated to the header width.
  void addRow(std::vector<std::string> cells);

  /// Renders with a header separator; columns are sized to their content.
  void print(std::ostream& os) const;

  static std::string fmt(double v, int precision = 2);
  static std::string fmtPercent(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace als
