// Reader for the flat JSON record arrays util/bench_json.cpp writes (the
// BENCH_*.json trajectory files and the per-tool bench-smoke captures).
// Shared by the CI gates that consume those files — tools/bench_diff (the
// throughput and quality gates) and tools/readme_tables (the committed
// README tables).  It parses exactly the one-record-per-line
// `[{"key": value, ...}, ...]` shape the writer emits; it is not a general
// JSON reader.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace als {

/// One record, keys split by value shape: `strings` holds the quoted
/// fields (backend, circuit), `numbers` everything else.
struct FlatRecord {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;

  double number(const char* key) const {
    auto it = numbers.find(key);
    return it == numbers.end() ? 0.0 : it->second;
  }
};

/// Parses a record array from `text`.  Returns true on success; on failure
/// returns false with a position-bearing message in `error` (records
/// parsed before the failure remain in `out`).
bool parseFlatRecords(std::string_view text, std::vector<FlatRecord>& out,
                      std::string& error);

/// Reads and parses `path`.  On success optionally hands back the raw file
/// text through `raw` (the splice-merge in bench_diff wants it verbatim);
/// on failure returns false with a message (file or parse) in `error`.
bool loadFlatRecords(const std::string& path, std::vector<FlatRecord>& out,
                     std::string& error, std::string* raw = nullptr);

}  // namespace als
