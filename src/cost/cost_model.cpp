#include "cost/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace als {

CostModel::CostModel(const Circuit& circuit, Objective objective)
    : circuit_(&circuit), objective_(objective) {
  const std::size_t n = circuit.moduleCount();
  nets_ = circuit.netPins();
  netsOf_ = circuit.netsOfModules();

  groupsOf_.resize(n);
  const auto& groups = circuit.symmetryGroups();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (ModuleId m : groups[g].members()) {
      if (m < n) groupsOf_[m].push_back(g);
    }
  }

  // Proximity groups come from the hierarchy; one slot per Proximity node,
  // in node-id order (the order the flat placer's full scan used).
  proxOf_.resize(n);
  const HierTree& h = circuit.hierarchy();
  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    if (h.node(id).constraint != GroupConstraint::Proximity) continue;
    std::size_t slot = proxMembers_.size();
    proxMembers_.push_back(h.leavesUnder(id));
    for (ModuleId m : proxMembers_.back()) {
      if (m < n) proxOf_[m].push_back(slot);
    }
  }

  // Thermal topology: one mismatch slot per symmetric pair (across all
  // groups, flattened in group order), and one radiator per module with a
  // positive power annotation.  Self-symmetric modules sit on their own
  // axis and contribute no mismatch, so pairs are the whole story.
  thermalOf_.resize(n);
  isRadiator_.resize(n, 0);
  for (const SymmetryGroup& g : groups) {
    for (const SymPair& pr : g.pairs) {
      std::size_t slot = thermalPairs_.size();
      thermalPairs_.push_back(pr);
      if (pr.a < n) thermalOf_[pr.a].push_back(slot);
      if (pr.b < n) thermalOf_[pr.b].push_back(slot);
    }
  }
  for (std::size_t m = 0; m < n; ++m) {
    double w = circuit.module(m).powerW;
    if (w > 0.0) {
      radiators_.emplace_back(m, w);
      isRadiator_[m] = 1;
    }
  }

  rects_.resize(n);
  netBoxes_.resize(nets_.size());
  groupDev_.resize(groups.size(), 0);
  proxBad_.resize(proxMembers_.size(), 0);
  thermalDev_.resize(thermalPairs_.size(), 0);
  netStamp_.resize(nets_.size(), 0);
  groupStamp_.resize(groups.size(), 0);
  proxStamp_.resize(proxMembers_.size(), 0);
  thermalStamp_.resize(thermalPairs_.size(), 0);
  moduleStamp_.resize(n, 0);
}

Coord CostModel::groupDeviation(const Placement& p, std::size_t group) const {
  const SymmetryGroup& g = circuit_->symmetryGroup(group);
  std::size_t terms = g.pairs.size() + g.selfs.size();
  if (terms == 0) return 0;
  Coord axis2Sum = 0;
  for (const SymPair& pr : g.pairs) {
    axis2Sum += (p[pr.a].center2x().x + p[pr.b].center2x().x) / 2;
  }
  for (ModuleId s : g.selfs) axis2Sum += p[s].center2x().x;
  Coord axis2 = axis2Sum / static_cast<Coord>(terms);
  Coord total = 0;
  for (const SymPair& pr : g.pairs) {
    total += std::abs(p[pr.a].center2x().x + p[pr.b].center2x().x - 2 * axis2) / 2;
    total += std::abs(p[pr.a].y - p[pr.b].y);
  }
  for (ModuleId s : g.selfs) total += std::abs(p[s].center2x().x - axis2) / 2;
  return total;
}

bool CostModel::proxDisconnected(const Placement& p, std::size_t slot) const {
  // Runs once per dirty proximity group per move: both the member-rect list
  // and the union-find parent array are reused scratch (mutable members;
  // safe because a CostModel is a per-run object — see the thread-safety
  // note in the header).
  proxRects_.clear();
  proxRects_.reserve(proxMembers_[slot].size());
  for (ModuleId m : proxMembers_[slot]) proxRects_.push_back(p[m]);
  return !isConnectedRegion(proxRects_, proxUf_);
}

// Quantized (int64 µK) temperature at module m's center, summed over the
// radiators.  Per-(radiator, point) quantization makes the sum independent
// of accumulation order, which is what lets the incremental path below stay
// bit-identical to this scratch reduction.  Coordinates convert to µm the
// same way ThermalField's sourcesFromPlacement does: center2x() / 2000.0.
std::int64_t CostModel::quantizedTempAt(const Placement& p, ModuleId m) const {
  Point c = p[m].center2x();
  double xUm = static_cast<double>(c.x) / 2000.0;
  double yUm = static_cast<double>(c.y) / 2000.0;
  std::int64_t t = 0;
  for (const auto& [rm, watts] : radiators_) {
    Point rc = p[rm].center2x();
    HeatSource s{static_cast<double>(rc.x) / 2000.0,
                 static_cast<double>(rc.y) / 2000.0, watts};
    t += quantizedContribution(s, xUm, yUm, thermalModel_);
  }
  return t;
}

Coord CostModel::pairMismatch(const Placement& p, std::size_t slot) const {
  const SymPair& pr = thermalPairs_[slot];
  return std::abs(quantizedTempAt(p, pr.a) - quantizedTempAt(p, pr.b));
}

Coord CostModel::thermalMismatch(const Placement& p) const {
  Coord total = 0;
  for (std::size_t slot = 0; slot < thermalPairs_.size(); ++slot) {
    total += pairMismatch(p, slot);
  }
  return total;
}

Coord CostModel::symmetryDeviation(const Placement& p) const {
  Coord total = 0;
  for (std::size_t g = 0; g < circuit_->symmetryGroups().size(); ++g) {
    total += groupDeviation(p, g);
  }
  return total;
}

int CostModel::proximityViolations(const Placement& p) const {
  int violations = 0;
  for (std::size_t slot = 0; slot < proxMembers_.size(); ++slot) {
    if (proxDisconnected(p, slot)) ++violations;
  }
  return violations;
}

double CostModel::evaluate(const Placement& p) const {
  Rect bb = p.boundingBox();
  Coord hpwlSum = 0;
  for (const auto& net : nets_) hpwlSum += netBox(p, net).hpwl();
  Coord symDev = objective_.usesSymmetry() ? symmetryDeviation(p) : 0;
  int proxViol = objective_.usesProximity() ? proximityViolations(p) : 0;
  Coord thermal = objective_.usesThermal() ? thermalMismatch(p) : 0;
  return objective_.compose(bb, hpwlSum, symDev, proxViol, thermal);
}

CostBreakdown CostModel::evaluateBreakdown(const Placement& p) const {
  CostBreakdown bd;
  bd.boundingBox = p.boundingBox();
  bd.area = bd.boundingBox.area();
  for (const auto& net : nets_) bd.hpwl += netBox(p, net).hpwl();
  bd.symDeviation = symmetryDeviation(p);
  bd.proximityViolations = proximityViolations(p);
  bd.thermalMismatch = thermalMismatch(p);
  // The cost still skips zero-weight terms, matching evaluate(): reporting
  // aggregates above are unconditional, the objective is not.
  bd.cost = objective_.compose(bd.boundingBox, bd.hpwl,
                               objective_.usesSymmetry() ? bd.symDeviation : 0,
                               objective_.usesProximity() ? bd.proximityViolations : 0,
                               objective_.usesThermal() ? bd.thermalMismatch : 0);
  return bd;
}

double CostModel::reset(const Placement& p) {
  invalidate();
  double cost = propose(p);
  commit();
  return cost;
}

void CostModel::beginPropose(const Placement& p) {
  assert(!pendingActive_ && "propose() before commit()/rollback()");
  assert(p.size() == rects_.size() &&
         "placement and circuit module counts differ");
  (void)p;
  pendingActive_ = true;
  ++stampGen_;
  changed_.clear();
  dirtyNets_.clear();
  dirtyGroups_.clear();
  dirtyProx_.clear();
  dirtyThermal_.clear();
}

/// Admits one rect into a bounding-box reduction with attain-counts: a new
/// extreme resets its count to 1, an exact tie increments it.  The one
/// bookkeeping rule behind every boundary scan below.
void CostModel::admitRect(const Rect& r, Coord* xlo, Coord* ylo, Coord* xhi,
                          Coord* yhi, BoundCounts* cnt) {
  if (r.xlo() < *xlo) { *xlo = r.xlo(); cnt->xlo = 1; }
  else if (r.xlo() == *xlo) ++cnt->xlo;
  if (r.ylo() < *ylo) { *ylo = r.ylo(); cnt->ylo = 1; }
  else if (r.ylo() == *ylo) ++cnt->ylo;
  if (r.xhi() > *xhi) { *xhi = r.xhi(); cnt->xhi = 1; }
  else if (r.xhi() == *xhi) ++cnt->xhi;
  if (r.yhi() > *yhi) { *yhi = r.yhi(); cnt->yhi = 1; }
  else if (r.yhi() == *yhi) ++cnt->yhi;
}

void CostModel::reduceBoundingBox(const Placement& p, Rect* bb,
                                  BoundCounts* cnt) const {
  const std::size_t n = rects_.size();
  *bb = {};
  *cnt = {};
  if (n == 0) return;
  Coord xlo = std::numeric_limits<Coord>::max(), ylo = xlo;
  Coord xhi = std::numeric_limits<Coord>::min(), yhi = xhi;
  for (std::size_t m = 0; m < n; ++m) {
    admitRect(p[m], &xlo, &ylo, &xhi, &yhi, cnt);
  }
  *bb = {xlo, ylo, xhi - xlo, yhi - ylo};
}

double CostModel::propose(const Placement& p) {
  beginPropose(p);
  const std::size_t n = rects_.size();

  // One pass over the modules: re-reduce the bounding box (with boundary
  // attain-counts, so a later hinted propose can update it incrementally)
  // and collect the moved modules (everything, when nothing is committed).
  Rect bb;
  BoundCounts cnt;
  if (n != 0) {
    Coord xlo = std::numeric_limits<Coord>::max(), ylo = xlo;
    Coord xhi = std::numeric_limits<Coord>::min(), yhi = xhi;
    for (std::size_t m = 0; m < n; ++m) {
      const Rect& r = p[m];
      admitRect(r, &xlo, &ylo, &xhi, &yhi, &cnt);
      if (!seeded_ || !(r == rects_[m])) changed_.emplace_back(m, r);
    }
    bb = {xlo, ylo, xhi - xlo, yhi - ylo};
  }
  pending_.boundingBox = bb;
  pendingCnt_ = cnt;
  return proposeTail(p);
}

double CostModel::propose(const Placement& p,
                          std::span<const std::size_t> moved) {
  // Without a committed state the hint carries no information: fall back to
  // the full evaluation (which seeds everything on commit).
  if (!seeded_) return propose(p);
  beginPropose(p);
  const std::size_t n = rects_.size();

  for (std::size_t m : moved) {
    assert(m < n && "moved-module index out of range");
    if (moduleStamp_[m] == stampGen_) continue;  // duplicate hint entry
    moduleStamp_[m] = stampGen_;
    const Rect& r = p[m];
    if (!(r == rects_[m])) changed_.emplace_back(m, r);
  }
#ifndef NDEBUG
  for (std::size_t m = 0; m < n; ++m) {
    assert((moduleStamp_[m] == stampGen_ || p[m] == rects_[m]) &&
           "module moved without being listed in the hint");
  }
#endif

  // Bounding box: retire the moved modules' old extremes against the
  // committed attain-counts, then admit their new rects.  A count reaching
  // zero means a boundary-defining module moved inward — only then is a
  // full O(n) re-reduction needed.
  Rect cb = committed_.boundingBox;
  Coord xlo = cb.xlo(), ylo = cb.ylo(), xhi = cb.xhi(), yhi = cb.yhi();
  BoundCounts cnt = committedCnt_;
  for (const auto& [m, r] : changed_) {
    const Rect& old = rects_[m];
    if (old.xlo() == xlo) --cnt.xlo;
    if (old.ylo() == ylo) --cnt.ylo;
    if (old.xhi() == xhi) --cnt.xhi;
    if (old.yhi() == yhi) --cnt.yhi;
  }
  for (const auto& [m, r] : changed_) {
    admitRect(r, &xlo, &ylo, &xhi, &yhi, &cnt);
  }
  if (n != 0 &&
      (cnt.xlo == 0 || cnt.ylo == 0 || cnt.xhi == 0 || cnt.yhi == 0)) {
    reduceBoundingBox(p, &pending_.boundingBox, &pendingCnt_);
  } else {
    pending_.boundingBox =
        n != 0 ? Rect{xlo, ylo, xhi - xlo, yhi - ylo} : Rect{};
    pendingCnt_ = cnt;
  }
  return proposeTail(p);
}

// Re-reduce only the dirty nets/groups (those touching moved modules);
// generation stamps keep each one from being re-reduced twice.  The updates
// are exact int64 arithmetic, so the committed totals stay equal to a
// from-scratch reduction bit for bit.
double CostModel::proposeTail(const Placement& p) {
  Coord hpwlSum = committed_.hpwl;
  for (const auto& [m, r] : changed_) {
    for (std::size_t ni : netsOf_[m]) {
      if (netStamp_[ni] == stampGen_) continue;
      netStamp_[ni] = stampGen_;
      NetBox box = netBox(p, nets_[ni]);
      hpwlSum += box.hpwl() - netBoxes_[ni].hpwl();
      dirtyNets_.emplace_back(ni, box);
    }
  }

  Coord symDev = committed_.symDeviation;
  if (objective_.usesSymmetry()) {
    for (const auto& [m, r] : changed_) {
      for (std::size_t g : groupsOf_[m]) {
        if (groupStamp_[g] == stampGen_) continue;
        groupStamp_[g] = stampGen_;
        Coord dev = groupDeviation(p, g);
        symDev += dev - groupDev_[g];
        dirtyGroups_.emplace_back(g, dev);
      }
    }
  }

  int proxViol = committed_.proximityViolations;
  if (objective_.usesProximity()) {
    for (const auto& [m, r] : changed_) {
      for (std::size_t slot : proxOf_[m]) {
        if (proxStamp_[slot] == stampGen_) continue;
        proxStamp_[slot] = stampGen_;
        char bad = proxDisconnected(p, slot) ? 1 : 0;
        proxViol += static_cast<int>(bad) - static_cast<int>(proxBad_[slot]);
        dirtyProx_.emplace_back(slot, bad);
      }
    }
  }

  Coord thermal = committed_.thermalMismatch;
  if (objective_.usesThermal()) {
    // Every pair's mismatch depends on the positions of BOTH its members and
    // of EVERY radiator: a moved radiator dirties all slots, a moved
    // non-radiator only the slots of the pairs it belongs to.
    bool radiatorMoved = false;
    for (const auto& [m, r] : changed_) {
      if (isRadiator_[m]) {
        radiatorMoved = true;
        break;
      }
    }
    if (radiatorMoved) {
      for (std::size_t slot = 0; slot < thermalPairs_.size(); ++slot) {
        if (thermalStamp_[slot] == stampGen_) continue;
        thermalStamp_[slot] = stampGen_;
        Coord mis = pairMismatch(p, slot);
        thermal += mis - thermalDev_[slot];
        dirtyThermal_.emplace_back(slot, mis);
      }
    } else {
      for (const auto& [m, r] : changed_) {
        for (std::size_t slot : thermalOf_[m]) {
          if (thermalStamp_[slot] == stampGen_) continue;
          thermalStamp_[slot] = stampGen_;
          Coord mis = pairMismatch(p, slot);
          thermal += mis - thermalDev_[slot];
          dirtyThermal_.emplace_back(slot, mis);
        }
      }
    }
  }

  pending_.area = pending_.boundingBox.area();
  pending_.hpwl = hpwlSum;
  pending_.symDeviation = symDev;
  pending_.proximityViolations = proxViol;
  pending_.thermalMismatch = thermal;
  pending_.cost = objective_.compose(pending_.boundingBox, hpwlSum, symDev,
                                     proxViol, thermal);
  return pending_.cost;
}

void CostModel::commit() {
  assert(pendingActive_ && "commit() without a propose()");
  for (const auto& [m, r] : changed_) rects_[m] = r;
  for (const auto& [ni, box] : dirtyNets_) netBoxes_[ni] = box;
  for (const auto& [g, dev] : dirtyGroups_) groupDev_[g] = dev;
  for (const auto& [slot, bad] : dirtyProx_) proxBad_[slot] = bad;
  for (const auto& [slot, mis] : dirtyThermal_) thermalDev_[slot] = mis;
  committed_ = pending_;
  committedCnt_ = pendingCnt_;
  seeded_ = true;
  pendingActive_ = false;
}

void CostModel::rollback() {
  assert(pendingActive_ && "rollback() without a propose()");
  pendingActive_ = false;
}

void CostModel::invalidate() {
  pendingActive_ = false;
  seeded_ = false;
  std::fill(netBoxes_.begin(), netBoxes_.end(), NetBox{});
  std::fill(groupDev_.begin(), groupDev_.end(), Coord{0});
  std::fill(proxBad_.begin(), proxBad_.end(), char{0});
  std::fill(thermalDev_.begin(), thermalDev_.end(), Coord{0});
  committed_ = {};
  committedCnt_ = {};
}

}  // namespace als
