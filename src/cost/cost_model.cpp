#include "cost/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace als {

CostModel::CostModel(const Circuit& circuit, Objective objective)
    : circuit_(&circuit), objective_(objective) {
  const std::size_t n = circuit.moduleCount();
  nets_ = circuit.netPins();
  netsOf_ = circuit.netsOfModules();

  groupsOf_.resize(n);
  const auto& groups = circuit.symmetryGroups();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (ModuleId m : groups[g].members()) {
      if (m < n) groupsOf_[m].push_back(g);
    }
  }

  // Proximity groups come from the hierarchy; one slot per Proximity node,
  // in node-id order (the order the flat placer's full scan used).
  proxOf_.resize(n);
  const HierTree& h = circuit.hierarchy();
  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    if (h.node(id).constraint != GroupConstraint::Proximity) continue;
    std::size_t slot = proxMembers_.size();
    proxMembers_.push_back(h.leavesUnder(id));
    for (ModuleId m : proxMembers_.back()) {
      if (m < n) proxOf_[m].push_back(slot);
    }
  }

  rects_.resize(n);
  netBoxes_.resize(nets_.size());
  groupDev_.resize(groups.size(), 0);
  proxBad_.resize(proxMembers_.size(), 0);
  netStamp_.resize(nets_.size(), 0);
  groupStamp_.resize(groups.size(), 0);
  proxStamp_.resize(proxMembers_.size(), 0);
  moduleStamp_.resize(n, 0);
}

Coord CostModel::groupDeviation(const Placement& p, std::size_t group) const {
  const SymmetryGroup& g = circuit_->symmetryGroup(group);
  std::size_t terms = g.pairs.size() + g.selfs.size();
  if (terms == 0) return 0;
  Coord axis2Sum = 0;
  for (const SymPair& pr : g.pairs) {
    axis2Sum += (p[pr.a].center2x().x + p[pr.b].center2x().x) / 2;
  }
  for (ModuleId s : g.selfs) axis2Sum += p[s].center2x().x;
  Coord axis2 = axis2Sum / static_cast<Coord>(terms);
  Coord total = 0;
  for (const SymPair& pr : g.pairs) {
    total += std::abs(p[pr.a].center2x().x + p[pr.b].center2x().x - 2 * axis2) / 2;
    total += std::abs(p[pr.a].y - p[pr.b].y);
  }
  for (ModuleId s : g.selfs) total += std::abs(p[s].center2x().x - axis2) / 2;
  return total;
}

bool CostModel::proxDisconnected(const Placement& p, std::size_t slot) const {
  // Runs once per dirty proximity group per move: both the member-rect list
  // and the union-find parent array are reused scratch (mutable members;
  // safe because a CostModel is a per-run object — see the thread-safety
  // note in the header).
  proxRects_.clear();
  proxRects_.reserve(proxMembers_[slot].size());
  for (ModuleId m : proxMembers_[slot]) proxRects_.push_back(p[m]);
  return !isConnectedRegion(proxRects_, proxUf_);
}

Coord CostModel::symmetryDeviation(const Placement& p) const {
  Coord total = 0;
  for (std::size_t g = 0; g < circuit_->symmetryGroups().size(); ++g) {
    total += groupDeviation(p, g);
  }
  return total;
}

int CostModel::proximityViolations(const Placement& p) const {
  int violations = 0;
  for (std::size_t slot = 0; slot < proxMembers_.size(); ++slot) {
    if (proxDisconnected(p, slot)) ++violations;
  }
  return violations;
}

double CostModel::evaluate(const Placement& p) const {
  Rect bb = p.boundingBox();
  Coord hpwlSum = 0;
  for (const auto& net : nets_) hpwlSum += netBox(p, net).hpwl();
  Coord symDev = objective_.usesSymmetry() ? symmetryDeviation(p) : 0;
  int proxViol = objective_.usesProximity() ? proximityViolations(p) : 0;
  return objective_.compose(bb, hpwlSum, symDev, proxViol);
}

CostBreakdown CostModel::evaluateBreakdown(const Placement& p) const {
  CostBreakdown bd;
  bd.boundingBox = p.boundingBox();
  bd.area = bd.boundingBox.area();
  for (const auto& net : nets_) bd.hpwl += netBox(p, net).hpwl();
  bd.symDeviation = symmetryDeviation(p);
  bd.proximityViolations = proximityViolations(p);
  // The cost still skips zero-weight terms, matching evaluate(): reporting
  // aggregates above are unconditional, the objective is not.
  bd.cost = objective_.compose(bd.boundingBox, bd.hpwl,
                               objective_.usesSymmetry() ? bd.symDeviation : 0,
                               objective_.usesProximity() ? bd.proximityViolations : 0);
  return bd;
}

double CostModel::reset(const Placement& p) {
  invalidate();
  double cost = propose(p);
  commit();
  return cost;
}

void CostModel::beginPropose(const Placement& p) {
  assert(!pendingActive_ && "propose() before commit()/rollback()");
  assert(p.size() == rects_.size() &&
         "placement and circuit module counts differ");
  (void)p;
  pendingActive_ = true;
  ++stampGen_;
  changed_.clear();
  dirtyNets_.clear();
  dirtyGroups_.clear();
  dirtyProx_.clear();
}

/// Admits one rect into a bounding-box reduction with attain-counts: a new
/// extreme resets its count to 1, an exact tie increments it.  The one
/// bookkeeping rule behind every boundary scan below.
void CostModel::admitRect(const Rect& r, Coord* xlo, Coord* ylo, Coord* xhi,
                          Coord* yhi, BoundCounts* cnt) {
  if (r.xlo() < *xlo) { *xlo = r.xlo(); cnt->xlo = 1; }
  else if (r.xlo() == *xlo) ++cnt->xlo;
  if (r.ylo() < *ylo) { *ylo = r.ylo(); cnt->ylo = 1; }
  else if (r.ylo() == *ylo) ++cnt->ylo;
  if (r.xhi() > *xhi) { *xhi = r.xhi(); cnt->xhi = 1; }
  else if (r.xhi() == *xhi) ++cnt->xhi;
  if (r.yhi() > *yhi) { *yhi = r.yhi(); cnt->yhi = 1; }
  else if (r.yhi() == *yhi) ++cnt->yhi;
}

void CostModel::reduceBoundingBox(const Placement& p, Rect* bb,
                                  BoundCounts* cnt) const {
  const std::size_t n = rects_.size();
  *bb = {};
  *cnt = {};
  if (n == 0) return;
  Coord xlo = std::numeric_limits<Coord>::max(), ylo = xlo;
  Coord xhi = std::numeric_limits<Coord>::min(), yhi = xhi;
  for (std::size_t m = 0; m < n; ++m) {
    admitRect(p[m], &xlo, &ylo, &xhi, &yhi, cnt);
  }
  *bb = {xlo, ylo, xhi - xlo, yhi - ylo};
}

double CostModel::propose(const Placement& p) {
  beginPropose(p);
  const std::size_t n = rects_.size();

  // One pass over the modules: re-reduce the bounding box (with boundary
  // attain-counts, so a later hinted propose can update it incrementally)
  // and collect the moved modules (everything, when nothing is committed).
  Rect bb;
  BoundCounts cnt;
  if (n != 0) {
    Coord xlo = std::numeric_limits<Coord>::max(), ylo = xlo;
    Coord xhi = std::numeric_limits<Coord>::min(), yhi = xhi;
    for (std::size_t m = 0; m < n; ++m) {
      const Rect& r = p[m];
      admitRect(r, &xlo, &ylo, &xhi, &yhi, &cnt);
      if (!seeded_ || !(r == rects_[m])) changed_.emplace_back(m, r);
    }
    bb = {xlo, ylo, xhi - xlo, yhi - ylo};
  }
  pending_.boundingBox = bb;
  pendingCnt_ = cnt;
  return proposeTail(p);
}

double CostModel::propose(const Placement& p,
                          std::span<const std::size_t> moved) {
  // Without a committed state the hint carries no information: fall back to
  // the full evaluation (which seeds everything on commit).
  if (!seeded_) return propose(p);
  beginPropose(p);
  const std::size_t n = rects_.size();

  for (std::size_t m : moved) {
    assert(m < n && "moved-module index out of range");
    if (moduleStamp_[m] == stampGen_) continue;  // duplicate hint entry
    moduleStamp_[m] = stampGen_;
    const Rect& r = p[m];
    if (!(r == rects_[m])) changed_.emplace_back(m, r);
  }
#ifndef NDEBUG
  for (std::size_t m = 0; m < n; ++m) {
    assert((moduleStamp_[m] == stampGen_ || p[m] == rects_[m]) &&
           "module moved without being listed in the hint");
  }
#endif

  // Bounding box: retire the moved modules' old extremes against the
  // committed attain-counts, then admit their new rects.  A count reaching
  // zero means a boundary-defining module moved inward — only then is a
  // full O(n) re-reduction needed.
  Rect cb = committed_.boundingBox;
  Coord xlo = cb.xlo(), ylo = cb.ylo(), xhi = cb.xhi(), yhi = cb.yhi();
  BoundCounts cnt = committedCnt_;
  for (const auto& [m, r] : changed_) {
    const Rect& old = rects_[m];
    if (old.xlo() == xlo) --cnt.xlo;
    if (old.ylo() == ylo) --cnt.ylo;
    if (old.xhi() == xhi) --cnt.xhi;
    if (old.yhi() == yhi) --cnt.yhi;
  }
  for (const auto& [m, r] : changed_) {
    admitRect(r, &xlo, &ylo, &xhi, &yhi, &cnt);
  }
  if (n != 0 &&
      (cnt.xlo == 0 || cnt.ylo == 0 || cnt.xhi == 0 || cnt.yhi == 0)) {
    reduceBoundingBox(p, &pending_.boundingBox, &pendingCnt_);
  } else {
    pending_.boundingBox =
        n != 0 ? Rect{xlo, ylo, xhi - xlo, yhi - ylo} : Rect{};
    pendingCnt_ = cnt;
  }
  return proposeTail(p);
}

// Re-reduce only the dirty nets/groups (those touching moved modules);
// generation stamps keep each one from being re-reduced twice.  The updates
// are exact int64 arithmetic, so the committed totals stay equal to a
// from-scratch reduction bit for bit.
double CostModel::proposeTail(const Placement& p) {
  Coord hpwlSum = committed_.hpwl;
  for (const auto& [m, r] : changed_) {
    for (std::size_t ni : netsOf_[m]) {
      if (netStamp_[ni] == stampGen_) continue;
      netStamp_[ni] = stampGen_;
      NetBox box = netBox(p, nets_[ni]);
      hpwlSum += box.hpwl() - netBoxes_[ni].hpwl();
      dirtyNets_.emplace_back(ni, box);
    }
  }

  Coord symDev = committed_.symDeviation;
  if (objective_.usesSymmetry()) {
    for (const auto& [m, r] : changed_) {
      for (std::size_t g : groupsOf_[m]) {
        if (groupStamp_[g] == stampGen_) continue;
        groupStamp_[g] = stampGen_;
        Coord dev = groupDeviation(p, g);
        symDev += dev - groupDev_[g];
        dirtyGroups_.emplace_back(g, dev);
      }
    }
  }

  int proxViol = committed_.proximityViolations;
  if (objective_.usesProximity()) {
    for (const auto& [m, r] : changed_) {
      for (std::size_t slot : proxOf_[m]) {
        if (proxStamp_[slot] == stampGen_) continue;
        proxStamp_[slot] = stampGen_;
        char bad = proxDisconnected(p, slot) ? 1 : 0;
        proxViol += static_cast<int>(bad) - static_cast<int>(proxBad_[slot]);
        dirtyProx_.emplace_back(slot, bad);
      }
    }
  }

  pending_.area = pending_.boundingBox.area();
  pending_.hpwl = hpwlSum;
  pending_.symDeviation = symDev;
  pending_.proximityViolations = proxViol;
  pending_.cost =
      objective_.compose(pending_.boundingBox, hpwlSum, symDev, proxViol);
  return pending_.cost;
}

void CostModel::commit() {
  assert(pendingActive_ && "commit() without a propose()");
  for (const auto& [m, r] : changed_) rects_[m] = r;
  for (const auto& [ni, box] : dirtyNets_) netBoxes_[ni] = box;
  for (const auto& [g, dev] : dirtyGroups_) groupDev_[g] = dev;
  for (const auto& [slot, bad] : dirtyProx_) proxBad_[slot] = bad;
  committed_ = pending_;
  committedCnt_ = pendingCnt_;
  seeded_ = true;
  pendingActive_ = false;
}

void CostModel::rollback() {
  assert(pendingActive_ && "rollback() without a propose()");
  pendingActive_ = false;
}

void CostModel::invalidate() {
  pendingActive_ = false;
  seeded_ = false;
  std::fill(netBoxes_.begin(), netBoxes_.end(), NetBox{});
  std::fill(groupDev_.begin(), groupDev_.end(), Coord{0});
  std::fill(proxBad_.begin(), proxBad_.end(), char{0});
  committed_ = {};
  committedCnt_ = {};
}

}  // namespace als
