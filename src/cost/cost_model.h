// Delta-evaluated placement cost: the one evaluator behind all four SA
// backends.
//
// A `CostModel` binds a circuit to an `Objective` and evaluates placements
// either from scratch (`evaluate`) or incrementally through the
// propose/commit/rollback protocol the annealer drives
// (anneal/annealer.h's incremental overloads):
//
//   model.reset(p0);                  // seed the committed state
//   double c = model.propose(p1);     // delta-eval against committed
//   model.commit();                   // p1 becomes the committed state
//   double d = model.propose(p2);
//   model.rollback();                 // discard; committed stays p1
//
// Incremental evaluation caches, per net, the bounding box of the net's pin
// centers (geom/placement.h's NetBox) and, per symmetry group / proximity
// group, its deviation / connectivity.  A propose diffs the new placement
// against the committed rects in one pass (which also re-reduces the
// placement bounding box), marks the nets and groups touching moved modules
// dirty through the circuit's module→net index, and re-reduces only those.
//
// == Cost evaluation contract ==
//
// All geometry aggregates are exact int64 (`Coord`) quantities, so
// incremental updates (total' = total - old + new) are exact and a
// committed incremental total ALWAYS equals the from-scratch total — not
// approximately, bit for bit.  The float composition of the final cost is a
// fixed operation sequence owned by `Objective::compose`.  tests/
// cost_test.cpp enforces exact equality over random propose/commit/rollback
// sequences on every backend's move set.
//
// Thread safety: a CostModel is a per-run object (one SA run constructs and
// owns one); it reads the circuit only during construction and scratch
// queries.  Concurrent runs over one const circuit each own their model —
// the same contract every backend's `place()` already documents.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cost/objective.h"
#include "geom/placement.h"
#include "netlist/circuit.h"
#include "thermal/thermal.h"

namespace als {

/// Exact integer aggregates of one evaluation plus the composed cost.
struct CostBreakdown {
  Rect boundingBox;
  Coord area = 0;             ///< bounding-box area
  Coord hpwl = 0;             ///< total HPWL over all nets
  Coord symDeviation = 0;     ///< total mirror deviation (0 = exact)
  int proximityViolations = 0;///< disconnected proximity groups
  Coord thermalMismatch = 0;  ///< total quantized pair mismatch [µK]
  double cost = 0.0;
};

class CostModel {
 public:
  CostModel(const Circuit& circuit, Objective objective);

  const Objective& objective() const { return objective_; }
  double infeasibleCost() const { return objective_.infeasibleCost; }

  // ---- scratch evaluation (stateless; ignores the committed state) ----

  /// Cost of `p` from scratch, skipping zero-weight terms.
  double evaluate(const Placement& p) const;

  /// All aggregates of `p` from scratch, including zero-weight terms (for
  /// reporting; `cost` still skips them, matching `evaluate`).
  CostBreakdown evaluateBreakdown(const Placement& p) const;

  // ---- incremental protocol ----

  /// Seeds the committed state from a full placement; returns its cost.
  double reset(const Placement& p);

  /// Cost of `p`, delta-evaluated against the committed state (or from
  /// scratch when nothing is committed).  Exactly one commit() or
  /// rollback() must follow before the next propose().
  double propose(const Placement& p);

  /// Hinted propose: `moved` lists every module whose rect may differ from
  /// the committed state (duplicates and unmoved entries are fine; a module
  /// NOT listed must be unchanged — debug-asserted).  Skips the O(n)
  /// placement diff, and the bounding box is maintained through boundary
  /// attain-counts, so the whole re-evaluation is O(moved modules' nets and
  /// groups) — an O(n) rescan happens only when a bounding-box-defining
  /// module moved inward.  This is the kernel a coordinate-based placer
  /// (one whose moves displace individual modules) drives.
  double propose(const Placement& p, std::span<const std::size_t> moved);

  /// Makes the proposed placement the committed state (O(moved modules)).
  void commit();

  /// Discards the proposed placement (O(1)).
  void rollback();

  /// Drops the committed state (used when an annealer accepts an
  /// *infeasible* state that has no placement: the next propose() falls
  /// back to a full evaluation and re-seeds on commit).
  void invalidate();

  bool seeded() const { return seeded_; }
  double committedCost() const { return committed_.cost; }
  const CostBreakdown& committed() const { return committed_; }

  /// Scratch mirror-deviation / proximity / thermal queries (shared with
  /// backends' result reporting).
  Coord symmetryDeviation(const Placement& p) const;
  int proximityViolations(const Placement& p) const;

  /// Total quantized (µK) temperature mismatch over every symmetric pair of
  /// every group: sum of |T_q(a) - T_q(b)| with T_q the int64 µK temperature
  /// of ThermalField::quantizedAt.  Exactly the scratch oracle the thermal
  /// term's incremental updates are pinned against.
  Coord thermalMismatch(const Placement& p) const;

 private:
  /// How many modules attain each bounding-box boundary; lets a hinted
  /// propose update the box in O(moved) and detect exactly when a shrink
  /// forces a rescan.
  struct BoundCounts {
    std::size_t xlo = 0, xhi = 0, ylo = 0, yhi = 0;
  };

  Coord groupDeviation(const Placement& p, std::size_t group) const;
  bool proxDisconnected(const Placement& p, std::size_t slot) const;
  std::int64_t quantizedTempAt(const Placement& p, ModuleId m) const;
  Coord pairMismatch(const Placement& p, std::size_t slot) const;
  void beginPropose(const Placement& p);
  static void admitRect(const Rect& r, Coord* xlo, Coord* ylo, Coord* xhi,
                        Coord* yhi, BoundCounts* cnt);
  void reduceBoundingBox(const Placement& p, Rect* bb, BoundCounts* cnt) const;
  double proposeTail(const Placement& p);

  const Circuit* circuit_;
  Objective objective_;

  // Static topology, captured at construction.
  std::vector<std::vector<std::size_t>> nets_;     ///< pin lists per net
  std::vector<std::vector<std::size_t>> netsOf_;   ///< module -> net indices
  std::vector<std::vector<std::size_t>> groupsOf_; ///< module -> sym groups
  std::vector<std::vector<ModuleId>> proxMembers_; ///< proximity group leaves
  std::vector<std::vector<std::size_t>> proxOf_;   ///< module -> prox slots

  // Thermal topology (thermal/thermal.h): every symmetric pair of every
  // group is one mismatch slot; every module with powerW > 0 radiates.
  ThermalModel thermalModel_;
  std::vector<SymPair> thermalPairs_;                    ///< flattened pairs
  std::vector<std::vector<std::size_t>> thermalOf_;      ///< module -> slots
  std::vector<std::pair<ModuleId, double>> radiators_;   ///< (module, watts)
  std::vector<char> isRadiator_;                         ///< per module

  // Committed state.
  bool seeded_ = false;
  std::vector<Rect> rects_;
  std::vector<NetBox> netBoxes_;
  std::vector<Coord> groupDev_;
  std::vector<char> proxBad_;
  std::vector<Coord> thermalDev_;  ///< committed per-slot mismatch [µK]
  CostBreakdown committed_;
  BoundCounts committedCnt_;

  // Pending (proposed) state: values to splice into the committed state on
  // commit().  Dirty marking uses generation stamps so one propose never
  // re-reduces a net/group twice.
  bool pendingActive_ = false;
  std::vector<std::pair<std::size_t, Rect>> changed_;
  std::vector<std::pair<std::size_t, NetBox>> dirtyNets_;
  std::vector<std::pair<std::size_t, Coord>> dirtyGroups_;
  std::vector<std::pair<std::size_t, char>> dirtyProx_;
  std::vector<std::pair<std::size_t, Coord>> dirtyThermal_;
  CostBreakdown pending_;
  BoundCounts pendingCnt_;
  std::vector<std::uint64_t> netStamp_;
  std::vector<std::uint64_t> groupStamp_;
  std::vector<std::uint64_t> proxStamp_;
  std::vector<std::uint64_t> thermalStamp_;
  std::vector<std::uint64_t> moduleStamp_;
  std::uint64_t stampGen_ = 0;

  // Proximity-connectivity scratch (mutable: proxDisconnected is logically
  // const and runs per dirty group per move; reusing these keeps the whole
  // propose path free of heap allocations).
  mutable std::vector<Rect> proxRects_;
  mutable std::vector<std::size_t> proxUf_;
};

}  // namespace als
