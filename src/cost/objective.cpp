#include "cost/objective.h"

#include <cmath>

#include "netlist/circuit.h"

namespace als {

Objective makeObjective(const Circuit& circuit, const ObjectiveWeights& weights) {
  const double area = static_cast<double>(circuit.totalModuleArea());
  const double root = std::sqrt(area);
  Objective obj;
  obj.wlLambda = weights.wirelength * root;
  obj.symLambda = weights.symmetry * root;
  obj.proxLambda = weights.proximity * area * 0.1;
  obj.outlineLambda = weights.outline * root;
  obj.thermalLambda = weights.thermal * area * 1e-7;
  obj.maxWidth = weights.maxWidth;
  obj.maxHeight = weights.maxHeight;
  obj.targetAspect = weights.targetAspect;
  return obj;
}

}  // namespace als
