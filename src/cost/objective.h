// The unified placement objective shared by every SA backend.
//
// Historically each backend hand-rolled the same cost lambda: bounding-box
// area plus a sqrt(module-area)-normalized wirelength term, plus whichever
// penalty terms its representation does not satisfy by construction
// (symmetry/proximity for the flat penalty placer, outline/aspect for the
// sequence-pair placer).  This header lifts both halves into one place:
//
//   * `ObjectiveWeights` — the raw, dimensionless knobs a caller sets
//     (EngineOptions carries the same fields and tools/als_place exposes
//     them as --wl/--sym/--prox);
//   * `Objective` — the scaled coefficients after the shared normalization
//     recipe, plus the exact composition order of the cost terms.
//
// The composition order is load-bearing: cost values are doubles composed
// from int64 geometry aggregates, and the incremental evaluator
// (cost/cost_model.h) promises *bit-identical* costs to a from-scratch
// evaluation.  That only holds because every aggregate (area, HPWL,
// symmetry deviation, violation count) is an exact integer and the floating
// point composition below is a fixed sequence of operations.  Terms with a
// zero weight are skipped entirely, never evaluated — backends whose
// representation guarantees a constraint by construction simply leave its
// weight at zero and pay nothing for it.
#pragma once

#include "geom/rect.h"

namespace als {

class Circuit;

/// Raw (pre-normalization) objective weights.  Defaults are the historical
/// per-backend defaults; a zero weight disables its term.
struct ObjectiveWeights {
  double wirelength = 0.25;  ///< lambda_wl, scaled by sqrt(module area)
  double symmetry = 0.0;     ///< mirror-deviation penalty (flat placer: 2.0)
  double proximity = 0.0;    ///< disconnected-group penalty (flat placer: 2.0)
  double outline = 0.0;      ///< outline-excess penalty (seqpair: 4.0)
  double thermal = 0.0;      ///< pair temperature-mismatch penalty (Sec. II)
  Coord maxWidth = 0;        ///< 0 = unconstrained [DBU]
  Coord maxHeight = 0;       ///< 0 = unconstrained [DBU]
  double targetAspect = 0.0; ///< 0 = no aspect objective (w/h target)
};

/// Scaled objective: the weights after the shared normalization recipe
/// (`makeObjective`) plus the composition of a cost value from exact
/// integer aggregates.
struct Objective {
  double wlLambda = 0.0;       ///< wirelength * sqrt(totalModuleArea)
  double symLambda = 0.0;      ///< symmetry * sqrt(totalModuleArea)
  double proxLambda = 0.0;     ///< proximity * totalModuleArea * 0.1
  double outlineLambda = 0.0;  ///< outline * sqrt(totalModuleArea)
  double thermalLambda = 0.0;  ///< thermal * totalModuleArea * 1e-7 (per µK)
  Coord maxWidth = 0;
  Coord maxHeight = 0;
  double targetAspect = 0.0;
  /// Cost of states whose decoding fails (cannot happen for the feasible
  /// encodings the backends anneal, but the guard keeps annealers total).
  double infeasibleCost = 1e30;

  bool usesSymmetry() const { return symLambda != 0.0; }
  bool usesProximity() const { return proxLambda != 0.0; }
  bool usesThermal() const { return thermalLambda != 0.0; }

  /// Composes the cost double from exact integer aggregates.  `bb` is the
  /// placement bounding box, `hpwlSum` the total HPWL over all nets,
  /// `symDev` the total mirror deviation, `proxViolations` the number of
  /// disconnected proximity groups, `thermalMismatch` the total quantized
  /// (µK) pair temperature mismatch (thermal/thermal.h).  One fixed
  /// operation sequence — any two evaluators feeding it equal aggregates
  /// produce bit-equal costs.
  double compose(Rect bb, Coord hpwlSum, Coord symDev, int proxViolations,
                 Coord thermalMismatch = 0) const {
    double c = static_cast<double>(bb.area());
    c += wlLambda * static_cast<double>(hpwlSum);
    if (symLambda != 0.0) c += symLambda * static_cast<double>(symDev);
    if (proxLambda != 0.0) c += proxLambda * proxViolations;
    if (thermalLambda != 0.0) {
      c += thermalLambda * static_cast<double>(thermalMismatch);
    }
    if (maxWidth > 0 && bb.w > maxWidth) {
      c += outlineLambda * static_cast<double>(bb.w - maxWidth);
    }
    if (maxHeight > 0 && bb.h > maxHeight) {
      c += outlineLambda * static_cast<double>(bb.h - maxHeight);
    }
    if (targetAspect > 0.0 && bb.h > 0) {
      double aspect = static_cast<double>(bb.w) / static_cast<double>(bb.h);
      double ratio = aspect / targetAspect;
      double off = ratio > 1.0 ? ratio - 1.0 : 1.0 / ratio - 1.0;
      c += 0.5 * off * static_cast<double>(bb.area());
    }
    return c;
  }
};

/// The shared normalization recipe: wirelength/symmetry/outline weights
/// scale with sqrt(total module area) (the classic per-DBU gradient match
/// against the area term), the proximity weight with total module area
/// itself (a violation must dominate any area saving), and the thermal
/// weight with total module area times 1e-7 (kelvin-scale mismatches are
/// ~1e6 µK, so a unit thermal weight trades ~10% of the area term).
Objective makeObjective(const Circuit& circuit, const ObjectiveWeights& weights);

}  // namespace als
