#include "seqpair/symmetry.h"

#include <algorithm>
#include <cassert>

namespace als {

namespace {

/// Group members sorted by their alpha position.
std::vector<ModuleId> membersInAlphaOrder(const SequencePair& sp,
                                          const SymmetryGroup& group) {
  std::vector<ModuleId> m = group.members();
  std::sort(m.begin(), m.end(), [&](ModuleId a, ModuleId b) {
    return sp.alphaPos(a) < sp.alphaPos(b);
  });
  return m;
}

}  // namespace

bool isSymmetricFeasible(const SequencePair& sp, const SymmetryGroup& group) {
  // Required beta order: sym of the reverse alpha order.
  std::vector<ModuleId> byAlpha = membersInAlphaOrder(sp, group);
  std::vector<ModuleId> required;
  required.reserve(byAlpha.size());
  for (auto it = byAlpha.rbegin(); it != byAlpha.rend(); ++it) {
    required.push_back(group.symOf(*it));
  }
  std::vector<ModuleId> byBeta = group.members();
  std::sort(byBeta.begin(), byBeta.end(), [&](ModuleId a, ModuleId b) {
    return sp.betaPos(a) < sp.betaPos(b);
  });
  return required == byBeta;
}

SymmetryGroup mergedGroup(std::span<const SymmetryGroup> groups) {
  SymmetryGroup merged;
  merged.name = "union";
  for (const SymmetryGroup& g : groups) {
    merged.pairs.insert(merged.pairs.end(), g.pairs.begin(), g.pairs.end());
    merged.selfs.insert(merged.selfs.end(), g.selfs.begin(), g.selfs.end());
  }
  return merged;
}

bool isSymmetricFeasible(const SequencePair& sp,
                         std::span<const SymmetryGroup> groups) {
  if (groups.empty()) return true;
  if (groups.size() == 1) return isSymmetricFeasible(sp, groups[0]);
  return isSymmetricFeasible(sp, mergedGroup(groups));
}

bool isPerGroupSymmetricFeasible(const SequencePair& sp,
                                 std::span<const SymmetryGroup> groups) {
  return std::all_of(groups.begin(), groups.end(),
                     [&](const SymmetryGroup& g) { return isSymmetricFeasible(sp, g); });
}

void makeSymmetricFeasible(SequencePair& sp, std::span<const SymmetryGroup> groups) {
  if (groups.empty()) return;
  const SymmetryGroup group = mergedGroup(groups);
  SymFeasibleScratch scratch;
  makeSymmetricFeasibleInPlace(sp, group, scratch);
  assert(isSymmetricFeasible(sp, groups));
}

void makeSymmetricFeasibleInPlace(SequencePair& sp,
                                  const SymmetryGroup& merged,
                                  SymFeasibleScratch& scratch) {
  // Group members sorted by alpha position.
  std::vector<ModuleId>& byAlpha = scratch.byAlpha;
  byAlpha.clear();
  for (const SymPair& p : merged.pairs) {
    byAlpha.push_back(p.a);
    byAlpha.push_back(p.b);
  }
  for (ModuleId s : merged.selfs) byAlpha.push_back(s);
  // Beta slots currently holding group members, in ascending order (read
  // BEFORE sorting byAlpha — the member sets are identical either way).
  std::vector<std::size_t>& slots = scratch.slots;
  slots.clear();
  for (ModuleId m : byAlpha) slots.push_back(sp.betaPos(m));
  std::sort(slots.begin(), slots.end());
  std::sort(byAlpha.begin(), byAlpha.end(), [&](ModuleId a, ModuleId b) {
    return sp.alphaPos(a) < sp.alphaPos(b);
  });
  // Seat sym(reverse alpha order) into those slots.  The writes permute
  // group members among the group's own beta slots, so the permutation
  // invariant holds again once the loop completes.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    sp.reseatBeta(slots[i], merged.symOf(byAlpha[byAlpha.size() - 1 - i]));
  }
}

namespace {

/// Adds `mult` times the prime exponents of n! (Legendre's formula) to exp.
void addFactorialExponents(std::vector<std::int64_t>& exp, std::size_t n,
                           std::int64_t mult) {
  for (std::size_t p = 2; p <= n; ++p) {
    // Trial-division primality is fine for placement-scale n.
    bool prime = true;
    for (std::size_t d = 2; d * d <= p; ++d) {
      if (p % d == 0) {
        prime = false;
        break;
      }
    }
    if (!prime) continue;
    std::int64_t e = 0;
    for (std::size_t q = p; q <= n; q *= p) {
      e += static_cast<std::int64_t>(n / q);
      if (q > n / p) break;  // avoid overflow of q *= p
    }
    if (exp.size() <= p) exp.resize(p + 1, 0);
    exp[p] += mult * e;
  }
}

BigUint fromExponents(const std::vector<std::int64_t>& exp) {
  BigUint r(1);
  for (std::size_t p = 2; p < exp.size(); ++p) {
    assert(exp[p] >= 0 && "count must be integral");
    for (std::int64_t i = 0; i < exp[p]; ++i) r *= p;
  }
  return r;
}

}  // namespace

BigUint sfSequencePairCount(std::size_t n, std::span<const SymmetryGroup> groups) {
  std::vector<std::int64_t> exp;
  addFactorialExponents(exp, n, 2);  // (n!)^2
  for (const SymmetryGroup& g : groups) {
    addFactorialExponents(exp, g.memberCount(), -1);
  }
  return fromExponents(exp);
}

BigUint totalSequencePairCount(std::size_t n) {
  std::vector<std::int64_t> exp;
  addFactorialExponents(exp, n, 2);
  return fromExponents(exp);
}

double searchSpaceReduction(std::size_t n, std::span<const SymmetryGroup> groups) {
  (void)n;  // the ratio depends only on the group sizes
  double ratio = 1.0;
  // |S-F| / total = 1 / prod (2p_k + s_k)!  -- compute in doubles directly.
  for (const SymmetryGroup& g : groups) {
    for (std::size_t i = 2; i <= g.memberCount(); ++i) {
      ratio /= static_cast<double>(i);
    }
  }
  return 1.0 - ratio;
}

}  // namespace als
