#include "seqpair/absolute_placer.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "anneal/annealer.h"

namespace als {

namespace {

struct AbsState {
  std::vector<Rect> rects;
  std::vector<bool> rotated;
};

Coord pairwiseOverlapArea(const std::vector<Rect>& rects) {
  Coord total = 0;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      const Rect& a = rects[i];
      const Rect& b = rects[j];
      Coord ox = std::min(a.xhi(), b.xhi()) - std::max(a.xlo(), b.xlo());
      Coord oy = std::min(a.yhi(), b.yhi()) - std::max(a.ylo(), b.ylo());
      if (ox > 0 && oy > 0) total += ox * oy;
    }
  }
  return total;
}

/// Mirror deviation of all groups, in DBU: per group the axis is estimated
/// as the mean doubled pair/self center, then per-member center and
/// y-alignment deviations are accumulated.
Coord symmetryDeviation(const std::vector<Rect>& rects,
                        std::span<const SymmetryGroup> groups) {
  Coord total = 0;
  for (const SymmetryGroup& g : groups) {
    std::size_t terms = g.pairs.size() + g.selfs.size();
    if (terms == 0) continue;
    // Doubled axis estimate (2 * axis).
    Coord axis2Sum = 0;
    for (const SymPair& p : g.pairs) {
      axis2Sum += (rects[p.a].center2x().x + rects[p.b].center2x().x) / 2;
    }
    for (ModuleId s : g.selfs) axis2Sum += rects[s].center2x().x;
    Coord axis2 = axis2Sum / static_cast<Coord>(terms);
    for (const SymPair& p : g.pairs) {
      Coord mirror = rects[p.a].center2x().x + rects[p.b].center2x().x - 2 * axis2;
      total += std::abs(mirror) / 2;
      total += std::abs(rects[p.a].y - rects[p.b].y);
    }
    for (ModuleId s : g.selfs) {
      total += std::abs(rects[s].center2x().x - axis2) / 2;
    }
  }
  return total;
}

}  // namespace

AbsolutePlacerResult placeAbsoluteSA(const Circuit& circuit,
                                     const AbsolutePlacerOptions& options) {
  const std::size_t n = circuit.moduleCount();
  const auto groups = std::span<const SymmetryGroup>(circuit.symmetryGroups());
  const auto nets = circuit.netPins();

  // Initial configuration: a roughly square grid of cells.
  AbsState init;
  init.rects.resize(n);
  init.rotated.assign(n, false);
  {
    std::size_t cols = static_cast<std::size_t>(std::ceil(std::sqrt(double(n))));
    Coord maxW = 0, maxH = 0;
    for (std::size_t m = 0; m < n; ++m) {
      maxW = std::max(maxW, circuit.module(m).w);
      maxH = std::max(maxH, circuit.module(m).h);
    }
    for (std::size_t m = 0; m < n; ++m) {
      const Module& mod = circuit.module(m);
      init.rects[m] = {static_cast<Coord>(m % cols) * maxW,
                       static_cast<Coord>(m / cols) * maxH, mod.w, mod.h};
    }
  }

  const double wlLambda =
      options.wirelengthWeight *
      std::sqrt(static_cast<double>(circuit.totalModuleArea()));
  const double symLambda =
      options.symmetryWeight *
      std::sqrt(static_cast<double>(circuit.totalModuleArea()));
  Coord span = init.rects.empty() ? 1 : Placement(init.rects).boundingBox().w + 1;

  auto cost = [&](const AbsState& s) {
    Placement p(s.rects);
    double c = static_cast<double>(p.boundingBox().area());
    c += wlLambda * static_cast<double>(totalHpwl(p, nets));
    c += options.overlapWeight * static_cast<double>(pairwiseOverlapArea(s.rects));
    c += symLambda * static_cast<double>(symmetryDeviation(s.rects, groups));
    return c;
  };

  auto move = [&](const AbsState& s, Rng& rng) {
    AbsState next = s;
    double r = rng.uniform();
    if (r < 0.6) {  // translate one cell
      std::size_t m = rng.index(n);
      Coord dx = rng.uniformInt(-span / 4, span / 4);
      Coord dy = rng.uniformInt(-span / 4, span / 4);
      next.rects[m] = next.rects[m].translated(dx, dy);
    } else if (r < 0.9 && n >= 2) {  // swap two cell origins
      std::size_t a = rng.index(n), b = rng.index(n);
      std::swap(next.rects[a].x, next.rects[b].x);
      std::swap(next.rects[a].y, next.rects[b].y);
    } else {  // rotate
      std::size_t m = rng.index(n);
      if (circuit.module(m).rotatable) {
        next.rects[m] = next.rects[m].rotated90();
        next.rotated[m] = !next.rotated[m];
      }
    }
    return next;
  };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = n;
  auto annealed = annealWithRestarts(init, cost, move, annealOpt);

  AbsolutePlacerResult result;
  result.placement = Placement(annealed.best.rects);
  result.placement.normalize();
  result.area = result.placement.boundingBox().area();
  result.hpwl = totalHpwl(result.placement, nets);
  result.overlapArea = pairwiseOverlapArea(annealed.best.rects);
  result.symViolation = symmetryDeviation(annealed.best.rects, groups);
  result.feasible = result.overlapArea == 0 && result.symViolation == 0;
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
