#include "seqpair/sym_placer.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "seqpair/packer.h"

namespace als {

namespace {

/// Longest-path propagation in x over an arbitrary cell subset: processes
/// cells in alpha order and raises x to clear every "left of" predecessor.
/// Existing values act as lower bounds (monotone).
void propagateX(const SequencePair& sp, std::span<const std::size_t> cells,
                std::span<const Coord> w, std::vector<Coord>& x) {
  std::vector<std::size_t> order(cells.begin(), cells.end());
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sp.alphaPos(a) < sp.alphaPos(b); });
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::size_t m = order[i];
    Coord v = x[m];
    for (std::size_t j = 0; j < i; ++j) {
      std::size_t p = order[j];
      if (sp.betaPos(p) < sp.betaPos(m)) v = std::max(v, x[p] + w[p]);
    }
    x[m] = v;
  }
}

/// Longest-path propagation in y (reverse alpha order = "below" DAG order).
void propagateY(const SequencePair& sp, std::span<const std::size_t> cells,
                std::span<const Coord> h, std::vector<Coord>& y) {
  std::vector<std::size_t> order(cells.begin(), cells.end());
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sp.alphaPos(a) > sp.alphaPos(b); });
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::size_t m = order[i];
    Coord v = y[m];
    for (std::size_t j = 0; j < i; ++j) {
      std::size_t p = order[j];
      if (sp.betaPos(p) < sp.betaPos(m)) v = std::max(v, y[p] + h[p]);
    }
    y[m] = v;
  }
}

struct OrientedPair {
  std::size_t left, right;
};

struct Island {
  std::vector<std::size_t> cells;  // global module ids
  Placement local;                 // indexed like `cells`
  Coord axis2x = 0;                // in island-local coordinates
  Coord w = 0, h = 0;              // bounding box
  bool usedFallback = false;
};

/// Mirror relaxation for ONE group over the induced sub-sequence-pair.
/// Returns false if no fixpoint is reached within maxIterations.
bool relaxIsland(const SequencePair& sp, std::span<const Coord> w,
                 std::span<const Coord> h, const SymmetryGroup& group,
                 std::span<const OrientedPair> pairs, int maxIterations,
                 Island& island) {
  const auto& cells = island.cells;
  std::vector<Coord> x(w.size(), 0), y(h.size(), 0);
  propagateX(sp, cells, w, x);
  propagateY(sp, cells, h, y);

  auto centerD = [&](std::size_t m) { return 2 * x[m] + w[m]; };
  Coord a2 = 0;
  Coord ceiling = 0;
  for (std::size_t m : cells) ceiling += 2 * w[m];

  int iter = 0;
  for (; iter < maxIterations; ++iter) {
    bool changed = false;
    for (const OrientedPair& pr : pairs) {
      a2 = std::max(a2, (centerD(pr.left) + centerD(pr.right)) / 2);
    }
    for (ModuleId s : group.selfs) a2 = std::max(a2, centerD(s));
    if (!group.selfs.empty() && (a2 % 2) != 0) ++a2;

    for (const OrientedPair& pr : pairs) {
      Coord targetD = 2 * a2 - centerD(pr.left);
      if (centerD(pr.right) < targetD) {
        x[pr.right] = (targetD - w[pr.right]) / 2;
        changed = true;
      }
    }
    for (ModuleId s : group.selfs) {
      if (centerD(s) < a2) {
        x[s] = (a2 - w[s]) / 2;
        changed = true;
      }
    }
    for (const OrientedPair& pr : pairs) {
      Coord target = std::max(y[pr.left], y[pr.right]);
      if (y[pr.left] != target || y[pr.right] != target) {
        y[pr.left] = y[pr.right] = target;
        changed = true;
      }
    }

    Coord sumBefore = 0;
    for (std::size_t m : cells) sumBefore += x[m] + y[m];
    propagateX(sp, cells, w, x);
    propagateY(sp, cells, h, y);
    Coord sumAfter = 0;
    for (std::size_t m : cells) sumAfter += x[m] + y[m];

    if (!changed && sumAfter == sumBefore) break;
    for (std::size_t m : cells) {
      if (x[m] > ceiling) return false;  // diverged
    }
  }
  if (iter >= maxIterations) return false;

  island.local = Placement(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::size_t m = cells[i];
    island.local[i] = {x[m], y[m], w[m], h[m]};
  }
  island.axis2x = a2;
  return true;
}

/// Guaranteed-feasible island: one mirrored pair per row (side by side,
/// centered on the axis), self-symmetric cells centered on rows of their
/// own, rows stacked in alpha order.
void stackedIsland(const SequencePair& sp, std::span<const Coord> w,
                   std::span<const Coord> h, const SymmetryGroup& group,
                   std::span<const OrientedPair> pairs, Island& island) {
  Coord half = 0;  // max half-width (axis distance)
  for (const OrientedPair& pr : pairs) half = std::max(half, w[pr.left]);
  for (ModuleId s : group.selfs) half = std::max(half, w[s] / 2);
  Coord a2 = 2 * half;  // doubled axis

  struct Row {
    std::size_t anchor;  // alpha-ordering key
    bool isPair;
    OrientedPair pr{};
    ModuleId self = 0;
  };
  std::vector<Row> rows;
  for (const OrientedPair& pr : pairs) {
    rows.push_back({std::min(sp.alphaPos(pr.left), sp.alphaPos(pr.right)), true, pr, 0});
  }
  for (ModuleId s : group.selfs) rows.push_back({sp.alphaPos(s), false, {}, s});
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.anchor < b.anchor; });

  island.local = Placement(island.cells.size());
  std::vector<std::size_t> localIndex(w.size(), 0);
  for (std::size_t i = 0; i < island.cells.size(); ++i) localIndex[island.cells[i]] = i;

  Coord yCursor = 0;
  for (const Row& row : rows) {
    if (row.isPair) {
      Coord wl = w[row.pr.left];
      island.local[localIndex[row.pr.left]] = {half - wl, yCursor, wl, h[row.pr.left]};
      island.local[localIndex[row.pr.right]] = {half, yCursor, wl, h[row.pr.right]};
      yCursor += h[row.pr.left];
    } else {
      Coord ws = w[row.self];
      island.local[localIndex[row.self]] = {(a2 - ws) / 2, yCursor, ws, h[row.self]};
      yCursor += h[row.self];
    }
  }
  island.axis2x = a2;
  island.usedFallback = true;
}

}  // namespace

std::optional<SymPlacementResult> buildSymmetricPlacement(
    const SequencePair& sp, std::span<const Coord> widths,
    std::span<const Coord> heights, std::span<const SymmetryGroup> groups,
    int maxIterations) {
  const std::size_t n = sp.size();
  assert(widths.size() == n && heights.size() == n);
  for (std::size_t m = 0; m < n; ++m) {
    assert(widths[m] % 2 == 0 && heights[m] % 2 == 0 &&
           "symmetric placement requires even module dimensions in DBU");
    (void)m;
  }

  if (groups.empty()) {
    SymPlacementResult result;
    result.placement = packSequencePair(sp, widths, heights);
    return result;
  }

  // --- 1. build one island per group. ---
  std::vector<Island> islands(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    islands[g].cells = groups[g].members();
    std::vector<OrientedPair> pairs;
    for (const SymPair& pr : groups[g].pairs) {
      if (sp.leftOf(pr.a, pr.b)) {
        pairs.push_back({pr.a, pr.b});
      } else if (sp.leftOf(pr.b, pr.a)) {
        pairs.push_back({pr.b, pr.a});
      } else {
        return std::nullopt;  // vertically related partners: not S-F
      }
    }
    if (!relaxIsland(sp, widths, heights, groups[g], pairs, maxIterations,
                     islands[g])) {
      stackedIsland(sp, widths, heights, groups[g], pairs, islands[g]);
    }
    islands[g].local.normalize();
    // Normalization shifted x by the bounding box offset; shift the axis by
    // the same amount (axis2x is doubled, offsets are applied twice).
    Rect bb = islands[g].local.boundingBox();
    (void)bb;  // normalize() already anchored at the origin
    islands[g].w = islands[g].local.boundingBox().w;
    islands[g].h = islands[g].local.boundingBox().h;
  }
  // Recompute each island's axis from its normalized placement: use the
  // first pair (or self) to re-derive it exactly.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const SymmetryGroup& grp = groups[g];
    const Island& isl = islands[g];
    auto localOf = [&](ModuleId m) {
      for (std::size_t i = 0; i < isl.cells.size(); ++i) {
        if (isl.cells[i] == m) return i;
      }
      return std::size_t{0};
    };
    if (!grp.pairs.empty()) {
      const Rect& a = isl.local[localOf(grp.pairs[0].a)];
      const Rect& b = isl.local[localOf(grp.pairs[0].b)];
      islands[g].axis2x = a.x + a.w + b.x;
    } else if (!grp.selfs.empty()) {
      const Rect& s = isl.local[localOf(grp.selfs[0])];
      islands[g].axis2x = 2 * s.x + s.w;
    }
  }

  // --- 2. reduced sequence-pair: free cells + one node per island. ---
  std::vector<std::size_t> nodeOf(n, static_cast<std::size_t>(-1));
  std::vector<std::size_t> freeCells;
  for (std::size_t m = 0; m < n; ++m) {
    bool inGroup = false;
    for (std::size_t g = 0; g < groups.size() && !inGroup; ++g) {
      inGroup = groups[g].contains(m);
    }
    if (!inGroup) freeCells.push_back(m);
  }
  const std::size_t reducedN = freeCells.size() + islands.size();
  std::vector<Coord> rw(reducedN), rh(reducedN);
  // Ordering keys: a free cell keeps its own positions; an island is ordered
  // by the first (minimum) position among its members.
  std::vector<std::size_t> alphaKey(reducedN), betaKey(reducedN);
  for (std::size_t i = 0; i < freeCells.size(); ++i) {
    rw[i] = widths[freeCells[i]];
    rh[i] = heights[freeCells[i]];
    alphaKey[i] = sp.alphaPos(freeCells[i]);
    betaKey[i] = sp.betaPos(freeCells[i]);
  }
  for (std::size_t g = 0; g < islands.size(); ++g) {
    std::size_t idx = freeCells.size() + g;
    rw[idx] = islands[g].w;
    rh[idx] = islands[g].h;
    std::size_t aMin = n, bMin = n;
    for (std::size_t m : islands[g].cells) {
      aMin = std::min(aMin, sp.alphaPos(m));
      bMin = std::min(bMin, sp.betaPos(m));
    }
    alphaKey[idx] = aMin;
    betaKey[idx] = bMin;
  }
  std::vector<std::size_t> alphaOrder(reducedN), betaOrder(reducedN);
  std::iota(alphaOrder.begin(), alphaOrder.end(), std::size_t{0});
  std::iota(betaOrder.begin(), betaOrder.end(), std::size_t{0});
  std::sort(alphaOrder.begin(), alphaOrder.end(),
            [&](std::size_t a, std::size_t b) { return alphaKey[a] < alphaKey[b]; });
  std::sort(betaOrder.begin(), betaOrder.end(),
            [&](std::size_t a, std::size_t b) { return betaKey[a] < betaKey[b]; });
  SequencePair reduced(alphaOrder, betaOrder);
  Placement packed = packSequencePair(reduced, rw, rh);

  // --- 3. compose the global placement. ---
  SymPlacementResult result;
  result.placement = Placement(n);
  result.axis2x.resize(groups.size());
  result.fallbacks = 0;
  for (std::size_t i = 0; i < freeCells.size(); ++i) {
    result.placement[freeCells[i]] = packed[i];
  }
  for (std::size_t g = 0; g < islands.size(); ++g) {
    const Rect& slot = packed[freeCells.size() + g];
    const Island& isl = islands[g];
    for (std::size_t i = 0; i < isl.cells.size(); ++i) {
      result.placement[isl.cells[i]] = isl.local[i].translated(slot.x, slot.y);
    }
    result.axis2x[g] = isl.axis2x + 2 * slot.x;
    if (isl.usedFallback) ++result.fallbacks;
  }

  if (!result.placement.isLegal() ||
      !verifySymmetry(result.placement, groups, result.axis2x)) {
    return std::nullopt;  // defensive: contract violation, not expected
  }
  return result;
}

bool verifySymmetry(const Placement& p, std::span<const SymmetryGroup> groups,
                    std::span<const Coord> axis2x) {
  if (axis2x.size() != groups.size()) return false;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const SymPair& pr : groups[g].pairs) {
      if (!mirroredAboutX2(p[pr.a], p[pr.b], axis2x[g])) return false;
    }
    for (ModuleId s : groups[g].selfs) {
      if (!centeredOnX2(p[s], axis2x[g])) return false;
    }
  }
  return true;
}

}  // namespace als
