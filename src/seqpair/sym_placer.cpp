#include "seqpair/sym_placer.h"

#include <algorithm>
#include <cassert>

#include "seqpair/packer.h"

namespace als {

namespace {

constexpr std::uint32_t kNoGroup = ~0u;

using detail::SymIslandBuf;
using detail::SymOrientedPair;
using detail::SymRow;

/// Longest-path propagation in x over an arbitrary cell subset: processes
/// cells in alpha order and raises x to clear every "left of" predecessor.
/// Existing values act as lower bounds (monotone).  `order` is a reused
/// ordering buffer.
void propagateX(const SequencePair& sp, std::span<const std::size_t> cells,
                std::span<const Coord> w, std::vector<Coord>& x,
                std::vector<std::size_t>& order) {
  order.assign(cells.begin(), cells.end());
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sp.alphaPos(a) < sp.alphaPos(b); });
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::size_t m = order[i];
    Coord v = x[m];
    for (std::size_t j = 0; j < i; ++j) {
      std::size_t p = order[j];
      if (sp.betaPos(p) < sp.betaPos(m)) v = std::max(v, x[p] + w[p]);
    }
    x[m] = v;
  }
}

/// Longest-path propagation in y (reverse alpha order = "below" DAG order).
void propagateY(const SequencePair& sp, std::span<const std::size_t> cells,
                std::span<const Coord> h, std::vector<Coord>& y,
                std::vector<std::size_t>& order) {
  order.assign(cells.begin(), cells.end());
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sp.alphaPos(a) > sp.alphaPos(b); });
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::size_t m = order[i];
    Coord v = y[m];
    for (std::size_t j = 0; j < i; ++j) {
      std::size_t p = order[j];
      if (sp.betaPos(p) < sp.betaPos(m)) v = std::max(v, y[p] + h[p]);
    }
    y[m] = v;
  }
}

/// Mirror relaxation for ONE group over the induced sub-sequence-pair.
/// Returns false if no fixpoint is reached within maxIterations.
bool relaxIsland(const SequencePair& sp, std::span<const Coord> w,
                 std::span<const Coord> h, const SymmetryGroup& group,
                 std::span<const SymOrientedPair> pairs, int maxIterations,
                 SymIslandBuf& island, SymPlaceScratch& scratch) {
  const auto& cells = island.cells;
  std::vector<Coord>& x = scratch.relaxX;
  std::vector<Coord>& y = scratch.relaxY;
  x.assign(w.size(), 0);
  y.assign(h.size(), 0);
  propagateX(sp, cells, w, x, scratch.order);
  propagateY(sp, cells, h, y, scratch.order);

  auto centerD = [&](std::size_t m) { return 2 * x[m] + w[m]; };
  Coord a2 = 0;
  Coord ceiling = 0;
  for (std::size_t m : cells) ceiling += 2 * w[m];

  int iter = 0;
  for (; iter < maxIterations; ++iter) {
    bool changed = false;
    for (const SymOrientedPair& pr : pairs) {
      a2 = std::max(a2, (centerD(pr.left) + centerD(pr.right)) / 2);
    }
    for (ModuleId s : group.selfs) a2 = std::max(a2, centerD(s));
    if (!group.selfs.empty() && (a2 % 2) != 0) ++a2;

    for (const SymOrientedPair& pr : pairs) {
      Coord targetD = 2 * a2 - centerD(pr.left);
      if (centerD(pr.right) < targetD) {
        x[pr.right] = (targetD - w[pr.right]) / 2;
        changed = true;
      }
    }
    for (ModuleId s : group.selfs) {
      if (centerD(s) < a2) {
        x[s] = (a2 - w[s]) / 2;
        changed = true;
      }
    }
    for (const SymOrientedPair& pr : pairs) {
      Coord target = std::max(y[pr.left], y[pr.right]);
      if (y[pr.left] != target || y[pr.right] != target) {
        y[pr.left] = y[pr.right] = target;
        changed = true;
      }
    }

    Coord sumBefore = 0;
    for (std::size_t m : cells) sumBefore += x[m] + y[m];
    propagateX(sp, cells, w, x, scratch.order);
    propagateY(sp, cells, h, y, scratch.order);
    Coord sumAfter = 0;
    for (std::size_t m : cells) sumAfter += x[m] + y[m];

    if (!changed && sumAfter == sumBefore) break;
    for (std::size_t m : cells) {
      if (x[m] > ceiling) return false;  // diverged
    }
  }
  if (iter >= maxIterations) return false;

  island.local.assign(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::size_t m = cells[i];
    island.local[i] = {x[m], y[m], w[m], h[m]};
  }
  island.axis2x = a2;
  return true;
}

/// Guaranteed-feasible island: one mirrored pair per row (side by side,
/// centered on the axis), self-symmetric cells centered on rows of their
/// own, rows stacked in alpha order.
void stackedIsland(const SequencePair& sp, std::span<const Coord> w,
                   std::span<const Coord> h, const SymmetryGroup& group,
                   std::span<const SymOrientedPair> pairs, SymIslandBuf& island,
                   SymPlaceScratch& scratch) {
  Coord half = 0;  // max half-width (axis distance)
  for (const SymOrientedPair& pr : pairs) half = std::max(half, w[pr.left]);
  for (ModuleId s : group.selfs) half = std::max(half, w[s] / 2);
  Coord a2 = 2 * half;  // doubled axis

  std::vector<SymRow>& rows = scratch.rows;
  rows.clear();
  for (const SymOrientedPair& pr : pairs) {
    rows.push_back({std::min(sp.alphaPos(pr.left), sp.alphaPos(pr.right)), true, pr, 0});
  }
  for (ModuleId s : group.selfs) rows.push_back({sp.alphaPos(s), false, {}, s});
  std::sort(rows.begin(), rows.end(),
            [](const SymRow& a, const SymRow& b) { return a.anchor < b.anchor; });

  island.local.assign(island.cells.size());
  std::vector<std::size_t>& localIndex = scratch.localIndex;
  localIndex.assign(w.size(), 0);
  for (std::size_t i = 0; i < island.cells.size(); ++i) localIndex[island.cells[i]] = i;

  Coord yCursor = 0;
  for (const SymRow& row : rows) {
    if (row.isPair) {
      Coord wl = w[row.pr.left];
      island.local[localIndex[row.pr.left]] = {half - wl, yCursor, wl, h[row.pr.left]};
      island.local[localIndex[row.pr.right]] = {half, yCursor, wl, h[row.pr.right]};
      yCursor += h[row.pr.left];
    } else {
      Coord ws = w[row.self];
      island.local[localIndex[row.self]] = {(a2 - ws) / 2, yCursor, ws, h[row.self]};
      yCursor += h[row.self];
    }
  }
  island.axis2x = a2;
  island.usedFallback = true;
}

}  // namespace

std::optional<SymPlacementResult> buildSymmetricPlacement(
    const SequencePair& sp, std::span<const Coord> widths,
    std::span<const Coord> heights, std::span<const SymmetryGroup> groups,
    int maxIterations) {
  SymPlaceScratch scratch;
  SymPlacementResult result;
  if (!buildSymmetricPlacementInto(sp, widths, heights, groups, maxIterations,
                                   scratch, result)) {
    return std::nullopt;
  }
  return result;
}

bool buildSymmetricPlacementInto(const SequencePair& sp,
                                 std::span<const Coord> widths,
                                 std::span<const Coord> heights,
                                 std::span<const SymmetryGroup> groups,
                                 int maxIterations, SymPlaceScratch& scratch,
                                 SymPlacementResult& out) {
  SymBuildOptions options;
  options.maxIterations = maxIterations;
  return buildSymmetricPlacementInto(sp, widths, heights, groups, options,
                                     scratch, out);
}

bool buildSymmetricPlacementInto(const SequencePair& sp,
                                 std::span<const Coord> widths,
                                 std::span<const Coord> heights,
                                 std::span<const SymmetryGroup> groups,
                                 const SymBuildOptions& options,
                                 SymPlaceScratch& scratch,
                                 SymPlacementResult& out) {
  const std::size_t n = sp.size();
  assert(widths.size() == n && heights.size() == n);
  for (std::size_t m = 0; m < n; ++m) {
    assert(widths[m] % 2 == 0 && heights[m] % 2 == 0 &&
           "symmetric placement requires even module dimensions in DBU");
    (void)m;
  }

  if (groups.empty()) {
    if (options.incremental) {
      scratch.redMoved.clear();
      std::vector<std::size_t>& moved =
          options.moved ? *options.moved : scratch.redMoved;
      packSequencePairIncrementalInto(sp, widths, heights, options.packing,
                                      scratch.pack, out.placement, moved);
    } else {
      packSequencePairInto(sp, widths, heights, options.packing, scratch.pack,
                           out.placement);
      if (options.moved) {
        for (std::size_t m = 0; m < n; ++m) options.moved->push_back(m);
      }
    }
    out.axis2x.clear();
    out.fallbacks = 0;
    return true;
  }

  // Group membership and free cells in O(n + members).
  scratch.groupOf.assign(n, kNoGroup);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const SymPair& pr : groups[g].pairs) {
      scratch.groupOf[pr.a] = static_cast<std::uint32_t>(g);
      scratch.groupOf[pr.b] = static_cast<std::uint32_t>(g);
    }
    for (ModuleId s : groups[g].selfs) {
      scratch.groupOf[s] = static_cast<std::uint32_t>(g);
    }
  }
  std::vector<std::size_t>& freeCells = scratch.freeCells;
  freeCells.clear();
  scratch.freeIndexOf.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    if (scratch.groupOf[m] == kNoGroup) {
      scratch.freeIndexOf[m] = freeCells.size();
      freeCells.push_back(m);
    }
  }

  // Warm-reuse gate: island caches and the incremental pack carry reduced
  // indices whose meaning depends on the instance shape.
  const bool warm = options.incremental && scratch.prevN == n &&
                    scratch.prevGroups == groups.size() &&
                    freeCells == scratch.prevFreeCells;
  if (!warm) {
    for (SymIslandBuf& isl : scratch.islands) isl.sigValid = false;
    scratch.pack.incValid = false;
    scratch.prevN = n;
    scratch.prevGroups = groups.size();
    scratch.prevFreeCells = freeCells;
  }

  // --- 1. build one island per group (unchanged signatures reuse the
  //        cached layout: relaxation is deterministic in its inputs). ---
  if (scratch.islands.size() < groups.size()) scratch.islands.resize(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    SymIslandBuf& island = scratch.islands[g];
    island.cells.clear();
    for (const SymPair& pr : groups[g].pairs) {
      island.cells.push_back(pr.a);
      island.cells.push_back(pr.b);
    }
    for (ModuleId s : groups[g].selfs) island.cells.push_back(s);
    island.pairs.clear();
    for (const SymPair& pr : groups[g].pairs) {
      if (sp.leftOf(pr.a, pr.b)) {
        island.pairs.push_back({pr.a, pr.b});
      } else if (sp.leftOf(pr.b, pr.a)) {
        island.pairs.push_back({pr.b, pr.a});
      } else {
        return false;  // vertically related partners: not S-F
      }
    }
    // Everything the island layout depends on, flattened.
    std::vector<std::size_t>& sig = scratch.tmpSig;
    sig.clear();
    for (std::size_t m : island.cells) {
      sig.push_back(m);
      sig.push_back(sp.alphaPos(m));
      sig.push_back(sp.betaPos(m));
      sig.push_back(static_cast<std::size_t>(widths[m]));
      sig.push_back(static_cast<std::size_t>(heights[m]));
    }
    island.changed = !(island.sigValid && sig == island.sig);
    if (!island.changed) continue;
    island.sig.swap(sig);
    island.sigValid = true;
    island.usedFallback = false;
    if (!relaxIsland(sp, widths, heights, groups[g], island.pairs,
                     options.maxIterations, island, scratch)) {
      stackedIsland(sp, widths, heights, groups[g], island.pairs, island,
                    scratch);
    }
    island.local.normalize();
    island.w = island.local.boundingBox().w;
    island.h = island.local.boundingBox().h;
    // Recompute the axis from the normalized placement: use the first pair
    // (or self) to re-derive it exactly.
    auto localOf = [&](ModuleId m) {
      for (std::size_t i = 0; i < island.cells.size(); ++i) {
        if (island.cells[i] == m) return i;
      }
      return std::size_t{0};
    };
    if (!groups[g].pairs.empty()) {
      const Rect& a = island.local[localOf(groups[g].pairs[0].a)];
      const Rect& b = island.local[localOf(groups[g].pairs[0].b)];
      island.axis2x = a.x + a.w + b.x;
    } else if (!groups[g].selfs.empty()) {
      const Rect& s = island.local[localOf(groups[g].selfs[0])];
      island.axis2x = 2 * s.x + s.w;
    }
  }

  // --- 2. reduced sequence-pair: free cells + one node per island. ---
  const std::size_t F = freeCells.size();
  const std::size_t reducedN = F + groups.size();
  scratch.rw.resize(reducedN);
  scratch.rh.resize(reducedN);
  for (std::size_t i = 0; i < F; ++i) {
    scratch.rw[i] = widths[freeCells[i]];
    scratch.rh[i] = heights[freeCells[i]];
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    scratch.rw[F + g] = scratch.islands[g].w;
    scratch.rh[F + g] = scratch.islands[g].h;
  }
  // Reduced orders in O(n): walk each original sequence, emitting a free
  // cell on sight and an island at its first member.  Identical to sorting
  // by min-position keys, because every key is a distinct position.
  auto buildOrder = [&](std::span<const std::size_t> seq,
                        std::vector<std::size_t>& order) {
    order.clear();
    scratch.groupSeen.assign(groups.size(), 0);
    for (std::size_t m : seq) {
      std::uint32_t g = scratch.groupOf[m];
      if (g == kNoGroup) {
        order.push_back(scratch.freeIndexOf[m]);
      } else if (!scratch.groupSeen[g]) {
        scratch.groupSeen[g] = 1;
        order.push_back(F + g);
      }
    }
  };
  buildOrder(sp.alpha(), scratch.alphaOrder);
  buildOrder(sp.beta(), scratch.betaOrder);
  scratch.reduced.assignSequences(scratch.alphaOrder, scratch.betaOrder);
  scratch.redMoved.clear();
  if (options.incremental) {
    packSequencePairIncrementalInto(scratch.reduced, scratch.rw, scratch.rh,
                                    options.packing, scratch.pack,
                                    scratch.packed, scratch.redMoved);
  } else {
    packSequencePairInto(scratch.reduced, scratch.rw, scratch.rh,
                         options.packing, scratch.pack, scratch.packed);
  }
  const Placement& packed = scratch.packed;

  // --- 3. compose the global placement. ---
  out.placement.assign(n);
  out.axis2x.resize(groups.size());
  out.fallbacks = 0;
  for (std::size_t i = 0; i < F; ++i) {
    out.placement[freeCells[i]] = packed[i];
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const Rect& slot = packed[F + g];
    const SymIslandBuf& isl = scratch.islands[g];
    for (std::size_t i = 0; i < isl.cells.size(); ++i) {
      out.placement[isl.cells[i]] = isl.local[i].translated(slot.x, slot.y);
    }
    out.axis2x[g] = isl.axis2x + 2 * slot.x;
    if (isl.usedFallback) ++out.fallbacks;
  }

  // Report possibly-changed modules: re-swept reduced nodes map to their
  // cells; an island whose internal layout changed moves all its cells even
  // when its slot did not.
  if (options.moved) {
    if (!options.incremental) {
      for (std::size_t m = 0; m < n; ++m) options.moved->push_back(m);
    } else {
      for (std::size_t idx : scratch.redMoved) {
        if (idx < F) {
          options.moved->push_back(freeCells[idx]);
        } else {
          for (std::size_t m : scratch.islands[idx - F].cells) {
            options.moved->push_back(m);
          }
        }
      }
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (!scratch.islands[g].changed) continue;
        for (std::size_t m : scratch.islands[g].cells) {
          options.moved->push_back(m);
        }
      }
    }
  }

  if (options.verify) {
    if (!out.placement.isLegal() ||
        !verifySymmetry(out.placement, groups, out.axis2x)) {
      return false;  // defensive: contract violation, not expected
    }
  } else {
    assert(out.placement.isLegal() &&
           verifySymmetry(out.placement, groups, out.axis2x) &&
           "symmetric construction contract violation");
  }
  return true;
}

bool verifySymmetry(const Placement& p, std::span<const SymmetryGroup> groups,
                    std::span<const Coord> axis2x) {
  if (axis2x.size() != groups.size()) return false;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const SymPair& pr : groups[g].pairs) {
      if (!mirroredAboutX2(p[pr.a], p[pr.b], axis2x[g])) return false;
    }
    for (ModuleId s : groups[g].selfs) {
      if (!centeredOnX2(p[s], axis2x[g])) return false;
    }
  }
  return true;
}

}  // namespace als
