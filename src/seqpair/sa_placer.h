// Device-level topological placement with symmetry constraints (Section II):
// simulated annealing restricted to the symmetric-feasible sequence-pair
// subspace.  The initial pair is symmetrized constructively and every move
// preserves property (1), so each visited code packs into an exactly
// symmetric placement — the annealer explores feasible solutions only.
#pragma once

#include <cstdint>
#include <memory>

#include "netlist/circuit.h"
#include "seqpair/packer.h"
#include "seqpair/sym_placer.h"
#include "util/cancel_token.h"

namespace als {

/// Reusable decode buffers of one sequence-pair SA run (optional; see
/// bstar/flat_placer.h for the sharing contract).
struct SeqPairScratch {
  std::vector<Coord> w, h;    ///< orientation-resolved footprints
  SymPlaceScratch sym;
  SymPlacementResult result;  ///< decoded placement of the current candidate
  // Moved-module accumulator for the hinted cost propose (epoch-dedup, see
  // bstar/flat_placer.h for the twin) plus the per-decode staging buffer.
  std::vector<ModuleId> movedList;
  std::vector<std::uint32_t> movedMark;
  std::uint32_t movedEpoch = 0;
  std::vector<ModuleId> tmpMoved;
};

struct SeqPairPlacerOptions {
  double wirelengthWeight = 0.25;  ///< lambda, scaled by sqrt(module area)
  std::size_t maxSweeps = 256;     ///< primary budget: total SA sweeps (deterministic)
  double timeLimitSec = 0.0;       ///< secondary wall-clock cap (0 = uncapped)
  std::uint64_t seed = 7;
  /// LCS pack strategy of the per-move decode; Auto resolves by instance
  /// size (all strategies yield identical placements, so this only affects
  /// speed, never the trajectory).
  PackStrategy packing = PackStrategy::Auto;
  double coolingFactor = 0.96;
  std::size_t movesPerTemp = 0;  ///< 0 = auto

  // Optional geometric objectives (Section II lists area, net length,
  // aspect ratio and maximum chip width/height as the classic cost mix).
  Coord maxWidth = 0;            ///< 0 = unconstrained [DBU]
  Coord maxHeight = 0;           ///< 0 = unconstrained [DBU]
  double targetAspect = 0.0;     ///< 0 = no aspect objective (w/h target)
  double outlineWeight = 4.0;    ///< penalty scale for outline violations
  double thermalWeight = 0.0;    ///< pair temperature-mismatch penalty

  /// Ablation toggle: disable the repairing swap-any move class (see
  /// seqpair/moves.h); the default move mix keeps it on.
  bool enableRepairMoves = true;

  /// Decode each move incrementally: cached symmetry islands, journal-
  /// rewound LCS sweeps and the hinted cost propose (bit-identical to the
  /// historical full decode, which stays available for bench A/B and as a
  /// trajectory-equivalence oracle in tests).
  bool incrementalDecode = true;

  SeqPairScratch* scratch = nullptr;  ///< optional caller-owned buffers

  /// Cooperative cancellation, checked per sweep (anneal/annealer.h).
  const CancelToken* cancel = nullptr;
};

struct SeqPairPlacerResult {
  Placement placement;
  std::vector<Coord> axis2x;  ///< per-group doubled symmetry axis
  SequencePair code;          ///< best encoding found
  Coord area = 0;
  Coord hpwl = 0;
  double cost = 0.0;
  std::size_t movesTried = 0;
  std::size_t sweeps = 0;  ///< SA temperature steps executed
  double seconds = 0.0;
};

/// Places `circuit` honoring all its symmetry groups exactly.
/// Stateless and re-entrant (engine/placement_engine.h thread-safety
/// contract): reads `circuit` only, owns its RNG via `options.seed`.
SeqPairPlacerResult placeSeqPairSA(const Circuit& circuit,
                                   const SeqPairPlacerOptions& options = {});

/// Resumable sequence-pair SA run — `placeSeqPairSA` cut at sweep
/// granularity; see bstar/flat_placer.h's FlatBStarSession for the shared
/// contract (run-to-completion bit-identity, `tempScale`, threading).
class SeqPairSession {
 public:
  SeqPairSession(const Circuit& circuit, const SeqPairPlacerOptions& options,
                 double tempScale = 1.0);
  ~SeqPairSession();

  SeqPairSession(const SeqPairSession&) = delete;
  SeqPairSession& operator=(const SeqPairSession&) = delete;

  std::size_t runSweeps(std::size_t maxSweeps);
  void run();
  bool finished() const;

  double currentCost() const;
  double bestCost() const;
  double temperature() const;

  void exchangeWith(SeqPairSession& other);

  /// Decodes the best state so far into the session scratch.  The reference
  /// stays valid until the session advances or decodes again.
  const Placement& bestPlacement();

  /// Replaces the current state with the diagonal-order pair of `placement`
  /// (seqpair/from_placement.h), recovers rotations from the rect
  /// dimensions (mirror partners forced consistent), re-establishes the
  /// symmetric-feasible invariant, and re-anchors.  Always succeeds for
  /// this backend.
  bool reseedFromPlacement(const Placement& placement);

  SeqPairPlacerResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace als
