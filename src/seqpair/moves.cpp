#include "seqpair/moves.h"

#include <cassert>

#include "seqpair/symmetry.h"

namespace als {

SymmetricMoveSet::SymmetricMoveSet(std::span<const SymmetryGroup> groups,
                                   std::vector<bool> rotatable,
                                   bool enableRepairMoves)
    : groups_(groups),
      rotatable_(std::move(rotatable)),
      enableRepairMoves_(enableRepairMoves) {
  groupOf_.assign(rotatable_.size(), npos);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (ModuleId m : groups_[g].members()) {
      groupOf_[m] = g;
      groupCells_.push_back(m);
    }
  }
  for (std::size_t m = 0; m < rotatable_.size(); ++m) {
    if (groupOf_[m] == npos) freeCells_.push_back(m);
  }
  merged_ = mergedGroup(groups_);
}

void SymmetricMoveSet::apply(SeqPairState& state, Rng& rng) const {
  // Class probabilities fall through to the next class when a class is
  // unavailable on this circuit (e.g. every cell in a symmetry group).
  double r = rng.uniform();
  if (r < 0.30 && groupCells_.size() >= 2) {
    swapGroupCells(state, rng);
  } else if (r < 0.45 && freeCells_.size() >= 2) {
    swapFree(state, rng, true, false);
  } else if (r < 0.60 && freeCells_.size() >= 2) {
    swapFree(state, rng, false, true);
  } else if (r < 0.70 && freeCells_.size() >= 2) {
    swapFree(state, rng, true, true);
  } else if (r < 0.92 && enableRepairMoves_) {
    swapAnyWithRepair(state, rng);
  } else if (groupCells_.size() >= 2 && r < 0.95) {
    swapGroupCells(state, rng);
  } else {
    rotate(state, rng);
  }
  assert(isSymmetricFeasible(state.sp, groups_));
}

void SymmetricMoveSet::swapGroupCells(SeqPairState& s, Rng& rng) const {
  // Under the union reading of property (1) the counterpart-swap argument
  // covers any two group cells (of the same or different groups): relabel
  // the union cells through the transposition and both sides of the
  // condition permute consistently.
  std::size_t a = groupCells_[rng.index(groupCells_.size())];
  std::size_t b = groupCells_[rng.index(groupCells_.size())];
  if (a == b) return;
  s.sp.swapAlphaModules(a, b);
  std::size_t sa = groups_[groupOf_[a]].symOf(a);
  std::size_t sb = groups_[groupOf_[b]].symOf(b);
  if (sa != sb) s.sp.swapBetaModules(sa, sb);
}

void SymmetricMoveSet::swapAnyWithRepair(SeqPairState& s, Rng& rng) const {
  // Unrestricted alpha swap followed by the constructive re-seating of each
  // group's members in beta — the repair restores property (1) while
  // keeping alpha and all non-member beta slots untouched.
  std::size_t n = s.rotated.size();
  std::size_t a = rng.index(n), b = rng.index(n);
  if (a == b) return;
  if (rng.coin()) {
    s.sp.swapAlphaModules(a, b);
  } else {
    s.sp.swapBetaModules(a, b);
  }
  // Constructive re-seating over the cached union group; same beta writes
  // as makeSymmetricFeasible, but allocation-free once warm.
  if (!groups_.empty()) {
    makeSymmetricFeasibleInPlace(s.sp, merged_, repairScratch_);
  }
}

void SymmetricMoveSet::swapFree(SeqPairState& s, Rng& rng, bool inAlpha,
                                bool inBeta) const {
  std::size_t a = freeCells_[rng.index(freeCells_.size())];
  std::size_t b = freeCells_[rng.index(freeCells_.size())];
  if (a == b) return;
  if (inAlpha) s.sp.swapAlphaModules(a, b);
  if (inBeta) s.sp.swapBetaModules(a, b);
}

void SymmetricMoveSet::rotate(SeqPairState& s, Rng& rng) const {
  if (s.rotated.empty()) return;
  std::size_t m = rng.index(s.rotated.size());
  if (!rotatable_[m]) return;
  std::size_t g = groupOf_[m];
  if (g != npos) {
    std::size_t partner = groups_[g].symOf(m);
    if (!rotatable_[partner]) return;
    s.rotated[partner] = !s.rotated[partner];
    if (partner != m) s.rotated[m] = !s.rotated[m];
  } else {
    s.rotated[m] = !s.rotated[m];
  }
}

}  // namespace als
