// Exhaustive sequence-pair enumeration (small n) — used to cross-check the
// Lemma's symmetric-feasible count and to validate property (1) against a
// brute-force geometric symmetry test.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "netlist/module.h"
#include "seqpair/sequence_pair.h"

namespace als {

/// Calls `visit` for every of the (n!)^2 sequence-pairs.  Practical for
/// n <= 6; the Fig.-1 example (n = 7) takes a few seconds and is exercised
/// once in bench_lemma.
void forEachSequencePair(std::size_t n,
                         const std::function<void(const SequencePair&)>& visit);

enum class SfReading {
  PerGroup,  ///< property (1) checked per group (the Lemma's count)
  Union,     ///< property (1) over the union of all group cells (buildable)
};

/// Counts pairs satisfying property (1) under the chosen reading, by
/// enumeration.  PerGroup equals the Lemma's formula exactly; Union is
/// bounded above by it (equal when there is a single group).
std::uint64_t countSymmetricFeasible(std::size_t n,
                                     std::span<const SymmetryGroup> groups,
                                     SfReading reading = SfReading::Union);

}  // namespace als
