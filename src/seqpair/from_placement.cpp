#include "seqpair/from_placement.h"

#include <algorithm>
#include <numeric>

namespace als {

void sequencePairFromPlacement(const Placement& placement,
                               SeqPairFromPlacementScratch& scratch,
                               SequencePair& sp) {
  const std::size_t n = placement.size();
  scratch.keyA.resize(n);
  scratch.keyB.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    const Rect& r = placement[m];
    // Doubled centers keep half-DBU centers integral (the center2x
    // convention of geom/placement.h).
    const Coord cx2 = 2 * r.x + r.w;
    const Coord cy2 = 2 * r.y + r.h;
    scratch.keyA[m] = cx2 - cy2;  // anti-diagonal: reading order of alpha
    scratch.keyB[m] = cx2 + cy2;  // diagonal: reading order of beta
  }
  scratch.alpha.resize(n);
  scratch.beta.resize(n);
  std::iota(scratch.alpha.begin(), scratch.alpha.end(), std::size_t{0});
  std::iota(scratch.beta.begin(), scratch.beta.end(), std::size_t{0});
  std::sort(scratch.alpha.begin(), scratch.alpha.end(),
            [&](std::size_t a, std::size_t b) {
              if (scratch.keyA[a] != scratch.keyA[b]) {
                return scratch.keyA[a] < scratch.keyA[b];
              }
              return a < b;
            });
  std::sort(scratch.beta.begin(), scratch.beta.end(),
            [&](std::size_t a, std::size_t b) {
              if (scratch.keyB[a] != scratch.keyB[b]) {
                return scratch.keyB[a] < scratch.keyB[b];
              }
              return a < b;
            });
  sp.assignSequences(scratch.alpha, scratch.beta);
}

SequencePair sequencePairFromPlacement(const Placement& placement) {
  SeqPairFromPlacementScratch scratch;
  SequencePair sp;
  sequencePairFromPlacement(placement, scratch, sp);
  return sp;
}

}  // namespace als
