// Sequence-pair packing via weighted longest common subsequences.
//
// The x coordinate of module m is the largest total width of modules that
// precede m in *both* sequences (its "left of" predecessors); symmetrically
// for y with alpha reversed.  The structure used to evaluate the running
// maxima determines the complexity per evaluation:
//
//   * Naive     — O(n^2) scan, the reference implementation;
//   * Fenwick   — O(n log n) prefix-max Fenwick tree (FAST-SP style [26]);
//   * Veb       — O(n log log n) using the van Emde Boas priority queue,
//                 the "efficient model of priority queue" Section II cites
//                 for the O(G * n log log n) evaluation bound.
//
// All three produce identical coordinates; tests cross-check them and the
// kernel bench (E4) measures the scaling.
#pragma once

#include <span>

#include "geom/placement.h"
#include "seqpair/sequence_pair.h"

namespace als {

enum class PackStrategy { Naive, Fenwick, Veb };

/// Packs the pair into the lower-left-compacted placement.
/// `widths` / `heights` are the (orientation-resolved) module footprints.
Placement packSequencePair(const SequencePair& sp, std::span<const Coord> widths,
                           std::span<const Coord> heights,
                           PackStrategy strategy = PackStrategy::Fenwick);

}  // namespace als
