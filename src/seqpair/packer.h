// Sequence-pair packing via weighted longest common subsequences.
//
// The x coordinate of module m is the largest total width of modules that
// precede m in *both* sequences (its "left of" predecessors); symmetrically
// for y with alpha reversed.  The structure used to evaluate the running
// maxima determines the complexity per evaluation:
//
//   * Naive     — O(n^2) scan, the reference implementation;
//   * Fenwick   — O(n log n) prefix-max Fenwick tree (FAST-SP style [26]);
//   * Veb       — O(n log log n) using the van Emde Boas priority queue,
//                 the "efficient model of priority queue" Section II cites
//                 for the O(G * n log log n) evaluation bound.
//
// All three produce identical coordinates; tests cross-check them and the
// kernel bench (E4) measures the scaling.
#pragma once

#include <span>

#include "geom/placement.h"
#include "seqpair/sequence_pair.h"

namespace als {

enum class PackStrategy { Naive, Fenwick, Veb };

/// Reusable buffers of one LCS packing loop (the sequence-pair placer's
/// per-move decode).  Warm buffers make the Naive and Fenwick strategies
/// allocation-free; Veb keeps its per-call tree (bench-only strategy).
struct SeqPairPackScratch {
  std::vector<Coord> x, y;
  std::vector<std::size_t> rev;          ///< reversed alpha order (y sweep)
  std::vector<Coord> fenwick;            ///< prefix-max Fenwick storage
  std::vector<std::pair<std::size_t, Coord>> naiveEntries;
};

/// Packs the pair into the lower-left-compacted placement.
/// `widths` / `heights` are the (orientation-resolved) module footprints.
Placement packSequencePair(const SequencePair& sp, std::span<const Coord> widths,
                           std::span<const Coord> heights,
                           PackStrategy strategy = PackStrategy::Fenwick);

/// Scratch-reuse variant: identical placements, `out` fully overwritten.
void packSequencePairInto(const SequencePair& sp, std::span<const Coord> widths,
                          std::span<const Coord> heights, PackStrategy strategy,
                          SeqPairPackScratch& scratch, Placement& out);

}  // namespace als
