// Sequence-pair packing via weighted longest common subsequences.
//
// The x coordinate of module m is the largest total width of modules that
// precede m in *both* sequences (its "left of" predecessors); symmetrically
// for y with alpha reversed.  The structure used to evaluate the running
// maxima determines the complexity per evaluation:
//
//   * Naive     — O(n^2) scan, the reference implementation;
//   * Fenwick   — O(n log n) prefix-max Fenwick tree (FAST-SP style [26]);
//   * Veb       — O(n log log n) using the van Emde Boas priority queue,
//                 the "efficient model of priority queue" Section II cites
//                 for the O(G * n log log n) evaluation bound;
//   * Auto      — picks one of the above from the instance size (the SA
//                 placers' default: constant factors beat asymptotics on
//                 MCNC-scale circuits, the subquadratic structures win at
//                 GSRC scale).
//
// All strategies produce identical coordinates; tests cross-check them and
// the kernel bench (E4) measures the scaling.  Every structure lives in
// caller-owned scratch storage (including the vEB tree), so a warm decode
// loop performs zero steady-state heap allocations with any strategy.
//
// == Incremental packing ==
//
// A seqpair move (swap, rotation) leaves a prefix of each LCS sweep's step
// inputs untouched, and the sweep structure's state at step i is a function
// of steps < i alone.  `packSequencePairIncrementalInto` therefore journals
// every structure mutation per step, and on the next call rewinds each
// sweep to its first changed step and re-runs the suffix only — identical
// coordinates to a full pack, at cost proportional to what the move
// disturbed.
#pragma once

#include <span>

#include "geom/placement.h"
#include "seqpair/sequence_pair.h"
#include "util/veb.h"

namespace als {

enum class PackStrategy { Naive, Fenwick, Veb, Auto };

/// The auto-selection rule: Naive below 16 modules (one cache line beats
/// any tree), Fenwick up to 127, Veb from 128 on.  Explicit strategies pass
/// through unchanged.
constexpr PackStrategy resolvePackStrategy(PackStrategy s, std::size_t n) {
  if (s != PackStrategy::Auto) return s;
  if (n < 16) return PackStrategy::Naive;
  if (n < 128) return PackStrategy::Fenwick;
  return PackStrategy::Veb;
}

/// One journaled mutation of an incremental sweep structure (undo unit).
struct SweepOp {
  enum Kind : std::uint8_t {
    kFenWrote,      ///< fenwick cell `pos` held `val` before the write
    kVebErased,     ///< staircase entry (pos, val) was erased as dominated
    kVebInserted,   ///< position `pos` was newly inserted (no prior entry)
    kVebOverwrote,  ///< position `pos` held `val` before the overwrite
  };
  std::size_t pos = 0;
  Coord val = 0;
  Kind kind = kFenWrote;
};

/// Persistent state of one LCS sweep across incremental packs: the step
/// inputs of the last pack, the live prefix-max structure (exactly one is
/// in use, selected by the strategy), and the per-step undo journal.
struct SeqPairSweepState {
  std::vector<std::size_t> mod, beta;  ///< step inputs: module, beta position
  std::vector<Coord> extent;           ///< step input: module extent
  std::vector<std::pair<std::size_t, Coord>> naiveEntries;  ///< one per step
  std::vector<Coord> fenwick;
  VebTree vebPos;
  std::vector<Coord> vebValue;
  std::vector<SweepOp> ops;          ///< journaled mutations (Fenwick/Veb)
  std::vector<std::size_t> opOfs;    ///< per-step offset into ops (steps + 1)
};

/// Reusable buffers of one LCS packing loop (the sequence-pair placer's
/// per-move decode).  Warm buffers make every strategy allocation-free:
/// the vEB staircase lives here too (prewarmed on first use).
struct SeqPairPackScratch {
  std::vector<Coord> x, y;
  std::vector<std::size_t> rev;          ///< reversed alpha order (y sweep)
  std::vector<Coord> fenwick;            ///< prefix-max Fenwick storage
  std::vector<std::pair<std::size_t, Coord>> naiveEntries;
  VebTree veb;                           ///< warm tree of the full-pack Veb strategy
  std::vector<Coord> vebValue;
  // Incremental-pack state; valid only between incremental calls on this
  // scratch (a full packSequencePairInto invalidates it).
  bool incValid = false;
  PackStrategy incStrategy = PackStrategy::Fenwick;
  SeqPairSweepState xSweep, ySweep;
};

/// Packs the pair into the lower-left-compacted placement.
/// `widths` / `heights` are the (orientation-resolved) module footprints.
Placement packSequencePair(const SequencePair& sp, std::span<const Coord> widths,
                           std::span<const Coord> heights,
                           PackStrategy strategy = PackStrategy::Fenwick);

/// Scratch-reuse variant: identical placements, `out` fully overwritten.
/// Invalidates any incremental state held by `scratch`.
void packSequencePairInto(const SequencePair& sp, std::span<const Coord> widths,
                          std::span<const Coord> heights, PackStrategy strategy,
                          SeqPairPackScratch& scratch, Placement& out);

/// Incremental pack: bit-identical placements to packSequencePairInto, but
/// when `scratch` holds the state of a previous call each LCS sweep re-runs
/// only from its first changed step (journal-rewound structures).  `out`
/// must be the same buffer across calls — only the rects of re-swept
/// modules are rewritten.  Every re-swept module id is appended to `moved`
/// (duplicates possible; a cold call appends all).  The caller owns cache
/// validity: after packing a DIFFERENT sequence-pair stream on this
/// scratch, set `scratch.incValid = false`.
void packSequencePairIncrementalInto(const SequencePair& sp,
                                     std::span<const Coord> widths,
                                     std::span<const Coord> heights,
                                     PackStrategy strategy,
                                     SeqPairPackScratch& scratch, Placement& out,
                                     std::vector<std::size_t>& moved);

}  // namespace als
