// Symmetry-preserving sequence-pair moves (Section II).
//
// The paper restricts the annealer's exploration to the S-F subset by (a)
// starting from a symmetric-feasible pair and (b) using only moves that
// preserve property (1): "if two cells from distinct symmetric pairs are
// interchanged in the sequence alpha, then their symmetric counterparts must
// be interchanged as well in the sequence beta".  The move classes here are:
//
//   SwapGroupCells   — swap two group cells in alpha AND their sym() images
//                      in beta.  Safe without repair under the union reading
//                      of property (1): relabel the union cells through the
//                      transposition and both sides of the condition permute
//                      consistently.
//   SwapFreeAlpha /
//   SwapFreeBeta     — swap two cells not in any group within one sequence
//                      (cannot affect any group relation);
//   SwapFreeBoth     — both sequences at once (a stronger relocation);
//   SwapAnyRepair    — unrestricted swap followed by the constructive beta
//                      re-seating of makeSymmetricFeasible (the repair keeps
//                      alpha and non-member beta slots untouched);
//   Rotate           — toggle the orientation of a rotatable module; for
//                      paired cells both partners rotate together so the
//                      footprints stay mirrorable.
//
// Each application is O(1) on the encoding; a debug assert re-checks
// property (1) after every move.
#pragma once

#include <span>
#include <vector>

#include "netlist/module.h"
#include "seqpair/sequence_pair.h"
#include "seqpair/symmetry.h"
#include "util/rng.h"

namespace als {

/// SA state for the sequence-pair placer: the encoding plus per-module
/// orientation flags (true = rotated 90 degrees).
struct SeqPairState {
  SequencePair sp;
  std::vector<bool> rotated;
};

class SymmetricMoveSet {
 public:
  /// `groups` must outlive the move set.  `rotatable[m]` gates Rotate moves.
  /// `enableRepairMoves` gates the SwapAnyRepair class (ablation A2 toggles
  /// it off to measure its contribution to exploration).
  SymmetricMoveSet(std::span<const SymmetryGroup> groups,
                   std::vector<bool> rotatable, bool enableRepairMoves = true);

  /// Applies one random property-(1)-preserving move in place.  `apply` is
  /// const in the logical sense but NOT re-entrant: the repair move reuses
  /// per-move-set scratch buffers, so each SA run must own its move set
  /// (which every backend already does).
  void apply(SeqPairState& state, Rng& rng) const;

 private:
  void swapGroupCells(SeqPairState& s, Rng& rng) const;
  void swapAnyWithRepair(SeqPairState& s, Rng& rng) const;
  void swapFree(SeqPairState& s, Rng& rng, bool inAlpha, bool inBeta) const;
  void rotate(SeqPairState& s, Rng& rng) const;

  std::span<const SymmetryGroup> groups_;
  std::vector<bool> rotatable_;
  bool enableRepairMoves_ = true;
  std::vector<std::size_t> groupCells_;   // all cells in some group
  std::vector<std::size_t> freeCells_;    // cells in no group
  std::vector<std::size_t> groupOf_;      // group index per cell, npos if free
  SymmetryGroup merged_;                  // union group, built once
  mutable SymFeasibleScratch repairScratch_;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace als
