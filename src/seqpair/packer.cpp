#include "seqpair/packer.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/veb.h"

namespace als {

namespace {

/// Prefix-max Fenwick tree: point update, prefix-maximum query.  Values only
/// grow, which is exactly the LCS packer's access pattern.  The storage is
/// caller-owned so the per-move decode can reuse one buffer.
class MaxFenwick {
 public:
  MaxFenwick(std::size_t n, std::vector<Coord>& storage) : tree_(storage) {
    tree_.assign(n + 1, 0);
  }

  /// max over positions [0, i] (inclusive); 0 when empty.
  Coord prefixMax(std::size_t i) const {
    Coord m = 0;
    for (std::size_t k = i + 1; k > 0; k -= k & (~k + 1)) m = std::max(m, tree_[k]);
    return m;
  }

  void update(std::size_t i, Coord v) {
    for (std::size_t k = i + 1; k < tree_.size(); k += k & (~k + 1)) {
      tree_[k] = std::max(tree_[k], v);
    }
  }

 private:
  std::vector<Coord>& tree_;
};

/// Monotone staircase over a van Emde Boas position set: positions kept in
/// the tree always carry strictly increasing values, so the best value
/// strictly below a query position is found with one predecessor call.
/// Tree and value storage are caller-owned; construction re-targets the
/// (warm, materialized) tree instead of building one.
class VebStaircase {
 public:
  VebStaircase(std::size_t universe, VebTree& positions,
               std::vector<Coord>& value)
      : positions_(positions), value_(value) {
    positions_.resetUniverse(universe);
    value_.assign(universe, 0);
  }

  /// max value among entries with position < p; 0 when none.
  Coord maxBelow(std::size_t p) const {
    auto pred = positions_.predecessor(p);
    return pred ? value_[*pred] : 0;
  }

  void insert(std::size_t p, Coord v) {
    // A dominated insertion (some entry at position <= p with value >= v)
    // can never win a later query; skip it to keep the staircase monotone.
    if (positions_.contains(p) && value_[p] >= v) return;
    if (maxBelow(p) >= v) return;
    // Remove now-dominated successors (position > p, value <= v).
    for (auto s = positions_.successor(p); s && value_[*s] <= v;
         s = positions_.successor(p)) {
      positions_.erase(*s);
    }
    if (!positions_.contains(p)) positions_.insert(p);
    value_[p] = v;
  }

 private:
  VebTree& positions_;
  std::vector<Coord>& value_;
};

/// One LCS sweep: processes modules in `order`, placing each at the maximum
/// end of already-processed modules with smaller beta position.
template <class Structure>
void sweep(std::span<const std::size_t> order, const SequencePair& sp,
           std::span<const Coord> extent, std::span<Coord> coord, Structure&& s) {
  for (std::size_t m : order) {
    std::size_t b = sp.betaPos(m);
    Coord pos = b == 0 ? 0 : s.prefixMaxAt(b);
    coord[m] = pos;
    s.insertAt(b, pos + extent[m]);
  }
}

struct NaiveAdapter {
  std::vector<std::pair<std::size_t, Coord>>& entries;  // (beta position, end)
  explicit NaiveAdapter(std::vector<std::pair<std::size_t, Coord>>& storage)
      : entries(storage) {
    entries.clear();
  }
  Coord prefixMaxAt(std::size_t b) const {
    Coord m = 0;
    for (const auto& [pos, end] : entries) {
      if (pos < b) m = std::max(m, end);
    }
    return m;
  }
  void insertAt(std::size_t b, Coord end) { entries.emplace_back(b, end); }
};

struct FenwickAdapter {
  MaxFenwick tree;
  FenwickAdapter(std::size_t n, std::vector<Coord>& storage)
      : tree(n, storage) {}
  Coord prefixMaxAt(std::size_t b) const { return tree.prefixMax(b - 1); }
  void insertAt(std::size_t b, Coord end) { tree.update(b, end); }
};

struct VebAdapter {
  VebStaircase stair;
  VebAdapter(std::size_t n, VebTree& positions, std::vector<Coord>& value)
      : stair(n, positions, value) {}
  Coord prefixMaxAt(std::size_t b) const { return stair.maxBelow(b); }
  void insertAt(std::size_t b, Coord end) { stair.insert(b, end); }
};

template <class MakeStructure>
void packWithInto(const SequencePair& sp, std::span<const Coord> widths,
                  std::span<const Coord> heights, MakeStructure makeStructure,
                  SeqPairPackScratch& scratch, Placement& out) {
  std::size_t n = sp.size();
  scratch.x.assign(n, 0);
  scratch.y.assign(n, 0);

  // x sweep: alpha order; predecessors in both sequences are "left of".
  {
    auto s = makeStructure();
    sweep(sp.alpha(), sp, widths, scratch.x, s);
  }
  // y sweep: reverse alpha order; for already-processed i (alpha-after m)
  // with smaller beta position, i is below m.
  {
    auto s = makeStructure();
    scratch.rev.assign(sp.alpha().rbegin(), sp.alpha().rend());
    sweep(scratch.rev, sp, heights, scratch.y, s);
  }

  out.assign(n);
  for (std::size_t m = 0; m < n; ++m) {
    out[m] = {scratch.x[m], scratch.y[m], widths[m], heights[m]};
  }
}

// ---------------------------------------------------------------------------
// Incremental sweeps.
//
// Each journaled adapter runs the *same* algorithm as its full-pack twin on
// the persistent structure inside a SeqPairSweepState, but records every
// mutation as a SweepOp so the structure can be rewound to any earlier step
// by replaying the journal backwards.  The sweep inputs of step i — the
// module, its beta position, its extent — fully determine the mutation, so
// rewinding to the first changed step and re-running the suffix reproduces
// the full sweep bit for bit.

/// One entry is appended per step, so undo is a resize and the journal is
/// the entry vector itself.
struct JournaledNaive {
  SeqPairSweepState& st;
  void reset(std::size_t) { st.naiveEntries.clear(); }
  void undoTo(std::size_t d) { st.naiveEntries.resize(d); }
  Coord prefixMaxAt(std::size_t b) const {
    Coord m = 0;
    for (const auto& [pos, end] : st.naiveEntries) {
      if (pos < b) m = std::max(m, end);
    }
    return m;
  }
  void insertAt(std::size_t b, Coord end) { st.naiveEntries.emplace_back(b, end); }
};

struct JournaledFenwick {
  SeqPairSweepState& st;
  void reset(std::size_t n) {
    st.fenwick.assign(n + 1, 0);
    st.ops.clear();
    st.opOfs.assign(1, 0);
  }
  void undoTo(std::size_t d) {
    assert(d < st.opOfs.size());
    for (std::size_t i = st.ops.size(); i > st.opOfs[d];) {
      --i;
      st.fenwick[st.ops[i].pos] = st.ops[i].val;
    }
    st.ops.resize(st.opOfs[d]);
    st.opOfs.resize(d + 1);
  }
  Coord prefixMaxAt(std::size_t b) const {
    // == MaxFenwick::prefixMax(b - 1): max over positions [0, b).
    Coord m = 0;
    for (std::size_t k = b; k > 0; k -= k & (~k + 1)) {
      m = std::max(m, st.fenwick[k]);
    }
    return m;
  }
  void insertAt(std::size_t b, Coord v) {
    // Cells that already dominate v are untouched, so only real writes are
    // journaled — undo restores exactly the cells this step changed.
    for (std::size_t k = b + 1; k < st.fenwick.size(); k += k & (~k + 1)) {
      if (st.fenwick[k] < v) {
        st.ops.push_back({k, st.fenwick[k], SweepOp::kFenWrote});
        st.fenwick[k] = v;
      }
    }
    st.opOfs.push_back(st.ops.size());
  }
};

struct JournaledVeb {
  SeqPairSweepState& st;
  void reset(std::size_t n) {
    st.vebPos.resetUniverse(n);
    st.vebValue.assign(n, 0);
    st.ops.clear();
    st.opOfs.assign(1, 0);
  }
  void undoTo(std::size_t d) {
    assert(d < st.opOfs.size());
    for (std::size_t i = st.ops.size(); i > st.opOfs[d];) {
      --i;
      const SweepOp& op = st.ops[i];
      switch (op.kind) {
        case SweepOp::kVebErased:
          st.vebPos.insert(op.pos);
          st.vebValue[op.pos] = op.val;
          break;
        case SweepOp::kVebInserted:
          st.vebPos.erase(op.pos);
          break;
        case SweepOp::kVebOverwrote:
          st.vebValue[op.pos] = op.val;
          break;
        case SweepOp::kFenWrote:
          assert(false && "fenwick op in veb journal");
          break;
      }
    }
    st.ops.resize(st.opOfs[d]);
    st.opOfs.resize(d + 1);
  }
  Coord maxBelow(std::size_t p) const {
    auto pred = st.vebPos.predecessor(p);
    return pred ? st.vebValue[*pred] : 0;
  }
  Coord prefixMaxAt(std::size_t b) const { return maxBelow(b); }
  void insertAt(std::size_t p, Coord v) {
    // Mirrors VebStaircase::insert, journaling each structure mutation.
    if (!(st.vebPos.contains(p) && st.vebValue[p] >= v) && maxBelow(p) < v) {
      for (auto s = st.vebPos.successor(p); s && st.vebValue[*s] <= v;
           s = st.vebPos.successor(p)) {
        st.ops.push_back({*s, st.vebValue[*s], SweepOp::kVebErased});
        st.vebPos.erase(*s);
      }
      if (!st.vebPos.contains(p)) {
        st.vebPos.insert(p);
        st.ops.push_back({p, 0, SweepOp::kVebInserted});
      } else {
        st.ops.push_back({p, st.vebValue[p], SweepOp::kVebOverwrote});
      }
      st.vebValue[p] = v;
    }
    st.opOfs.push_back(st.ops.size());
  }
};

/// Runs one sweep incrementally: diffs the step inputs against the state's
/// recorded inputs, rewinds the structure to the first changed step, and
/// re-runs only the suffix.  Every re-swept module is appended to `moved`.
template <class Adapter>
void sweepIncremental(SeqPairSweepState& st, std::span<const std::size_t> order,
                      const SequencePair& sp, std::span<const Coord> extent,
                      std::span<Coord> coord, Adapter a, bool warm,
                      std::vector<std::size_t>& moved) {
  const std::size_t n = order.size();
  std::size_t d = 0;
  if (!warm) {
    a.reset(n);
    st.mod.clear();
    st.beta.clear();
    st.extent.clear();
  } else {
    while (d < n) {
      std::size_t m = order[d];
      if (st.mod[d] != m || st.beta[d] != sp.betaPos(m) ||
          st.extent[d] != extent[m]) {
        break;
      }
      ++d;
    }
    a.undoTo(d);
  }
  st.mod.resize(n);
  st.beta.resize(n);
  st.extent.resize(n);
  for (std::size_t i = d; i < n; ++i) {
    std::size_t m = order[i];
    std::size_t b = sp.betaPos(m);
    st.mod[i] = m;
    st.beta[i] = b;
    st.extent[i] = extent[m];
    Coord pos = b == 0 ? 0 : a.prefixMaxAt(b);
    coord[m] = pos;
    a.insertAt(b, pos + extent[m]);
    moved.push_back(m);
  }
}

}  // namespace

Placement packSequencePair(const SequencePair& sp, std::span<const Coord> widths,
                           std::span<const Coord> heights, PackStrategy strategy) {
  SeqPairPackScratch scratch;
  Placement out;
  packSequencePairInto(sp, widths, heights, strategy, scratch, out);
  return out;
}

void packSequencePairInto(const SequencePair& sp, std::span<const Coord> widths,
                          std::span<const Coord> heights, PackStrategy strategy,
                          SeqPairPackScratch& scratch, Placement& out) {
  assert(widths.size() == sp.size() && heights.size() == sp.size());
  scratch.incValid = false;  // a full pack orphans any incremental state
  switch (resolvePackStrategy(strategy, sp.size())) {
    case PackStrategy::Naive:
      packWithInto(sp, widths, heights,
                   [&] { return NaiveAdapter(scratch.naiveEntries); }, scratch,
                   out);
      return;
    case PackStrategy::Fenwick:
      packWithInto(sp, widths, heights,
                   [&] { return FenwickAdapter(sp.size(), scratch.fenwick); },
                   scratch, out);
      return;
    case PackStrategy::Veb:
      packWithInto(
          sp, widths, heights,
          [&] { return VebAdapter(sp.size(), scratch.veb, scratch.vebValue); },
          scratch, out);
      return;
    case PackStrategy::Auto:
      break;  // unreachable: resolvePackStrategy never returns Auto
  }
  out.assign(sp.size());
}

void packSequencePairIncrementalInto(const SequencePair& sp,
                                     std::span<const Coord> widths,
                                     std::span<const Coord> heights,
                                     PackStrategy strategy,
                                     SeqPairPackScratch& scratch, Placement& out,
                                     std::vector<std::size_t>& moved) {
  const std::size_t n = sp.size();
  assert(widths.size() == n && heights.size() == n);
  const PackStrategy resolved = resolvePackStrategy(strategy, n);
  const bool warm = scratch.incValid && scratch.incStrategy == resolved &&
                    scratch.xSweep.mod.size() == n &&
                    scratch.ySweep.mod.size() == n && out.size() == n &&
                    scratch.x.size() == n && scratch.y.size() == n;
  if (!warm) {
    scratch.x.assign(n, 0);
    scratch.y.assign(n, 0);
    out.assign(n);
  }
  const std::size_t movedStart = moved.size();

  scratch.rev.assign(sp.alpha().rbegin(), sp.alpha().rend());
  switch (resolved) {
    case PackStrategy::Naive:
      sweepIncremental(scratch.xSweep, sp.alpha(), sp, widths, scratch.x,
                       JournaledNaive{scratch.xSweep}, warm, moved);
      sweepIncremental(scratch.ySweep, scratch.rev, sp, heights, scratch.y,
                       JournaledNaive{scratch.ySweep}, warm, moved);
      break;
    case PackStrategy::Fenwick:
      sweepIncremental(scratch.xSweep, sp.alpha(), sp, widths, scratch.x,
                       JournaledFenwick{scratch.xSweep}, warm, moved);
      sweepIncremental(scratch.ySweep, scratch.rev, sp, heights, scratch.y,
                       JournaledFenwick{scratch.ySweep}, warm, moved);
      break;
    case PackStrategy::Veb:
      sweepIncremental(scratch.xSweep, sp.alpha(), sp, widths, scratch.x,
                       JournaledVeb{scratch.xSweep}, warm, moved);
      sweepIncremental(scratch.ySweep, scratch.rev, sp, heights, scratch.y,
                       JournaledVeb{scratch.ySweep}, warm, moved);
      break;
    case PackStrategy::Auto:
      break;  // unreachable: resolvePackStrategy never returns Auto
  }
  scratch.incValid = true;
  scratch.incStrategy = resolved;

  // A module whose width changed diverges its x-sweep step (extents are step
  // inputs), so every rect field of a stale module is covered by one of the
  // two moved ranges; untouched modules keep their previous rect verbatim.
  for (std::size_t i = movedStart; i < moved.size(); ++i) {
    std::size_t m = moved[i];
    out[m] = {scratch.x[m], scratch.y[m], widths[m], heights[m]};
  }

#ifndef NDEBUG
  {  // Debug oracle: the incremental pack must equal a fresh full pack.
    thread_local SeqPairPackScratch oracleScratch;
    thread_local Placement oracle;
    packSequencePairInto(sp, widths, heights, resolved, oracleScratch, oracle);
    for (std::size_t m = 0; m < n; ++m) {
      assert(out[m] == oracle[m] && "incremental pack diverged from full pack");
    }
  }
#endif
}

}  // namespace als
