#include "seqpair/packer.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/veb.h"

namespace als {

namespace {

/// Prefix-max Fenwick tree: point update, prefix-maximum query.  Values only
/// grow, which is exactly the LCS packer's access pattern.  The storage is
/// caller-owned so the per-move decode can reuse one buffer.
class MaxFenwick {
 public:
  MaxFenwick(std::size_t n, std::vector<Coord>& storage) : tree_(storage) {
    tree_.assign(n + 1, 0);
  }

  /// max over positions [0, i] (inclusive); 0 when empty.
  Coord prefixMax(std::size_t i) const {
    Coord m = 0;
    for (std::size_t k = i + 1; k > 0; k -= k & (~k + 1)) m = std::max(m, tree_[k]);
    return m;
  }

  void update(std::size_t i, Coord v) {
    for (std::size_t k = i + 1; k < tree_.size(); k += k & (~k + 1)) {
      tree_[k] = std::max(tree_[k], v);
    }
  }

 private:
  std::vector<Coord>& tree_;
};

/// Monotone staircase over a van Emde Boas position set: positions kept in
/// the tree always carry strictly increasing values, so the best value
/// strictly below a query position is found with one predecessor call.
class VebStaircase {
 public:
  explicit VebStaircase(std::size_t universe)
      : positions_(universe), value_(universe, 0) {}

  /// max value among entries with position < p; 0 when none.
  Coord maxBelow(std::size_t p) const {
    auto pred = positions_.predecessor(p);
    return pred ? value_[*pred] : 0;
  }

  void insert(std::size_t p, Coord v) {
    // A dominated insertion (some entry at position <= p with value >= v)
    // can never win a later query; skip it to keep the staircase monotone.
    if (positions_.contains(p) && value_[p] >= v) return;
    if (maxBelow(p) >= v) return;
    // Remove now-dominated successors (position > p, value <= v).
    for (auto s = positions_.successor(p); s && value_[*s] <= v;
         s = positions_.successor(p)) {
      positions_.erase(*s);
    }
    if (!positions_.contains(p)) positions_.insert(p);
    value_[p] = v;
  }

 private:
  VebTree positions_;
  std::vector<Coord> value_;
};

/// One LCS sweep: processes modules in `order`, placing each at the maximum
/// end of already-processed modules with smaller beta position.
template <class Structure>
void sweep(std::span<const std::size_t> order, const SequencePair& sp,
           std::span<const Coord> extent, std::span<Coord> coord, Structure&& s) {
  for (std::size_t m : order) {
    std::size_t b = sp.betaPos(m);
    Coord pos = b == 0 ? 0 : s.prefixMaxAt(b);
    coord[m] = pos;
    s.insertAt(b, pos + extent[m]);
  }
}

struct NaiveAdapter {
  std::vector<std::pair<std::size_t, Coord>>& entries;  // (beta position, end)
  explicit NaiveAdapter(std::vector<std::pair<std::size_t, Coord>>& storage)
      : entries(storage) {
    entries.clear();
  }
  Coord prefixMaxAt(std::size_t b) const {
    Coord m = 0;
    for (const auto& [pos, end] : entries) {
      if (pos < b) m = std::max(m, end);
    }
    return m;
  }
  void insertAt(std::size_t b, Coord end) { entries.emplace_back(b, end); }
};

struct FenwickAdapter {
  MaxFenwick tree;
  FenwickAdapter(std::size_t n, std::vector<Coord>& storage)
      : tree(n, storage) {}
  Coord prefixMaxAt(std::size_t b) const { return tree.prefixMax(b - 1); }
  void insertAt(std::size_t b, Coord end) { tree.update(b, end); }
};

struct VebAdapter {
  VebStaircase stair;
  explicit VebAdapter(std::size_t n) : stair(n) {}
  Coord prefixMaxAt(std::size_t b) const { return stair.maxBelow(b); }
  void insertAt(std::size_t b, Coord end) { stair.insert(b, end); }
};

template <class MakeStructure>
void packWithInto(const SequencePair& sp, std::span<const Coord> widths,
                  std::span<const Coord> heights, MakeStructure makeStructure,
                  SeqPairPackScratch& scratch, Placement& out) {
  std::size_t n = sp.size();
  scratch.x.assign(n, 0);
  scratch.y.assign(n, 0);

  // x sweep: alpha order; predecessors in both sequences are "left of".
  {
    auto s = makeStructure();
    sweep(sp.alpha(), sp, widths, scratch.x, s);
  }
  // y sweep: reverse alpha order; for already-processed i (alpha-after m)
  // with smaller beta position, i is below m.
  {
    auto s = makeStructure();
    scratch.rev.assign(sp.alpha().rbegin(), sp.alpha().rend());
    sweep(scratch.rev, sp, heights, scratch.y, s);
  }

  out.assign(n);
  for (std::size_t m = 0; m < n; ++m) {
    out[m] = {scratch.x[m], scratch.y[m], widths[m], heights[m]};
  }
}

}  // namespace

Placement packSequencePair(const SequencePair& sp, std::span<const Coord> widths,
                           std::span<const Coord> heights, PackStrategy strategy) {
  SeqPairPackScratch scratch;
  Placement out;
  packSequencePairInto(sp, widths, heights, strategy, scratch, out);
  return out;
}

void packSequencePairInto(const SequencePair& sp, std::span<const Coord> widths,
                          std::span<const Coord> heights, PackStrategy strategy,
                          SeqPairPackScratch& scratch, Placement& out) {
  assert(widths.size() == sp.size() && heights.size() == sp.size());
  switch (strategy) {
    case PackStrategy::Naive:
      packWithInto(sp, widths, heights,
                   [&] { return NaiveAdapter(scratch.naiveEntries); }, scratch,
                   out);
      return;
    case PackStrategy::Fenwick:
      packWithInto(sp, widths, heights,
                   [&] { return FenwickAdapter(sp.size(), scratch.fenwick); },
                   scratch, out);
      return;
    case PackStrategy::Veb:
      packWithInto(sp, widths, heights,
                   [&] { return VebAdapter(sp.size()); }, scratch, out);
      return;
  }
  out.assign(sp.size());
}

}  // namespace als
