#include "seqpair/sa_placer.h"

#include <cmath>

#include "anneal/annealer.h"
#include "seqpair/moves.h"
#include "seqpair/symmetry.h"

namespace als {

SeqPairPlacerResult placeSeqPairSA(const Circuit& circuit,
                                   const SeqPairPlacerOptions& options) {
  const std::size_t n = circuit.moduleCount();
  const auto groups = std::span<const SymmetryGroup>(circuit.symmetryGroups());
  const auto nets = circuit.netPins();

  std::vector<bool> rotatable(n);
  for (std::size_t m = 0; m < n; ++m) rotatable[m] = circuit.module(m).rotatable;
  SymmetricMoveSet moves(groups, rotatable, options.enableRepairMoves);

  SeqPairState init{SequencePair(n), std::vector<bool>(n, false)};
  makeSymmetricFeasible(init.sp, groups);

  const double wlLambda =
      options.wirelengthWeight *
      std::sqrt(static_cast<double>(circuit.totalModuleArea()));
  // Outline-excess slope: must dominate the ~height-per-DBU-of-width area
  // gradient, so it scales with sqrt(module area).
  const double outlineLambda =
      options.outlineWeight *
      std::sqrt(static_cast<double>(circuit.totalModuleArea()));
  // Cost of states whose relaxation fails (cannot happen for S-F codes, but
  // the guard keeps the annealer total even if it ever does).
  const double kInfeasible = 1e30;

  auto dims = [&](const SeqPairState& s) {
    std::vector<Coord> w(n), h(n);
    for (std::size_t m = 0; m < n; ++m) {
      const Module& mod = circuit.module(m);
      w[m] = s.rotated[m] ? mod.h : mod.w;
      h[m] = s.rotated[m] ? mod.w : mod.h;
    }
    return std::pair(std::move(w), std::move(h));
  };

  auto cost = [&](const SeqPairState& s) {
    auto [w, h] = dims(s);
    auto built = buildSymmetricPlacement(s.sp, w, h, groups);
    if (!built) return kInfeasible;
    Rect bb = built->placement.boundingBox();
    Coord wl = totalHpwl(built->placement, nets);
    double c = static_cast<double>(bb.area()) +
               wlLambda * static_cast<double>(wl);
    // Geometric objectives: quadratic outline-excess penalties plus a
    // soft aspect-ratio pull.
    if (options.maxWidth > 0 && bb.w > options.maxWidth) {
      c += outlineLambda * static_cast<double>(bb.w - options.maxWidth);
    }
    if (options.maxHeight > 0 && bb.h > options.maxHeight) {
      c += outlineLambda * static_cast<double>(bb.h - options.maxHeight);
    }
    if (options.targetAspect > 0.0 && bb.h > 0) {
      double aspect = static_cast<double>(bb.w) / static_cast<double>(bb.h);
      double ratio = aspect / options.targetAspect;
      double off = ratio > 1.0 ? ratio - 1.0 : 1.0 / ratio - 1.0;
      c += 0.5 * off * static_cast<double>(bb.area());
    }
    return c;
  };

  auto move = [&](const SeqPairState& s, Rng& rng) {
    SeqPairState next = s;
    moves.apply(next, rng);
    return next;
  };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = n;
  auto annealed = annealWithRestarts(init, cost, move, annealOpt);

  SeqPairPlacerResult result;
  auto [w, h] = dims(annealed.best);
  auto built = buildSymmetricPlacement(annealed.best.sp, w, h, groups);
  if (built) {
    result.placement = std::move(built->placement);
    result.axis2x = std::move(built->axis2x);
  }
  result.code = annealed.best.sp;
  result.area = result.placement.boundingBox().area();
  result.hpwl = totalHpwl(result.placement, nets);
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
