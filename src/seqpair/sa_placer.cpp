#include "seqpair/sa_placer.h"

#include <optional>
#include <utility>
#include <vector>

#include "anneal/annealer.h"
#include "cost/cost_model.h"
#include "seqpair/moves.h"
#include "seqpair/symmetry.h"

namespace als {

namespace {

/// Decode = dims + symmetric construction into the scratch buffers; the
/// returned pointer aliases scr.result.placement.  With incremental decode
/// on, island layouts and LCS sweeps reuse the previous move's state and
/// the construction reports which modules may differ — feeding the
/// movedModules()/committed() contract of anneal/annealer.h that opts the
/// run into the hinted CostModel::propose(p, moved) fast path.
struct SeqPairDecoder {
  const Circuit& circuit;
  std::span<const SymmetryGroup> groups;
  SeqPairScratch& scr;
  std::size_t n;
  SymBuildOptions buildOpts;

  void markMoved(ModuleId m) {
    if (scr.movedMark[m] != scr.movedEpoch) {
      scr.movedMark[m] = scr.movedEpoch;
      scr.movedList.push_back(m);
    }
  }

  const Placement* operator()(const SeqPairState& s) {
    scr.w.resize(n);
    scr.h.resize(n);
    for (std::size_t m = 0; m < n; ++m) {
      const Module& mod = circuit.module(m);
      scr.w[m] = s.rotated[m] ? mod.h : mod.w;
      scr.h[m] = s.rotated[m] ? mod.w : mod.h;
    }
    // Decode failure (a non-S-F code) maps to the objective's infeasible
    // cost — cannot happen for the move set here, but keeps the annealer
    // total if it ever does.
    scr.tmpMoved.clear();
    if (!buildSymmetricPlacementInto(s.sp, scr.w, scr.h, groups, buildOpts,
                                     scr.sym, scr.result)) {
      return nullptr;
    }
    for (ModuleId m : scr.tmpMoved) markMoved(m);
    return &scr.result.placement;
  }

  std::span<const ModuleId> movedModules() const { return scr.movedList; }
  void committed() {
    scr.movedList.clear();
    if (++scr.movedEpoch == 0) {  // epoch wrap: restamp instead of aliasing
      scr.movedMark.assign(scr.movedMark.size(), 0);
      scr.movedEpoch = 1;
    }
  }
};

}  // namespace

SeqPairPlacerResult placeSeqPairSA(const Circuit& circuit,
                                   const SeqPairPlacerOptions& options) {
  const std::size_t n = circuit.moduleCount();
  const auto groups = std::span<const SymmetryGroup>(circuit.symmetryGroups());

  std::vector<bool> rotatable(n);
  for (std::size_t m = 0; m < n; ++m) rotatable[m] = circuit.module(m).rotatable;
  SymmetricMoveSet moves(groups, rotatable, options.enableRepairMoves);

  SeqPairState init{SequencePair(n), std::vector<bool>(n, false)};
  makeSymmetricFeasible(init.sp, groups);

  // Symmetry holds by construction in every S-F code, so the objective
  // carries no symmetry/proximity penalty — only the geometric terms plus,
  // when weighted, thermal pair mismatch (geometry-exact symmetry does NOT
  // make it zero: radiators off the axis still split a pair thermally).
  CostModel model(circuit,
                  makeObjective(circuit, {.wirelength = options.wirelengthWeight,
                                          .outline = options.outlineWeight,
                                          .thermal = options.thermalWeight,
                                          .maxWidth = options.maxWidth,
                                          .maxHeight = options.maxHeight,
                                          .targetAspect = options.targetAspect}));

  SeqPairScratch localScratch;
  SeqPairScratch& scr = options.scratch ? *options.scratch : localScratch;
  scr.movedList.clear();
  scr.movedMark.assign(n, 0);
  scr.movedEpoch = 1;

  SymBuildOptions buildOpts;
  buildOpts.packing = options.packing;
  buildOpts.incremental = options.incrementalDecode;
  // The O(n^2) verification is a no-op on every reachable code (the move
  // set preserves S-F); the hot path drops it (debug builds still assert),
  // the historical full-decode path keeps it.
  buildOpts.verify = !options.incrementalDecode;
  buildOpts.moved = &scr.tmpMoved;
  SeqPairDecoder decode{circuit, groups, scr, n, buildOpts};

  auto move = [&](SeqPairState& s, Rng& rng) { moves.apply(s, rng); };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = n;
  auto annealed = annealWithRestarts(init, model, decode, move, annealOpt);

  SeqPairPlacerResult result;
  scr.w.resize(n);
  scr.h.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    const Module& mod = circuit.module(m);
    scr.w[m] = annealed.best.rotated[m] ? mod.h : mod.w;
    scr.h[m] = annealed.best.rotated[m] ? mod.w : mod.h;
  }
  auto built = buildSymmetricPlacement(annealed.best.sp, scr.w, scr.h, groups);
  if (built) {
    result.placement = std::move(built->placement);
    result.axis2x = std::move(built->axis2x);
  }
  result.code = annealed.best.sp;
  result.area = result.placement.boundingBox().area();
  result.hpwl = totalHpwl(result.placement, circuit.netPins());
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
