#include "seqpair/sa_placer.h"

#include <optional>
#include <utility>
#include <vector>

#include "anneal/annealer.h"
#include "cost/cost_model.h"
#include "seqpair/from_placement.h"
#include "seqpair/moves.h"
#include "seqpair/symmetry.h"

namespace als {

namespace {

/// Decode = dims + symmetric construction into the scratch buffers; the
/// returned pointer aliases scr.result.placement.  With incremental decode
/// on, island layouts and LCS sweeps reuse the previous move's state and
/// the construction reports which modules may differ — feeding the
/// movedModules()/committed() contract of anneal/annealer.h that opts the
/// run into the hinted CostModel::propose(p, moved) fast path.
struct SeqPairDecoder {
  const Circuit& circuit;
  std::span<const SymmetryGroup> groups;
  SeqPairScratch& scr;
  std::size_t n;
  SymBuildOptions buildOpts;

  void markMoved(ModuleId m) {
    if (scr.movedMark[m] != scr.movedEpoch) {
      scr.movedMark[m] = scr.movedEpoch;
      scr.movedList.push_back(m);
    }
  }

  const Placement* operator()(const SeqPairState& s) {
    scr.w.resize(n);
    scr.h.resize(n);
    for (std::size_t m = 0; m < n; ++m) {
      const Module& mod = circuit.module(m);
      scr.w[m] = s.rotated[m] ? mod.h : mod.w;
      scr.h[m] = s.rotated[m] ? mod.w : mod.h;
    }
    // Decode failure (a non-S-F code) maps to the objective's infeasible
    // cost — cannot happen for the move set here, but keeps the annealer
    // total if it ever does.
    scr.tmpMoved.clear();
    if (!buildSymmetricPlacementInto(s.sp, scr.w, scr.h, groups, buildOpts,
                                     scr.sym, scr.result)) {
      return nullptr;
    }
    for (ModuleId m : scr.tmpMoved) markMoved(m);
    return &scr.result.placement;
  }

  std::span<const ModuleId> movedModules() const { return scr.movedList; }
  void committed() {
    scr.movedList.clear();
    if (++scr.movedEpoch == 0) {  // epoch wrap: restamp instead of aliasing
      scr.movedMark.assign(scr.movedMark.size(), 0);
      scr.movedEpoch = 1;
    }
  }
};

/// The SA move as a named functor so the session can own it (same body and
/// RNG draws as the historical lambda in placeSeqPairSA).
struct SeqPairMove {
  SymmetricMoveSet* moves;
  void operator()(SeqPairState& s, Rng& rng) const { moves->apply(s, rng); }
};

std::vector<bool> rotatableMask(const Circuit& circuit) {
  std::vector<bool> mask(circuit.moduleCount());
  for (std::size_t m = 0; m < mask.size(); ++m) {
    mask[m] = circuit.module(m).rotatable;
  }
  return mask;
}

}  // namespace

struct SeqPairSession::Impl {
  using Eval = detail::IncrementalEval<CostModel, SeqPairDecoder>;
  using Driver = detail::AnnealDriver<SeqPairState, Eval, SeqPairMove>;

  const Circuit& circuit;
  SeqPairPlacerOptions options;
  std::size_t n;
  std::span<const SymmetryGroup> groups;
  std::vector<bool> rotatable;
  SymmetricMoveSet moves;
  CostModel model;
  SeqPairScratch localScratch;
  SeqPairScratch& scr;
  SeqPairDecoder decode;
  std::optional<Driver> driver;
  // Cross-backend reseed buffers (warm after the first reseed).
  SeqPairFromPlacementScratch reseedScratch;
  SymmetryGroup merged;
  SymFeasibleScratch symScratch;

  Impl(const Circuit& c, const SeqPairPlacerOptions& o, double tempScale)
      : circuit(c),
        options(o),
        n(c.moduleCount()),
        groups(c.symmetryGroups()),
        rotatable(rotatableMask(c)),
        moves(groups, rotatable, o.enableRepairMoves),
        // Symmetry holds by construction in every S-F code, so the objective
        // carries no symmetry/proximity penalty — only the geometric terms
        // plus, when weighted, thermal pair mismatch (geometry-exact symmetry
        // does NOT make it zero: radiators off the axis still split a pair
        // thermally).
        model(c, makeObjective(c, {.wirelength = o.wirelengthWeight,
                                   .outline = o.outlineWeight,
                                   .thermal = o.thermalWeight,
                                   .maxWidth = o.maxWidth,
                                   .maxHeight = o.maxHeight,
                                   .targetAspect = o.targetAspect})),
        scr(o.scratch ? *o.scratch : localScratch),
        decode{c, groups, scr, n, SymBuildOptions{}},
        merged(mergedGroup(groups)) {
    scr.movedList.clear();
    scr.movedMark.assign(n, 0);
    scr.movedEpoch = 1;

    decode.buildOpts.packing = options.packing;
    decode.buildOpts.incremental = options.incrementalDecode;
    // The O(n^2) verification is a no-op on every reachable code (the move
    // set preserves S-F); the hot path drops it (debug builds still assert),
    // the historical full-decode path keeps it.
    decode.buildOpts.verify = !options.incrementalDecode;
    decode.buildOpts.moved = &scr.tmpMoved;

    SeqPairState init{SequencePair(n), std::vector<bool>(n, false)};
    makeSymmetricFeasible(init.sp, groups);

    AnnealOptions annealOpt;
    annealOpt.maxSweeps = options.maxSweeps;
    annealOpt.timeLimitSec = options.timeLimitSec;
    annealOpt.seed = options.seed;
    annealOpt.coolingFactor = options.coolingFactor;
    annealOpt.movesPerTemp = options.movesPerTemp;
    annealOpt.sizeHint = n;
    annealOpt.cancel = options.cancel;
    driver.emplace(init, Eval{model, decode}, SeqPairMove{&moves}, annealOpt,
                   tempScale);
  }
};

SeqPairSession::SeqPairSession(const Circuit& circuit,
                               const SeqPairPlacerOptions& options,
                               double tempScale)
    : impl_(std::make_unique<Impl>(circuit, options, tempScale)) {}

SeqPairSession::~SeqPairSession() = default;

std::size_t SeqPairSession::runSweeps(std::size_t maxSweeps) {
  return impl_->driver->runSweeps(maxSweeps);
}

void SeqPairSession::run() { impl_->driver->run(); }

bool SeqPairSession::finished() const { return impl_->driver->finished(); }

double SeqPairSession::currentCost() const {
  return impl_->driver->currentCost();
}

double SeqPairSession::bestCost() const { return impl_->driver->bestCost(); }

double SeqPairSession::temperature() const {
  return impl_->driver->temperature();
}

void SeqPairSession::exchangeWith(SeqPairSession& other) {
  Impl::Driver::exchange(*impl_->driver, *other.impl_->driver);
}

const Placement& SeqPairSession::bestPlacement() {
  const Placement* p = impl_->decode(impl_->driver->bestState());
  return *p;
}

bool SeqPairSession::reseedFromPlacement(const Placement& placement) {
  if (placement.size() != impl_->n) return false;
  SeqPairState& s = impl_->driver->currentState();
  sequencePairFromPlacement(placement, impl_->reseedScratch, s.sp);
  // Recover rotations from the rect dims (square modules stay unrotated —
  // deterministic either way), then force mirror partners consistent: the
  // symmetric construction realizes a pair with ONE orientation choice, and
  // inconsistent flags would silently change the b-cell's footprint.
  for (std::size_t m = 0; m < impl_->n; ++m) {
    const Module& mod = impl_->circuit.module(m);
    const Rect& r = placement[m];
    s.rotated[m] = mod.rotatable && !(r.w == mod.w && r.h == mod.h) &&
                   r.w == mod.h && r.h == mod.w;
  }
  for (const SymmetryGroup& g : impl_->groups) {
    for (const SymPair& p : g.pairs) s.rotated[p.b] = s.rotated[p.a];
  }
  // The diagonal order knows nothing of property (1); re-seat beta so the
  // seed is symmetric-feasible before the move set (which preserves S-F)
  // takes over.
  makeSymmetricFeasibleInPlace(s.sp, impl_->merged, impl_->symScratch);
  impl_->driver->reanchor();
  return true;
}

SeqPairPlacerResult SeqPairSession::finish() {
  AnnealResult<SeqPairState> annealed = impl_->driver->finalize();
  SeqPairScratch& scr = impl_->scr;
  const std::size_t n = impl_->n;

  SeqPairPlacerResult result;
  scr.w.resize(n);
  scr.h.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    const Module& mod = impl_->circuit.module(m);
    scr.w[m] = annealed.best.rotated[m] ? mod.h : mod.w;
    scr.h[m] = annealed.best.rotated[m] ? mod.w : mod.h;
  }
  auto built = buildSymmetricPlacement(annealed.best.sp, scr.w, scr.h,
                                       impl_->groups);
  if (built) {
    result.placement = std::move(built->placement);
    result.axis2x = std::move(built->axis2x);
  }
  result.code = annealed.best.sp;
  result.area = result.placement.boundingBox().area();
  result.hpwl = totalHpwl(result.placement, impl_->circuit.netPins());
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

SeqPairPlacerResult placeSeqPairSA(const Circuit& circuit,
                                   const SeqPairPlacerOptions& options) {
  SeqPairSession session(circuit, options);
  return session.finish();
}

}  // namespace als
