// Absolute-coordinate simulated-annealing placer — the pre-topological
// baseline of Section II (the exploration style of ILAC / KOAN-ANAGRAM II /
// PUPPY-A / LAYLA, after Jepsen & Gellat's macrocell annealing).
//
// Cells move freely in the chip plane by translations, swaps and rotations;
// the search space contains both feasible and *unfeasible* configurations,
// with overlaps and symmetry violations discouraged by cost penalties only.
// Section II's argument — that restricting exploration to symmetric-feasible
// topological codes converges better — is demonstrated against this placer
// in bench_seqpair_sa (experiment E3).
#pragma once

#include <cstdint>

#include "geom/placement.h"
#include "netlist/circuit.h"

namespace als {

struct AbsolutePlacerOptions {
  double wirelengthWeight = 0.25;  ///< same lambda semantics as the SP placer
  double overlapWeight = 4.0;      ///< penalty per DBU^2 of pairwise overlap
  double symmetryWeight = 2.0;     ///< penalty per DBU of mirror deviation
  std::size_t maxSweeps = 256;     ///< primary budget: total SA sweeps (deterministic)
  double timeLimitSec = 0.0;       ///< secondary wall-clock cap (0 = uncapped)
  std::uint64_t seed = 7;
  double coolingFactor = 0.96;
  std::size_t movesPerTemp = 0;  ///< 0 = auto
};

struct AbsolutePlacerResult {
  Placement placement;
  Coord area = 0;          ///< bounding-box area
  Coord hpwl = 0;
  Coord overlapArea = 0;   ///< residual pairwise overlap (0 when legal)
  Coord symViolation = 0;  ///< residual mirror deviation in DBU (0 = exact)
  bool feasible = false;   ///< overlap-free AND exactly symmetric
  double cost = 0.0;
  std::size_t movesTried = 0;
  std::size_t sweeps = 0;  ///< SA temperature steps executed
  double seconds = 0.0;
};

AbsolutePlacerResult placeAbsoluteSA(const Circuit& circuit,
                                     const AbsolutePlacerOptions& options = {});

}  // namespace als
