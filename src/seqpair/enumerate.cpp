#include "seqpair/enumerate.h"

#include <algorithm>
#include <numeric>

#include "seqpair/symmetry.h"

namespace als {

void forEachSequencePair(std::size_t n,
                         const std::function<void(const SequencePair&)>& visit) {
  std::vector<std::size_t> alpha(n), beta(n);
  std::iota(alpha.begin(), alpha.end(), std::size_t{0});
  do {
    std::iota(beta.begin(), beta.end(), std::size_t{0});
    do {
      visit(SequencePair(alpha, beta));
    } while (std::next_permutation(beta.begin(), beta.end()));
  } while (std::next_permutation(alpha.begin(), alpha.end()));
}

std::uint64_t countSymmetricFeasible(std::size_t n,
                                     std::span<const SymmetryGroup> groups,
                                     SfReading reading) {
  std::uint64_t count = 0;
  forEachSequencePair(n, [&](const SequencePair& sp) {
    bool ok = reading == SfReading::Union
                  ? isSymmetricFeasible(sp, groups)
                  : isPerGroupSymmetricFeasible(sp, groups);
    if (ok) ++count;
  });
  return count;
}

}  // namespace als
