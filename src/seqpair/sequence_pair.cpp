#include "seqpair/sequence_pair.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace als {

SequencePair::SequencePair(std::size_t n) : alpha_(n), beta_(n) {
  std::iota(alpha_.begin(), alpha_.end(), std::size_t{0});
  std::iota(beta_.begin(), beta_.end(), std::size_t{0});
  rebuildInverse();
}

SequencePair::SequencePair(std::vector<std::size_t> alpha, std::vector<std::size_t> beta)
    : alpha_(std::move(alpha)), beta_(std::move(beta)) {
  assert(alpha_.size() == beta_.size());
  rebuildInverse();
  assert(isValid());
}

SequencePair SequencePair::random(std::size_t n, Rng& rng) {
  SequencePair sp(n);
  std::shuffle(sp.alpha_.begin(), sp.alpha_.end(), rng.engine());
  std::shuffle(sp.beta_.begin(), sp.beta_.end(), rng.engine());
  sp.rebuildInverse();
  return sp;
}

void SequencePair::rebuildInverse() {
  alphaInv_.assign(alpha_.size(), 0);
  betaInv_.assign(beta_.size(), 0);
  for (std::size_t i = 0; i < alpha_.size(); ++i) alphaInv_[alpha_[i]] = i;
  for (std::size_t i = 0; i < beta_.size(); ++i) betaInv_[beta_[i]] = i;
}

void SequencePair::swapAlphaAt(std::size_t i, std::size_t j) {
  std::swap(alpha_[i], alpha_[j]);
  alphaInv_[alpha_[i]] = i;
  alphaInv_[alpha_[j]] = j;
}

void SequencePair::swapBetaAt(std::size_t i, std::size_t j) {
  std::swap(beta_[i], beta_[j]);
  betaInv_[beta_[i]] = i;
  betaInv_[beta_[j]] = j;
}

void SequencePair::assignSequences(std::span<const std::size_t> alpha,
                                   std::span<const std::size_t> beta) {
  assert(alpha.size() == beta.size());
  alpha_.assign(alpha.begin(), alpha.end());
  beta_.assign(beta.begin(), beta.end());
  rebuildInverse();
  assert(isValid());
}

void SequencePair::swapAlphaModules(std::size_t a, std::size_t b) {
  swapAlphaAt(alphaPos(a), alphaPos(b));
}

void SequencePair::swapBetaModules(std::size_t a, std::size_t b) {
  swapBetaAt(betaPos(a), betaPos(b));
}

bool SequencePair::isValid() const {
  auto isPerm = [](const std::vector<std::size_t>& v) {
    std::vector<bool> seen(v.size(), false);
    for (std::size_t x : v) {
      if (x >= v.size() || seen[x]) return false;
      seen[x] = true;
    }
    return true;
  };
  return alpha_.size() == beta_.size() && isPerm(alpha_) && isPerm(beta_);
}

std::string SequencePair::toString(const std::vector<std::string>& names) const {
  auto render = [&](const std::vector<std::size_t>& seq) {
    std::string s;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (i) s += ' ';
      s += seq[i] < names.size() ? names[seq[i]] : std::to_string(seq[i]);
    }
    return s;
  };
  return "(" + render(alpha_) + ", " + render(beta_) + ")";
}

}  // namespace als
