// Placement -> sequence pair conversion (the cross-backend seeding seam of
// runtime/tempering.h).
//
// Diagonal-order construction: alpha sorts the modules by the center
// anti-diagonal (x_c - y_c), beta by the center diagonal (x_c + y_c), both
// with the module id as the deterministic tiebreak.  Writing dx = x_c(j) -
// x_c(i) and dy = y_c(j) - y_c(i), module i precedes j in alpha iff
// dx - dy > 0 and in beta iff dx + dy > 0, so
//
//   dx > |dy|  =>  i before j in BOTH sequences  =>  "i left of j" in the
//                  pair  =>  the LCS packing places x_i + w_i <= x_j;
//   dy > |dx|  =>  i after j in alpha, before j in beta  =>  "i below j"
//                  =>  y_i + h_i <= y_j.
//
// Center-diagonal dominance in the source placement therefore survives the
// round trip placement -> pair -> decode exactly — the relative-order
// property tests/convert_test.cpp pins.  The construction knows nothing of
// symmetry groups; seed consumers re-establish the symmetric-feasible
// invariant with makeSymmetricFeasibleInPlace (seqpair/symmetry.h) before
// annealing, which permutes only group members.
#pragma once

#include "geom/placement.h"
#include "seqpair/sequence_pair.h"

namespace als {

/// Reusable buffers of the conversion (allocation-free when warm — the
/// tempering loop converts at exchange points, which sit inside the
/// steady-state zero-allocation gate).
struct SeqPairFromPlacementScratch {
  std::vector<std::size_t> alpha, beta;
  std::vector<Coord> keyA, keyB;  ///< per-module doubled diagonal keys
};

/// Overwrites `sp` with the diagonal-order pair of `placement` (storage
/// reused; sizes may differ between calls).
void sequencePairFromPlacement(const Placement& placement,
                               SeqPairFromPlacementScratch& scratch,
                               SequencePair& sp);

/// Convenience allocating overload.
SequencePair sequencePairFromPlacement(const Placement& placement);

}  // namespace als
