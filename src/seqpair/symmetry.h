// Symmetric-feasible sequence-pairs: property (1) and the Lemma (Section II).
//
// Property (1): a pair (alpha, beta) is symmetric-feasible (S-F) w.r.t. a
// symmetry group iff for any distinct group cells x, y
//     alpha^-1(x) < alpha^-1(y)  <=>  beta^-1(sym(y)) < beta^-1(sym(x)).
// Equivalently: the beta-order of the group members is the reverse alpha-
// order mapped through sym().  That reformulation is what the O(m) checker
// and the constructive symmetrizer below use, and it also yields the Lemma's
// count: alpha is free (n! choices) and beta is free except that the
// relative order of each group's members is fully determined, giving
//     (n!)^2 / prod_k (2 p_k + s_k)!
// symmetric-feasible codes — computed here exactly with big integers.
#pragma once

#include <span>
#include <vector>

#include "netlist/module.h"
#include "seqpair/sequence_pair.h"
#include "util/bigint.h"

namespace als {

/// Checks property (1) for one group in O(m log m), m = group size.
bool isSymmetricFeasible(const SequencePair& sp, const SymmetryGroup& group);

/// Merges all groups into one (pairs and selfs concatenated).  Checking
/// property (1) on the merged group is the *union* reading of Section II:
/// the condition quantifies over cells "in any of the symmetry groups",
/// including cells of different groups.  The union reading is what makes
/// multi-group placements constructible — per-group feasibility alone admits
/// cross-group crossing patterns (pair 1 partly below pair 2 while pair 2's
/// partner lies below pair 1's) whose equal-y requirements form an
/// unsatisfiable cycle.  It is also why the Lemma is an upper bound: the
/// per-group count (n!)^2 / prod (2p_k+s_k)! over-counts the union-feasible
/// codes whenever G > 1 (tests verify both facts by enumeration).
SymmetryGroup mergedGroup(std::span<const SymmetryGroup> groups);

/// Checks property (1) in the union reading (merged group).
bool isSymmetricFeasible(const SequencePair& sp,
                         std::span<const SymmetryGroup> groups);

/// Checks property (1) for each group separately (the weaker per-group
/// reading; used to validate the Lemma's combinatorial count).
bool isPerGroupSymmetricFeasible(const SequencePair& sp,
                                 std::span<const SymmetryGroup> groups);

/// Rearranges beta so that the pair becomes symmetric-feasible in the union
/// reading: within the beta slots occupied by group cells, members are
/// re-seated to sym(reverse alpha order).  Alpha and the slot positions are
/// preserved, so this is also how an initial S-F pair is constructed.
void makeSymmetricFeasible(SequencePair& sp, std::span<const SymmetryGroup> groups);

/// Reusable buffers of the repair (seqpair/moves.h drives it once per
/// SwapAnyRepair move, so it must not allocate when warm).
struct SymFeasibleScratch {
  std::vector<ModuleId> byAlpha;     ///< group members in alpha order
  std::vector<std::size_t> slots;    ///< beta slots holding group members
};

/// In-place variant over a pre-merged group (see mergedGroup): identical
/// beta re-seating, but the member list, slot list, and the beta writes all
/// reuse caller-owned storage.
void makeSymmetricFeasibleInPlace(SequencePair& sp,
                                  const SymmetryGroup& merged,
                                  SymFeasibleScratch& scratch);

/// Exact number of symmetric-feasible sequence-pairs (the Lemma):
/// (n!)^2 / prod_k (2 p_k + s_k)!.  Computed via prime-exponent subtraction,
/// so no big division is needed and the result is exact for any n.
BigUint sfSequencePairCount(std::size_t n, std::span<const SymmetryGroup> groups);

/// Total number of sequence-pairs, (n!)^2.
BigUint totalSequencePairCount(std::size_t n);

/// Search-space reduction 1 - |S-F| / |total| as a double in [0, 1].
double searchSpaceReduction(std::size_t n, std::span<const SymmetryGroup> groups);

}  // namespace als
