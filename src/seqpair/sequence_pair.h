// Sequence-pair floorplan representation (Murata et al. [22]).
//
// A sequence-pair (alpha, beta) is two permutations of the module ids.  The
// pair encodes the planar relation of every module pair:
//   i before j in alpha AND in beta       =>  i is left of j
//   i after  j in alpha, before j in beta =>  i is below j
// Packing derives coordinates from weighted longest common subsequences
// (see packer.h).  This class maintains the permutations together with
// their inverses so position lookups are O(1).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace als {

class SequencePair {
 public:
  SequencePair() = default;

  /// Identity pair: alpha = beta = (0, 1, ..., n-1).
  explicit SequencePair(std::size_t n);

  /// Pair from explicit permutations (must be permutations of 0..n-1).
  SequencePair(std::vector<std::size_t> alpha, std::vector<std::size_t> beta);

  /// Uniformly random pair.
  static SequencePair random(std::size_t n, Rng& rng);

  std::size_t size() const { return alpha_.size(); }

  const std::vector<std::size_t>& alpha() const { return alpha_; }
  const std::vector<std::size_t>& beta() const { return beta_; }

  /// Position of module m in alpha / beta (the alpha^-1 of Section II).
  std::size_t alphaPos(std::size_t m) const { return alphaInv_[m]; }
  std::size_t betaPos(std::size_t m) const { return betaInv_[m]; }

  /// Swaps the modules at alpha positions i and j (inverse kept in sync).
  void swapAlphaAt(std::size_t i, std::size_t j);
  void swapBetaAt(std::size_t i, std::size_t j);

  /// Swaps modules a and b inside alpha / beta (positions looked up).
  void swapAlphaModules(std::size_t a, std::size_t b);
  void swapBetaModules(std::size_t a, std::size_t b);

  /// Overwrites both permutations in place, reusing the storage (the
  /// allocation-free equivalent of assigning a freshly constructed pair).
  /// Both spans must be permutations of 0..n-1.
  void assignSequences(std::span<const std::size_t> alpha,
                       std::span<const std::size_t> beta);

  /// Seats `module` at beta position `pos`, keeping the inverse in sync.
  /// The caller must restore the permutation invariant across a batch of
  /// reseats (the symmetric-feasibility repair permutes group members among
  /// the group's own beta slots, which does exactly that).
  void reseatBeta(std::size_t pos, std::size_t module) {
    beta_[pos] = module;
    betaInv_[module] = pos;
  }

  /// True iff module i is left of module j under this pair.
  bool leftOf(std::size_t i, std::size_t j) const {
    return alphaPos(i) < alphaPos(j) && betaPos(i) < betaPos(j);
  }
  /// True iff module i is below module j under this pair.
  bool below(std::size_t i, std::size_t j) const {
    return alphaPos(i) > alphaPos(j) && betaPos(i) < betaPos(j);
  }

  /// Checks both sequences are permutations of 0..n-1 (debug aid).
  bool isValid() const;

  /// "(EBAFC..., EBCDF...)"-style rendering using the given names.
  std::string toString(const std::vector<std::string>& names) const;

  friend bool operator==(const SequencePair&, const SequencePair&) = default;

 private:
  void rebuildInverse();

  std::vector<std::size_t> alpha_, beta_;
  std::vector<std::size_t> alphaInv_, betaInv_;
};

}  // namespace als
