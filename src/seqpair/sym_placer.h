// Symmetric placement construction from an S-F sequence-pair (Section II),
// using the symmetry-island formulation.
//
// Property (1) (union reading, see symmetry.h) guarantees that a legal
// placement exists in which every symmetry group is mirrored about its own
// vertical axis.  Constructing one is non-trivial: the per-pair mirror
// equalities are not a monotone constraint system, so a naive alternation of
// longest-path compaction and mirror adjustment can chase itself forever
// when several groups interleave (each group's axis growth pushes the next
// group's members, which pushes the first group's axis, without ever
// increasing the left-member spreads a finite solution needs).
//
// We therefore construct placements the way the symmetry-island works
// ([16], used by Section III) do:
//
//   1. per group, the *island* placement is built from the group's induced
//      sub-sequence-pair: longest-path compaction alternating with monotone
//      mirror adjustment.  Within a single group property (1) forces mirror
//      pairs to nest around the common axis and partners have matched
//      footprints, so the equalities are consistent and the iteration
//      reaches a fixpoint (a stacked pair-per-row fallback guarantees
//      termination in any case and is counted in the result);
//   2. each island is then a rigid super-module; islands and free cells are
//      packed by a reduced sequence-pair that inherits the original
//      cell order (each island ordered by its first member);
//   3. island-internal coordinates are offset into the global frame and the
//      per-group axes follow.
//
// The result is legal and *exactly* symmetric for every union-S-F code —
// the property suite sweeps random codes over many circuits to enforce
// exactly that contract.
//
// Exactness: all symmetry arithmetic runs on doubled center coordinates
// (D = 2x + w), which requires even module dimensions in DBU — trivially
// true for the micrometer-grid footprints all generators emit (asserted).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "geom/placement.h"
#include "netlist/module.h"
#include "seqpair/packer.h"
#include "seqpair/sequence_pair.h"

namespace als {

struct SymPlacementResult {
  Placement placement;
  /// Doubled axis coordinate (2 * axis) per symmetry group.
  std::vector<Coord> axis2x;
  /// Number of groups whose island needed the stacked fallback (0 in
  /// practice; > 0 would indicate an island relaxation failure).
  int fallbacks = 0;
};

namespace detail {

/// A mirror pair oriented by the code: `left` precedes `right` in both
/// sequences.
struct SymOrientedPair {
  std::size_t left = 0, right = 0;
};

/// Per-group island working buffers (reused move to move).
struct SymIslandBuf {
  std::vector<std::size_t> cells;  // global module ids
  Placement local;                 // indexed like `cells`
  Coord axis2x = 0;                // in island-local coordinates
  Coord w = 0, h = 0;              // bounding box
  bool usedFallback = false;
  std::vector<SymOrientedPair> pairs;
  // Island layout cache (incremental builds): the signature captures every
  // input the layout depends on; an unchanged signature skips relaxation.
  std::vector<std::size_t> sig;
  bool sigValid = false;
  bool changed = true;  ///< this call recomputed the island (transient)
};

/// One row of the stacked fallback island.
struct SymRow {
  std::size_t anchor = 0;  // alpha-ordering key
  bool isPair = false;
  SymOrientedPair pr{};
  ModuleId self = 0;
};

}  // namespace detail

/// Reusable buffers of one symmetric-placement construction loop (the
/// sequence-pair placer's per-move decode).  Not shareable between
/// concurrent callers; contents never influence results.
struct SymPlaceScratch {
  std::vector<detail::SymIslandBuf> islands;
  std::vector<Coord> relaxX, relaxY;      ///< per-module longest-path coords
  std::vector<std::size_t> order;         ///< propagation ordering buffer
  std::vector<detail::SymRow> rows;       ///< stacked-fallback rows
  std::vector<std::size_t> localIndex;    ///< stacked-fallback index map
  std::vector<std::size_t> freeCells;     ///< cells in no group
  std::vector<Coord> rw, rh;              ///< reduced footprints
  std::vector<std::size_t> alphaOrder, betaOrder;
  SequencePair reduced;                   ///< reduced sequence-pair buffer
  SeqPairPackScratch pack;
  Placement packed;                       ///< reduced packing result
  std::vector<std::uint32_t> groupOf;     ///< group per module (~0u = free)
  std::vector<std::size_t> freeIndexOf;   ///< reduced index per free module
  std::vector<std::uint8_t> groupSeen;    ///< per-group flag (order builds)
  std::vector<std::size_t> tmpSig;        ///< candidate island signature
  std::vector<std::size_t> redMoved;      ///< moved reduced-pair indices
  // Warm-reuse gate: caches are trusted only while the instance shape (n,
  // group count, free-cell list) matches the previous call on this scratch.
  std::vector<std::size_t> prevFreeCells;
  std::size_t prevN = static_cast<std::size_t>(-1);
  std::size_t prevGroups = 0;
};

/// Options of the scratch-reuse construction path.
struct SymBuildOptions {
  int maxIterations = 200;  ///< island relaxation fixpoint cap
  /// Pack strategy of the reduced sequence-pair (Auto resolves by size).
  PackStrategy packing = PackStrategy::Fenwick;
  /// Reuse per-scratch state across calls: island layouts are cached by
  /// signature (skipping relaxation when a group's cells, positions and
  /// footprints are unchanged) and the LCS packs run incrementally from
  /// their first changed step.  Results stay bit-identical to a cold build.
  bool incremental = false;
  /// Run the O(n^2) legality + mirror verification and fail on violation.
  /// Hot decode loops turn this off; debug builds assert it regardless.
  bool verify = true;
  /// When non-null, every module whose rect may differ from the previous
  /// successful call on this scratch is appended (superset and duplicates
  /// OK; a cold or non-incremental call appends all).  Feeds the SA cost
  /// model's hinted propose (see anneal/annealer.h).
  std::vector<std::size_t>* moved = nullptr;
};

/// Builds a placement in which every group is exactly mirrored about its own
/// vertical axis and forms a contiguous island.  Returns nullopt only if a
/// group's mirror partners are not horizontally related (i.e. the code is
/// not S-F).
std::optional<SymPlacementResult> buildSymmetricPlacement(
    const SequencePair& sp, std::span<const Coord> widths,
    std::span<const Coord> heights, std::span<const SymmetryGroup> groups,
    int maxIterations = 200);

/// Scratch-reuse variant: identical results; returns false exactly when the
/// by-value overload returns nullopt.  `out` is fully overwritten on
/// success (unspecified on failure; with options.incremental, unchanged
/// rects are carried over rather than rewritten — same values either way).
bool buildSymmetricPlacementInto(const SequencePair& sp,
                                 std::span<const Coord> widths,
                                 std::span<const Coord> heights,
                                 std::span<const SymmetryGroup> groups,
                                 const SymBuildOptions& options,
                                 SymPlaceScratch& scratch,
                                 SymPlacementResult& out);

/// Legacy convenience overload: default options with `maxIterations`.
bool buildSymmetricPlacementInto(const SequencePair& sp,
                                 std::span<const Coord> widths,
                                 std::span<const Coord> heights,
                                 std::span<const SymmetryGroup> groups,
                                 int maxIterations, SymPlaceScratch& scratch,
                                 SymPlacementResult& out);

/// Verifies mirror exactness of a result (used by tests and asserts):
/// pairs mirrored about their group axis with equal y, selfs centered.
bool verifySymmetry(const Placement& p, std::span<const SymmetryGroup> groups,
                    std::span<const Coord> axis2x);

}  // namespace als
