#include "netlist/circuit.h"

#include <cmath>
#include <set>

#include "util/epoch_marks.h"

namespace als {

const char* toString(GroupConstraint c) {
  switch (c) {
    case GroupConstraint::None: return "none";
    case GroupConstraint::Symmetry: return "symmetry";
    case GroupConstraint::CommonCentroid: return "common-centroid";
    case GroupConstraint::Proximity: return "proximity";
  }
  return "?";
}

ModuleId Circuit::addModule(std::string name, Coord w, Coord h, bool rotatable) {
  Module m;
  m.name = std::move(name);
  m.w = w;
  m.h = h;
  m.rotatable = rotatable;
  modules_.push_back(std::move(m));
  return modules_.size() - 1;
}

std::size_t Circuit::addNet(std::string name, std::vector<ModuleId> pins, double weight) {
  nets_.push_back({std::move(name), std::move(pins), weight});
  return nets_.size() - 1;
}

std::size_t Circuit::addSymmetryGroup(SymmetryGroup group) {
  symGroups_.push_back(std::move(group));
  return symGroups_.size() - 1;
}

Coord Circuit::totalModuleArea() const {
  Coord a = 0;
  for (const Module& m : modules_) a += m.w * m.h;
  return a;
}

std::vector<std::vector<std::size_t>> Circuit::netPins() const {
  std::vector<std::vector<std::size_t>> out;
  out.reserve(nets_.size());
  for (const Net& n : nets_) out.push_back(n.pins);
  return out;
}

std::vector<std::vector<std::size_t>> Circuit::netsOfModules() const {
  std::vector<std::vector<std::size_t>> index(modules_.size());
  // Per-net duplicate-pin marking via epoch stamps: one O(1) round per net
  // instead of clearing (or re-allocating) a seen-vector per net.  The
  // marks are thread_local, keeping concurrent read-only circuit use
  // race-free (this class must stay free of mutable caches).
  static thread_local EpochMarks seen;
  for (std::size_t ni = 0; ni < nets_.size(); ++ni) {
    seen.beginRound(modules_.size());
    for (ModuleId pin : nets_[ni].pins) {
      if (pin >= modules_.size()) continue;  // validate() reports these
      if (seen.mark(pin)) index[pin].push_back(ni);
    }
  }
  return index;
}

std::vector<std::string> Circuit::moduleNames() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const Module& m : modules_) names.push_back(m.name);
  return names;
}

bool Circuit::validate(std::string* whyNot) const {
  auto fail = [&](const std::string& msg) {
    if (whyNot) *whyNot = msg;
    return false;
  };
  for (const Module& m : modules_) {
    if (m.w <= 0 || m.h <= 0) return fail("module '" + m.name + "' has empty footprint");
    if (!(m.powerW >= 0.0) || !std::isfinite(m.powerW)) {
      return fail("module '" + m.name + "' has a negative or non-finite power");
    }
    if (!m.shapes.empty() && (m.shapes[0].w != m.w || m.shapes[0].h != m.h)) {
      return fail("module '" + m.name + "' shape curve does not start at its footprint");
    }
    for (const ModuleShape& s : m.shapes) {
      if (s.w <= 0 || s.h <= 0) return fail("module '" + m.name + "' has an empty shape");
    }
  }
  for (const Net& n : nets_) {
    for (ModuleId p : n.pins) {
      if (p >= modules_.size()) return fail("net '" + n.name + "' has out-of-range pin");
    }
  }
  std::set<ModuleId> seen;
  for (const SymmetryGroup& g : symGroups_) {
    for (ModuleId m : g.members()) {
      if (m >= modules_.size()) return fail("group '" + g.name + "' out-of-range member");
      if (!seen.insert(m).second) {
        return fail("module " + modules_[m].name + " in two symmetry groups");
      }
    }
    for (const SymPair& p : g.pairs) {
      // A symmetric pair must be mirrorable: identical footprints.
      if (modules_[p.a].w != modules_[p.b].w || modules_[p.a].h != modules_[p.b].h) {
        return fail("group '" + g.name + "' pairs modules of different size");
      }
    }
  }
  return true;
}

}  // namespace als
