#include "netlist/generators.h"

#include <algorithm>
#include <cassert>

#include "io/benchmark_format.h"
#include "util/rng.h"

namespace als {

Circuit makeFig1Example() {
  Circuit c("fig1");
  // Sizes (in um) chosen to resemble the figure: E spans the top, B/G flank
  // the symmetric core, C/D sit side by side above A, F below.
  ModuleId e = c.addModule("E", 30 * kUm, 8 * kUm, false);
  ModuleId b = c.addModule("B", 6 * kUm, 14 * kUm, false);
  ModuleId a = c.addModule("A", 12 * kUm, 8 * kUm, false);
  ModuleId f = c.addModule("F", 10 * kUm, 6 * kUm, false);
  ModuleId cc = c.addModule("C", 7 * kUm, 6 * kUm, false);
  ModuleId d = c.addModule("D", 7 * kUm, 6 * kUm, false);
  ModuleId g = c.addModule("G", 6 * kUm, 14 * kUm, false);

  SymmetryGroup grp;
  grp.name = "gamma";
  grp.pairs = {{cc, d}, {b, g}};
  grp.selfs = {a, f};
  c.addSymmetryGroup(std::move(grp));

  c.addNet("n1", {e, b, g});
  c.addNet("n2", {cc, d, a});
  c.addNet("n3", {a, f});
  return c;
}

Circuit makeMillerOpAmp() {
  Circuit c("miller_opamp");
  ModuleId p1 = c.addModule("P1", 9 * kUm, 4 * kUm, false);
  ModuleId p2 = c.addModule("P2", 9 * kUm, 4 * kUm, false);
  ModuleId p5 = c.addModule("P5", 7 * kUm, 3 * kUm, false);
  ModuleId p6 = c.addModule("P6", 7 * kUm, 3 * kUm, false);
  ModuleId p7 = c.addModule("P7", 7 * kUm, 3 * kUm, false);
  ModuleId n3 = c.addModule("N3", 6 * kUm, 3 * kUm, false);
  ModuleId n4 = c.addModule("N4", 6 * kUm, 3 * kUm, false);
  ModuleId n8 = c.addModule("N8", 12 * kUm, 5 * kUm);
  ModuleId cap = c.addModule("C", 18 * kUm, 18 * kUm, false);

  SymmetryGroup dp;
  dp.name = "DP";
  dp.pairs = {{p1, p2}};
  std::size_t gDp = c.addSymmetryGroup(std::move(dp));

  SymmetryGroup cm1;
  cm1.name = "CM1";
  cm1.pairs = {{n3, n4}};
  std::size_t gCm1 = c.addSymmetryGroup(std::move(cm1));

  SymmetryGroup cm2;
  cm2.name = "CM2";
  cm2.pairs = {{p5, p7}};
  cm2.selfs = {p6};
  std::size_t gCm2 = c.addSymmetryGroup(std::move(cm2));

  c.addNet("inp", {p1});
  c.addNet("inn", {p2});
  c.addNet("tail", {p1, p2, p5});
  c.addNet("mirror", {n3, n4, p1, p2});
  c.addNet("out1", {n4, cap, n8});
  c.addNet("out", {n8, cap, p7});
  c.addNet("bias", {p5, p6, p7});

  HierTree& h = c.hierarchy();
  HierNodeId lp1 = h.addLeaf("P1", p1), lp2 = h.addLeaf("P2", p2);
  HierNodeId lp5 = h.addLeaf("P5", p5), lp6 = h.addLeaf("P6", p6);
  HierNodeId lp7 = h.addLeaf("P7", p7);
  HierNodeId ln3 = h.addLeaf("N3", n3), ln4 = h.addLeaf("N4", n4);
  HierNodeId ln8 = h.addLeaf("N8", n8), lc = h.addLeaf("C", cap);

  HierNodeId ndp = h.addGroup("DP", {lp1, lp2}, GroupConstraint::Symmetry);
  h.node(ndp).symGroup = gDp;
  HierNodeId ncm1 = h.addGroup("CM1", {ln3, ln4}, GroupConstraint::Symmetry);
  h.node(ncm1).symGroup = gCm1;
  HierNodeId ncm2 = h.addGroup("CM2", {lp5, lp6, lp7}, GroupConstraint::Symmetry);
  h.node(ncm2).symGroup = gCm2;
  HierNodeId core = h.addGroup("CORE", {ndp, ncm1, ncm2});
  HierNodeId top = h.addGroup("OPAMP", {core, lc, ln8});
  h.setRoot(top);
  return c;
}

Circuit makeFig2Design() {
  Circuit c("fig2_design");
  // Top-level free devices.
  ModuleId a = c.addModule("A", 10 * kUm, 6 * kUm);
  ModuleId b = c.addModule("B", 8 * kUm, 8 * kUm);
  ModuleId cm = c.addModule("C", 6 * kUm, 10 * kUm);
  ModuleId g = c.addModule("G", 12 * kUm, 5 * kUm);
  // Symmetric pair D/E inside the hierarchical-symmetry sub-circuit.
  ModuleId d = c.addModule("D", 9 * kUm, 4 * kUm, false);
  ModuleId e = c.addModule("E", 9 * kUm, 4 * kUm, false);
  // Two common-centroid arrays H and I (4 units each), forming a symmetric
  // pair of sub-circuits inside the hierarchical symmetry constraint.
  std::vector<ModuleId> hUnits, iUnits;
  for (int i = 0; i < 4; ++i) {
    hUnits.push_back(
        c.addModule("H" + std::to_string(i + 1), 4 * kUm, 4 * kUm, false));
  }
  for (int i = 0; i < 4; ++i) {
    iUnits.push_back(
        c.addModule("I" + std::to_string(i + 1), 4 * kUm, 4 * kUm, false));
  }
  // Proximity sub-circuit J/K/F sharing a common well.
  ModuleId j = c.addModule("J", 7 * kUm, 7 * kUm);
  ModuleId k = c.addModule("K", 5 * kUm, 9 * kUm);
  ModuleId f = c.addModule("F", 6 * kUm, 4 * kUm);

  SymmetryGroup sg;
  sg.name = "DE";
  sg.pairs = {{d, e}};
  std::size_t gDe = c.addSymmetryGroup(std::move(sg));

  c.addNet("diff", {d, e, a});
  c.addNet("ccH", {hUnits[0], hUnits[1], hUnits[2], hUnits[3]});
  c.addNet("ccI", {iUnits[0], iUnits[1], iUnits[2], iUnits[3]});
  c.addNet("well", {j, k, f});
  c.addNet("top", {a, b, cm, g});

  HierTree& h = c.hierarchy();
  HierNodeId la = h.addLeaf("A", a), lb = h.addLeaf("B", b);
  HierNodeId lc = h.addLeaf("C", cm), lg = h.addLeaf("G", g);
  HierNodeId ld = h.addLeaf("D", d), le = h.addLeaf("E", e);
  std::vector<HierNodeId> lH, lI;
  for (int i = 0; i < 4; ++i) lH.push_back(h.addLeaf(c.module(hUnits[static_cast<std::size_t>(i)]).name, hUnits[static_cast<std::size_t>(i)]));
  for (int i = 0; i < 4; ++i) lI.push_back(h.addLeaf(c.module(iUnits[static_cast<std::size_t>(i)]).name, iUnits[static_cast<std::size_t>(i)]));
  HierNodeId lj = h.addLeaf("J", j), lk = h.addLeaf("K", k), lf = h.addLeaf("F", f);

  HierNodeId nH = h.addGroup("H", lH, GroupConstraint::CommonCentroid);
  HierNodeId nI = h.addGroup("I", lI, GroupConstraint::CommonCentroid);
  HierNodeId nSym = h.addGroup("SYM", {ld, le, nH, nI}, GroupConstraint::Symmetry);
  h.node(nSym).symGroup = gDe;
  HierNodeId nProx = h.addGroup("PROX", {lj, lk, lf}, GroupConstraint::Proximity);
  HierNodeId top = h.addGroup("TOP", {la, lb, lc, lg, nSym, nProx});
  h.setRoot(top);
  return c;
}

namespace {

/// Emits one basic module set into the circuit; returns the leaf node ids.
/// `kind` selects an analog archetype with matched or free footprints.
struct EmittedSet {
  std::vector<HierNodeId> leaves;
  GroupConstraint constraint = GroupConstraint::None;
  std::optional<std::size_t> symGroup;
};

EmittedSet emitBasicSet(Circuit& c, Rng& rng, std::size_t setIndex, std::size_t k,
                        bool symmetric) {
  EmittedSet out;
  HierTree& h = c.hierarchy();
  std::string base = "s" + std::to_string(setIndex);

  // Analog-typical footprints (in DBU): transistors are wide and flat with
  // strongly varying W; capacitors are large and square-ish; resistors tall.
  int archetype = static_cast<int>(rng.index(10));
  Coord w, hgt;
  bool rotatable = !symmetric;
  if (archetype < 6) {  // transistor-like
    w = rng.uniformInt(3, 28) * kUm;
    hgt = rng.uniformInt(2, 6) * kUm;
  } else if (archetype < 8) {  // capacitor-like
    w = rng.uniformInt(12, 45) * kUm;
    hgt = (w * rng.uniformInt(80, 125)) / 100;
    rotatable = false;
  } else {  // resistor-like
    w = rng.uniformInt(2, 5) * kUm;
    hgt = rng.uniformInt(10, 30) * kUm;
  }

  std::vector<ModuleId> ids;
  for (std::size_t i = 0; i < k; ++i) {
    Coord wi = w, hi = hgt;
    if (!symmetric) {
      // Unmatched sets get per-device size jitter for shape diversity.
      wi = std::max<Coord>(kUm, w + rng.uniformInt(-2, 2) * kUm);
      hi = std::max<Coord>(kUm, hgt + rng.uniformInt(-1, 1) * kUm);
    }
    ids.push_back(c.addModule(base + "_m" + std::to_string(i), wi, hi, rotatable));
  }
  for (std::size_t i = 0; i < k; ++i) {
    out.leaves.push_back(h.addLeaf(c.module(ids[i]).name, ids[i]));
  }
  c.addNet(base + "_net", ids);

  if (symmetric && k >= 2) {
    SymmetryGroup g;
    g.name = base + "_sym";
    for (std::size_t i = 0; i + 1 < k; i += 2) g.pairs.push_back({ids[i], ids[i + 1]});
    if (k % 2 == 1) g.selfs.push_back(ids[k - 1]);
    out.symGroup = c.addSymmetryGroup(std::move(g));
    out.constraint = GroupConstraint::Symmetry;
  } else if (archetype >= 8 && k >= 2) {
    out.constraint = GroupConstraint::Proximity;
  }
  return out;
}

}  // namespace

Circuit makeSynthetic(const SyntheticSpec& spec) {
  assert(spec.moduleCount >= 2);
  assert(spec.maxBasicSet >= 2);
  Circuit c(spec.name);
  Rng rng(spec.seed);
  HierTree& h = c.hierarchy();

  // Phase 1: emit basic module sets until the module budget is consumed.
  std::vector<HierNodeId> setNodes;
  std::size_t remaining = spec.moduleCount;
  std::size_t setIndex = 0;
  while (remaining > 0) {
    std::size_t k = std::min<std::size_t>(
        remaining, 2 + rng.index(spec.maxBasicSet - 1));  // 2..maxBasicSet
    if (remaining - k == 1) k += 1;  // never leave a 1-module tail
    k = std::min(k, remaining);
    bool symmetric = k >= 2 && rng.uniform() < spec.symmetricFraction;
    EmittedSet set = emitBasicSet(c, rng, setIndex, k, symmetric);
    HierNodeId node =
        h.addGroup("set" + std::to_string(setIndex), set.leaves, set.constraint);
    h.node(node).symGroup = set.symGroup;
    setNodes.push_back(node);
    remaining -= k;
    ++setIndex;
  }

  // Phase 2: a few cross-set nets so wirelength-driven experiments have
  // inter-cluster connectivity.
  std::size_t crossNets = std::max<std::size_t>(1, setNodes.size() / 2);
  for (std::size_t i = 0; i < crossNets; ++i) {
    std::vector<ModuleId> pins;
    std::size_t fanout = 2 + rng.index(3);
    for (std::size_t p = 0; p < fanout; ++p) {
      pins.push_back(rng.index(c.moduleCount()));
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() >= 2) c.addNet("x" + std::to_string(i), pins);
  }

  // Phase 3: fold the set nodes into a hierarchy tree, 2-3 children per
  // internal node, mirroring the virtual-cluster trees of [17]/[25].
  std::vector<HierNodeId> level = setNodes;
  std::size_t groupIndex = 0;
  while (level.size() > 1) {
    std::vector<HierNodeId> next;
    std::size_t i = 0;
    while (i < level.size()) {
      std::size_t take = std::min<std::size_t>(level.size() - i, 2 + rng.index(2));
      if (level.size() - i - take == 1) take += 1;  // avoid 1-child parents
      take = std::min(take, level.size() - i);
      if (take == 1) {
        next.push_back(level[i]);
        ++i;
        continue;
      }
      std::vector<HierNodeId> kids(level.begin() + static_cast<std::ptrdiff_t>(i),
                                   level.begin() + static_cast<std::ptrdiff_t>(i + take));
      next.push_back(h.addGroup("g" + std::to_string(groupIndex++), std::move(kids)));
      i += take;
    }
    level = std::move(next);
  }
  h.setRoot(level.front());

  std::string err;
  assert(c.validate(&err));
  (void)err;
  return c;
}

std::vector<TableICircuit> allTableICircuits() {
  return {TableICircuit::MillerV2,      TableICircuit::ComparatorV2,
          TableICircuit::FoldedCascode, TableICircuit::Buffer,
          TableICircuit::Biasynth,      TableICircuit::Lnamixbias};
}

const char* tableIName(TableICircuit c) {
  switch (c) {
    case TableICircuit::MillerV2: return "Miller V2";
    case TableICircuit::ComparatorV2: return "Comparator V2";
    case TableICircuit::FoldedCascode: return "Folded casc.";
    case TableICircuit::Buffer: return "Buffer";
    case TableICircuit::Biasynth: return "biasynth";
    case TableICircuit::Lnamixbias: return "lnamixbias";
  }
  return "?";
}

std::size_t tableIModuleCount(TableICircuit c) {
  switch (c) {
    case TableICircuit::MillerV2: return 13;
    case TableICircuit::ComparatorV2: return 10;
    case TableICircuit::FoldedCascode: return 22;
    case TableICircuit::Buffer: return 46;
    case TableICircuit::Biasynth: return 65;
    case TableICircuit::Lnamixbias: return 110;
  }
  return 0;
}

Circuit makeGsrcLikeCircuit(std::size_t n, std::uint64_t seed) {
  assert(n >= 12 && "GSRC-scale generator expects a block-level instance");
  Circuit c("n" + std::to_string(n));
  Rng rng(seed);

  // Matched analog front-end blocks first: a few symmetry groups of two
  // mirror pairs (plus an occasional self-symmetric tail), footprints
  // locked against rotation like any matched pair.
  const std::size_t nGroups = n / 50 + 1;
  for (std::size_t g = 0; g < nGroups; ++g) {
    SymmetryGroup grp;
    grp.name = "sg" + std::to_string(g);
    for (int p = 0; p < 2; ++p) {
      Coord w = rng.uniformInt(8, 40) * kUm;
      Coord h = rng.uniformInt(6, 30) * kUm;
      std::string base = "g" + std::to_string(g) + "p" + std::to_string(p);
      ModuleId a = c.addModule(base + "a", w, h, /*rotatable=*/false);
      ModuleId b = c.addModule(base + "b", w, h, /*rotatable=*/false);
      grp.pairs.push_back({a, b});
    }
    if (rng.coin()) {
      Coord w = rng.uniformInt(10, 30) * kUm;
      Coord h = rng.uniformInt(6, 20) * kUm;
      grp.selfs.push_back(c.addModule("g" + std::to_string(g) + "s", w, h,
                                      /*rotatable=*/false));
    }
    c.addSymmetryGroup(std::move(grp));
  }

  // Free blocks fill the budget.  GSRC-style footprints span more than an
  // order of magnitude; about one in ten blocks is soft and carries a
  // discrete shape curve (near-area-preserving alternatives, the form the
  // ALSBENCH Shape section round-trips exactly).
  std::size_t blockIndex = 0;
  while (c.moduleCount() < n) {
    Coord w = rng.uniformInt(6, 90) * kUm;
    Coord h = rng.uniformInt(6, 90) * kUm;
    ModuleId m = c.addModule("blk" + std::to_string(blockIndex++), w, h,
                             /*rotatable=*/rng.uniform() < 0.8);
    if (rng.uniform() < 0.1) {
      Module& mod = c.module(m);
      mod.shapes.push_back({w, h});  // the curve always opens with {w, h}
      const Coord area = w * h;
      for (int s = 0; s < 2; ++s) {
        Coord aw = std::max<Coord>(4, (w * rng.uniformInt(60, 160)) / 100 / kUm) * kUm;
        Coord ah = std::max<Coord>(4 * kUm, ((area / aw) / kUm) * kUm);
        if (aw != w || ah != h) mod.shapes.push_back({aw, ah});
      }
      if (mod.shapes.size() == 1) mod.shapes.clear();
    }
  }

  // Nets: about one per block, fanout 2..5, locality-biased (pins drawn
  // from an id window) with an occasional global net — HPWL work stays
  // proportional to fanout, like the real suites.
  std::vector<ModuleId> pins;
  for (std::size_t i = 0; i < n; ++i) {
    pins.clear();
    std::size_t fanout = 2 + rng.index(4);
    std::size_t window = rng.uniform() < 0.15 ? n : std::min<std::size_t>(n, 24);
    std::size_t start = rng.index(n - std::min(window, n) + 1);
    for (std::size_t p = 0; p < fanout; ++p) {
      pins.push_back(start + rng.index(window));
    }
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() >= 2) c.addNet("n" + std::to_string(i), pins);
  }

  buildCanonicalHierarchy(c);
  std::string err;
  assert(c.validate(&err));
  (void)err;
  return c;
}

Circuit makeTableICircuit(TableICircuit which) {
  SyntheticSpec spec;
  spec.name = tableIName(which);
  spec.moduleCount = tableIModuleCount(which);
  // Fixed per-circuit seeds keep Table-I runs reproducible.
  switch (which) {
    case TableICircuit::MillerV2: spec.seed = 101; break;
    case TableICircuit::ComparatorV2: spec.seed = 102; break;
    case TableICircuit::FoldedCascode: spec.seed = 103; break;
    case TableICircuit::Buffer: spec.seed = 104; break;
    case TableICircuit::Biasynth: spec.seed = 105; break;
    case TableICircuit::Lnamixbias: spec.seed = 106; break;
  }
  return makeSynthetic(spec);
}

}  // namespace als
