// Layout design hierarchy (Section III, Fig. 2; Section IV, Fig. 6).
//
// The hierarchy tree mixes the *exact* circuit hierarchy with *virtual*
// clusters detected from device models / functionality.  Leaves are modules;
// internal nodes carry the layout constraint of their sub-circuit.  Internal
// nodes whose children are all leaves are the "basic module sets" that the
// deterministic placer of Section IV enumerates exhaustively.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "netlist/module.h"

namespace als {

using HierNodeId = std::size_t;

struct HierNode {
  std::string name;
  GroupConstraint constraint = GroupConstraint::None;
  std::vector<HierNodeId> children;       // empty for leaves
  std::optional<ModuleId> module;         // set for leaves
  std::optional<std::size_t> symGroup;    // circuit symmetry-group index, if any

  bool isLeaf() const { return module.has_value(); }
};

class HierTree {
 public:
  /// Adds a leaf node wrapping a module; returns its node id.
  HierNodeId addLeaf(std::string name, ModuleId module);

  /// Adds an internal node over existing nodes; children must already exist.
  HierNodeId addGroup(std::string name, std::vector<HierNodeId> children,
                      GroupConstraint constraint = GroupConstraint::None);

  void setRoot(HierNodeId id) { root_ = id; }
  HierNodeId root() const { return root_; }
  bool empty() const { return nodes_.empty(); }

  const HierNode& node(HierNodeId id) const { return nodes_[id]; }
  HierNode& node(HierNodeId id) { return nodes_[id]; }
  std::size_t nodeCount() const { return nodes_.size(); }

  /// All module ids in the subtree of `id`, in DFS order.
  std::vector<ModuleId> leavesUnder(HierNodeId id) const;

  /// Scratch-buffer variant for per-move callers (the HB*-tree decode):
  /// same DFS order, `out` fully overwritten, `stack` reused — warm buffers
  /// make the traversal allocation-free.
  void leavesUnderInto(HierNodeId id, std::vector<HierNodeId>& stack,
                       std::vector<ModuleId>& out) const;

  /// True when every child of `id` is a leaf (a "basic module set").
  bool isBasicSet(HierNodeId id) const;

  /// Number of internal nodes whose children are all leaves.
  std::size_t basicSetCount() const;

  /// Maximum root-to-leaf depth (root depth = 0); 0 for an empty tree.
  std::size_t depth() const;

 private:
  std::vector<HierNode> nodes_;
  HierNodeId root_ = 0;
};

}  // namespace als
