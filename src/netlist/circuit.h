// Circuit container: modules, nets, symmetry groups, hierarchy tree.
#pragma once

#include <string>
#include <vector>

#include "netlist/hierarchy.h"
#include "netlist/module.h"

namespace als {

/// A net is a list of member modules; pins are modelled at module centers.
struct Net {
  std::string name;
  std::vector<ModuleId> pins;
  double weight = 1.0;
};

class Circuit {
 public:
  explicit Circuit(std::string name = "circuit") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  ModuleId addModule(std::string name, Coord w, Coord h, bool rotatable = true);
  std::size_t addNet(std::string name, std::vector<ModuleId> pins, double weight = 1.0);
  std::size_t addSymmetryGroup(SymmetryGroup group);

  std::size_t moduleCount() const { return modules_.size(); }
  const Module& module(ModuleId id) const { return modules_[id]; }
  Module& module(ModuleId id) { return modules_[id]; }
  const std::vector<Module>& modules() const { return modules_; }

  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<SymmetryGroup>& symmetryGroups() const { return symGroups_; }
  const SymmetryGroup& symmetryGroup(std::size_t i) const { return symGroups_[i]; }

  HierTree& hierarchy() { return hier_; }
  const HierTree& hierarchy() const { return hier_; }

  /// Sum of module footprint areas (lower bound on any placement area).
  Coord totalModuleArea() const;

  /// Pin lists of all nets, in the shape the geometry HPWL helpers expect.
  std::vector<std::vector<std::size_t>> netPins() const;

  /// Module→net index: entry m lists the indices (into `nets()`) of every
  /// net with a pin on module m, in net order and without duplicates even
  /// when a net lists a module more than once.  This is the backbone of the
  /// incremental cost layer's dirty-net marking (cost/cost_model.h).
  /// Computed fresh on every call — the class stays free of mutable caches,
  /// which keeps concurrent read-only use race-free (the engine layer's
  /// thread-safety contract); callers that evaluate repeatedly hold on to
  /// the result.
  std::vector<std::vector<std::size_t>> netsOfModules() const;

  /// Module names indexed by id (for reporting / ASCII art).
  std::vector<std::string> moduleNames() const;

  /// Basic sanity: ids in range, symmetry groups disjoint, positive sizes.
  bool validate(std::string* whyNot = nullptr) const;

 private:
  std::string name_;
  std::vector<Module> modules_;
  std::vector<Net> nets_;
  std::vector<SymmetryGroup> symGroups_;
  HierTree hier_;
};

}  // namespace als
