// Placement modules (devices or device groups) and constraint groups.
//
// The constraint vocabulary follows Section III of the paper: symmetry,
// common-centroid and proximity are the basic analog layout constraints;
// symmetry groups additionally follow the Section II structure of symmetric
// pairs plus self-symmetric cells sharing one vertical axis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geom/rect.h"

namespace als {

using ModuleId = std::size_t;

/// One alternative realization of a module (a point on its shape curve).
struct ModuleShape {
  Coord w = 0;
  Coord h = 0;

  friend bool operator==(const ModuleShape&, const ModuleShape&) = default;
};

/// A placeable device-level module: name plus fixed footprint.  Rotation by
/// 90 degrees swaps w/h when `rotatable` (capacitor arrays and matched pairs
/// are typically locked).
struct Module {
  std::string name;
  Coord w = 0;
  Coord h = 0;
  bool rotatable = true;

  /// Dissipated power [W]; modules with powerW > 0 act as heat sources of
  /// the thermal-mismatch objective (thermal/thermal.h).  0 = no radiation.
  double powerW = 0.0;

  /// Discrete shape curve (shapefn-style pareto alternatives).  Empty =
  /// fixed footprint only.  When non-empty, shapes[0] is ALWAYS the declared
  /// footprint {w, h} (validated), so index 0 reproduces the legacy fixed
  /// decode and backends with shape moves disabled are bit-identical to
  /// builds that predate the curve.
  std::vector<ModuleShape> shapes;
};

/// A pair of modules required to be mirror images about the group axis.
struct SymPair {
  ModuleId a = 0;
  ModuleId b = 0;
};

/// Symmetry group: p symmetric pairs + s self-symmetric cells, one common
/// vertical axis (Section II notation: group size 2p + s).
struct SymmetryGroup {
  std::string name;
  std::vector<SymPair> pairs;
  std::vector<ModuleId> selfs;

  std::size_t memberCount() const { return 2 * pairs.size() + selfs.size(); }

  std::vector<ModuleId> members() const {
    std::vector<ModuleId> m;
    m.reserve(memberCount());
    for (const SymPair& p : pairs) {
      m.push_back(p.a);
      m.push_back(p.b);
    }
    for (ModuleId s : selfs) m.push_back(s);
    return m;
  }

  bool contains(ModuleId id) const {
    for (const SymPair& p : pairs) {
      if (p.a == id || p.b == id) return true;
    }
    for (ModuleId s : selfs) {
      if (s == id) return true;
    }
    return false;
  }

  /// sym(x) of Section II: partner of a paired cell, x itself when
  /// self-symmetric; `npos` when x is not a member.
  ModuleId symOf(ModuleId id) const {
    for (const SymPair& p : pairs) {
      if (p.a == id) return p.b;
      if (p.b == id) return p.a;
    }
    for (ModuleId s : selfs) {
      if (s == id) return s;
    }
    return npos;
  }

  static constexpr ModuleId npos = static_cast<ModuleId>(-1);
};

/// Constraint kind attached to a hierarchy node (Fig. 2).
enum class GroupConstraint {
  None,            ///< plain cluster, only placed compactly
  Symmetry,        ///< mirror placement about a vertical axis (may nest)
  CommonCentroid,  ///< interdigitated unit array with coincident centroids
  Proximity,       ///< members form one connected (possibly rectilinear) region
};

const char* toString(GroupConstraint c);

}  // namespace als
