#include "netlist/hierarchy.h"

#include <algorithm>
#include <cassert>

namespace als {

HierNodeId HierTree::addLeaf(std::string name, ModuleId module) {
  HierNode n;
  n.name = std::move(name);
  n.module = module;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

HierNodeId HierTree::addGroup(std::string name, std::vector<HierNodeId> children,
                              GroupConstraint constraint) {
  for ([[maybe_unused]] HierNodeId c : children) assert(c < nodes_.size());
  HierNode n;
  n.name = std::move(name);
  n.children = std::move(children);
  n.constraint = constraint;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

std::vector<ModuleId> HierTree::leavesUnder(HierNodeId id) const {
  std::vector<ModuleId> out;
  std::vector<HierNodeId> stack;
  leavesUnderInto(id, stack, out);
  return out;
}

void HierTree::leavesUnderInto(HierNodeId id, std::vector<HierNodeId>& stack,
                               std::vector<ModuleId>& out) const {
  out.clear();
  stack.clear();
  stack.push_back(id);
  while (!stack.empty()) {
    HierNodeId cur = stack.back();
    stack.pop_back();
    const HierNode& n = nodes_[cur];
    if (n.isLeaf()) {
      out.push_back(*n.module);
    } else {
      // Push in reverse so DFS visits children left-to-right.
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
}

bool HierTree::isBasicSet(HierNodeId id) const {
  const HierNode& n = nodes_[id];
  if (n.isLeaf() || n.children.empty()) return false;
  return std::all_of(n.children.begin(), n.children.end(),
                     [&](HierNodeId c) { return nodes_[c].isLeaf(); });
}

std::size_t HierTree::basicSetCount() const {
  std::size_t count = 0;
  for (HierNodeId i = 0; i < nodes_.size(); ++i) {
    if (isBasicSet(i)) ++count;
  }
  return count;
}

std::size_t HierTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative post-order depth computation.
  std::vector<std::size_t> d(nodes_.size(), 0);
  std::vector<std::pair<HierNodeId, bool>> stack{{root_, false}};
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    const HierNode& n = nodes_[id];
    if (n.isLeaf()) {
      d[id] = 0;
      continue;
    }
    if (!expanded) {
      stack.push_back({id, true});
      for (HierNodeId c : n.children) stack.push_back({c, false});
    } else {
      std::size_t m = 0;
      for (HierNodeId c : n.children) m = std::max(m, d[c] + 1);
      d[id] = m;
    }
  }
  return d[root_];
}

}  // namespace als
