// Benchmark circuit generators.
//
// The paper's example figures (Fig. 1, Fig. 2, Fig. 6) are reconstructed
// exactly from the text.  The six industrial circuits of Table I (Miller V2,
// Comparator V2, Folded cascode, Buffer, biasynth, lnamixbias) are
// proprietary, so `makeTableICircuit` builds seeded synthetic equivalents
// that reproduce the published module counts and analog-typical properties:
// small basic module sets (differential pairs, current mirrors, capacitor
// arrays, bias legs), strongly varying module footprints, and a hierarchy
// tree suitable for the Section IV deterministic placer.  See DESIGN.md
// ("Substitutions") for the rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.h"

namespace als {

/// One micrometre in database units.
inline constexpr Coord kUm = 1000;

/// Fig. 1 configuration: cells E,B,A,F,C,D,G with symmetry group
/// { (C,D), (B,G), A, F }.  Cell sizes are chosen so the published
/// sequence-pair (EBAFCDG, EBCDFAG) packs into a Fig.-1-like placement.
Circuit makeFig1Example();

/// Fig. 6 Miller op amp: OPAMP -> { CORE, C, N8 }, CORE -> { DP{P1,P2},
/// CM1{N3,N4}, CM2{P5,P6,P7} }; DP and CM1 are symmetric pairs, CM2 is a
/// pair (P5,P7) plus self-symmetric P6.
Circuit makeMillerOpAmp();

/// Fig. 2 layout design hierarchy: a top design with a hierarchical-symmetry
/// sub-circuit (containing two common-centroid sub-circuits placed as a
/// symmetric pair), and a proximity sub-circuit.
Circuit makeFig2Design();

/// The six Table-I circuits.
enum class TableICircuit {
  MillerV2,       ///<  13 modules
  ComparatorV2,   ///<  10 modules
  FoldedCascode,  ///<  22 modules
  Buffer,         ///<  46 modules
  Biasynth,       ///<  65 modules
  Lnamixbias,     ///< 110 modules
};

std::vector<TableICircuit> allTableICircuits();
const char* tableIName(TableICircuit c);
std::size_t tableIModuleCount(TableICircuit c);

/// Builds the synthetic stand-in for a Table-I circuit (deterministic).
Circuit makeTableICircuit(TableICircuit which);

/// Fully parameterized synthetic analog circuit generator (used by the
/// Table-I stand-ins and by scaling sweeps in the benches/tests).
struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t moduleCount = 20;
  std::uint64_t seed = 1;
  /// Fraction of basic sets realized as matched symmetric structures.
  double symmetricFraction = 0.5;
  /// Largest basic module set the generator emits (>= 2).
  std::size_t maxBasicSet = 4;
};

Circuit makeSynthetic(const SyntheticSpec& spec);

/// GSRC-like floorplanning instance with `n` blocks (the n100/n200/n300
/// scale class): mixed-size hard blocks with strongly varying footprints,
/// roughly one block in ten soft (carrying a discrete alternative-shape
/// curve), a few symmetry groups on matched blocks, and locality-biased
/// nets at about one net per block.  Deterministic in (n, seed); every
/// dimension sits on the micrometre grid (even DBU, as the symmetric
/// constructors require).  The hierarchy is the canonical one files without
/// a hierarchy section get, so HB*-tree runs accept the circuit unchanged.
Circuit makeGsrcLikeCircuit(std::size_t n, std::uint64_t seed);

}  // namespace als
