#include "bstar/asf.h"

#include <algorithm>
#include <cassert>

namespace als {

AsfItem AsfItem::pairModules(ModuleId a, ModuleId b, Coord w, Coord h) {
  AsfItem item;
  item.kind = Kind::PairModules;
  item.a = a;
  item.b = b;
  item.w = w;
  item.h = h;
  return item;
}

AsfItem AsfItem::selfModule(ModuleId m, Coord w, Coord h) {
  assert(w % 2 == 0 && "self-symmetric cells need an even width");
  AsfItem item;
  item.kind = Kind::SelfModule;
  item.a = m;
  item.w = w;
  item.h = h;
  return item;
}

AsfItem AsfItem::pairMacros(Macro right, std::vector<ModuleId> ownersB) {
  assert(right.owners.size() == ownersB.size());
  AsfItem item;
  item.kind = Kind::PairMacros;
  item.w = right.w;
  item.h = right.h;
  item.macro = std::move(right);
  item.ownersB = std::move(ownersB);
  return item;
}

AsfIsland::AsfIsland(std::vector<AsfItem> items) : items_(std::move(items)) {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].kind == AsfItem::Kind::SelfModule) {
      spine_.push_back(i);
    } else {
      pairItems_.push_back(i);
    }
  }
  pairTree_ = BStarTree(pairItems_.size());
}

void AsfIsland::setItems(std::vector<AsfItem> items) {
  assert(items.size() == items_.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    assert(items[i].kind == items_[i].kind);
  }
  items_ = std::move(items);
}

void AsfIsland::perturb(Rng& rng) {
  double r = rng.uniform();
  if (r < 0.55 && pairItems_.size() >= 2) {
    pairTree_.perturb(rng);
  } else if (r < 0.75 && spine_.size() >= 2) {
    std::size_t i = rng.index(spine_.size()), j = rng.index(spine_.size());
    std::swap(spine_[i], spine_[j]);
  } else if (!spine_.empty()) {
    attachAt_ = rng.index(spine_.size());
  } else if (pairItems_.size() >= 2) {
    pairTree_.perturb(rng);
  }
}

AsfPacked AsfIsland::pack() const {
  // --- 1. pack the representatives with the axis at x = 0. ---
  // Representative macros: selfs use their right half, pairs their right
  // copy.  The packing tree is the self spine (right-child chain, x = 0)
  // with the pair tree attached as a left child of spine[attachAt_].
  // Synthesized tree node ids: spine selfs first (0..s-1), then pair tree
  // nodes offset by s (structure copied from pairTree_).
  const std::size_t s = spine_.size();
  const std::size_t p = pairItems_.size();
  const std::size_t total = s + p;
  std::vector<std::size_t> left(total, BStarTree::npos);
  std::vector<std::size_t> right(total, BStarTree::npos);
  std::vector<std::size_t> item(total);
  std::size_t rootNode = BStarTree::npos;

  for (std::size_t i = 0; i < s; ++i) {
    item[i] = spine_[i];
    if (i + 1 < s) right[i] = i + 1;
  }
  for (std::size_t i = 0; i < p; ++i) {
    item[s + i] = pairItems_[pairTree_.item(i)];
    if (pairTree_.left(i) != BStarTree::npos) left[s + i] = s + pairTree_.left(i);
    if (pairTree_.right(i) != BStarTree::npos) right[s + i] = s + pairTree_.right(i);
  }
  if (s > 0) {
    rootNode = 0;
    if (p > 0) left[std::min(attachAt_, s - 1)] = s + pairTree_.root();
  } else if (p > 0) {
    rootNode = s + pairTree_.root();
  }

  // Representative macro per item.
  std::vector<Macro> macroOf(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const AsfItem& it = items_[i];
    switch (it.kind) {
      case AsfItem::Kind::PairModules:
        macroOf[i] = Macro::fromModule(it.a, it.w, it.h);
        break;
      case AsfItem::Kind::SelfModule:
        macroOf[i] = Macro::fromModule(it.a, it.w / 2, it.h);
        break;
      case AsfItem::Kind::PairMacros:
        macroOf[i] = it.macro;
        break;
    }
  }

  // Contour-based preorder packing (same rules as packMacros).
  Contour contour;
  std::vector<Coord> x(total, 0);
  std::vector<Point> anchorOf(items_.size(), {0, 0});
  if (rootNode != BStarTree::npos) {
    std::vector<std::size_t> stack{rootNode};
    while (!stack.empty()) {
      std::size_t node = stack.back();
      stack.pop_back();
      const Macro& m = macroOf[item[node]];
      Coord yNode = contour.fitMacro(x[node], m.bottom);
      contour.placeMacro(x[node], yNode, m.top);
      anchorOf[item[node]] = {x[node], yNode};
      if (right[node] != BStarTree::npos) {
        x[right[node]] = x[node];
        stack.push_back(right[node]);
      }
      if (left[node] != BStarTree::npos) {
        x[left[node]] = x[node] + m.w;
        stack.push_back(left[node]);
      }
    }
  }

  // --- 2. mirror into the full island. ---
  Placement full;
  std::vector<ModuleId> owners;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const AsfItem& it = items_[i];
    Point a = anchorOf[i];
    switch (it.kind) {
      case AsfItem::Kind::PairModules: {
        Rect rep{a.x, a.y, it.w, it.h};
        full.push(rep);
        owners.push_back(it.a);
        full.push(rep.mirroredX(0));
        owners.push_back(it.b);
        break;
      }
      case AsfItem::Kind::SelfModule: {
        full.push({a.x - it.w / 2, a.y, it.w, it.h});
        owners.push_back(it.a);
        break;
      }
      case AsfItem::Kind::PairMacros: {
        for (std::size_t r = 0; r < it.macro.rects.size(); ++r) {
          Rect placed = it.macro.rects[r].translated(a.x, a.y);
          full.push(placed);
          owners.push_back(it.macro.owners[r]);
          full.push(placed.mirroredX(0));
          owners.push_back(it.ownersB[r]);
        }
        break;
      }
    }
  }

  // Normalize and track where the axis (x = 0) lands.
  Rect bb = full.boundingBox();
  full.normalize();
  AsfPacked out;
  out.axis2x = -2 * bb.x;
  out.macro = Macro::fromPlacement(full, owners);
  return out;
}

}  // namespace als
