#include "bstar/asf.h"

#include <algorithm>
#include <cassert>

namespace als {

AsfItem AsfItem::pairModules(ModuleId a, ModuleId b, Coord w, Coord h) {
  AsfItem item;
  item.kind = Kind::PairModules;
  item.a = a;
  item.b = b;
  item.w = w;
  item.h = h;
  return item;
}

AsfItem AsfItem::selfModule(ModuleId m, Coord w, Coord h) {
  assert(w % 2 == 0 && "self-symmetric cells need an even width");
  AsfItem item;
  item.kind = Kind::SelfModule;
  item.a = m;
  item.w = w;
  item.h = h;
  return item;
}

AsfItem AsfItem::pairMacros(Macro right, std::vector<ModuleId> ownersB) {
  assert(right.owners.size() == ownersB.size());
  AsfItem item;
  item.kind = Kind::PairMacros;
  item.w = right.w;
  item.h = right.h;
  item.macro = std::move(right);
  item.ownersB = std::move(ownersB);
  return item;
}

AsfIsland::AsfIsland(std::vector<AsfItem> items) : items_(std::move(items)) {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].kind == AsfItem::Kind::SelfModule) {
      spine_.push_back(i);
    } else {
      pairItems_.push_back(i);
    }
  }
  pairTree_ = BStarTree(pairItems_.size());
}

void AsfIsland::setItems(std::vector<AsfItem> items) {
  assert(items.size() == items_.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    assert(items[i].kind == items_[i].kind);
  }
  items_ = std::move(items);
}

void AsfIsland::refreshPairMacro(std::size_t itemIndex, const Macro& right,
                                 std::span<const ModuleId> ownersB) {
  AsfItem& item = items_[itemIndex];
  assert(item.kind == AsfItem::Kind::PairMacros);
  assert(right.owners.size() == ownersB.size());
  item.w = right.w;
  item.h = right.h;
  item.macro = right;  // vector copy-assign: reuses the item's storage
  item.ownersB.assign(ownersB.begin(), ownersB.end());
}

void AsfIsland::perturb(Rng& rng) {
  double r = rng.uniform();
  if (r < 0.55 && pairItems_.size() >= 2) {
    pairTree_.perturb(rng);
  } else if (r < 0.75 && spine_.size() >= 2) {
    std::size_t i = rng.index(spine_.size()), j = rng.index(spine_.size());
    std::swap(spine_[i], spine_[j]);
  } else if (!spine_.empty()) {
    attachAt_ = rng.index(spine_.size());
  } else if (pairItems_.size() >= 2) {
    pairTree_.perturb(rng);
  }
}

AsfPacked AsfIsland::pack() const {
  AsfPackScratch scratch;
  AsfPacked out;
  packInto(scratch, /*computeProfiles=*/true, out.macro, out.axis2x);
  return out;
}

void AsfIsland::packInto(AsfPackScratch& scr, bool computeProfiles,
                         Macro& outMacro, Coord& outAxis2x) const {
  // --- 1. pack the representatives with the axis at x = 0. ---
  // Representative macros: selfs use their right half, pairs their right
  // copy.  The packing tree is the self spine (right-child chain, x = 0)
  // with the pair tree attached as a left child of spine[attachAt_].
  // Synthesized tree node ids: spine selfs first (0..s-1), then pair tree
  // nodes offset by s (structure copied from pairTree_).
  const std::size_t s = spine_.size();
  const std::size_t p = pairItems_.size();
  const std::size_t total = s + p;
  scr.left.assign(total, BStarTree::npos);
  scr.right.assign(total, BStarTree::npos);
  scr.item.resize(total);
  std::size_t rootNode = BStarTree::npos;

  for (std::size_t i = 0; i < s; ++i) {
    scr.item[i] = spine_[i];
    if (i + 1 < s) scr.right[i] = i + 1;
  }
  for (std::size_t i = 0; i < p; ++i) {
    scr.item[s + i] = pairItems_[pairTree_.item(i)];
    if (pairTree_.left(i) != BStarTree::npos) scr.left[s + i] = s + pairTree_.left(i);
    if (pairTree_.right(i) != BStarTree::npos) scr.right[s + i] = s + pairTree_.right(i);
  }
  if (s > 0) {
    rootNode = 0;
    if (p > 0) scr.left[std::min(attachAt_, s - 1)] = s + pairTree_.root();
  } else if (p > 0) {
    rootNode = s + pairTree_.root();
  }

  // Representative macro per item.  Module items write into reusable macro
  // slots (never shrunk, so their vectors keep capacity); macro-pair items
  // are referenced in place — no copy at all.
  if (scr.itemMacros.size() < items_.size()) scr.itemMacros.resize(items_.size());
  scr.macroPtrs.resize(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const AsfItem& it = items_[i];
    switch (it.kind) {
      case AsfItem::Kind::PairModules:
        scr.itemMacros[i].assignFromModule(it.a, it.w, it.h);
        scr.macroPtrs[i] = &scr.itemMacros[i];
        break;
      case AsfItem::Kind::SelfModule:
        scr.itemMacros[i].assignFromModule(it.a, it.w / 2, it.h);
        scr.macroPtrs[i] = &scr.itemMacros[i];
        break;
      case AsfItem::Kind::PairMacros:
        scr.macroPtrs[i] = &it.macro;
        break;
    }
  }

  // Contour-based preorder packing (same rules as packMacros).
  scr.contour.reset();
  scr.x.assign(total, 0);
  scr.anchorOf.assign(items_.size(), Point{0, 0});
  if (rootNode != BStarTree::npos) {
    scr.stack.clear();
    scr.stack.push_back(rootNode);
    while (!scr.stack.empty()) {
      std::size_t node = scr.stack.back();
      scr.stack.pop_back();
      const Macro& m = *scr.macroPtrs[scr.item[node]];
      Coord yNode = scr.contour.fitMacro(scr.x[node], m.bottom);
      scr.contour.placeMacro(scr.x[node], yNode, m.top);
      scr.anchorOf[scr.item[node]] = {scr.x[node], yNode};
      if (scr.right[node] != BStarTree::npos) {
        scr.x[scr.right[node]] = scr.x[node];
        scr.stack.push_back(scr.right[node]);
      }
      if (scr.left[node] != BStarTree::npos) {
        scr.x[scr.left[node]] = scr.x[node] + m.w;
        scr.stack.push_back(scr.left[node]);
      }
    }
  }

  // --- 2. mirror into the full island. ---
  Placement& full = scr.full;
  std::vector<ModuleId>& owners = scr.owners;
  full.clear();
  owners.clear();
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const AsfItem& it = items_[i];
    Point a = scr.anchorOf[i];
    switch (it.kind) {
      case AsfItem::Kind::PairModules: {
        Rect rep{a.x, a.y, it.w, it.h};
        full.push(rep);
        owners.push_back(it.a);
        full.push(rep.mirroredX(0));
        owners.push_back(it.b);
        break;
      }
      case AsfItem::Kind::SelfModule: {
        full.push({a.x - it.w / 2, a.y, it.w, it.h});
        owners.push_back(it.a);
        break;
      }
      case AsfItem::Kind::PairMacros: {
        for (std::size_t r = 0; r < it.macro.rects.size(); ++r) {
          Rect placed = it.macro.rects[r].translated(a.x, a.y);
          full.push(placed);
          owners.push_back(it.macro.owners[r]);
          full.push(placed.mirroredX(0));
          owners.push_back(it.ownersB[r]);
        }
        break;
      }
    }
  }

  // Track where the axis (x = 0) lands; assignFromPlacement normalizes.
  Rect bb = full.boundingBox();
  outAxis2x = -2 * bb.x;
  outMacro.assignFromPlacement(full, owners, computeProfiles, scr.profileCuts);
}

}  // namespace als
