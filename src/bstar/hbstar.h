// HB*-tree hierarchical analog placement (Section III, [17]).
//
// One B*-tree per hierarchical sub-circuit plus one for the top design
// (Fig. 5).  Every internal hierarchy node packs its children into a rigid
// macro whose rectilinear outline — not just its bounding box — takes part
// in the parent packing (the contour-node mechanism; see contour.h).  The
// constraint of a node decides how its macro is built:
//
//   Symmetry        -> ASF-B*-tree symmetry island (asf.h); sub-circuit
//                      children are mirrored as macro pairs, which realizes
//                      hierarchical symmetry (Fig. 4);
//   CommonCentroid  -> interdigitated / gridded unit array (fixed macro);
//   Proximity, None -> sub-B*-tree over the children; B*-tree packings are
//                      connected, so proximity holds by construction;
//   top             -> sub-B*-tree over the root children.
//
// Simulated annealing perturbs one of the HB*-trees (or an island, or a
// free module's orientation) per move, exactly as the paper describes:
// "one of the HB*-trees should be selected first, and then any perturbation
// operation for the B*-tree can be applied to the selected HB*-tree".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bstar/asf.h"
#include "bstar/bstar_tree.h"
#include "bstar/pack.h"
#include "geom/placement.h"
#include "netlist/circuit.h"
#include "util/cancel_token.h"

namespace als {

/// Reusable buffers of one HB*-tree pack (the hierarchical decode runs once
/// per SA move and must not allocate when warm).  A scratch binds lazily to
/// a circuit: common-centroid node macros are pure functions of the circuit
/// and are cached at bind time; everything else is overwritten per pack.
/// Not shareable between concurrent packs; contents never influence results.
struct HBPackScratch {
  /// Per-hierarchy-node persistent result buffers.
  struct NodeBuf {
    Macro macro;  ///< the node's packed rigid macro
    /// (symmetry-group index, axis2x in macro-local coordinates)
    std::vector<std::pair<std::size_t, Coord>> axes;
    AsfIsland islandWork;           ///< symmetry nodes: refreshed work copy
    std::vector<HierNodeId> subs;   ///< symmetry nodes: non-leaf children
    /// Encoding version this macro was packed from (see HBState stamps);
    /// 0 is never issued, so cold buffers always repack.
    std::uint64_t stamp = 0;
  };
  std::vector<NodeBuf> node;

  // Shared sequential buffers (each node's packing completes before its
  // parent's begins, so one set serves the whole recursion).
  BStarPackScratch tree;
  AsfPackScratch asf;
  PackedMacros packed;
  Placement sub;
  std::vector<ModuleId> owners;
  std::vector<const Macro*> childMacros;
  std::vector<ModuleId> leaves;
  std::vector<HierNodeId> dfsStack;
  std::vector<Coord> profileCuts;

  /// Re-binds to `circuit` when needed (sizes the node buffers, caches the
  /// common-centroid macros).  Staleness is detected by comparing the exact
  /// cache inputs (an O(CC units) integer scan, allocation-free when warm),
  /// never by circuit address — addresses can be reused across circuits.
  void bind(const Circuit& circuit);

 private:
  std::vector<Coord> signature_;   ///< cache inputs of the current binding
  std::vector<Coord> sigScratch_;  ///< rebuilt per bind for comparison
};

/// Perturbable encoding of the whole hierarchical floorplan.
class HBState {
 public:
  /// Builds the initial state from the circuit's hierarchy tree.  Symmetry
  /// nodes with an odd number of sub-circuit children are unsupported
  /// (macro pairs need partners) and assert.
  explicit HBState(const Circuit& circuit);

  /// Applies one random perturbation (tree op, island op, rotation, or —
  /// when enabled — a soft-module shape re-selection).
  void perturb(Rng& rng);

  /// Turns on shape-selection moves with the given per-move probability.
  /// Only free leaves (modules under None/Proximity nodes) with a
  /// Module::shapes curve are eligible — symmetry-island and
  /// common-centroid members keep their construction-time footprints.  A
  /// no-op (and zero extra RNG draws in perturb) when no module qualifies
  /// or `prob` is 0, keeping default runs bit-identical.
  void enableShapeMoves(double prob);

  /// Packs the hierarchy bottom-up into a full placement.
  struct Packed {
    Placement placement;
    /// Doubled symmetry axis per circuit symmetry group (index-aligned),
    /// valid for groups owned by a symmetry hierarchy node.
    std::vector<Coord> axis2x;
    Coord width = 0, height = 0;
  };
  Packed pack() const;

  /// Scratch-reuse variant (identical results): the per-move decode of
  /// placeHBStarSA.  `out` is fully overwritten.  Node-local repack: a
  /// hierarchy node whose encoding stamp matches the scratch's cached pack
  /// (and whose children all matched) reuses its macro verbatim, so a move
  /// re-packs only the perturbed node and its ancestors — bit-identical to
  /// a cold pack (debug builds assert it against a full-pack oracle).
  void packInto(HBPackScratch& scratch, Packed& out) const;

  const Circuit& circuit() const { return *circuit_; }

 private:
  /// Packs node `id` into scratch.node[id] (macro + axes) unless the cached
  /// buffer is current; returns whether the macro was (re)packed.  The
  /// root's profile is consumed by nobody, so only non-root macros compute
  /// their O(n^2) profiles (`needProfiles`).
  bool packNodeInto(HierNodeId id, bool needProfiles,
                    HBPackScratch& scratch) const;

  const Circuit* circuit_;
  // Sub-tree per internal node id (empty when the node is not tree-packed).
  std::vector<std::optional<BStarTree>> trees_;
  std::vector<std::optional<AsfIsland>> islands_;
  std::vector<bool> rotated_;              // per module, free leaves only
  std::vector<std::uint8_t> shapeIdx_;     // per module realization (0 = footprint)
  std::vector<std::size_t> perturbable_;   // node ids with a tree or island
  std::vector<ModuleId> freeRotatable_;    // modules eligible for rotation
  std::vector<ModuleId> freeShapy_;        // free leaves with a shape curve
  double shapeMoveProb_ = 0.0;             // 0 = shape moves off
  // Per-hierarchy-node encoding version, drawn from a process-global
  // counter: every mutation of a node's encoding (tree/island perturb, leaf
  // rotation or shape re-selection) assigns a globally fresh stamp, and
  // state copies carry stamps along.  Equal stamps therefore imply an
  // identical encoding for that node — the invariant the scratch's
  // node-local repack cache relies on across rejected moves and restarts.
  std::vector<std::uint64_t> stamp_;
  std::vector<HierNodeId> leafNodeOf_;     // module -> its leaf hierarchy node
};

/// Reusable decode buffers of one HB*-tree SA run (optional; see
/// bstar/flat_placer.h for the sharing contract).
struct HBStarScratch {
  HBPackScratch pack;
  HBState::Packed packed;  ///< decoded placement of the current candidate
};

struct HBPlacerOptions {
  double wirelengthWeight = 0.25;
  double thermalWeight = 0.0;    ///< pair temperature-mismatch penalty
  double shapeMoveProb = 0.0;    ///< P(move re-selects a soft realization)
  std::size_t maxSweeps = 256;   ///< primary budget: total SA sweeps (deterministic)
  double timeLimitSec = 0.0;     ///< secondary wall-clock cap (0 = uncapped)
  std::uint64_t seed = 11;
  double coolingFactor = 0.96;
  std::size_t movesPerTemp = 0;  ///< 0 = auto
  HBStarScratch* scratch = nullptr;  ///< optional caller-owned buffers
  /// Cooperative cancellation, checked per sweep (anneal/annealer.h).
  const CancelToken* cancel = nullptr;
};

struct HBPlacerResult {
  Placement placement;
  std::vector<Coord> axis2x;  ///< per circuit symmetry group
  Coord area = 0;
  Coord hpwl = 0;
  double cost = 0.0;
  std::size_t movesTried = 0;
  std::size_t sweeps = 0;     ///< SA temperature steps executed
  double seconds = 0.0;
};

/// Hierarchical SA placement; all hierarchy constraints hold by construction
/// in every visited state.
/// Stateless and re-entrant (engine/placement_engine.h thread-safety
/// contract): reads `circuit` only, owns its RNG via `options.seed`.
HBPlacerResult placeHBStarSA(const Circuit& circuit,
                             const HBPlacerOptions& options = {});

/// Resumable HB*-tree SA run — `placeHBStarSA` cut at sweep granularity;
/// see bstar/flat_placer.h's FlatBStarSession for the shared contract
/// (run-to-completion bit-identity, `tempScale`, threading).  Replica
/// exchange between two HBStarSessions is safe without cache invalidation:
/// encoding stamps are globally unique, so a swapped-in state never aliases
/// the other session's scratch cache.
class HBStarSession {
 public:
  HBStarSession(const Circuit& circuit, const HBPlacerOptions& options,
                double tempScale = 1.0);
  ~HBStarSession();

  HBStarSession(const HBStarSession&) = delete;
  HBStarSession& operator=(const HBStarSession&) = delete;

  std::size_t runSweeps(std::size_t maxSweeps);
  void run();
  bool finished() const;

  double currentCost() const;
  double bestCost() const;
  double temperature() const;

  void exchangeWith(HBStarSession& other);

  /// Decodes the best state so far into the session scratch.  The reference
  /// stays valid until the session advances or decodes again.
  const Placement& bestPlacement();

  /// Always returns false: the hierarchical encoding (islands, CC grids,
  /// per-node trees) cannot be reconstructed from a flat placement, so this
  /// backend never adopts foreign seeds (the tempering runner falls back to
  /// keeping the replica's own state).
  bool reseedFromPlacement(const Placement& placement);

  HBPlacerResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace als
