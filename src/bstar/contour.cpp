#include "bstar/contour.h"

#include <algorithm>

namespace als {

// --------------------------------------------------------------- Contour ---

void Contour::splitAt(Coord x) {
  if (x < 0) return;
  auto it = height_.upper_bound(x);
  assert(it != height_.begin());
  --it;
  if (it->first != x) height_[x] = it->second;
}

Coord Contour::maxOver(Coord x1, Coord x2) const {
  assert(x1 < x2);
  auto it = height_.upper_bound(x1);
  assert(it != height_.begin());
  --it;
  Coord m = 0;
  for (; it != height_.end() && it->first < x2; ++it) m = std::max(m, it->second);
  return m;
}

Coord Contour::fitMacro(Coord x, std::span<const ProfileStep> bottom) const {
  Coord y = 0;
  for (const ProfileStep& step : bottom) {
    Coord clearance = maxOver(x + step.lo, x + step.hi) - step.v;
    y = std::max(y, clearance);
  }
  return y;
}

void Contour::raise(Coord x1, Coord x2, Coord h) {
  assert(x1 < x2);
  splitAt(x1);
  splitAt(x2);
  auto it = height_.lower_bound(x1);
  while (it != height_.end() && it->first < x2) {
    it->second = h;
    ++it;
  }
  // Merge equal adjacent segments to keep the map compact.
  auto merge = [&](Coord x) {
    auto cur = height_.find(x);
    if (cur == height_.end() || cur == height_.begin()) return;
    auto prev = std::prev(cur);
    if (prev->second == cur->second) height_.erase(cur);
  };
  merge(x2);
  merge(x1);
}

void Contour::placeMacro(Coord x, Coord yOffset, std::span<const ProfileStep> top) {
  for (const ProfileStep& step : top) {
    raise(x + step.lo, x + step.hi, yOffset + step.v);
  }
}

Coord Contour::heightAt(Coord x) const {
  auto it = height_.upper_bound(x);
  assert(it != height_.begin());
  return std::prev(it)->second;
}

// ----------------------------------------------------------- FlatContour ---

void FlatContour::reset() {
  // Segment is trivially destructible, so clear() is O(1) and the vector's
  // capacity — the only heap the contour ever touches — survives.
  segs_.clear();
  free_ = kNil;
  head_ = allocSeg(0, 0);
  hint_ = head_;
}

std::uint32_t FlatContour::allocSeg(Coord x, Coord h) {
  std::uint32_t s;
  if (free_ != kNil) {
    s = free_;
    free_ = segs_[s].next;
  } else {
    s = static_cast<std::uint32_t>(segs_.size());
    segs_.emplace_back();
  }
  segs_[s] = {x, h, kNil, kNil};
  return s;
}

std::uint32_t FlatContour::insertAfter(std::uint32_t s, Coord x, Coord h) {
  std::uint32_t n = allocSeg(x, h);
  std::uint32_t after = segs_[s].next;
  segs_[n].prev = s;
  segs_[n].next = after;
  segs_[s].next = n;
  if (after != kNil) segs_[after].prev = n;
  return n;
}

void FlatContour::unlinkRelease(std::uint32_t s) {
  assert(s != head_ && "the base segment at x = 0 is never removed");
  std::uint32_t p = segs_[s].prev;
  std::uint32_t n = segs_[s].next;
  segs_[p].next = n;
  if (n != kNil) segs_[n].prev = p;
  if (hint_ == s) hint_ = p;
  segs_[s].next = free_;
  free_ = s;
}

std::uint32_t FlatContour::findSeg(Coord x) const {
  assert(x >= 0);
  // Resume from the hint in either direction: the preorder DFS mostly walks
  // rightward, while the partial-repack undo sweeps leftward — both are
  // local, so the cost is the distance from the previous query, never a
  // restart from the base segment.
  std::uint32_t s = hint_;
  if (s == kNil) s = head_;
  while (segs_[s].x > x) s = segs_[s].prev;  // head_.x == 0 terminates
  while (segs_[s].next != kNil && segs_[segs_[s].next].x <= x) s = segs_[s].next;
  hint_ = s;
  return s;
}

Coord FlatContour::maxOver(Coord x1, Coord x2) const {
  assert(x1 < x2);
  Coord m = 0;
  for (std::uint32_t s = findSeg(x1); s != kNil && segs_[s].x < x2;
       s = segs_[s].next) {
    m = std::max(m, segs_[s].h);
  }
  return m;
}

Coord FlatContour::fitMacro(Coord x, std::span<const ProfileStep> bottom) const {
  Coord y = 0;
  for (const ProfileStep& step : bottom) {
    Coord clearance = maxOver(x + step.lo, x + step.hi) - step.v;
    y = std::max(y, clearance);
  }
  return y;
}

void FlatContour::raise(Coord x1, Coord x2, Coord h) {
  assert(0 <= x1 && x1 < x2);
  std::uint32_t s = findSeg(x1);
  if (segs_[s].x < x1) s = insertAfter(s, x1, segs_[s].h);
  // `s` now starts exactly at x1.  Absorb every breakpoint strictly inside
  // (x1, x2), remembering the height that covered x2's left side so the
  // remainder of a split segment keeps its value.
  Coord tailH = segs_[s].h;
  std::uint32_t nxt = segs_[s].next;
  while (nxt != kNil && segs_[nxt].x < x2) {
    tailH = segs_[nxt].h;
    std::uint32_t after = segs_[nxt].next;
    unlinkRelease(nxt);
    nxt = after;
  }
  segs_[s].h = h;
  if (nxt == kNil || segs_[nxt].x != x2) insertAfter(s, x2, tailH);
  // Merge equal-height neighbours (same invariant the map version keeps).
  std::uint32_t r = segs_[s].next;
  if (r != kNil && segs_[r].h == h) unlinkRelease(r);
  std::uint32_t p = segs_[s].prev;
  if (p != kNil && segs_[p].h == h) unlinkRelease(s);
}

void FlatContour::raiseLogged(Coord x1, Coord x2, Coord h,
                              std::vector<ContourPiece>& journal) {
  assert(0 <= x1 && x1 < x2);
  std::uint32_t s = findSeg(x1);
  if (segs_[s].x < x1) s = insertAfter(s, x1, segs_[s].h);
  // Same mutation sequence as raise(); the journal captures the overwritten
  // skyline of [x1, x2) piece by piece before each destructive step.
  journal.push_back({x1, segs_[s].h});
  Coord tailH = segs_[s].h;
  std::uint32_t nxt = segs_[s].next;
  while (nxt != kNil && segs_[nxt].x < x2) {
    journal.push_back({segs_[nxt].x, segs_[nxt].h});
    tailH = segs_[nxt].h;
    std::uint32_t after = segs_[nxt].next;
    unlinkRelease(nxt);
    nxt = after;
  }
  segs_[s].h = h;
  if (nxt == kNil || segs_[nxt].x != x2) insertAfter(s, x2, tailH);
  std::uint32_t r = segs_[s].next;
  if (r != kNil && segs_[r].h == h) unlinkRelease(r);
  std::uint32_t p = segs_[s].prev;
  if (p != kNil && segs_[p].h == h) unlinkRelease(s);
}

void FlatContour::undoRaise(std::span<const ContourPiece> pieces, Coord x2) {
  // raise() keeps the skyline canonical (it absorbs interior breakpoints
  // and merges both of its boundaries), and the canonical segment form of a
  // skyline function is unique — so replaying the overwritten pieces yields
  // a structure indistinguishable from the pre-raise one.
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    Coord end = i + 1 < pieces.size() ? pieces[i + 1].x : x2;
    raise(pieces[i].x, end, pieces[i].h);
  }
}

void FlatContour::placeMacro(Coord x, Coord yOffset,
                             std::span<const ProfileStep> top) {
  for (const ProfileStep& step : top) {
    raise(x + step.lo, x + step.hi, yOffset + step.v);
  }
}

Coord FlatContour::heightAt(Coord x) const { return segs_[findSeg(x)].h; }

std::size_t FlatContour::segmentCount() const {
  std::size_t n = 0;
  for (std::uint32_t s = head_; s != kNil; s = segs_[s].next) ++n;
  return n;
}

std::size_t FlatContour::freeCount() const {
  std::size_t n = 0;
  for (std::uint32_t s = free_; s != kNil; s = segs_[s].next) ++n;
  return n;
}

}  // namespace als
