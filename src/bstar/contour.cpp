#include "bstar/contour.h"

#include <algorithm>
#include <cassert>

namespace als {

void Contour::splitAt(Coord x) {
  if (x < 0) return;
  auto it = height_.upper_bound(x);
  assert(it != height_.begin());
  --it;
  if (it->first != x) height_[x] = it->second;
}

Coord Contour::maxOver(Coord x1, Coord x2) const {
  assert(x1 < x2);
  auto it = height_.upper_bound(x1);
  assert(it != height_.begin());
  --it;
  Coord m = 0;
  for (; it != height_.end() && it->first < x2; ++it) m = std::max(m, it->second);
  return m;
}

Coord Contour::fitMacro(Coord x, std::span<const ProfileStep> bottom) const {
  Coord y = 0;
  for (const ProfileStep& step : bottom) {
    Coord clearance = maxOver(x + step.lo, x + step.hi) - step.v;
    y = std::max(y, clearance);
  }
  return y;
}

void Contour::raise(Coord x1, Coord x2, Coord h) {
  assert(x1 < x2);
  splitAt(x1);
  splitAt(x2);
  auto it = height_.lower_bound(x1);
  while (it != height_.end() && it->first < x2) {
    it->second = h;
    ++it;
  }
  // Merge equal adjacent segments to keep the map compact.
  auto merge = [&](Coord x) {
    auto cur = height_.find(x);
    if (cur == height_.end() || cur == height_.begin()) return;
    auto prev = std::prev(cur);
    if (prev->second == cur->second) height_.erase(cur);
  };
  merge(x2);
  merge(x1);
}

void Contour::placeMacro(Coord x, Coord yOffset, std::span<const ProfileStep> top) {
  for (const ProfileStep& step : top) {
    raise(x + step.lo, x + step.hi, yOffset + step.v);
  }
}

Coord Contour::heightAt(Coord x) const {
  auto it = height_.upper_bound(x);
  assert(it != height_.begin());
  return std::prev(it)->second;
}

}  // namespace als
