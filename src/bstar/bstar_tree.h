// B*-tree floorplan representation (Chang et al. [5]).
//
// An n-node B*-tree encodes a lower-left-compacted non-slicing placement:
// in a preorder traversal, the left child of a node is its nearest right
// neighbour (x = parent.x + parent.w) and the right child is the first
// module stacked above it (x = parent.x); y coordinates come from the
// packing contour.  The number of distinct placements for n modules is
// n! * Catalan(n) — the 57,657,600 configurations Section IV quotes for
// n = 8 — making full enumeration infeasible beyond basic module sets.
//
// The tree is stored as parent/left/right index arrays over item slots; the
// perturbation set (swap items, move a leaf, plus module rotation handled by
// the callers) is closed over valid trees.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace als {

class BStarTree {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  BStarTree() = default;

  /// Balanced initial tree over n items (heap-shaped).
  explicit BStarTree(std::size_t n);

  /// Uniform random tree shape (random insertion order into random slots).
  static BStarTree random(std::size_t n, Rng& rng);

  /// Tree from explicit structure arrays (used by the Section IV exhaustive
  /// enumerator); `npos` marks absent children.  Must form a valid tree.
  static BStarTree fromArrays(std::size_t root, std::vector<std::size_t> left,
                              std::vector<std::size_t> right,
                              std::vector<std::size_t> items);

  /// In-place `fromArrays`: overwrites this tree's structure reusing its
  /// storage (allocation-free when the size matches, which is what the
  /// cross-backend reseed converters rely on).  Must form a valid tree.
  void assignArrays(std::size_t root, std::span<const std::size_t> left,
                    std::span<const std::size_t> right,
                    std::span<const std::size_t> items);

  std::size_t size() const { return item_.size(); }
  std::size_t root() const { return root_; }
  std::size_t left(std::size_t node) const { return left_[node]; }
  std::size_t right(std::size_t node) const { return right_[node]; }
  std::size_t parent(std::size_t node) const { return parent_[node]; }

  /// Item (module / macro index) stored at a tree node.
  std::size_t item(std::size_t node) const { return item_[node]; }

  /// Swaps the items of two nodes (tree shape unchanged).
  void swapItems(std::size_t a, std::size_t b);

  /// Detaches a leaf node and reinserts it as a child of `newParent` on the
  /// given side; the old child of that slot (if any) becomes the moved
  /// node's child on the same side.
  void moveNode(std::size_t node, std::size_t newParent, bool asLeftChild);

  /// Random structural perturbation: swap two items or move a node.
  void perturb(Rng& rng);

  /// Preorder traversal (root, left subtree, right subtree).
  std::vector<std::size_t> preorder() const;

  /// Structural invariants: single root, consistent parent links, all nodes
  /// reachable exactly once.
  bool isValid() const;

 private:
  std::vector<std::size_t> parent_, left_, right_, item_;
  std::size_t root_ = npos;

  void detachLeaf(std::size_t node);
};

}  // namespace als
