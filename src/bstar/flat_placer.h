// Flat B*-tree SA placer — the non-hierarchical baseline for experiment E6.
//
// All modules live in one B*-tree; analog constraints are not structural
// but *penalized*: symmetry deviation, common-centroid deviation and
// proximity disconnection enter the cost with weights.  Section III's
// argument — hierarchy shrinks the search space and makes constraints hold
// by construction — is demonstrated against this placer, which typically
// ends with residual constraint violations the HB*-tree placer cannot have.
#pragma once

#include <cstdint>
#include <memory>

#include "bstar/pack.h"
#include "geom/placement.h"
#include "netlist/circuit.h"
#include "util/cancel_token.h"

namespace als {

/// Reusable decode buffers of one flat B*-tree SA run.  Optional: a run
/// without one builds its own.  A scratch may be reused across sequential
/// runs and circuits (the runtime layer keeps one per worker thread) but
/// never by two concurrent runs; its contents never influence results.
struct FlatBStarScratch {
  BStarPackScratch pack;
  std::vector<Coord> w, h;   ///< orientation-resolved footprints
  Placement placement;       ///< decoded placement of the current candidate
  // Moved-module accumulator for the hinted cost propose: the ids decoded
  // differently since the cost model last committed, deduplicated by an
  // epoch stamp per module (see FlatDecoder in flat_placer.cpp).
  std::vector<ModuleId> movedList;
  std::vector<std::uint32_t> movedMark;
  std::uint32_t movedEpoch = 0;
};

struct FlatBStarOptions {
  double wirelengthWeight = 0.25;
  double symmetryWeight = 2.0;    ///< penalty scale for mirror deviation
  double proximityWeight = 2.0;   ///< penalty scale for disconnected groups
  double thermalWeight = 0.0;     ///< pair temperature-mismatch penalty
  double shapeMoveProb = 0.0;     ///< P(move re-selects a soft realization)
  std::size_t maxSweeps = 256;    ///< primary budget: total SA sweeps (deterministic)
  double timeLimitSec = 0.0;      ///< secondary wall-clock cap (0 = uncapped)
  std::uint64_t seed = 11;
  double coolingFactor = 0.96;
  std::size_t movesPerTemp = 0;
  /// Re-decode only the changed B*-tree suffix per move (bit-identical to a
  /// full re-decode; see packBStarPartialInto).  Off = the historical
  /// full-redecode path, kept for the bench_decode scaling A/B and as a
  /// trajectory-equivalence oracle in tests.
  bool partialDecode = true;
  FlatBStarScratch* scratch = nullptr;  ///< optional caller-owned buffers
  /// Cooperative cancellation, checked per sweep (anneal/annealer.h).
  const CancelToken* cancel = nullptr;
};

struct FlatBStarResult {
  Placement placement;
  Coord area = 0;
  Coord hpwl = 0;
  Coord symDeviation = 0;    ///< residual mirror deviation (DBU; 0 = exact)
  int proximityViolations = 0;  ///< disconnected proximity groups
  double cost = 0.0;
  std::size_t movesTried = 0;
  std::size_t sweeps = 0;    ///< SA temperature steps executed
  double seconds = 0.0;
};

/// Stateless and re-entrant (engine/placement_engine.h thread-safety
/// contract): reads `circuit` only, owns its RNG via `options.seed`.
FlatBStarResult placeFlatBStarSA(const Circuit& circuit,
                                 const FlatBStarOptions& options = {});

/// Resumable flat B*-tree SA run — `placeFlatBStarSA` cut at sweep
/// granularity (anneal/annealer.h's AnnealDriver): construct, advance in
/// rounds with `runSweeps`, optionally exchange states or reseed between
/// rounds, and `finish()`.  A session run to completion in one go IS
/// `placeFlatBStarSA`, bit for bit (the function is implemented on top of
/// it).  `tempScale` multiplies the calibrated t0 of every internal restart
/// (1.0 = the sequential schedule, exactly).
///
/// Not movable or shareable across threads concurrently; the tempering
/// runner advances each session from one thread at a time with fork-join
/// barriers in between, which is all the contract requires.
class FlatBStarSession {
 public:
  FlatBStarSession(const Circuit& circuit, const FlatBStarOptions& options,
                   double tempScale = 1.0);
  ~FlatBStarSession();

  FlatBStarSession(const FlatBStarSession&) = delete;
  FlatBStarSession& operator=(const FlatBStarSession&) = delete;

  /// Advances up to `maxSweeps` temperature steps; returns the number
  /// executed (fewer only when the whole budget finished).
  std::size_t runSweeps(std::size_t maxSweeps);
  /// Runs the remaining budget to completion.
  void run();
  bool finished() const;

  double currentCost() const;
  double bestCost() const;
  double temperature() const;  ///< current SA temperature (ladder-scaled)

  /// Swaps the two sessions' current states (replica exchange) and
  /// re-anchors both evaluators; no RNG is consumed.  Both sessions must
  /// place the same circuit.
  void exchangeWith(FlatBStarSession& other);

  /// Decodes the best state so far into the session scratch.  The reference
  /// stays valid until the session advances or decodes again.
  const Placement& bestPlacement();

  /// Replaces the current state with the B*-tree reconstruction of
  /// `placement` (bstar/from_placement.h), recovering orientations and
  /// shape choices from the rect dimensions, and re-anchors.  Always
  /// succeeds for this backend (penalty-based: every state is feasible).
  bool reseedFromPlacement(const Placement& placement);

  /// Finalizes (running any leftover budget first) and assembles the
  /// result exactly as `placeFlatBStarSA` does.
  FlatBStarResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace als
