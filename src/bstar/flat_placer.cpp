#include "bstar/flat_placer.h"

#include <cmath>

#include "anneal/annealer.h"
#include "bstar/hbstar.h"
#include "bstar/pack.h"

namespace als {

namespace {

struct FlatState {
  BStarTree tree;
  std::vector<bool> rotated;
};

/// Mirror deviation (same metric as the absolute-coordinate baseline).
Coord symmetryDeviation(const Placement& p, std::span<const SymmetryGroup> groups) {
  Coord total = 0;
  for (const SymmetryGroup& g : groups) {
    std::size_t terms = g.pairs.size() + g.selfs.size();
    if (terms == 0) continue;
    Coord axis2Sum = 0;
    for (const SymPair& pr : g.pairs) {
      axis2Sum += (p[pr.a].center2x().x + p[pr.b].center2x().x) / 2;
    }
    for (ModuleId s : g.selfs) axis2Sum += p[s].center2x().x;
    Coord axis2 = axis2Sum / static_cast<Coord>(terms);
    for (const SymPair& pr : g.pairs) {
      total += std::abs(p[pr.a].center2x().x + p[pr.b].center2x().x - 2 * axis2) / 2;
      total += std::abs(p[pr.a].y - p[pr.b].y);
    }
    for (ModuleId s : g.selfs) total += std::abs(p[s].center2x().x - axis2) / 2;
  }
  return total;
}

/// Proximity groups (from the hierarchy) that are not edge-connected.
int proximityViolations(const Circuit& c, const Placement& p) {
  int violations = 0;
  const HierTree& h = c.hierarchy();
  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    if (h.node(id).constraint != GroupConstraint::Proximity) continue;
    std::vector<Rect> rects;
    for (ModuleId m : h.leavesUnder(id)) rects.push_back(p[m]);
    if (!isConnectedRegion(rects)) ++violations;
  }
  return violations;
}

}  // namespace

FlatBStarResult placeFlatBStarSA(const Circuit& circuit,
                                 const FlatBStarOptions& options) {
  const std::size_t n = circuit.moduleCount();
  const auto nets = circuit.netPins();
  const auto groups = std::span<const SymmetryGroup>(circuit.symmetryGroups());
  const double wlLambda =
      options.wirelengthWeight *
      std::sqrt(static_cast<double>(circuit.totalModuleArea()));
  const double symLambda =
      options.constraintWeight *
      std::sqrt(static_cast<double>(circuit.totalModuleArea()));
  const double proxLambda =
      options.constraintWeight * static_cast<double>(circuit.totalModuleArea()) * 0.1;

  auto dims = [&](const FlatState& s) {
    std::vector<Coord> w(n), h(n);
    for (std::size_t m = 0; m < n; ++m) {
      const Module& mod = circuit.module(m);
      w[m] = s.rotated[m] ? mod.h : mod.w;
      h[m] = s.rotated[m] ? mod.w : mod.h;
    }
    return std::pair(std::move(w), std::move(h));
  };

  auto evaluate = [&](const FlatState& s) {
    auto [w, h] = dims(s);
    return packBStar(s.tree, w, h);
  };

  auto cost = [&](const FlatState& s) {
    Placement p = evaluate(s);
    double c = static_cast<double>(p.boundingBox().area());
    c += wlLambda * static_cast<double>(totalHpwl(p, nets));
    c += symLambda * static_cast<double>(symmetryDeviation(p, groups));
    c += proxLambda * proximityViolations(circuit, p);
    return c;
  };

  auto move = [&](const FlatState& s, Rng& rng) {
    FlatState next = s;
    if (rng.uniform() < 0.15) {
      std::size_t m = rng.index(n);
      if (circuit.module(m).rotatable) next.rotated[m] = !next.rotated[m];
    } else {
      next.tree.perturb(rng);
    }
    return next;
  };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = n;
  FlatState init{BStarTree(n), std::vector<bool>(n, false)};
  auto annealed = annealWithRestarts(init, cost, move, annealOpt);

  FlatBStarResult result;
  result.placement = evaluate(annealed.best);
  result.area = result.placement.boundingBox().area();
  result.hpwl = totalHpwl(result.placement, nets);
  result.symDeviation = symmetryDeviation(result.placement, groups);
  result.proximityViolations = proximityViolations(circuit, result.placement);
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
