#include "bstar/flat_placer.h"

#include <utility>
#include <vector>

#include "anneal/annealer.h"
#include "bstar/bstar_tree.h"
#include "bstar/pack.h"
#include "cost/cost_model.h"

namespace als {

namespace {

struct FlatState {
  BStarTree tree;
  std::vector<bool> rotated;
};

}  // namespace

FlatBStarResult placeFlatBStarSA(const Circuit& circuit,
                                 const FlatBStarOptions& options) {
  const std::size_t n = circuit.moduleCount();
  CostModel model(circuit,
                  makeObjective(circuit, {.wirelength = options.wirelengthWeight,
                                          .symmetry = options.symmetryWeight,
                                          .proximity = options.proximityWeight}));

  FlatBStarScratch localScratch;
  FlatBStarScratch& scr = options.scratch ? *options.scratch : localScratch;

  // Decode = dims + pack, entirely into the scratch buffers; the returned
  // pointer aliases scr.placement, which the cost model diff-copies from.
  auto decode = [&](const FlatState& s) -> const Placement* {
    scr.w.resize(n);
    scr.h.resize(n);
    for (std::size_t m = 0; m < n; ++m) {
      const Module& mod = circuit.module(m);
      scr.w[m] = s.rotated[m] ? mod.h : mod.w;
      scr.h[m] = s.rotated[m] ? mod.w : mod.h;
    }
    packBStarInto(s.tree, scr.w, scr.h, scr.pack, scr.placement);
    return &scr.placement;
  };

  // In-place move style (anneal/annealer.h): `s` already holds a copy of
  // the current state; same RNG draws as the historical copying move.
  auto move = [&](FlatState& s, Rng& rng) {
    if (rng.uniform() < 0.15) {
      std::size_t m = rng.index(n);
      if (circuit.module(m).rotatable) s.rotated[m] = !s.rotated[m];
    } else {
      s.tree.perturb(rng);
    }
  };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = n;
  FlatState init{BStarTree(n), std::vector<bool>(n, false)};
  auto annealed = annealWithRestarts(init, model, decode, move, annealOpt);

  FlatBStarResult result;
  result.placement = *decode(annealed.best);
  CostBreakdown breakdown = model.evaluateBreakdown(result.placement);
  result.area = breakdown.area;
  result.hpwl = breakdown.hpwl;
  result.symDeviation = breakdown.symDeviation;
  result.proximityViolations = breakdown.proximityViolations;
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
