#include "bstar/flat_placer.h"

#include <utility>
#include <vector>

#include "anneal/annealer.h"
#include "bstar/bstar_tree.h"
#include "bstar/from_placement.h"
#include "bstar/pack.h"
#include "cost/cost_model.h"

namespace als {

namespace {

struct FlatState {
  BStarTree tree;
  std::vector<bool> rotated;
  std::vector<std::uint8_t> shapeIdx;  ///< index into Module::shapes (0 = footprint)
};

/// Decode = dims + pack, entirely into the scratch buffers; the returned
/// pointer aliases scr.placement, which the cost model diff-copies from.
/// With partial decode on, only the changed B*-tree suffix re-packs, and
/// the suffix's items feed the moved-module accumulator that opts the run
/// into the hinted CostModel::propose(p, moved) fast path (see
/// anneal/annealer.h for the movedModules()/committed() contract).
struct FlatDecoder {
  const Circuit& circuit;
  FlatBStarScratch& scr;
  std::size_t n;
  bool partial;

  void markMoved(ModuleId m) {
    if (scr.movedMark[m] != scr.movedEpoch) {
      scr.movedMark[m] = scr.movedEpoch;
      scr.movedList.push_back(m);
    }
  }

  const Placement* operator()(const FlatState& s) {
    scr.w.resize(n);
    scr.h.resize(n);
    for (std::size_t m = 0; m < n; ++m) {
      const Module& mod = circuit.module(m);
      Coord bw = mod.w, bh = mod.h;
      if (std::uint8_t si = s.shapeIdx[m]; si != 0) {
        bw = mod.shapes[si].w;
        bh = mod.shapes[si].h;
      }
      scr.w[m] = s.rotated[m] ? bh : bw;
      scr.h[m] = s.rotated[m] ? bw : bh;
    }
    if (!partial) {
      // Full-redecode path: every module may have moved.
      packBStarInto(s.tree, scr.w, scr.h, scr.pack, scr.placement);
      for (ModuleId m = 0; m < n; ++m) markMoved(m);
      return &scr.placement;
    }
    std::size_t k = packBStarPartialInto(s.tree, scr.w, scr.h, scr.pack,
                                         scr.placement);
    for (std::size_t p = k; p < n; ++p) markMoved(scr.pack.repack.item[p]);
    return &scr.placement;
  }

  std::span<const ModuleId> movedModules() const { return scr.movedList; }
  void committed() {
    scr.movedList.clear();
    if (++scr.movedEpoch == 0) {  // epoch wrap: restamp instead of aliasing
      scr.movedMark.assign(scr.movedMark.size(), 0);
      scr.movedEpoch = 1;
    }
  }
};

/// The SA move as a named functor so the session can own it (same body and
/// RNG draws as the historical lambda in placeFlatBStarSA).
struct FlatMove {
  const Circuit* circuit;
  const std::vector<ModuleId>* shapy;
  double shapeMoveProb;
  bool shapeMoves;
  std::size_t n;

  void operator()(FlatState& s, Rng& rng) const {
    if (shapeMoves && rng.uniform() < shapeMoveProb) {
      ModuleId m = (*shapy)[rng.index(shapy->size())];
      s.shapeIdx[m] = static_cast<std::uint8_t>(
          rng.index(circuit->module(m).shapes.size()));
      return;
    }
    if (rng.uniform() < 0.15) {
      std::size_t m = rng.index(n);
      if (circuit->module(m).rotatable) s.rotated[m] = !s.rotated[m];
    } else {
      s.tree.perturb(rng);
    }
  }
};

}  // namespace

struct FlatBStarSession::Impl {
  using Eval = detail::IncrementalEval<CostModel, FlatDecoder>;
  using Driver = detail::AnnealDriver<FlatState, Eval, FlatMove>;

  const Circuit& circuit;
  FlatBStarOptions options;
  std::size_t n;
  CostModel model;
  std::vector<ModuleId> shapy;
  FlatBStarScratch localScratch;
  FlatBStarScratch& scr;
  FlatDecoder decode;
  std::optional<Driver> driver;
  // Cross-backend reseed buffers (warm after the first reseed).
  BStarFromPlacementScratch reseedScratch;

  Impl(const Circuit& c, const FlatBStarOptions& o, double tempScale)
      : circuit(c),
        options(o),
        n(c.moduleCount()),
        model(c, makeObjective(c, {.wirelength = o.wirelengthWeight,
                                   .symmetry = o.symmetryWeight,
                                   .proximity = o.proximityWeight,
                                   .thermal = o.thermalWeight})),
        scr(o.scratch ? *o.scratch : localScratch),
        decode{c, scr, n, o.partialDecode} {
    // Shape moves only exist when asked for AND some module carries a
    // curve; otherwise the move draws exactly the historical RNG stream and
    // every decode reads the declared footprint — bit-identical to builds
    // that predate shape selection.
    for (ModuleId m = 0; m < n; ++m) {
      if (circuit.module(m).shapes.size() > 1) shapy.push_back(m);
    }
    const bool shapeMoves = options.shapeMoveProb > 0.0 && !shapy.empty();

    scr.movedList.clear();
    scr.movedMark.assign(n, 0);
    scr.movedEpoch = 1;

    AnnealOptions annealOpt;
    annealOpt.maxSweeps = options.maxSweeps;
    annealOpt.timeLimitSec = options.timeLimitSec;
    annealOpt.seed = options.seed;
    annealOpt.coolingFactor = options.coolingFactor;
    annealOpt.movesPerTemp = options.movesPerTemp;
    annealOpt.sizeHint = n;
    annealOpt.cancel = options.cancel;
    FlatState init{BStarTree(n), std::vector<bool>(n, false),
                   std::vector<std::uint8_t>(n, 0)};
    driver.emplace(init, Eval{model, decode},
                   FlatMove{&circuit, &shapy, options.shapeMoveProb,
                            shapeMoves, n},
                   annealOpt, tempScale);
  }
};

FlatBStarSession::FlatBStarSession(const Circuit& circuit,
                                   const FlatBStarOptions& options,
                                   double tempScale)
    : impl_(std::make_unique<Impl>(circuit, options, tempScale)) {}

FlatBStarSession::~FlatBStarSession() = default;

std::size_t FlatBStarSession::runSweeps(std::size_t maxSweeps) {
  return impl_->driver->runSweeps(maxSweeps);
}

void FlatBStarSession::run() { impl_->driver->run(); }

bool FlatBStarSession::finished() const { return impl_->driver->finished(); }

double FlatBStarSession::currentCost() const {
  return impl_->driver->currentCost();
}

double FlatBStarSession::bestCost() const { return impl_->driver->bestCost(); }

double FlatBStarSession::temperature() const {
  return impl_->driver->temperature();
}

void FlatBStarSession::exchangeWith(FlatBStarSession& other) {
  Impl::Driver::exchange(*impl_->driver, *other.impl_->driver);
}

const Placement& FlatBStarSession::bestPlacement() {
  const Placement* p = impl_->decode(impl_->driver->bestState());
  return *p;
}

bool FlatBStarSession::reseedFromPlacement(const Placement& placement) {
  if (placement.size() != impl_->n) return false;
  FlatState& s = impl_->driver->currentState();
  bstarFromPlacement(placement, impl_->reseedScratch, s.tree);
  // Recover orientation / shape choice per module from the rect dims:
  // first matching realization wins (0 = declared footprint), rotation
  // when the transposed dims match instead.  Degenerate (square) modules
  // keep the unrotated reading — deterministic either way.
  for (std::size_t m = 0; m < impl_->n; ++m) {
    const Module& mod = impl_->circuit.module(m);
    const Rect& r = placement[m];
    s.rotated[m] = false;
    s.shapeIdx[m] = 0;
    if (r.w == mod.w && r.h == mod.h) continue;
    if (mod.rotatable && r.w == mod.h && r.h == mod.w) {
      s.rotated[m] = true;
      continue;
    }
    for (std::size_t si = 1; si < mod.shapes.size(); ++si) {
      if (r.w == mod.shapes[si].w && r.h == mod.shapes[si].h) {
        s.shapeIdx[m] = static_cast<std::uint8_t>(si);
        break;
      }
    }
  }
  impl_->driver->reanchor();
  return true;
}

FlatBStarResult FlatBStarSession::finish() {
  AnnealResult<FlatState> annealed = impl_->driver->finalize();
  FlatBStarResult result;
  result.placement = *impl_->decode(annealed.best);
  CostBreakdown breakdown = impl_->model.evaluateBreakdown(result.placement);
  result.area = breakdown.area;
  result.hpwl = breakdown.hpwl;
  result.symDeviation = breakdown.symDeviation;
  result.proximityViolations = breakdown.proximityViolations;
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

FlatBStarResult placeFlatBStarSA(const Circuit& circuit,
                                 const FlatBStarOptions& options) {
  FlatBStarSession session(circuit, options);
  return session.finish();
}

}  // namespace als
