#include "bstar/flat_placer.h"

#include <optional>
#include <utility>
#include <vector>

#include "anneal/annealer.h"
#include "bstar/bstar_tree.h"
#include "bstar/pack.h"
#include "cost/cost_model.h"

namespace als {

namespace {

struct FlatState {
  BStarTree tree;
  std::vector<bool> rotated;
};

}  // namespace

FlatBStarResult placeFlatBStarSA(const Circuit& circuit,
                                 const FlatBStarOptions& options) {
  const std::size_t n = circuit.moduleCount();
  CostModel model(circuit,
                  makeObjective(circuit, {.wirelength = options.wirelengthWeight,
                                          .symmetry = options.symmetryWeight,
                                          .proximity = options.proximityWeight}));

  auto dims = [&](const FlatState& s) {
    std::vector<Coord> w(n), h(n);
    for (std::size_t m = 0; m < n; ++m) {
      const Module& mod = circuit.module(m);
      w[m] = s.rotated[m] ? mod.h : mod.w;
      h[m] = s.rotated[m] ? mod.w : mod.h;
    }
    return std::pair(std::move(w), std::move(h));
  };

  auto decode = [&](const FlatState& s) -> std::optional<Placement> {
    auto [w, h] = dims(s);
    return packBStar(s.tree, w, h);
  };

  auto move = [&](const FlatState& s, Rng& rng) {
    FlatState next = s;
    if (rng.uniform() < 0.15) {
      std::size_t m = rng.index(n);
      if (circuit.module(m).rotatable) next.rotated[m] = !next.rotated[m];
    } else {
      next.tree.perturb(rng);
    }
    return next;
  };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = n;
  FlatState init{BStarTree(n), std::vector<bool>(n, false)};
  auto annealed = annealWithRestarts(init, model, decode, move, annealOpt);

  FlatBStarResult result;
  result.placement = *decode(annealed.best);
  CostBreakdown breakdown = model.evaluateBreakdown(result.placement);
  result.area = breakdown.area;
  result.hpwl = breakdown.hpwl;
  result.symDeviation = breakdown.symDeviation;
  result.proximityViolations = breakdown.proximityViolations;
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
