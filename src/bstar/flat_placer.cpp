#include "bstar/flat_placer.h"

#include <utility>
#include <vector>

#include "anneal/annealer.h"
#include "bstar/bstar_tree.h"
#include "bstar/pack.h"
#include "cost/cost_model.h"

namespace als {

namespace {

struct FlatState {
  BStarTree tree;
  std::vector<bool> rotated;
  std::vector<std::uint8_t> shapeIdx;  ///< index into Module::shapes (0 = footprint)
};

/// Decode = dims + pack, entirely into the scratch buffers; the returned
/// pointer aliases scr.placement, which the cost model diff-copies from.
/// With partial decode on, only the changed B*-tree suffix re-packs, and
/// the suffix's items feed the moved-module accumulator that opts the run
/// into the hinted CostModel::propose(p, moved) fast path (see
/// anneal/annealer.h for the movedModules()/committed() contract).
struct FlatDecoder {
  const Circuit& circuit;
  FlatBStarScratch& scr;
  std::size_t n;
  bool partial;

  void markMoved(ModuleId m) {
    if (scr.movedMark[m] != scr.movedEpoch) {
      scr.movedMark[m] = scr.movedEpoch;
      scr.movedList.push_back(m);
    }
  }

  const Placement* operator()(const FlatState& s) {
    scr.w.resize(n);
    scr.h.resize(n);
    for (std::size_t m = 0; m < n; ++m) {
      const Module& mod = circuit.module(m);
      Coord bw = mod.w, bh = mod.h;
      if (std::uint8_t si = s.shapeIdx[m]; si != 0) {
        bw = mod.shapes[si].w;
        bh = mod.shapes[si].h;
      }
      scr.w[m] = s.rotated[m] ? bh : bw;
      scr.h[m] = s.rotated[m] ? bw : bh;
    }
    if (!partial) {
      // Full-redecode path: every module may have moved.
      packBStarInto(s.tree, scr.w, scr.h, scr.pack, scr.placement);
      for (ModuleId m = 0; m < n; ++m) markMoved(m);
      return &scr.placement;
    }
    std::size_t k = packBStarPartialInto(s.tree, scr.w, scr.h, scr.pack,
                                         scr.placement);
    for (std::size_t p = k; p < n; ++p) markMoved(scr.pack.repack.item[p]);
    return &scr.placement;
  }

  std::span<const ModuleId> movedModules() const { return scr.movedList; }
  void committed() {
    scr.movedList.clear();
    if (++scr.movedEpoch == 0) {  // epoch wrap: restamp instead of aliasing
      scr.movedMark.assign(scr.movedMark.size(), 0);
      scr.movedEpoch = 1;
    }
  }
};

}  // namespace

FlatBStarResult placeFlatBStarSA(const Circuit& circuit,
                                 const FlatBStarOptions& options) {
  const std::size_t n = circuit.moduleCount();
  CostModel model(circuit,
                  makeObjective(circuit, {.wirelength = options.wirelengthWeight,
                                          .symmetry = options.symmetryWeight,
                                          .proximity = options.proximityWeight,
                                          .thermal = options.thermalWeight}));

  // Shape moves only exist when asked for AND some module carries a curve;
  // otherwise the move draws exactly the historical RNG stream and every
  // decode reads the declared footprint — bit-identical to builds that
  // predate shape selection.
  std::vector<ModuleId> shapy;
  for (ModuleId m = 0; m < n; ++m) {
    if (circuit.module(m).shapes.size() > 1) shapy.push_back(m);
  }
  const bool shapeMoves = options.shapeMoveProb > 0.0 && !shapy.empty();

  FlatBStarScratch localScratch;
  FlatBStarScratch& scr = options.scratch ? *options.scratch : localScratch;
  scr.movedList.clear();
  scr.movedMark.assign(n, 0);
  scr.movedEpoch = 1;

  FlatDecoder decode{circuit, scr, n, options.partialDecode};

  // In-place move style (anneal/annealer.h): `s` already holds a copy of
  // the current state; same RNG draws as the historical copying move.
  auto move = [&](FlatState& s, Rng& rng) {
    if (shapeMoves && rng.uniform() < options.shapeMoveProb) {
      ModuleId m = shapy[rng.index(shapy.size())];
      s.shapeIdx[m] = static_cast<std::uint8_t>(
          rng.index(circuit.module(m).shapes.size()));
      return;
    }
    if (rng.uniform() < 0.15) {
      std::size_t m = rng.index(n);
      if (circuit.module(m).rotatable) s.rotated[m] = !s.rotated[m];
    } else {
      s.tree.perturb(rng);
    }
  };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = n;
  FlatState init{BStarTree(n), std::vector<bool>(n, false),
                 std::vector<std::uint8_t>(n, 0)};
  auto annealed = annealWithRestarts(init, model, decode, move, annealOpt);

  FlatBStarResult result;
  result.placement = *decode(annealed.best);
  CostBreakdown breakdown = model.evaluateBreakdown(result.placement);
  result.area = breakdown.area;
  result.hpwl = breakdown.hpwl;
  result.symDeviation = breakdown.symDeviation;
  result.proximityViolations = breakdown.proximityViolations;
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
