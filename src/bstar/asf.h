// ASF-B*-trees: automatically symmetric-feasible symmetry islands
// (Lin & Lin [16], used by the HB*-tree framework of Section III).
//
// A symmetry island packs one symmetry group as a contiguous block that is
// symmetric *by construction*: only the right half-plane is represented in
// a B*-tree of representatives — one cell per symmetric pair, the right
// half of every self-symmetric cell — with the axis at x = 0.  Packing the
// representatives and mirroring yields the island; no symmetric-feasibility
// check is ever needed, hence "automatically symmetric-feasible".
//
// Self-symmetric representatives must keep x = 0 (they straddle the axis),
// which holds structurally for every node on the root's right-child chain
// (the chain inherits x = 0).  The island therefore keeps its selfs on a
// spine of right children and hangs the pair representatives' B*-tree off a
// configurable spine node.
//
// Hierarchical symmetry (Fig. 4) is supported through macro pairs: a whole
// packed sub-circuit (e.g. a common-centroid array) acts as one
// representative whose mirrored copy realizes the partner sub-circuit.
#pragma once

#include <span>
#include <vector>

#include "bstar/bstar_tree.h"
#include "bstar/pack.h"
#include "geom/placement.h"
#include "netlist/module.h"
#include "util/rng.h"

namespace als {

struct AsfItem {
  enum class Kind { PairModules, SelfModule, PairMacros };
  Kind kind = Kind::PairModules;

  // PairModules: modules a (right representative) and b (mirrored partner),
  // matched footprints w x h.
  // SelfModule: module a centered on the axis, full footprint w x h.
  ModuleId a = 0, b = 0;
  Coord w = 0, h = 0;

  // PairMacros: `macro` is the right sub-circuit; ownersB (parallel to
  // macro.owners) are the modules of the mirrored partner sub-circuit.
  Macro macro;
  std::vector<ModuleId> ownersB;

  static AsfItem pairModules(ModuleId a, ModuleId b, Coord w, Coord h);
  static AsfItem selfModule(ModuleId m, Coord w, Coord h);
  static AsfItem pairMacros(Macro right, std::vector<ModuleId> ownersB);
};

/// Packed island: a rigid macro over all member modules plus the axis
/// position in macro-local (normalized) doubled coordinates.
struct AsfPacked {
  Macro macro;
  Coord axis2x = 0;
};

/// Reusable buffers of one island packing loop (the HB*-tree decode packs
/// every island once per SA move).  Not shareable between concurrent
/// packers; contents never influence results.
struct AsfPackScratch {
  std::vector<std::size_t> left, right, item, stack;  // synthesized tree
  std::vector<Macro> itemMacros;          ///< representative module macros
  std::vector<const Macro*> macroPtrs;    ///< per item (points into above)
  FlatContour contour;
  std::vector<Coord> x;
  std::vector<Point> anchorOf;
  Placement full;                         ///< mirrored island placement
  std::vector<ModuleId> owners;
  std::vector<Coord> profileCuts;
};

class AsfIsland {
 public:
  /// Empty island (buffer slot); only assignment gives it content.
  AsfIsland() = default;

  /// `items`: the group content.  Self widths must be even (half-width
  /// representation).  The initial representative tree is a left-leaning
  /// chain of pair items under the self spine.
  explicit AsfIsland(std::vector<AsfItem> items);

  /// Random symmetry-preserving perturbation: swap two pair representatives,
  /// restructure the pair tree, reorder the spine, or move the attach point.
  void perturb(Rng& rng);

  /// Packs the representatives and mirrors them into the full island.
  AsfPacked pack() const;

  /// Scratch-reuse variant: identical results; the island macro is written
  /// into `outMacro` (profiles only when computeProfiles — the HB*-tree
  /// root's profile is consumed by nobody and costs O(n^2)).
  void packInto(AsfPackScratch& scratch, bool computeProfiles, Macro& outMacro,
                Coord& outAxis2x) const;

  std::size_t itemCount() const { return items_.size(); }
  const std::vector<AsfItem>& items() const { return items_; }

  /// Replaces item contents while keeping the perturbed representative-tree
  /// structure (sizes and kinds must match; used by the HB*-tree packer to
  /// refresh macro-pair shapes after sub-circuits change).
  void setItems(std::vector<AsfItem> items);

  /// In-place refresh of one macro-pair item (same effect as rebuilding it
  /// via AsfItem::pairMacros and setItems, but reusing the item's storage).
  void refreshPairMacro(std::size_t itemIndex, const Macro& right,
                        std::span<const ModuleId> ownersB);

 private:
  std::vector<AsfItem> items_;
  std::vector<std::size_t> spine_;      // item indices of selfs, top-down order
  std::vector<std::size_t> pairItems_;  // item indices of pairs
  BStarTree pairTree_;                  // tree over pairItems_ positions
  std::size_t attachAt_ = 0;            // spine node the pair tree hangs from
};

}  // namespace als
