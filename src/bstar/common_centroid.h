// Common-centroid placement (Fig. 3(a); handled in HB*-trees via the
// grid-based integration the paper mentions for [19]).
//
// Matched devices split into unit cells are interdigitated on a grid so the
// centroid of every device's units coincides with the grid center, which
// first-order cancels linear process gradients.  Two generators:
//
//   * commonCentroidPattern(unitsA, unitsB): the classic two-device
//     interdigitation (ABBA / BAAB rows) used for differential pairs and
//     1:1..1:3 current mirrors;
//   * commonCentroidGrid(units): a near-square grid for a single matched
//     array (each unit is its own "device"; the array is gradient-balanced
//     as a whole by 180-degree rotational symmetry of unit positions).
//
// Both return placements on a uniform unit grid; tests verify exact
// centroid coincidence in doubled coordinates.
#pragma once

#include <vector>

#include "bstar/pack.h"
#include "geom/placement.h"
#include "netlist/module.h"

namespace als {

/// Cell assignment for a two-device common-centroid grid: entry (r, c) is
/// 0 for device A, 1 for device B.  rows * cols == unitsA + unitsB;
/// both devices' unit centroids coincide exactly.
struct CentroidPattern {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<int> cell;  // row-major

  int at(std::size_t r, std::size_t c) const { return cell[r * cols + c]; }
};

/// Builds an interdigitated pattern for unitsA + unitsB unit cells.
/// Requires unitsA == unitsB (the common matched-pair case); rows are
/// ABAB... with alternating phase (ABBA style) so both centroids land on
/// the grid center.
CentroidPattern commonCentroidPattern(std::size_t unitsA, std::size_t unitsB);

/// Places the units of two devices according to the pattern.  `unitW/unitH`
/// is the unit footprint; returns one rect per unit, A units first.
Placement placeCentroidPattern(const CentroidPattern& pattern, Coord unitW,
                               Coord unitH);

/// Near-square grid macro for `units` equal modules (single matched array).
Macro commonCentroidGrid(std::span<const ModuleId> units, Coord unitW, Coord unitH);

/// Exact check: the unit centroids of devices A and B coincide.
/// `unitsA`/`unitsB` are the placed unit rects of each device.
bool centroidsCoincide(std::span<const Rect> unitsA, std::span<const Rect> unitsB);

}  // namespace als
