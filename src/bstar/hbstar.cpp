#include "bstar/hbstar.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "anneal/annealer.h"
#include "bstar/common_centroid.h"
#include "cost/cost_model.h"

namespace als {

namespace {

/// All module ids under a node, via the circuit hierarchy.
std::vector<ModuleId> modulesUnder(const Circuit& c, HierNodeId id) {
  return c.hierarchy().leavesUnder(id);
}

}  // namespace

HBState::HBState(const Circuit& circuit) : circuit_(&circuit) {
  const HierTree& h = circuit.hierarchy();
  assert(!h.empty() && "HB*-tree placement needs a hierarchy tree");
  trees_.resize(h.nodeCount());
  islands_.resize(h.nodeCount());
  rotated_.assign(circuit.moduleCount(), false);

  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    const HierNode& node = h.node(id);
    if (node.isLeaf() || node.children.empty()) continue;
    switch (node.constraint) {
      case GroupConstraint::Symmetry: {
        // Items are assembled at pack time (sub-macros change shape); the
        // island object only fixes the representative tree structure.  Item
        // order: leaf pairs, leaf selfs, sub-circuit macro pairs.
        assert(node.symGroup.has_value() &&
               "symmetry hierarchy node needs its symmetry group");
        const SymmetryGroup& g = circuit.symmetryGroup(*node.symGroup);
        std::vector<AsfItem> items;
        for (const SymPair& pr : g.pairs) {
          const Module& m = circuit.module(pr.a);
          items.push_back(AsfItem::pairModules(pr.a, pr.b, m.w, m.h));
        }
        for (ModuleId s : g.selfs) {
          const Module& m = circuit.module(s);
          items.push_back(AsfItem::selfModule(s, m.w, m.h));
        }
        std::size_t subNodes = 0;
        for (HierNodeId c : node.children) {
          if (!h.node(c).isLeaf()) ++subNodes;
        }
        assert(subNodes % 2 == 0 &&
               "hierarchical symmetry pairs sub-circuits two by two");
        for (std::size_t p = 0; p < subNodes / 2; ++p) {
          items.push_back(AsfItem::pairMacros(Macro{}, {}));  // filled at pack
        }
        islands_[id].emplace(std::move(items));
        perturbable_.push_back(id);
        break;
      }
      case GroupConstraint::CommonCentroid:
        // Fixed gridded macro; nothing to perturb.
        break;
      case GroupConstraint::Proximity:
      case GroupConstraint::None: {
        trees_[id].emplace(node.children.size());
        perturbable_.push_back(id);
        break;
      }
    }
  }

  // Rotations: leaves under None/Proximity nodes whose module is rotatable.
  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    const HierNode& node = h.node(id);
    if (node.isLeaf() || node.children.empty()) continue;
    if (node.constraint != GroupConstraint::None &&
        node.constraint != GroupConstraint::Proximity) {
      continue;
    }
    for (HierNodeId c : node.children) {
      const HierNode& child = h.node(c);
      if (child.isLeaf() && circuit.module(*child.module).rotatable) {
        freeRotatable_.push_back(*child.module);
      }
    }
  }
}

void HBState::perturb(Rng& rng) {
  bool rotate = !freeRotatable_.empty() && rng.uniform() < 0.15;
  if (rotate) {
    ModuleId m = freeRotatable_[rng.index(freeRotatable_.size())];
    rotated_[m] = !rotated_[m];
    return;
  }
  if (perturbable_.empty()) return;
  std::size_t id = perturbable_[rng.index(perturbable_.size())];
  if (trees_[id]) {
    trees_[id]->perturb(rng);
  } else if (islands_[id]) {
    islands_[id]->perturb(rng);
  }
}

struct HBState::NodePack {
  Macro macro;
  // (symmetry-group index, axis2x in macro-local coordinates)
  std::vector<std::pair<std::size_t, Coord>> axes;
};

HBState::NodePack HBState::packNode(HierNodeId id) const {
  const Circuit& c = *circuit_;
  const HierTree& h = c.hierarchy();
  const HierNode& node = h.node(id);

  if (node.isLeaf()) {
    ModuleId m = *node.module;
    const Module& mod = c.module(m);
    Coord w = rotated_[m] ? mod.h : mod.w;
    Coord hh = rotated_[m] ? mod.w : mod.h;
    return {Macro::fromModule(m, w, hh), {}};
  }

  if (node.constraint == GroupConstraint::CommonCentroid) {
    // Children are unit leaves of one matched array.
    std::vector<ModuleId> units;
    Coord unitW = 0, unitH = 0;
    for (HierNodeId child : node.children) {
      assert(h.node(child).isLeaf());
      ModuleId m = *h.node(child).module;
      units.push_back(m);
      unitW = std::max(unitW, c.module(m).w);
      unitH = std::max(unitH, c.module(m).h);
    }
    return {commonCentroidGrid(units, unitW, unitH), {}};
  }

  if (node.constraint == GroupConstraint::Symmetry) {
    assert(islands_[id].has_value());
    // Refresh the macro-pair items from freshly packed sub-circuits, then
    // pack the island.  Axes of nested groups translate through the island
    // frame; mirrored partner groups inherit the mirrored axis.
    AsfIsland island = *islands_[id];
    std::vector<HierNodeId> subs;
    for (HierNodeId child : node.children) {
      if (!h.node(child).isLeaf()) subs.push_back(child);
    }
    std::vector<NodePack> subPacks;
    subPacks.reserve(subs.size());
    for (HierNodeId s : subs) subPacks.push_back(packNode(s));

    // Macro-pair items appear after the leaf pair/self items, in order.
    std::vector<AsfItem> items = island.items();
    std::size_t macroItem = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].kind == AsfItem::Kind::PairMacros) {
        std::size_t p = macroItem++;
        const NodePack& rightPack = subPacks[2 * p];
        const NodePack& leftPack = subPacks[2 * p + 1];
        // Mirrored partner: owner list of the left sub-circuit, matched by
        // position to the right one's rect order.  The sub-circuits must be
        // structurally identical (matched sub-trees), which the circuit
        // generators guarantee for symmetric hierarchies.
        assert(rightPack.macro.owners.size() == leftPack.macro.owners.size());
        items[i] = AsfItem::pairMacros(rightPack.macro, leftPack.macro.owners);
      }
    }
    island.setItems(std::move(items));  // keeps the perturbed structure
    AsfPacked packed = island.pack();

    NodePack out;
    out.macro = std::move(packed.macro);
    if (node.symGroup) out.axes.push_back({*node.symGroup, packed.axis2x});
    // Nested sub-group axes: locate each sub-macro's rects in the island to
    // recover its translation.  The right copy keeps orientation; the
    // mirrored copy's nested axes mirror about the island axis.
    // For simplicity and exactness we recover translation via the first
    // owner module's rect.
    for (std::size_t p = 0; p < subs.size() / 2; ++p) {
      const NodePack& rightPack = subPacks[2 * p];
      for (const auto& [group, localAxis] : rightPack.axes) {
        ModuleId probe = rightPack.macro.owners.front();
        // Find probe's rect in the island macro.
        for (std::size_t r = 0; r < out.macro.owners.size(); ++r) {
          if (out.macro.owners[r] == probe) {
            Coord dx = out.macro.rects[r].x - rightPack.macro.rects.front().x;
            out.axes.push_back({group, localAxis + 2 * dx});
            break;
          }
        }
      }
    }
    return out;
  }

  // Proximity / None: sub-B*-tree over the children.
  assert(trees_[id].has_value());
  const BStarTree& tree = *trees_[id];
  std::vector<NodePack> childPacks;
  childPacks.reserve(node.children.size());
  for (HierNodeId child : node.children) childPacks.push_back(packNode(child));

  std::vector<Macro> macros;
  macros.reserve(childPacks.size());
  for (const NodePack& cp : childPacks) macros.push_back(cp.macro);
  PackedMacros packed = packMacros(tree, macros, c.moduleCount());

  // Collect the placed rects of modules under this node into one macro.
  Placement sub;
  std::vector<ModuleId> owners;
  for (ModuleId m : modulesUnder(c, id)) {
    sub.push(packed.placement[m]);
    owners.push_back(m);
  }
  Rect bb = sub.boundingBox();
  NodePack out;
  out.macro = Macro::fromPlacement(sub, owners);
  // Child axes translate by the child's anchor, then by -bb offset from
  // normalization inside fromPlacement.
  for (std::size_t i = 0; i < childPacks.size(); ++i) {
    for (const auto& [group, localAxis] : childPacks[i].axes) {
      Coord dx = packed.anchor[i].x - bb.x;
      out.axes.push_back({group, localAxis + 2 * dx});
    }
  }
  return out;
}

HBState::Packed HBState::pack() const {
  const Circuit& c = *circuit_;
  NodePack top = packNode(c.hierarchy().root());
  Packed out;
  out.placement = Placement(c.moduleCount());
  for (std::size_t r = 0; r < top.macro.rects.size(); ++r) {
    out.placement[top.macro.owners[r]] = top.macro.rects[r];
  }
  out.axis2x.assign(c.symmetryGroups().size(), 0);
  for (const auto& [group, axis] : top.axes) out.axis2x[group] = axis;
  Rect bb = out.placement.boundingBox();
  out.width = bb.w;
  out.height = bb.h;
  return out;
}

HBPlacerResult placeHBStarSA(const Circuit& circuit, const HBPlacerOptions& options) {
  // Hierarchy constraints hold by construction in every packed state, so
  // the objective is the geometric core: area + normalized wirelength.
  CostModel model(circuit, makeObjective(circuit,
                                         {.wirelength = options.wirelengthWeight}));

  auto decode = [](const HBState& s) -> std::optional<Placement> {
    return std::move(s.pack().placement);
  };
  auto move = [](const HBState& s, Rng& rng) {
    HBState next = s;
    next.perturb(rng);
    return next;
  };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = circuit.moduleCount();
  auto annealed = annealWithRestarts(HBState(circuit), model, decode, move, annealOpt);

  HBPlacerResult result;
  HBState::Packed packed = annealed.best.pack();
  result.placement = std::move(packed.placement);
  result.axis2x = std::move(packed.axis2x);
  result.area = result.placement.boundingBox().area();
  result.hpwl = totalHpwl(result.placement, circuit.netPins());
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
