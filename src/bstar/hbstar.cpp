#include "bstar/hbstar.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

#include "anneal/annealer.h"
#include "bstar/common_centroid.h"
#include "cost/cost_model.h"

namespace als {

namespace {

/// Process-global encoding-version source.  Starting at 1 keeps 0 free as
/// the "never packed" sentinel of HBPackScratch::NodeBuf.
std::atomic<std::uint64_t> gHBStamp{1};

std::uint64_t nextStamp() {
  return gHBStamp.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void HBPackScratch::bind(const Circuit& circuit) {
  const HierTree& h = circuit.hierarchy();
  // The cached common-centroid macros are pure functions of (CC node ids,
  // their unit module ids, unit footprints).  Staleness detection compares
  // that exact input — never the circuit's address, which a later circuit
  // can legitimately reuse.  The comparison is a flat integer scan, so a
  // warm steady-state bind stays allocation-free.
  sigScratch_.clear();
  sigScratch_.push_back(static_cast<Coord>(h.nodeCount()));
  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    const HierNode& n = h.node(id);
    if (n.isLeaf() || n.children.empty() ||
        n.constraint != GroupConstraint::CommonCentroid) {
      continue;
    }
    sigScratch_.push_back(static_cast<Coord>(id));
    sigScratch_.push_back(static_cast<Coord>(n.children.size()));
    for (HierNodeId child : n.children) {
      assert(h.node(child).isLeaf());
      ModuleId m = *h.node(child).module;
      sigScratch_.push_back(static_cast<Coord>(m));
      sigScratch_.push_back(circuit.module(m).w);
      sigScratch_.push_back(circuit.module(m).h);
    }
  }
  if (node.size() == h.nodeCount() && sigScratch_ == signature_) return;
  signature_ = sigScratch_;
  node.clear();  // drop stale per-node state from a previous circuit
  node.resize(h.nodeCount());
  // Common-centroid node macros are cached once per binding so the
  // per-move pack skips both the grid construction and its profiles
  // (their unit leaves never rotate or perturb).
  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    const HierNode& n = h.node(id);
    if (n.isLeaf() || n.children.empty() ||
        n.constraint != GroupConstraint::CommonCentroid) {
      continue;
    }
    std::vector<ModuleId> units;
    Coord unitW = 0, unitH = 0;
    for (HierNodeId child : n.children) {
      ModuleId m = *h.node(child).module;
      units.push_back(m);
      unitW = std::max(unitW, circuit.module(m).w);
      unitH = std::max(unitH, circuit.module(m).h);
    }
    node[id].macro = commonCentroidGrid(units, unitW, unitH);
  }
}

HBState::HBState(const Circuit& circuit) : circuit_(&circuit) {
  const HierTree& h = circuit.hierarchy();
  assert(!h.empty() && "HB*-tree placement needs a hierarchy tree");
  trees_.resize(h.nodeCount());
  islands_.resize(h.nodeCount());
  rotated_.assign(circuit.moduleCount(), false);
  shapeIdx_.assign(circuit.moduleCount(), 0);
  // Fresh stamps per node: a new state never aliases a scratch's cache.
  stamp_.resize(h.nodeCount());
  for (std::uint64_t& s : stamp_) s = nextStamp();
  leafNodeOf_.assign(circuit.moduleCount(), static_cast<HierNodeId>(-1));
  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    const HierNode& nd = h.node(id);
    if (nd.isLeaf() && nd.module) leafNodeOf_[*nd.module] = id;
  }

  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    const HierNode& node = h.node(id);
    if (node.isLeaf() || node.children.empty()) continue;
    switch (node.constraint) {
      case GroupConstraint::Symmetry: {
        // Items are assembled at pack time (sub-macros change shape); the
        // island object only fixes the representative tree structure.  Item
        // order: leaf pairs, leaf selfs, sub-circuit macro pairs.
        assert(node.symGroup.has_value() &&
               "symmetry hierarchy node needs its symmetry group");
        const SymmetryGroup& g = circuit.symmetryGroup(*node.symGroup);
        std::vector<AsfItem> items;
        for (const SymPair& pr : g.pairs) {
          const Module& m = circuit.module(pr.a);
          items.push_back(AsfItem::pairModules(pr.a, pr.b, m.w, m.h));
        }
        for (ModuleId s : g.selfs) {
          const Module& m = circuit.module(s);
          items.push_back(AsfItem::selfModule(s, m.w, m.h));
        }
        std::size_t subNodes = 0;
        for (HierNodeId c : node.children) {
          if (!h.node(c).isLeaf()) ++subNodes;
        }
        assert(subNodes % 2 == 0 &&
               "hierarchical symmetry pairs sub-circuits two by two");
        for (std::size_t p = 0; p < subNodes / 2; ++p) {
          items.push_back(AsfItem::pairMacros(Macro{}, {}));  // filled at pack
        }
        islands_[id].emplace(std::move(items));
        perturbable_.push_back(id);
        break;
      }
      case GroupConstraint::CommonCentroid:
        // Fixed gridded macro; nothing to perturb.
        break;
      case GroupConstraint::Proximity:
      case GroupConstraint::None: {
        trees_[id].emplace(node.children.size());
        perturbable_.push_back(id);
        break;
      }
    }
  }

  // Rotations: leaves under None/Proximity nodes whose module is rotatable.
  for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
    const HierNode& node = h.node(id);
    if (node.isLeaf() || node.children.empty()) continue;
    if (node.constraint != GroupConstraint::None &&
        node.constraint != GroupConstraint::Proximity) {
      continue;
    }
    for (HierNodeId c : node.children) {
      const HierNode& child = h.node(c);
      if (child.isLeaf() && circuit.module(*child.module).rotatable) {
        freeRotatable_.push_back(*child.module);
      }
      if (child.isLeaf() && circuit.module(*child.module).shapes.size() > 1) {
        freeShapy_.push_back(*child.module);
      }
    }
  }
}

void HBState::enableShapeMoves(double prob) {
  shapeMoveProb_ = freeShapy_.empty() ? 0.0 : prob;
}

void HBState::perturb(Rng& rng) {
  if (shapeMoveProb_ > 0.0 && rng.uniform() < shapeMoveProb_) {
    ModuleId m = freeShapy_[rng.index(freeShapy_.size())];
    shapeIdx_[m] = static_cast<std::uint8_t>(
        rng.index(circuit_->module(m).shapes.size()));
    stamp_[leafNodeOf_[m]] = nextStamp();
    return;
  }
  bool rotate = !freeRotatable_.empty() && rng.uniform() < 0.15;
  if (rotate) {
    ModuleId m = freeRotatable_[rng.index(freeRotatable_.size())];
    rotated_[m] = !rotated_[m];
    stamp_[leafNodeOf_[m]] = nextStamp();
    return;
  }
  if (perturbable_.empty()) return;
  std::size_t id = perturbable_[rng.index(perturbable_.size())];
  if (trees_[id]) {
    trees_[id]->perturb(rng);
  } else if (islands_[id]) {
    islands_[id]->perturb(rng);
  }
  stamp_[id] = nextStamp();
}

bool HBState::packNodeInto(HierNodeId id, bool needProfiles,
                           HBPackScratch& s) const {
  const Circuit& c = *circuit_;
  const HierTree& h = c.hierarchy();
  const HierNode& node = h.node(id);
  HBPackScratch::NodeBuf& buf = s.node[id];

  if (node.isLeaf()) {
    if (buf.stamp == stamp_[id]) return false;  // cached footprint is current
    buf.axes.clear();
    ModuleId m = *node.module;
    const Module& mod = c.module(m);
    Coord bw = mod.w, bh = mod.h;
    if (std::uint8_t si = shapeIdx_[m]; si != 0) {
      bw = mod.shapes[si].w;
      bh = mod.shapes[si].h;
    }
    Coord w = rotated_[m] ? bh : bw;
    Coord hh = rotated_[m] ? bw : bh;
    buf.macro.assignFromModule(m, w, hh);
    buf.stamp = stamp_[id];
    return true;
  }

  if (node.constraint == GroupConstraint::CommonCentroid) {
    // Fixed gridded macro, cached by HBPackScratch::bind; never stale.
    return false;
  }

  if (node.constraint == GroupConstraint::Symmetry) {
    assert(islands_[id].has_value());
    // Pack the sub-circuits, refresh the macro-pair items from them in the
    // per-node work copy (the state island stays untouched), then pack the
    // island.  Axes of nested groups translate through the island frame;
    // mirrored partner groups inherit the mirrored axis.
    buf.subs.clear();
    for (HierNodeId child : node.children) {
      if (!h.node(child).isLeaf()) buf.subs.push_back(child);
    }
    bool childChanged = false;
    for (HierNodeId sub : buf.subs) {
      if (packNodeInto(sub, /*needProfiles=*/true, s)) childChanged = true;
    }
    if (!childChanged && buf.stamp == stamp_[id]) return false;
    buf.axes.clear();

    buf.islandWork = *islands_[id];  // copy-assign: reuses the work buffers
    // Macro-pair items appear after the leaf pair/self items, in order.
    const std::vector<AsfItem>& items = buf.islandWork.items();
    std::size_t macroItem = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].kind == AsfItem::Kind::PairMacros) {
        std::size_t p = macroItem++;
        const Macro& rightMacro = s.node[buf.subs[2 * p]].macro;
        const Macro& leftMacro = s.node[buf.subs[2 * p + 1]].macro;
        // Mirrored partner: owner list of the left sub-circuit, matched by
        // position to the right one's rect order.  The sub-circuits must be
        // structurally identical (matched sub-trees), which the circuit
        // generators guarantee for symmetric hierarchies.
        assert(rightMacro.owners.size() == leftMacro.owners.size());
        buf.islandWork.refreshPairMacro(i, rightMacro, leftMacro.owners);
      }
    }
    Coord axis2x = 0;
    buf.islandWork.packInto(s.asf, needProfiles, buf.macro, axis2x);

    if (node.symGroup) buf.axes.push_back({*node.symGroup, axis2x});
    // Nested sub-group axes: locate each sub-macro's rects in the island to
    // recover its translation.  The right copy keeps orientation; the
    // mirrored copy's nested axes mirror about the island axis.
    // For simplicity and exactness we recover translation via the first
    // owner module's rect.
    for (std::size_t p = 0; p < buf.subs.size() / 2; ++p) {
      const HBPackScratch::NodeBuf& rightBuf = s.node[buf.subs[2 * p]];
      for (const auto& [group, localAxis] : rightBuf.axes) {
        ModuleId probe = rightBuf.macro.owners.front();
        // Find probe's rect in the island macro.
        for (std::size_t r = 0; r < buf.macro.owners.size(); ++r) {
          if (buf.macro.owners[r] == probe) {
            Coord dx = buf.macro.rects[r].x - rightBuf.macro.rects.front().x;
            buf.axes.push_back({group, localAxis + 2 * dx});
            break;
          }
        }
      }
    }
    buf.stamp = stamp_[id];
    return true;
  }

  // Proximity / None: sub-B*-tree over the children.
  assert(trees_[id].has_value());
  const BStarTree& tree = *trees_[id];
  bool childChanged = false;
  for (HierNodeId child : node.children) {
    if (packNodeInto(child, /*needProfiles=*/true, s)) childChanged = true;
  }
  if (!childChanged && buf.stamp == stamp_[id]) return false;
  buf.axes.clear();
  s.childMacros.clear();
  for (HierNodeId child : node.children) {
    s.childMacros.push_back(&s.node[child].macro);
  }
  packMacrosInto(tree, s.childMacros, c.moduleCount(), s.tree, s.packed);

  // Collect the placed rects of modules under this node into one macro.
  h.leavesUnderInto(id, s.dfsStack, s.leaves);
  s.sub.clear();
  s.owners.clear();
  for (ModuleId m : s.leaves) {
    s.sub.push(s.packed.placement[m]);
    s.owners.push_back(m);
  }
  Rect bb = s.sub.boundingBox();
  buf.macro.assignFromPlacement(s.sub, s.owners, needProfiles, s.profileCuts);
  // Child axes translate by the child's anchor, then by -bb offset from
  // the normalization inside assignFromPlacement.
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    for (const auto& [group, localAxis] : s.node[node.children[i]].axes) {
      Coord dx = s.packed.anchor[i].x - bb.x;
      buf.axes.push_back({group, localAxis + 2 * dx});
    }
  }
  buf.stamp = stamp_[id];
  return true;
}

HBState::Packed HBState::pack() const {
  HBPackScratch scratch;
  Packed out;
  packInto(scratch, out);
  return out;
}

void HBState::packInto(HBPackScratch& scratch, Packed& out) const {
  const Circuit& c = *circuit_;
  scratch.bind(c);
  const HierNodeId root = c.hierarchy().root();
  packNodeInto(root, /*needProfiles=*/false, scratch);
  const HBPackScratch::NodeBuf& top = scratch.node[root];
  out.placement.assign(c.moduleCount());
  for (std::size_t r = 0; r < top.macro.rects.size(); ++r) {
    out.placement[top.macro.owners[r]] = top.macro.rects[r];
  }
  out.axis2x.assign(c.symmetryGroups().size(), 0);
  for (const auto& [group, axis] : top.axes) out.axis2x[group] = axis;
  Rect bb = out.placement.boundingBox();
  out.width = bb.w;
  out.height = bb.h;

#ifndef NDEBUG
  // Debug oracle: the stamp-cached pack must equal a cold full pack (the
  // guard stops the oracle from re-triggering itself).
  static thread_local bool inOracle = false;
  if (!inOracle) {
    inOracle = true;
    HBPackScratch oracleScratch;
    Packed oracle;
    packInto(oracleScratch, oracle);
    inOracle = false;
    assert(oracle.placement.size() == out.placement.size());
    for (std::size_t m = 0; m < c.moduleCount(); ++m) {
      assert(out.placement[m] == oracle.placement[m] &&
             "node-local HB repack diverged from full pack");
    }
    assert(out.axis2x == oracle.axis2x && out.width == oracle.width &&
           out.height == oracle.height);
  }
#endif
}

namespace {

/// Decode into the session scratch; the returned pointer aliases
/// scr.packed.placement (same body as the historical lambda).
struct HBDecoder {
  HBStarScratch* scr;
  const Placement* operator()(const HBState& s) const {
    s.packInto(scr->pack, scr->packed);
    return &scr->packed.placement;
  }
};

struct HBMove {
  void operator()(HBState& s, Rng& rng) const { s.perturb(rng); }
};

}  // namespace

struct HBStarSession::Impl {
  using Eval = detail::IncrementalEval<CostModel, HBDecoder>;
  using Driver = detail::AnnealDriver<HBState, Eval, HBMove>;

  const Circuit& circuit;
  HBPlacerOptions options;
  CostModel model;
  HBStarScratch localScratch;
  HBStarScratch& scr;
  HBDecoder decode;
  std::optional<Driver> driver;

  Impl(const Circuit& c, const HBPlacerOptions& o, double tempScale)
      : circuit(c),
        options(o),
        // Hierarchy constraints hold by construction in every packed state,
        // so the objective is the geometric core: area + normalized
        // wirelength plus, when weighted, thermal pair mismatch.
        model(c, makeObjective(c, {.wirelength = o.wirelengthWeight,
                                   .thermal = o.thermalWeight})),
        scr(o.scratch ? *o.scratch : localScratch),
        decode{&scr} {
    AnnealOptions annealOpt;
    annealOpt.maxSweeps = options.maxSweeps;
    annealOpt.timeLimitSec = options.timeLimitSec;
    annealOpt.seed = options.seed;
    annealOpt.coolingFactor = options.coolingFactor;
    annealOpt.movesPerTemp = options.movesPerTemp;
    annealOpt.sizeHint = circuit.moduleCount();
    annealOpt.cancel = options.cancel;
    HBState init(circuit);
    init.enableShapeMoves(options.shapeMoveProb);
    driver.emplace(init, Eval{model, decode}, HBMove{}, annealOpt, tempScale);
  }
};

HBStarSession::HBStarSession(const Circuit& circuit,
                             const HBPlacerOptions& options, double tempScale)
    : impl_(std::make_unique<Impl>(circuit, options, tempScale)) {}

HBStarSession::~HBStarSession() = default;

std::size_t HBStarSession::runSweeps(std::size_t maxSweeps) {
  return impl_->driver->runSweeps(maxSweeps);
}

void HBStarSession::run() { impl_->driver->run(); }

bool HBStarSession::finished() const { return impl_->driver->finished(); }

double HBStarSession::currentCost() const {
  return impl_->driver->currentCost();
}

double HBStarSession::bestCost() const { return impl_->driver->bestCost(); }

double HBStarSession::temperature() const {
  return impl_->driver->temperature();
}

void HBStarSession::exchangeWith(HBStarSession& other) {
  Impl::Driver::exchange(*impl_->driver, *other.impl_->driver);
}

const Placement& HBStarSession::bestPlacement() {
  const Placement* p = impl_->decode(impl_->driver->bestState());
  return *p;
}

bool HBStarSession::reseedFromPlacement(const Placement&) { return false; }

HBPlacerResult HBStarSession::finish() {
  AnnealResult<HBState> annealed = impl_->driver->finalize();
  HBStarScratch& scr = impl_->scr;

  HBPlacerResult result;
  annealed.best.packInto(scr.pack, scr.packed);
  result.placement = scr.packed.placement;
  result.axis2x = scr.packed.axis2x;
  result.area = result.placement.boundingBox().area();
  result.hpwl = totalHpwl(result.placement, impl_->circuit.netPins());
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

HBPlacerResult placeHBStarSA(const Circuit& circuit,
                             const HBPlacerOptions& options) {
  HBStarSession session(circuit, options);
  return session.finish();
}

}  // namespace als
