#include "bstar/bstar_tree.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace als {

BStarTree::BStarTree(std::size_t n)
    : parent_(n, npos), left_(n, npos), right_(n, npos), item_(n) {
  std::iota(item_.begin(), item_.end(), std::size_t{0});
  if (n == 0) return;
  root_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n) {
      left_[i] = l;
      parent_[l] = i;
    }
    if (r < n) {
      right_[i] = r;
      parent_[r] = i;
    }
  }
}

BStarTree BStarTree::random(std::size_t n, Rng& rng) {
  BStarTree t;
  t.parent_.assign(n, npos);
  t.left_.assign(n, npos);
  t.right_.assign(n, npos);
  t.item_.resize(n);
  std::iota(t.item_.begin(), t.item_.end(), std::size_t{0});
  std::shuffle(t.item_.begin(), t.item_.end(), rng.engine());
  if (n == 0) return t;
  t.root_ = 0;
  // Insert nodes 1..n-1 into random empty child slots of already-inserted
  // nodes; tracking open slots keeps the shape distribution broad.
  std::vector<std::pair<std::size_t, bool>> slots{{0, true}, {0, false}};
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t pick = rng.index(slots.size());
    auto [p, isLeft] = slots[pick];
    slots[pick] = slots.back();
    slots.pop_back();
    if (isLeft) {
      t.left_[p] = i;
    } else {
      t.right_[p] = i;
    }
    t.parent_[i] = p;
    slots.push_back({i, true});
    slots.push_back({i, false});
  }
  return t;
}

BStarTree BStarTree::fromArrays(std::size_t root, std::vector<std::size_t> left,
                                std::vector<std::size_t> right,
                                std::vector<std::size_t> items) {
  BStarTree t;
  std::size_t n = items.size();
  t.left_ = std::move(left);
  t.right_ = std::move(right);
  t.item_ = std::move(items);
  t.root_ = root;
  t.parent_.assign(n, npos);
  for (std::size_t i = 0; i < n; ++i) {
    if (t.left_[i] != npos) t.parent_[t.left_[i]] = i;
    if (t.right_[i] != npos) t.parent_[t.right_[i]] = i;
  }
  assert(t.isValid());
  return t;
}

void BStarTree::assignArrays(std::size_t root,
                             std::span<const std::size_t> left,
                             std::span<const std::size_t> right,
                             std::span<const std::size_t> items) {
  assert(left.size() == items.size() && right.size() == items.size());
  const std::size_t n = items.size();
  left_.assign(left.begin(), left.end());
  right_.assign(right.begin(), right.end());
  item_.assign(items.begin(), items.end());
  root_ = n == 0 ? npos : root;
  parent_.assign(n, npos);
  for (std::size_t i = 0; i < n; ++i) {
    if (left_[i] != npos) parent_[left_[i]] = i;
    if (right_[i] != npos) parent_[right_[i]] = i;
  }
  assert(n == 0 || isValid());
}

void BStarTree::swapItems(std::size_t a, std::size_t b) {
  std::swap(item_[a], item_[b]);
}

void BStarTree::detachLeaf(std::size_t node) {
  assert(left_[node] == npos && right_[node] == npos);
  std::size_t p = parent_[node];
  if (p == npos) {
    root_ = npos;
  } else if (left_[p] == node) {
    left_[p] = npos;
  } else {
    right_[p] = npos;
  }
  parent_[node] = npos;
}

void BStarTree::moveNode(std::size_t node, std::size_t newParent, bool asLeftChild) {
  assert(node != newParent);
  // Only leaves move; callers pick leaves (perturb() guarantees this).
  detachLeaf(node);
  std::size_t& slot = asLeftChild ? left_[newParent] : right_[newParent];
  std::size_t displaced = slot;
  slot = node;
  parent_[node] = newParent;
  if (displaced != npos) {
    (asLeftChild ? left_[node] : right_[node]) = displaced;
    parent_[displaced] = node;
  }
}

void BStarTree::perturb(Rng& rng) {
  std::size_t n = size();
  if (n < 2) return;
  if (rng.coin()) {
    std::size_t a = rng.index(n), b = rng.index(n);
    if (a != b) swapItems(a, b);
    return;
  }
  // Move a random leaf under a random other node.  The leaf is chosen
  // without materializing the leaf list (perturb runs once per SA move and
  // must not allocate): count leaves, draw an index, then find that leaf by
  // a second scan — the same draw on the same count as the historical
  // vector-based selection, so RNG streams are unchanged.
  std::size_t leafCount = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (left_[i] == npos && right_[i] == npos) ++leafCount;
  }
  std::size_t pick = rng.index(leafCount);
  std::size_t node = npos;
  for (std::size_t i = 0; i < n; ++i) {
    if (left_[i] == npos && right_[i] == npos && pick-- == 0) {
      node = i;
      break;
    }
  }
  std::size_t target = rng.index(n);
  if (target == node) target = (target + 1) % n;
  moveNode(node, target, rng.coin());
}

std::vector<std::size_t> BStarTree::preorder() const {
  std::vector<std::size_t> order;
  order.reserve(size());
  if (root_ == npos) return order;
  std::vector<std::size_t> stack{root_};
  while (!stack.empty()) {
    std::size_t n = stack.back();
    stack.pop_back();
    order.push_back(n);
    if (right_[n] != npos) stack.push_back(right_[n]);
    if (left_[n] != npos) stack.push_back(left_[n]);
  }
  return order;
}

bool BStarTree::isValid() const {
  if (size() == 0) return root_ == npos;
  if (root_ == npos || parent_[root_] != npos) return false;
  std::vector<bool> seen(size(), false);
  std::vector<std::size_t> order = preorder();
  if (order.size() != size()) return false;
  for (std::size_t n : order) {
    if (seen[n]) return false;
    seen[n] = true;
    if (left_[n] != npos && parent_[left_[n]] != n) return false;
    if (right_[n] != npos && parent_[right_[n]] != n) return false;
  }
  std::vector<bool> itemSeen(size(), false);
  for (std::size_t it : item_) {
    if (it >= size() || itemSeen[it]) return false;
    itemSeen[it] = true;
  }
  return true;
}

}  // namespace als
