// Placement -> B*-tree conversion (the cross-backend seeding seam of
// runtime/tempering.h).
//
// Left-edge / adjacency reconstruction.  Modules are sorted by (x, y, id)
// and become tree nodes in that order; each subsequent module attaches to
// an earlier one:
//
//   1. as the LEFT child of an exactly abutting left neighbour (a module j
//      with x_j + w_j == x_m and overlapping y span — the B*-tree left edge
//      means exactly "nearest right neighbour", see bstar/bstar_tree.h);
//      among candidates the largest overlap wins, then the smallest node;
//   2. else as the RIGHT child of the module directly below in the same
//      column (x_j == x_m, y_j + h_j <= y_m, largest top edge wins) — the
//      B*-tree right edge means "first module stacked above";
//   3. else into the first free slot (left slots first) of the earliest
//      node — a deterministic fallback for placements with gaps, which a
//      B*-tree (always compacted) cannot represent verbatim anyway.
//
// Every attachment targets an earlier node in the (x, y, id) order, so along
// any root-to-leaf path the source coordinates are lexicographically
// increasing — the relative-order invariant tests/convert_test.cpp pins
// (a decoded B*-tree placement is compacted, so exact coordinates round-trip
// only for packed sources; the topology does for all).
#pragma once

#include "bstar/bstar_tree.h"
#include "geom/placement.h"

namespace als {

/// Reusable buffers of the conversion (allocation-free when warm; see
/// seqpair/from_placement.h for the tempering-loop contract).
struct BStarFromPlacementScratch {
  std::vector<std::size_t> order;  ///< node -> module id, (x, y, id)-sorted
  std::vector<std::size_t> left, right;
};

/// Overwrites `tree` with the reconstruction of `placement` (storage
/// reused; sizes may differ between calls).
void bstarFromPlacement(const Placement& placement,
                        BStarFromPlacementScratch& scratch, BStarTree& tree);

/// Convenience allocating overload.
BStarTree bstarFromPlacement(const Placement& placement);

}  // namespace als
