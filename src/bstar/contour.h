// Packing contour (skyline) for B*-tree evaluation.
//
// The contour is the piecewise-constant upper outline of everything placed
// so far.  Plain module packing queries the maximum height over the module's
// x-span; HB*-tree hierarchy nodes additionally place *rigid macros* whose
// bottom profile may be non-flat — the "contour node" mechanism of [17] —
// so the query takes the macro's bottom profile into account and the update
// writes its top profile back.
#pragma once

#include <map>
#include <span>

#include "geom/profile.h"
#include "geom/rect.h"

namespace als {

class Contour {
 public:
  Contour() { height_[0] = 0; }

  /// Max contour height over [x1, x2).
  Coord maxOver(Coord x1, Coord x2) const;

  /// Minimal y offset for a rigid macro anchored at x whose bottom profile
  /// (macro-local coordinates) is `bottom`: max over the covered range of
  /// contour(x + u) - bottom(u).
  Coord fitMacro(Coord x, std::span<const ProfileStep> bottom) const;

  /// Overwrites [x1, x2) with height h.
  void raise(Coord x1, Coord x2, Coord h);

  /// Writes a macro's top profile (anchored at x, shifted up by yOffset).
  void placeMacro(Coord x, Coord yOffset, std::span<const ProfileStep> top);

  /// Contour height at a single x (for tests).
  Coord heightAt(Coord x) const;

 private:
  // Key x -> contour height on [x, next key); the map always contains key 0
  // and heights are >= 0.
  std::map<Coord, Coord> height_;

  /// Ensures a breakpoint exists at x (splitting the covering segment).
  void splitAt(Coord x);
};

}  // namespace als
