// Packing contour (skyline) for B*-tree evaluation.
//
// The contour is the piecewise-constant upper outline of everything placed
// so far.  Plain module packing queries the maximum height over the module's
// x-span; HB*-tree hierarchy nodes additionally place *rigid macros* whose
// bottom profile may be non-flat — the "contour node" mechanism of [17] —
// so the query takes the macro's bottom profile into account and the update
// writes its top profile back.
//
// Two implementations share the contract:
//
//   * `Contour`     — the std::map reference.  Every splitAt/raise allocates
//                     tree nodes, which made the decode step the per-move
//                     hot spot once cost evaluation went incremental.  Kept
//                     as the oracle for tests and the map-kernel baseline of
//                     bench_decode.
//   * `FlatContour` — the production skyline: segments in one reusable
//                     vector linked by indices, a free list recycling
//                     removed segments, and a cursor hint exploiting the
//                     left-to-right bias of the B*-tree preorder DFS.
//                     `reset()` is O(1) (the segment vector keeps its
//                     capacity), so one instance serves an entire anneal
//                     with zero steady-state heap allocations.
//
// tests/contour_test.cpp property-checks FlatContour against Contour over
// random macro/raise sequences; both are exact integer skylines, so their
// results are identical bit for bit.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "geom/profile.h"
#include "geom/rect.h"

namespace als {

class Contour {
 public:
  Contour() { height_[0] = 0; }

  /// Max contour height over [x1, x2).
  Coord maxOver(Coord x1, Coord x2) const;

  /// Minimal y offset for a rigid macro anchored at x whose bottom profile
  /// (macro-local coordinates) is `bottom`: max over the covered range of
  /// contour(x + u) - bottom(u).
  Coord fitMacro(Coord x, std::span<const ProfileStep> bottom) const;

  /// Overwrites [x1, x2) with height h.
  void raise(Coord x1, Coord x2, Coord h);

  /// Writes a macro's top profile (anchored at x, shifted up by yOffset).
  void placeMacro(Coord x, Coord yOffset, std::span<const ProfileStep> top);

  /// Contour height at a single x (for tests).
  Coord heightAt(Coord x) const;

 private:
  // Key x -> contour height on [x, next key); the map always contains key 0
  // and heights are >= 0.
  std::map<Coord, Coord> height_;

  /// Ensures a breakpoint exists at x (splitting the covering segment).
  void splitAt(Coord x);
};

/// One restore unit of a journaled raise: the skyline held height `h` from
/// `x` up to the next piece's x (or the raise's upper bound x2).  A raise
/// over [x1, x2) journals the pieces it overwrites; replaying them restores
/// the skyline exactly (see FlatContour::undoRaise).
struct ContourPiece {
  Coord x = 0;
  Coord h = 0;
};

/// Flat-array skyline with the same contract as `Contour` (all coordinates
/// must be >= 0, which every B*-tree packing guarantees).  Not thread-safe:
/// one instance belongs to one packing loop at a time (the query hint is
/// mutable state).
class FlatContour {
 public:
  FlatContour() { reset(); }

  /// Drops the whole skyline back to height 0 in O(1); the segment storage
  /// keeps its capacity, so a warm instance never allocates again.
  void reset();

  Coord maxOver(Coord x1, Coord x2) const;
  Coord fitMacro(Coord x, std::span<const ProfileStep> bottom) const;
  void raise(Coord x1, Coord x2, Coord h);
  void placeMacro(Coord x, Coord yOffset, std::span<const ProfileStep> top);
  Coord heightAt(Coord x) const;

  /// raise() that appends the skyline it overwrites on [x1, x2) to
  /// `journal` as left-to-right (start, height) pieces — the exact input
  /// undoRaise() needs to restore the pre-raise skyline.
  void raiseLogged(Coord x1, Coord x2, Coord h,
                   std::vector<ContourPiece>& journal);

  /// Inverse of a journaled raise whose range ended at `x2`: replays the
  /// recorded pieces through raise(), which restores both the skyline
  /// function and its canonical (maximally merged) segment structure.
  /// Raises journaled after this one must be undone first — strict LIFO.
  void undoRaise(std::span<const ContourPiece> pieces, Coord x2);

  /// Live segments (for tests; the base segment counts as one).
  std::size_t segmentCount() const;
  /// Recycled segments currently parked on the free list (for tests).
  std::size_t freeCount() const;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Height `h` holds on [x, next->x); the last segment extends to +inf.
  struct Segment {
    Coord x = 0;
    Coord h = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  std::uint32_t allocSeg(Coord x, Coord h);
  /// Inserts a segment starting at x with height h right after `s`.
  std::uint32_t insertAfter(std::uint32_t s, Coord x, Coord h);
  /// Unlinks `s` and parks it on the free list (never the head segment).
  void unlinkRelease(std::uint32_t s);
  /// Segment whose [x, next->x) interval contains `x`; updates the hint.
  std::uint32_t findSeg(Coord x) const;

  std::vector<Segment> segs_;
  std::uint32_t head_ = kNil;
  std::uint32_t free_ = kNil;
  mutable std::uint32_t hint_ = kNil;
};

}  // namespace als
