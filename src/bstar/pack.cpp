#include "bstar/pack.h"

#include <algorithm>
#include <cassert>

#include "geom/profile.h"

namespace als {

Macro Macro::fromModule(ModuleId id, Coord w, Coord h) {
  Macro m;
  m.assignFromModule(id, w, h);
  return m;
}

void Macro::assignFromModule(ModuleId id, Coord w, Coord h) {
  rects.assign(1, Rect{0, 0, w, h});
  owners.assign(1, id);
  this->w = w;
  this->h = h;
  bottom.assign(1, ProfileStep{0, w, 0});
  top.assign(1, ProfileStep{0, w, h});
}

Macro Macro::fromPlacement(const Placement& p, std::span<const ModuleId> owners,
                           bool computeProfiles) {
  Macro m;
  std::vector<Coord> cuts;
  m.assignFromPlacement(p, owners, computeProfiles, cuts);
  return m;
}

void Macro::assignFromPlacement(const Placement& p,
                                std::span<const ModuleId> ownerIds,
                                bool computeProfiles,
                                std::vector<Coord>& profileCuts) {
  assert(p.size() == ownerIds.size());
  rects.assign(p.rects().begin(), p.rects().end());
  owners.assign(ownerIds.begin(), ownerIds.end());
  // Normalize in place (same arithmetic as Placement::normalize on a copy).
  Rect bb = p.boundingBox();
  for (Rect& r : rects) {
    r.x -= bb.x;
    r.y -= bb.y;
  }
  w = bb.w;
  h = bb.h;
  if (computeProfiles) {
    bottomProfileInto(rects, bottom, profileCuts);
    topProfileInto(rects, top, profileCuts);
  } else {
    bottom.clear();
    top.clear();
  }
}

Macro Macro::mirroredX() const {
  Placement p;
  for (const Rect& r : rects) p.push(r.mirroredX(0));
  p.normalize();
  return fromPlacement(p, owners);
}

namespace {

/// The one packing loop behind both macro entry points; `macroAt(i)` maps a
/// tree item to its macro.
template <class MacroAt>
void packMacrosImpl(const BStarTree& tree, MacroAt macroAt,
                    std::size_t moduleCount, BStarPackScratch& scratch,
                    PackedMacros& out) {
  out.placement.assign(moduleCount);
  out.anchor.assign(tree.size(), Point{0, 0});
  out.width = 0;
  out.height = 0;
  if (tree.size() == 0) return;

  scratch.contour.reset();
  scratch.x.assign(tree.size(), 0);
  scratch.stack.clear();
  // Preorder DFS: left child sits right of its parent, right child keeps
  // the parent's x; y always comes from the contour.
  scratch.stack.push_back(tree.root());
  while (!scratch.stack.empty()) {
    std::size_t node = scratch.stack.back();
    scratch.stack.pop_back();
    const Macro& m = macroAt(tree.item(node));
    Coord xNode = scratch.x[node];
    Coord yNode = scratch.contour.fitMacro(xNode, m.bottom);
    scratch.contour.placeMacro(xNode, yNode, m.top);
    out.anchor[tree.item(node)] = {xNode, yNode};
    for (std::size_t r = 0; r < m.rects.size(); ++r) {
      out.placement[m.owners[r]] = m.rects[r].translated(xNode, yNode);
    }
    out.width = std::max(out.width, xNode + m.w);
    out.height = std::max(out.height, yNode + m.h);
    if (tree.right(node) != BStarTree::npos) {
      scratch.x[tree.right(node)] = xNode;
      scratch.stack.push_back(tree.right(node));
    }
    if (tree.left(node) != BStarTree::npos) {
      scratch.x[tree.left(node)] = xNode + m.w;
      scratch.stack.push_back(tree.left(node));
    }
  }
}

}  // namespace

PackedMacros packMacros(const BStarTree& tree, std::span<const Macro> macros,
                        std::size_t moduleCount) {
  assert(tree.size() == macros.size());
  BStarPackScratch scratch;
  PackedMacros out;
  packMacrosImpl(
      tree, [&](std::size_t item) -> const Macro& { return macros[item]; },
      moduleCount, scratch, out);
  return out;
}

void packMacrosInto(const BStarTree& tree, std::span<const Macro* const> macros,
                    std::size_t moduleCount, BStarPackScratch& scratch,
                    PackedMacros& out) {
  assert(tree.size() == macros.size());
  packMacrosImpl(
      tree, [&](std::size_t item) -> const Macro& { return *macros[item]; },
      moduleCount, scratch, out);
}

Placement packBStar(const BStarTree& tree, std::span<const Coord> widths,
                    std::span<const Coord> heights) {
  BStarPackScratch scratch;
  Placement out;
  packBStarInto(tree, widths, heights, scratch, out);
  return out;
}

void packBStarInto(const BStarTree& tree, std::span<const Coord> widths,
                   std::span<const Coord> heights, BStarPackScratch& scratch,
                   Placement& out) {
  assert(widths.size() == tree.size() && heights.size() == tree.size());
  out.assign(tree.size());
  if (tree.size() == 0) return;

  scratch.contour.reset();
  scratch.x.assign(tree.size(), 0);
  scratch.stack.clear();
  scratch.stack.push_back(tree.root());
  while (!scratch.stack.empty()) {
    std::size_t node = scratch.stack.back();
    scratch.stack.pop_back();
    std::size_t item = tree.item(node);
    Coord w = widths[item];
    Coord h = heights[item];
    Coord xNode = scratch.x[node];
    // A plain module is a flat macro: fitMacro degenerates to one maxOver
    // and placeMacro to one raise.
    Coord yNode = scratch.contour.maxOver(xNode, xNode + w);
    scratch.contour.raise(xNode, xNode + w, yNode + h);
    out[item] = {xNode, yNode, w, h};
    if (tree.right(node) != BStarTree::npos) {
      scratch.x[tree.right(node)] = xNode;
      scratch.stack.push_back(tree.right(node));
    }
    if (tree.left(node) != BStarTree::npos) {
      scratch.x[tree.left(node)] = xNode + w;
      scratch.stack.push_back(tree.left(node));
    }
  }
}

}  // namespace als
