#include "bstar/pack.h"

#include <algorithm>
#include <cassert>

namespace als {

Macro Macro::fromModule(ModuleId id, Coord w, Coord h) {
  Macro m;
  m.rects = {{0, 0, w, h}};
  m.owners = {id};
  m.w = w;
  m.h = h;
  m.bottom = {{0, w, 0}};
  m.top = {{0, w, h}};
  return m;
}

Macro Macro::fromPlacement(const Placement& p, std::span<const ModuleId> owners,
                           bool computeProfiles) {
  assert(p.size() == owners.size());
  Macro m;
  Placement norm = p;
  norm.normalize();
  m.rects = norm.rects();
  m.owners.assign(owners.begin(), owners.end());
  Rect bb = norm.boundingBox();
  m.w = bb.w;
  m.h = bb.h;
  if (computeProfiles) {
    m.bottom = bottomProfile(m.rects);
    m.top = topProfile(m.rects);
  }
  return m;
}

Macro Macro::mirroredX() const {
  Placement p;
  for (const Rect& r : rects) p.push(r.mirroredX(0));
  p.normalize();
  return fromPlacement(p, owners);
}

PackedMacros packMacros(const BStarTree& tree, std::span<const Macro> macros,
                        std::size_t moduleCount) {
  assert(tree.size() == macros.size());
  PackedMacros out;
  out.placement = Placement(moduleCount);
  out.anchor.assign(tree.size(), {0, 0});
  if (tree.size() == 0) return out;

  Contour contour;
  std::vector<Coord> x(tree.size(), 0);
  // Preorder DFS: left child sits right of its parent, right child keeps
  // the parent's x; y always comes from the contour.
  std::vector<std::size_t> stack{tree.root()};
  x[tree.root()] = 0;
  while (!stack.empty()) {
    std::size_t node = stack.back();
    stack.pop_back();
    const Macro& m = macros[tree.item(node)];
    Coord xNode = x[node];
    Coord yNode = contour.fitMacro(xNode, m.bottom);
    contour.placeMacro(xNode, yNode, m.top);
    out.anchor[tree.item(node)] = {xNode, yNode};
    for (std::size_t r = 0; r < m.rects.size(); ++r) {
      out.placement[m.owners[r]] = m.rects[r].translated(xNode, yNode);
    }
    out.width = std::max(out.width, xNode + m.w);
    out.height = std::max(out.height, yNode + m.h);
    if (tree.right(node) != BStarTree::npos) {
      x[tree.right(node)] = xNode;
      stack.push_back(tree.right(node));
    }
    if (tree.left(node) != BStarTree::npos) {
      x[tree.left(node)] = xNode + m.w;
      stack.push_back(tree.left(node));
    }
  }
  return out;
}

Placement packBStar(const BStarTree& tree, std::span<const Coord> widths,
                    std::span<const Coord> heights) {
  std::vector<Macro> macros;
  macros.reserve(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    macros.push_back(Macro::fromModule(i, widths[i], heights[i]));
  }
  return packMacros(tree, macros, tree.size()).placement;
}

}  // namespace als
