#include "bstar/pack.h"

#include <algorithm>
#include <cassert>

#include "geom/profile.h"

namespace als {

Macro Macro::fromModule(ModuleId id, Coord w, Coord h) {
  Macro m;
  m.assignFromModule(id, w, h);
  return m;
}

void Macro::assignFromModule(ModuleId id, Coord w, Coord h) {
  rects.assign(1, Rect{0, 0, w, h});
  owners.assign(1, id);
  this->w = w;
  this->h = h;
  bottom.assign(1, ProfileStep{0, w, 0});
  top.assign(1, ProfileStep{0, w, h});
}

Macro Macro::fromPlacement(const Placement& p, std::span<const ModuleId> owners,
                           bool computeProfiles) {
  Macro m;
  std::vector<Coord> cuts;
  m.assignFromPlacement(p, owners, computeProfiles, cuts);
  return m;
}

void Macro::assignFromPlacement(const Placement& p,
                                std::span<const ModuleId> ownerIds,
                                bool computeProfiles,
                                std::vector<Coord>& profileCuts) {
  assert(p.size() == ownerIds.size());
  rects.assign(p.rects().begin(), p.rects().end());
  owners.assign(ownerIds.begin(), ownerIds.end());
  // Normalize in place (same arithmetic as Placement::normalize on a copy).
  Rect bb = p.boundingBox();
  for (Rect& r : rects) {
    r.x -= bb.x;
    r.y -= bb.y;
  }
  w = bb.w;
  h = bb.h;
  if (computeProfiles) {
    bottomProfileInto(rects, bottom, profileCuts);
    topProfileInto(rects, top, profileCuts);
  } else {
    bottom.clear();
    top.clear();
  }
}

Macro Macro::mirroredX() const {
  Placement p;
  for (const Rect& r : rects) p.push(r.mirroredX(0));
  p.normalize();
  return fromPlacement(p, owners);
}

namespace {

/// The one packing loop behind both macro entry points; `macroAt(i)` maps a
/// tree item to its macro.
template <class MacroAt>
void packMacrosImpl(const BStarTree& tree, MacroAt macroAt,
                    std::size_t moduleCount, BStarPackScratch& scratch,
                    PackedMacros& out) {
  out.placement.assign(moduleCount);
  out.anchor.assign(tree.size(), Point{0, 0});
  out.width = 0;
  out.height = 0;
  if (tree.size() == 0) return;

  scratch.contour.reset();
  scratch.x.assign(tree.size(), 0);
  scratch.stack.clear();
  // Preorder DFS: left child sits right of its parent, right child keeps
  // the parent's x; y always comes from the contour.
  scratch.stack.push_back(tree.root());
  while (!scratch.stack.empty()) {
    std::size_t node = scratch.stack.back();
    scratch.stack.pop_back();
    const Macro& m = macroAt(tree.item(node));
    Coord xNode = scratch.x[node];
    Coord yNode = scratch.contour.fitMacro(xNode, m.bottom);
    scratch.contour.placeMacro(xNode, yNode, m.top);
    out.anchor[tree.item(node)] = {xNode, yNode};
    for (std::size_t r = 0; r < m.rects.size(); ++r) {
      out.placement[m.owners[r]] = m.rects[r].translated(xNode, yNode);
    }
    out.width = std::max(out.width, xNode + m.w);
    out.height = std::max(out.height, yNode + m.h);
    if (tree.right(node) != BStarTree::npos) {
      scratch.x[tree.right(node)] = xNode;
      scratch.stack.push_back(tree.right(node));
    }
    if (tree.left(node) != BStarTree::npos) {
      scratch.x[tree.left(node)] = xNode + m.w;
      scratch.stack.push_back(tree.left(node));
    }
  }
}

}  // namespace

PackedMacros packMacros(const BStarTree& tree, std::span<const Macro> macros,
                        std::size_t moduleCount) {
  assert(tree.size() == macros.size());
  BStarPackScratch scratch;
  PackedMacros out;
  packMacrosImpl(
      tree, [&](std::size_t item) -> const Macro& { return macros[item]; },
      moduleCount, scratch, out);
  return out;
}

void packMacrosInto(const BStarTree& tree, std::span<const Macro* const> macros,
                    std::size_t moduleCount, BStarPackScratch& scratch,
                    PackedMacros& out) {
  assert(tree.size() == macros.size());
  packMacrosImpl(
      tree, [&](std::size_t item) -> const Macro& { return *macros[item]; },
      moduleCount, scratch, out);
}

Placement packBStar(const BStarTree& tree, std::span<const Coord> widths,
                    std::span<const Coord> heights) {
  BStarPackScratch scratch;
  Placement out;
  packBStarInto(tree, widths, heights, scratch, out);
  return out;
}

void packBStarInto(const BStarTree& tree, std::span<const Coord> widths,
                   std::span<const Coord> heights, BStarPackScratch& scratch,
                   Placement& out) {
  assert(widths.size() == tree.size() && heights.size() == tree.size());
  // A full pack rebuilds the contour from scratch, so any partial-repack
  // record describing the previous contour no longer matches it.
  scratch.repack.valid = false;
  out.assign(tree.size());
  if (tree.size() == 0) return;

  scratch.contour.reset();
  scratch.x.assign(tree.size(), 0);
  scratch.stack.clear();
  scratch.stack.push_back(tree.root());
  while (!scratch.stack.empty()) {
    std::size_t node = scratch.stack.back();
    scratch.stack.pop_back();
    std::size_t item = tree.item(node);
    Coord w = widths[item];
    Coord h = heights[item];
    Coord xNode = scratch.x[node];
    // A plain module is a flat macro: fitMacro degenerates to one maxOver
    // and placeMacro to one raise.
    Coord yNode = scratch.contour.maxOver(xNode, xNode + w);
    scratch.contour.raise(xNode, xNode + w, yNode + h);
    out[item] = {xNode, yNode, w, h};
    if (tree.right(node) != BStarTree::npos) {
      scratch.x[tree.right(node)] = xNode;
      scratch.stack.push_back(tree.right(node));
    }
    if (tree.left(node) != BStarTree::npos) {
      scratch.x[tree.left(node)] = xNode + w;
      scratch.stack.push_back(tree.left(node));
    }
  }
}

std::size_t packBStarPartialInto(const BStarTree& tree,
                                 std::span<const Coord> widths,
                                 std::span<const Coord> heights,
                                 BStarPackScratch& scratch, Placement& out) {
  assert(widths.size() == tree.size() && heights.size() == tree.size());
  const std::size_t n = tree.size();
  BStarRepackState& rec = scratch.repack;
  if (n == 0) {
    out.assign(0);
    scratch.contour.reset();
    rec.item.clear();
    rec.x.clear();
    rec.w.clear();
    rec.h.clear();
    rec.pieces.clear();
    rec.pieceOfs.assign(1, 0);
    rec.valid = true;
    return 0;
  }

  // Phase 1 — contour-free preorder walk: anchor x, width and height of
  // every position follow from the tree shape alone (y never feeds back
  // into x), so the candidate pack inputs cost O(n) pointer chasing.
  rec.nItem.resize(n);
  rec.nX.resize(n);
  rec.nW.resize(n);
  rec.nH.resize(n);
  scratch.x.assign(n, 0);
  scratch.stack.clear();
  scratch.stack.push_back(tree.root());
  std::size_t pos = 0;
  while (!scratch.stack.empty()) {
    std::size_t node = scratch.stack.back();
    scratch.stack.pop_back();
    std::size_t item = tree.item(node);
    Coord w = widths[item];
    Coord xNode = scratch.x[node];
    rec.nItem[pos] = item;
    rec.nX[pos] = xNode;
    rec.nW[pos] = w;
    rec.nH[pos] = heights[item];
    ++pos;
    if (tree.right(node) != BStarTree::npos) {
      scratch.x[tree.right(node)] = xNode;
      scratch.stack.push_back(tree.right(node));
    }
    if (tree.left(node) != BStarTree::npos) {
      scratch.x[tree.left(node)] = xNode + w;
      scratch.stack.push_back(tree.left(node));
    }
  }
  assert(pos == n);

  // Phase 2 — first preorder position whose pack inputs differ from the
  // record.  Positions before it read and raise an identical contour
  // prefix, so their placements are untouched by construction.
  const bool warm = rec.valid && rec.item.size() == n && out.size() == n;
  std::size_t k = 0;
  if (warm) {
    while (k < n && rec.item[k] == rec.nItem[k] && rec.x[k] == rec.nX[k] &&
           rec.w[k] == rec.nW[k] && rec.h[k] == rec.nH[k]) {
      ++k;
    }
    // Phase 3 — unwind: undo the journaled raises of positions n-1 .. k
    // (strict LIFO), restoring the contour to the state position k saw.
    for (std::size_t p = n; p-- > k;) {
      scratch.contour.undoRaise(
          std::span<const ContourPiece>(rec.pieces.data() + rec.pieceOfs[p],
                                        rec.pieceOfs[p + 1] - rec.pieceOfs[p]),
          rec.x[p] + rec.w[p]);
    }
    rec.pieces.resize(rec.pieceOfs[k]);
    rec.pieceOfs.resize(k + 1);
  } else {
    out.assign(n);
    scratch.contour.reset();
    rec.pieces.clear();
    rec.pieceOfs.assign(1, 0);
  }

  // Phase 4 — re-pack the suffix, journaling each raise for the next call.
  for (std::size_t p = k; p < n; ++p) {
    Coord x = rec.nX[p];
    Coord w = rec.nW[p];
    Coord h = rec.nH[p];
    Coord y = scratch.contour.maxOver(x, x + w);
    scratch.contour.raiseLogged(x, x + w, y + h, rec.pieces);
    rec.pieceOfs.push_back(rec.pieces.size());
    out[rec.nItem[p]] = {x, y, w, h};
  }
  rec.item.swap(rec.nItem);
  rec.x.swap(rec.nX);
  rec.w.swap(rec.nW);
  rec.h.swap(rec.nH);
  rec.valid = true;

#ifndef NDEBUG
  {
    // Debug oracle: the partial result must be bit-identical to a fresh
    // full pack of the same tree.
    static thread_local BStarPackScratch oracleScratch;
    static thread_local Placement oracle;
    packBStarInto(tree, widths, heights, oracleScratch, oracle);
    assert(oracle.size() == out.size());
    for (std::size_t m = 0; m < n; ++m) assert(oracle[m] == out[m]);
  }
#endif
  return k;
}

}  // namespace als
