// B*-tree packing: modules and rigid macros onto the contour.
//
// `Macro` is the rigid multi-rectangle unit an HB*-tree hierarchy node
// exposes to its parent: the packed sub-placement plus its rectilinear
// bottom/top profiles.  A plain module is a trivial one-rectangle macro, so
// a single packer serves both the flat B*-tree placer and the hierarchical
// HB*-tree placer.
#pragma once

#include <span>
#include <vector>

#include "bstar/bstar_tree.h"
#include "bstar/contour.h"
#include "geom/placement.h"
#include "netlist/module.h"

namespace als {

/// Rigid packed unit: rectangles in local coordinates (bounding box anchored
/// at the origin), owner module of each rectangle, and cached profiles.
struct Macro {
  std::vector<Rect> rects;
  std::vector<ModuleId> owners;  // parallel to rects
  Coord w = 0;
  Coord h = 0;
  std::vector<ProfileStep> bottom, top;

  /// Single-module macro.
  static Macro fromModule(ModuleId id, Coord w, Coord h);

  /// Macro wrapping an arbitrary placement (bbox normalized to the origin).
  /// Profile computation costs O(n^2) and only contour-based packers need
  /// it; pass computeProfiles = false when the macro is merely a rect
  /// container (e.g. shape-function entries).
  static Macro fromPlacement(const Placement& p, std::span<const ModuleId> owners,
                             bool computeProfiles = true);

  /// In-place 180-degree-free mirror about the vertical axis through the
  /// bbox center (used when a macro is one half of a symmetric pair).
  Macro mirroredX() const;
};

/// Result of packing a B*-tree of macros.
struct PackedMacros {
  /// Placement of every owner module (indexed by module id over
  /// `moduleCount`); modules not owned by any macro keep zero rects.
  Placement placement;
  /// Anchor (lower-left of bbox) per tree item.
  std::vector<Point> anchor;
  Coord width = 0;
  Coord height = 0;
};

/// Packs `tree` whose item i is macros[i]; standard B*-tree semantics with
/// contour-node handling for non-flat macros.
PackedMacros packMacros(const BStarTree& tree, std::span<const Macro> macros,
                        std::size_t moduleCount);

/// Convenience: packs a B*-tree of plain modules (item i = module i with
/// the given footprints).
Placement packBStar(const BStarTree& tree, std::span<const Coord> widths,
                    std::span<const Coord> heights);

}  // namespace als
