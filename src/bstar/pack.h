// B*-tree packing: modules and rigid macros onto the contour.
//
// `Macro` is the rigid multi-rectangle unit an HB*-tree hierarchy node
// exposes to its parent: the packed sub-placement plus its rectilinear
// bottom/top profiles.  A plain module is a trivial one-rectangle macro, so
// a single packer serves both the flat B*-tree placer and the hierarchical
// HB*-tree placer.
//
// == Decode hot path ==
//
// The `*Into` entry points are the per-move decode kernels: they write into
// caller-owned buffers (`BStarPackScratch` + a persistent output), pack on a
// `FlatContour`, and perform zero heap allocations once the buffers are
// warm.  The by-value functions (`packMacros`, `packBStar`) are convenience
// wrappers for cold callers (tests, enumeration, one-shot packing) and
// produce bit-identical placements.
#pragma once

#include <span>
#include <vector>

#include "bstar/bstar_tree.h"
#include "bstar/contour.h"
#include "geom/placement.h"
#include "netlist/module.h"

namespace als {

/// Rigid packed unit: rectangles in local coordinates (bounding box anchored
/// at the origin), owner module of each rectangle, and cached profiles.
struct Macro {
  std::vector<Rect> rects;
  std::vector<ModuleId> owners;  // parallel to rects
  Coord w = 0;
  Coord h = 0;
  std::vector<ProfileStep> bottom, top;

  /// Single-module macro.
  static Macro fromModule(ModuleId id, Coord w, Coord h);

  /// Macro wrapping an arbitrary placement (bbox normalized to the origin).
  /// Profile computation costs O(n^2) and only contour-based packers need
  /// it; pass computeProfiles = false when the macro is merely a rect
  /// container (e.g. shape-function entries, or the HB*-tree root whose
  /// profile no parent ever consumes).
  static Macro fromPlacement(const Placement& p, std::span<const ModuleId> owners,
                             bool computeProfiles = true);

  /// In-place 180-degree-free mirror about the vertical axis through the
  /// bbox center (used when a macro is one half of a symmetric pair).
  Macro mirroredX() const;

  // -- scratch-reuse variants of the constructors above: overwrite this
  //    macro, reusing its vector storage (allocation-free when warm). --

  /// Overwrites with a single-module macro (trivial flat profiles).
  void assignFromModule(ModuleId id, Coord w, Coord h);

  /// Overwrites from a placement, normalizing the bbox to the origin.
  /// `profileCuts` is the elementary-interval scratch of the profile build;
  /// with computeProfiles = false the profiles are left EMPTY (never stale).
  void assignFromPlacement(const Placement& p, std::span<const ModuleId> owners,
                           bool computeProfiles,
                           std::vector<Coord>& profileCuts);
};

/// Result of packing a B*-tree of macros.
struct PackedMacros {
  /// Placement of every owner module (indexed by module id over
  /// `moduleCount`); modules not owned by any macro keep zero rects.
  Placement placement;
  /// Anchor (lower-left of bbox) per tree item.
  std::vector<Point> anchor;
  Coord width = 0;
  Coord height = 0;
};

/// Committed record of the last packBStarPartialInto call: the pack inputs
/// per preorder position plus the raise journal that rebuilds (or unwinds)
/// the contour position by position.  A B*-tree perturbation only changes
/// the placement from the first preorder position whose (item, x, w, h)
/// inputs differ — everything before it packs onto an identical contour
/// prefix — so the next call undoes the journaled raises back to that
/// position and re-packs the suffix alone.
struct BStarRepackState {
  bool valid = false;               ///< false = no record; next call packs fully
  std::vector<std::size_t> item;    ///< tree item at preorder position p
  std::vector<Coord> x, w, h;       ///< committed pack inputs per position
  std::vector<std::size_t> pieceOfs;  ///< journal offset per position (size+1)
  std::vector<ContourPiece> pieces;   ///< concatenated per-position raise journals
  // Candidate buffers of the contour-free preorder walk (swapped into the
  // committed arrays once the suffix is re-packed).
  std::vector<std::size_t> nItem;
  std::vector<Coord> nX, nW, nH;
};

/// Reusable buffers of one B*-tree packing loop.  One scratch serves any
/// number of sequential packs (tree sizes may vary call to call); it must
/// not be shared by concurrent packers.
struct BStarPackScratch {
  FlatContour contour;
  std::vector<Coord> x;             ///< per-node anchor x during the DFS
  std::vector<std::size_t> stack;   ///< preorder DFS stack
  BStarRepackState repack;          ///< partial-repack record (see above)
};

/// Packs `tree` whose item i is macros[i]; standard B*-tree semantics with
/// contour-node handling for non-flat macros.
PackedMacros packMacros(const BStarTree& tree, std::span<const Macro> macros,
                        std::size_t moduleCount);

/// Scratch-reuse variant over indirect macros (the HB*-tree packer's child
/// macros live in per-node buffers, not one contiguous array).  `out` is
/// fully overwritten.
void packMacrosInto(const BStarTree& tree, std::span<const Macro* const> macros,
                    std::size_t moduleCount, BStarPackScratch& scratch,
                    PackedMacros& out);

/// Convenience: packs a B*-tree of plain modules (item i = module i with
/// the given footprints).
Placement packBStar(const BStarTree& tree, std::span<const Coord> widths,
                    std::span<const Coord> heights);

/// The flat-placer decode kernel: packs plain rectangles directly on the
/// flat contour — no Macro objects, no profile indirection — writing the
/// placement into `out` (fully overwritten, indexed by tree item).
/// Invalidates any partial-repack record held by `scratch` (the two entry
/// points share the contour, so a full pack orphans the record).
void packBStarInto(const BStarTree& tree, std::span<const Coord> widths,
                   std::span<const Coord> heights, BStarPackScratch& scratch,
                   Placement& out);

/// Partial-repack decode: bit-identical to packBStarInto, but when
/// `scratch.repack` holds the record of a previous call it re-packs only
/// the preorder suffix whose pack inputs changed, unwinding the contour to
/// the first changed position via the raise journal instead of reset() +
/// full pack.  `out` must be the same buffer across calls (prefix rects are
/// kept, not rewritten).  Returns the first re-packed preorder position —
/// tree.size() when the move was a no-op, 0 on a cold/full pack; every
/// `scratch.repack.item[p]` with p >= the return value may have moved.
std::size_t packBStarPartialInto(const BStarTree& tree,
                                 std::span<const Coord> widths,
                                 std::span<const Coord> heights,
                                 BStarPackScratch& scratch, Placement& out);

}  // namespace als
