#include "bstar/from_placement.h"

#include <algorithm>
#include <numeric>

namespace als {

namespace {

constexpr std::size_t kNone = BStarTree::npos;

/// Length of the overlap of [alo, ahi) and [blo, bhi); <= 0 means disjoint.
Coord overlapLen(Coord alo, Coord ahi, Coord blo, Coord bhi) {
  return std::min(ahi, bhi) - std::max(alo, blo);
}

}  // namespace

void bstarFromPlacement(const Placement& placement,
                        BStarFromPlacementScratch& scratch, BStarTree& tree) {
  const std::size_t n = placement.size();
  scratch.order.resize(n);
  std::iota(scratch.order.begin(), scratch.order.end(), std::size_t{0});
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&](std::size_t a, std::size_t b) {
              const Rect& ra = placement[a];
              const Rect& rb = placement[b];
              if (ra.x != rb.x) return ra.x < rb.x;
              if (ra.y != rb.y) return ra.y < rb.y;
              return a < b;
            });
  scratch.left.assign(n, kNone);
  scratch.right.assign(n, kNone);

  for (std::size_t k = 1; k < n; ++k) {
    const Rect& rm = placement[scratch.order[k]];

    // 1. Left child of the best exactly-abutting left neighbour.
    std::size_t leftParent = kNone;
    Coord bestOverlap = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (scratch.left[j] != kNone) continue;
      const Rect& rj = placement[scratch.order[j]];
      if (rj.xhi() != rm.x) continue;
      Coord ov = overlapLen(rj.y, rj.yhi(), rm.y, rm.yhi());
      if (ov > bestOverlap) {
        bestOverlap = ov;
        leftParent = j;
      }
    }
    if (leftParent != kNone) {
      scratch.left[leftParent] = k;
      continue;
    }

    // 2. Right child of the module directly below in the same column.
    std::size_t rightParent = kNone;
    Coord bestTop = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (scratch.right[j] != kNone) continue;
      const Rect& rj = placement[scratch.order[j]];
      if (rj.x != rm.x || rj.yhi() > rm.y) continue;
      if (rightParent == kNone || rj.yhi() > bestTop) {
        bestTop = rj.yhi();
        rightParent = j;
      }
    }
    if (rightParent != kNone) {
      scratch.right[rightParent] = k;
      continue;
    }

    // 3. Fallback: earliest free slot, left slots first.  Always succeeds —
    // k attached nodes consume k-1 of the 2k slots before this one.
    std::size_t fallback = kNone;
    for (std::size_t j = 0; j < k && fallback == kNone; ++j) {
      if (scratch.left[j] == kNone) fallback = j;
    }
    if (fallback != kNone) {
      scratch.left[fallback] = k;
      continue;
    }
    for (std::size_t j = 0; j < k && fallback == kNone; ++j) {
      if (scratch.right[j] == kNone) fallback = j;
    }
    scratch.right[fallback] = k;
  }

  tree.assignArrays(0, scratch.left, scratch.right, scratch.order);
}

BStarTree bstarFromPlacement(const Placement& placement) {
  BStarFromPlacementScratch scratch;
  BStarTree tree;
  bstarFromPlacement(placement, scratch, tree);
  return tree;
}

}  // namespace als
