#include "bstar/common_centroid.h"

#include <cassert>
#include <cmath>

namespace als {

CentroidPattern commonCentroidPattern(std::size_t unitsA, std::size_t unitsB) {
  // Exact coincidence on a rectangular grid requires each device's unit set
  // to be closed under 180-degree rotation, which is impossible for odd
  // per-device counts (practice pads with dummy units); we therefore require
  // matched even counts (the k = 2, 4, ... splits analog designers use).
  assert(unitsA == unitsB && unitsA > 0 && unitsA % 2 == 0 &&
         "two-device interdigitation expects matched even unit counts");
  const std::size_t total = unitsA + unitsB;  // divisible by 4
  // Near-square grid with even cols AND even rows (checkerboard balances
  // only when both parities pair up); cols = 2 always works as fallback.
  std::size_t cols = 2;
  while (cols * cols < total) cols += 2;
  while (cols > 2 && (total % cols != 0 || (total / cols) % 2 != 0)) cols -= 2;
  std::size_t rows = total / cols;

  CentroidPattern p;
  p.rows = rows;
  p.cols = cols;
  p.cell.resize(total);
  // ABAB / BABA alternating rows: every 2x2 block holds two A and two B
  // diagonally, so both centroids sit exactly at the grid center.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      p.cell[r * cols + c] = static_cast<int>((r + c) % 2);
    }
  }
  return p;
}

Placement placeCentroidPattern(const CentroidPattern& pattern, Coord unitW,
                               Coord unitH) {
  std::vector<Rect> aRects, bRects;
  for (std::size_t r = 0; r < pattern.rows; ++r) {
    for (std::size_t c = 0; c < pattern.cols; ++c) {
      Rect rect{static_cast<Coord>(c) * unitW, static_cast<Coord>(r) * unitH,
                unitW, unitH};
      (pattern.at(r, c) == 0 ? aRects : bRects).push_back(rect);
    }
  }
  Placement p;
  for (const Rect& r : aRects) p.push(r);
  for (const Rect& r : bRects) p.push(r);
  return p;
}

Macro commonCentroidGrid(std::span<const ModuleId> units, Coord unitW, Coord unitH) {
  const std::size_t n = units.size();
  assert(n > 0);
  std::size_t cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  Placement p;
  for (std::size_t i = 0; i < n; ++i) {
    Coord x = static_cast<Coord>(i % cols) * unitW;
    Coord y = static_cast<Coord>(i / cols) * unitH;
    p.push({x, y, unitW, unitH});
  }
  return Macro::fromPlacement(p, units);
}

bool centroidsCoincide(std::span<const Rect> unitsA, std::span<const Rect> unitsB) {
  if (unitsA.empty() || unitsB.empty()) return false;
  // Compare sum(center2x) / count exactly via cross-multiplication.
  Coord ax = 0, ay = 0, bx = 0, by = 0;
  for (const Rect& r : unitsA) {
    ax += r.center2x().x;
    ay += r.center2x().y;
  }
  for (const Rect& r : unitsB) {
    bx += r.center2x().x;
    by += r.center2x().y;
  }
  auto na = static_cast<Coord>(unitsA.size());
  auto nb = static_cast<Coord>(unitsB.size());
  return ax * nb == bx * na && ay * nb == by * na;
}

}  // namespace als
