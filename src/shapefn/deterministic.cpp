#include "shapefn/deterministic.h"

#include <cassert>

#include "bstar/asf.h"
#include "bstar/common_centroid.h"
#include "shapefn/enumerate.h"
#include "util/stopwatch.h"

namespace als {

namespace {

struct Context {
  const Circuit* circuit;
  DeterministicOptions options;
  std::uint64_t visited = 0;
};

EnumModule asEnumModule(const Circuit& c, ModuleId m) {
  const Module& mod = c.module(m);
  return {m, mod.w, mod.h, mod.rotatable};
}

ShapeFunction buildNode(Context& ctx, HierNodeId id);

/// Symmetry node that is not a basic set (hierarchical symmetry, Fig. 4):
/// leaf pairs/selfs plus sub-circuits paired as mirrored macros.  Composed
/// with an ASF island over the children's best-area shapes (single entry).
ShapeFunction buildHierarchicalSymmetry(Context& ctx, HierNodeId id) {
  const Circuit& c = *ctx.circuit;
  const HierTree& h = c.hierarchy();
  const HierNode& node = h.node(id);
  assert(node.symGroup.has_value());
  const SymmetryGroup& g = c.symmetryGroup(*node.symGroup);

  std::vector<AsfItem> items;
  for (const SymPair& pr : g.pairs) {
    const Module& m = c.module(pr.a);
    items.push_back(AsfItem::pairModules(pr.a, pr.b, m.w, m.h));
  }
  for (ModuleId s : g.selfs) {
    const Module& m = c.module(s);
    items.push_back(AsfItem::selfModule(s, m.w, m.h));
  }
  std::vector<HierNodeId> subs;
  for (HierNodeId child : node.children) {
    if (!h.node(child).isLeaf()) subs.push_back(child);
  }
  assert(subs.size() % 2 == 0 &&
         "hierarchical symmetry pairs sub-circuits two by two");
  for (std::size_t p = 0; p + 1 < subs.size(); p += 2) {
    ShapeFunction right = buildNode(ctx, subs[p]);
    ShapeFunction left = buildNode(ctx, subs[p + 1]);
    assert(!right.empty() && !left.empty());
    const Macro& rightMacro = right.bestArea().macro;
    const Macro& leftMacro = left.bestArea().macro;
    assert(rightMacro.owners.size() == leftMacro.owners.size());
    // Shape-function macros carry no profiles (see mergeMacros); the ASF
    // island packs macros on a contour, so recompute them here.
    Macro withProfiles =
        Macro::fromPlacement(Placement(rightMacro.rects), rightMacro.owners);
    items.push_back(AsfItem::pairMacros(std::move(withProfiles), leftMacro.owners));
  }
  AsfIsland island(std::move(items));
  AsfPacked packed = island.pack();
  ShapeFunction sf;
  ShapeEntry entry;
  entry.w = packed.macro.w;
  entry.h = packed.macro.h;
  entry.macro = std::move(packed.macro);
  sf.insert(std::move(entry));
  return sf;
}

ShapeFunction buildNode(Context& ctx, HierNodeId id) {
  const Circuit& c = *ctx.circuit;
  const HierTree& h = c.hierarchy();
  const HierNode& node = h.node(id);

  if (node.isLeaf()) {
    ModuleId m = *node.module;
    const Module& mod = c.module(m);
    ShapeFunction sf;
    ShapeEntry e;
    e.macro = Macro::fromModule(m, mod.w, mod.h);
    e.w = mod.w;
    e.h = mod.h;
    sf.insert(std::move(e));
    if (mod.rotatable && mod.w != mod.h) {
      ShapeEntry r;
      r.macro = Macro::fromModule(m, mod.h, mod.w);
      r.w = mod.h;
      r.h = mod.w;
      sf.insert(std::move(r));
    }
    return sf;
  }

  if (node.constraint == GroupConstraint::CommonCentroid && h.isBasicSet(id)) {
    std::vector<ModuleId> units;
    Coord unitW = 0, unitH = 0;
    for (HierNodeId child : node.children) {
      ModuleId m = *h.node(child).module;
      units.push_back(m);
      unitW = std::max(unitW, c.module(m).w);
      unitH = std::max(unitH, c.module(m).h);
    }
    Macro grid = commonCentroidGrid(units, unitW, unitH);
    ShapeFunction sf;
    ShapeEntry e;
    e.w = grid.w;
    e.h = grid.h;
    e.macro = std::move(grid);
    sf.insert(std::move(e));
    return sf;
  }

  if (h.isBasicSet(id)) {
    std::vector<EnumModule> modules;
    for (HierNodeId child : node.children) {
      modules.push_back(asEnumModule(c, *h.node(child).module));
    }
    const SymmetryGroup* group = nullptr;
    if (node.constraint == GroupConstraint::Symmetry && node.symGroup) {
      group = &c.symmetryGroup(*node.symGroup);
    }
    ShapeFunction sf =
        enumerateBasicSet(modules, group, ctx.options.shapeCap,
                          ctx.options.maxOrientModules, &ctx.visited);
    assert(!sf.empty() && "basic set enumeration found no feasible placement");
    return sf;
  }

  if (node.constraint == GroupConstraint::Symmetry) {
    return buildHierarchicalSymmetry(ctx, id);
  }

  // Internal node: fold the children's shape functions together.
  ShapeFunction acc;
  for (HierNodeId child : node.children) {
    ShapeFunction childSf = buildNode(ctx, child);
    if (acc.empty()) {
      acc = std::move(childSf);
    } else {
      acc = combine(acc, childSf, ctx.options.kind, ctx.options.shapeCap);
    }
  }
  return acc;
}

}  // namespace

DeterministicResult placeDeterministic(const Circuit& circuit,
                                       const DeterministicOptions& options) {
  assert(!circuit.hierarchy().empty() &&
         "deterministic placement needs a hierarchy tree");
  Stopwatch clock;
  Context ctx{&circuit, options, 0};
  ShapeFunction root = buildNode(ctx, circuit.hierarchy().root());
  assert(!root.empty());

  DeterministicResult result;
  const ShapeEntry& best = root.bestArea();
  result.placement = Placement(circuit.moduleCount());
  for (std::size_t r = 0; r < best.macro.rects.size(); ++r) {
    result.placement[best.macro.owners[r]] = best.macro.rects[r];
  }
  result.area = best.area();
  result.areaUsage = static_cast<double>(result.area) /
                     static_cast<double>(circuit.totalModuleArea());
  result.enumeratedPlacements = ctx.visited;
  result.rootFunction = std::move(root);
  result.seconds = clock.seconds();
  return result;
}

}  // namespace als
