// Shape functions and enhanced shape functions (Section IV, [25], after
// Otten [23]).
//
// A shape function is the pareto frontier of (width, height) bounding
// rectangles of the feasible placements of a sub-circuit: entries whose
// height is not smaller than another entry of no greater width are
// redundant and pruned.  An *enhanced* shape function additionally keeps
// the placement behind each point (the paper stores the B*-tree; we store
// the packed placement as a rigid macro, which carries the same geometry
// and is what the enhanced addition operates on).
//
// Additions combine two shape functions into the function of the composed
// sub-circuit:
//   * regular addition — bounding boxes side by side / stacked:
//       (w1+w2, max(h1,h2))  or  (max(w1,w2), h1+h2);
//   * enhanced addition (Fig. 7) — the right/top operand slides along the
//     facing rectilinear profiles until contact, recovering the w_imp the
//     bounding boxes waste; both operands stay rigid, so symmetry and other
//     constraints embedded in their placements survive.
//
// A configurable pareto cap keeps the combination cost bounded on the
// 110-module circuit; the cap applies identically to RSF and ESF runs so
// Table-I comparisons stay fair.
#pragma once

#include <span>
#include <vector>

#include "bstar/pack.h"
#include "geom/placement.h"
#include "netlist/module.h"

namespace als {

struct ShapeEntry {
  Coord w = 0;
  Coord h = 0;
  Macro macro;  ///< placement realizing this shape (bbox anchored at origin)

  Coord area() const { return w * h; }
};

enum class AdditionKind { Regular, Enhanced };
enum class AdditionDir { Horizontal, Vertical };

class ShapeFunction {
 public:
  ShapeFunction() = default;

  /// Inserts an entry, keeping the pareto frontier (strictly increasing w,
  /// strictly decreasing h).  Dominated insertions are dropped.
  void insert(ShapeEntry entry);

  const std::vector<ShapeEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Entry with minimal bounding-box area.
  const ShapeEntry& bestArea() const;

  /// Downsamples to at most `cap` entries (keeps the extremes and the best
  /// area point; evenly thins the rest).
  void capTo(std::size_t cap);

 private:
  std::vector<ShapeEntry> entries_;  // sorted by w ascending
};

/// Adds two realized shapes.  Regular: bounding-box juxtaposition.
/// Enhanced: rigid slide until contact along the facing profiles.
ShapeEntry addShapes(const ShapeEntry& a, const ShapeEntry& b, AdditionDir dir,
                     AdditionKind kind);

/// Combines two shape functions: every entry pair, both directions, chosen
/// addition kind; result pruned to pareto and capped.
ShapeFunction combine(const ShapeFunction& a, const ShapeFunction& b,
                      AdditionKind kind, std::size_t cap);

/// Discretizes a soft block (target area, aspect range) into a pareto shape
/// curve of at most `cap` realizations: aspects sampled geometrically across
/// [loAspect, hiAspect], each resolved like the benchmark parser resolves a
/// SoftBlock (w = round(sqrt(area * aspect)), h covering the area), then
/// pruned through a ShapeFunction.  Deterministic — a pure function of its
/// arguments — which is what lets the io layer derive identical curves on
/// every parse.  Entries come back sorted by ascending width.
std::vector<ModuleShape> discretizeSoftShape(double area, double loAspect,
                                             double hiAspect, std::size_t cap);

}  // namespace als
