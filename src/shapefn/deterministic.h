// Deterministic analog placement by hierarchically bounded enumeration and
// (enhanced) shape functions — the full flow of Section IV / [25].
//
// Two steps, exactly as the paper describes:
//   1. every basic module set (hierarchy node whose children are modules)
//      is enumerated exhaustively; symmetric sets keep only their
//      mirror-symmetric placements;
//   2. the results are combined bottom-up along the hierarchy tree with
//      shape-function additions — regular (RSF) or enhanced (ESF).
//
// The same code path runs both variants so Table-I comparisons isolate the
// addition kind: ESF pays the slide computation and wins area by
// interleaving the sub-circuit outlines; RSF adds bounding boxes only.
#pragma once

#include <cstdint>

#include "geom/placement.h"
#include "netlist/circuit.h"
#include "shapefn/shape_function.h"

namespace als {

struct DeterministicOptions {
  AdditionKind kind = AdditionKind::Enhanced;
  std::size_t shapeCap = 32;          ///< pareto cap per hierarchy node
  std::size_t maxOrientModules = 4;   ///< orientation enumeration bound
};

struct DeterministicResult {
  Placement placement;  ///< best-area placement of the whole circuit
  Coord area = 0;       ///< its bounding-box area
  /// Area usage as Table I defines it: bounding rectangle of the smallest
  /// shape divided by the total module area (>= 1.0).
  double areaUsage = 0.0;
  double seconds = 0.0;
  std::uint64_t enumeratedPlacements = 0;  ///< basic-set packings visited
  ShapeFunction rootFunction;              ///< final shape function (Fig. 8)
};

/// Runs the deterministic placer on a circuit with a hierarchy tree.
DeterministicResult placeDeterministic(const Circuit& circuit,
                                       const DeterministicOptions& options = {});

}  // namespace als
