#include "shapefn/shape_function.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "geom/profile.h"

namespace als {

void ShapeFunction::insert(ShapeEntry entry) {
  // Find insertion point by width.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), entry.w,
      [](const ShapeEntry& e, Coord w) { return e.w < w; });
  // Dominated by a no-wider entry with no-greater height?
  if (it != entries_.begin()) {
    if (std::prev(it)->h <= entry.h) return;
  }
  if (it != entries_.end() && it->w == entry.w) {
    if (it->h <= entry.h) return;
    // Same width, better height: replace, then prune taller successors.
    *it = std::move(entry);
  } else {
    it = entries_.insert(it, std::move(entry));
  }
  // Remove successors dominated by the new entry.
  auto next = std::next(it);
  while (next != entries_.end() && next->h >= it->h) {
    next = entries_.erase(next);
  }
}

const ShapeEntry& ShapeFunction::bestArea() const {
  assert(!entries_.empty());
  const ShapeEntry* best = &entries_.front();
  for (const ShapeEntry& e : entries_) {
    if (e.area() < best->area()) best = &e;
  }
  return *best;
}

void ShapeFunction::capTo(std::size_t cap) {
  if (entries_.size() <= cap || cap == 0) return;
  // Always keep the extremes and the best-area entry.
  std::size_t bestIdx = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].area() < entries_[bestIdx].area()) bestIdx = i;
  }
  std::vector<ShapeEntry> kept;
  kept.reserve(cap);
  for (std::size_t k = 0; k < cap; ++k) {
    std::size_t idx = k * (entries_.size() - 1) / (cap - 1);
    kept.push_back(entries_[idx]);
  }
  // Ensure the best-area entry survives the thinning.
  bool hasBest = std::any_of(kept.begin(), kept.end(), [&](const ShapeEntry& e) {
    return e.w == entries_[bestIdx].w && e.h == entries_[bestIdx].h;
  });
  if (!hasBest) kept[cap / 2] = entries_[bestIdx];
  std::sort(kept.begin(), kept.end(),
            [](const ShapeEntry& a, const ShapeEntry& b) { return a.w < b.w; });
  entries_.clear();
  for (ShapeEntry& e : kept) insert(std::move(e));
}

namespace {

/// Builds the combined macro from a's rects plus b's rects shifted by
/// (dx, dy), preserving owner ids.
Macro mergeMacros(const Macro& a, const Macro& b, Coord dx, Coord dy) {
  Placement p;
  std::vector<ModuleId> owners;
  owners.reserve(a.rects.size() + b.rects.size());
  for (std::size_t i = 0; i < a.rects.size(); ++i) {
    p.push(a.rects[i]);
    owners.push_back(a.owners[i]);
  }
  for (std::size_t i = 0; i < b.rects.size(); ++i) {
    p.push(b.rects[i].translated(dx, dy));
    owners.push_back(b.owners[i]);
  }
  // Shape-function macros are rect containers; the slide works pairwise on
  // rects, so profiles are never needed here.
  return Macro::fromPlacement(p, owners, /*computeProfiles=*/false);
}

}  // namespace

ShapeEntry addShapes(const ShapeEntry& a, const ShapeEntry& b, AdditionDir dir,
                     AdditionKind kind) {
  Coord dx = 0, dy = 0;
  if (dir == AdditionDir::Horizontal) {
    if (kind == AdditionKind::Regular) {
      dx = a.w;
    } else {
      dx = slideContactX(a.macro.rects, b.macro.rects);
      if (dx == noContact) dx = 0;  // operands never collide: align left
    }
  } else {
    if (kind == AdditionKind::Regular) {
      dy = a.h;
    } else {
      dy = slideContactY(a.macro.rects, b.macro.rects);
      if (dy == noContact) dy = 0;
    }
  }
  ShapeEntry out;
  out.macro = mergeMacros(a.macro, b.macro, dx, dy);
  out.w = out.macro.w;
  out.h = out.macro.h;
  return out;
}

ShapeFunction combine(const ShapeFunction& a, const ShapeFunction& b,
                      AdditionKind kind, std::size_t cap) {
  ShapeFunction out;
  for (const ShapeEntry& ea : a.entries()) {
    for (const ShapeEntry& eb : b.entries()) {
      out.insert(addShapes(ea, eb, AdditionDir::Horizontal, kind));
      out.insert(addShapes(ea, eb, AdditionDir::Vertical, kind));
      if (kind == AdditionKind::Enhanced) {
        // Sliding is order-sensitive (the moving operand approaches from
        // +x / +y), so the enhanced addition also explores the reversed
        // operand order — part of the extra effort Table I's runtime
        // column reflects.
        out.insert(addShapes(eb, ea, AdditionDir::Horizontal, kind));
        out.insert(addShapes(eb, ea, AdditionDir::Vertical, kind));
      }
    }
  }
  out.capTo(cap);
  return out;
}

std::vector<ModuleShape> discretizeSoftShape(double area, double loAspect,
                                             double hiAspect, std::size_t cap) {
  std::vector<ModuleShape> curve;
  if (!(area > 0.0) || !(loAspect > 0.0) || !(hiAspect >= loAspect) || cap == 0) {
    return curve;
  }
  // Geometric aspect sampling: more samples than the cap so the pareto
  // pruning (not the sampling grid) decides which realizations survive.
  const std::size_t samples = std::max<std::size_t>(2 * cap + 1, 9);
  ShapeFunction fn;
  const double logLo = std::log(loAspect);
  const double logHi = std::log(hiAspect);
  for (std::size_t i = 0; i < samples; ++i) {
    double t = samples == 1 ? 0.0
                            : static_cast<double>(i) /
                                  static_cast<double>(samples - 1);
    double aspect = std::exp(logLo + (logHi - logLo) * t);
    // Same resolution rule as the benchmark parser's SoftBlock handling.
    Coord w = std::max<Coord>(1, std::llround(std::sqrt(area * aspect)));
    Coord h = std::max<Coord>(1, (static_cast<Coord>(area) + w - 1) / w);
    ShapeEntry e;
    e.w = w;
    e.h = h;
    fn.insert(std::move(e));
  }
  fn.capTo(cap);
  curve.reserve(fn.size());
  for (const ShapeEntry& e : fn.entries()) curve.push_back({e.w, e.h});
  return curve;
}

}  // namespace als
