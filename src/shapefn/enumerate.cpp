#include "shapefn/enumerate.h"

#include <algorithm>
#include <numeric>

#include "bstar/pack.h"
#include "geom/placement.h"

namespace als {

std::uint64_t bstarPlacementCount(std::size_t n) {
  // Catalan(n) = C(2n, n) / (n + 1), built iteratively.
  std::uint64_t catalan = 1;
  for (std::size_t i = 0; i < n; ++i) {
    catalan = catalan * 2 * (2 * i + 1) / (i + 2);
  }
  std::uint64_t factorial = 1;
  for (std::size_t i = 2; i <= n; ++i) factorial *= i;
  return catalan * factorial;
}

namespace {

/// Recursively generates all tree shapes over preorder-indexed nodes
/// [base, base + n); returns (rootIndex, left[], right[]) pieces spliced by
/// the caller.  Writing directly into shared arrays keeps it allocation-lean.
void generateShapes(std::size_t base, std::size_t n,
                    std::vector<std::size_t>& left, std::vector<std::size_t>& right,
                    const std::function<void()>& done) {
  if (n == 0) {
    done();
    return;
  }
  // Root is `base`; left subtree occupies the next l nodes, right the rest.
  for (std::size_t l = 0; l < n; ++l) {
    std::size_t r = n - 1 - l;
    left[base] = l > 0 ? base + 1 : BStarTree::npos;
    right[base] = r > 0 ? base + 1 + l : BStarTree::npos;
    generateShapes(base + 1, l, left, right, [&] {
      generateShapes(base + 1 + l, r, left, right, done);
    });
  }
}

}  // namespace

void forEachBStarTree(std::size_t k,
                      const std::function<void(const BStarTree&)>& visit) {
  if (k == 0) return;
  std::vector<std::size_t> left(k, BStarTree::npos);
  std::vector<std::size_t> right(k, BStarTree::npos);
  std::vector<std::size_t> items(k);
  generateShapes(0, k, left, right, [&] {
    std::iota(items.begin(), items.end(), std::size_t{0});
    do {
      visit(BStarTree::fromArrays(0, left, right, items));
    } while (std::next_permutation(items.begin(), items.end()));
  });
}

std::optional<Coord> mirrorAxisOf(const Placement& p, const SymmetryGroup& group) {
  Coord axis2x = 0;
  if (!group.pairs.empty()) {
    const Rect& a = p[group.pairs[0].a];
    const Rect& b = p[group.pairs[0].b];
    axis2x = a.x + a.w + b.x;
  } else if (!group.selfs.empty()) {
    const Rect& s = p[group.selfs[0]];
    axis2x = 2 * s.x + s.w;
  } else {
    return std::nullopt;
  }
  for (const SymPair& pr : group.pairs) {
    if (!mirroredAboutX2(p[pr.a], p[pr.b], axis2x)) return std::nullopt;
  }
  for (ModuleId s : group.selfs) {
    if (!centeredOnX2(p[s], axis2x)) return std::nullopt;
  }
  return axis2x;
}

ShapeFunction enumerateBasicSet(std::span<const EnumModule> modules,
                                const SymmetryGroup* group, std::size_t cap,
                                std::size_t maxOrientModules,
                                std::uint64_t* visitedCount) {
  const std::size_t k = modules.size();
  ShapeFunction sf;
  if (k == 0) return sf;

  // Orientation masks: all subsets of rotatable modules for small sets.
  std::vector<std::size_t> rotIdx;
  if (k <= maxOrientModules) {
    for (std::size_t i = 0; i < k; ++i) {
      if (modules[i].rotatable) rotIdx.push_back(i);
    }
  }
  const std::size_t maskCount = std::size_t{1} << rotIdx.size();

  std::uint64_t visited = 0;
  // Placement indexed by *global* module id so the group test can use the
  // group's own ids directly.
  ModuleId maxId = 0;
  for (const EnumModule& m : modules) maxId = std::max(maxId, m.id);

  forEachBStarTree(k, [&](const BStarTree& tree) {
    for (std::size_t mask = 0; mask < maskCount; ++mask) {
      std::vector<Coord> w(k), h(k);
      for (std::size_t i = 0; i < k; ++i) {
        w[i] = modules[i].w;
        h[i] = modules[i].h;
      }
      for (std::size_t b = 0; b < rotIdx.size(); ++b) {
        if (mask & (std::size_t{1} << b)) std::swap(w[rotIdx[b]], h[rotIdx[b]]);
      }
      Placement local = packBStar(tree, w, h);
      ++visited;

      if (group) {
        Placement global(maxId + 1);
        for (std::size_t i = 0; i < k; ++i) global[modules[i].id] = local[i];
        if (!mirrorAxisOf(global, *group)) continue;
      }
      std::vector<ModuleId> owners(k);
      for (std::size_t i = 0; i < k; ++i) owners[i] = modules[i].id;
      ShapeEntry entry;
      entry.macro = Macro::fromPlacement(local, owners, /*computeProfiles=*/false);
      entry.w = entry.macro.w;
      entry.h = entry.macro.h;
      sf.insert(std::move(entry));
    }
  });
  sf.capTo(cap);
  if (visitedCount) *visitedCount += visited;
  return sf;
}

}  // namespace als
