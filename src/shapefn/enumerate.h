// Exhaustive enumeration of basic-module-set placements (Section IV).
//
// The deterministic approach of [25] enumerates *all* B*-tree placements of
// each basic module set — feasible because the sets are small (a
// differential pair, a current mirror), while a full-circuit enumeration is
// hopeless: n modules admit n! * Catalan(n) placements, the 57,657,600
// Section IV quotes for n = 8.
//
// Sets carrying a symmetry constraint keep only the placements that are
// exactly mirror-symmetric, so every shape a symmetric set contributes is
// constraint-clean and survives rigid additions unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "bstar/bstar_tree.h"
#include "netlist/module.h"
#include "shapefn/shape_function.h"

namespace als {

/// n! * Catalan(n): the number of n-module B*-tree placements (excluding
/// orientations).  Exact for n <= 10 in 64 bits.
std::uint64_t bstarPlacementCount(std::size_t n);

/// Visits every B*-tree over k nodes (all shapes x all item assignments).
void forEachBStarTree(std::size_t k,
                      const std::function<void(const BStarTree&)>& visit);

/// One module of a basic set as seen by the enumerator.
struct EnumModule {
  ModuleId id = 0;  ///< global module id (recorded in the macros)
  Coord w = 0;
  Coord h = 0;
  bool rotatable = false;
};

/// Enumerates all placements of the set and returns the pareto shape
/// function (macros carried).  When `group` is given, only placements in
/// which the group is exactly mirrored survive.  Orientation variants are
/// explored for sets of at most `maxOrientModules` modules.
ShapeFunction enumerateBasicSet(std::span<const EnumModule> modules,
                                const SymmetryGroup* group, std::size_t cap,
                                std::size_t maxOrientModules = 4,
                                std::uint64_t* visitedCount = nullptr);

/// Exact mirror-symmetry test of a placement restricted to a group; returns
/// the doubled axis when symmetric.
std::optional<Coord> mirrorAxisOf(const Placement& p, const SymmetryGroup& group);

}  // namespace als
