#include "slicing/polish.h"

#include <algorithm>
#include <cassert>

namespace als {

PolishExpr PolishExpr::initial(std::size_t moduleCount) {
  PolishExpr e;
  e.moduleCount_ = moduleCount;
  if (moduleCount == 0) return e;
  e.elems_.push_back(0);
  for (std::size_t m = 1; m < moduleCount; ++m) {
    e.elems_.push_back(static_cast<std::int32_t>(m));
    // Alternate the cut direction so the initial floorplan is a grid-ish
    // slicing rather than one long row.
    e.elems_.push_back(m % 2 == 1 ? kOpV : kOpH);
  }
  assert(e.isValid());
  return e;
}

bool PolishExpr::isValid() const {
  if (moduleCount_ == 0) return elems_.empty();
  std::vector<bool> seen(moduleCount_, false);
  std::size_t operands = 0, operators = 0;
  std::int32_t prev = 0;  // operands are >= 0, so 0 is a safe non-operator init
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    std::int32_t e = elems_[i];
    if (e >= 0) {
      if (static_cast<std::size_t>(e) >= moduleCount_ || seen[static_cast<std::size_t>(e)]) {
        return false;
      }
      seen[static_cast<std::size_t>(e)] = true;
      ++operands;
    } else {
      if (e != kOpV && e != kOpH) return false;
      if (i > 0 && prev == e) return false;  // normalization
      ++operators;
      if (operators >= operands) return false;  // balloting
    }
    prev = e;
  }
  return operands == moduleCount_ && operators + 1 == operands;
}

bool PolishExpr::swapAdjacentOperands(Rng& rng) {
  std::vector<std::size_t> operandPos;
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    if (elems_[i] >= 0) operandPos.push_back(i);
  }
  if (operandPos.size() < 2) return false;
  if (rng.coin()) {
    // Classic M1: adjacent operands.
    std::size_t k = rng.index(operandPos.size() - 1);
    std::swap(elems_[operandPos[k]], elems_[operandPos[k + 1]]);
  } else {
    // Long-range operand exchange — still a valid slicing tree (only leaf
    // labels move), and a much stronger mixer than adjacent swaps alone.
    std::size_t a = rng.index(operandPos.size());
    std::size_t b = rng.index(operandPos.size());
    std::swap(elems_[operandPos[a]], elems_[operandPos[b]]);
  }
  return true;
}

bool PolishExpr::complementChain(Rng& rng) {
  // Maximal operator runs.
  std::vector<std::pair<std::size_t, std::size_t>> chains;  // [lo, hi)
  std::size_t i = 0;
  while (i < elems_.size()) {
    if (elems_[i] < 0) {
      std::size_t j = i;
      while (j < elems_.size() && elems_[j] < 0) ++j;
      chains.push_back({i, j});
      i = j;
    } else {
      ++i;
    }
  }
  if (chains.empty()) return false;
  auto [lo, hi] = chains[rng.index(chains.size())];
  for (std::size_t k = lo; k < hi; ++k) {
    elems_[k] = elems_[k] == kOpV ? kOpH : kOpV;
  }
  return true;
}

bool PolishExpr::swapOperandOperator(Rng& rng) {
  // Try a few random adjacent operand/operator swaps; validate wholesale
  // (balloting + normalization are cheap to re-check).
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (elems_.size() < 2) return false;
    std::size_t i = rng.index(elems_.size() - 1);
    bool mixedPair = (elems_[i] >= 0) != (elems_[i + 1] >= 0);
    if (!mixedPair) continue;
    std::swap(elems_[i], elems_[i + 1]);
    if (isValid()) return true;
    std::swap(elems_[i], elems_[i + 1]);  // revert
  }
  return false;
}

bool PolishExpr::perturb(Rng& rng) {
  double r = rng.uniform();
  bool done = false;
  if (r < 0.4) {
    done = swapAdjacentOperands(rng);
  } else if (r < 0.7) {
    done = complementChain(rng);
  } else {
    done = swapOperandOperator(rng);
  }
  assert(isValid());
  return done;
}

std::string PolishExpr::toString() const {
  std::string s;
  for (std::int32_t e : elems_) {
    if (!s.empty()) s += ' ';
    if (e >= 0) {
      s += std::to_string(e);
    } else {
      s += e == kOpV ? 'V' : 'H';
    }
  }
  return s;
}

namespace {

struct SShape {
  Coord w = 0, h = 0;
  std::uint32_t li = 0, ri = 0;  // child shape indices; leaf: li = rotated
};

/// Insert keeping a pareto staircase sorted by w (h strictly decreasing).
void paretoInsert(std::vector<SShape>& v, SShape s) {
  auto it = std::lower_bound(v.begin(), v.end(), s.w,
                             [](const SShape& e, Coord w) { return e.w < w; });
  if (it != v.begin() && std::prev(it)->h <= s.h) return;
  if (it != v.end() && it->w == s.w) {
    if (it->h <= s.h) return;
    *it = s;
  } else {
    it = v.insert(it, s);
  }
  auto next = std::next(it);
  while (next != v.end() && next->h >= it->h) next = v.erase(next);
}

void capShapes(std::vector<SShape>& v, std::size_t cap) {
  if (cap == 0 || v.size() <= cap) return;
  std::vector<SShape> kept;
  kept.reserve(cap);
  std::size_t bestIdx = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].w * v[i].h < v[bestIdx].w * v[bestIdx].h) bestIdx = i;
  }
  for (std::size_t k = 0; k < cap; ++k) {
    kept.push_back(v[k * (v.size() - 1) / (cap - 1)]);
  }
  bool hasBest = false;
  for (const SShape& s : kept) {
    hasBest = hasBest || (s.w == v[bestIdx].w && s.h == v[bestIdx].h);
  }
  if (!hasBest) kept[cap / 2] = v[bestIdx];
  std::sort(kept.begin(), kept.end(),
            [](const SShape& a, const SShape& b) { return a.w < b.w; });
  v.clear();
  for (const SShape& s : kept) paretoInsert(v, s);
}

struct EvalNode {
  std::int32_t elem = 0;
  std::size_t left = static_cast<std::size_t>(-1);
  std::size_t right = static_cast<std::size_t>(-1);
  std::vector<SShape> shapes;
};

void reconstruct(const std::vector<EvalNode>& nodes, std::size_t nodeIdx,
                 std::uint32_t shapeIdx, Coord x, Coord y, Placement& out) {
  const EvalNode& node = nodes[nodeIdx];
  const SShape& s = node.shapes[shapeIdx];
  if (node.elem >= 0) {
    out[static_cast<std::size_t>(node.elem)] = {x, y, s.w, s.h};
    return;
  }
  const SShape& ls = nodes[node.left].shapes[s.li];
  reconstruct(nodes, node.left, s.li, x, y, out);
  if (node.elem == PolishExpr::kOpV) {
    reconstruct(nodes, node.right, s.ri, x + ls.w, y, out);
  } else {
    reconstruct(nodes, node.right, s.ri, x, y + ls.h, out);
  }
}

}  // namespace

SlicedResult evaluatePolish(const PolishExpr& expr, std::span<const Coord> widths,
                            std::span<const Coord> heights,
                            const std::vector<bool>& rotatable,
                            std::size_t shapeCap) {
  SlicedResult result;
  if (expr.moduleCount() == 0) return result;
  assert(expr.isValid());

  std::vector<EvalNode> nodes;
  nodes.reserve(expr.elements().size());
  std::vector<std::size_t> stack;
  for (std::int32_t e : expr.elements()) {
    EvalNode node;
    node.elem = e;
    if (e >= 0) {
      auto m = static_cast<std::size_t>(e);
      node.shapes.push_back({widths[m], heights[m], 0, 0});
      if (rotatable[m] && widths[m] != heights[m]) {
        paretoInsert(node.shapes, {heights[m], widths[m], 1, 0});
      }
    } else {
      node.right = stack.back();
      stack.pop_back();
      node.left = stack.back();
      stack.pop_back();
      const auto& ls = nodes[node.left].shapes;
      const auto& rs = nodes[node.right].shapes;
      for (std::uint32_t i = 0; i < ls.size(); ++i) {
        for (std::uint32_t j = 0; j < rs.size(); ++j) {
          if (e == PolishExpr::kOpV) {
            paretoInsert(node.shapes,
                         {ls[i].w + rs[j].w, std::max(ls[i].h, rs[j].h), i, j});
          } else {
            paretoInsert(node.shapes,
                         {std::max(ls[i].w, rs[j].w), ls[i].h + rs[j].h, i, j});
          }
        }
      }
      capShapes(node.shapes, shapeCap);
    }
    nodes.push_back(std::move(node));
    stack.push_back(nodes.size() - 1);
  }
  assert(stack.size() == 1);

  const std::size_t root = stack.back();
  const auto& rootShapes = nodes[root].shapes;
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < rootShapes.size(); ++i) {
    if (rootShapes[i].w * rootShapes[i].h < rootShapes[best].w * rootShapes[best].h) {
      best = i;
    }
  }
  result.placement = Placement(expr.moduleCount());
  reconstruct(nodes, root, best, 0, 0, result.placement);
  result.width = rootShapes[best].w;
  result.height = rootShapes[best].h;
  return result;
}

}  // namespace als
