#include "slicing/polish.h"

#include <algorithm>
#include <cassert>

#include "util/epoch_marks.h"

namespace als {

PolishExpr PolishExpr::initial(std::size_t moduleCount) {
  PolishExpr e;
  e.moduleCount_ = moduleCount;
  if (moduleCount == 0) return e;
  e.elems_.push_back(0);
  for (std::size_t m = 1; m < moduleCount; ++m) {
    e.elems_.push_back(static_cast<std::int32_t>(m));
    // Alternate the cut direction so the initial floorplan is a grid-ish
    // slicing rather than one long row.
    e.elems_.push_back(m % 2 == 1 ? kOpV : kOpH);
  }
  assert(e.isValid());
  return e;
}

bool PolishExpr::isValid() const {
  if (moduleCount_ == 0) return elems_.empty();
  // Uniqueness marking via epoch stamps: isValid runs inside the M3 move
  // (once per attempted swap, i.e. per SA move), so it must not allocate.
  // thread_local keeps concurrent SA runs race-free.
  static thread_local EpochMarks seen;
  seen.beginRound(moduleCount_);
  std::size_t operands = 0, operators = 0;
  std::int32_t prev = 0;  // operands are >= 0, so 0 is a safe non-operator init
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    std::int32_t e = elems_[i];
    if (e >= 0) {
      if (static_cast<std::size_t>(e) >= moduleCount_ ||
          !seen.mark(static_cast<std::size_t>(e))) {
        return false;
      }
      ++operands;
    } else {
      if (e != kOpV && e != kOpH) return false;
      if (i > 0 && prev == e) return false;  // normalization
      ++operators;
      if (operators >= operands) return false;  // balloting
    }
    prev = e;
  }
  return operands == moduleCount_ && operators + 1 == operands;
}

bool PolishExpr::swapAdjacentOperands(Rng& rng) {
  // A valid expression holds exactly moduleCount_ operands, so the
  // historical operand-position vector is not needed to size the draws:
  // draw first (same bounds, same RNG stream), then find the chosen
  // operands by scanning — no allocation per move.
  const std::size_t operandCount = moduleCount_;
  if (operandCount < 2) return false;
  auto operandAt = [&](std::size_t k) {
    for (std::size_t i = 0;; ++i) {
      if (elems_[i] >= 0 && k-- == 0) return i;
    }
  };
  if (rng.coin()) {
    // Classic M1: adjacent operands.
    std::size_t k = rng.index(operandCount - 1);
    std::size_t i = operandAt(k);
    std::size_t j = i + 1;
    while (elems_[j] < 0) ++j;  // next operand position
    std::swap(elems_[i], elems_[j]);
  } else {
    // Long-range operand exchange — still a valid slicing tree (only leaf
    // labels move), and a much stronger mixer than adjacent swaps alone.
    std::size_t a = rng.index(operandCount);
    std::size_t b = rng.index(operandCount);
    std::size_t i = operandAt(a);
    std::size_t j = operandAt(b);
    std::swap(elems_[i], elems_[j]);
  }
  return true;
}

bool PolishExpr::complementChain(Rng& rng) {
  // Count the maximal operator runs, draw one, then find it again: the
  // draw count and bounds match the historical chain-vector selection.
  std::size_t chainCount = 0;
  for (std::size_t i = 0; i < elems_.size();) {
    if (elems_[i] < 0) {
      ++chainCount;
      while (i < elems_.size() && elems_[i] < 0) ++i;
    } else {
      ++i;
    }
  }
  if (chainCount == 0) return false;
  std::size_t pick = rng.index(chainCount);
  std::size_t lo = 0, hi = 0;
  for (std::size_t i = 0; i < elems_.size();) {
    if (elems_[i] < 0) {
      std::size_t j = i;
      while (j < elems_.size() && elems_[j] < 0) ++j;
      if (pick-- == 0) {
        lo = i;
        hi = j;
        break;
      }
      i = j;
    } else {
      ++i;
    }
  }
  for (std::size_t k = lo; k < hi; ++k) {
    elems_[k] = elems_[k] == kOpV ? kOpH : kOpV;
  }
  return true;
}

bool PolishExpr::swapOperandOperator(Rng& rng) {
  // Try a few random adjacent operand/operator swaps; validate wholesale
  // (balloting + normalization are cheap to re-check).
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (elems_.size() < 2) return false;
    std::size_t i = rng.index(elems_.size() - 1);
    bool mixedPair = (elems_[i] >= 0) != (elems_[i + 1] >= 0);
    if (!mixedPair) continue;
    std::swap(elems_[i], elems_[i + 1]);
    if (isValid()) return true;
    std::swap(elems_[i], elems_[i + 1]);  // revert
  }
  return false;
}

bool PolishExpr::perturb(Rng& rng) {
  double r = rng.uniform();
  bool done = false;
  if (r < 0.4) {
    done = swapAdjacentOperands(rng);
  } else if (r < 0.7) {
    done = complementChain(rng);
  } else {
    done = swapOperandOperator(rng);
  }
  assert(isValid());
  return done;
}

std::string PolishExpr::toString() const {
  std::string s;
  for (std::int32_t e : elems_) {
    if (!s.empty()) s += ' ';
    if (e >= 0) {
      s += std::to_string(e);
    } else {
      s += e == kOpV ? 'V' : 'H';
    }
  }
  return s;
}

namespace {

using detail::PolishEvalNode;
using detail::PolishShape;

/// Insert keeping a pareto staircase sorted by w (h strictly decreasing).
void paretoInsert(std::vector<PolishShape>& v, PolishShape s) {
  auto it = std::lower_bound(v.begin(), v.end(), s.w,
                             [](const PolishShape& e, Coord w) { return e.w < w; });
  if (it != v.begin() && std::prev(it)->h <= s.h) return;
  if (it != v.end() && it->w == s.w) {
    if (it->h <= s.h) return;
    *it = s;
  } else {
    it = v.insert(it, s);
  }
  auto next = std::next(it);
  while (next != v.end() && next->h >= it->h) next = v.erase(next);
}

void capShapes(std::vector<PolishShape>& v, std::size_t cap,
               std::vector<PolishShape>& kept) {
  if (cap == 0 || v.size() <= cap) return;
  kept.clear();
  std::size_t bestIdx = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].w * v[i].h < v[bestIdx].w * v[bestIdx].h) bestIdx = i;
  }
  for (std::size_t k = 0; k < cap; ++k) {
    kept.push_back(v[k * (v.size() - 1) / (cap - 1)]);
  }
  bool hasBest = false;
  for (const PolishShape& s : kept) {
    hasBest = hasBest || (s.w == v[bestIdx].w && s.h == v[bestIdx].h);
  }
  if (!hasBest) kept[cap / 2] = v[bestIdx];
  std::sort(kept.begin(), kept.end(),
            [](const PolishShape& a, const PolishShape& b) { return a.w < b.w; });
  v.clear();
  for (const PolishShape& s : kept) paretoInsert(v, s);
}

void reconstruct(const std::vector<PolishEvalNode>& nodes, std::size_t nodeIdx,
                 std::uint32_t shapeIdx, Coord x, Coord y, Placement& out) {
  const PolishEvalNode& node = nodes[nodeIdx];
  const PolishShape& s = node.shapes[shapeIdx];
  if (node.elem >= 0) {
    out[static_cast<std::size_t>(node.elem)] = {x, y, s.w, s.h};
    return;
  }
  const PolishShape& ls = nodes[node.left].shapes[s.li];
  reconstruct(nodes, node.left, s.li, x, y, out);
  if (node.elem == PolishExpr::kOpV) {
    reconstruct(nodes, node.right, s.ri, x + ls.w, y, out);
  } else {
    reconstruct(nodes, node.right, s.ri, x, y + ls.h, out);
  }
}

}  // namespace

SlicedResult evaluatePolish(const PolishExpr& expr, std::span<const Coord> widths,
                            std::span<const Coord> heights,
                            const std::vector<bool>& rotatable,
                            std::size_t shapeCap) {
  PolishEvalScratch scratch;
  SlicedResult result;
  evaluatePolishInto(expr, widths, heights, rotatable, shapeCap, scratch, result);
  return result;
}

void evaluatePolishInto(const PolishExpr& expr, std::span<const Coord> widths,
                        std::span<const Coord> heights,
                        const std::vector<bool>& rotatable,
                        std::size_t shapeCap, PolishEvalScratch& scratch,
                        SlicedResult& out) {
  out.placement.clear();
  out.width = 0;
  out.height = 0;
  if (expr.moduleCount() == 0) return;
  assert(expr.isValid());

  const std::vector<std::int32_t>& elems = expr.elements();
  // Node slots are reused index-for-index: growing never shrinks, so each
  // slot's shapes vector keeps the capacity it reached — the steady state
  // of an anneal (constant expression length) allocates nothing.
  if (scratch.nodes.size() < elems.size()) scratch.nodes.resize(elems.size());
  std::vector<std::size_t>& stack = scratch.stack;
  stack.clear();

  for (std::size_t idx = 0; idx < elems.size(); ++idx) {
    std::int32_t e = elems[idx];
    PolishEvalNode& node = scratch.nodes[idx];
    node.elem = e;
    node.left = node.right = static_cast<std::size_t>(-1);
    node.shapes.clear();
    if (e >= 0) {
      auto m = static_cast<std::size_t>(e);
      node.shapes.push_back({widths[m], heights[m], 0, 0});
      if (rotatable[m] && widths[m] != heights[m]) {
        paretoInsert(node.shapes, {heights[m], widths[m], 1, 0});
      }
    } else {
      node.right = stack.back();
      stack.pop_back();
      node.left = stack.back();
      stack.pop_back();
      const auto& ls = scratch.nodes[node.left].shapes;
      const auto& rs = scratch.nodes[node.right].shapes;
      for (std::uint32_t i = 0; i < ls.size(); ++i) {
        for (std::uint32_t j = 0; j < rs.size(); ++j) {
          if (e == PolishExpr::kOpV) {
            paretoInsert(node.shapes,
                         {ls[i].w + rs[j].w, std::max(ls[i].h, rs[j].h), i, j});
          } else {
            paretoInsert(node.shapes,
                         {std::max(ls[i].w, rs[j].w), ls[i].h + rs[j].h, i, j});
          }
        }
      }
      capShapes(node.shapes, shapeCap, scratch.capKept);
    }
    stack.push_back(idx);
  }
  assert(stack.size() == 1);

  const std::size_t root = stack.back();
  const auto& rootShapes = scratch.nodes[root].shapes;
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < rootShapes.size(); ++i) {
    if (rootShapes[i].w * rootShapes[i].h < rootShapes[best].w * rootShapes[best].h) {
      best = i;
    }
  }
  out.placement.assign(expr.moduleCount());
  reconstruct(scratch.nodes, root, best, 0, 0, out.placement);
  out.width = rootShapes[best].w;
  out.height = rootShapes[best].h;
}

}  // namespace als
