// Slicing-model SA placer (ILAC-style [24]) — baseline for experiment E13.
//
// Anneals normalized Polish expressions with the Wong-Liu move set; each
// evaluation derives the best-area realization of the slicing tree from the
// subtree shape curves.  No symmetry handling: the experiment isolates the
// paper's *density* claim about slicing versus non-slicing topologies.
#pragma once

#include <cstdint>
#include <memory>

#include "geom/placement.h"
#include "netlist/circuit.h"
#include "slicing/polish.h"
#include "util/cancel_token.h"

namespace als {

/// Reusable decode buffers of one slicing SA run (optional; see
/// bstar/flat_placer.h for the sharing contract).
struct SlicingScratch {
  PolishEvalScratch eval;
  SlicedResult result;  ///< decoded placement of the current candidate
};

struct SlicingPlacerOptions {
  double wirelengthWeight = 0.25;
  double thermalWeight = 0.0;   ///< pair temperature-mismatch penalty
  double shapeMoveProb = 0.0;   ///< P(move re-selects a soft realization)
  std::size_t maxSweeps = 256;  ///< primary budget: total SA sweeps (deterministic)
  double timeLimitSec = 0.0;    ///< secondary wall-clock cap (0 = uncapped)
  std::uint64_t seed = 13;
  double coolingFactor = 0.96;
  std::size_t movesPerTemp = 0;
  std::size_t shapeCap = 32;
  SlicingScratch* scratch = nullptr;  ///< optional caller-owned buffers
  /// Cooperative cancellation, checked per sweep (anneal/annealer.h).
  const CancelToken* cancel = nullptr;
};

struct SlicingPlacerResult {
  Placement placement;
  Coord area = 0;
  Coord hpwl = 0;
  double cost = 0.0;
  std::size_t movesTried = 0;
  std::size_t sweeps = 0;  ///< SA temperature steps executed
  double seconds = 0.0;
};

/// Stateless and re-entrant (engine/placement_engine.h thread-safety
/// contract): reads `circuit` only, owns its RNG via `options.seed`.
SlicingPlacerResult placeSlicingSA(const Circuit& circuit,
                                   const SlicingPlacerOptions& options = {});

/// Resumable slicing SA run — `placeSlicingSA` cut at sweep granularity;
/// see bstar/flat_placer.h's FlatBStarSession for the shared contract
/// (run-to-completion bit-identity, `tempScale`, threading).
class SlicingSession {
 public:
  SlicingSession(const Circuit& circuit, const SlicingPlacerOptions& options,
                 double tempScale = 1.0);
  ~SlicingSession();

  SlicingSession(const SlicingSession&) = delete;
  SlicingSession& operator=(const SlicingSession&) = delete;

  std::size_t runSweeps(std::size_t maxSweeps);
  void run();
  bool finished() const;

  double currentCost() const;
  double bestCost() const;
  double temperature() const;

  void exchangeWith(SlicingSession& other);

  /// Decodes the best state so far into the session scratch.  The reference
  /// stays valid until the session advances or decodes again.
  const Placement& bestPlacement();

  /// Always returns false: a general placement has no exact normalized
  /// Polish expression, so this backend never adopts foreign seeds (the
  /// tempering runner falls back to keeping the replica's own state).
  bool reseedFromPlacement(const Placement& placement);

  SlicingPlacerResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace als
