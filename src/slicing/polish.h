// Slicing floorplans as normalized Polish expressions (Wong & Liu; the
// layout model of ILAC [24]).
//
// Section II recalls that ILAC adopted the slicing model and that "today it
// is widely acknowledged that this is not a good choice for high-performance
// analog design since the slicing representations limit the set of reachable
// layout topologies, degrading the layout density especially when cells are
// very different in size".  This module implements the classic machinery so
// the claim can be measured against the non-slicing engines (experiment
// E13 in DESIGN.md):
//
//   * postfix expressions over module operands and the cut operators
//     V (horizontal composition, widths add) and H (vertical composition,
//     heights add), kept *normalized* (no two consecutive equal operators);
//   * the three Wong-Liu neighbourhood moves: M1 swaps adjacent operands,
//     M2 complements a maximal operator chain, M3 swaps an adjacent
//     operand/operator pair subject to balloting and normalization;
//   * stack evaluation with pareto shape sets per subtree (module rotation
//     included) and placement reconstruction by backtracking.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geom/placement.h"
#include "util/rng.h"

namespace als {

class PolishExpr {
 public:
  static constexpr std::int32_t kOpV = -1;  ///< side-by-side (widths add)
  static constexpr std::int32_t kOpH = -2;  ///< stacked (heights add)

  PolishExpr() = default;

  /// Initial expression 0 1 V 2 V 3 V ... (a row of all modules).
  static PolishExpr initial(std::size_t moduleCount);

  const std::vector<std::int32_t>& elements() const { return elems_; }
  std::size_t moduleCount() const { return moduleCount_; }

  /// Balloting property, single use of each module, normalization.
  bool isValid() const;

  /// Applies one random Wong-Liu move (M1 / M2 / M3); the expression stays
  /// valid.  Returns false if the sampled move had no legal target.
  bool perturb(Rng& rng);

  /// "21V3H..."-style rendering for debugging.
  std::string toString() const;

  friend bool operator==(const PolishExpr&, const PolishExpr&) = default;

 private:
  bool swapAdjacentOperands(Rng& rng);   // M1
  bool complementChain(Rng& rng);        // M2
  bool swapOperandOperator(Rng& rng);    // M3

  std::vector<std::int32_t> elems_;
  std::size_t moduleCount_ = 0;
};

struct SlicedResult {
  Placement placement;
  Coord width = 0;
  Coord height = 0;
  Coord area() const { return width * height; }
};

namespace detail {

/// One pareto shape of a slicing subtree; leaves encode rotation in `li`.
struct PolishShape {
  Coord w = 0, h = 0;
  std::uint32_t li = 0, ri = 0;  // child shape indices; leaf: li = rotated
};

/// One postfix element's evaluation node.  The shapes vector is reused call
/// to call (the expression length is constant across an anneal), which is
/// what makes the evaluator allocation-free when warm.
struct PolishEvalNode {
  std::int32_t elem = 0;
  std::size_t left = static_cast<std::size_t>(-1);
  std::size_t right = static_cast<std::size_t>(-1);
  std::vector<PolishShape> shapes;
};

}  // namespace detail

/// Reusable buffers of one Polish-expression evaluation loop (the slicing
/// placer's per-move decode).  Not shareable between concurrent evaluators.
struct PolishEvalScratch {
  std::vector<detail::PolishEvalNode> nodes;
  std::vector<std::size_t> stack;
  std::vector<detail::PolishShape> capKept;  ///< capShapes working set
};

/// Evaluates the expression's pareto shapes and reconstructs the best-area
/// placement.  `rotatable[m]` enables 90-degree rotation of module m.
/// `shapeCap` bounds the per-subtree pareto size (0 = unbounded).
/// (vector<bool> by reference: the bit-packed specialization cannot bind to
/// a std::span.)
SlicedResult evaluatePolish(const PolishExpr& expr, std::span<const Coord> widths,
                            std::span<const Coord> heights,
                            const std::vector<bool>& rotatable,
                            std::size_t shapeCap = 32);

/// Scratch-reuse variant: identical results, zero heap allocations once the
/// buffers are warm.  `out` is fully overwritten.
void evaluatePolishInto(const PolishExpr& expr, std::span<const Coord> widths,
                        std::span<const Coord> heights,
                        const std::vector<bool>& rotatable,
                        std::size_t shapeCap, PolishEvalScratch& scratch,
                        SlicedResult& out);

}  // namespace als
