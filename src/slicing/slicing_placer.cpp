#include "slicing/slicing_placer.h"

#include <cmath>

#include "anneal/annealer.h"
#include "slicing/polish.h"
#include "util/stopwatch.h"

namespace als {

SlicingPlacerResult placeSlicingSA(const Circuit& circuit,
                                   const SlicingPlacerOptions& options) {
  const std::size_t n = circuit.moduleCount();
  const auto nets = circuit.netPins();
  std::vector<Coord> w(n), h(n);
  std::vector<bool> rotatable(n);
  for (std::size_t m = 0; m < n; ++m) {
    w[m] = circuit.module(m).w;
    h[m] = circuit.module(m).h;
    rotatable[m] = circuit.module(m).rotatable;
  }
  const double wlLambda =
      options.wirelengthWeight *
      std::sqrt(static_cast<double>(circuit.totalModuleArea()));

  auto evaluate = [&](const PolishExpr& e) {
    return evaluatePolish(e, w, h, rotatable, options.shapeCap);
  };
  auto cost = [&](const PolishExpr& e) {
    SlicedResult r = evaluate(e);
    return static_cast<double>(r.area()) +
           wlLambda * static_cast<double>(totalHpwl(r.placement, nets));
  };
  auto move = [](const PolishExpr& e, Rng& rng) {
    PolishExpr next = e;
    next.perturb(rng);
    return next;
  };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = n;
  auto annealed = annealWithRestarts(PolishExpr::initial(n), cost, move, annealOpt);

  SlicingPlacerResult result;
  SlicedResult best = evaluate(annealed.best);
  result.placement = std::move(best.placement);
  result.area = best.area();
  result.hpwl = totalHpwl(result.placement, nets);
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
