#include "slicing/slicing_placer.h"

#include <utility>
#include <vector>

#include "anneal/annealer.h"
#include "cost/cost_model.h"
#include "slicing/polish.h"

namespace als {

SlicingPlacerResult placeSlicingSA(const Circuit& circuit,
                                   const SlicingPlacerOptions& options) {
  const std::size_t n = circuit.moduleCount();
  std::vector<Coord> w(n), h(n);
  std::vector<bool> rotatable(n);
  for (std::size_t m = 0; m < n; ++m) {
    w[m] = circuit.module(m).w;
    h[m] = circuit.module(m).h;
    rotatable[m] = circuit.module(m).rotatable;
  }
  // No symmetry handling in the slicing baseline: area + wirelength only.
  CostModel model(circuit, makeObjective(circuit,
                                         {.wirelength = options.wirelengthWeight}));

  SlicingScratch localScratch;
  SlicingScratch& scr = options.scratch ? *options.scratch : localScratch;

  // The best-area realization fills its root shape exactly and is anchored
  // at the origin, so the placement bounding box IS the chosen shape.  The
  // returned pointer aliases the scratch result buffer.
  auto decode = [&](const PolishExpr& e) -> const Placement* {
    evaluatePolishInto(e, w, h, rotatable, options.shapeCap, scr.eval, scr.result);
    return &scr.result.placement;
  };
  auto move = [](PolishExpr& e, Rng& rng) { e.perturb(rng); };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = n;
  auto annealed =
      annealWithRestarts(PolishExpr::initial(n), model, decode, move, annealOpt);

  SlicingPlacerResult result;
  SlicedResult best = evaluatePolish(annealed.best, w, h, rotatable, options.shapeCap);
  result.placement = std::move(best.placement);
  result.area = best.area();
  result.hpwl = totalHpwl(result.placement, circuit.netPins());
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
