#include "slicing/slicing_placer.h"

#include <utility>
#include <vector>

#include "anneal/annealer.h"
#include "cost/cost_model.h"
#include "slicing/polish.h"

namespace als {

namespace {

/// SA state: the Polish expression plus, when shape moves are on, the
/// chosen realization index per module (0 = declared footprint).
struct SlicingState {
  PolishExpr expr;
  std::vector<std::uint8_t> shapeIdx;
};

}  // namespace

SlicingPlacerResult placeSlicingSA(const Circuit& circuit,
                                   const SlicingPlacerOptions& options) {
  const std::size_t n = circuit.moduleCount();
  std::vector<Coord> w(n), h(n);
  std::vector<bool> rotatable(n);
  for (std::size_t m = 0; m < n; ++m) {
    w[m] = circuit.module(m).w;
    h[m] = circuit.module(m).h;
    rotatable[m] = circuit.module(m).rotatable;
  }
  // No symmetry handling in the slicing baseline: area + wirelength (and,
  // when weighted, thermal mismatch) only.
  CostModel model(circuit,
                  makeObjective(circuit, {.wirelength = options.wirelengthWeight,
                                          .thermal = options.thermalWeight}));

  // See bstar/flat_placer.cpp: shape moves only exist when asked for AND
  // some module carries a curve; disabled runs draw the historical RNG
  // stream and decode the declared footprints, bit for bit.
  std::vector<ModuleId> shapy;
  for (ModuleId m = 0; m < n; ++m) {
    if (circuit.module(m).shapes.size() > 1) shapy.push_back(m);
  }
  const bool shapeMoves = options.shapeMoveProb > 0.0 && !shapy.empty();

  SlicingScratch localScratch;
  SlicingScratch& scr = options.scratch ? *options.scratch : localScratch;

  // Applies a state's chosen realizations to the shared dim buffers.  Only
  // modules with curves are touched; w/h otherwise keep the declared dims.
  auto applyShapes = [&](const SlicingState& s) {
    if (!shapeMoves) return;
    for (ModuleId m : shapy) {
      const ModuleShape& shape = circuit.module(m).shapes[s.shapeIdx[m]];
      w[m] = shape.w;
      h[m] = shape.h;
    }
  };

  // The best-area realization fills its root shape exactly and is anchored
  // at the origin, so the placement bounding box IS the chosen shape.  The
  // returned pointer aliases the scratch result buffer.
  auto decode = [&](const SlicingState& s) -> const Placement* {
    applyShapes(s);
    evaluatePolishInto(s.expr, w, h, rotatable, options.shapeCap, scr.eval,
                       scr.result);
    return &scr.result.placement;
  };
  auto move = [&](SlicingState& s, Rng& rng) {
    if (shapeMoves && rng.uniform() < options.shapeMoveProb) {
      ModuleId m = shapy[rng.index(shapy.size())];
      s.shapeIdx[m] = static_cast<std::uint8_t>(
          rng.index(circuit.module(m).shapes.size()));
      return;
    }
    s.expr.perturb(rng);
  };

  AnnealOptions annealOpt;
  annealOpt.maxSweeps = options.maxSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.seed = options.seed;
  annealOpt.coolingFactor = options.coolingFactor;
  annealOpt.movesPerTemp = options.movesPerTemp;
  annealOpt.sizeHint = n;
  SlicingState init{PolishExpr::initial(n), std::vector<std::uint8_t>(n, 0)};
  auto annealed = annealWithRestarts(init, model, decode, move, annealOpt);

  // Re-decode the winner through the shared scratch: the state was already
  // evaluated during the loop, so the warm buffers cover it allocation-free
  // (a fresh local scratch would allocate a best-state-dependent amount,
  // breaking the steady-state zero-alloc contract).
  SlicingPlacerResult result;
  applyShapes(annealed.best);
  evaluatePolishInto(annealed.best.expr, w, h, rotatable, options.shapeCap,
                     scr.eval, scr.result);
  result.placement = scr.result.placement;
  result.area = scr.result.area();
  result.hpwl = totalHpwl(result.placement, circuit.netPins());
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

}  // namespace als
