#include "slicing/slicing_placer.h"

#include <optional>
#include <utility>
#include <vector>

#include "anneal/annealer.h"
#include "cost/cost_model.h"
#include "slicing/polish.h"

namespace als {

namespace {

/// SA state: the Polish expression plus, when shape moves are on, the
/// chosen realization index per module (0 = declared footprint).
struct SlicingState {
  PolishExpr expr;
  std::vector<std::uint8_t> shapeIdx;
};

/// Decode: applies a state's chosen realizations to the shared dim buffers
/// (only modules with curves are touched; w/h otherwise keep the declared
/// dims), then derives the best-area realization of the slicing tree.  That
/// realization fills its root shape exactly and is anchored at the origin,
/// so the placement bounding box IS the chosen shape.  The returned pointer
/// aliases the scratch result buffer.
struct SlicingDecoder {
  const Circuit* circuit;
  SlicingScratch* scr;
  std::vector<Coord>* w;
  std::vector<Coord>* h;
  const std::vector<bool>* rotatable;
  const std::vector<ModuleId>* shapy;
  std::size_t shapeCap;
  bool shapeMoves;

  void applyShapes(const SlicingState& s) const {
    if (!shapeMoves) return;
    for (ModuleId m : *shapy) {
      const ModuleShape& shape = circuit->module(m).shapes[s.shapeIdx[m]];
      (*w)[m] = shape.w;
      (*h)[m] = shape.h;
    }
  }

  const Placement* operator()(const SlicingState& s) const {
    applyShapes(s);
    evaluatePolishInto(s.expr, *w, *h, *rotatable, shapeCap, scr->eval,
                       scr->result);
    return &scr->result.placement;
  }
};

/// The SA move as a named functor so the session can own it (same body and
/// RNG draws as the historical lambda in placeSlicingSA).
struct SlicingMove {
  const Circuit* circuit;
  const std::vector<ModuleId>* shapy;
  double shapeMoveProb;
  bool shapeMoves;

  void operator()(SlicingState& s, Rng& rng) const {
    if (shapeMoves && rng.uniform() < shapeMoveProb) {
      ModuleId m = (*shapy)[rng.index(shapy->size())];
      s.shapeIdx[m] = static_cast<std::uint8_t>(
          rng.index(circuit->module(m).shapes.size()));
      return;
    }
    s.expr.perturb(rng);
  }
};

}  // namespace

struct SlicingSession::Impl {
  using Eval = detail::IncrementalEval<CostModel, SlicingDecoder>;
  using Driver = detail::AnnealDriver<SlicingState, Eval, SlicingMove>;

  const Circuit& circuit;
  SlicingPlacerOptions options;
  std::size_t n;
  std::vector<Coord> w, h;
  std::vector<bool> rotatable;
  CostModel model;
  std::vector<ModuleId> shapy;
  SlicingScratch localScratch;
  SlicingScratch& scr;
  SlicingDecoder decode;
  std::optional<Driver> driver;

  Impl(const Circuit& c, const SlicingPlacerOptions& o, double tempScale)
      : circuit(c),
        options(o),
        n(c.moduleCount()),
        w(n),
        h(n),
        rotatable(n),
        // No symmetry handling in the slicing baseline: area + wirelength
        // (and, when weighted, thermal mismatch) only.
        model(c, makeObjective(c, {.wirelength = o.wirelengthWeight,
                                   .thermal = o.thermalWeight})),
        scr(o.scratch ? *o.scratch : localScratch) {
    for (std::size_t m = 0; m < n; ++m) {
      w[m] = circuit.module(m).w;
      h[m] = circuit.module(m).h;
      rotatable[m] = circuit.module(m).rotatable;
    }
    // See bstar/flat_placer.cpp: shape moves only exist when asked for AND
    // some module carries a curve; disabled runs draw the historical RNG
    // stream and decode the declared footprints, bit for bit.
    for (ModuleId m = 0; m < n; ++m) {
      if (circuit.module(m).shapes.size() > 1) shapy.push_back(m);
    }
    const bool shapeMoves = options.shapeMoveProb > 0.0 && !shapy.empty();

    decode = SlicingDecoder{&circuit,  &scr,   &w,
                            &h,        &rotatable, &shapy,
                            options.shapeCap, shapeMoves};

    AnnealOptions annealOpt;
    annealOpt.maxSweeps = options.maxSweeps;
    annealOpt.timeLimitSec = options.timeLimitSec;
    annealOpt.seed = options.seed;
    annealOpt.coolingFactor = options.coolingFactor;
    annealOpt.movesPerTemp = options.movesPerTemp;
    annealOpt.sizeHint = n;
    annealOpt.cancel = options.cancel;
    SlicingState init{PolishExpr::initial(n),
                      std::vector<std::uint8_t>(n, 0)};
    driver.emplace(init, Eval{model, decode},
                   SlicingMove{&circuit, &shapy, options.shapeMoveProb,
                               shapeMoves},
                   annealOpt, tempScale);
  }
};

SlicingSession::SlicingSession(const Circuit& circuit,
                               const SlicingPlacerOptions& options,
                               double tempScale)
    : impl_(std::make_unique<Impl>(circuit, options, tempScale)) {}

SlicingSession::~SlicingSession() = default;

std::size_t SlicingSession::runSweeps(std::size_t maxSweeps) {
  return impl_->driver->runSweeps(maxSweeps);
}

void SlicingSession::run() { impl_->driver->run(); }

bool SlicingSession::finished() const { return impl_->driver->finished(); }

double SlicingSession::currentCost() const {
  return impl_->driver->currentCost();
}

double SlicingSession::bestCost() const { return impl_->driver->bestCost(); }

double SlicingSession::temperature() const {
  return impl_->driver->temperature();
}

void SlicingSession::exchangeWith(SlicingSession& other) {
  Impl::Driver::exchange(*impl_->driver, *other.impl_->driver);
}

const Placement& SlicingSession::bestPlacement() {
  const Placement* p = impl_->decode(impl_->driver->bestState());
  return *p;
}

bool SlicingSession::reseedFromPlacement(const Placement&) { return false; }

SlicingPlacerResult SlicingSession::finish() {
  AnnealResult<SlicingState> annealed = impl_->driver->finalize();
  SlicingScratch& scr = impl_->scr;

  // Re-decode the winner through the shared scratch: the state was already
  // evaluated during the loop, so the warm buffers cover it allocation-free
  // (a fresh local scratch would allocate a best-state-dependent amount,
  // breaking the steady-state zero-alloc contract).
  SlicingPlacerResult result;
  impl_->decode(annealed.best);
  result.placement = scr.result.placement;
  result.area = scr.result.area();
  result.hpwl = totalHpwl(result.placement, impl_->circuit.netPins());
  result.cost = annealed.bestCost;
  result.movesTried = annealed.movesTried;
  result.sweeps = annealed.sweeps;
  result.seconds = annealed.seconds;
  return result;
}

SlicingPlacerResult placeSlicingSA(const Circuit& circuit,
                                   const SlicingPlacerOptions& options) {
  SlicingSession session(circuit, options);
  return session.finish();
}

}  // namespace als
