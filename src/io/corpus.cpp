#include "io/corpus.h"

#include <cstdio>
#include <cstdlib>

#include "io/benchmark_format.h"
#include "netlist/generators.h"

namespace als {

namespace {

// All dimensions in DBU (1 DBU = 1 nm; blocks are tens-of-um scale, like
// the library's generated circuits).

constexpr std::string_view kApte = R"(# apte-scale: 9 large, fairly uniform macro blocks, one symmetry group;
# cc_7/cc_8 dissipate (thermal-objective radiators).
ALSBENCH 1
Circuit apte
NumBlocks 9
Block cc_1 121000 114000 norotate
Block cc_2 121000 114000 norotate
Block cc_3 93000 87000 norotate
Block cc_4 93000 87000 norotate
Block cc_5 66000 152000
Block cc_6 66000 152000
Block cc_7 152000 84000
Block cc_8 115000 72000
Block cc_9 78000 60000
NumNets 7
Net n1 3 cc_1 cc_2 cc_5
Net n2 3 cc_3 cc_4 cc_7
Net n3 3 cc_5 cc_6 cc_9
Net n4 2 cc_7 cc_8
Net n5 3 cc_1 cc_3 cc_8
Net n6 3 cc_2 cc_4 cc_9
Net n7 3 cc_6 cc_8 cc_9
NumSymGroups 1
SymGroup core 2 0
SymPair cc_1 cc_2
SymPair cc_3 cc_4
NumPower 2
Power cc_7 0.9
Power cc_8 0.45
)";

constexpr std::string_view kXerox = R"(# xerox-scale: 10 blocks with strongly varying footprints; sb1/sb2 are
# soft blocks (area + aspect range) resolved by the parser.
ALSBENCH 1
Circuit xerox
NumBlocks 10
Block xr_1 226000 89000
Block xr_2 176000 121000
Block xr_3 121000 84000
Block xr_4 104000 104000 norotate
Block xr_5 84000 68000
Block xr_6 57000 126000
Block xr_7 144000 49000
Block xr_8 68000 52000
SoftBlock sb1 6400000000 0.5 2.0
SoftBlock sb2 2000000000 1.5 3.0
NumNets 8
Net n1 3 xr_1 xr_2 xr_5
Net n2 2 xr_2 xr_3
Net n3 3 xr_3 xr_4 sb1
Net n4 3 xr_4 xr_6 sb2
Net n5 2 xr_5 xr_7
Net n6 3 xr_6 xr_7 xr_8
Net n7 3 xr_1 xr_8 sb1
Net n8 2 sb1 sb2
)";

constexpr std::string_view kHp = R"(# hp-scale: 11 blocks, one pair-plus-self symmetry group; hp_4 both
# radiates and carries an explicit alternative-shape curve.
ALSBENCH 1
Circuit hp
NumBlocks 11
Block hp_1 60000 35000 norotate
Block hp_2 60000 35000 norotate
Block hp_3 40000 28000 norotate
Block hp_4 109000 45000
Block hp_5 81000 63000
Block hp_6 45000 108000
Block hp_7 63000 54000
Block hp_8 36000 27000
Block hp_9 72000 27000
Block hp_10 27000 90000
Block hp_11 54000 36000
NumNets 9
Net n1 3 hp_1 hp_2 hp_3
Net n2 3 hp_1 hp_4 hp_5
Net n3 3 hp_2 hp_4 hp_6
Net n4 2 hp_3 hp_7
Net n5 3 hp_5 hp_7 hp_9
Net n6 3 hp_6 hp_8 hp_10
Net n7 2 hp_8 hp_11
Net n8 3 hp_9 hp_10 hp_11
Net n9 4 hp_3 hp_4 hp_9 hp_11
NumSymGroups 1
SymGroup inpair 1 1
SymPair hp_1 hp_2
SymSelf hp_3
NumPower 1
Power hp_4 1.2
NumShapes 1
Shape hp_4 2 70000 70000 49000 100000
)";

constexpr std::string_view kAmi33 = R"(# ami33-scale: 33 mixed-size blocks, two symmetry groups; b9 and b12
# radiate, and b12/b21 carry alternative-shape curves.
ALSBENCH 1
Circuit ami33
NumBlocks 33
Block b1 31000 10000 norotate
Block b2 31000 10000 norotate
Block b3 55000 21000 norotate
Block b4 55000 21000 norotate
Block b5 12000 59000
Block b6 28000 9000
Block b7 48000 53000 norotate
Block b8 48000 53000 norotate
Block b9 44000 14000 norotate
Block b10 35000 35000
Block b11 15000 33000
Block b12 53000 56000
Block b13 46000 40000
Block b14 25000 29000
Block b15 9000 37000
Block b16 51000 11000
Block b17 57000 17000
Block b18 63000 18000
Block b19 16000 49000
Block b20 12000 35000
Block b21 43000 45000
Block b22 8000 53000
Block b23 42000 39000
Block b24 40000 21000
Block b25 26000 18000
Block b26 39000 9000
Block b27 49000 14000
Block b28 40000 15000
Block b29 28000 33000
Block b30 38000 8000
Block b31 14000 47000
Block b32 37000 37000
Block b33 44000 48000
NumNets 20
Net n1 4 b1 b2 b3 b4
Net n2 2 b3 b4
Net n3 2 b5 b9
Net n4 4 b7 b8 b9 b11
Net n5 3 b9 b12 b13
Net n6 2 b11 b13
Net n7 3 b13 b15 b17
Net n8 4 b15 b17 b18 b19
Net n9 2 b17 b21
Net n10 2 b19 b20
Net n11 3 b21 b22 b23
Net n12 3 b23 b24 b27
Net n13 3 b25 b27 b29
Net n14 3 b27 b28 b31
Net n15 3 b29 b31 b32
Net n16 2 b31 b33
Net n17 5 b3 b8 b13 b25 b26
Net n18 3 b1 b9 b11
Net n19 4 b10 b23 b27 b31
Net n20 3 b4 b24 b25
NumSymGroups 2
SymGroup sg1 2 0
SymPair b1 b2
SymPair b3 b4
SymGroup sg2 1 1
SymPair b7 b8
SymSelf b9
NumPower 2
Power b9 0.35
Power b12 0.6
NumShapes 2
Shape b12 3 42000 71000 59000 51000 66000 45000
Shape b21 2 39000 50000 48000 41000
)";

constexpr std::string_view kAmi49 = R"(# ami49-scale: 49 mixed-size blocks, one symmetric pair; m47 radiates.
ALSBENCH 1
Circuit ami49
NumBlocks 49
Block m1 42000 46000
Block m2 58000 52000
Block m3 39000 8000
Block m4 47000 8000
Block m5 16000 30000
Block m6 8000 33000
Block m7 54000 20000
Block m8 41000 22000
Block m9 43000 44000
Block m10 56000 64000 norotate
Block m11 56000 64000 norotate
Block m12 16000 49000
Block m13 53000 20000
Block m14 27000 28000
Block m15 32000 10000
Block m16 10000 36000
Block m17 61000 20000
Block m18 32000 17000
Block m19 33000 11000
Block m20 23000 13000
Block m21 52000 11000
Block m22 9000 50000
Block m23 11000 28000
Block m24 35000 11000
Block m25 56000 8000
Block m26 10000 33000
Block m27 20000 20000
Block m28 40000 39000
Block m29 19000 12000
Block m30 48000 43000
Block m31 38000 10000
Block m32 45000 11000
Block m33 23000 14000
Block m34 15000 57000
Block m35 31000 12000
Block m36 60000 11000
Block m37 25000 29000
Block m38 53000 12000
Block m39 35000 34000
Block m40 34000 31000
Block m41 24000 11000
Block m42 28000 26000
Block m43 10000 53000
Block m44 32000 13000
Block m45 64000 15000
Block m46 37000 35000
Block m47 56000 53000
Block m48 40000 40000
Block m49 29000 27000
NumNets 30
Net n1 2 m1 m2
Net n2 2 m3 m5
Net n3 3 m5 m6 m7
Net n4 4 m7 m9 m10 m11
Net n5 2 m9 m13
Net n6 2 m11 m12
Net n7 2 m13 m16
Net n8 4 m15 m16 m18 m19
Net n9 3 m17 m19 m20
Net n10 3 m19 m22 m23
Net n11 2 m21 m23
Net n12 3 m23 m25 m27
Net n13 3 m25 m26 m29
Net n14 3 m27 m29 m31
Net n15 3 m29 m30 m32
Net n16 2 m31 m34
Net n17 2 m33 m34
Net n18 3 m35 m37 m39
Net n19 4 m37 m38 m39 m41
Net n20 4 m39 m40 m41 m43
Net n21 4 m41 m42 m44 m45
Net n22 2 m43 m47
Net n23 2 m45 m46
Net n24 3 m47 m48 m49
Net n25 3 m21 m23 m25
Net n26 4 m4 m10 m15 m46
Net n27 5 m16 m19 m20 m33 m46
Net n28 3 m3 m13 m21
Net n29 3 m23 m37 m40
Net n30 3 m33 m41 m43
NumSymGroups 1
SymGroup sg1 1 0
SymPair m10 m11
NumPower 1
Power m47 0.8
)";

// The GSRC-scale texts are deterministic functions of (n, seed); built on
// first use and cached for the process (function-local statics, so the
// first call from any thread pays the generation cost exactly once).
std::string_view gsrcText(std::size_t n) {  // seed = n (distinct per size)
  switch (n) {
    case 100: {
      static const std::string text =
          writeBenchmark(makeGsrcLikeCircuit(100, 100)).text;
      return text;
    }
    case 200: {
      static const std::string text =
          writeBenchmark(makeGsrcLikeCircuit(200, 200)).text;
      return text;
    }
    case 300: {
      static const std::string text =
          writeBenchmark(makeGsrcLikeCircuit(300, 300)).text;
      return text;
    }
  }
  return {};
}

}  // namespace

std::vector<CorpusCircuit> allCorpusCircuits() {
  return {CorpusCircuit::Apte, CorpusCircuit::Xerox, CorpusCircuit::Hp,
          CorpusCircuit::Ami33, CorpusCircuit::Ami49};
}

std::vector<CorpusCircuit> largeCorpusCircuits() {
  return {CorpusCircuit::N100, CorpusCircuit::N200, CorpusCircuit::N300};
}

const char* corpusName(CorpusCircuit which) {
  switch (which) {
    case CorpusCircuit::Apte: return "apte";
    case CorpusCircuit::Xerox: return "xerox";
    case CorpusCircuit::Hp: return "hp";
    case CorpusCircuit::Ami33: return "ami33";
    case CorpusCircuit::Ami49: return "ami49";
    case CorpusCircuit::N100: return "n100";
    case CorpusCircuit::N200: return "n200";
    case CorpusCircuit::N300: return "n300";
  }
  return "?";
}

std::string_view corpusText(CorpusCircuit which) {
  switch (which) {
    case CorpusCircuit::Apte: return kApte;
    case CorpusCircuit::Xerox: return kXerox;
    case CorpusCircuit::Hp: return kHp;
    case CorpusCircuit::Ami33: return kAmi33;
    case CorpusCircuit::Ami49: return kAmi49;
    case CorpusCircuit::N100: return gsrcText(100);
    case CorpusCircuit::N200: return gsrcText(200);
    case CorpusCircuit::N300: return gsrcText(300);
  }
  return {};
}

bool corpusByName(std::string_view name, CorpusCircuit* out) {
  for (CorpusCircuit which : allCorpusCircuits()) {
    if (name == corpusName(which)) {
      *out = which;
      return true;
    }
  }
  for (CorpusCircuit which : largeCorpusCircuits()) {
    if (name == corpusName(which)) {
      *out = which;
      return true;
    }
  }
  return false;
}

Circuit loadCorpusCircuit(CorpusCircuit which) {
  ParseResult parsed = parseBenchmark(corpusText(which));
  if (!parsed.ok()) {
    std::fprintf(stderr, "embedded corpus circuit '%s' fails to parse: %s\n",
                 corpusName(which), parsed.error.c_str());
    std::abort();
  }
  return std::move(parsed.circuit);
}

}  // namespace als
