#include "io/benchmark_format.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "shapefn/shape_function.h"

namespace als {

namespace {

// Sanity caps: large enough for any real benchmark, small enough that a
// corrupted count can neither overflow area arithmetic nor drive the parse
// loops into pathological work.
constexpr std::size_t kMaxCount = 1'000'000;
constexpr Coord kMaxCoord = 1'000'000'000;      // 1 m in DBU (nm)
constexpr double kMaxSoftArea = 1e15;           // DBU^2
constexpr double kMinAspect = 1e-3, kMaxAspect = 1e3;
constexpr double kMaxPowerW = 1e6;              // per-block dissipation cap
constexpr std::size_t kMaxShapeAlts = 64;       // alternatives per Shape line
constexpr std::size_t kSoftShapeCap = 8;        // auto-derived soft curves

struct Line {
  std::size_t number = 0;                // 1-based line in the source text
  std::vector<std::string_view> tokens;  // whitespace-split, comment-stripped
  std::string_view rest1;                // text after the first token
};

bool isSpace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && isSpace(s.front())) s.remove_prefix(1);
  while (!s.empty() && isSpace(s.back())) s.remove_suffix(1);
  return s;
}

/// Splits `text` into non-empty, comment-stripped token lines.
std::vector<Line> tokenize(std::string_view text) {
  std::vector<Line> lines;
  std::size_t lineNo = 0;
  while (!text.empty()) {
    ++lineNo;
    std::size_t eol = text.find('\n');
    std::string_view raw = text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    if (std::size_t hash = raw.find('#'); hash != std::string_view::npos) {
      raw = raw.substr(0, hash);
    }
    raw = trimmed(raw);
    if (raw.empty()) continue;

    Line line;
    line.number = lineNo;
    std::string_view cursor = raw;
    while (!cursor.empty()) {
      std::size_t start = 0;
      while (start < cursor.size() && isSpace(cursor[start])) ++start;
      cursor.remove_prefix(start);
      if (cursor.empty()) break;
      std::size_t end = 0;
      while (end < cursor.size() && !isSpace(cursor[end])) ++end;
      line.tokens.push_back(cursor.substr(0, end));
      if (line.tokens.size() == 1) line.rest1 = trimmed(cursor.substr(end));
      cursor.remove_prefix(end);
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : lines_(tokenize(text)) {}

  ParseResult run() {
    ParseResult out;
    if (!parseHeader() || !parseBlocks() || !parseNets() || !parseSymGroups() ||
        !parsePower() || !parseShapes() || !parseHierarchy()) {
      // Every failure path should have recorded a message; the fallback
      // guarantees ok() can never be true for a rejected file.
      out.error = error_.empty() ? "malformed benchmark text" : error_;
      return out;
    }
    if (next_ < lines_.size()) {
      out.error = fail(lines_[next_], "unexpected trailing content '" +
                                          std::string(lines_[next_].tokens[0]) +
                                          "'");
      return out;
    }
    deriveSoftCurves();
    if (circuit_.hierarchy().empty()) buildCanonicalHierarchy(circuit_);
    std::string why;
    if (!circuit_.validate(&why)) {
      out.error = "circuit fails validation: " + why;
      return out;
    }
    out.circuit = std::move(circuit_);
    return out;
  }

 private:
  // --- low-level helpers -------------------------------------------------

  std::string fail(const Line& line, std::string message) {
    return "line " + std::to_string(line.number) + ": " + std::move(message);
  }

  bool error(const Line& line, std::string message) {
    if (error_.empty()) error_ = fail(line, std::move(message));
    return false;
  }

  bool atEnd() const { return next_ >= lines_.size(); }

  /// The next line iff its keyword matches; does not consume.
  const Line* peek(std::string_view keyword) const {
    if (atEnd() || lines_[next_].tokens[0] != keyword) return nullptr;
    return &lines_[next_];
  }

  /// Consumes and returns the next line, which must start with `keyword`.
  const Line* expect(std::string_view keyword) {
    if (atEnd()) {
      if (error_.empty()) {
        error_ = "unexpected end of file: expected '" + std::string(keyword) + "'";
      }
      return nullptr;
    }
    const Line& line = lines_[next_];
    if (line.tokens[0] != keyword) {
      error(line, "expected '" + std::string(keyword) + "', got '" +
                      std::string(line.tokens[0]) + "'");
      return nullptr;
    }
    ++next_;
    return &line;
  }

  bool parseSize(const Line& line, std::string_view token, std::size_t max,
                 std::size_t* out) {
    std::uint64_t v = 0;
    auto [p, ec] = std::from_chars(token.begin(), token.end(), v);
    if (ec != std::errc() || p != token.end() || v > max) {
      return error(line, "bad count '" + std::string(token) + "'");
    }
    *out = static_cast<std::size_t>(v);
    return true;
  }

  bool parseCoord(const Line& line, std::string_view token, Coord* out) {
    Coord v = 0;
    auto [p, ec] = std::from_chars(token.begin(), token.end(), v);
    if (ec != std::errc() || p != token.end() || v <= 0 || v > kMaxCoord) {
      return error(line, "bad dimension '" + std::string(token) + "'");
    }
    *out = v;
    return true;
  }

  bool parseDouble(const Line& line, std::string_view token, double lo,
                   double hi, double* out) {
    double v = 0.0;
    auto [p, ec] = std::from_chars(token.begin(), token.end(), v);
    if (ec != std::errc() || p != token.end() || !std::isfinite(v) || v < lo ||
        v > hi) {
      return error(line, "bad number '" + std::string(token) + "'");
    }
    *out = v;
    return true;
  }

  bool lookupBlock(const Line& line, std::string_view name, ModuleId* out) {
    auto it = blockByName_.find(std::string(name));
    if (it == blockByName_.end()) {
      return error(line, "unknown block '" + std::string(name) + "'");
    }
    *out = it->second;
    return true;
  }

  // --- sections ----------------------------------------------------------

  bool parseHeader() {
    const Line* magic = expect("ALSBENCH");
    if (!magic) return false;
    if (magic->tokens.size() != 2 || magic->tokens[1] != "1") {
      return error(*magic, "unsupported format version (expected 'ALSBENCH 1')");
    }
    const Line* name = expect("Circuit");
    if (!name) return false;
    if (name->rest1.empty()) return error(*name, "missing circuit name");
    circuit_ = Circuit(std::string(name->rest1));
    return true;
  }

  bool parseBlocks() {
    const Line* count = expect("NumBlocks");
    if (!count) return false;
    std::size_t n = 0;
    if (count->tokens.size() != 2 ||
        !parseSize(*count, count->tokens[1], kMaxCount, &n)) {
      return error(*count, "bad NumBlocks line");
    }
    if (n == 0) return error(*count, "NumBlocks must be at least 1");

    for (std::size_t i = 0; i < n; ++i) {
      if (atEnd()) {
        error_ = "unexpected end of file: expected " + std::to_string(n - i) +
                 " more block line(s)";
        return false;
      }
      const Line& line = lines_[next_++];
      std::string_view kind = line.tokens[0];
      bool soft = kind == "SoftBlock";
      if (!soft && kind != "Block") {
        return error(line, "expected Block/SoftBlock, got '" +
                               std::string(kind) + "'");
      }
      std::size_t base = soft ? 5 : 4;  // tokens before the optional flag
      bool norotate = line.tokens.size() == base + 1 &&
                      line.tokens[base] == "norotate";
      if (line.tokens.size() != base && !norotate) {
        return error(line, std::string(kind) + " needs 'name " +
                               (soft ? "area loAspect hiAspect" : "w h") +
                               " [norotate]'");
      }
      std::string name(line.tokens[1]);
      Coord w = 0, h = 0;
      if (soft) {
        double area = 0.0, lo = 0.0, hi = 0.0;
        if (!parseDouble(line, line.tokens[2], 1.0, kMaxSoftArea, &area) ||
            !parseDouble(line, line.tokens[3], kMinAspect, kMaxAspect, &lo) ||
            !parseDouble(line, line.tokens[4], kMinAspect, kMaxAspect, &hi)) {
          return false;
        }
        if (lo > hi) return error(line, "aspect range is empty (lo > hi)");
        // Deterministic soft resolution: the in-range aspect closest to
        // square, w = round(sqrt(area * aspect)), h covering the area.
        double aspect = std::clamp(1.0, lo, hi);
        w = std::max<Coord>(1, std::llround(std::sqrt(area * aspect)));
        h = std::max<Coord>(1, (static_cast<Coord>(area) + w - 1) / w);
        if (w > kMaxCoord || h > kMaxCoord) {
          return error(line, "soft block resolves beyond the coordinate cap");
        }
        softSpecs_.push_back({circuit_.moduleCount(), area, lo, hi});
      } else if (!parseCoord(line, line.tokens[2], &w) ||
                 !parseCoord(line, line.tokens[3], &h)) {
        return false;
      }
      if (!blockByName_.emplace(name, circuit_.moduleCount()).second) {
        return error(line, "duplicate block name '" + name + "'");
      }
      circuit_.addModule(std::move(name), w, h, !norotate);
    }
    return true;
  }

  bool parseNets() {
    const Line* count = peek("NumNets") ? expect("NumNets") : nullptr;
    if (!count) return true;  // optional section
    std::size_t n = 0;
    if (count->tokens.size() != 2 ||
        !parseSize(*count, count->tokens[1], kMaxCount, &n)) {
      return error(*count, "bad NumNets line");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Line* line = expect("Net");
      if (!line) return false;
      if (line->tokens.size() < 3) return error(*line, "truncated Net line");
      std::size_t npins = 0;
      if (!parseSize(*line, line->tokens[2], kMaxCount, &npins) || npins == 0) {
        return error(*line, "bad pin count");
      }
      // Tokens: Net name npins pin... [weight]
      if (line->tokens.size() < 3 + npins ||
          line->tokens.size() > 3 + npins + 1) {
        return error(*line, "pin list does not match the declared pin count");
      }
      std::vector<ModuleId> pins(npins);
      for (std::size_t p = 0; p < npins; ++p) {
        if (!lookupBlock(*line, line->tokens[3 + p], &pins[p])) return false;
      }
      double weight = 1.0;
      if (line->tokens.size() == 3 + npins + 1 &&
          !parseDouble(*line, line->tokens[3 + npins], 0.0, 1e9, &weight)) {
        return false;
      }
      circuit_.addNet(std::string(line->tokens[1]), std::move(pins), weight);
    }
    return true;
  }

  bool parseSymGroups() {
    const Line* count = peek("NumSymGroups") ? expect("NumSymGroups") : nullptr;
    if (!count) return true;  // optional section
    std::size_t n = 0;
    if (count->tokens.size() != 2 ||
        !parseSize(*count, count->tokens[1], kMaxCount, &n)) {
      return error(*count, "bad NumSymGroups line");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Line* head = expect("SymGroup");
      if (!head) return false;
      std::size_t npairs = 0, nselfs = 0;
      if (head->tokens.size() != 4 ||
          !parseSize(*head, head->tokens[2], kMaxCount, &npairs) ||
          !parseSize(*head, head->tokens[3], kMaxCount, &nselfs)) {
        return error(*head, "SymGroup needs 'name npairs nselfs'");
      }
      if (npairs + nselfs == 0) return error(*head, "empty symmetry group");
      SymmetryGroup group;
      group.name = std::string(head->tokens[1]);
      if (!symByName_.emplace(group.name, i).second) {
        return error(*head, "duplicate symmetry group name '" + group.name + "'");
      }
      for (std::size_t p = 0; p < npairs; ++p) {
        const Line* line = expect("SymPair");
        if (!line) return false;
        SymPair pair;
        if (line->tokens.size() != 3) {
          return error(*line, "SymPair needs two block names");
        }
        if (!lookupBlock(*line, line->tokens[1], &pair.a) ||
            !lookupBlock(*line, line->tokens[2], &pair.b)) {
          return false;
        }
        if (pair.a == pair.b) return error(*line, "pair of a block with itself");
        group.pairs.push_back(pair);
      }
      for (std::size_t s = 0; s < nselfs; ++s) {
        const Line* line = expect("SymSelf");
        if (!line) return false;
        ModuleId m = 0;
        if (line->tokens.size() != 2) {
          return error(*line, "SymSelf needs one block name");
        }
        if (!lookupBlock(*line, line->tokens[1], &m)) return false;
        group.selfs.push_back(m);
      }
      circuit_.addSymmetryGroup(std::move(group));
    }
    return true;
  }

  bool parsePower() {
    const Line* count = peek("NumPower") ? expect("NumPower") : nullptr;
    if (!count) return true;  // optional section
    std::size_t n = 0;
    if (count->tokens.size() != 2 ||
        !parseSize(*count, count->tokens[1], kMaxCount, &n)) {
      return error(*count, "bad NumPower line");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Line* line = expect("Power");
      if (!line) return false;
      ModuleId m = 0;
      if (line->tokens.size() != 3 || !lookupBlock(*line, line->tokens[1], &m)) {
        return error(*line, "Power needs 'blockname watts'");
      }
      double watts = 0.0;
      if (!parseDouble(*line, line->tokens[2], 0.0, kMaxPowerW, &watts)) {
        return false;
      }
      if (watts <= 0.0) return error(*line, "power must be positive");
      Module& mod = circuit_.module(m);
      if (mod.powerW != 0.0) {
        return error(*line, "duplicate Power for block '" +
                                std::string(line->tokens[1]) + "'");
      }
      mod.powerW = watts;
    }
    return true;
  }

  bool parseShapes() {
    const Line* count = peek("NumShapes") ? expect("NumShapes") : nullptr;
    if (!count) return true;  // optional section
    std::size_t n = 0;
    if (count->tokens.size() != 2 ||
        !parseSize(*count, count->tokens[1], kMaxCount, &n)) {
      return error(*count, "bad NumShapes line");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Line* line = expect("Shape");
      if (!line) return false;
      if (line->tokens.size() < 3) return error(*line, "truncated Shape line");
      ModuleId m = 0;
      if (!lookupBlock(*line, line->tokens[1], &m)) return false;
      std::size_t k = 0;
      if (!parseSize(*line, line->tokens[2], kMaxShapeAlts, &k) || k == 0) {
        return error(*line, "bad shape count");
      }
      // Tokens: Shape name k w1 h1 ... wk hk — the declared footprint is NOT
      // listed; it always opens the realized curve (Module::shapes[0]).
      if (line->tokens.size() != 3 + 2 * k) {
        return error(*line, "shape list does not match the declared count");
      }
      Module& mod = circuit_.module(m);
      if (!mod.shapes.empty()) {
        return error(*line, "duplicate Shape for block '" +
                                std::string(line->tokens[1]) + "'");
      }
      mod.shapes.reserve(k + 1);
      mod.shapes.push_back({mod.w, mod.h});
      for (std::size_t s = 0; s < k; ++s) {
        ModuleShape alt;
        if (!parseCoord(*line, line->tokens[3 + 2 * s], &alt.w) ||
            !parseCoord(*line, line->tokens[4 + 2 * s], &alt.h)) {
          return false;
        }
        mod.shapes.push_back(alt);
      }
    }
    return true;
  }

  /// Soft blocks without an explicit Shape line get a deterministic curve
  /// discretized from their declared (area, aspect range) — after this the
  /// circuit carries everything the text said, and writeBenchmark emits the
  /// curve explicitly so write -> parse -> write is byte-stable even though
  /// the SoftBlock line itself is resolved lossily to a Block.
  void deriveSoftCurves() {
    for (const SoftSpec& spec : softSpecs_) {
      Module& mod = circuit_.module(spec.module);
      if (!mod.shapes.empty()) continue;  // explicit Shape section wins
      std::vector<ModuleShape> curve =
          discretizeSoftShape(spec.area, spec.loAspect, spec.hiAspect,
                              kSoftShapeCap);
      ModuleShape footprint{mod.w, mod.h};
      std::erase(curve, footprint);
      if (curve.empty()) continue;  // the footprint is the only realization
      mod.shapes.reserve(curve.size() + 1);
      mod.shapes.push_back(footprint);
      for (const ModuleShape& s : curve) mod.shapes.push_back(s);
    }
  }

  bool parseHierarchy() {
    const Line* count = peek("NumHierNodes") ? expect("NumHierNodes") : nullptr;
    if (!count) return true;  // optional section -> canonical hierarchy
    std::size_t n = 0;
    if (count->tokens.size() != 2 ||
        !parseSize(*count, count->tokens[1], kMaxCount, &n)) {
      return error(*count, "bad NumHierNodes line");
    }
    if (n == 0) return true;

    HierTree& tree = circuit_.hierarchy();
    std::vector<bool> claimed(n, false);          // node already has a parent
    std::vector<bool> blockLeafed(circuit_.moduleCount(), false);

    for (std::size_t i = 0; i < n; ++i) {
      if (atEnd()) {
        error_ = "unexpected end of file: expected " + std::to_string(n - i) +
                 " more hierarchy node line(s)";
        return false;
      }
      const Line& line = lines_[next_++];
      std::string_view kind = line.tokens[0];
      if (kind == "Leaf") {
        ModuleId m = 0;
        if (line.tokens.size() != 3 || !lookupBlock(line, line.tokens[2], &m)) {
          return error(line, "Leaf needs 'nodename blockname'");
        }
        if (blockLeafed[m]) {
          return error(line, "block '" + std::string(line.tokens[2]) +
                                 "' has two hierarchy leaves");
        }
        blockLeafed[m] = true;
        tree.addLeaf(std::string(line.tokens[1]), m);
      } else if (kind == "Group") {
        if (line.tokens.size() < 5) return error(line, "truncated Group line");
        GroupConstraint constraint = GroupConstraint::None;
        if (!parseConstraint(line, line.tokens[2], &constraint)) return false;
        std::size_t nchildren = 0;
        if (!parseSize(line, line.tokens[4], kMaxCount, &nchildren) ||
            nchildren == 0) {
          return error(line, "bad child count");
        }
        if (line.tokens.size() != 5 + nchildren) {
          return error(line, "child list does not match the declared count");
        }
        std::vector<HierNodeId> children(nchildren);
        for (std::size_t c = 0; c < nchildren; ++c) {
          std::size_t id = 0;
          if (!parseSize(line, line.tokens[5 + c], kMaxCount, &id) || id >= i) {
            return error(line, "child id must reference an earlier node");
          }
          if (claimed[id]) {
            return error(line, "node " + std::to_string(id) +
                                   " already has a parent");
          }
          claimed[id] = true;
          children[c] = id;
        }
        if (!checkGroupNode(line, constraint, line.tokens[3], children)) {
          return false;
        }
        HierNodeId id = tree.addGroup(std::string(line.tokens[1]),
                                      std::move(children), constraint);
        if (line.tokens[3] != "-") {
          tree.node(id).symGroup = symByName_.at(std::string(line.tokens[3]));
        }
      } else {
        return error(line, "expected Leaf/Group, got '" + std::string(kind) + "'");
      }
    }

    const Line* root = expect("Root");
    if (!root) return false;
    std::size_t rootId = 0;
    if (root->tokens.size() != 2 ||
        !parseSize(*root, root->tokens[1], kMaxCount, &rootId) || rootId >= n) {
      return error(*root, "bad root node id");
    }
    if (claimed[rootId]) return error(*root, "root node has a parent");
    for (std::size_t id = 0; id < n; ++id) {
      if (id != rootId && !claimed[id]) {
        return error(*root, "node " + std::to_string(id) +
                                " is not reachable from the root");
      }
    }
    for (ModuleId m = 0; m < circuit_.moduleCount(); ++m) {
      if (!blockLeafed[m]) {
        return error(*root, "block '" + circuit_.module(m).name +
                                "' has no hierarchy leaf");
      }
    }
    tree.setRoot(rootId);
    return true;
  }

  bool parseConstraint(const Line& line, std::string_view token,
                       GroupConstraint* out) {
    if (token == "none") *out = GroupConstraint::None;
    else if (token == "symmetry") *out = GroupConstraint::Symmetry;
    else if (token == "common-centroid") *out = GroupConstraint::CommonCentroid;
    else if (token == "proximity") *out = GroupConstraint::Proximity;
    else return error(line, "unknown constraint '" + std::string(token) + "'");
    return true;
  }

  /// Validates the structural invariants the hierarchical placers otherwise
  /// enforce with asserts, so a crafted file cannot crash a Release binary.
  bool checkGroupNode(const Line& line, GroupConstraint constraint,
                      std::string_view symName,
                      const std::vector<HierNodeId>& children) {
    const HierTree& tree = circuit_.hierarchy();
    if (constraint != GroupConstraint::Symmetry) {
      if (symName != "-") {
        return error(line, "only symmetry nodes may name a symmetry group");
      }
      if (constraint == GroupConstraint::CommonCentroid) {
        for (HierNodeId c : children) {
          if (!tree.node(c).isLeaf()) {
            return error(line, "common-centroid children must be leaves");
          }
        }
      }
      return true;
    }

    auto it = symByName_.find(std::string(symName));
    if (it == symByName_.end()) {
      return error(line, "symmetry node needs a declared symmetry group, got '" +
                             std::string(symName) + "'");
    }
    const SymmetryGroup& group = circuit_.symmetryGroup(it->second);

    // The ASF island places exactly the group's members as leaf items plus
    // the sub-circuit children as mirrored macro pairs: direct leaf children
    // must equal the member set and sub-circuits must pair up two by two
    // with matching module counts (the paper's hierarchical symmetry).
    std::set<ModuleId> leafChildren;
    std::vector<HierNodeId> subs;
    for (HierNodeId c : children) {
      if (tree.node(c).isLeaf()) {
        leafChildren.insert(*tree.node(c).module);
      } else {
        subs.push_back(c);
      }
    }
    std::vector<ModuleId> members = group.members();
    std::set<ModuleId> memberSet(members.begin(), members.end());
    if (leafChildren != memberSet) {
      return error(line, "symmetry node leaf children must be exactly the "
                         "members of group '" + std::string(symName) + "'");
    }
    if (subs.size() % 2 != 0) {
      return error(line, "symmetry node needs an even number of sub-circuits");
    }
    for (std::size_t p = 0; p + 1 < subs.size(); p += 2) {
      if (tree.leavesUnder(subs[p]).size() !=
          tree.leavesUnder(subs[p + 1]).size()) {
        return error(line, "paired sub-circuits must have equal module counts");
      }
    }
    return true;
  }

  /// A SoftBlock's declared target, remembered until the Shape section has
  /// been read (an explicit curve suppresses the auto-derived one).
  struct SoftSpec {
    ModuleId module = 0;
    double area = 0.0, loAspect = 0.0, hiAspect = 0.0;
  };

  std::vector<Line> lines_;
  std::size_t next_ = 0;
  std::string error_;
  Circuit circuit_;
  std::map<std::string, ModuleId> blockByName_;
  std::map<std::string, std::size_t> symByName_;
  std::vector<SoftSpec> softSpecs_;
};

/// Serializable token: non-empty, no whitespace, no comment introducer.
bool tokenOk(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (isSpace(c) || c == '\n' || c == '#') return false;
  }
  return true;
}

void appendWeight(std::string& out, double weight) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", weight);
  out += buf;
}

}  // namespace

ParseResult parseBenchmark(std::string_view text) {
  return Parser(text).run();
}

ParseResult parseBenchmarkFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ParseResult out;
    out.error = "cannot open '" + path + "' for reading";
    return out;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  bool readOk = std::ferror(f) == 0;
  std::fclose(f);
  if (!readOk) {
    ParseResult out;
    out.error = "read error on '" + path + "'";
    return out;
  }
  return parseBenchmark(text);
}

WriteResult writeBenchmark(const Circuit& circuit) {
  WriteResult out;
  auto fail = [&](std::string message) {
    out.error = std::move(message);
    out.text.clear();
    return out;
  };

  // The parser reads the name as the trimmed rest of the line, so padding
  // or whitespace-only names would not round-trip.
  const std::string& cname = circuit.name();
  if (cname.empty() || cname.find('\n') != std::string::npos ||
      cname.find('#') != std::string::npos || trimmed(cname) != cname) {
    return fail("circuit name is not serializable");
  }
  std::set<std::string_view> blockNames, symNames;
  for (const Module& m : circuit.modules()) {
    if (!tokenOk(m.name)) return fail("block name '" + m.name + "' is not serializable");
    if (!blockNames.insert(m.name).second) {
      return fail("duplicate block name '" + m.name + "'");
    }
  }
  for (const SymmetryGroup& g : circuit.symmetryGroups()) {
    if (!tokenOk(g.name)) return fail("group name '" + g.name + "' is not serializable");
    if (!symNames.insert(g.name).second) {
      return fail("duplicate symmetry group name '" + g.name + "'");
    }
  }
  if (circuit.moduleCount() == 0) return fail("circuit has no modules");

  std::string& text = out.text;
  text += "ALSBENCH 1\n";
  text += "Circuit " + cname + "\n";

  text += "NumBlocks " + std::to_string(circuit.moduleCount()) + "\n";
  for (const Module& m : circuit.modules()) {
    text += "Block " + m.name + " " + std::to_string(m.w) + " " +
            std::to_string(m.h);
    if (!m.rotatable) text += " norotate";
    text += "\n";
  }

  text += "NumNets " + std::to_string(circuit.nets().size()) + "\n";
  for (const Net& n : circuit.nets()) {
    if (!tokenOk(n.name)) return fail("net name '" + n.name + "' is not serializable");
    text += "Net " + n.name + " " + std::to_string(n.pins.size());
    for (ModuleId p : n.pins) {
      if (p >= circuit.moduleCount()) return fail("net '" + n.name + "' has out-of-range pin");
      text += " " + circuit.module(p).name;
    }
    text += " ";
    appendWeight(text, n.weight);
    text += "\n";
  }

  text += "NumSymGroups " + std::to_string(circuit.symmetryGroups().size()) + "\n";
  for (const SymmetryGroup& g : circuit.symmetryGroups()) {
    text += "SymGroup " + g.name + " " + std::to_string(g.pairs.size()) + " " +
            std::to_string(g.selfs.size()) + "\n";
    for (const SymPair& p : g.pairs) {
      if (p.a >= circuit.moduleCount() || p.b >= circuit.moduleCount()) {
        return fail("group '" + g.name + "' has out-of-range member");
      }
      text += "SymPair " + circuit.module(p.a).name + " " +
              circuit.module(p.b).name + "\n";
    }
    for (ModuleId s : g.selfs) {
      if (s >= circuit.moduleCount()) {
        return fail("group '" + g.name + "' has out-of-range member");
      }
      text += "SymSelf " + circuit.module(s).name + "\n";
    }
  }

  // Power and Shape sections are emitted only when some block carries the
  // annotation, so files without them stay byte-identical to the historical
  // format.  Shape lines list the alternatives (shapes[1..]); shapes[0] is
  // the Block line's footprint by the Module::shapes invariant.
  std::size_t numPower = 0, numShapes = 0;
  for (const Module& m : circuit.modules()) {
    if (m.powerW != 0.0 &&
        (!std::isfinite(m.powerW) || m.powerW < 0.0 || m.powerW > kMaxPowerW)) {
      return fail("block '" + m.name + "' has non-serializable power");
    }
    if (m.powerW > 0.0) ++numPower;
    if (m.shapes.size() > 1) ++numShapes;
  }
  if (numPower > 0) {
    text += "NumPower " + std::to_string(numPower) + "\n";
    for (const Module& m : circuit.modules()) {
      if (m.powerW <= 0.0) continue;
      text += "Power " + m.name + " ";
      appendWeight(text, m.powerW);
      text += "\n";
    }
  }
  if (numShapes > 0) {
    text += "NumShapes " + std::to_string(numShapes) + "\n";
    for (const Module& m : circuit.modules()) {
      if (m.shapes.size() <= 1) continue;
      if (m.shapes[0] != ModuleShape{m.w, m.h}) {
        return fail("shape curve of '" + m.name +
                    "' does not open with the declared footprint");
      }
      if (m.shapes.size() - 1 > kMaxShapeAlts) {
        return fail("block '" + m.name + "' has too many shape alternatives");
      }
      text += "Shape " + m.name + " " + std::to_string(m.shapes.size() - 1);
      for (std::size_t s = 1; s < m.shapes.size(); ++s) {
        if (m.shapes[s].w <= 0 || m.shapes[s].h <= 0 ||
            m.shapes[s].w > kMaxCoord || m.shapes[s].h > kMaxCoord) {
          return fail("block '" + m.name + "' has a non-serializable shape");
        }
        text += " " + std::to_string(m.shapes[s].w) + " " +
                std::to_string(m.shapes[s].h);
      }
      text += "\n";
    }
  }

  const HierTree& tree = circuit.hierarchy();
  if (!tree.empty()) {
    text += "NumHierNodes " + std::to_string(tree.nodeCount()) + "\n";
    for (HierNodeId id = 0; id < tree.nodeCount(); ++id) {
      const HierNode& node = tree.node(id);
      if (!tokenOk(node.name)) {
        return fail("hierarchy node name '" + node.name + "' is not serializable");
      }
      if (node.isLeaf()) {
        if (*node.module >= circuit.moduleCount()) {
          return fail("hierarchy leaf '" + node.name + "' has out-of-range module");
        }
        text += "Leaf " + node.name + " " + circuit.module(*node.module).name + "\n";
      } else {
        if (node.symGroup.has_value() !=
            (node.constraint == GroupConstraint::Symmetry)) {
          return fail("hierarchy node '" + node.name +
                      "' pairs a symmetry group with a non-symmetry constraint");
        }
        text += "Group " + node.name + " " + toString(node.constraint) + " ";
        if (node.symGroup) {
          if (*node.symGroup >= circuit.symmetryGroups().size()) {
            return fail("hierarchy node '" + node.name + "' has out-of-range group");
          }
          text += circuit.symmetryGroup(*node.symGroup).name;
        } else {
          text += "-";
        }
        text += " " + std::to_string(node.children.size());
        for (HierNodeId c : node.children) {
          if (c >= id) return fail("hierarchy children must precede their parent");
          text += " " + std::to_string(c);
        }
        text += "\n";
      }
    }
    text += "Root " + std::to_string(tree.root()) + "\n";
  }
  return out;
}

bool writeBenchmarkFile(const std::string& path, const Circuit& circuit,
                        std::string* error) {
  WriteResult result = writeBenchmark(circuit);
  if (!result.ok()) {
    if (error) *error = result.error;
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  bool ok = std::fwrite(result.text.data(), 1, result.text.size(), f) ==
            result.text.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok && error) *error = "short write to '" + path + "'";
  return ok;
}

void buildCanonicalHierarchy(Circuit& circuit) {
  circuit.hierarchy() = HierTree();
  HierTree& tree = circuit.hierarchy();

  // One leaf per module: leaf node id == module id.
  std::vector<bool> grouped(circuit.moduleCount(), false);
  for (ModuleId m = 0; m < circuit.moduleCount(); ++m) {
    tree.addLeaf(circuit.module(m).name, m);
  }

  std::vector<HierNodeId> tops;
  for (std::size_t g = 0; g < circuit.symmetryGroups().size(); ++g) {
    const SymmetryGroup& group = circuit.symmetryGroup(g);
    std::vector<HierNodeId> children;
    for (ModuleId m : group.members()) {
      children.push_back(m);  // leaf ids equal module ids
      grouped[m] = true;
    }
    HierNodeId node = tree.addGroup(group.name, std::move(children),
                                    GroupConstraint::Symmetry);
    tree.node(node).symGroup = g;
    tops.push_back(node);
  }

  // Free modules, clustered four at a time in id order: small basic sets
  // keep the deterministic placer's exhaustive enumeration tractable.
  std::vector<HierNodeId> chunk;
  std::size_t clusterIndex = 0;
  auto flushChunk = [&] {
    if (chunk.empty()) return;
    if (chunk.size() == 1) {
      tops.push_back(chunk.front());
    } else {
      tops.push_back(tree.addGroup("cluster" + std::to_string(clusterIndex++),
                                   chunk, GroupConstraint::None));
    }
    chunk.clear();
  };
  for (ModuleId m = 0; m < circuit.moduleCount(); ++m) {
    if (grouped[m]) continue;
    chunk.push_back(m);
    if (chunk.size() == 4) flushChunk();
  }
  flushChunk();

  if (tops.size() == 1 && !tree.node(tops.front()).isLeaf()) {
    tree.setRoot(tops.front());
  } else {
    tree.setRoot(tree.addGroup("top", std::move(tops), GroupConstraint::None));
  }
}

}  // namespace als
