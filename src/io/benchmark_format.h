// Benchmark exchange I/O: a Bookshelf/YAL-style text format mapped onto the
// library's Circuit/Hierarchy model, so the engine can place real benchmark
// files (MCNC-style block sets) instead of only in-process generated
// netlists.
//
// The format ("ALSBENCH 1") is line-oriented; `#` starts a comment, blank
// lines are ignored, and sections appear in a fixed order:
//
//   ALSBENCH 1
//   Circuit <name ...>                       # rest of line, spaces allowed
//   NumBlocks <n>
//   Block <name> <w> <h> [norotate]          # hard block, DBU
//   SoftBlock <name> <area> <loAspect> <hiAspect> [norotate]
//   NumNets <n>                              # optional section (default 0)
//   Net <name> <npins> <blockname...> [weight]
//   NumSymGroups <n>                         # optional section (default 0)
//   SymGroup <name> <npairs> <nselfs>
//   SymPair <a> <b>
//   SymSelf <a>
//   NumPower <n>                             # optional section (default 0)
//   Power <blockname> <watts>
//   NumShapes <n>                            # optional section (default 0)
//   Shape <blockname> <k> <w1> <h1> ... <wk> <hk>
//   NumHierNodes <n>                         # optional section
//   Leaf <nodename> <blockname>
//   Group <nodename> <constraint> <symgroup|-> <nchildren> <child-ids...>
//   Root <node-id>
//
// Soft blocks carry an area and an aspect-ratio range (w/h in [lo, hi]);
// the parser resolves them deterministically to the hard footprint whose
// aspect is closest to 1 inside the range, so every downstream placer sees
// a fixed footprint — and, for the shape-selection move, a deterministic
// discretized curve of alternative realizations (Module::shapes), which an
// explicit Shape line overrides.  Power lines annotate thermally radiating
// blocks (Module::powerW, the thermal objective's source list); Shape lines
// list alternative footprints — the declared Block footprint is never
// listed, it always opens the curve.  Both sections are validated like
// every other (unknown blocks, duplicates, caps and non-positive values are
// rejected) and both round-trip exactly.
//
// The hierarchy section serializes `HierTree` nodes in node-id order
// (children reference earlier ids), which makes a write -> parse round trip
// reconstruct the tree with *identical node ids* — load-bearing for the
// round-trip property test: the HB*-tree placer's perturbation schedule
// walks nodes by id, so only an id-exact reconstruction anneals
// bit-identically.  Files without the section get a canonical hierarchy
// (one symmetry node per group, free blocks clustered in id order) so the
// hierarchical backends accept plain block/net files.
//
// The parser never throws and never asserts on malformed input: every
// count, id and cross-reference is validated (including the hierarchy
// invariants the HB*-tree placer otherwise enforces with asserts), and
// errors come back as "line N: message" strings — tests/fuzz_test.cpp
// throws truncated and corrupted text at it under ASan/UBSan.
#pragma once

#include <string>
#include <string_view>

#include "netlist/circuit.h"

namespace als {

struct ParseResult {
  Circuit circuit;
  std::string error;  ///< empty on success, else "line N: message"

  bool ok() const { return error.empty(); }
};

/// Parses benchmark text into a Circuit (with a hierarchy tree, synthesized
/// canonically when the file carries none).  On failure `circuit` is
/// unspecified and `error` says why.
ParseResult parseBenchmark(std::string_view text);

/// Reads `path` and parses its contents; I/O failures are reported through
/// `error` like parse failures.
ParseResult parseBenchmarkFile(const std::string& path);

struct WriteResult {
  std::string text;   ///< complete benchmark file contents
  std::string error;  ///< empty on success (e.g. unserializable names)

  bool ok() const { return error.empty(); }
};

/// Serializes a circuit (modules, nets, symmetry groups, hierarchy) so that
/// `parseBenchmark(writeBenchmark(c).text)` reconstructs it structurally
/// identically, including hierarchy node ids.  Fails when names are not
/// serializable (empty / embedded whitespace / '#') or block, net or group
/// names collide.
WriteResult writeBenchmark(const Circuit& circuit);

/// Writes `writeBenchmark(circuit)` to `path`; returns false and fills
/// `*error` (when given) on serialization or I/O failure.
bool writeBenchmarkFile(const std::string& path, const Circuit& circuit,
                        std::string* error = nullptr);

/// Builds the canonical hierarchy the parser synthesizes for files without
/// a hierarchy section: one leaf per module (node id == module id), one
/// Symmetry node per symmetry group over its member leaves, remaining free
/// leaves clustered four at a time in id order (small basic sets keep the
/// Section-IV deterministic placer's exhaustive enumeration tractable), all
/// under one root group.  Replaces any existing hierarchy.
void buildCanonicalHierarchy(Circuit& circuit);

}  // namespace als
