// Embedded benchmark corpus: MCNC-scale block sets (apte / xerox / hp /
// ami33 / ami49 block counts) in the ALSBENCH exchange format, compiled in
// as string literals so tests, benches and the als_place CLI need no
// network access or external files.
//
// The originals' netlists are not redistributable here, so these are
// *-scale* stand-ins: the block counts match the classic corpus (9 / 10 /
// 11 / 33 / 49), footprints vary as strongly as the originals', and the
// circuits add the analog annotations this library places — symmetry
// groups on matched blocks (apte, hp, ami33, ami49) and soft blocks with
// aspect ranges (xerox).  Every circuit parses through io/benchmark_format
// like any user-supplied file; nothing is special-cased.
#pragma once

#include <string_view>
#include <vector>

#include "netlist/circuit.h"

namespace als {

enum class CorpusCircuit {
  Apte,   ///<  9 blocks, 2 symmetric pairs in one group
  Xerox,  ///< 10 blocks, two of them soft (aspect-range) blocks
  Hp,     ///< 11 blocks, one pair + self-symmetric group
  Ami33,  ///< 33 blocks, two symmetry groups
  Ami49,  ///< 49 blocks, one symmetric pair
  N100,   ///< 100 blocks, GSRC-scale (generated; soft blocks, 3 sym groups)
  N200,   ///< 200 blocks, GSRC-scale (generated)
  N300,   ///< 300 blocks, GSRC-scale (generated)
};

/// The MCNC-scale corpus circuits in a stable order (small to large).
/// Deliberately excludes the GSRC-scale instances: callers iterating this
/// list run full placements per circuit, which must stay cheap.
std::vector<CorpusCircuit> allCorpusCircuits();

/// The GSRC-scale instances (n100/n200/n300), small to large.  Their text
/// is generated on first use (makeGsrcLikeCircuit through writeBenchmark)
/// rather than embedded, but parses through io/benchmark_format like any
/// user file; nothing downstream is special-cased.
std::vector<CorpusCircuit> largeCorpusCircuits();

const char* corpusName(CorpusCircuit which);

/// The embedded benchmark file text (ALSBENCH format, parseable as-is).
std::string_view corpusText(CorpusCircuit which);

/// Looks a corpus circuit up by its name ("apte", ..., "n300",
/// case-sensitive); returns false when `name` is not a corpus circuit.
bool corpusByName(std::string_view name, CorpusCircuit* out);

/// Parses the embedded text into a Circuit.  The corpus is covered by the
/// io tests, so a parse failure here is a library bug; this helper
/// terminates on one rather than returning an error.
Circuit loadCorpusCircuit(CorpusCircuit which);

}  // namespace als
