// Wire vocabulary of the placement service (tools/als_serve): content
// hashing, the canonical options key, the cache key, the ALSRESULT result
// text and the OPT key/value job-options dialect.  Everything here is pure
// string/struct work — socket plumbing lives in the tools; the in-process
// serve engine (runtime/serve.h) and its on-disk cache
// (runtime/result_cache.h) share these definitions so a result persisted by
// one daemon parses bit-identically in the next.
//
// ## Protocol ("ALSSERVE 1", line-delimited over a local stream socket)
//
// A client submits one job as
//
//   JOB <tag> <backend>            # tag: client-chosen, no whitespace
//   OPT <key> <value>              # zero or more (see applyJobOption; the
//                                  # daemon also accepts the serve-layer
//                                  # keys `deadline-ms` / `deadline-sweeps`,
//                                  # which never enter the cache key)
//   CIRCUIT <nbytes>               # then exactly nbytes of ALSBENCH text
//   END
//
// and the server answers with
//
//   QUEUED <tag> <cache-key-hex>   # admitted (hex = CacheKey::hex())
//   REJECTED <tag> <reason>        # admission control (queue full) — or
//   ERROR <tag> <message...>       # malformed job / circuit parse error
//
// followed, for admitted jobs, by zero or more
//
//   PROGRESS <tag> <round> <sweepsDone> <bestCost>
//
// and exactly one
//
//   RESULT <tag> <hit|miss|cancelled|deadline> <nbytes>
//   <nbytes of ALSRESULT text — parseResultText>
//   DONE <tag>
//
// `deadline` means a job deadline expired (runtime/serve.h): the payload is
// the best-so-far snapshot, delivered within one progress round of expiry
// and never cached.  Control lines outside a job: `CANCEL <tag>`
// (acknowledged within one progress round; the job still delivers a RESULT,
// flagged `cancelled`), `STATS` (answered `STATS <submitted> <completed>
// <hits> <misses> <cancelled> <rejected> <deadline-expired> <quarantined>
// <evicted> <memory-only>` — the last three surface the store's health,
// runtime/result_cache.h), `FLUSH` (drops every cache entry, memory and
// disk; answered `FLUSHED` — how the replay harness forces recomputation)
// and `SHUTDOWN` (answered `BYE`; the daemon drains and exits).  One
// connection may carry many jobs; all server lines are tagged, so clients
// may pipeline.
//
// ## Cache key contract
//
// A job's identity is `CacheKey`: (FNV-1a hash of the RAW circuit bytes,
// FNV-1a hash of the canonical options string, seed).  The canonical
// options string (canonicalOptionsKey) lists every result-affecting knob of
// EngineOptions — and nothing else — in a fixed order with doubles printed
// as %.17g (round-trip exact), so a default knob and the same value spelled
// explicitly, in any OPT order, canonicalize identically.  Knobs that
// cannot affect the placement are excluded by design: `numThreads` (the
// runtime layer is bit-identical at any thread count) and `timeLimitSec`
// (the serve layer zeroes it — results under a wall-clock cap would not be
// reproducible, and a cache of non-reproducible results would be wrong).
// Hashing the raw circuit bytes (not a parsed canonical form) keeps the
// warm hit path allocation- and parse-free; the cost is that two textually
// different spellings of the same circuit compute twice.  That is the
// documented trade-off — ALSBENCH writers emit canonical text, so
// resubmissions of a written file always hit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/placement_engine.h"

namespace als {

/// FNV-1a 64-bit over arbitrary bytes — the service's content hash.  Not
/// cryptographic; collision resistance at cache scale (64-bit, thousands of
/// entries) is ample, and the function is trivially portable.
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = 14695981039346656037ull);

/// Content-addressed identity of one job (see the header comment).
struct CacheKey {
  std::uint64_t circuit = 0;  ///< fnv1a64 of the raw ALSBENCH bytes
  std::uint64_t options = 0;  ///< fnv1a64 of canonicalOptionsKey(...)
  std::uint64_t seed = 0;     ///< EngineOptions::seed, explicit

  friend bool operator==(const CacheKey&, const CacheKey&) = default;

  /// 48 lowercase hex chars: circuit · options · seed, 16 each.
  std::string hex() const;
  /// Parses `hex()` output; returns false (leaving *this unspecified) on
  /// anything else.
  bool parseHex(std::string_view text);
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    // splitmix-style fold of the three words.
    std::uint64_t z = k.circuit + 0x9e3779b97f4a7c15ull * (k.options ^ k.seed);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return static_cast<std::size_t>(z ^ (z >> 27));
  }
};

/// Appends the canonical options string for (backend, options) to `out`
/// (which is NOT cleared — warm callers reuse one buffer).  Fixed field
/// order, %.17g doubles, result-affecting knobs only; `seed` is excluded
/// (it is the cache key's explicit third word).
void canonicalOptionsKey(EngineBackend backend, const EngineOptions& options,
                         std::string& out);

/// The cache key of (raw circuit bytes, backend, options).  `scratch` holds
/// the canonical options string between calls so the warm path performs no
/// allocation once its capacity is reached.
CacheKey makeCacheKey(std::string_view circuitText, EngineBackend backend,
                      const EngineOptions& options, std::string& scratch);

/// Applies one `OPT <key> <value>` pair to `options`.  Returns empty on
/// success, else a message naming the key.  Keys mirror the canonical
/// options string plus the non-identity knobs a client may set
/// (`restarts`, `threads`); unknown keys are errors (a silently dropped
/// knob would poison the cache key contract).
std::string applyJobOption(EngineOptions& options, std::string_view key,
                           std::string_view value);

/// Parses a backend name as spelled by `backendName()`; returns false on
/// unknown names.
bool parseBackendName(std::string_view name, EngineBackend& backend);

// ---------------------------------------------------------------------------
// Result text ("ALSRESULT 1") — the persisted / wire form of EngineResult.
//
//   ALSRESULT 1
//   Backend <name>
//   Cost <%.17g>            # round-trip exact
//   Area <int64>
//   Hpwl <int64>
//   Moves <n>
//   Sweeps <n>
//   Restarts <n>
//   BestRestart <n>
//   BestSeed <u64>
//   NumRects <n>
//   Rect <x> <y> <w> <h>    # n lines, module-id order
//   END
//   Checksum <16 hex>       # fnv1a64 of every byte above, incl. "END\n"
//
// `seconds` is deliberately absent: it is wall-clock accounting, not part
// of a result's identity — a cached result re-reports the fetch latency.
//
// The `Checksum` trailer is the integrity seal of the whole stack: a
// truncated, bit-flipped or torn ALSRESULT payload — on the wire or in the
// on-disk store — fails `parseResultText` deterministically instead of
// parsing into a silently wrong placement.  `runtime/result_cache.h` relies
// on it to quarantine corrupt store entries rather than serve them.

/// Serializes `result` (with the backend that produced it) as ALSRESULT
/// text, appended to `out` (not cleared; warm callers reuse the buffer).
void writeResultText(EngineBackend backend, const EngineResult& result,
                     std::string& out);

/// Parses ALSRESULT text INTO `result`/`backend`, reusing the placement's
/// storage (the warm fetch path allocates nothing at steady capacity).
/// Returns empty on success, else "line N: message"; on failure `result`
/// is unspecified.  `result.seconds` is set to 0.
std::string parseResultText(std::string_view text, EngineBackend& backend,
                            EngineResult& result);

}  // namespace als
