#include "io/serve_protocol.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace als {

namespace {

// Sanity caps mirroring io/benchmark_format.cpp: a corrupted cache file or
// wire payload must not drive the parse loops into pathological work.
constexpr std::size_t kMaxCount = 1'000'000;

/// Appends `%.17g` of `v` — the shortest form that round-trips any IEEE
/// double exactly, so canonical keys and persisted costs are bit-stable.
void appendDouble(std::string& out, double v) {
  std::array<char, 32> buf;
  int n = std::snprintf(buf.data(), buf.size(), "%.17g", v);
  out.append(buf.data(), static_cast<std::size_t>(n));
}

void appendUnsigned(std::string& out, std::uint64_t v) {
  std::array<char, 24> buf;
  int n = std::snprintf(buf.data(), buf.size(), "%llu",
                        static_cast<unsigned long long>(v));
  out.append(buf.data(), static_cast<std::size_t>(n));
}

void appendSigned(std::string& out, std::int64_t v) {
  std::array<char, 24> buf;
  int n = std::snprintf(buf.data(), buf.size(), "%lld",
                        static_cast<long long>(v));
  out.append(buf.data(), static_cast<std::size_t>(n));
}

template <class T>
bool parseNumber(std::string_view token, T& out) {
  const char* first = token.data();
  const char* last = first + token.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool parseDouble(std::string_view token, double& out) {
  double v = 0.0;
  if (!parseNumber(token, v) || !std::isfinite(v)) return false;
  out = v;
  return true;
}

bool parseFlag(std::string_view token, bool& out) {
  if (token == "0" || token == "1") {
    out = token == "1";
    return true;
  }
  return false;
}

// --- line scanner for ALSRESULT text ---------------------------------------

struct Scanner {
  std::string_view text;
  std::size_t lineNo = 0;

  /// Next non-empty line (no comment syntax in result text — the writer is
  /// the only producer); empty view at end of input.
  std::string_view next() {
    while (!text.empty()) {
      ++lineNo;
      std::size_t eol = text.find('\n');
      std::string_view line = text.substr(0, eol);
      text.remove_prefix(eol == std::string_view::npos ? text.size()
                                                       : eol + 1);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) return line;
    }
    return {};
  }
};

/// Splits the first space-delimited token off `line`.
std::string_view takeToken(std::string_view& line) {
  while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
  std::size_t end = line.find(' ');
  std::string_view token = line.substr(0, end);
  line.remove_prefix(end == std::string_view::npos ? line.size() : end);
  while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
  return token;
}

std::string scanError(const Scanner& scanner, const char* message) {
  return "line " + std::to_string(scanner.lineNo) + ": " + message;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string CacheKey::hex() const {
  std::array<char, 49> buf;
  std::snprintf(buf.data(), buf.size(), "%016llx%016llx%016llx",
                static_cast<unsigned long long>(circuit),
                static_cast<unsigned long long>(options),
                static_cast<unsigned long long>(seed));
  return std::string(buf.data(), 48);
}

bool CacheKey::parseHex(std::string_view text) {
  if (text.size() != 48) return false;
  auto word = [&](std::size_t at, std::uint64_t& out) {
    std::string_view part = text.substr(at, 16);
    const char* first = part.data();
    auto [ptr, ec] = std::from_chars(first, first + 16, out, 16);
    return ec == std::errc() && ptr == first + 16;
  };
  return word(0, circuit) && word(16, options) && word(32, seed);
}

void canonicalOptionsKey(EngineBackend backend, const EngineOptions& options,
                         std::string& out) {
  // Fixed order, every result-affecting knob, nothing else (header comment
  // names the exclusions).  A new EngineOptions knob that can change a
  // placement MUST be appended here — the serve test's canonicalization
  // suite cross-checks against a default-constructed struct.
  out += "v=1 backend=";
  out += backendName(backend);
  auto num = [&](const char* key, double v) {
    out += ' ';
    out += key;
    out += '=';
    appendDouble(out, v);
  };
  auto uns = [&](const char* key, std::uint64_t v) {
    out += ' ';
    out += key;
    out += '=';
    appendUnsigned(out, v);
  };
  num("wl", options.wirelengthWeight);
  num("sym", options.symmetryWeight);
  num("prox", options.proximityWeight);
  num("outline", options.outlineWeight);
  uns("maxw", static_cast<std::uint64_t>(options.maxWidth));
  uns("maxh", static_cast<std::uint64_t>(options.maxHeight));
  num("aspect", options.targetAspect);
  num("thermal", options.thermalWeight);
  num("shape", options.shapeMoveProb);
  uns("sweeps", options.maxSweeps);
  num("cool", options.coolingFactor);
  uns("mpt", options.movesPerTemp);
  uns("restarts", options.numRestarts);
  uns("tempering", options.tempering ? 1 : 0);
  uns("exch", options.exchangeInterval);
  num("ladder", options.ladderRatio);
  uns("cross", options.crossSeed ? 1 : 0);
}

CacheKey makeCacheKey(std::string_view circuitText, EngineBackend backend,
                      const EngineOptions& options, std::string& scratch) {
  scratch.clear();
  canonicalOptionsKey(backend, options, scratch);
  return CacheKey{fnv1a64(circuitText), fnv1a64(scratch), options.seed};
}

std::string applyJobOption(EngineOptions& options, std::string_view key,
                           std::string_view value) {
  auto bad = [&](const char* what) {
    return "bad OPT " + std::string(key) + ": " + what;
  };
  double d = 0.0;
  std::uint64_t u = 0;
  bool b = false;
  if (key == "wl" || key == "sym" || key == "prox" || key == "outline" ||
      key == "thermal") {
    if (!parseDouble(value, d) || d < 0.0) return bad("nonnegative number");
    if (key == "wl") options.wirelengthWeight = d;
    else if (key == "sym") options.symmetryWeight = d;
    else if (key == "prox") options.proximityWeight = d;
    else if (key == "outline") options.outlineWeight = d;
    else options.thermalWeight = d;
    return {};
  }
  if (key == "aspect") {
    if (!parseDouble(value, d) || d < 0.0) return bad("nonnegative number");
    options.targetAspect = d;
    return {};
  }
  if (key == "shape") {
    if (!parseDouble(value, d) || d < 0.0 || d > 1.0)
      return bad("probability in [0,1]");
    options.shapeMoveProb = d;
    return {};
  }
  if (key == "cool") {
    if (!parseDouble(value, d) || d <= 0.0 || d >= 1.0)
      return bad("factor in (0,1)");
    options.coolingFactor = d;
    return {};
  }
  if (key == "ladder") {
    if (!parseDouble(value, d) || d <= 0.0) return bad("positive ratio");
    options.ladderRatio = d;
    return {};
  }
  if (key == "maxw" || key == "maxh") {
    if (!parseNumber(value, u)) return bad("nonnegative integer");
    (key == "maxw" ? options.maxWidth : options.maxHeight) =
        static_cast<Coord>(u);
    return {};
  }
  if (key == "sweeps" || key == "mpt" || key == "restarts" ||
      key == "threads" || key == "exch") {
    if (!parseNumber(value, u)) return bad("nonnegative integer");
    if (key == "sweeps") options.maxSweeps = u;
    else if (key == "mpt") options.movesPerTemp = u;
    else if (key == "restarts") options.numRestarts = u;
    else if (key == "threads") options.numThreads = u;
    else options.exchangeInterval = u;
    return {};
  }
  if (key == "seed") {
    if (!parseNumber(value, u)) return bad("nonnegative integer");
    options.seed = u;
    return {};
  }
  if (key == "tempering" || key == "cross") {
    if (!parseFlag(value, b)) return bad("0 or 1");
    (key == "tempering" ? options.tempering : options.crossSeed) = b;
    return {};
  }
  return "unknown OPT key " + std::string(key);
}

bool parseBackendName(std::string_view name, EngineBackend& backend) {
  for (EngineBackend b : allBackends()) {
    if (backendName(b) == name) {
      backend = b;
      return true;
    }
  }
  return false;
}

void writeResultText(EngineBackend backend, const EngineResult& result,
                     std::string& out) {
  const std::size_t start = out.size();
  out += "ALSRESULT 1\nBackend ";
  out += backendName(backend);
  out += "\nCost ";
  appendDouble(out, result.cost);
  out += "\nArea ";
  appendSigned(out, result.area);
  out += "\nHpwl ";
  appendSigned(out, result.hpwl);
  out += "\nMoves ";
  appendUnsigned(out, result.movesTried);
  out += "\nSweeps ";
  appendUnsigned(out, result.sweeps);
  out += "\nRestarts ";
  appendUnsigned(out, result.restartsRun);
  out += "\nBestRestart ";
  appendUnsigned(out, result.bestRestart);
  out += "\nBestSeed ";
  appendUnsigned(out, result.bestSeed);
  out += "\nNumRects ";
  appendUnsigned(out, result.placement.size());
  out += '\n';
  for (std::size_t i = 0; i < result.placement.size(); ++i) {
    const Rect& r = result.placement[i];
    out += "Rect ";
    appendSigned(out, r.x);
    out += ' ';
    appendSigned(out, r.y);
    out += ' ';
    appendSigned(out, r.w);
    out += ' ';
    appendSigned(out, r.h);
    out += '\n';
  }
  out += "END\n";
  // Integrity trailer: fnv1a64 of exactly the bytes this call appended,
  // through "END\n".  `out` may hold caller prefixes (wire framing, the
  // cache's Key line) — they carry their own integrity, so only the
  // ALSRESULT region is sealed.
  const std::uint64_t sum =
      fnv1a64(std::string_view(out).substr(start, out.size() - start));
  std::array<char, 18> buf;
  std::snprintf(buf.data(), buf.size(), "%016llx",
                static_cast<unsigned long long>(sum));
  out += "Checksum ";
  out.append(buf.data(), 16);
  out += '\n';
}

std::string parseResultText(std::string_view text, EngineBackend& backend,
                            EngineResult& result) {
  Scanner scanner{text};
  std::string_view line = scanner.next();
  if (line != "ALSRESULT 1") return scanError(scanner, "expected ALSRESULT 1");

  line = scanner.next();
  if (takeToken(line) != "Backend" || !parseBackendName(takeToken(line), backend))
    return scanError(scanner, "expected Backend <name>");

  auto field = [&](const char* keyword, auto& out) {
    line = scanner.next();
    return takeToken(line) == keyword && parseNumber(line, out) ? true : false;
  };
  double cost = 0.0;
  {
    line = scanner.next();
    if (takeToken(line) != "Cost" || !parseDouble(line, cost))
      return scanError(scanner, "expected Cost <value>");
  }
  std::int64_t area = 0, hpwl = 0;
  std::uint64_t moves = 0, sweeps = 0, restarts = 0, bestRestart = 0,
                bestSeed = 0, numRects = 0;
  if (!field("Area", area)) return scanError(scanner, "expected Area <n>");
  if (!field("Hpwl", hpwl)) return scanError(scanner, "expected Hpwl <n>");
  if (!field("Moves", moves)) return scanError(scanner, "expected Moves <n>");
  if (!field("Sweeps", sweeps))
    return scanError(scanner, "expected Sweeps <n>");
  if (!field("Restarts", restarts))
    return scanError(scanner, "expected Restarts <n>");
  if (!field("BestRestart", bestRestart))
    return scanError(scanner, "expected BestRestart <n>");
  if (!field("BestSeed", bestSeed))
    return scanError(scanner, "expected BestSeed <n>");
  if (!field("NumRects", numRects) || numRects > kMaxCount)
    return scanError(scanner, "expected NumRects <n>");
  // Each Rect line costs at least "Rect 0 0 1 1\n" bytes; a count the text
  // cannot possibly back is a corruption, and rejecting it here keeps a
  // hostile header from forcing a huge placement allocation.
  if (numRects > text.size() / 8)
    return scanError(scanner, "NumRects exceeds payload size");

  result.placement.assign(static_cast<std::size_t>(numRects));
  for (std::size_t i = 0; i < numRects; ++i) {
    line = scanner.next();
    Rect r;
    if (takeToken(line) != "Rect" || !parseNumber(takeToken(line), r.x) ||
        !parseNumber(takeToken(line), r.y) ||
        !parseNumber(takeToken(line), r.w) || !parseNumber(line, r.h)) {
      return scanError(scanner, "expected Rect <x> <y> <w> <h>");
    }
    result.placement[i] = r;
  }
  if (scanner.next() != "END") return scanError(scanner, "expected END");

  // Checksum trailer — fnv1a64 of every byte before the trailer line.  The
  // line view aliases `text`, so its data pointer locates the sealed region
  // without any bookkeeping in the scan loop above.
  line = scanner.next();
  if (line.empty() || line.data() < text.data())
    return scanError(scanner, "expected Checksum trailer");
  const std::size_t sealedBytes =
      static_cast<std::size_t>(line.data() - text.data());
  if (takeToken(line) != "Checksum")
    return scanError(scanner, "expected Checksum trailer");
  std::string_view digest = takeToken(line);
  std::uint64_t declared = 0;
  if (digest.size() != 16 || !line.empty()) {
    return scanError(scanner, "expected Checksum <16 hex>");
  }
  {
    const char* first = digest.data();
    auto [ptr, ec] = std::from_chars(first, first + 16, declared, 16);
    if (ec != std::errc() || ptr != first + 16)
      return scanError(scanner, "expected Checksum <16 hex>");
  }
  if (declared != fnv1a64(text.substr(0, sealedBytes)))
    return scanError(scanner, "checksum mismatch");
  // The trailer's own newline is required: a payload cut one byte short of
  // complete is truncation, not a complete result.
  if (text.back() != '\n')
    return scanError(scanner, "truncated Checksum trailer");
  if (!scanner.next().empty())
    return scanError(scanner, "unexpected trailing content");

  result.cost = cost;
  result.area = area;
  result.hpwl = hpwl;
  result.movesTried = moves;
  result.sweeps = sweeps;
  result.restartsRun = restarts;
  result.bestRestart = bestRestart;
  result.bestSeed = bestSeed;
  result.seconds = 0.0;
  return {};
}

}  // namespace als
