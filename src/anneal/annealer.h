// Generic simulated-annealing engine (Kirkpatrick et al. [12]).
//
// Both stochastic placers of the library — the Section II sequence-pair
// placer and the Section III (H)B*-tree placer — and the Section V sizing
// optimizer share this engine.  States are value types; a move produces a
// mutated copy, which keeps the engine trivially exception-safe and lets
// move implementations stay simple (analog placements are small, so copying
// an encoding is cheap relative to packing it).
//
// Temperature schedule: geometric cooling with an initial temperature
// calibrated from the mean uphill delta of a random-walk sample, the classic
// recipe that makes one knob work across differently scaled cost functions.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace als {

struct AnnealOptions {
  double coolingFactor = 0.96;    ///< geometric alpha per temperature step
  std::size_t movesPerTemp = 0;   ///< 0 = auto (scaled by a problem-size hint)
  std::size_t sizeHint = 16;      ///< problem size used when movesPerTemp == 0
  double initialAcceptance = 0.9; ///< target uphill acceptance at t0
  double freezeRatio = 1e-4;      ///< stop when t < t0 * freezeRatio
  double timeLimitSec = 10.0;     ///< wall-clock budget
  std::uint64_t seed = 42;
};

template <class State>
struct AnnealResult {
  State best;
  double bestCost = 0.0;
  std::size_t movesTried = 0;
  std::size_t movesAccepted = 0;
  double seconds = 0.0;
};

/// Runs simulated annealing from `init`.
///
/// `cost`:  double(const State&) — smaller is better.
/// `move`:  State(const State&, Rng&) — proposes a neighbouring state.
template <class State, class CostF, class MoveF>
AnnealResult<State> anneal(State init, CostF&& cost, MoveF&& move,
                           const AnnealOptions& opt) {
  Rng rng(opt.seed);
  Stopwatch clock;

  State cur = std::move(init);
  double curCost = cost(cur);
  AnnealResult<State> result{cur, curCost, 0, 0, 0.0};

  // Calibrate t0 so that `initialAcceptance` of sampled uphill moves pass.
  double upSum = 0.0;
  std::size_t upCount = 0;
  {
    State probe = cur;
    double probeCost = curCost;
    for (std::size_t i = 0; i < 50; ++i) {
      State next = move(probe, rng);
      double nextCost = cost(next);
      if (nextCost > probeCost) {
        upSum += nextCost - probeCost;
        ++upCount;
      }
      probe = std::move(next);
      probeCost = nextCost;
    }
  }
  double meanUp = upCount ? upSum / static_cast<double>(upCount) : 1.0;
  if (meanUp <= 0.0) meanUp = 1.0;
  double t = -meanUp / std::log(opt.initialAcceptance);
  double tFreeze = t * opt.freezeRatio;

  std::size_t movesPerTemp =
      opt.movesPerTemp ? opt.movesPerTemp : 10 * opt.sizeHint;

  while (t > tFreeze && clock.seconds() < opt.timeLimitSec) {
    for (std::size_t i = 0; i < movesPerTemp; ++i) {
      State next = move(cur, rng);
      double nextCost = cost(next);
      ++result.movesTried;
      double delta = nextCost - curCost;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / t)) {
        cur = std::move(next);
        curCost = nextCost;
        ++result.movesAccepted;
        if (curCost < result.bestCost) {
          result.best = cur;
          result.bestCost = curCost;
        }
      }
    }
    t *= opt.coolingFactor;
  }
  result.seconds = clock.seconds();
  return result;
}

/// Repeats annealing runs (freshly seeded each round) until the wall-clock
/// budget is exhausted and returns the best result.  A single geometric
/// schedule often freezes long before a realistic budget ends; restarts
/// turn the leftover time into independent attempts, which is the standard
/// industrial recipe for the plateau-heavy landscapes of floorplan codes.
template <class State, class CostF, class MoveF>
AnnealResult<State> annealWithRestarts(const State& init, CostF&& cost,
                                       MoveF&& move, AnnealOptions opt) {
  Stopwatch clock;
  AnnealResult<State> best{init, cost(init), 0, 0, 0.0};
  std::uint64_t seed = opt.seed;
  double budget = opt.timeLimitSec;
  do {
    opt.seed = seed;
    opt.timeLimitSec = budget - clock.seconds();
    AnnealResult<State> run = anneal(init, cost, move, opt);
    if (run.bestCost < best.bestCost) {
      std::size_t tried = best.movesTried + run.movesTried;
      std::size_t accepted = best.movesAccepted + run.movesAccepted;
      best = std::move(run);
      best.movesTried = tried;
      best.movesAccepted = accepted;
    } else {
      best.movesTried += run.movesTried;
      best.movesAccepted += run.movesAccepted;
    }
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
  } while (clock.seconds() < budget);
  best.seconds = clock.seconds();
  return best;
}

}  // namespace als
