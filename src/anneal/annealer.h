// Generic simulated-annealing engine (Kirkpatrick et al. [12]).
//
// Both stochastic placers of the library — the Section II sequence-pair
// placer and the Section III (H)B*-tree placer — and the Section V sizing
// optimizer share this engine.  States are value types; a move produces a
// mutated copy, which keeps the engine trivially exception-safe and lets
// move implementations stay simple (analog placements are small, so copying
// an encoding is cheap relative to packing it).
//
// Temperature schedule: geometric cooling with an initial temperature
// calibrated from the mean uphill delta of a random-walk sample, the classic
// recipe that makes one knob work across differently scaled cost functions.
//
// Stopping rules: the primary budget is `maxSweeps`, a count of temperature
// steps.  For a fixed seed the trajectory is then a pure function of the
// options — identical on a loaded CI box, under sanitizers, or on faster
// hardware.  `timeLimitSec` remains available as a *secondary* wall-clock
// cap (0 disables it); results obtained under an active time cap are not
// reproducible and should be reserved for interactive/budgeted use.
//
// Cancellation: `AnnealOptions::cancel` (util/cancel_token.h) is the third,
// externally triggered stopping rule.  EVERY entry point honours it through
// the same seam — `anneal` / `annealWithRestarts` (both the scratch and the
// incremental-evaluator overloads) and the resumable `AnnealDriver` that
// sessions and runners build on — because the check lives in the two sweep
// loops they all share.  The contract:
//
//   * Granularity: the flag is tested once per SWEEP (temperature step),
//     never mid-move.  A run is therefore cancelled only at a point where
//     the evaluator's committed state, any decode scratch, and the move
//     buffers are all consistent — the scratch-reuse contract survives, and
//     the next run on the same buffers is bit-identical to a fresh process.
//   * Result: a cancelled run returns normally with the best state found so
//     far; `sweeps` reports what actually executed.  No flag is added to
//     the result — the token's owner knows it cancelled.  Because the
//     outcome depends on when the flag was seen, cancelled results are NOT
//     deterministic and must never be cached or compared against golden
//     trajectories.
//   * Restarts: cancellation also stops the restart schedule — the active
//     run is merged and no further restart begins.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>

#include "util/cancel_token.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace als {

struct AnnealOptions {
  double coolingFactor = 0.96;    ///< geometric alpha per temperature step
  std::size_t movesPerTemp = 0;   ///< 0 = auto (scaled by a problem-size hint)
  std::size_t sizeHint = 16;      ///< problem size used when movesPerTemp == 0
  double initialAcceptance = 0.9; ///< target uphill acceptance at t0
  double freezeRatio = 1e-4;      ///< stop when t < t0 * freezeRatio
  std::size_t maxSweeps = 256;    ///< primary budget: temperature steps (0 = uncapped)
  double timeLimitSec = 0.0;      ///< secondary wall-clock cap (0 = uncapped)
  std::uint64_t seed = 42;
  /// Cooperative cancellation, checked once per sweep (see the header
  /// comment for the contract).  Not owned; may be null.
  const CancelToken* cancel = nullptr;
};

template <class State>
struct AnnealResult {
  State best;
  double bestCost = 0.0;
  std::size_t movesTried = 0;
  std::size_t movesAccepted = 0;
  std::size_t sweeps = 0;  ///< temperature steps actually executed
  double seconds = 0.0;
};

// ---------------------------------------------------------------------------
// Restart schedule — the shared vocabulary of every multi-start driver.
//
// Both the sequential restart loop below and the parallel portfolio runner
// (runtime/portfolio.h) derive their per-restart seeds and sweep budgets
// from these helpers.

/// Seed of the restart following `seed` (an LCG step with Knuth's MMIX
/// constants — full period over 2^64, so schedule seeds never repeat).
constexpr std::uint64_t nextRestartSeed(std::uint64_t seed) {
  return seed * 6364136223846793005ull + 1442695040888963407ull;
}

/// Seed of portfolio slice `index` rooted at `baseSeed`.  Slice 0 is
/// `baseSeed` itself (a 1-restart portfolio must match a plain engine call
/// bit for bit); later slices are splitmix64-mixed rather than consecutive
/// LCG iterates.  The distinction matters: a slice that freezes before its
/// budget is spent restarts *internally* on `nextRestartSeed(seed)`, and
/// with consecutive iterates that internal stream would replay the next
/// slice's seed — duplicating annealing work across slices.  Mixing keeps
/// every slice's stream disjoint.
constexpr std::uint64_t portfolioSeedAt(std::uint64_t baseSeed,
                                        std::size_t index) {
  if (index == 0) return baseSeed;
  std::uint64_t z =
      baseSeed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Sweep budget of restart `index` when `totalSweeps` is split across
/// `numRestarts` fixed slices: the remainder goes to the earliest restarts,
/// so slices differ by at most one sweep and sum exactly to the total.
constexpr std::size_t splitSweepBudget(std::size_t totalSweeps,
                                       std::size_t numRestarts,
                                       std::size_t index) {
  if (numRestarts == 0) return totalSweeps;
  return totalSweeps / numRestarts + (index < totalSweeps % numRestarts);
}

/// The auto-scaling rule behind `movesPerTemp == 0`.  Drivers that split one
/// run into several restarts must resolve the auto value ONCE per run (not
/// per restart) and pass the resolved value down, so every slice anneals on
/// the schedule the equivalent sequential run would have used.
constexpr std::size_t resolveMovesPerTemp(std::size_t movesPerTemp,
                                          std::size_t sizeHint) {
  return movesPerTemp ? movesPerTemp : 10 * sizeHint;
}

// ---------------------------------------------------------------------------
// Evaluation seams.  The annealing loops below are written against a small
// evaluator interface so that one implementation serves both cost styles:
//
//   full(s)     evaluate `s` and make it the evaluator's committed state
//   propose(s)  cost of a candidate next to the committed state
//   accept()    the candidate becomes the committed state
//   reject()    the candidate is discarded
//   rebase(s)   re-anchor the committed state to `s` (after the calibration
//               walk wandered away from it)
//
// `ScratchEval` is the classic stateless style — every propose re-derives
// the cost from the state, accept/reject/rebase are no-ops.  The costs it
// produces and the RNG stream it induces are exactly those of the historic
// hand-rolled loops.
//
// `IncrementalEval` drives the propose/commit/rollback protocol of a delta-
// evaluating cost model (cost/cost_model.h is the library's implementation,
// but any type with reset/propose/commit/rollback/invalidate/infeasibleCost
// fits): states are decoded to placements, the model re-reduces only what a
// move dirtied, and a rejected move is a rollback instead of a state copy +
// full recompute.  `decode` returns anything optional-like (contextually
// bool + dereferenceable): `std::optional<Placement>` by value, or — the
// allocation-free style every backend uses — a `const Placement*` aliasing
// a scratch buffer.  An aliased placement is only valid until the NEXT
// decode call, so the evaluator consumes it immediately and the model must
// copy what it keeps (CostModel diff-copies changed rects).  Decoding may
// fail (empty optional / nullptr); such states cost
// `model.infeasibleCost()`, and accepting one drops the model's committed
// state so the next feasible propose re-seeds it.

namespace detail {

/// Move-seam detection: a move callable is either the classic copying style
/// `State(const State&, Rng&)` or the allocation-free in-place style
/// `void(State&, Rng&)`.  The in-place style receives a buffer that already
/// holds a copy of the current state, perturbs it, and the loop swaps the
/// buffer in on acceptance — the steady-state move loop then performs no
/// state construction at all.  Both styles draw the same RNG stream for the
/// same perturbation logic, so trajectories are identical.
template <class MoveF, class State>
inline constexpr bool kInPlaceMove =
    std::is_void_v<std::invoke_result_t<MoveF&, State&, Rng&>>;

template <class CostF>
struct ScratchEval {
  CostF& cost;
  template <class State> double full(const State& s) { return cost(s); }
  template <class State> double propose(const State& s) { return cost(s); }
  template <class State> void rebase(const State&) {}
  void accept() {}
  void reject() {}
};

/// A decoder (any callable with extra members) can opt in to the hinted
/// `model.propose(p, moved)` fast path by exposing two members:
///
///   movedModules()  ids of the modules whose rects may differ from the
///                   model's COMMITTED placement — a superset is fine
///                   (duplicates and unmoved entries are allowed, missing
///                   moved modules are not).  Decoders accumulate this
///                   across rejected moves: each decode appends what it
///                   touched relative to its own previous decode, which by
///                   the triangle property covers the committed diff.
///   committed()     notification that the model's committed state caught
///                   up with the decoder's LAST SUCCESSFUL decode (a full
///                   re-seed or an accepted feasible move) — the moved
///                   accumulator restarts from empty.
///
/// When the model invalidates (infeasible accept), no notification fires:
/// the model is unseeded, hinted propose falls back to a full evaluation
/// until the next commit re-seeds it — at which point committed() fires
/// and the accumulator resets.
template <class Model, class DecodeF>
struct IncrementalEval {
  Model& model;
  DecodeF& decode;
  bool pendingInfeasible = false;

  void notifyCommitted() {
    if constexpr (requires { decode.committed(); }) decode.committed();
  }

  template <class State> double full(const State& s) {
    auto placed = decode(s);
    if (!placed) {
      model.invalidate();
      return model.infeasibleCost();
    }
    double c = model.reset(*placed);
    notifyCommitted();
    return c;
  }
  template <class State> double propose(const State& s) {
    auto placed = decode(s);
    pendingInfeasible = !placed;
    if (!placed) return model.infeasibleCost();
    if constexpr (requires {
                    model.propose(*placed, decode.movedModules());
                    decode.committed();
                  }) {
      return model.propose(*placed, decode.movedModules());
    } else {
      return model.propose(*placed);
    }
  }
  template <class State> void rebase(const State& s) { full(s); }
  void accept() {
    if (pendingInfeasible) {
      model.invalidate();
    } else {
      model.commit();
      notifyCommitted();
    }
  }
  void reject() {
    if (!pendingInfeasible) model.rollback();
  }
};

/// The one acceptance loop behind both the calibration walk and the
/// Metropolis sweeps: propose `count` moves from `cur`, let `acceptMove`
/// decide on each delta, and keep the evaluator's committed state in step
/// with `cur`.  `onAccept` runs after `cur`/`curCost` advanced.  `moveBuf`
/// is the persistent candidate buffer of the in-place move style: the loop
/// copy-assigns `cur` into it (reusing its heap storage), perturbs in
/// place, and swaps on acceptance — no per-move construction, no per-move
/// copy of the decoded placement, identical values either way.
template <class State, class Eval, class MoveF, class AcceptF, class OnAcceptF>
void annealPass(State& cur, double& curCost, std::size_t count, Eval& eval,
                MoveF& move, Rng& rng, State& moveBuf, AcceptF&& acceptMove,
                OnAcceptF&& onAccept) {
  for (std::size_t i = 0; i < count; ++i) {
    if constexpr (kInPlaceMove<MoveF, State>) {
      moveBuf = cur;
      move(moveBuf, rng);
      double nextCost = eval.propose(moveBuf);
      if (acceptMove(nextCost - curCost)) {
        eval.accept();
        using std::swap;
        swap(cur, moveBuf);
        curCost = nextCost;
        onAccept();
      } else {
        eval.reject();
      }
    } else {
      State next = move(cur, rng);
      double nextCost = eval.propose(next);
      if (acceptMove(nextCost - curCost)) {
        eval.accept();
        cur = std::move(next);
        curCost = nextCost;
        onAccept();
      } else {
        eval.reject();
      }
    }
  }
}

template <class State, class Eval, class MoveF>
AnnealResult<State> annealImpl(State init, Eval& eval, MoveF& move,
                               const AnnealOptions& opt) {
  Rng rng(opt.seed);
  Stopwatch clock;

  State cur = std::move(init);
  double curCost = eval.full(cur);
  AnnealResult<State> result{cur, curCost, 0, 0, 0, 0.0};
  State moveBuf = cur;  // persistent candidate buffer (in-place move style)

  // Calibrate t0 so that `initialAcceptance` of sampled uphill moves pass:
  // a 50-move random walk that accepts everything and records the uphill
  // deltas.
  double upSum = 0.0;
  std::size_t upCount = 0;
  {
    State probe = cur;
    double probeCost = curCost;
    annealPass(probe, probeCost, 50, eval, move, rng, moveBuf,
               [&](double delta) {
                 if (delta > 0.0) {
                   upSum += delta;
                   ++upCount;
                 }
                 return true;
               },
               [] {});
  }
  eval.rebase(cur);  // the calibration walk moved the committed state
  double meanUp = upCount ? upSum / static_cast<double>(upCount) : 1.0;
  if (meanUp <= 0.0) meanUp = 1.0;
  double t = -meanUp / std::log(opt.initialAcceptance);
  double tFreeze = t * opt.freezeRatio;

  std::size_t movesPerTemp =
      resolveMovesPerTemp(opt.movesPerTemp, opt.sizeHint);

  const bool timed = opt.timeLimitSec > 0.0;
  while (t > tFreeze &&
         (opt.maxSweeps == 0 || result.sweeps < opt.maxSweeps) &&
         (!timed || clock.seconds() < opt.timeLimitSec) &&
         !cancelRequested(opt.cancel)) {
    annealPass(cur, curCost, movesPerTemp, eval, move, rng, moveBuf,
               [&](double delta) {
                 ++result.movesTried;
                 return delta <= 0.0 || rng.uniform() < std::exp(-delta / t);
               },
               [&] {
                 ++result.movesAccepted;
                 if (curCost < result.bestCost) {
                   result.best = cur;
                   result.bestCost = curCost;
                 }
               });
    t *= opt.coolingFactor;
    ++result.sweeps;
  }
  result.seconds = clock.seconds();
  return result;
}

// ---------------------------------------------------------------------------
// AnnealDriver — the restart loop above, unrolled into a resumable state
// machine.
//
// The driver executes exactly the trajectory `annealWithRestartsImpl`
// executes — same RNG stream, same calibration, same per-restart leftover
// budgets, same merge and stop rules — but in sweep-sized steps the caller
// can pause between.  That is the seam the parallel-tempering runner
// (runtime/tempering.h) needs: K replicas advance in fixed-length rounds,
// exchange states at the barrier, and resume with their RNG, temperature
// and incremental evaluator state intact.  `runSweeps` crosses restart
// boundaries on its own, so a paused driver run to completion produces the
// sequential result bit for bit (pinned by the degeneration suite in
// tests/runtime_test.cpp).
//
// `tempScale` multiplies the calibrated t0 of every run the driver starts
// (and tFreeze follows, so the freeze horizon keeps the same sweep count).
// A scale of 1.0 multiplies exactly (IEEE754) — the default is bit-identical
// to the sequential loop; a ladder of scales > 1 yields the hotter replicas
// of a tempering ladder.
//
// All per-run state (current state, candidate buffer, calibration probe,
// per-run result) lives in members that are copy-assigned, never
// reconstructed, so resuming across rounds performs no steady-state
// allocations once every buffer reached its high-water capacity.
template <class State, class Eval, class MoveF>
class AnnealDriver {
 public:
  AnnealDriver(const State& init, Eval eval, MoveF move,
               const AnnealOptions& options, double tempScale = 1.0)
      : eval_(std::forward<Eval>(eval)),
        move_(std::forward<MoveF>(move)),
        options_(options),
        tempScale_(tempScale),
        init_(init),
        best_{init, eval_.full(init), 0, 0, 0, 0.0},
        cur_(init),
        moveBuf_(init),
        probe_(init),
        runResult_{init, 0.0, 0, 0, 0, 0.0},
        seed_(options.seed),
        sweepCapped_(options.maxSweeps > 0),
        timed_(options.timeLimitSec > 0.0) {
    options_.movesPerTemp =
        resolveMovesPerTemp(options.movesPerTemp, options.sizeHint);
    beginRun();
  }

  /// Executes up to `maxSweeps` temperature steps (crossing restart
  /// boundaries; a boundary's re-seed + calibration is not a sweep) and
  /// returns the number actually executed — fewer only when the whole
  /// schedule finished.
  std::size_t runSweeps(std::size_t maxSweeps) {
    std::size_t done = 0;
    while (!finished_ && done < maxSweeps) {
      if (cancelRequested(options_.cancel)) {
        // Cancellation ends the whole schedule: merge the active run so
        // `finalize()` reports best-so-far, and never start another
        // restart.  The evaluator/scratch state is at a sweep boundary,
        // hence consistent and reusable.
        mergeRun();
        finished_ = true;
        break;
      }
      if (t_ > tFreeze_ &&
          (runBudget_ == 0 || runResult_.sweeps < runBudget_) &&
          (!timed_ || runClock_.seconds() < runTimeCap_)) {
        annealPass(cur_, curCost_, options_.movesPerTemp, eval_, move_, rng_,
                   moveBuf_,
                   [&](double delta) {
                     ++runResult_.movesTried;
                     return delta <= 0.0 ||
                            rng_.uniform() < std::exp(-delta / t_);
                   },
                   [&] {
                     ++runResult_.movesAccepted;
                     if (curCost_ < runResult_.bestCost) {
                       runResult_.best = cur_;
                       runResult_.bestCost = curCost_;
                     }
                   });
        t_ *= options_.coolingFactor;
        ++runResult_.sweeps;
        ++done;
      } else {
        endRun();
      }
    }
    return done;
  }

  /// Runs the remaining schedule to completion.
  void run() {
    while (!finished_) {
      runSweeps(static_cast<std::size_t>(-1));
    }
  }

  bool finished() const { return finished_; }

  /// The state the Metropolis walk currently sits on.  Mutable access is the
  /// replica-exchange seam: after writing through it, call `reanchor()`.
  State& currentState() { return cur_; }
  const State& currentState() const { return cur_; }
  double currentCost() const { return curCost_; }

  /// Current SA temperature (already ladder-scaled).
  double temperature() const { return t_; }

  double bestCost() const {
    return finished_ ? best_.bestCost
                     : std::min(best_.bestCost, runResult_.bestCost);
  }

  /// Best state over finished runs and the active run.
  const State& bestState() const {
    if (!finished_ && runResult_.bestCost < best_.bestCost) {
      return runResult_.best;
    }
    return best_.best;
  }

  /// Sweeps executed so far (finished runs + the active run).
  std::size_t sweepsDone() const {
    return best_.sweeps + (finished_ ? 0 : runResult_.sweeps);
  }

  /// Re-anchors the evaluator after `currentState()` was mutated externally
  /// (a replica exchange or a cross-backend reseed): full re-evaluation,
  /// best tracking, no RNG consumed — so exchanges at deterministic rounds
  /// keep the whole trajectory a pure function of the schedule.
  void reanchor() {
    curCost_ = eval_.full(cur_);
    if (!finished_ && curCost_ < runResult_.bestCost) {
      runResult_.best = cur_;
      runResult_.bestCost = curCost_;
    }
  }

  /// Swaps the current states of two replicas of the SAME problem (their
  /// evaluators re-anchor; RNG streams stay put).
  static void exchange(AnnealDriver& a, AnnealDriver& b) {
    using std::swap;
    swap(a.cur_, b.cur_);
    a.reanchor();
    b.reanchor();
  }

  /// The aggregate result; only meaningful once `finished()`.  Runs the
  /// remaining schedule first so a plain construct-finalize sequence is the
  /// sequential driver.
  AnnealResult<State> finalize() {
    run();
    AnnealResult<State> result = best_;
    result.seconds = clock_.seconds();
    return result;
  }

 private:
  void beginRun() {
    rng_ = Rng(seed_);
    runClock_.reset();
    cur_ = init_;
    curCost_ = eval_.full(cur_);
    runResult_.best = cur_;
    runResult_.bestCost = curCost_;
    runResult_.movesTried = 0;
    runResult_.movesAccepted = 0;
    runResult_.sweeps = 0;

    // Calibrate t0 so that `initialAcceptance` of sampled uphill moves
    // pass — the 50-move accept-all walk of annealImpl, verbatim.
    double upSum = 0.0;
    std::size_t upCount = 0;
    probe_ = cur_;
    double probeCost = curCost_;
    annealPass(probe_, probeCost, 50, eval_, move_, rng_, moveBuf_,
               [&](double delta) {
                 if (delta > 0.0) {
                   upSum += delta;
                   ++upCount;
                 }
                 return true;
               },
               [] {});
    eval_.rebase(cur_);  // the calibration walk moved the committed state
    double meanUp = upCount ? upSum / static_cast<double>(upCount) : 1.0;
    if (meanUp <= 0.0) meanUp = 1.0;
    t_ = -meanUp / std::log(options_.initialAcceptance);
    t_ *= tempScale_;
    tFreeze_ = t_ * options_.freezeRatio;

    runBudget_ = sweepCapped_ ? options_.maxSweeps - best_.sweeps : 0;
    if (timed_) {
      runTimeCap_ = std::max(1e-9, options_.timeLimitSec - clock_.seconds());
    }
  }

  void mergeRun() {
    best_.movesTried += runResult_.movesTried;
    best_.movesAccepted += runResult_.movesAccepted;
    best_.sweeps += runResult_.sweeps;
    if (runResult_.bestCost < best_.bestCost) {
      best_.best = runResult_.best;
      best_.bestCost = runResult_.bestCost;
    }
  }

  void endRun() {
    mergeRun();
    seed_ = nextRestartSeed(seed_);
    // A restart is funded only while every *active* budget has leftover;
    // with no budget at all a single (freeze-terminated) run is the answer.
    // A run of zero sweeps (budget rounded to nothing) cannot make
    // progress; stop instead of spinning.
    bool sweepsLeft = sweepCapped_ && best_.sweeps < options_.maxSweeps;
    bool timeLeft = timed_ && clock_.seconds() < options_.timeLimitSec;
    if ((sweepCapped_ && !sweepsLeft) || (timed_ && !timeLeft) ||
        (!sweepCapped_ && !timed_) || runResult_.sweeps == 0) {
      finished_ = true;
      return;
    }
    beginRun();
  }

  Eval eval_;
  MoveF move_;
  AnnealOptions options_;  // movesPerTemp resolved once at construction
  double tempScale_;
  Stopwatch clock_;     // whole-schedule wall clock
  Stopwatch runClock_;  // active run's wall clock (secondary time cap)

  State init_;
  AnnealResult<State> best_;       // merged result of the finished runs
  State cur_;
  double curCost_ = 0.0;
  State moveBuf_;                  // persistent candidate buffer
  State probe_;                    // persistent calibration-walk buffer
  AnnealResult<State> runResult_;  // active run's accounting
  Rng rng_{0};
  double t_ = 0.0;
  double tFreeze_ = 0.0;
  std::size_t runBudget_ = 0;   // active run's sweep cap (0 = uncapped)
  double runTimeCap_ = 0.0;     // active run's leftover wall clock
  std::uint64_t seed_;
  const bool sweepCapped_;
  const bool timed_;
  bool finished_ = false;
};

template <class State, class Eval, class MoveF>
AnnealResult<State> annealWithRestartsImpl(const State& init, Eval& eval,
                                           MoveF& move,
                                           const AnnealOptions& options) {
  // The driver IS the historic restart loop (same trajectory, bit for bit);
  // the sequential entry point just runs it to completion in one go.
  AnnealDriver<State, Eval&, MoveF&> driver(init, eval, move, options);
  return driver.finalize();
}

}  // namespace detail

/// Runs simulated annealing from `init`.
///
/// `cost`:  double(const State&) — smaller is better.
/// `move`:  either State(const State&, Rng&) — proposes a neighbouring
///          state by value (the classic copying style) — or
///          void(State&, Rng&) — perturbs IN PLACE a buffer already holding
///          a copy of the current state.  The in-place style keeps the
///          steady-state move loop free of heap allocations (the engine
///          swaps the persistent buffer in on acceptance); both styles
///          produce bit-identical trajectories for the same perturbation
///          logic.
template <class State, class CostF, class MoveF>
AnnealResult<State> anneal(State init, CostF&& cost, MoveF&& move,
                           const AnnealOptions& opt) {
  detail::ScratchEval<CostF> eval{cost};
  return detail::annealImpl(std::move(init), eval, move, opt);
}

/// Incremental-protocol overload: states are decoded to placements and
/// delta-evaluated by `model` (cost/cost_model.h) — a rejected move is a
/// rollback, not a state copy plus full recompute.
///
/// `model`:   propose/commit/rollback cost model, owned by the caller.
///            After the run its committed state is the LAST-ACCEPTED state
///            of the trajectory, not `result.best` — re-evaluate the best
///            state (e.g. `model.evaluateBreakdown(*decode(result.best))`)
///            for result reporting.
/// `decode`:  the packing step; returns an optional-like handle to the
///            decoded placement — `std::optional<Placement>` by value, or
///            `const Placement*` into a reusable scratch buffer (the
///            allocation-free style; the result need only stay valid until
///            the next decode call).  An empty/null result marks the state
///            infeasible (`model.infeasibleCost()`).
///
/// The trajectory — every cost value, every RNG draw, every acceptance —
/// is bit-identical to the scratch overload fed the equivalent
/// decode-then-evaluate cost lambda.
template <class State, class Model, class DecodeF, class MoveF>
AnnealResult<State> anneal(State init, Model& model, DecodeF&& decode,
                           MoveF&& move, const AnnealOptions& opt) {
  detail::IncrementalEval<Model, DecodeF> eval{model, decode};
  return detail::annealImpl(std::move(init), eval, move, opt);
}

/// Repeats annealing runs (freshly seeded each round) until the sweep budget
/// is exhausted and returns the best result.  A single geometric schedule
/// often freezes long before a realistic budget ends; restarts turn the
/// leftover budget into independent attempts, which is the standard
/// industrial recipe for the plateau-heavy landscapes of floorplan codes.
///
/// Budget semantics: `options.maxSweeps` is the *total* sweep budget across
/// all restarts (primary, deterministic); `options.timeLimitSec`, when
/// positive, caps the total wall clock (secondary).  The caller's options
/// struct is never mutated, and the leftover budget handed to each restart
/// is clamped to zero or above.
///
/// Restart seeds follow the shared schedule (`nextRestartSeed`), and the
/// `movesPerTemp` auto value is resolved once up front, so a parallel
/// portfolio splitting the same budget across pre-sized slices anneals on
/// the same per-restart schedule this loop would.
template <class State, class CostF, class MoveF>
AnnealResult<State> annealWithRestarts(const State& init, CostF&& cost,
                                       MoveF&& move,
                                       const AnnealOptions& options) {
  detail::ScratchEval<CostF> eval{cost};
  return detail::annealWithRestartsImpl(init, eval, move, options);
}

/// Incremental-protocol overload of the restart driver; see the `anneal`
/// overload above for the model/decode contract.
template <class State, class Model, class DecodeF, class MoveF>
AnnealResult<State> annealWithRestarts(const State& init, Model& model,
                                       DecodeF&& decode, MoveF&& move,
                                       const AnnealOptions& options) {
  detail::IncrementalEval<Model, DecodeF> eval{model, decode};
  return detail::annealWithRestartsImpl(init, eval, move, options);
}

}  // namespace als
