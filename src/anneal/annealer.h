// Generic simulated-annealing engine (Kirkpatrick et al. [12]).
//
// Both stochastic placers of the library — the Section II sequence-pair
// placer and the Section III (H)B*-tree placer — and the Section V sizing
// optimizer share this engine.  States are value types; a move produces a
// mutated copy, which keeps the engine trivially exception-safe and lets
// move implementations stay simple (analog placements are small, so copying
// an encoding is cheap relative to packing it).
//
// Temperature schedule: geometric cooling with an initial temperature
// calibrated from the mean uphill delta of a random-walk sample, the classic
// recipe that makes one knob work across differently scaled cost functions.
//
// Stopping rules: the primary budget is `maxSweeps`, a count of temperature
// steps.  For a fixed seed the trajectory is then a pure function of the
// options — identical on a loaded CI box, under sanitizers, or on faster
// hardware.  `timeLimitSec` remains available as a *secondary* wall-clock
// cap (0 disables it); results obtained under an active time cap are not
// reproducible and should be reserved for interactive/budgeted use.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace als {

struct AnnealOptions {
  double coolingFactor = 0.96;    ///< geometric alpha per temperature step
  std::size_t movesPerTemp = 0;   ///< 0 = auto (scaled by a problem-size hint)
  std::size_t sizeHint = 16;      ///< problem size used when movesPerTemp == 0
  double initialAcceptance = 0.9; ///< target uphill acceptance at t0
  double freezeRatio = 1e-4;      ///< stop when t < t0 * freezeRatio
  std::size_t maxSweeps = 256;    ///< primary budget: temperature steps (0 = uncapped)
  double timeLimitSec = 0.0;      ///< secondary wall-clock cap (0 = uncapped)
  std::uint64_t seed = 42;
};

template <class State>
struct AnnealResult {
  State best;
  double bestCost = 0.0;
  std::size_t movesTried = 0;
  std::size_t movesAccepted = 0;
  std::size_t sweeps = 0;  ///< temperature steps actually executed
  double seconds = 0.0;
};

// ---------------------------------------------------------------------------
// Restart schedule — the shared vocabulary of every multi-start driver.
//
// Both the sequential restart loop below and the parallel portfolio runner
// (runtime/portfolio.h) derive their per-restart seeds and sweep budgets
// from these helpers.

/// Seed of the restart following `seed` (an LCG step with Knuth's MMIX
/// constants — full period over 2^64, so schedule seeds never repeat).
constexpr std::uint64_t nextRestartSeed(std::uint64_t seed) {
  return seed * 6364136223846793005ull + 1442695040888963407ull;
}

/// Seed of portfolio slice `index` rooted at `baseSeed`.  Slice 0 is
/// `baseSeed` itself (a 1-restart portfolio must match a plain engine call
/// bit for bit); later slices are splitmix64-mixed rather than consecutive
/// LCG iterates.  The distinction matters: a slice that freezes before its
/// budget is spent restarts *internally* on `nextRestartSeed(seed)`, and
/// with consecutive iterates that internal stream would replay the next
/// slice's seed — duplicating annealing work across slices.  Mixing keeps
/// every slice's stream disjoint.
constexpr std::uint64_t portfolioSeedAt(std::uint64_t baseSeed,
                                        std::size_t index) {
  if (index == 0) return baseSeed;
  std::uint64_t z =
      baseSeed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Sweep budget of restart `index` when `totalSweeps` is split across
/// `numRestarts` fixed slices: the remainder goes to the earliest restarts,
/// so slices differ by at most one sweep and sum exactly to the total.
constexpr std::size_t splitSweepBudget(std::size_t totalSweeps,
                                       std::size_t numRestarts,
                                       std::size_t index) {
  if (numRestarts == 0) return totalSweeps;
  return totalSweeps / numRestarts + (index < totalSweeps % numRestarts);
}

/// The auto-scaling rule behind `movesPerTemp == 0`.  Drivers that split one
/// run into several restarts must resolve the auto value ONCE per run (not
/// per restart) and pass the resolved value down, so every slice anneals on
/// the schedule the equivalent sequential run would have used.
constexpr std::size_t resolveMovesPerTemp(std::size_t movesPerTemp,
                                          std::size_t sizeHint) {
  return movesPerTemp ? movesPerTemp : 10 * sizeHint;
}

// ---------------------------------------------------------------------------
// Evaluation seams.  The annealing loops below are written against a small
// evaluator interface so that one implementation serves both cost styles:
//
//   full(s)     evaluate `s` and make it the evaluator's committed state
//   propose(s)  cost of a candidate next to the committed state
//   accept()    the candidate becomes the committed state
//   reject()    the candidate is discarded
//   rebase(s)   re-anchor the committed state to `s` (after the calibration
//               walk wandered away from it)
//
// `ScratchEval` is the classic stateless style — every propose re-derives
// the cost from the state, accept/reject/rebase are no-ops.  The costs it
// produces and the RNG stream it induces are exactly those of the historic
// hand-rolled loops.
//
// `IncrementalEval` drives the propose/commit/rollback protocol of a delta-
// evaluating cost model (cost/cost_model.h is the library's implementation,
// but any type with reset/propose/commit/rollback/invalidate/infeasibleCost
// fits): states are decoded to placements, the model re-reduces only what a
// move dirtied, and a rejected move is a rollback instead of a state copy +
// full recompute.  `decode` returns anything optional-like (contextually
// bool + dereferenceable): `std::optional<Placement>` by value, or — the
// allocation-free style every backend uses — a `const Placement*` aliasing
// a scratch buffer.  An aliased placement is only valid until the NEXT
// decode call, so the evaluator consumes it immediately and the model must
// copy what it keeps (CostModel diff-copies changed rects).  Decoding may
// fail (empty optional / nullptr); such states cost
// `model.infeasibleCost()`, and accepting one drops the model's committed
// state so the next feasible propose re-seeds it.

namespace detail {

/// Move-seam detection: a move callable is either the classic copying style
/// `State(const State&, Rng&)` or the allocation-free in-place style
/// `void(State&, Rng&)`.  The in-place style receives a buffer that already
/// holds a copy of the current state, perturbs it, and the loop swaps the
/// buffer in on acceptance — the steady-state move loop then performs no
/// state construction at all.  Both styles draw the same RNG stream for the
/// same perturbation logic, so trajectories are identical.
template <class MoveF, class State>
inline constexpr bool kInPlaceMove =
    std::is_void_v<std::invoke_result_t<MoveF&, State&, Rng&>>;

template <class CostF>
struct ScratchEval {
  CostF& cost;
  template <class State> double full(const State& s) { return cost(s); }
  template <class State> double propose(const State& s) { return cost(s); }
  template <class State> void rebase(const State&) {}
  void accept() {}
  void reject() {}
};

/// A decoder (any callable with extra members) can opt in to the hinted
/// `model.propose(p, moved)` fast path by exposing two members:
///
///   movedModules()  ids of the modules whose rects may differ from the
///                   model's COMMITTED placement — a superset is fine
///                   (duplicates and unmoved entries are allowed, missing
///                   moved modules are not).  Decoders accumulate this
///                   across rejected moves: each decode appends what it
///                   touched relative to its own previous decode, which by
///                   the triangle property covers the committed diff.
///   committed()     notification that the model's committed state caught
///                   up with the decoder's LAST SUCCESSFUL decode (a full
///                   re-seed or an accepted feasible move) — the moved
///                   accumulator restarts from empty.
///
/// When the model invalidates (infeasible accept), no notification fires:
/// the model is unseeded, hinted propose falls back to a full evaluation
/// until the next commit re-seeds it — at which point committed() fires
/// and the accumulator resets.
template <class Model, class DecodeF>
struct IncrementalEval {
  Model& model;
  DecodeF& decode;
  bool pendingInfeasible = false;

  void notifyCommitted() {
    if constexpr (requires { decode.committed(); }) decode.committed();
  }

  template <class State> double full(const State& s) {
    auto placed = decode(s);
    if (!placed) {
      model.invalidate();
      return model.infeasibleCost();
    }
    double c = model.reset(*placed);
    notifyCommitted();
    return c;
  }
  template <class State> double propose(const State& s) {
    auto placed = decode(s);
    pendingInfeasible = !placed;
    if (!placed) return model.infeasibleCost();
    if constexpr (requires {
                    model.propose(*placed, decode.movedModules());
                    decode.committed();
                  }) {
      return model.propose(*placed, decode.movedModules());
    } else {
      return model.propose(*placed);
    }
  }
  template <class State> void rebase(const State& s) { full(s); }
  void accept() {
    if (pendingInfeasible) {
      model.invalidate();
    } else {
      model.commit();
      notifyCommitted();
    }
  }
  void reject() {
    if (!pendingInfeasible) model.rollback();
  }
};

/// The one acceptance loop behind both the calibration walk and the
/// Metropolis sweeps: propose `count` moves from `cur`, let `acceptMove`
/// decide on each delta, and keep the evaluator's committed state in step
/// with `cur`.  `onAccept` runs after `cur`/`curCost` advanced.  `moveBuf`
/// is the persistent candidate buffer of the in-place move style: the loop
/// copy-assigns `cur` into it (reusing its heap storage), perturbs in
/// place, and swaps on acceptance — no per-move construction, no per-move
/// copy of the decoded placement, identical values either way.
template <class State, class Eval, class MoveF, class AcceptF, class OnAcceptF>
void annealPass(State& cur, double& curCost, std::size_t count, Eval& eval,
                MoveF& move, Rng& rng, State& moveBuf, AcceptF&& acceptMove,
                OnAcceptF&& onAccept) {
  for (std::size_t i = 0; i < count; ++i) {
    if constexpr (kInPlaceMove<MoveF, State>) {
      moveBuf = cur;
      move(moveBuf, rng);
      double nextCost = eval.propose(moveBuf);
      if (acceptMove(nextCost - curCost)) {
        eval.accept();
        using std::swap;
        swap(cur, moveBuf);
        curCost = nextCost;
        onAccept();
      } else {
        eval.reject();
      }
    } else {
      State next = move(cur, rng);
      double nextCost = eval.propose(next);
      if (acceptMove(nextCost - curCost)) {
        eval.accept();
        cur = std::move(next);
        curCost = nextCost;
        onAccept();
      } else {
        eval.reject();
      }
    }
  }
}

template <class State, class Eval, class MoveF>
AnnealResult<State> annealImpl(State init, Eval& eval, MoveF& move,
                               const AnnealOptions& opt) {
  Rng rng(opt.seed);
  Stopwatch clock;

  State cur = std::move(init);
  double curCost = eval.full(cur);
  AnnealResult<State> result{cur, curCost, 0, 0, 0, 0.0};
  State moveBuf = cur;  // persistent candidate buffer (in-place move style)

  // Calibrate t0 so that `initialAcceptance` of sampled uphill moves pass:
  // a 50-move random walk that accepts everything and records the uphill
  // deltas.
  double upSum = 0.0;
  std::size_t upCount = 0;
  {
    State probe = cur;
    double probeCost = curCost;
    annealPass(probe, probeCost, 50, eval, move, rng, moveBuf,
               [&](double delta) {
                 if (delta > 0.0) {
                   upSum += delta;
                   ++upCount;
                 }
                 return true;
               },
               [] {});
  }
  eval.rebase(cur);  // the calibration walk moved the committed state
  double meanUp = upCount ? upSum / static_cast<double>(upCount) : 1.0;
  if (meanUp <= 0.0) meanUp = 1.0;
  double t = -meanUp / std::log(opt.initialAcceptance);
  double tFreeze = t * opt.freezeRatio;

  std::size_t movesPerTemp =
      resolveMovesPerTemp(opt.movesPerTemp, opt.sizeHint);

  const bool timed = opt.timeLimitSec > 0.0;
  while (t > tFreeze &&
         (opt.maxSweeps == 0 || result.sweeps < opt.maxSweeps) &&
         (!timed || clock.seconds() < opt.timeLimitSec)) {
    annealPass(cur, curCost, movesPerTemp, eval, move, rng, moveBuf,
               [&](double delta) {
                 ++result.movesTried;
                 return delta <= 0.0 || rng.uniform() < std::exp(-delta / t);
               },
               [&] {
                 ++result.movesAccepted;
                 if (curCost < result.bestCost) {
                   result.best = cur;
                   result.bestCost = curCost;
                 }
               });
    t *= opt.coolingFactor;
    ++result.sweeps;
  }
  result.seconds = clock.seconds();
  return result;
}

template <class State, class Eval, class MoveF>
AnnealResult<State> annealWithRestartsImpl(const State& init, Eval& eval,
                                           MoveF& move,
                                           const AnnealOptions& options) {
  Stopwatch clock;
  AnnealResult<State> best{init, eval.full(init), 0, 0, 0, 0.0};
  const bool sweepCapped = options.maxSweeps > 0;
  const bool timed = options.timeLimitSec > 0.0;
  AnnealOptions opt = options;  // local working copy; caller's struct untouched
  opt.movesPerTemp = resolveMovesPerTemp(options.movesPerTemp, options.sizeHint);
  std::uint64_t seed = options.seed;
  for (;;) {
    opt.seed = seed;
    if (sweepCapped) opt.maxSweeps = options.maxSweeps - best.sweeps;
    if (timed) {
      opt.timeLimitSec =
          std::max(1e-9, options.timeLimitSec - clock.seconds());
    }
    AnnealResult<State> run = annealImpl(init, eval, move, opt);
    best.movesTried += run.movesTried;
    best.movesAccepted += run.movesAccepted;
    best.sweeps += run.sweeps;
    if (run.bestCost < best.bestCost) {
      best.best = std::move(run.best);
      best.bestCost = run.bestCost;
    }
    seed = nextRestartSeed(seed);
    // A restart is funded only while every *active* budget has leftover;
    // with no budget at all a single (freeze-terminated) run is the answer.
    bool sweepsLeft = sweepCapped && best.sweeps < options.maxSweeps;
    bool timeLeft = timed && clock.seconds() < options.timeLimitSec;
    if (sweepCapped && !sweepsLeft) break;
    if (timed && !timeLeft) break;
    if (!sweepCapped && !timed) break;
    // Degenerate guard: a run that executed zero sweeps (budget rounded to
    // nothing) cannot make progress; stop instead of spinning.
    if (run.sweeps == 0) break;
  }
  best.seconds = clock.seconds();
  return best;
}

}  // namespace detail

/// Runs simulated annealing from `init`.
///
/// `cost`:  double(const State&) — smaller is better.
/// `move`:  either State(const State&, Rng&) — proposes a neighbouring
///          state by value (the classic copying style) — or
///          void(State&, Rng&) — perturbs IN PLACE a buffer already holding
///          a copy of the current state.  The in-place style keeps the
///          steady-state move loop free of heap allocations (the engine
///          swaps the persistent buffer in on acceptance); both styles
///          produce bit-identical trajectories for the same perturbation
///          logic.
template <class State, class CostF, class MoveF>
AnnealResult<State> anneal(State init, CostF&& cost, MoveF&& move,
                           const AnnealOptions& opt) {
  detail::ScratchEval<CostF> eval{cost};
  return detail::annealImpl(std::move(init), eval, move, opt);
}

/// Incremental-protocol overload: states are decoded to placements and
/// delta-evaluated by `model` (cost/cost_model.h) — a rejected move is a
/// rollback, not a state copy plus full recompute.
///
/// `model`:   propose/commit/rollback cost model, owned by the caller.
///            After the run its committed state is the LAST-ACCEPTED state
///            of the trajectory, not `result.best` — re-evaluate the best
///            state (e.g. `model.evaluateBreakdown(*decode(result.best))`)
///            for result reporting.
/// `decode`:  the packing step; returns an optional-like handle to the
///            decoded placement — `std::optional<Placement>` by value, or
///            `const Placement*` into a reusable scratch buffer (the
///            allocation-free style; the result need only stay valid until
///            the next decode call).  An empty/null result marks the state
///            infeasible (`model.infeasibleCost()`).
///
/// The trajectory — every cost value, every RNG draw, every acceptance —
/// is bit-identical to the scratch overload fed the equivalent
/// decode-then-evaluate cost lambda.
template <class State, class Model, class DecodeF, class MoveF>
AnnealResult<State> anneal(State init, Model& model, DecodeF&& decode,
                           MoveF&& move, const AnnealOptions& opt) {
  detail::IncrementalEval<Model, DecodeF> eval{model, decode};
  return detail::annealImpl(std::move(init), eval, move, opt);
}

/// Repeats annealing runs (freshly seeded each round) until the sweep budget
/// is exhausted and returns the best result.  A single geometric schedule
/// often freezes long before a realistic budget ends; restarts turn the
/// leftover budget into independent attempts, which is the standard
/// industrial recipe for the plateau-heavy landscapes of floorplan codes.
///
/// Budget semantics: `options.maxSweeps` is the *total* sweep budget across
/// all restarts (primary, deterministic); `options.timeLimitSec`, when
/// positive, caps the total wall clock (secondary).  The caller's options
/// struct is never mutated, and the leftover budget handed to each restart
/// is clamped to zero or above.
///
/// Restart seeds follow the shared schedule (`nextRestartSeed`), and the
/// `movesPerTemp` auto value is resolved once up front, so a parallel
/// portfolio splitting the same budget across pre-sized slices anneals on
/// the same per-restart schedule this loop would.
template <class State, class CostF, class MoveF>
AnnealResult<State> annealWithRestarts(const State& init, CostF&& cost,
                                       MoveF&& move,
                                       const AnnealOptions& options) {
  detail::ScratchEval<CostF> eval{cost};
  return detail::annealWithRestartsImpl(init, eval, move, options);
}

/// Incremental-protocol overload of the restart driver; see the `anneal`
/// overload above for the model/decode contract.
template <class State, class Model, class DecodeF, class MoveF>
AnnealResult<State> annealWithRestarts(const State& init, Model& model,
                                       DecodeF&& decode, MoveF&& move,
                                       const AnnealOptions& options) {
  detail::IncrementalEval<Model, DecodeF> eval{model, decode};
  return detail::annealWithRestartsImpl(init, eval, move, options);
}

}  // namespace als
