// Generic simulated-annealing engine (Kirkpatrick et al. [12]).
//
// Both stochastic placers of the library — the Section II sequence-pair
// placer and the Section III (H)B*-tree placer — and the Section V sizing
// optimizer share this engine.  States are value types; a move produces a
// mutated copy, which keeps the engine trivially exception-safe and lets
// move implementations stay simple (analog placements are small, so copying
// an encoding is cheap relative to packing it).
//
// Temperature schedule: geometric cooling with an initial temperature
// calibrated from the mean uphill delta of a random-walk sample, the classic
// recipe that makes one knob work across differently scaled cost functions.
//
// Stopping rules: the primary budget is `maxSweeps`, a count of temperature
// steps.  For a fixed seed the trajectory is then a pure function of the
// options — identical on a loaded CI box, under sanitizers, or on faster
// hardware.  `timeLimitSec` remains available as a *secondary* wall-clock
// cap (0 disables it); results obtained under an active time cap are not
// reproducible and should be reserved for interactive/budgeted use.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace als {

struct AnnealOptions {
  double coolingFactor = 0.96;    ///< geometric alpha per temperature step
  std::size_t movesPerTemp = 0;   ///< 0 = auto (scaled by a problem-size hint)
  std::size_t sizeHint = 16;      ///< problem size used when movesPerTemp == 0
  double initialAcceptance = 0.9; ///< target uphill acceptance at t0
  double freezeRatio = 1e-4;      ///< stop when t < t0 * freezeRatio
  std::size_t maxSweeps = 256;    ///< primary budget: temperature steps (0 = uncapped)
  double timeLimitSec = 0.0;      ///< secondary wall-clock cap (0 = uncapped)
  std::uint64_t seed = 42;
};

template <class State>
struct AnnealResult {
  State best;
  double bestCost = 0.0;
  std::size_t movesTried = 0;
  std::size_t movesAccepted = 0;
  std::size_t sweeps = 0;  ///< temperature steps actually executed
  double seconds = 0.0;
};

/// Runs simulated annealing from `init`.
///
/// `cost`:  double(const State&) — smaller is better.
/// `move`:  State(const State&, Rng&) — proposes a neighbouring state.
template <class State, class CostF, class MoveF>
AnnealResult<State> anneal(State init, CostF&& cost, MoveF&& move,
                           const AnnealOptions& opt) {
  Rng rng(opt.seed);
  Stopwatch clock;

  State cur = std::move(init);
  double curCost = cost(cur);
  AnnealResult<State> result{cur, curCost, 0, 0, 0, 0.0};

  // Calibrate t0 so that `initialAcceptance` of sampled uphill moves pass.
  double upSum = 0.0;
  std::size_t upCount = 0;
  {
    State probe = cur;
    double probeCost = curCost;
    for (std::size_t i = 0; i < 50; ++i) {
      State next = move(probe, rng);
      double nextCost = cost(next);
      if (nextCost > probeCost) {
        upSum += nextCost - probeCost;
        ++upCount;
      }
      probe = std::move(next);
      probeCost = nextCost;
    }
  }
  double meanUp = upCount ? upSum / static_cast<double>(upCount) : 1.0;
  if (meanUp <= 0.0) meanUp = 1.0;
  double t = -meanUp / std::log(opt.initialAcceptance);
  double tFreeze = t * opt.freezeRatio;

  std::size_t movesPerTemp =
      opt.movesPerTemp ? opt.movesPerTemp : 10 * opt.sizeHint;

  const bool timed = opt.timeLimitSec > 0.0;
  while (t > tFreeze &&
         (opt.maxSweeps == 0 || result.sweeps < opt.maxSweeps) &&
         (!timed || clock.seconds() < opt.timeLimitSec)) {
    for (std::size_t i = 0; i < movesPerTemp; ++i) {
      State next = move(cur, rng);
      double nextCost = cost(next);
      ++result.movesTried;
      double delta = nextCost - curCost;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / t)) {
        cur = std::move(next);
        curCost = nextCost;
        ++result.movesAccepted;
        if (curCost < result.bestCost) {
          result.best = cur;
          result.bestCost = curCost;
        }
      }
    }
    t *= opt.coolingFactor;
    ++result.sweeps;
  }
  result.seconds = clock.seconds();
  return result;
}

/// Repeats annealing runs (freshly seeded each round) until the sweep budget
/// is exhausted and returns the best result.  A single geometric schedule
/// often freezes long before a realistic budget ends; restarts turn the
/// leftover budget into independent attempts, which is the standard
/// industrial recipe for the plateau-heavy landscapes of floorplan codes.
///
/// Budget semantics: `options.maxSweeps` is the *total* sweep budget across
/// all restarts (primary, deterministic); `options.timeLimitSec`, when
/// positive, caps the total wall clock (secondary).  The caller's options
/// struct is never mutated, and the leftover budget handed to each restart
/// is clamped to zero or above.
template <class State, class CostF, class MoveF>
AnnealResult<State> annealWithRestarts(const State& init, CostF&& cost,
                                       MoveF&& move,
                                       const AnnealOptions& options) {
  Stopwatch clock;
  AnnealResult<State> best{init, cost(init), 0, 0, 0, 0.0};
  const bool sweepCapped = options.maxSweeps > 0;
  const bool timed = options.timeLimitSec > 0.0;
  AnnealOptions opt = options;  // local working copy; caller's struct untouched
  std::uint64_t seed = options.seed;
  for (;;) {
    opt.seed = seed;
    if (sweepCapped) opt.maxSweeps = options.maxSweeps - best.sweeps;
    if (timed) {
      opt.timeLimitSec =
          std::max(1e-9, options.timeLimitSec - clock.seconds());
    }
    AnnealResult<State> run = anneal(init, cost, move, opt);
    best.movesTried += run.movesTried;
    best.movesAccepted += run.movesAccepted;
    best.sweeps += run.sweeps;
    if (run.bestCost < best.bestCost) {
      best.best = std::move(run.best);
      best.bestCost = run.bestCost;
    }
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    // A restart is funded only while every *active* budget has leftover;
    // with no budget at all a single (freeze-terminated) run is the answer.
    bool sweepsLeft = sweepCapped && best.sweeps < options.maxSweeps;
    bool timeLeft = timed && clock.seconds() < options.timeLimitSec;
    if (sweepCapped && !sweepsLeft) break;
    if (timed && !timeLeft) break;
    if (!sweepCapped && !timed) break;
    // Degenerate guard: a run that executed zero sweeps (budget rounded to
    // nothing) cannot make progress; stop instead of spinning.
    if (run.sweeps == 0) break;
  }
  best.seconds = clock.seconds();
  return best;
}

}  // namespace als
