// A placement is a list of placed rectangles indexed by module id, together
// with the legality / quality queries every placer in the library shares:
// overlap detection, bounding box, dead space, half-perimeter wirelength and
// exact mirror-symmetry checks.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "geom/rect.h"

namespace als {

/// Placement of n modules; entry i is the placed rectangle of module i.
class Placement {
 public:
  Placement() = default;
  explicit Placement(std::size_t n) : rects_(n) {}
  explicit Placement(std::vector<Rect> rects) : rects_(std::move(rects)) {}

  std::size_t size() const { return rects_.size(); }
  bool empty() const { return rects_.empty(); }
  Rect& operator[](std::size_t i) { return rects_[i]; }
  const Rect& operator[](std::size_t i) const { return rects_[i]; }
  const std::vector<Rect>& rects() const { return rects_; }

  void push(const Rect& r) { rects_.push_back(r); }

  /// Drops all rects, keeping the storage (for scratch-buffer reuse).
  void clear() { rects_.clear(); }

  /// Re-sizes to n zero rects, reusing the storage — the scratch-buffer
  /// equivalent of constructing `Placement(n)`.
  void assign(std::size_t n) { rects_.assign(n, Rect{}); }

  /// Smallest rectangle covering all modules; zero rect when empty.
  Rect boundingBox() const;

  /// Sum of module areas.
  Coord moduleArea() const;

  /// Bounding-box area minus module area (assumes legality).
  Coord deadSpace() const { return boundingBox().area() - moduleArea(); }

  /// True when no two modules overlap (O(n^2) exact check, fine for the
  /// module counts of analog placement).
  bool isLegal() const;

  /// Index pair of the first overlapping modules, or {npos,npos}.
  std::pair<std::size_t, std::size_t> firstOverlap() const;

  /// Translates all modules so the bounding box is anchored at the origin.
  void normalize();

  /// Mirrors the whole placement about the vertical line x = axis.
  void mirrorX(Coord axis);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<Rect> rects_;
};

/// Bounding box of one net's pin centers in *doubled* coordinates (the
/// center2x convention keeps half-DBU centers integral).  This is the
/// quantity the incremental cost layer (cost/cost_model.h) caches per net:
/// re-reducing a dirty net is one `netBox` call, and the net's HPWL follows
/// exactly from the box, so incremental and scratch totals agree bit for bit.
struct NetBox {
  Coord xlo2 = 0;
  Coord xhi2 = 0;
  Coord ylo2 = 0;
  Coord yhi2 = 0;

  /// Half-perimeter wirelength of the box, in DBU (undoubled).
  Coord hpwl() const { return ((xhi2 - xlo2) + (yhi2 - ylo2)) / 2; }

  friend bool operator==(const NetBox&, const NetBox&) = default;
};

/// Reduces one net's pin centers to their bounding box; the zero box for an
/// empty net (its HPWL is 0 either way).
NetBox netBox(const Placement& p, std::span<const std::size_t> net);

/// Half-perimeter wirelength of one net given member module indices; pins are
/// modelled at module centers (standard for device-level placement).
Coord hpwl(const Placement& p, const std::vector<std::size_t>& net);

/// Sum of HPWL over all nets.
Coord totalHpwl(const Placement& p, const std::vector<std::vector<std::size_t>>& nets);

/// True when the rects form one edge-connected region: every rect reachable
/// from every other through positive-length shared edges or overlap (corner
/// contact does not connect wells).  The proximity-constraint predicate.
bool isConnectedRegion(std::span<const Rect> rects);

/// Scratch-buffer overload for per-move callers (cost/cost_model.h): the
/// union-find parent array lives in `ufScratch`, so a warm caller performs
/// no heap allocation.
bool isConnectedRegion(std::span<const Rect> rects,
                       std::vector<std::size_t>& ufScratch);

/// Exact check that modules `a` and `b` are mirror images about the vertical
/// line 2x = axis2x (doubled coordinates keep half-DBU axes exact).
bool mirroredAboutX2(const Rect& a, const Rect& b, Coord axis2x);

/// Exact check that module `a` is centered on the vertical line 2x = axis2x.
bool centeredOnX2(const Rect& a, Coord axis2x);

/// Renders a coarse ASCII picture of the placement (for examples / debugging).
std::string asciiArt(const Placement& p, const std::vector<std::string>& names,
                     int maxCols = 72);

}  // namespace als
