// Rigid multi-rectangle macros: profiles and minimal-separation "slides".
//
// Two places in the library treat a packed sub-placement as a *rigid* unit
// whose rectilinear outline (not its bounding box) interacts with other
// geometry:
//   * enhanced shape-function addition (Section IV, Fig. 7): the right
//     operand slides left/down into the concavities of the left operand,
//     saving the paper's `w_imp` over bounding-box addition;
//   * HB*-tree hierarchy nodes (Section III): a hierarchical sub-circuit is
//     packed once and then placed as a macro whose bottom/top profiles meet
//     the parent contour ("contour nodes").
//
// The slide model: starting from far right (resp. far above), translate the
// rigid operand toward the other until first contact.  The contact offset is
// exactly max over rectangle pairs with orthogonal-range overlap of the
// facing-edge difference, which the functions below compute exactly in
// integer DBU.
#pragma once

#include <span>
#include <vector>

#include "geom/rect.h"

namespace als {

/// One step of a rectilinear profile: value `v` over the half-open
/// interval [lo, hi).
struct ProfileStep {
  Coord lo = 0;
  Coord hi = 0;
  Coord v = 0;
  friend bool operator==(const ProfileStep&, const ProfileStep&) = default;
};

/// Top profile: for each x-interval covered by at least one rectangle, the
/// maximum y-high among covering rectangles.  Steps are sorted by lo and
/// non-overlapping; x-ranges not covered by any rectangle are absent.
std::vector<ProfileStep> topProfile(std::span<const Rect> rects);

/// Bottom profile: minimum y-low per covered x-interval.
std::vector<ProfileStep> bottomProfile(std::span<const Rect> rects);

/// Scratch-buffer variants for per-move callers (HB*-tree decode): `out` is
/// overwritten with the profile, `cutScratch` holds the elementary-interval
/// breakpoints.  Warm buffers make the computation allocation-free.
void topProfileInto(std::span<const Rect> rects, std::vector<ProfileStep>& out,
                    std::vector<Coord>& cutScratch);
void bottomProfileInto(std::span<const Rect> rects,
                       std::vector<ProfileStep>& out,
                       std::vector<Coord>& cutScratch);

/// Right profile: maximum x-high per covered y-interval.
std::vector<ProfileStep> rightProfile(std::span<const Rect> rects);

/// Left profile: minimum x-low per covered y-interval.
std::vector<ProfileStep> leftProfile(std::span<const Rect> rects);

/// Minimal dx such that translating every rectangle of `right` by (dx, 0)
/// makes it overlap-free against `left`, under the slide-until-contact model
/// (right operand approaches from +x).  When no rectangle pair shares a
/// y-range the operands never collide and the function returns `noContact`.
Coord slideContactX(std::span<const Rect> left, std::span<const Rect> right);

/// Minimal dy for the vertical slide (upper operand approaches from +y).
Coord slideContactY(std::span<const Rect> lower, std::span<const Rect> upper);

/// Returned by slideContactX/Y when the operands can pass each other freely.
inline constexpr Coord noContact = INT64_MIN;

}  // namespace als
