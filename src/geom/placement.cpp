#include "geom/placement.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace als {

Rect Placement::boundingBox() const {
  if (rects_.empty()) return {};
  Coord xlo = std::numeric_limits<Coord>::max(), ylo = xlo;
  Coord xhi = std::numeric_limits<Coord>::min(), yhi = xhi;
  for (const Rect& r : rects_) {
    xlo = std::min(xlo, r.xlo());
    ylo = std::min(ylo, r.ylo());
    xhi = std::max(xhi, r.xhi());
    yhi = std::max(yhi, r.yhi());
  }
  return {xlo, ylo, xhi - xlo, yhi - ylo};
}

Coord Placement::moduleArea() const {
  Coord a = 0;
  for (const Rect& r : rects_) a += r.area();
  return a;
}

bool Placement::isLegal() const { return firstOverlap().first == npos; }

std::pair<std::size_t, std::size_t> Placement::firstOverlap() const {
  for (std::size_t i = 0; i < rects_.size(); ++i) {
    for (std::size_t j = i + 1; j < rects_.size(); ++j) {
      if (rects_[i].overlaps(rects_[j])) return {i, j};
    }
  }
  return {npos, npos};
}

void Placement::normalize() {
  Rect bb = boundingBox();
  for (Rect& r : rects_) {
    r.x -= bb.x;
    r.y -= bb.y;
  }
}

void Placement::mirrorX(Coord axis) {
  for (Rect& r : rects_) r = r.mirroredX(axis);
}

NetBox netBox(const Placement& p, std::span<const std::size_t> net) {
  if (net.empty()) return {};
  Coord xlo = std::numeric_limits<Coord>::max(), ylo = xlo;
  Coord xhi = std::numeric_limits<Coord>::min(), yhi = xhi;
  for (std::size_t m : net) {
    Point c = p[m].center2x();  // doubled coordinates
    xlo = std::min(xlo, c.x);
    xhi = std::max(xhi, c.x);
    ylo = std::min(ylo, c.y);
    yhi = std::max(yhi, c.y);
  }
  return {xlo, xhi, ylo, yhi};
}

Coord hpwl(const Placement& p, const std::vector<std::size_t>& net) {
  if (net.size() < 2) return 0;
  return netBox(p, net).hpwl();
}

Coord totalHpwl(const Placement& p, const std::vector<std::vector<std::size_t>>& nets) {
  Coord sum = 0;
  for (const auto& net : nets) sum += hpwl(p, net);
  return sum;
}

bool isConnectedRegion(std::span<const Rect> rects) {
  std::vector<std::size_t> parent;
  return isConnectedRegion(rects, parent);
}

bool isConnectedRegion(std::span<const Rect> rects,
                       std::vector<std::size_t>& ufScratch) {
  if (rects.empty()) return false;
  std::vector<std::size_t>& parent = ufScratch;
  parent.resize(rects.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  auto touches = [](const Rect& a, const Rect& b) {
    // Positive-length shared edge (corner contact does not connect wells).
    bool xAbut = (a.xhi() == b.xlo() || b.xhi() == a.xlo()) &&
                 std::min(a.yhi(), b.yhi()) > std::max(a.ylo(), b.ylo());
    bool yAbut = (a.yhi() == b.ylo() || b.yhi() == a.ylo()) &&
                 std::min(a.xhi(), b.xhi()) > std::max(a.xlo(), b.xlo());
    return xAbut || yAbut || a.overlaps(b);
  };
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      if (touches(rects[i], rects[j])) parent[find(i)] = find(j);
    }
  }
  std::size_t root = find(0);
  for (std::size_t i = 1; i < rects.size(); ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

bool mirroredAboutX2(const Rect& a, const Rect& b, Coord axis2x) {
  // With axis2x = 2 * axis, the mirror of span [a.x, a.x + a.w] starts at
  // 2*axis - (a.x + a.w); doubled coordinates keep half-DBU axes exact.
  return a.w == b.w && a.h == b.h && a.y == b.y && a.x + a.w + b.x == axis2x;
}

bool centeredOnX2(const Rect& a, Coord axis2x) { return 2 * a.x + a.w == axis2x; }

std::string asciiArt(const Placement& p, const std::vector<std::string>& names,
                     int maxCols) {
  Rect bb = p.boundingBox();
  if (bb.w <= 0 || bb.h <= 0) return "(empty placement)\n";
  int cols = maxCols;
  int rows = std::max(4, static_cast<int>(static_cast<double>(cols) * bb.h / bb.w / 2));
  rows = std::min(rows, 40);
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), '.'));
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Rect& r = p[i];
    char tag = names.size() > i && !names[i].empty()
                   ? names[i][0]
                   : static_cast<char>('A' + static_cast<int>(i % 26));
    int c0 = static_cast<int>((r.xlo() - bb.x) * cols / bb.w);
    int c1 = static_cast<int>((r.xhi() - bb.x) * cols / bb.w);
    int r0 = static_cast<int>((r.ylo() - bb.y) * rows / bb.h);
    int r1 = static_cast<int>((r.yhi() - bb.y) * rows / bb.h);
    c1 = std::min(c1, cols);
    r1 = std::min(r1, rows);
    for (int rr = r0; rr < std::max(r1, r0 + 1) && rr < rows; ++rr) {
      for (int cc = c0; cc < std::max(c1, c0 + 1) && cc < cols; ++cc) {
        grid[static_cast<std::size_t>(rr)][static_cast<std::size_t>(cc)] = tag;
      }
    }
  }
  std::string out;
  for (auto it = grid.rbegin(); it != grid.rend(); ++it) {  // y grows upward
    out += *it;
    out += '\n';
  }
  return out;
}

}  // namespace als
