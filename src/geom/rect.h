// Basic integer-DBU geometry: points and axis-aligned rectangles.
//
// All placement geometry in the library is expressed in integer database
// units (1 DBU = 1 nm) so that symmetry and abutment checks are exact; only
// electrical quantities use floating point.
#pragma once

#include <algorithm>
#include <cstdint>

namespace als {

using Coord = std::int64_t;

struct Point {
  Coord x = 0;
  Coord y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

/// Axis-aligned rectangle anchored at its lower-left corner.
struct Rect {
  Coord x = 0;
  Coord y = 0;
  Coord w = 0;
  Coord h = 0;

  Coord xlo() const { return x; }
  Coord ylo() const { return y; }
  Coord xhi() const { return x + w; }
  Coord yhi() const { return y + h; }
  Coord area() const { return w * h; }
  Point center2x() const { return {2 * x + w, 2 * y + h}; }  // doubled to stay integral

  bool contains(Point p) const {
    return p.x >= xlo() && p.x <= xhi() && p.y >= ylo() && p.y <= yhi();
  }

  /// Strict interior overlap (shared edges do not count).
  bool overlaps(const Rect& o) const {
    return xlo() < o.xhi() && o.xlo() < xhi() && ylo() < o.yhi() && o.ylo() < yhi();
  }

  /// Smallest rectangle covering both operands.
  Rect unionWith(const Rect& o) const {
    Coord nx = std::min(xlo(), o.xlo());
    Coord ny = std::min(ylo(), o.ylo());
    return {nx, ny, std::max(xhi(), o.xhi()) - nx, std::max(yhi(), o.yhi()) - ny};
  }

  /// Rectangle mirrored about the vertical line x = axis (axis in DBU).
  Rect mirroredX(Coord axis) const { return {2 * axis - x - w, y, w, h}; }
  /// Rectangle mirrored about the horizontal line y = axis.
  Rect mirroredY(Coord axis) const { return {x, 2 * axis - y - h, w, h}; }

  Rect translated(Coord dx, Coord dy) const { return {x + dx, y + dy, w, h}; }
  Rect rotated90() const { return {x, y, h, w}; }

  friend bool operator==(const Rect&, const Rect&) = default;
};

}  // namespace als
