#include "geom/profile.h"

#include <algorithm>
#include <limits>

namespace als {

namespace {

// Generic step-profile builder over elementary intervals.
//
// `lo`/`hi` select the sweep axis of each rect, `val` the profiled edge, and
// `better` the aggregation (max for top/right, min for bottom/left).  The
// cut and step vectors are caller-owned so warm callers never allocate.
template <class LoF, class HiF, class ValF, class BetterF>
void buildProfileInto(std::span<const Rect> rects, LoF lo, HiF hi, ValF val,
                      BetterF better, std::vector<ProfileStep>& steps,
                      std::vector<Coord>& cuts) {
  cuts.clear();
  steps.clear();
  for (const Rect& r : rects) {
    if (r.w <= 0 || r.h <= 0) continue;
    cuts.push_back(lo(r));
    cuts.push_back(hi(r));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    Coord a = cuts[i], b = cuts[i + 1];
    bool covered = false;
    Coord v = 0;
    for (const Rect& r : rects) {
      if (r.w <= 0 || r.h <= 0) continue;
      if (lo(r) <= a && hi(r) >= b) {
        if (!covered || better(val(r), v)) v = val(r);
        covered = true;
      }
    }
    if (!covered) continue;
    if (!steps.empty() && steps.back().hi == a && steps.back().v == v) {
      steps.back().hi = b;  // merge equal adjacent steps
    } else {
      steps.push_back({a, b, v});
    }
  }
}

template <class LoF, class HiF, class ValF, class BetterF>
std::vector<ProfileStep> buildProfile(std::span<const Rect> rects, LoF lo, HiF hi,
                                      ValF val, BetterF better) {
  std::vector<ProfileStep> steps;
  std::vector<Coord> cuts;
  cuts.reserve(rects.size() * 2);
  buildProfileInto(rects, lo, hi, val, better, steps, cuts);
  return steps;
}

}  // namespace

std::vector<ProfileStep> topProfile(std::span<const Rect> rects) {
  return buildProfile(
      rects, [](const Rect& r) { return r.xlo(); }, [](const Rect& r) { return r.xhi(); },
      [](const Rect& r) { return r.yhi(); }, [](Coord a, Coord b) { return a > b; });
}

std::vector<ProfileStep> bottomProfile(std::span<const Rect> rects) {
  return buildProfile(
      rects, [](const Rect& r) { return r.xlo(); }, [](const Rect& r) { return r.xhi(); },
      [](const Rect& r) { return r.ylo(); }, [](Coord a, Coord b) { return a < b; });
}

void topProfileInto(std::span<const Rect> rects, std::vector<ProfileStep>& out,
                    std::vector<Coord>& cutScratch) {
  buildProfileInto(
      rects, [](const Rect& r) { return r.xlo(); }, [](const Rect& r) { return r.xhi(); },
      [](const Rect& r) { return r.yhi(); }, [](Coord a, Coord b) { return a > b; },
      out, cutScratch);
}

void bottomProfileInto(std::span<const Rect> rects,
                       std::vector<ProfileStep>& out,
                       std::vector<Coord>& cutScratch) {
  buildProfileInto(
      rects, [](const Rect& r) { return r.xlo(); }, [](const Rect& r) { return r.xhi(); },
      [](const Rect& r) { return r.ylo(); }, [](Coord a, Coord b) { return a < b; },
      out, cutScratch);
}

std::vector<ProfileStep> rightProfile(std::span<const Rect> rects) {
  return buildProfile(
      rects, [](const Rect& r) { return r.ylo(); }, [](const Rect& r) { return r.yhi(); },
      [](const Rect& r) { return r.xhi(); }, [](Coord a, Coord b) { return a > b; });
}

std::vector<ProfileStep> leftProfile(std::span<const Rect> rects) {
  return buildProfile(
      rects, [](const Rect& r) { return r.ylo(); }, [](const Rect& r) { return r.yhi(); },
      [](const Rect& r) { return r.xlo(); }, [](Coord a, Coord b) { return a < b; });
}

Coord slideContactX(std::span<const Rect> left, std::span<const Rect> right) {
  Coord dx = noContact;
  for (const Rect& a : left) {
    for (const Rect& b : right) {
      bool yOverlap = a.ylo() < b.yhi() && b.ylo() < a.yhi();
      if (yOverlap) dx = std::max(dx, a.xhi() - b.xlo());
    }
  }
  return dx;
}

Coord slideContactY(std::span<const Rect> lower, std::span<const Rect> upper) {
  Coord dy = noContact;
  for (const Rect& a : lower) {
    for (const Rect& b : upper) {
      bool xOverlap = a.xlo() < b.xhi() && b.xlo() < a.xhi();
      if (xOverlap) dy = std::max(dy, a.yhi() - b.ylo());
    }
  }
  return dy;
}

}  // namespace als
