#include "runtime/tempering.h"

#include <cmath>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "anneal/annealer.h"
#include "engine/place_scratch.h"
#include "runtime/portfolio.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace als {

namespace {

/// splitmix64 finalizer — the same mixer behind portfolioSeedAt.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Options of one replica: the shared slice options (portfolio.h) with the
/// tempering knob additionally neutralized (a replica is exactly one
/// resumable session).
EngineOptions replicaOptions(const EngineOptions& base,
                             const RestartSlice& slice,
                             std::size_t resolvedMovesPerTemp) {
  EngineOptions opt = sliceEngineOptions(base, slice, resolvedMovesPerTemp);
  opt.tempering = false;
  return opt;
}

/// Ladder rung scales by repeated multiplication (never pow: libm results
/// may differ across platforms, and determinism here is a hard contract).
std::vector<double> ladderScales(std::size_t count, double ratio) {
  std::vector<double> scales(count);
  double scale = 1.0;
  for (std::size_t i = 0; i < count; ++i) {
    scales[i] = scale;
    scale *= ratio;
  }
  return scales;
}

/// Everything a round-loop lambda needs, reachable through ONE captured
/// reference: the per-round parallelFor closures must fit libstdc++'s
/// std::function small-buffer (16 bytes) or every round allocates,
/// breaking the steady-state zero-allocation gate (tests/alloc_gate_test).
struct Fleet {
  std::vector<std::unique_ptr<ReplicaSession>> sessions;
  std::vector<EngineResult> results;
  // Creation inputs (sessions are built inside the first parallelFor).
  const Circuit* circuit = nullptr;
  const EngineOptions* options = nullptr;
  const std::vector<RestartSlice>* plan = nullptr;
  std::vector<double> scales;
  std::vector<EngineBackend> backends;  ///< per session (backend-major grid)
  std::size_t movesPerTemp = 0;
  std::size_t interval = 0;
  TemperingScratch* bank = nullptr;  ///< per-replica warm buffers (optional)

  void create(std::size_t i) {
    const std::size_t k = plan->size();
    EngineOptions opt = replicaOptions(*options, (*plan)[i % k], movesPerTemp);
    if (bank != nullptr) opt.scratch = bank->replicas[i].get();
    sessions[i] = makeReplicaSession(backends[i], *circuit, opt, scales[i % k]);
  }
  void step(std::size_t i) {
    if (!sessions[i]->finished()) sessions[i]->runSweeps(interval);
  }
  void runToEnd(std::size_t i) { sessions[i]->run(); }
  void finish(std::size_t i) { results[i] = sessions[i]->finish(); }
};

/// One ladder's view into the (backend-major) fleet plus its exchange
/// bookkeeping buffers.
struct Ladder {
  std::size_t base = 0;   ///< first session index
  std::size_t count = 0;  ///< replicas on this ladder
  std::uint64_t salt = 0;
};

class TemperingDriver {
 public:
  TemperingDriver(Fleet& fleet, std::span<const std::uint64_t> seeds,
                  std::span<const Ladder> ladders,
                  std::vector<TemperingReplica>& replicas)
      : fleet_(fleet), seeds_(seeds), ladders_(ladders), replicas_(replicas) {
    // Sized to the whole fleet: in a race the per-round buffers span every
    // ladder (seeds are per-ladder and shared, so seeds.size() is smaller).
    const std::size_t total = fleet.sessions.size();
    costs_.resize(total);
    temps_.resize(total);
    active_.resize(total);
  }

  /// Runs the round loop on `pool` (fork-join steps, main-thread barriers);
  /// returns (rounds, exchangesAccepted, reseeds).
  void runRounds(ThreadPool& pool, bool crossSeed, std::size_t& rounds,
                 std::size_t& exchanges, std::size_t& reseeds) {
    Fleet& fleet = fleet_;
    const std::size_t total = fleet.sessions.size();
    if (fleet.interval == 0) {
      pool.parallelFor(total,
                       [&fleet](std::size_t i, std::size_t) { fleet.runToEnd(i); });
      return;
    }
    std::uint64_t round = 0;
    while (true) {
      pool.parallelFor(total,
                       [&fleet](std::size_t i, std::size_t) { fleet.step(i); });
      ++rounds;
      bool anyActive = false;
      for (std::size_t i = 0; i < total; ++i) {
        const ReplicaSession& s = *fleet.sessions[i];
        active_[i] = s.finished() ? 0 : 1;
        costs_[i] = s.currentCost();
        temps_[i] = s.temperature();
        anyActive = anyActive || active_[i] != 0;
      }
      if (!anyActive) break;
      for (const Ladder& ladder : ladders_) {
        planExchanges(round, ladder.salt, seeds_,
                      std::span(costs_).subspan(ladder.base, ladder.count),
                      std::span(temps_).subspan(ladder.base, ladder.count),
                      std::span(active_).subspan(ladder.base, ladder.count),
                      swaps_);
        for (std::size_t lo : swaps_) {
          const std::size_t i = ladder.base + lo;
          fleet.sessions[i]->exchangeWith(*fleet.sessions[i + 1]);
          ++replicas_[i].exchanges;
          ++replicas_[i + 1].exchanges;
          ++exchanges;
        }
      }
      if (crossSeed && ladders_.size() > 1) {
        reseeds += crossSeedLadders();
      }
      ++round;
    }
  }

 private:
  /// Re-seeds each lagging ladder's worst active replica from the global
  /// leader's best placement.  Leader by (bestCost, seed, position) — the
  /// race's total order; runs on the calling thread between fork-joins, so
  /// thread count cannot influence it.
  std::size_t crossSeedLadders() {
    Fleet& fleet = fleet_;
    const std::size_t total = fleet.sessions.size();
    std::size_t leader = 0;
    double leaderCost = fleet.sessions[0]->bestCost();
    for (std::size_t i = 1; i < total; ++i) {
      const double c = fleet.sessions[i]->bestCost();
      if (c < leaderCost ||
          (c == leaderCost &&
           seeds_[i % seeds_.size()] < seeds_[leader % seeds_.size()])) {
        leader = i;
        leaderCost = c;
      }
    }
    // Which ladder owns the leader?
    const Ladder* leaderLadder = nullptr;
    for (const Ladder& ladder : ladders_) {
      if (leader >= ladder.base && leader < ladder.base + ladder.count) {
        leaderLadder = &ladder;
      }
    }
    std::size_t adopted = 0;
    const Placement* donor = nullptr;  // decoded lazily: often nobody lags
    for (const Ladder& ladder : ladders_) {
      if (&ladder == leaderLadder) continue;
      // Worst active replica of this ladder (largest current cost; ties go
      // to the hotter rung, i.e. the largest index).
      std::size_t worst = total;  // sentinel: none active
      for (std::size_t r = 0; r < ladder.count; ++r) {
        const std::size_t i = ladder.base + r;
        if (active_[i] == 0) continue;
        if (worst == total || costs_[i] >= costs_[worst]) worst = i;
      }
      if (worst == total) continue;
      if (fleet.sessions[worst]->bestCost() <= leaderCost) continue;
      if (donor == nullptr) donor = &fleet.sessions[leader]->bestPlacement();
      if (fleet.sessions[worst]->reseedFromPlacement(*donor)) {
        ++replicas_[worst].reseeds;
        ++adopted;
      }
    }
    return adopted;
  }

  Fleet& fleet_;
  std::span<const std::uint64_t> seeds_;
  std::span<const Ladder> ladders_;
  std::vector<TemperingReplica>& replicas_;
  std::vector<double> costs_, temps_;
  std::vector<std::uint8_t> active_;
  std::vector<std::size_t> swaps_;
};

/// Grows the bank to `total` entries on the calling thread (sessions built
/// inside the parallel create must never race the bank's vector).
void growBank(TemperingScratch* bank, std::size_t total) {
  if (bank == nullptr) return;
  while (bank->replicas.size() < total) {
    bank->replicas.push_back(std::make_unique<PlaceScratch>());
  }
}

}  // namespace

TemperingScratch::TemperingScratch() = default;
TemperingScratch::~TemperingScratch() = default;

std::uint64_t exchangeScheduleSeed(std::uint64_t round,
                                   std::span<const std::uint64_t> seeds) {
  std::uint64_t h = mix64(round);
  for (std::uint64_t s : seeds) h = mix64(h ^ s);
  return h;
}

void planExchanges(std::uint64_t round, std::uint64_t salt,
                   std::span<const std::uint64_t> seeds,
                   std::span<const double> costs,
                   std::span<const double> temps,
                   std::span<const std::uint8_t> active,
                   std::vector<std::size_t>& out) {
  out.clear();
  const std::size_t k = costs.size();
  if (k < 2) return;
  Rng rng(mix64(exchangeScheduleSeed(round, seeds) ^ mix64(salt)));
  for (std::size_t i = round % 2; i + 1 < k; i += 2) {
    // One draw per considered pair, unconditionally: the draw stream is a
    // function of (round, seeds, salt) alone, never of costs or liveness.
    const double u = rng.uniform();
    if (active[i] == 0 || active[i + 1] == 0) continue;
    if (temps[i] <= 0.0 || temps[i + 1] <= 0.0) continue;
    const double dBeta = 1.0 / temps[i] - 1.0 / temps[i + 1];
    const double dE = costs[i] - costs[i + 1];
    const double exponent = dBeta * dE;
    if (exponent >= 0.0 || u < std::exp(exponent)) out.push_back(i);
  }
}

TemperingOutcome TemperingRunner::run(const Circuit& circuit,
                                      EngineBackend backend,
                                      const EngineOptions& options,
                                      TemperingScratch* scratch) const {
  Stopwatch clock;
  const std::vector<RestartSlice> plan = makeRestartPlan(options);
  const std::size_t k = plan.size();
  const std::size_t movesPerTemp =
      resolveMovesPerTemp(options.movesPerTemp, circuit.moduleCount());

  Fleet fleet;
  fleet.sessions.resize(k);
  fleet.results.resize(k);
  fleet.circuit = &circuit;
  fleet.options = &options;
  fleet.plan = &plan;
  fleet.scales = ladderScales(k, options.ladderRatio);
  fleet.backends.assign(k, backend);
  fleet.movesPerTemp = movesPerTemp;
  fleet.interval = options.exchangeInterval;
  growBank(scratch, k);
  fleet.bank = scratch;

  std::vector<std::uint64_t> seeds(k);
  for (std::size_t i = 0; i < k; ++i) seeds[i] = plan[i].seed;
  const Ladder ladder{0, k, 0};

  TemperingOutcome outcome;
  outcome.backend = backend;
  outcome.replicas.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    outcome.replicas[i].seed = plan[i].seed;
    outcome.replicas[i].tempScale = fleet.scales[i];
  }

  auto runOn = [&](ThreadPool& pool) {
    pool.parallelFor(k, [&fleet](std::size_t i, std::size_t) {
      fleet.create(i);
    });
    TemperingDriver driver(fleet, seeds, std::span(&ladder, 1),
                           outcome.replicas);
    driver.runRounds(pool, /*crossSeed=*/false, outcome.rounds,
                     outcome.exchangesAccepted, outcome.reseeds);
    pool.parallelFor(k, [&fleet](std::size_t i, std::size_t) {
      fleet.finish(i);
    });
  };
  if (pool_ != nullptr) {
    runOn(*pool_);
  } else {
    ThreadPool pool(options.numThreads);
    runOn(pool);
  }

  for (std::size_t i = 0; i < k; ++i) {
    outcome.replicas[i].cost = fleet.results[i].cost;
    outcome.replicas[i].sweeps = fleet.results[i].sweeps;
    outcome.replicas[i].movesTried = fleet.results[i].movesTried;
  }
  outcome.result = reducePortfolioSlices(std::move(fleet.results));
  outcome.result.seconds = clock.seconds();
  return outcome;
}

TemperingOutcome TemperingRunner::race(const Circuit& circuit,
                                       std::span<const EngineBackend> backends,
                                       const EngineOptions& options,
                                       TemperingScratch* scratch) const {
  if (backends.empty()) {
    throw std::invalid_argument("TemperingRunner::race: no backends given");
  }
  Stopwatch clock;
  const std::vector<RestartSlice> plan = makeRestartPlan(options);
  const std::size_t k = plan.size();
  const std::size_t total = backends.size() * k;
  const std::size_t movesPerTemp =
      resolveMovesPerTemp(options.movesPerTemp, circuit.moduleCount());

  Fleet fleet;
  fleet.sessions.resize(total);
  fleet.results.resize(total);
  fleet.circuit = &circuit;
  fleet.options = &options;
  fleet.plan = &plan;
  fleet.scales = ladderScales(k, options.ladderRatio);
  fleet.backends.resize(total);
  for (std::size_t b = 0; b < backends.size(); ++b) {
    for (std::size_t r = 0; r < k; ++r) fleet.backends[b * k + r] = backends[b];
  }
  fleet.movesPerTemp = movesPerTemp;
  fleet.interval = options.exchangeInterval;
  growBank(scratch, total);
  fleet.bank = scratch;

  // Ladder r-indexing reuses the slice seeds per backend; exchange schedules
  // decorrelate through the per-ladder salt (the backend position).
  std::vector<std::uint64_t> seeds(k);
  for (std::size_t i = 0; i < k; ++i) seeds[i] = plan[i].seed;
  std::vector<Ladder> ladders(backends.size());
  for (std::size_t b = 0; b < backends.size(); ++b) {
    ladders[b] = {b * k, k, b};
  }

  TemperingOutcome outcome;
  outcome.replicas.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    outcome.replicas[i].seed = plan[i % k].seed;
    outcome.replicas[i].tempScale = fleet.scales[i % k];
  }

  auto runOn = [&](ThreadPool& pool) {
    pool.parallelFor(total, [&fleet](std::size_t i, std::size_t) {
      fleet.create(i);
    });
    TemperingDriver driver(fleet, seeds, ladders, outcome.replicas);
    driver.runRounds(pool, options.crossSeed, outcome.rounds,
                     outcome.exchangesAccepted, outcome.reseeds);
    pool.parallelFor(total, [&fleet](std::size_t i, std::size_t) {
      fleet.finish(i);
    });
  };
  if (pool_ != nullptr) {
    runOn(*pool_);
  } else {
    ThreadPool pool(options.numThreads);
    runOn(pool);
  }

  for (std::size_t i = 0; i < total; ++i) {
    outcome.replicas[i].cost = fleet.results[i].cost;
    outcome.replicas[i].sweeps = fleet.results[i].sweeps;
    outcome.replicas[i].movesTried = fleet.results[i].movesTried;
  }

  // Reduce each ladder, then the total order (cost, seed, position):
  // strict improvement only, so an exact tie keeps the earliest backend.
  bool first = true;
  for (std::size_t b = 0; b < backends.size(); ++b) {
    std::vector<EngineResult> slices(
        std::make_move_iterator(fleet.results.begin() + b * k),
        std::make_move_iterator(fleet.results.begin() + (b + 1) * k));
    EngineResult result = reducePortfolioSlices(std::move(slices));
    if (first || result.cost < outcome.result.cost ||
        (result.cost == outcome.result.cost &&
         result.bestSeed < outcome.result.bestSeed)) {
      outcome.result = std::move(result);
      outcome.backend = backends[b];
      first = false;
    }
  }
  outcome.result.seconds = clock.seconds();
  return outcome;
}

}  // namespace als
