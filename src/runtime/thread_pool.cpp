#include "runtime/thread_pool.h"

#include <algorithm>

namespace als {

std::size_t ThreadPool::resolveThreadCount(std::size_t numThreads) {
  if (numThreads > 0) return numThreads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t numThreads) {
  std::size_t total = resolveThreadCount(numThreads);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    // Slot 0 is the caller; workers take 1..total-1.
    workers_.emplace_back([this, slot = i + 1] { workerLoop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  parallelFor(count, [&fn](std::size_t index, std::size_t) { fn(index); });
}

void ThreadPool::parallelFor(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  // A pool without workers (or a single task) runs inline on the caller:
  // same claims in the same order, no synchronization.
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }

  std::lock_guard<std::mutex> forkJoin(forkJoinMutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    jobCount_ = count;
    nextIndex_ = 0;
    pendingIndices_ = count;
    firstError_ = nullptr;
    firstErrorIndex_ = 0;
    ++generation_;
  }
  wake_.notify_all();

  runJob(0);  // the caller is a full participant (slot 0)

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pendingIndices_ == 0; });
    job_ = nullptr;
    jobCount_ = 0;
    error = firstError_;
    firstError_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::workerLoop(std::size_t slot) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    // Claim-and-run until the current job is exhausted.  The lock is held
    // here and inside runJob except while an index's fn executes.
    lock.unlock();
    runJob(slot);
    lock.lock();
  }
}

void ThreadPool::runJob(std::size_t slot) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (job_ != nullptr && nextIndex_ < jobCount_) {
    const std::size_t index = nextIndex_++;
    const std::function<void(std::size_t, std::size_t)>* fn = job_;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*fn)(index, slot);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && (!firstError_ || index < firstErrorIndex_)) {
      firstError_ = error;
      firstErrorIndex_ = index;
    }
    if (--pendingIndices_ == 0) done_.notify_all();
  }
}

}  // namespace als
