#include "runtime/portfolio.h"

#include <iterator>
#include <memory>
#include <stdexcept>

#include "anneal/annealer.h"
#include "engine/place_scratch.h"
#include "runtime/tempering.h"
#include "util/stopwatch.h"

namespace als {

namespace {

/// One warm decode scratch per pool slot (engine/place_scratch.h).  A slot
/// runs its slices sequentially, so its scratch is never shared; creation
/// is lazy because a short plan may not touch every slot.  Scratch contents
/// never influence results, so slot scheduling cannot either.
class WorkerScratches {
 public:
  explicit WorkerScratches(std::size_t slots) : scratches_(slots) {}

  PlaceScratch* at(std::size_t slot) {
    std::unique_ptr<PlaceScratch>& s = scratches_[slot];
    if (s == nullptr) s = std::make_unique<PlaceScratch>();
    return s.get();
  }

 private:
  std::vector<std::unique_ptr<PlaceScratch>> scratches_;
};

}  // namespace

EngineOptions sliceEngineOptions(const EngineOptions& base,
                                 const RestartSlice& slice,
                                 std::size_t resolvedMovesPerTemp) {
  EngineOptions opt = base;
  opt.seed = slice.seed;
  opt.maxSweeps = slice.maxSweeps;
  opt.movesPerTemp = resolvedMovesPerTemp;
  opt.numRestarts = 1;
  opt.numThreads = 1;
  opt.scratch = nullptr;
  return opt;
}

EngineResult reducePortfolioSlices(std::vector<EngineResult>&& slices) {
  std::size_t winner = 0;
  for (std::size_t i = 1; i < slices.size(); ++i) {
    if (slices[i].cost < slices[winner].cost ||
        (slices[i].cost == slices[winner].cost &&
         slices[i].bestSeed < slices[winner].bestSeed)) {
      winner = i;
    }
  }
  std::size_t movesTried = 0, sweeps = 0;
  double seconds = 0.0;
  for (const EngineResult& slice : slices) {
    movesTried += slice.movesTried;
    sweeps += slice.sweeps;
    seconds += slice.seconds;
  }
  EngineResult result = std::move(slices[winner]);
  result.movesTried = movesTried;
  result.sweeps = sweeps;
  result.seconds = seconds;
  result.restartsRun = slices.size();
  result.bestRestart = winner;  // slice position == schedule index
  return result;
}

std::vector<RestartSlice> makeRestartPlan(const EngineOptions& options) {
  std::size_t restarts = options.numRestarts > 0 ? options.numRestarts : 1;
  // A zero sweep budget means "uncapped" throughout the library, so no
  // slice may round down to zero: cap the slice count at the total budget.
  if (options.maxSweeps > 0 && restarts > options.maxSweeps) {
    restarts = options.maxSweeps;
  }
  std::vector<RestartSlice> plan(restarts);
  for (std::size_t i = 0; i < restarts; ++i) {
    plan[i] = {i, portfolioSeedAt(options.seed, i),
               splitSweepBudget(options.maxSweeps, restarts, i)};
  }
  return plan;
}

EngineResult PortfolioRunner::run(const Circuit& circuit, EngineBackend backend,
                                  const EngineOptions& options) const {
  if (options.tempering) {
    return TemperingRunner(pool_).run(circuit, backend, options).result;
  }
  Stopwatch clock;
  const std::vector<RestartSlice> plan = makeRestartPlan(options);
  const std::size_t movesPerTemp =
      resolveMovesPerTemp(options.movesPerTemp, circuit.moduleCount());
  const std::unique_ptr<PlacementEngine> engine = makeEngine(backend);

  std::vector<EngineResult> slices(plan.size());
  auto runOn = [&](ThreadPool& pool) {
    WorkerScratches scratches(pool.threadCount());
    pool.parallelFor(plan.size(), [&](std::size_t i, std::size_t slot) {
      EngineOptions opt = sliceEngineOptions(options, plan[i], movesPerTemp);
      opt.scratch = scratches.at(slot);
      slices[i] = engine->place(circuit, opt);
    });
  };
  if (pool_ != nullptr) {
    runOn(*pool_);
  } else {
    ThreadPool pool(options.numThreads);
    runOn(pool);
  }

  EngineResult result = reducePortfolioSlices(std::move(slices));
  result.seconds = clock.seconds();
  return result;
}

PortfolioRunner::RaceOutcome PortfolioRunner::race(
    const Circuit& circuit, std::span<const EngineBackend> backends,
    const EngineOptions& options) const {
  if (backends.empty()) {
    throw std::invalid_argument("PortfolioRunner::race: no backends given");
  }
  if (options.tempering) {
    TemperingOutcome t = TemperingRunner(pool_).race(circuit, backends, options);
    return RaceOutcome{std::move(t.result), t.backend};
  }
  Stopwatch clock;
  const std::vector<RestartSlice> plan = makeRestartPlan(options);
  const std::size_t restarts = plan.size();
  const std::size_t movesPerTemp =
      resolveMovesPerTemp(options.movesPerTemp, circuit.moduleCount());

  std::vector<std::unique_ptr<PlacementEngine>> engines;
  engines.reserve(backends.size());
  for (EngineBackend backend : backends) engines.push_back(makeEngine(backend));

  // One flattened backend-major grid so a slow backend cannot leave threads
  // idle while another still has unclaimed restarts.
  std::vector<EngineResult> grid(backends.size() * restarts);
  auto runOn = [&](ThreadPool& pool) {
    WorkerScratches scratches(pool.threadCount());
    pool.parallelFor(grid.size(), [&](std::size_t task, std::size_t slot) {
      const std::size_t backend = task / restarts;
      const std::size_t restart = task % restarts;
      EngineOptions opt = sliceEngineOptions(options, plan[restart], movesPerTemp);
      opt.scratch = scratches.at(slot);
      grid[task] = engines[backend]->place(circuit, opt);
    });
  };
  if (pool_ != nullptr) {
    runOn(*pool_);
  } else {
    ThreadPool pool(options.numThreads);
    runOn(pool);
  }

  // Reduce each backend's portfolio, then pick the winner on the total
  // order (cost, seed, position in `backends`): strict improvement only,
  // so an exact tie keeps the earliest backend.
  RaceOutcome outcome;
  for (std::size_t b = 0; b < backends.size(); ++b) {
    std::vector<EngineResult> slices(
        std::make_move_iterator(grid.begin() + b * restarts),
        std::make_move_iterator(grid.begin() + (b + 1) * restarts));
    EngineResult result = reducePortfolioSlices(std::move(slices));
    if (b == 0 || result.cost < outcome.result.cost ||
        (result.cost == outcome.result.cost &&
         result.bestSeed < outcome.result.bestSeed)) {
      outcome.result = std::move(result);
      outcome.backend = backends[b];
    }
  }
  outcome.result.seconds = clock.seconds();
  return outcome;
}

std::vector<EngineResult> BatchPlacer::placeAll(
    std::span<const Circuit> circuits, EngineBackend backend,
    const EngineOptions& options) const {
  const std::vector<RestartSlice> plan = makeRestartPlan(options);
  const std::size_t restarts = plan.size();
  const std::unique_ptr<PlacementEngine> engine = makeEngine(backend);

  std::vector<std::size_t> movesPerTemp(circuits.size());
  for (std::size_t c = 0; c < circuits.size(); ++c) {
    movesPerTemp[c] =
        resolveMovesPerTemp(options.movesPerTemp, circuits[c].moduleCount());
  }

  std::vector<EngineResult> grid(circuits.size() * restarts);
  auto runOn = [&](ThreadPool& pool) {
    WorkerScratches scratches(pool.threadCount());
    pool.parallelFor(grid.size(), [&](std::size_t task, std::size_t slot) {
      const std::size_t c = task / restarts;
      const std::size_t restart = task % restarts;
      EngineOptions opt = sliceEngineOptions(options, plan[restart], movesPerTemp[c]);
      opt.scratch = scratches.at(slot);
      grid[task] = engine->place(circuits[c], opt);
    });
  };
  if (pool_ != nullptr) {
    runOn(*pool_);
  } else {
    ThreadPool pool(options.numThreads);
    runOn(pool);
  }

  std::vector<EngineResult> results;
  results.reserve(circuits.size());
  for (std::size_t c = 0; c < circuits.size(); ++c) {
    std::vector<EngineResult> slices(
        std::make_move_iterator(grid.begin() + c * restarts),
        std::make_move_iterator(grid.begin() + (c + 1) * restarts));
    results.push_back(reducePortfolioSlices(std::move(slices)));
  }
  return results;
}

}  // namespace als
