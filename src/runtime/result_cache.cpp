#include "runtime/result_cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace als {

namespace {

/// A cached result's seconds field is wall-clock accounting of the ORIGINAL
/// computation — meaningless for a fetch, and excluded from bit-identity
/// comparisons everywhere (tools/als_place.cpp's identicalResults).  Zero it
/// on both store and fetch so memory and disk entries agree exactly.
EngineResult stripped(const EngineResult& result) {
  EngineResult copy = result;
  copy.seconds = 0.0;
  return copy;
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    // A failed mkdir degrades to memory-only persistence; fetch/store treat
    // disk errors as misses/no-ops, so no further handling is needed.
  }
}

bool ResultCache::fetch(const CacheKey& key, EngineBackend& backend,
                        EngineResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    if (dir_.empty()) return false;
    Entry loaded;
    if (!fetchFromDisk(key, loaded)) return false;
    it = map_.emplace(key, std::move(loaded)).first;
  }
  backend = it->second.backend;
  // Copy-assign so the caller's placement storage is reused: the warm hit
  // path of a steady-state serve loop performs no allocation.
  result = it->second.result;
  return true;
}

void ResultCache::store(const CacheKey& key, EngineBackend backend,
                        const EngineResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = map_[key];
  entry.backend = backend;
  entry.result = stripped(result);
  if (!dir_.empty()) storeToDisk(key, entry);
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".alsresult") {
      std::filesystem::remove(it->path(), ec);
      ec.clear();  // best-effort, same stance as store
    }
  }
}

bool ResultCache::fetchFromDisk(const CacheKey& key, Entry& out) {
  std::ifstream in(dir_ + "/" + key.hex() + ".alsresult",
                   std::ios::in | std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  textScratch_ = buffer.str();
  return parseResultText(textScratch_, out.backend, out.result).empty();
}

void ResultCache::storeToDisk(const CacheKey& key, const Entry& entry) {
  textScratch_.clear();
  writeResultText(entry.backend, entry.result, textScratch_);
  const std::string path = dir_ + "/" + key.hex() + ".alsresult";
  const std::string temp = path + ".tmp";
  {
    std::ofstream outFile(temp, std::ios::out | std::ios::binary |
                                    std::ios::trunc);
    if (!outFile) return;  // persistence is best-effort; memory entry stands
    outFile.write(textScratch_.data(),
                  static_cast<std::streamsize>(textScratch_.size()));
    if (!outFile) {
      outFile.close();
      std::remove(temp.c_str());
      return;
    }
  }
  // Atomic within the directory: readers see the old entry or the new one,
  // never a torn file.
  if (std::rename(temp.c_str(), path.c_str()) != 0) std::remove(temp.c_str());
}

}  // namespace als
