#include "runtime/result_cache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "util/fault_injection.h"

namespace als {

namespace {

/// A cached result's seconds field is wall-clock accounting of the ORIGINAL
/// computation — meaningless for a fetch, and excluded from bit-identity
/// comparisons everywhere (tools/als_place.cpp's identicalResults).  Zero it
/// on both store and fetch so memory and disk entries agree exactly.
EngineResult stripped(const EngineResult& result) {
  EngineResult copy = result;
  copy.seconds = 0.0;
  return copy;
}

/// Total order over keys for the disk-only index — any fixed order works,
/// it just has to be the same on every platform so eviction is
/// deterministic.
bool keyLess(const CacheKey& a, const CacheKey& b) {
  return std::tie(a.circuit, a.options, a.seed) <
         std::tie(b.circuit, b.options, b.seed);
}

/// Consecutive disk write failures before the cache gives up on the store
/// directory.  Three distinguishes a transient hiccup from a full/dead disk
/// without thrashing on every store.
constexpr int kDiskFailureLimit = 3;

}  // namespace

ResultCache::ResultCache(std::string dir, std::size_t maxEntries)
    : dir_(std::move(dir)), maxEntries_(maxEntries) {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (!std::filesystem::is_directory(dir_, ec)) {
    // Unusable store (path exists as a file, mkdir denied, ...): degrade
    // from birth rather than fail every store three times first.
    stats_.memoryOnly = true;
    return;
  }
  scrub();
}

void ResultCache::scrub() {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> found;
  fs::directory_iterator it(dir_, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    found.push_back(it->path().string());
  }
  std::sort(found.begin(), found.end());  // deterministic scrub order
  for (const std::string& path : found) {
    const fs::path p(path);
    const std::string ext = p.extension().string();
    if (ext == ".tmp") {
      // Crash window between write and rename: the entry never became
      // visible, the orphan is garbage.
      fs::remove(p, ec);
      ec.clear();
      ++stats_.tmpRemoved;
      continue;
    }
    if (ext != ".alsresult") continue;  // .corrupt and strangers stay put
    CacheKey key;
    if (!key.parseHex(p.stem().string())) {
      quarantineFile(path);
      continue;
    }
    Entry probe;
    if (readDiskEntry(key, probe) != DiskRead::Ok) continue;  // quarantined
    diskOnly_.push_back(key);
  }
  std::sort(diskOnly_.begin(), diskOnly_.end(), keyLess);
  diskOnly_.erase(std::unique(diskOnly_.begin(), diskOnly_.end()),
                  diskOnly_.end());
  enforceCap();
}

bool ResultCache::fetch(const CacheKey& key, EngineBackend& backend,
                        EngineResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    if (dir_.empty()) return false;
    Entry loaded;
    if (readDiskEntry(key, loaded) != DiskRead::Ok) return false;
    lru_.push_front(key);
    loaded.lruIt = lru_.begin();
    it = map_.emplace(key, std::move(loaded)).first;
    eraseDiskOnly(key);
    enforceCap();
  } else {
    // Promote-on-fetch: splice moves the existing node, no allocation on
    // the warm hit path (the allocation gate measures this).
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
  }
  backend = it->second.backend;
  // Copy-assign so the caller's placement storage is reused: the warm hit
  // path of a steady-state serve loop performs no allocation.
  result = it->second.result;
  return true;
}

void ResultCache::store(const CacheKey& key, EngineBackend backend,
                        const EngineResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    lru_.push_front(key);
    Entry entry;
    entry.backend = backend;
    entry.result = stripped(result);
    entry.lruIt = lru_.begin();
    it = map_.emplace(key, std::move(entry)).first;
    eraseDiskOnly(key);  // superseded stale disk survivor, if any
    enforceCap();
  } else {
    it->second.backend = backend;
    it->second.result = stripped(result);
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
  }
  if (!dir_.empty() && !stats_.memoryOnly) storeToDisk(key, it->second);
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::size_t ResultCache::totalEntries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size() + diskOnly_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
  diskOnly_.clear();
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    const std::string ext = it->path().extension().string();
    if (ext == ".alsresult" || ext == ".tmp") {
      std::filesystem::remove(it->path(), ec);
      ec.clear();  // best-effort, same stance as store
    }
  }
}

std::string ResultCache::entryPath(const CacheKey& key) const {
  return dir_ + "/" + key.hex() + ".alsresult";
}

void ResultCache::eraseDiskOnly(const CacheKey& key) {
  auto it = std::lower_bound(diskOnly_.begin(), diskOnly_.end(), key, keyLess);
  if (it != diskOnly_.end() && *it == key) diskOnly_.erase(it);
}

void ResultCache::quarantineFile(const std::string& path) {
  // Keep the bytes for forensics; the .corrupt extension takes the file out
  // of every future scrub/fetch.  Overwrites any previous quarantine of the
  // same name — the latest corruption is the interesting one.
  std::string target = path;
  const std::size_t dot = target.rfind('.');
  target.resize(dot == std::string::npos ? target.size() : dot);
  target += ".corrupt";
  if (std::rename(path.c_str(), target.c_str()) != 0) {
    std::remove(path.c_str());  // read-only rename failure: drop it instead
  }
  ++stats_.quarantined;
}

void ResultCache::enforceCap() {
  if (maxEntries_ == 0) return;
  while (map_.size() + diskOnly_.size() > maxEntries_) {
    CacheKey victim;
    if (!diskOnly_.empty()) {
      // Unpromoted survivors have no recency — they lose to anything the
      // current process has touched.
      victim = diskOnly_.back();
      diskOnly_.pop_back();
    } else {
      victim = lru_.back();
      lru_.pop_back();
      map_.erase(victim);
    }
    if (!dir_.empty()) std::remove(entryPath(victim).c_str());
    ++stats_.evicted;
  }
}

void ResultCache::noteDiskFailure() {
  ++stats_.diskFailures;
  if (++consecutiveDiskFailures_ >= kDiskFailureLimit) {
    stats_.memoryOnly = true;
  }
}

ResultCache::DiskRead ResultCache::readDiskEntry(const CacheKey& key,
                                                 Entry& out) {
  const std::string path = entryPath(key);
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return DiskRead::Miss;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  textScratch_ = buffer.str();
  std::string_view text = textScratch_;

  // The `Key` line binds content to filename: a foreign file copied (or a
  // stale entry hard-linked) under this key's name must never be served for
  // it, no matter how well its payload parses.
  bool ok = text.substr(0, 4) == "Key ";
  if (ok) {
    text.remove_prefix(4);
    const std::string want = key.hex();
    ok = text.size() > want.size() && text.substr(0, want.size()) == want &&
         text[want.size()] == '\n';
    if (ok) text.remove_prefix(want.size() + 1);
  }
  if (ok) ok = parseResultText(text, out.backend, out.result).empty();
  if (!ok) {
    quarantineFile(path);
    return DiskRead::Corrupt;
  }
  return DiskRead::Ok;
}

void ResultCache::storeToDisk(const CacheKey& key, const Entry& entry) {
  textScratch_.clear();
  textScratch_ += "Key ";
  textScratch_ += key.hex();
  textScratch_ += '\n';
  writeResultText(entry.backend, entry.result, textScratch_);
  const std::string path = entryPath(key);
  const std::string temp = path + ".tmp";

  FaultInjector& faults = FaultInjector::global();
  const DiskWriteFault fault = faults.onDiskWrite();
  if (fault.fail) {
    // Simulated ENOSPC: nothing lands, and the failure counts toward
    // memory-only degradation exactly like the real thing below.
    noteDiskFailure();
    return;
  }
  std::size_t bytes = textScratch_.size();
  if (fault.truncateAt >= 0) {
    // Torn-flush simulation: a SHORT write that still gets renamed into
    // place.  Not a failure the writer can see — the checksum trailer is
    // what catches it on the next fetch.
    bytes = std::min(bytes, static_cast<std::size_t>(fault.truncateAt));
  }
  {
    std::ofstream outFile(temp,
                          std::ios::out | std::ios::binary | std::ios::trunc);
    if (!outFile) {
      noteDiskFailure();
      return;
    }
    outFile.write(textScratch_.data(), static_cast<std::streamsize>(bytes));
    outFile.flush();
    if (!outFile) {
      outFile.close();
      std::remove(temp.c_str());
      noteDiskFailure();
      return;
    }
  }
  faults.onCrashPoint("store-after-write");
  if (faults.onRename()) return;  // simulated crash window: .tmp stays
  // Atomic within the directory: readers see the old entry or the new one,
  // never a torn file.
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    noteDiskFailure();
    return;
  }
  faults.onCrashPoint("store-after-rename");
  consecutiveDiskFailures_ = 0;
}

}  // namespace als
